package incod

// One benchmark per paper table/figure (regenerating the artifact each
// iteration), plus hot-path micro-benchmarks and the DESIGN.md ablations.
// Shape assertions live in the package test suites; these benches measure
// the cost of regeneration and report headline metrics.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"incod/internal/core"
	"incod/internal/dataplane"
	"incod/internal/dns"
	"incod/internal/experiments"
	"incod/internal/fpga"
	"incod/internal/kvs"
	"incod/internal/memcache"
	"incod/internal/paxos"
	"incod/internal/power"
	"incod/internal/simnet"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tab := e.Run(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// Figure and table regenerators.

func BenchmarkFig3aKVS(b *testing.B)            { benchExperiment(b, "fig3a") }
func BenchmarkFig3bPaxos(b *testing.B)          { benchExperiment(b, "fig3b") }
func BenchmarkFig3cDNS(b *testing.B)            { benchExperiment(b, "fig3c") }
func BenchmarkFig4Gating(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig5OnDemand(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6KVSTransition(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7PaxosTransition(b *testing.B) { benchExperiment(b, "fig7") }
func BenchmarkASICPower(b *testing.B)           { benchExperiment(b, "asic") }
func BenchmarkOpsPerWatt(b *testing.B)          { benchExperiment(b, "opswatt") }
func BenchmarkXeonLoad(b *testing.B)            { benchExperiment(b, "xeon") }
func BenchmarkMemoryLatency(b *testing.B)       { benchExperiment(b, "memories") }
func BenchmarkCrossover(b *testing.B)           { benchExperiment(b, "crossover") }
func BenchmarkDynamoVariance(b *testing.B)      { benchExperiment(b, "dynamo") }
func BenchmarkGoogleTrace(b *testing.B)         { benchExperiment(b, "google") }
func BenchmarkToRSwitch(b *testing.B)           { benchExperiment(b, "tor") }
func BenchmarkLatencyTable(b *testing.B)        { benchExperiment(b, "latency") }
func BenchmarkPlacementGuide(b *testing.B)      { benchExperiment(b, "place") }
func BenchmarkInfraSensitivity(b *testing.B)    { benchExperiment(b, "infra") }
func BenchmarkIdleStrategies(b *testing.B)      { benchExperiment(b, "strategies") }
func BenchmarkModelValidation(b *testing.B)     { benchExperiment(b, "validate") }

// Dataplane serving-path benchmarks: the handler hot paths the live
// daemons run per datagram, and the sharded store's scaling across
// workers. CI runs these as a smoke test (-bench=Dataplane -benchtime=1x)
// so allocation regressions on the serving path are visible.

// BenchmarkDataplaneKVSGet is the headline hot path: framed memcached
// GET through parse, sharded lookup and encode. It must report 0 B/op.
func BenchmarkDataplaneKVSGet(b *testing.B) {
	h := kvs.NewHandler(kvs.NewShardedStore(4, 0))
	scratch := make([]byte, 0, 4096)
	set := memcache.EncodeFrame(memcache.Frame{RequestID: 1, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpSet, Key: "key-123456", Value: []byte("value-abcdef")}))
	if _, ok := h.HandleDatagram(set, &scratch); !ok {
		b.Fatal("set failed")
	}
	get := memcache.EncodeFrame(memcache.Frame{RequestID: 2, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: "key-123456"}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, ok := h.HandleDatagram(get, &scratch); !ok || len(out) == 0 {
			b.Fatal("get failed")
		}
	}
}

// BenchmarkDataplaneBatchedKVSGet is the batch form of the headline hot
// path: 32 framed GETs per HandleBatch call, one virtual-clock read and
// one store-shard lock acquisition per shard per batch. It must also
// report 0 B/op.
func BenchmarkDataplaneBatchedKVSGet(b *testing.B) {
	h := kvs.NewHandler(kvs.NewShardedStore(4, 0))
	scratch := make([]byte, 0, 4096)
	const batch = 32
	for i := 0; i < batch; i++ {
		set := memcache.EncodeFrame(memcache.Frame{RequestID: 1, Total: 1},
			memcache.EncodeRequest(memcache.Request{
				Op: memcache.OpSet, Key: fmt.Sprintf("key-%d", i), Value: []byte("value-abcdef")}))
		if _, ok := h.HandleDatagram(set, &scratch); !ok {
			b.Fatal("set failed")
		}
	}
	items := make([]*dataplane.BatchItem, batch)
	scratches := make([][]byte, batch)
	gets := make([][]byte, batch)
	for i := range items {
		scratches[i] = make([]byte, 0, 4096)
		gets[i] = memcache.EncodeFrame(memcache.Frame{RequestID: uint16(i), Total: 1},
			memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: fmt.Sprintf("key-%d", i)}))
		items[i] = &dataplane.BatchItem{Scratch: &scratches[i]}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for k := range items {
			items[k].In = gets[k]
			items[k].Out = nil
			items[k].Served = false
		}
		h.HandleBatch(items)
		if len(items[0].Out) == 0 {
			b.Fatal("batched get failed")
		}
	}
}

func BenchmarkDataplaneKVSSet(b *testing.B) {
	h := kvs.NewHandler(kvs.NewShardedStore(4, 0))
	scratch := make([]byte, 0, 4096)
	set := memcache.EncodeFrame(memcache.Frame{RequestID: 1, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpSet, Key: "key-123456", Value: []byte("value-abcdef")}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := h.HandleDatagram(set, &scratch); !ok {
			b.Fatal("set failed")
		}
	}
}

// BenchmarkDataplaneDNS is the DNS answer-hit hot path: QuestionView
// parse, fold-hash wire-cache lookup, one image copy plus an ID/flags
// patch. It must report 0 B/op.
func BenchmarkDataplaneDNS(b *testing.B) {
	zone := dns.NewZone()
	zone.PopulateSequential(64)
	h := dns.NewHandler(zone)
	scratch := make([]byte, 0, 4096)
	q, err := dns.Encode(dns.NewQuery(9, dns.SequentialName(42)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out, ok := h.HandleDatagram(q, &scratch); !ok || len(out) == 0 {
			b.Fatal("no answer")
		}
	}
}

// BenchmarkDataplaneDNSMixedCase is the same hit with a mixed-case name
// — the query shape that used to pay a strings.ToLower allocation per
// packet. It must also report 0 B/op.
func BenchmarkDataplaneDNSMixedCase(b *testing.B) {
	zone := dns.NewZone()
	zone.PopulateSequential(64)
	h := dns.NewHandler(zone)
	scratch := make([]byte, 0, 4096)
	q, err := dns.Encode(dns.NewQuery(9, "HOST42.Example.COM"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out, ok := h.HandleDatagram(q, &scratch); !ok || len(out) == 0 {
			b.Fatal("no answer")
		}
	}
}

// BenchmarkDataplaneBatchedDNS is the batch form of the DNS hit path: 32
// queries per HandleBatch call, counters flushed once per batch. 0 B/op.
func BenchmarkDataplaneBatchedDNS(b *testing.B) {
	zone := dns.NewZone()
	zone.PopulateSequential(64)
	h := dns.NewHandler(zone)
	const batch = 32
	items := make([]*dataplane.BatchItem, batch)
	queries := make([][]byte, batch)
	for i := range items {
		q, err := dns.Encode(dns.NewQuery(uint16(i), dns.SequentialName(i)))
		if err != nil {
			b.Fatal(err)
		}
		queries[i] = q
		scratch := make([]byte, 0, 4096)
		items[i] = &dataplane.BatchItem{Scratch: &scratch}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for k := range items {
			items[k].In = queries[k]
			items[k].Out = nil
			items[k].Served = false
		}
		h.HandleBatch(items)
		if len(items[0].Out) == 0 {
			b.Fatal("batched query failed")
		}
	}
}

// BenchmarkDataplanePaxosAcceptor2A is the acceptor's steady-state hot
// path: MsgView decode, one re-vote under the role mutex, AppendMsg of
// the 2B into the scratch buffer. It must report 0 B/op.
func BenchmarkDataplanePaxosAcceptor2A(b *testing.B) {
	a := paxos.NewLiveAcceptor(1, nil, func(string, paxos.Msg) {})
	scratch := make([]byte, 0, 4096)
	p2a := paxos.Encode(paxos.Msg{Type: paxos.MsgPhase2A, Instance: 7, Ballot: 3,
		ClientID: 1, Seq: 9, ClientAddr: "client-1:2345", Value: []byte("value-of-modest-size")})
	if _, ok := a.HandleDatagram(p2a, &scratch); !ok {
		b.Fatal("seed 2A failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, ok := a.HandleDatagram(p2a, &scratch); !ok || len(out) == 0 {
			b.Fatal("2A failed")
		}
	}
}

// BenchmarkDataplaneBatchedPaxosAcceptor is the batch form: 32 2As per
// HandleBatch call under one acquisition of the role mutex. 0 B/op.
func BenchmarkDataplaneBatchedPaxosAcceptor(b *testing.B) {
	a := paxos.NewLiveAcceptor(1, nil, func(string, paxos.Msg) {})
	scratch := make([]byte, 0, 4096)
	const batch = 32
	msgs := make([][]byte, batch)
	items := make([]*dataplane.BatchItem, batch)
	for i := range items {
		msgs[i] = paxos.Encode(paxos.Msg{Type: paxos.MsgPhase2A, Instance: uint64(i + 1),
			Ballot: 3, Seq: uint64(i), ClientAddr: "client-1:2345", Value: []byte("value-of-modest-size")})
		if _, ok := a.HandleDatagram(msgs[i], &scratch); !ok {
			b.Fatal("seed failed")
		}
		s := make([]byte, 0, 1024)
		items[i] = &dataplane.BatchItem{Scratch: &s}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for k := range items {
			items[k].In = msgs[k]
			items[k].Out = nil
			items[k].Served = false
		}
		a.HandleBatch(items)
		if len(items[0].Out) == 0 {
			b.Fatal("batched 2A failed")
		}
	}
}

// BenchmarkDataplaneShardedStore shows GET throughput scaling with the
// partition count under parallel load (run with -cpu to vary worker
// count). The measured path is the serving one — AppendGetHit's
// lock-free seqlock read plus reply encode — so ns/op here is the
// store-side cost of one served GET.
func BenchmarkDataplaneShardedStore(b *testing.B) {
	const keys = 4096
	keyBytes := make([][]byte, keys)
	for i := range keyBytes {
		keyBytes[i] = fmt.Appendf(nil, "key-%d", i)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			st := kvs.NewShardedStore(shards, 0)
			for i := range keyBytes {
				st.Set(string(keyBytes[i]), kvs.Entry{Value: []byte("v")})
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				scratch := make([]byte, 0, 256)
				i := 0
				for pb.Next() {
					out, ok := st.AppendGetHit(scratch[:0], keyBytes[i&(keys-1)], 0)
					if !ok {
						panic("bench: unexpected miss")
					}
					scratch = out
					i++
				}
			})
		})
	}
}

// BenchmarkShardedStoreScaling is the shard-scaling curve artifact: one
// goroutine per partition, each reading only keys its own partition
// owns, so the curve isolates shared-nothing store scaling from
// dispatch contention and scheduler noise. Every sub-bench does b.N
// reads per goroutine — flat ns/op across shards-1/2/4/8 is perfect
// (linear) scaling, rising ns/op is cross-partition interference.
// scripts/bench.sh records the curve and cmd/incbenchdiff gates both
// the per-shard-count ns/op and the curve shape.
func BenchmarkShardedStoreScaling(b *testing.B) {
	const perShard = 512 // power of two: the read loop masks into it
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			st := kvs.NewShardedStore(shards, 0)
			// Bucket keys by owning partition with the same hash+mask
			// dispatch the store uses.
			mask := uint64(st.Shards() - 1)
			buckets := make([][][]byte, st.Shards())
			for i, filled := 0, 0; filled < len(buckets); i++ {
				k := fmt.Appendf(nil, "scale-%d", i)
				s := dataplane.HashBytes(k) & mask
				if len(buckets[s]) >= perShard {
					continue
				}
				buckets[s] = append(buckets[s], k)
				if len(buckets[s]) == perShard {
					filled++
				}
				st.SetBytes(k, kvs.Entry{Value: []byte("0123456789abcdef")})
			}
			var misses atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for s := 0; s < st.Shards(); s++ {
				wg.Add(1)
				go func(keys [][]byte) {
					defer wg.Done()
					scratch := make([]byte, 0, 256)
					for i := 0; i < b.N; i++ {
						out, ok := st.AppendGetHit(scratch[:0], keys[i&(perShard-1)], 0)
						if !ok {
							misses.Add(1)
							return
						}
						scratch = out
					}
				}(buckets[s])
			}
			wg.Wait()
			b.StopTimer()
			if misses.Load() > 0 {
				b.Fatalf("%d unexpected misses", misses.Load())
			}
		})
	}
}

// Hot-path micro-benchmarks.

// BenchmarkMemcacheParseGet is the serving path's request decode: frame
// strip plus view parse into a reused RequestView. 0 B/op — the
// allocating ParseRequest is off the hot path.
func BenchmarkMemcacheParseGet(b *testing.B) {
	dg := memcache.EncodeFrame(memcache.Frame{RequestID: 1, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: "key-123456"}))
	var v memcache.RequestView
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, body, err := memcache.DecodeFrame(dg)
		if err != nil {
			b.Fatal(err)
		}
		if err := memcache.ParseRequestView(body, &v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaxosCodec(b *testing.B) {
	m := paxos.Msg{Type: paxos.MsgPhase2A, Instance: 1 << 30, Ballot: 7,
		ClientAddr: "client-0", Value: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := paxos.Decode(paxos.Encode(m)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPaxosCodecView is the serving path's codec round trip:
// AppendMsg into a reused buffer, DecodeView aliasing it. 0 B/op.
func BenchmarkPaxosCodecView(b *testing.B) {
	m := paxos.Msg{Type: paxos.MsgPhase2A, Instance: 1 << 30, Ballot: 7,
		ClientAddr: "client-0", Value: make([]byte, 64)}
	buf := make([]byte, 0, 256)
	var v paxos.MsgView
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = paxos.AppendMsg(buf[:0], m)
		if err := paxos.DecodeView(buf, &v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSCodec(b *testing.B) {
	q, err := dns.Encode(dns.NewQuery(9, "host42.example.com"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dns.Decode(q, dns.MaxLabels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDNSQuestionView is the serving path's query parse: the
// zero-copy QuestionView over the datagram. 0 B/op.
func BenchmarkDNSQuestionView(b *testing.B) {
	q, err := dns.Encode(dns.NewQuery(9, "host42.example.com"))
	if err != nil {
		b.Fatal(err)
	}
	var v dns.QuestionView
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := dns.ParseQuestion(q, dns.MaxLabels, &v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLRUCache(b *testing.B) {
	c := kvs.NewCache(1024)
	for i := 0; i < 1024; i++ {
		c.Put(fmt.Sprint(i), kvs.Entry{Value: []byte("v")})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(fmt.Sprint(i & 1023))
	}
}

func BenchmarkSimulatorEvents(b *testing.B) {
	b.ReportAllocs()
	sim := simnet.New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			sim.Schedule(time.Microsecond, tick)
		}
	}
	sim.Schedule(time.Microsecond, tick)
	b.ResetTimer()
	sim.Run()
}

// Ablation benches for the DESIGN.md design choices. Each reports its
// headline quantity as a custom metric.

// Hysteresis (mirrored threshold pairs) vs a single threshold, on load
// oscillating inside the hysteresis band: flaps per simulated minute.
func BenchmarkAblationHysteresis(b *testing.B) {
	run := func(toHostKpps float64) int {
		sim := simnet.New(1)
		svc := &core.FuncService{ServiceName: "x", Where: core.Host}
		rate := 0.0
		ctl := core.NewNetworkController(sim, svc, func() float64 { return rate },
			core.NetworkControllerConfig{
				ToNetworkKpps: 100, ToNetworkWindow: 500 * time.Millisecond,
				ToHostKpps: toHostKpps, ToHostWindow: 500 * time.Millisecond,
				SamplePeriod: 50 * time.Millisecond,
			})
		ctl.Start()
		// Load oscillates 80..120 kpps around the 100 kpps threshold.
		for t := 0; t < 60; t++ {
			if t%2 == 0 {
				rate = 120
			} else {
				rate = 80
			}
			sim.RunFor(time.Second)
		}
		return len(ctl.Transitions)
	}
	var withHyst, without int
	for i := 0; i < b.N; i++ {
		withHyst = run(60)    // mirrored pair well below the up-threshold
		without = run(99.999) // effectively a single threshold
	}
	b.ReportMetric(float64(withHyst), "flaps/min(hysteresis)")
	b.ReportMetric(float64(without), "flaps/min(single-threshold)")
}

// Number of LaKe PEs vs service capacity and power.
func BenchmarkAblationPEs(b *testing.B) {
	for pes := 1; pes <= 5; pes++ {
		pes := pes
		b.Run(fmt.Sprintf("pes-%d", pes), func(b *testing.B) {
			var peak, watts float64
			for i := 0; i < b.N; i++ {
				board := newLakeBoard(pes)
				peak = board.PeakKpps()
				watts = board.CardWatts(1)
			}
			b.ReportMetric(peak, "peak-kpps")
			b.ReportMetric(watts, "card-watts")
		})
	}
}

// The three §9.2 idle strategies: keep-warm (instant shift, most power),
// the paper's reset-and-gate choice, and partial reconfiguration back to
// the plain NIC (least power, momentary traffic halt on shift).
func BenchmarkAblationIdleStrategy(b *testing.B) {
	var keepWarm, parked, reconf float64
	for i := 0; i < b.N; i++ {
		warm := newLakeBoard(5)
		warm.SetModuleActive(false)
		keepWarm = warm.CardWatts(0)
		cold := newLakeBoard(5)
		cold.SetModuleActive(false)
		cold.SetMemoryReset(true)
		cold.SetClockGating(true)
		parked = cold.CardWatts(0)
		nic := newLakeBoard(5)
		nic.Reprogram(fpga.ReferenceNIC)
		reconf = nic.CardWatts(0)
	}
	b.ReportMetric(keepWarm, "idle-watts(keep-warm)")
	b.ReportMetric(parked, "idle-watts(reset+gated)")
	b.ReportMetric(reconf, "idle-watts(partial-reconfig)")
	b.ReportMetric(float64(kvs.ReconfigHalt.Milliseconds()), "reconfig-halt-ms")
}

// Client-timeout tuning for the Paxos leader shift: stall vs timeout.
func BenchmarkAblationPaxosTimeout(b *testing.B) {
	for _, timeout := range []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond} {
		timeout := timeout
		b.Run(timeout.String(), func(b *testing.B) {
			var stall float64
			for i := 0; i < b.N; i++ {
				stall = measureShiftStall(timeout)
			}
			b.ReportMetric(stall, "stall-ms")
		})
	}
}

// measureShiftStall returns how long consensus throughput stays below half
// its pre-shift rate after a leader shift. (A lucky client whose decision
// was in flight at the shift can keep its closed loop alive, so the window
// degrades rather than reaching exactly zero; the duration still tracks
// the client timeout, the paper's Figure 7 observation.)
func measureShiftStall(timeout time.Duration) float64 {
	sim := simnet.New(7)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	dep := paxos.NewDeployment(net, paxos.Config{NumClients: 4})
	for _, c := range dep.Clients {
		c.RetryTimeout = timeout
		c.StartClosedLoop(1)
	}
	sim.Schedule(time.Second, func() { dep.ShiftLeader(dep.HWLeader) })
	var last uint64
	var preShift float64
	stall, run := 0.0, 0.0
	const interval = 10 * time.Millisecond
	for t := time.Duration(0); t < 2*time.Second; t += interval {
		sim.RunFor(interval)
		decided := dep.Learner.Counters.Get("decided")
		rate := float64(decided - last)
		last = decided
		if sim.Now() <= simnet.Time(time.Second) {
			preShift = rate
			continue
		}
		if rate < preShift/2 {
			run += interval.Seconds() * 1000
			if run > stall {
				stall = run
			}
		} else {
			run = 0
		}
	}
	for _, c := range dep.Clients {
		c.Stop()
	}
	return stall
}

func newLakeBoard(pes int) *fpga.Board {
	b := fpga.NewBoard(fpga.LaKeDesign)
	b.SetActivePEs(pes)
	return b
}

// DPDK polling vs interrupt-driven software runtime: idle watts.
func BenchmarkAblationDPDKPolling(b *testing.B) {
	var dpdk, libp float64
	for i := 0; i < b.N; i++ {
		dpdk = power.DPDKLeader.Power(0)
		libp = power.LibpaxosLeader.Power(0)
	}
	b.ReportMetric(dpdk, "idle-watts(dpdk)")
	b.ReportMetric(libp, "idle-watts(libpaxos)")
}
