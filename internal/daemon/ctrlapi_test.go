package daemon

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"incod/internal/core"
	"incod/internal/dataplane"
)

// newAPI builds an orchestrator with two threshold-policy services and
// one static-policy service behind the /v1 API.
func newAPI(t *testing.T) (*Orchestrator, *httptest.Server) {
	t.Helper()
	o := NewOrchestrator(0)
	if _, err := o.Register("kvs", ServiceConfig{
		Policy: core.NewThresholdPolicy(core.DefaultNetworkConfig(100)),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Register("dns", ServiceConfig{
		Policy: core.NewThresholdPolicy(core.DefaultNetworkConfig(150)),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Register("pinned", ServiceConfig{
		Policy: &core.StaticPolicy{Target: core.Host},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(o.Handler())
	t.Cleanup(srv.Close)
	return o, srv
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url, body string, v any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestV1ListServices(t *testing.T) {
	o, srv := newAPI(t)
	o.services["kvs"].ObserveN(5)

	var list []ServiceStatus
	if code := getJSON(t, srv.URL+"/v1/services", &list); code != http.StatusOK {
		t.Fatalf("list -> %d", code)
	}
	if len(list) != 3 || list[0].Name != "kvs" || list[1].Name != "dns" || list[2].Name != "pinned" {
		t.Fatalf("list = %+v", list)
	}
	if list[0].Requests != 5 || list[0].Placement != "host" || list[0].Policy != "threshold" {
		t.Errorf("kvs status = %+v", list[0])
	}
	// DefaultNetworkConfig(100) = crossover*1.1 (floating point).
	if th := list[0].Thresholds; th == nil || th.ToNetworkKpps < 109.9 || th.ToNetworkKpps > 110.1 {
		t.Errorf("kvs thresholds = %+v, want to-network ~110", list[0].Thresholds)
	}
	if list[2].Policy != "static-host" || list[2].Thresholds != nil {
		t.Errorf("static service must expose no thresholds: %+v", list[2])
	}
}

func TestV1GetSingleServiceAndUnknown404(t *testing.T) {
	_, srv := newAPI(t)
	var s ServiceStatus
	if code := getJSON(t, srv.URL+"/v1/services/dns", &s); code != http.StatusOK {
		t.Fatalf("get dns -> %d", code)
	}
	if s.Name != "dns" || s.Placement != "host" {
		t.Errorf("dns status = %+v", s)
	}
	if code := getJSON(t, srv.URL+"/v1/services/ghost", nil); code != http.StatusNotFound {
		t.Errorf("unknown service -> %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/v1/services/ghost/thresholds", nil); code != http.StatusNotFound {
		t.Errorf("unknown service thresholds -> %d, want 404", code)
	}
	if code := postJSON(t, srv.URL+"/v1/services/ghost/placement", `{"placement":"host"}`, nil); code != http.StatusNotFound {
		t.Errorf("unknown service placement -> %d, want 404", code)
	}
}

func TestV1ThresholdsRoundTrip(t *testing.T) {
	_, srv := newAPI(t)

	// Partial update: only the up-threshold; the other side is kept.
	var got Thresholds
	if code := postJSON(t, srv.URL+"/v1/services/kvs/thresholds", `{"to_network_kpps": 200}`, &got); code != http.StatusOK {
		t.Fatalf("post -> %d", code)
	}
	if got.ToNetworkKpps != 200 || got.ToHostKpps != 70 || got.Clamped {
		t.Errorf("thresholds = %+v, want 200/70 unclamped", got)
	}

	// GET reflects the change, and only on the targeted service.
	var read Thresholds
	if code := getJSON(t, srv.URL+"/v1/services/kvs/thresholds", &read); code != http.StatusOK || read.ToNetworkKpps != 200 {
		t.Errorf("read back %+v (code %d)", read, code)
	}
	var other Thresholds
	if getJSON(t, srv.URL+"/v1/services/dns/thresholds", &other); other.ToNetworkKpps == 200 {
		t.Error("update leaked to another service")
	}
}

func TestV1ThresholdsClampReported(t *testing.T) {
	_, srv := newAPI(t)
	var got Thresholds
	if code := postJSON(t, srv.URL+"/v1/services/kvs/thresholds", `{"to_host_kpps": 500}`, &got); code != http.StatusOK {
		t.Fatalf("post -> %d", code)
	}
	if !got.Clamped || got.Note == "" {
		t.Errorf("hysteresis clamp must be reported: %+v", got)
	}
	if got.ToHostKpps >= got.ToNetworkKpps {
		t.Errorf("to-host %v must stay below to-network %v", got.ToHostKpps, got.ToNetworkKpps)
	}
}

func TestV1ThresholdsBadInput(t *testing.T) {
	_, srv := newAPI(t)
	if code := postJSON(t, srv.URL+"/v1/services/kvs/thresholds", `{"to_network_kpps": -5}`, nil); code != http.StatusBadRequest {
		t.Errorf("negative threshold -> %d, want 400", code)
	}
	if code := postJSON(t, srv.URL+"/v1/services/kvs/thresholds", "not json", nil); code != http.StatusBadRequest {
		t.Errorf("bad JSON -> %d, want 400", code)
	}
	// NaN is not valid JSON either.
	if code := postJSON(t, srv.URL+"/v1/services/kvs/thresholds", `{"to_host_kpps": NaN}`, nil); code != http.StatusBadRequest {
		t.Errorf("NaN -> %d, want 400", code)
	}
	// Thresholds on a policy without rate thresholds: conflict.
	if code := postJSON(t, srv.URL+"/v1/services/pinned/thresholds", `{"to_network_kpps": 10}`, nil); code != http.StatusConflict {
		t.Errorf("thresholds on static policy -> %d, want 409", code)
	}
	if code := getJSON(t, srv.URL+"/v1/services/pinned/thresholds", nil); code != http.StatusConflict {
		t.Errorf("get thresholds on static policy -> %d, want 409", code)
	}
}

// The power policy's to-host return rate is tunable over /v1; its
// to-network side triggers on watts + CPU, so setting a to-network rate
// is rejected with an explanatory 400.
func TestV1PowerPolicyThresholds(t *testing.T) {
	o := NewOrchestrator(0)
	if _, err := o.Register("kvs", ServiceConfig{
		Policy: core.NewPowerPolicy(core.DefaultHostConfig(70, 56)),
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	var got Thresholds
	if code := postJSON(t, srv.URL+"/v1/services/kvs/thresholds", `{"to_host_kpps": 30}`, &got); code != http.StatusOK {
		t.Fatalf("to-host update -> %d", code)
	}
	if got.ToHostKpps != 30 {
		t.Errorf("to-host = %v, want 30", got.ToHostKpps)
	}
	if code := postJSON(t, srv.URL+"/v1/services/kvs/thresholds", `{"to_network_kpps": 99}`, nil); code != http.StatusBadRequest {
		t.Errorf("to-network on power policy -> %d, want 400", code)
	}
}

func TestV1MethodNotAllowed(t *testing.T) {
	_, srv := newAPI(t)
	for _, tc := range []struct{ method, path string }{
		{http.MethodDelete, "/v1/services/kvs/thresholds"},
		{http.MethodDelete, "/v1/services"},
		{http.MethodGet, "/v1/services/kvs/placement"},
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s -> %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
	}
}

func TestV1ManualPlacementPin(t *testing.T) {
	o, srv := newAPI(t)
	var s ServiceStatus
	if code := postJSON(t, srv.URL+"/v1/services/kvs/placement", `{"placement":"network"}`, &s); code != http.StatusOK {
		t.Fatalf("pin -> %d", code)
	}
	if s.Placement != "network" || s.Pinned != "network" {
		t.Errorf("after pin: %+v", s)
	}
	// The pin holds against the policy under zero load.
	m := o.services["kvs"]
	now := time.Unix(0, 0)
	o.Tick(now)
	_ = drive(o, m, now, 0, 5*time.Second)
	if placement(t, o, "kvs") != "network" {
		t.Error("pin must hold against the policy")
	}
	// "auto" releases the pin.
	s = ServiceStatus{}
	if code := postJSON(t, srv.URL+"/v1/services/kvs/placement", `{"placement":"auto"}`, &s); code != http.StatusOK {
		t.Fatalf("auto -> %d", code)
	}
	if s.Pinned != "" {
		t.Errorf("after auto: %+v", s)
	}
	// Bad placement value.
	if code := postJSON(t, srv.URL+"/v1/services/kvs/placement", `{"placement":"fpga"}`, nil); code != http.StatusBadRequest {
		t.Errorf("bad placement -> %d, want 400", code)
	}
}

func TestServeCtrlLifecycle(t *testing.T) {
	o, _ := newAPI(t)
	// Bind errors surface synchronously instead of being swallowed.
	if _, err := ServeCtrl("256.0.0.1:99999", o.Handler()); err == nil {
		t.Fatal("bad address must return a bind error")
	}
	cs, err := ServeCtrl("127.0.0.1:0", o.Handler())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + cs.Addr().String() + "/v1/services")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("list over ServeCtrl -> %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := cs.Shutdown(ctx); err != nil {
		t.Errorf("graceful shutdown: %v", err)
	}
	select {
	case err := <-cs.Err():
		t.Errorf("unexpected serve error after shutdown: %v", err)
	default:
	}
}

// fakeDataplane is a canned DataplaneSource.
type fakeDataplane struct{ st dataplane.Stats }

func (f fakeDataplane) Snapshot() dataplane.Stats { return f.st }

func TestV1DataplaneStats(t *testing.T) {
	o, srv := newAPI(t)
	want := dataplane.Stats{
		Shards: []dataplane.ShardStats{
			{Shard: 0, Received: 70, Handled: 70, Replies: 70},
			{Shard: 1, Received: 30, Handled: 29, Replies: 29, Dropped: 1},
		},
		Received: 100, Handled: 99, Replies: 99, Dropped: 1,
		RateKpps: 12.5,
		Handler:  map[string]uint64{"hits": 80, "misses": 19},
	}
	if err := o.AttachDataplane("kvs", fakeDataplane{st: want}); err != nil {
		t.Fatal(err)
	}
	if err := o.AttachDataplane("ghost", fakeDataplane{}); err == nil {
		t.Fatal("attaching to an unknown service should fail")
	}

	var got dataplane.Stats
	if code := getJSON(t, srv.URL+"/v1/services/kvs/dataplane", &got); code != http.StatusOK {
		t.Fatalf("GET dataplane: %d", code)
	}
	if got.Handled != 99 || got.Dropped != 1 || len(got.Shards) != 2 ||
		got.Shards[1].Dropped != 1 || got.Handler["hits"] != 80 {
		t.Fatalf("dataplane stats = %+v", got)
	}

	// Services without an engine 404; unknown services 404.
	if code := getJSON(t, srv.URL+"/v1/services/dns/dataplane", nil); code != http.StatusNotFound {
		t.Fatalf("no-dataplane service: %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/v1/services/ghost/dataplane", nil); code != http.StatusNotFound {
		t.Fatalf("unknown service: %d, want 404", code)
	}

	// The all-engines view keys by service name.
	var all map[string]dataplane.Stats
	if code := getJSON(t, srv.URL+"/v1/dataplane", &all); code != http.StatusOK {
		t.Fatalf("GET /v1/dataplane: %d", code)
	}
	if len(all) != 1 || all["kvs"].Received != 100 {
		t.Fatalf("all dataplanes = %+v", all)
	}
}

func TestUseCounterFeedsOrchestrator(t *testing.T) {
	o := NewOrchestrator(0)
	m, err := o.Register("kvs", ServiceConfig{
		Policy: core.NewThresholdPolicy(core.DefaultNetworkConfig(100)),
	})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	m.UseCounter(func() uint64 { return total })

	now := time.Now()
	o.Tick(now)
	total = 50_000 // 50k requests in 500ms = 100 kpps
	o.Tick(now.Add(500 * time.Millisecond))

	st, err := o.Status("kvs")
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 50_000 {
		t.Fatalf("Requests = %d, want 50000 (external counter ignored)", st.Requests)
	}
	if st.WindowKpps < 99 || st.WindowKpps > 101 {
		t.Fatalf("WindowKpps = %v, want ~100", st.WindowKpps)
	}
	// Observe still works when no external counter is wired.
	m2, _ := o.Register("raw", ServiceConfig{})
	m2.Observe()
	m2.ObserveN(4)
	if st, _ := o.Status("raw"); st.Requests != 5 {
		t.Fatalf("raw Requests = %d, want 5", st.Requests)
	}
}

func TestV1HealthzFollowsReadiness(t *testing.T) {
	o, srv := newAPI(t)

	// No probe installed: always ready.
	if code := getJSON(t, srv.URL+"/v1/healthz", nil); code != http.StatusOK {
		t.Fatalf("default healthz = %d, want 200", code)
	}

	// With a probe (the daemons wire the engine's Running), the endpoint
	// tracks it: 503 before the dataplane serves, 200 while it does, and
	// 503 again once shutdown begins.
	serving := false
	o.SetReady(func() bool { return serving })
	var body map[string]bool
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || body["ready"] {
		t.Fatalf("pre-serve healthz = %d %v, want 503 ready=false", resp.StatusCode, body)
	}

	serving = true
	if code := getJSON(t, srv.URL+"/v1/healthz", &body); code != http.StatusOK || !body["ready"] {
		t.Fatalf("serving healthz = %d %v, want 200 ready=true", code, body)
	}

	serving = false // engine closing
	if code := getJSON(t, srv.URL+"/v1/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("closing healthz = %d, want 503", code)
	}

	// Clearing the probe restores the always-ready default.
	o.SetReady(nil)
	if code := getJSON(t, srv.URL+"/v1/healthz", nil); code != http.StatusOK {
		t.Fatalf("cleared-probe healthz = %d, want 200", code)
	}
}
