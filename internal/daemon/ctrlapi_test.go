package daemon

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestStatusEndpoint(t *testing.T) {
	a := newTestAdvisor(t, 100)
	for i := 0; i < 5; i++ {
		a.Observe()
	}
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Status
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Name != "test" || s.Placement != "host" || s.Requests != 5 {
		t.Errorf("status = %+v", s)
	}
	// DefaultNetworkConfig(100) = crossover*1.1 (floating point).
	if s.ToNetworkKpps < 109.9 || s.ToNetworkKpps > 110.1 {
		t.Errorf("to-network threshold = %v, want ~110", s.ToNetworkKpps)
	}
}

func TestThresholdsRoundTrip(t *testing.T) {
	a := newTestAdvisor(t, 100)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	// Partial update: only the up-threshold.
	resp, err := http.Post(srv.URL+"/thresholds", "application/json",
		strings.NewReader(`{"to_network_kpps": 200}`))
	if err != nil {
		t.Fatal(err)
	}
	var got Thresholds
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.ToNetworkKpps != 200 {
		t.Errorf("to-network = %v, want 200", got.ToNetworkKpps)
	}
	if got.ToHostKpps >= got.ToNetworkKpps {
		t.Error("hysteresis invariant violated")
	}

	// GET reflects the change.
	resp, err = http.Get(srv.URL + "/thresholds")
	if err != nil {
		t.Fatal(err)
	}
	var read Thresholds
	_ = json.NewDecoder(resp.Body).Decode(&read)
	resp.Body.Close()
	if read.ToNetworkKpps != 200 {
		t.Errorf("read back %v", read.ToNetworkKpps)
	}
}

func TestThresholdsClampHysteresis(t *testing.T) {
	a := newTestAdvisor(t, 100)
	got := a.SetThresholds(Thresholds{ToHostKpps: 500}) // above to-network
	if got.ToHostKpps >= got.ToNetworkKpps {
		t.Errorf("to-host %v must stay below to-network %v", got.ToHostKpps, got.ToNetworkKpps)
	}
}

func TestThresholdsBadRequests(t *testing.T) {
	a := newTestAdvisor(t, 100)
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	resp, _ := http.Post(srv.URL+"/thresholds", "application/json", strings.NewReader("not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON -> %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/thresholds", nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE -> %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()
}
