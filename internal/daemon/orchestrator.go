// Package daemon provides the shared control plane for the runnable UDP
// daemons: a multi-service Orchestrator that applies the same core.Policy
// decision code the simulator validates to live, wall-clock request
// streams, and the versioned /v1 HTTP API that exposes it. A service
// registered without a Service implementation is advisory — the
// orchestrator only reports where it *would* run — while a real one
// (nictier.Service, wired by the daemons' -nictier flag) performs actual
// transition work on every shift: the orchestrator releases its mutex
// for the duration, so warm-ups and drains never stall the control API,
// and the measured shift duration, retry count and last error surface in
// ServiceStatus.
package daemon

import (
	"errors"
	"fmt"
	"log"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"incod/internal/core"
	"incod/internal/dataplane"
	"incod/internal/power"
)

// Errors the control plane maps to HTTP statuses.
var (
	// ErrUnknownService names a service that is not registered.
	ErrUnknownService = errors.New("daemon: unknown service")
	// ErrNotTunable marks a policy without runtime rate thresholds.
	ErrNotTunable = errors.New("daemon: policy has no rate thresholds")
	// ErrNoDataplane marks a service without an attached serving engine.
	ErrNoDataplane = errors.New("daemon: service has no dataplane attached")
)

// DataplaneSource snapshots a serving engine's per-shard statistics;
// *dataplane.Engine implements it.
type DataplaneSource interface {
	Snapshot() dataplane.Stats
}

// PowerModel estimates host package power and CPU utilization from the
// observed request rate, standing in for RAPL on machines where the
// daemon has no hardware counters. Policies that need power input (the
// "power" policy) read these modeled values.
type PowerModel func(kpps float64) (watts, cpu float64)

// CurveModel derives a PowerModel from one of the §4 calibrated software
// power curves.
func CurveModel(c power.SoftwareCurve) PowerModel {
	return func(kpps float64) (float64, float64) {
		return c.Power(kpps), c.Utilization(kpps)
	}
}

// ServiceConfig parameterizes Register.
type ServiceConfig struct {
	// Service is the workload to place. Nil registers an advisory
	// stand-in that only logs where the service would run.
	Service core.Service
	// Policy decides placement. Nil defaults to the mirrored-threshold
	// policy around an 80 kpps crossover.
	Policy core.Policy
	// Model supplies power/CPU readings to power-aware policies. Nil
	// leaves those sample fields NaN.
	Model PowerModel
}

// ManagedService is one registered service. Its Observe method is the
// daemon datapath hook and is safe for concurrent use without locking
// (a single atomic increment per request). Daemons serving through the
// dataplane engine skip per-packet Observe calls entirely: UseCounter
// points the orchestrator at the engine's shared atomic meter, which it
// samples once per tick.
type ManagedService struct {
	name  string
	svc   core.Service
	pol   core.Policy
	model PowerModel

	count atomic.Uint64
	// external, when set, supplies the monotonic request total instead
	// of count (e.g. a dataplane engine's Handled).
	external atomic.Pointer[func() uint64]

	// Below are guarded by the orchestrator mutex.
	lastCount   uint64
	lastAt      time.Time
	window      []float64 // recent per-tick kpps, for status display
	pinned      *core.Placement
	shifts      int
	transitions []string
	lastErr     string
	// shifting marks a transition task in flight: the orchestrator
	// releases its mutex while Shift runs (warm-up and drains take real
	// time and must not block the control plane), and this flag keeps a
	// concurrent tick or pin from starting a second one.
	shifting       bool
	shiftRetries   int           // lifetime count of failed shift attempts
	shiftRollbacks int           // failed shifts rolled back to the prior placement
	lastShiftDur   time.Duration // duration of the last completed attempt
}

// Observe records n=1 served request.
func (m *ManagedService) Observe() { m.count.Add(1) }

// ObserveN records n served requests.
func (m *ManagedService) ObserveN(n uint64) { m.count.Add(n) }

// UseCounter replaces the per-call Observe counter with an external
// monotonic total, sampled once per orchestrator tick — the dataplane
// wiring, where the engine already counts every handled datagram. Call
// it before traffic starts; fn must be safe for concurrent use.
func (m *ManagedService) UseCounter(fn func() uint64) { m.external.Store(&fn) }

// total returns the current request count from whichever source is
// wired.
func (m *ManagedService) total() uint64 {
	if p := m.external.Load(); p != nil {
		return (*p)()
	}
	return m.count.Load()
}

// Name returns the registered service name.
func (m *ManagedService) Name() string { return m.name }

// Orchestrator supervises the placement of many services: each sample
// period it meters every service's request rate, feeds its policy, and
// applies (or, for advisory services, logs) the decision. One
// orchestrator backs one daemon's /v1 control API.
type Orchestrator struct {
	mu         sync.Mutex
	services   map[string]*ManagedService
	order      []string
	dataplanes map[string]DataplaneSource
	epoch      time.Time
	period     time.Duration
	stop       chan struct{}
	stopOnce   sync.Once
	started    bool
	// ready, when set, gates GET /v1/healthz: the endpoint answers 200
	// only while ready() is true (the daemons wire the serving engine's
	// Running). Unset means always ready.
	ready atomic.Pointer[func() bool]
}

// NewOrchestrator returns an orchestrator sampling every period
// (default 100ms). Call Start to begin the evaluation loop, or drive
// Tick directly.
func NewOrchestrator(period time.Duration) *Orchestrator {
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	return &Orchestrator{
		services: make(map[string]*ManagedService),
		period:   period,
		stop:     make(chan struct{}),
	}
}

// SetReady installs the readiness probe behind GET /v1/healthz. Pass the
// serving engine's Running so the endpoint reports 200 only once the
// dataplane actually serves (and flips back to 503 during shutdown);
// a nil fn restores the always-ready default.
func (o *Orchestrator) SetReady(fn func() bool) {
	if fn == nil {
		o.ready.Store(nil)
		return
	}
	o.ready.Store(&fn)
}

// Ready reports the installed readiness probe's verdict (true when none
// is installed).
func (o *Orchestrator) Ready() bool {
	if p := o.ready.Load(); p != nil {
		return (*p)()
	}
	return true
}

// Register adds a service under name. It returns the datapath handle the
// daemon calls Observe on.
func (o *Orchestrator) Register(name string, cfg ServiceConfig) (*ManagedService, error) {
	if name == "" {
		return nil, fmt.Errorf("daemon: service name must be non-empty")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.services[name]; dup {
		return nil, fmt.Errorf("daemon: service %q already registered", name)
	}
	svc := cfg.Service
	if svc == nil {
		svc = Advisory(name)
	}
	pol := cfg.Policy
	if pol == nil {
		pol = core.NewThresholdPolicy(core.DefaultNetworkConfig(80))
	}
	m := &ManagedService{name: name, svc: svc, pol: pol, model: cfg.Model}
	o.services[name] = m
	o.order = append(o.order, name)
	return m, nil
}

// Advisory returns a Service with no hardware attached: shifts always
// succeed, modeling where the workload would run (apply logs each one).
// Placement is atomic because the orchestrator releases its mutex while
// Shift runs — status reads race the write on a plain field.
func Advisory(name string) core.Service {
	return &advisoryService{name: name}
}

type advisoryService struct {
	name  string
	where atomic.Int32 // core.Placement; zero value = Host
}

func (a *advisoryService) Name() string { return a.name }

func (a *advisoryService) Placement() core.Placement {
	return core.Placement(a.where.Load())
}

func (a *advisoryService) Shift(to core.Placement) error {
	a.where.Store(int32(to))
	return nil
}

// Start launches the background evaluation loop.
func (o *Orchestrator) Start() {
	o.mu.Lock()
	if o.started {
		o.mu.Unlock()
		return
	}
	o.started = true
	o.mu.Unlock()
	go o.loop()
}

// Close stops the evaluation loop. It is idempotent.
func (o *Orchestrator) Close() { o.stopOnce.Do(func() { close(o.stop) }) }

func (o *Orchestrator) loop() {
	tick := time.NewTicker(o.period)
	defer tick.Stop()
	for {
		select {
		case <-o.stop:
			return
		case now := <-tick.C:
			o.Tick(now)
		}
	}
}

// Tick performs one sampling + decision step for every service at wall
// time now. The background loop calls it; tests drive it directly with
// synthetic clocks.
func (o *Orchestrator) Tick(now time.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.epoch.IsZero() {
		o.epoch = now
	}
	for _, name := range o.order {
		o.tickService(o.services[name], now)
	}
}

func (o *Orchestrator) tickService(m *ManagedService, now time.Time) {
	count := m.total()
	if m.lastAt.IsZero() {
		m.lastCount, m.lastAt = count, now
		return
	}
	dt := now.Sub(m.lastAt).Seconds()
	if dt <= 0 {
		return
	}
	kpps := float64(count-m.lastCount) / dt / 1000
	m.lastCount, m.lastAt = count, now
	m.window = append(m.window, kpps)
	if len(m.window) > 32 {
		m.window = m.window[1:]
	}

	// A transition is in flight on another goroutine (or further up this
	// stack): keep metering, but make no new decision until it lands.
	if m.shifting {
		return
	}

	placement := m.svc.Placement()
	// A manual pin overrides the policy until released.
	if m.pinned != nil {
		if placement != *m.pinned {
			o.apply(m, now, *m.pinned, "manual placement pin")
		}
		return
	}
	s := core.Sample{
		At:        now.Sub(o.epoch),
		Placement: placement,
		RateKpps:  kpps,
		PowerW:    math.NaN(),
		CPUUtil:   math.NaN(),
	}
	if m.model != nil {
		s.PowerW, s.CPUUtil = m.model(kpps)
	}
	if d := m.pol.Observe(s); d.Shift {
		if o.apply(m, now, d.Target, d.Reason) {
			m.pol.Reset()
		}
	}
}

// apply shifts m to target, logging the outcome. It reports success.
// It is called with the orchestrator mutex held and RELEASES it while
// the service's transition task runs — real transition work (cache
// warm-up, state handoff, fast-path drains) takes wall time, and the
// control plane must stay responsive (and pinnable) throughout. The
// m.shifting flag keeps concurrent ticks and pins from overlapping a
// second transition; they re-evaluate on the next tick instead.
// Repeated identical failures (a pinned service whose transition task
// keeps failing is retried every tick) are logged once, not per tick.
func (o *Orchestrator) apply(m *ManagedService, now time.Time, target core.Placement, reason string) bool {
	if m.shifting {
		return false
	}
	m.shifting = true
	from := m.svc.Placement()
	o.mu.Unlock()
	start := time.Now()
	err := m.svc.Shift(target)
	dur := time.Since(start)
	rolledBack := false
	var rollbackErr error
	if err != nil && m.svc.Placement() != from {
		// The transition task failed after the service had already left
		// its prior placement — the exact stranding a wedged daemon shows.
		// Roll back so placement, dispatch and the fast-path fence agree
		// again; the policy (or pin) re-evaluates from a sane state on the
		// next tick instead of retrying forever from limbo.
		if rollbackErr = m.svc.Shift(from); rollbackErr == nil {
			rolledBack = true
		}
	}
	o.mu.Lock()
	m.shifting = false
	m.lastShiftDur = dur
	if err != nil {
		m.shiftRetries++
		if rolledBack {
			m.shiftRollbacks++
		}
		msg := err.Error()
		if rollbackErr != nil {
			msg += "; rollback to " + from.String() + " also failed: " + rollbackErr.Error()
		}
		if msg != m.lastErr {
			if rolledBack {
				log.Printf("%s: on-demand: shift to %s failed, rolled back to %s: %v", m.name, target, from, err)
			} else {
				log.Printf("%s: on-demand: shift to %s failed: %v", m.name, target, msg)
			}
		}
		m.lastErr = msg
		return false
	}
	m.lastErr = ""
	m.shifts++
	entry := fmt.Sprintf("%s -> %s in %v (%s)", now.Format(time.RFC3339), target,
		dur.Round(time.Microsecond), reason)
	if cr, ok := m.svc.(core.CostReporter); ok {
		if c := cr.TransitionCost(target); c.Note != "" {
			entry += " [task: " + c.Note + "]"
		}
	}
	m.transitions = append(m.transitions, entry)
	if len(m.transitions) > 32 {
		m.transitions = m.transitions[1:]
	}
	log.Printf("%s: on-demand: shift to %s in %v (%s)", m.name, target, dur.Round(time.Microsecond), reason)
	return true
}

// Thresholds is the runtime-adjustable §9.1 mirrored rate pair ("all of
// its parameters are configurable"). Zero values mean "keep the current
// setting"; negative or non-finite values are rejected. Clamped reports
// that the to-host threshold was lowered to preserve hysteresis.
type Thresholds struct {
	ToNetworkKpps float64 `json:"to_network_kpps"`
	ToHostKpps    float64 `json:"to_host_kpps"`
	Clamped       bool    `json:"clamped,omitempty"`
	Note          string  `json:"note,omitempty"`
}

// ServiceStatus is the control-plane view of one managed service.
type ServiceStatus struct {
	Name       string  `json:"name"`
	Placement  string  `json:"placement"`
	Policy     string  `json:"policy"`
	Pinned     string  `json:"pinned,omitempty"`
	Shifts     int     `json:"shifts"`
	Requests   uint64  `json:"requests"`
	WindowKpps float64 `json:"window_kpps"`
	// ModeledWatts is the service's power model evaluated at the window
	// rate — the host-software draw a fleet controller ranks placement
	// candidates by. Absent when the service has no power model.
	ModeledWatts float64 `json:"modeled_watts,omitempty"`

	// Shifting reports a transition task in flight right now.
	Shifting bool `json:"shifting,omitempty"`
	// ShiftRetries counts failed shift attempts over the service's life.
	ShiftRetries int `json:"shift_retries,omitempty"`
	// ShiftRollbacks counts failed shifts that left the service stranded
	// mid-transition and were rolled back to the prior placement.
	ShiftRollbacks int `json:"shift_rollbacks,omitempty"`
	// LastShiftDuration is how long the most recent shift attempt took
	// (successful or not), as a Go duration string.
	LastShiftDuration string `json:"last_shift_duration,omitempty"`

	Thresholds  *Thresholds `json:"thresholds,omitempty"`
	Transitions []string    `json:"transitions,omitempty"`
	LastError   string      `json:"last_error,omitempty"`
}

func (o *Orchestrator) lookup(name string) (*ManagedService, error) {
	m, ok := o.services[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownService, name)
	}
	return m, nil
}

func statusLocked(m *ManagedService) ServiceStatus {
	s := ServiceStatus{
		Name:           m.name,
		Placement:      m.svc.Placement().String(),
		Policy:         m.pol.Name(),
		Shifts:         m.shifts,
		Requests:       m.total(),
		LastError:      m.lastErr,
		Shifting:       m.shifting,
		ShiftRetries:   m.shiftRetries,
		ShiftRollbacks: m.shiftRollbacks,
	}
	if m.lastShiftDur > 0 {
		s.LastShiftDuration = m.lastShiftDur.Round(time.Microsecond).String()
	}
	if m.pinned != nil {
		s.Pinned = m.pinned.String()
	}
	if n := len(m.window); n > 0 {
		var sum float64
		for _, k := range m.window {
			sum += k
		}
		s.WindowKpps = sum / float64(n)
	}
	if m.model != nil {
		if w, _ := m.model(s.WindowKpps); !math.IsNaN(w) {
			s.ModeledWatts = w
		}
	}
	if tun, ok := m.pol.(core.Tunable); ok {
		toNet, toHost := tun.RateThresholds()
		s.Thresholds = &Thresholds{ToNetworkKpps: toNet, ToHostKpps: toHost}
	}
	if len(m.transitions) > 0 {
		s.Transitions = append(s.Transitions, m.transitions...)
	}
	return s
}

// Status snapshots one service.
func (o *Orchestrator) Status(name string) (ServiceStatus, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m, err := o.lookup(name)
	if err != nil {
		return ServiceStatus{}, err
	}
	return statusLocked(m), nil
}

// Statuses snapshots every service in registration order.
func (o *Orchestrator) Statuses() []ServiceStatus {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]ServiceStatus, 0, len(o.order))
	for _, name := range o.order {
		out = append(out, statusLocked(o.services[name]))
	}
	return out
}

// Thresholds reads a service's mirrored rate pair. ErrNotTunable if its
// policy has none.
func (o *Orchestrator) Thresholds(name string) (Thresholds, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m, err := o.lookup(name)
	if err != nil {
		return Thresholds{}, err
	}
	tun, ok := m.pol.(core.Tunable)
	if !ok {
		return Thresholds{}, fmt.Errorf("%w: %q runs policy %s", ErrNotTunable, name, m.pol.Name())
	}
	toNet, toHost := tun.RateThresholds()
	return Thresholds{ToNetworkKpps: toNet, ToHostKpps: toHost}, nil
}

// SetThresholds updates a service's mirrored rate pair (partial updates
// allowed: zero keeps the current value). Invalid values are rejected;
// any hysteresis clamp is reported in the returned Thresholds.
func (o *Orchestrator) SetThresholds(name string, t Thresholds) (Thresholds, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m, err := o.lookup(name)
	if err != nil {
		return Thresholds{}, err
	}
	tun, ok := m.pol.(core.Tunable)
	if !ok {
		return Thresholds{}, fmt.Errorf("%w: %q runs policy %s", ErrNotTunable, name, m.pol.Name())
	}
	clamped, err := tun.SetRateThresholds(t.ToNetworkKpps, t.ToHostKpps)
	if err != nil {
		return Thresholds{}, err
	}
	toNet, toHost := tun.RateThresholds()
	out := Thresholds{ToNetworkKpps: toNet, ToHostKpps: toHost, Clamped: clamped}
	if clamped {
		out.Note = "to_host_kpps clamped below to_network_kpps to preserve hysteresis"
	}
	return out, nil
}

// Pin overrides the policy, holding name at p until Unpin. The shift is
// attempted immediately; if the transition task fails the pin still
// takes effect — the failure is recorded in the service status and the
// orchestrator retries every tick until it succeeds or the pin is
// released.
func (o *Orchestrator) Pin(name string, p core.Placement) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	m, err := o.lookup(name)
	if err != nil {
		return err
	}
	m.pinned = &p
	if m.svc.Placement() != p {
		o.apply(m, time.Now(), p, "manual placement pin")
	}
	return nil
}

// AttachDataplane surfaces a serving engine's per-shard stats for the
// registered service name on the /v1 control API. Typically paired with
// ManagedService.UseCounter so rate metering and stats come from the
// same engine.
func (o *Orchestrator) AttachDataplane(name string, src DataplaneSource) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, err := o.lookup(name); err != nil {
		return err
	}
	if o.dataplanes == nil {
		o.dataplanes = make(map[string]DataplaneSource)
	}
	o.dataplanes[name] = src
	return nil
}

// Dataplane snapshots the engine attached to name.
func (o *Orchestrator) Dataplane(name string) (dataplane.Stats, error) {
	o.mu.Lock()
	src := o.dataplanes[name]
	_, err := o.lookup(name)
	o.mu.Unlock()
	if err != nil {
		return dataplane.Stats{}, err
	}
	if src == nil {
		return dataplane.Stats{}, fmt.Errorf("%w: %q", ErrNoDataplane, name)
	}
	return src.Snapshot(), nil
}

// Dataplanes snapshots every attached engine by service name.
func (o *Orchestrator) Dataplanes() map[string]dataplane.Stats {
	o.mu.Lock()
	srcs := make(map[string]DataplaneSource, len(o.dataplanes))
	for name, src := range o.dataplanes {
		srcs[name] = src
	}
	o.mu.Unlock()
	out := make(map[string]dataplane.Stats, len(srcs))
	for name, src := range srcs {
		out[name] = src.Snapshot()
	}
	return out
}

// Unpin releases a manual placement pin, returning name to its policy.
func (o *Orchestrator) Unpin(name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	m, err := o.lookup(name)
	if err != nil {
		return err
	}
	if m.pinned != nil {
		m.pinned = nil
		m.pol.Reset()
	}
	return nil
}
