package daemon

import (
	"fmt"
	"log"
	"net"

	"incod/internal/dataplane"
	"incod/internal/netio"
)

// EngineOptions sizes a daemon's serving engine from its I/O flags.
type EngineOptions struct {
	// Addr is the UDP listen address.
	Addr string
	// Sockets selects the I/O mode: 0 keeps the classic single-reader
	// engine; > 0 opens that many SO_REUSEPORT sockets and serves them
	// in the batched per-shard-socket mode (one shard worker per
	// socket, recvmmsg/sendmmsg batches). Requires Linux when > 1.
	Sockets int
	// RxBatch and TxBatch override the batched-mode batch sizes
	// (0 = engine defaults).
	RxBatch, TxBatch int
	// BufCache sizes the per-worker private receive-buffer free lists in
	// batched mode (dataplane.Config.BufCache): 0 = engine default
	// (RxBatch), negative disables the private lists.
	BufCache int
	// Engine picks the batched-mode transport: "" or "batched" uses
	// recvmmsg/sendmmsg (NewBatchConn's choice), "uring" asks for the
	// io_uring backend and degrades to mmsg — with a logged warning —
	// when netio.ProbeUring fails. "single" forces the portable
	// fallback. Ignored when Sockets is 0.
	Engine string
	// BusyPollUs enables SO_BUSY_POLL on every serving socket for that
	// many microseconds (0 = off). Failure to set it is logged, not
	// fatal (needs CAP_NET_ADMIN on older kernels).
	BusyPollUs int
	// Pin locks each shard worker to a CPU (dataplane.Config.PinShards).
	Pin bool
	// GSOTx requests train-oriented reply transmission
	// (dataplane.Config.GSOTx): replies to one destination are coalesced
	// into UDP_SEGMENT trains per flush. Degrades to per-datagram sends —
	// with a logged warning — on kernels without UDP_SEGMENT. Ignored
	// when Sockets is 0.
	GSOTx bool
}

// ListenEngine opens o.Addr and builds the serving engine in the mode
// o.Sockets selects. In batched mode cfg.Shards is superseded by the
// socket count (one shard owns one socket), and o.Engine picks the
// transport rung; a requested uring backend that the kernel cannot
// provide degrades to mmsg so the daemon always comes up — the chosen
// backend is reported truthfully in the /v1/dataplane stats.
func ListenEngine(o EngineOptions, h dataplane.Handler, cfg dataplane.Config) (*dataplane.Engine, error) {
	cfg.RxBatch, cfg.TxBatch = o.RxBatch, o.TxBatch
	cfg.BufCache = o.BufCache
	cfg.PinShards = o.Pin
	cfg.GSOTx = o.GSOTx
	if o.Sockets <= 0 {
		conn, err := net.ListenPacket("udp", o.Addr)
		if err != nil {
			return nil, err
		}
		return dataplane.New(conn, h, cfg), nil
	}
	conns, err := netio.ListenReusePortGroup("udp", o.Addr, o.Sockets)
	if err != nil {
		return nil, err
	}
	if o.BusyPollUs > 0 {
		for i, c := range conns {
			if err := netio.SetBusyPoll(c, o.BusyPollUs); err != nil {
				log.Printf("%s: SO_BUSY_POLL unavailable (socket %d, continuing without): %v", cfg.Name, i, err)
				break
			}
		}
	}
	bcs, err := buildBatchConns(conns, o, cfg)
	if err != nil {
		// A mid-group uring failure closed some sockets (the ring owns
		// its socket); rebuild the whole group on the mmsg rung so the
		// daemon still comes up, uniformly.
		addr := conns[0].LocalAddr().String()
		for _, c := range conns {
			_ = c.Close()
		}
		log.Printf("%s: rebuilding socket group on the mmsg backend: %v", cfg.Name, err)
		if conns, err = netio.ListenReusePortGroup("udp", addr, o.Sockets); err != nil {
			return nil, err
		}
		o.Engine = "batched"
		if bcs, err = buildBatchConns(conns, o, cfg); err != nil {
			return nil, err
		}
	}
	return dataplane.NewBatchedConns(conns, bcs, h, cfg), nil
}

// buildBatchConns wraps each serving socket in the transport o.Engine
// selects.
func buildBatchConns(conns []net.PacketConn, o EngineOptions, cfg dataplane.Config) ([]netio.BatchConn, error) {
	engine := o.Engine
	if engine == "uring" {
		if err := netio.ProbeUring(); err != nil {
			log.Printf("%s: io_uring backend unavailable, falling back to mmsg: %v", cfg.Name, err)
			engine = "batched"
		}
	}
	bcs := make([]netio.BatchConn, len(conns))
	for i, c := range conns {
		switch engine {
		case "uring":
			// Size the provided-buffer ring to absorb a few full receive
			// batches per shard before the multishot starves.
			bc, err := netio.NewUringConn(c, netio.UringConfig{
				Entries: maxInt(2*cfg.TxBatch, 64),
				Buffers: maxInt(8*cfg.RxBatch, 256),
				BufSize: cfg.MaxDatagram,
			})
			if err != nil {
				// The probe passed but this ring failed (fd limits, memlock):
				// degrade the whole group, releasing rings already built so
				// the group serves uniformly.
				log.Printf("%s: uring ring %d failed, falling back to mmsg: %v", cfg.Name, i, err)
				for j := 0; j < i; j++ {
					_ = bcs[j].Close()
				}
				return nil, fmt.Errorf("daemon: uring backend failed after probe: %w", err)
			}
			bcs[i] = bc
		case "single":
			bcs[i] = netio.NewSingleConn(c)
		default:
			bcs[i] = netio.NewBatchConn(c)
		}
	}
	return bcs, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
