package daemon

import (
	"net"

	"incod/internal/dataplane"
	"incod/internal/netio"
)

// EngineOptions sizes a daemon's serving engine from its I/O flags.
type EngineOptions struct {
	// Addr is the UDP listen address.
	Addr string
	// Sockets selects the I/O mode: 0 keeps the classic single-reader
	// engine; > 0 opens that many SO_REUSEPORT sockets and serves them
	// in the batched per-shard-socket mode (one shard worker per
	// socket, recvmmsg/sendmmsg batches). Requires Linux when > 1.
	Sockets int
	// RxBatch and TxBatch override the batched-mode batch sizes
	// (0 = engine defaults).
	RxBatch, TxBatch int
}

// ListenEngine opens o.Addr and builds the serving engine in the mode
// o.Sockets selects. In batched mode cfg.Shards is superseded by the
// socket count (one shard owns one socket).
func ListenEngine(o EngineOptions, h dataplane.Handler, cfg dataplane.Config) (*dataplane.Engine, error) {
	cfg.RxBatch, cfg.TxBatch = o.RxBatch, o.TxBatch
	if o.Sockets <= 0 {
		conn, err := net.ListenPacket("udp", o.Addr)
		if err != nil {
			return nil, err
		}
		return dataplane.New(conn, h, cfg), nil
	}
	conns, err := netio.ListenReusePortGroup("udp", o.Addr, o.Sockets)
	if err != nil {
		return nil, err
	}
	return dataplane.NewBatched(conns, h, cfg), nil
}
