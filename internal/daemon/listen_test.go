package daemon

import (
	"testing"

	"incod/internal/dataplane"
)

func TestListenEngineModes(t *testing.T) {
	echo := dataplane.HandlerFunc(func(in []byte, scratch *[]byte) ([]byte, bool) {
		*scratch = append((*scratch)[:0], in...)
		return *scratch, true
	})

	single, err := ListenEngine(EngineOptions{Addr: "127.0.0.1:0"}, echo, dataplane.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if single.Batched() {
		t.Fatal("Sockets=0 must build the single-reader engine")
	}

	batched, err := ListenEngine(EngineOptions{Addr: "127.0.0.1:0", Sockets: 2, RxBatch: 16, TxBatch: 16},
		echo, dataplane.Config{})
	if err != nil {
		t.Skipf("reuseport group unavailable: %v", err)
	}
	defer batched.Close()
	st := batched.Snapshot()
	if !batched.Batched() || st.Sockets != 2 || st.RxBatch != 16 || st.TxBatch != 16 {
		t.Fatalf("batched engine geometry wrong: %+v", st)
	}
}
