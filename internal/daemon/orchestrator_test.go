package daemon

import (
	"strings"
	"sync"
	"testing"
	"time"

	"incod/internal/core"
	"incod/internal/dataplane"
	"incod/internal/power"
)

// drive feeds m a synthetic request stream at kpps for d of synthetic
// wall time, stepping the orchestrator's decision tick manually.
func drive(o *Orchestrator, m *ManagedService, start time.Time, kpps float64, d time.Duration) time.Time {
	const step = 100 * time.Millisecond
	now := start
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		now = now.Add(step)
		m.ObserveN(uint64(kpps * 1000 * step.Seconds()))
		o.Tick(now)
	}
	return now
}

// newTestOrch returns an un-started orchestrator (tests drive Tick) with
// one threshold-policy service, pre-ticked so rate metering is primed.
func newTestOrch(t *testing.T, cross float64) (*Orchestrator, *ManagedService, time.Time) {
	t.Helper()
	o := NewOrchestrator(0)
	m, err := o.Register("test", ServiceConfig{
		Policy: core.NewThresholdPolicy(core.DefaultNetworkConfig(cross)),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(0, 0)
	o.Tick(start) // prime lastAt/epoch
	return o, m, start
}

func placement(t *testing.T, o *Orchestrator, name string) string {
	t.Helper()
	s, err := o.Status(name)
	if err != nil {
		t.Fatal(err)
	}
	return s.Placement
}

func TestOrchestratorShiftsUpAndBack(t *testing.T) {
	o, m, start := newTestOrch(t, 100)
	if placement(t, o, "test") != "host" {
		t.Fatal("service should start on the host")
	}
	// Low rate: stays.
	now := drive(o, m, start, 20, 3*time.Second)
	if placement(t, o, "test") != "host" {
		t.Fatal("low rate must stay on host")
	}
	// Sustained high rate: shifts.
	now = drive(o, m, now, 200, 2*time.Second)
	if placement(t, o, "test") != "network" {
		t.Fatal("sustained high rate should shift to network")
	}
	// Inside the hysteresis band: holds.
	now = drive(o, m, now, 90, 5*time.Second)
	if placement(t, o, "test") != "network" {
		t.Fatal("hysteresis band must not shift back")
	}
	// Low: returns.
	_ = drive(o, m, now, 5, 3*time.Second)
	if placement(t, o, "test") != "host" {
		t.Fatal("low sustained rate should shift back")
	}
	s, _ := o.Status("test")
	if s.Shifts != 2 {
		t.Errorf("shifts = %d, want 2", s.Shifts)
	}
	if len(s.Transitions) != 2 {
		t.Errorf("transition log = %v, want 2 entries", s.Transitions)
	}
}

func TestOrchestratorSpikeSuppression(t *testing.T) {
	o, m, start := newTestOrch(t, 100)
	now := drive(o, m, start, 20, 3*time.Second)
	// A 200ms 300 kpps spike, then quiet: the 1s window averages it to
	// ~76 kpps, below the 110 kpps up-threshold.
	now = drive(o, m, now, 300, 200*time.Millisecond)
	_ = drive(o, m, now, 20, 3*time.Second)
	s, _ := o.Status("test")
	if s.Placement != "host" || s.Shifts != 0 {
		t.Errorf("spike should not shift (placement %v, shifts %d)", s.Placement, s.Shifts)
	}
}

// The power policy runs live off a modeled RAPL (an energy-model curve
// mapping the metered rate to watts and CPU) — the same decision code the
// sim-time host controller uses.
func TestOrchestratorPowerPolicy(t *testing.T) {
	curve := power.SoftwareCurve{
		Name: "synthetic", IdleWatts: 40,
		JumpWatts: 50, JumpScaleKpps: 50, PeakKpps: 100,
	}
	pol, err := core.PolicyByName("power", 80)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOrchestrator(0)
	m, err := o.Register("kvs", ServiceConfig{Policy: pol, Model: CurveModel(curve)})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(0, 0)
	o.Tick(start)
	// 90 kpps: ~81 W and 90% utilization, sustained past the 3 s trigger.
	now := drive(o, m, start, 90, 4*time.Second)
	if placement(t, o, "kvs") != "network" {
		t.Fatal("sustained power+CPU should shift to network")
	}
	// Low device rate sustained: back to host (to-host threshold 56 kpps).
	_ = drive(o, m, now, 10, 4*time.Second)
	if placement(t, o, "kvs") != "host" {
		t.Fatal("low sustained rate should shift back to host")
	}
}

func TestOrchestratorPinOverridesPolicy(t *testing.T) {
	o, m, start := newTestOrch(t, 100)
	if err := o.Pin("test", core.Network); err != nil {
		t.Fatal(err)
	}
	if placement(t, o, "test") != "network" {
		t.Fatal("pin must shift immediately")
	}
	// Zero traffic would shift an unpinned service back; the pin holds.
	now := drive(o, m, start, 0, 5*time.Second)
	if placement(t, o, "test") != "network" {
		t.Fatal("pin must override the policy")
	}
	if err := o.Unpin("test"); err != nil {
		t.Fatal(err)
	}
	_ = drive(o, m, now, 0, 4*time.Second)
	if placement(t, o, "test") != "host" {
		t.Fatal("after unpin the policy should take over again")
	}
}

func TestOrchestratorShiftFailureRetries(t *testing.T) {
	o := NewOrchestrator(0)
	fail := true
	svc := &core.FuncService{ServiceName: "flaky", Where: core.Host,
		OnShift: func(core.Placement) error {
			if fail {
				return errTest
			}
			return nil
		}}
	m, err := o.Register("flaky", ServiceConfig{
		Service: svc,
		Policy:  core.NewThresholdPolicy(core.DefaultNetworkConfig(100)),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(0, 0)
	o.Tick(start)
	now := drive(o, m, start, 300, 3*time.Second)
	s, _ := o.Status("flaky")
	if s.Placement != "host" || s.LastError == "" {
		t.Fatalf("failed shift must stay put and record the error, got %+v", s)
	}
	fail = false
	_ = drive(o, m, now, 300, 2*time.Second)
	s, _ = o.Status("flaky")
	if s.Placement != "network" || s.LastError != "" {
		t.Fatalf("orchestrator should retry and clear the error, got %+v", s)
	}
}

// strandingService violates the core.Service stay-put contract: while
// unhealed, every up-shift moves the placement to the target AND returns
// an error — the wedged-daemon shape where the flip landed but the
// transition task died. Down-shifts (including the orchestrator's
// rollback) always succeed.
type strandingService struct {
	mu     sync.Mutex
	where  core.Placement
	healed bool
	shifts []core.Placement
}

func (s *strandingService) Name() string { return "strander" }

func (s *strandingService) Placement() core.Placement {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.where
}

func (s *strandingService) Shift(to core.Placement) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if to == s.where {
		return nil
	}
	s.shifts = append(s.shifts, to)
	s.where = to
	if to == core.Network && !s.healed {
		return errTest
	}
	return nil
}

func (s *strandingService) heal() {
	s.mu.Lock()
	s.healed = true
	s.mu.Unlock()
}

// A shift that fails AFTER moving the service must be rolled back: the
// orchestrator restores the prior placement, counts it, and surfaces the
// error — rather than reporting a placement the failed transition never
// finished establishing.
func TestOrchestratorRollsBackStrandedShift(t *testing.T) {
	o := NewOrchestrator(0)
	svc := &strandingService{where: core.Host}
	m, err := o.Register("strander", ServiceConfig{
		Service: svc,
		Policy:  core.NewThresholdPolicy(core.DefaultNetworkConfig(100)),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(0, 0)
	o.Tick(start)
	now := drive(o, m, start, 300, 1500*time.Millisecond)
	s, _ := o.Status("strander")
	if s.Placement != "host" {
		t.Fatalf("stranded shift must be rolled back to host, got %+v", s)
	}
	if s.ShiftRollbacks == 0 {
		t.Fatalf("rollbacks must be counted, got %+v", s)
	}
	if s.LastError == "" {
		t.Fatalf("original shift error must be surfaced, got %+v", s)
	}
	svc.mu.Lock()
	gotShifts := append([]core.Placement(nil), svc.shifts[:2]...)
	svc.mu.Unlock()
	if gotShifts[0] != core.Network || gotShifts[1] != core.Host {
		t.Fatalf("shift sequence = %v, want [network host ...]", gotShifts)
	}
	rollbacks := s.ShiftRollbacks
	// The rate is still high, so later ticks retry; the now-healthy
	// service converges on the network and the error clears.
	svc.heal()
	_ = drive(o, m, now, 300, 2*time.Second)
	s, _ = o.Status("strander")
	if s.Placement != "network" || s.LastError != "" {
		t.Fatalf("post-rollback retry should converge, got %+v", s)
	}
	if s.ShiftRollbacks != rollbacks {
		t.Fatalf("rollback count is lifetime (%d), got %+v", rollbacks, s)
	}
}

// A pin whose transition task fails still takes effect: the failure is
// recorded in status and the orchestrator retries every tick.
func TestPinWithFailingShiftRetries(t *testing.T) {
	o := NewOrchestrator(0)
	fail := true
	svc := &core.FuncService{ServiceName: "flaky", Where: core.Host,
		OnShift: func(core.Placement) error {
			if fail {
				return errTest
			}
			return nil
		}}
	m, err := o.Register("flaky", ServiceConfig{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Pin("flaky", core.Network); err != nil {
		t.Fatalf("pin must apply even when the shift fails, got %v", err)
	}
	s, _ := o.Status("flaky")
	if s.Pinned != "network" || s.Placement != "host" || s.LastError == "" {
		t.Fatalf("want pinned+error status, got %+v", s)
	}
	fail = false
	start := time.Unix(0, 0)
	o.Tick(start)
	_ = drive(o, m, start, 0, 500*time.Millisecond)
	s, _ = o.Status("flaky")
	if s.Placement != "network" || s.LastError != "" {
		t.Fatalf("pin retry should converge, got %+v", s)
	}
}

// A manual pin arriving while a policy-driven shift is in flight must
// neither deadlock nor be lost: the orchestrator releases its mutex for
// the duration of the transition task, stays responsive (status shows
// shifting), and converges on the pinned placement once the in-flight
// shift lands.
func TestPinRacesInFlightShift(t *testing.T) {
	o := NewOrchestrator(0)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc := &core.FuncService{ServiceName: "slow", Where: core.Host,
		OnShift: func(to core.Placement) error {
			if to == core.Network {
				// Block the first up-shift mid-flight until released.
				once.Do(func() {
					close(entered)
					<-release
				})
			}
			return nil
		}}
	m, err := o.Register("slow", ServiceConfig{
		Service: svc,
		Policy:  core.NewThresholdPolicy(core.DefaultNetworkConfig(100)),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(0, 0)
	o.Tick(start)

	// Drive a sustained high rate on another goroutine; the decisive
	// Tick will block inside svc.Shift with the mutex released.
	tickDone := make(chan time.Time, 1)
	go func() {
		tickDone <- drive(o, m, start, 300, 3*time.Second)
	}()
	<-entered

	// Mid-shift: the control plane must stay responsive and honest...
	s, err := o.Status("slow")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Shifting {
		t.Fatalf("status during a transition must report shifting, got %+v", s)
	}
	// ...and a manual pin must be accepted without deadlock. The service
	// is still on the host (the shift has not landed), so the pin's
	// immediate apply is a no-op; the in-flight shift lands afterwards
	// and the next ticks must bring the service back to the pin.
	if err := o.Pin("slow", core.Host); err != nil {
		t.Fatal(err)
	}
	close(release)
	now := <-tickDone

	_ = drive(o, m, now, 300, time.Second)
	s, _ = o.Status("slow")
	if s.Placement != "host" || s.Pinned != "host" {
		t.Fatalf("pin must win over the raced shift, got %+v", s)
	}
	if s.Shifting {
		t.Fatalf("no transition should be in flight at rest, got %+v", s)
	}
	if s.LastShiftDuration == "" {
		t.Fatalf("shift duration must be recorded, got %+v", s)
	}
}

// Shift failures surface on the status API: the retry count and the last
// error string, which clear-on-success semantics keep honest.
func TestShiftRetryCountAndDurationInStatus(t *testing.T) {
	o := NewOrchestrator(0)
	fail := true
	svc := &core.FuncService{ServiceName: "flaky", Where: core.Host,
		OnShift: func(core.Placement) error {
			if fail {
				return errTest
			}
			return nil
		}}
	m, err := o.Register("flaky", ServiceConfig{
		Service: svc,
		Policy:  core.NewThresholdPolicy(core.DefaultNetworkConfig(100)),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(0, 0)
	o.Tick(start)
	now := drive(o, m, start, 300, 3*time.Second)
	s, _ := o.Status("flaky")
	if s.ShiftRetries == 0 {
		t.Fatalf("failed attempts must be counted, got %+v", s)
	}
	if s.LastError == "" || s.LastShiftDuration == "" {
		t.Fatalf("failure detail missing from status: %+v", s)
	}
	retriesSoFar := s.ShiftRetries
	fail = false
	_ = drive(o, m, now, 300, 2*time.Second)
	s, _ = o.Status("flaky")
	if s.Placement != "network" || s.LastError != "" {
		t.Fatalf("success must clear the error, got %+v", s)
	}
	if s.ShiftRetries != retriesSoFar {
		t.Fatalf("retry count is lifetime (%d), got %+v", retriesSoFar, s)
	}
}

// A fleet controller polls /v1 aggressively — many concurrent Status /
// Statuses / Dataplanes readers — while shifts are in flight and while
// the daemon shuts down. None of that may wedge: reads stay responsive
// mid-shift (the orchestrator's mutex is released for the transition),
// and Close completes while readers keep hammering.
func TestConcurrentReadersDuringShiftAndShutdown(t *testing.T) {
	o := NewOrchestrator(time.Millisecond)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc := &core.FuncService{ServiceName: "slow", Where: core.Host,
		OnShift: func(to core.Placement) error {
			once.Do(func() {
				close(entered)
				<-release
			})
			return nil
		}}
	m, err := o.Register("slow", ServiceConfig{
		Service: svc,
		Policy:  core.NewThresholdPolicy(core.DefaultNetworkConfig(10)),
		Model:   CurveModel(power.MemcachedMellanox),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AttachDataplane("slow", snapshotFunc(func() dataplane.Stats {
		return dataplane.Stats{Mode: "single-reader", Sockets: 1}
	})); err != nil {
		t.Fatal(err)
	}
	o.Start()

	// Feed traffic so the background loop decides to shift; the shift
	// then blocks inside OnShift with the orchestrator mutex released.
	feedStop := make(chan struct{})
	go func() {
		for {
			select {
			case <-feedStop:
				return
			default:
				m.ObserveN(5000)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("shift never started")
	}

	// Hammer every read path from many goroutines, through the shift and
	// through shutdown.
	readersDone := make(chan struct{})
	stopReaders := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				if _, err := o.Status("slow"); err != nil {
					t.Errorf("Status: %v", err)
					return
				}
				_ = o.Statuses()
				_ = o.Dataplanes()
				if _, err := o.Dataplane("slow"); err != nil {
					t.Errorf("Dataplane: %v", err)
					return
				}
				_ = o.Ready()
			}
		}()
	}
	go func() { wg.Wait(); close(readersDone) }()

	// Mid-shift reads must observe the in-flight transition.
	deadline := time.After(5 * time.Second)
	for {
		s, err := o.Status("slow")
		if err != nil {
			t.Fatal(err)
		}
		if s.Shifting {
			break
		}
		select {
		case <-deadline:
			t.Fatal("status never reported the in-flight shift")
		case <-time.After(time.Millisecond):
		}
	}

	// Shut down while the shift is still blocked and readers are live;
	// Close must not wedge behind either.
	closed := make(chan struct{})
	go func() { o.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged behind an in-flight shift and concurrent readers")
	}
	close(release) // let the transition land after shutdown
	close(feedStop)

	// Readers must still drain cleanly post-Close.
	time.Sleep(10 * time.Millisecond)
	close(stopReaders)
	select {
	case <-readersDone:
	case <-time.After(5 * time.Second):
		t.Fatal("readers wedged after shutdown")
	}
}

// snapshotFunc adapts a function to DataplaneSource.
type snapshotFunc func() dataplane.Stats

func (f snapshotFunc) Snapshot() dataplane.Stats { return f() }

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "transition task failed" }

// StartControlPlane calibrates the power policy's watts trigger to the
// workload's own curve at the crossover — a fixed default would be
// unreachable for low-draw curves like libpaxos.
func TestStartControlPlanePowerCalibration(t *testing.T) {
	curve := power.SoftwareCurve{Name: "flat", IdleWatts: 40, JumpWatts: 5,
		JumpScaleKpps: 10, PeakKpps: 100}
	orch, _, _, err := StartControlPlane(StartOptions{
		Name: "svc", Policy: "power", CrossKpps: 50, Curve: curve,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer orch.Close()
	pol, ok := orch.services["svc"].pol.(*core.PowerPolicy)
	if !ok {
		t.Fatalf("policy = %T, want *core.PowerPolicy", orch.services["svc"].pol)
	}
	if got, want := pol.Config().ToNetworkPowerWatts, curve.Power(50); got != want {
		t.Errorf("watts trigger = %v, want curve draw at crossover %v", got, want)
	}

	if _, _, _, err := StartControlPlane(StartOptions{
		Name: "svc", Policy: "bogus", CrossKpps: 50, Curve: curve,
	}); err == nil {
		t.Error("unknown policy must error")
	}
}

func TestRegisterValidation(t *testing.T) {
	o := NewOrchestrator(0)
	if _, err := o.Register("", ServiceConfig{}); err == nil {
		t.Error("empty name must be rejected")
	}
	if _, err := o.Register("dup", ServiceConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Register("dup", ServiceConfig{}); err == nil {
		t.Error("duplicate name must be rejected")
	}
	if _, err := o.Status("ghost"); err == nil || !strings.Contains(err.Error(), "unknown service") {
		t.Errorf("unknown service error, got %v", err)
	}
}

func TestOrchestratorCloseIdempotent(t *testing.T) {
	o := NewOrchestrator(time.Millisecond)
	o.Start()
	o.Close()
	o.Close() // must not panic
}
