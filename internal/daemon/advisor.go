// Package daemon provides shared plumbing for the runnable UDP daemons:
// a concurrency-safe, wall-clock on-demand advisor that applies the §9.1
// network-controller policy to a live request stream. The daemons have no
// FPGA attached, so the advisor reports where the service *would* run and
// when it would shift — the controller logic is the same code path the
// simulation validates.
package daemon

import (
	"log"
	"sync"
	"time"

	"incod/internal/core"
)

// Advisor meters request rate in wall time and applies the mirrored
// threshold pairs of core.NetworkControllerConfig.
type Advisor struct {
	name string
	cfg  core.NetworkControllerConfig

	mu        sync.Mutex
	count     uint64
	samples   []advSample
	placement core.Placement
	shifts    int
	stop      chan struct{}
	stopOnce  sync.Once
}

type advSample struct {
	at   time.Time
	kpps float64
}

// New starts an advisor with thresholds bracketing crossKpps and begins
// its evaluation loop.
func New(name string, crossKpps float64) *Advisor {
	a := &Advisor{
		name: name,
		cfg:  core.DefaultNetworkConfig(crossKpps),
		stop: make(chan struct{}),
	}
	go a.loop()
	return a
}

// Observe records one served request.
func (a *Advisor) Observe() {
	a.mu.Lock()
	a.count++
	a.mu.Unlock()
}

// Placement returns the advised placement.
func (a *Advisor) Placement() core.Placement {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.placement
}

// Shifts returns how many advisory transitions have occurred.
func (a *Advisor) Shifts() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shifts
}

// Close stops the evaluation loop.
func (a *Advisor) Close() { a.stopOnce.Do(func() { close(a.stop) }) }

func (a *Advisor) loop() {
	tick := time.NewTicker(a.cfg.SamplePeriod)
	defer tick.Stop()
	var last uint64
	lastAt := time.Now()
	for {
		select {
		case <-a.stop:
			return
		case now := <-tick.C:
			last, lastAt = a.Tick(now, last, lastAt)
		}
	}
}

// Tick performs one sampling + decision step at wall time now, given the
// previous tick's count and timestamp, and returns the new ones. The
// background loop calls it; tests can drive it directly with synthetic
// clocks.
func (a *Advisor) Tick(now time.Time, last uint64, lastAt time.Time) (uint64, time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	served := a.count - last
	dt := now.Sub(lastAt).Seconds()
	if dt > 0 {
		a.samples = append(a.samples, advSample{at: now, kpps: float64(served) / dt / 1000})
	}
	keep := a.cfg.ToNetworkWindow
	if a.cfg.ToHostWindow > keep {
		keep = a.cfg.ToHostWindow
	}
	for len(a.samples) > 1 && now.Sub(a.samples[0].at) > keep {
		a.samples = a.samples[1:]
	}
	a.evaluateLocked(now)
	return a.count, now
}

func (a *Advisor) evaluateLocked(now time.Time) {
	avg := func(w time.Duration) (float64, bool) {
		var sum float64
		n := 0
		for _, s := range a.samples {
			if now.Sub(s.at) <= w {
				sum += s.kpps
				n++
			}
		}
		if n == 0 {
			return 0, false
		}
		return sum / float64(n), now.Sub(a.samples[0].at) >= w
	}
	switch a.placement {
	case core.Host:
		if r, full := avg(a.cfg.ToNetworkWindow); full && r > a.cfg.ToNetworkKpps {
			a.placement = core.Network
			a.shifts++
			a.samples = a.samples[:0]
			log.Printf("%s: on-demand advisor: shift to NETWORK (avg %.1f kpps > %.1f)", a.name, r, a.cfg.ToNetworkKpps)
		}
	case core.Network:
		if r, full := avg(a.cfg.ToHostWindow); full && r < a.cfg.ToHostKpps {
			a.placement = core.Host
			a.shifts++
			a.samples = a.samples[:0]
			log.Printf("%s: on-demand advisor: shift to HOST (avg %.1f kpps < %.1f)", a.name, r, a.cfg.ToHostKpps)
		}
	}
}
