package daemon

import (
	"incod/internal/core"
	"incod/internal/power"
)

// StartOptions wires one daemon's shared control-plane setup.
type StartOptions struct {
	// Name registers the service (kvs, dns, paxos).
	Name string
	// Policy is one of core.PolicyNames().
	Policy string
	// CrossKpps is the software/hardware crossover seeding the policy
	// thresholds.
	CrossKpps float64
	// Curve is the workload's calibrated §4 software power curve: it
	// models RAPL for power-aware policies and calibrates the "power"
	// policy's watts trigger.
	Curve power.SoftwareCurve
	// CtrlAddr serves the /v1 control API when non-empty.
	CtrlAddr string
	// Service, when non-nil, is the placement-bearing workload (e.g. a
	// nictier.Service whose Shift flips the live dataplane). Nil
	// registers the advisory stand-in.
	Service core.Service
	// Ready, when non-nil, gates GET /v1/healthz (the daemons pass the
	// serving engine's Running). Nil leaves the endpoint always ready.
	Ready func() bool
}

// StartControlPlane builds the common daemon control plane: a started
// orchestrator with one service (o.Service, or the advisory stand-in
// when nil) under the selected policy (curve-calibrated via
// core.CalibratedPolicyByName), and (when enabled) the /v1 control
// server.
func StartControlPlane(o StartOptions) (*Orchestrator, *ManagedService, *CtrlServer, error) {
	pol, err := core.CalibratedPolicyByName(o.Policy, o.CrossKpps, o.Curve)
	if err != nil {
		return nil, nil, nil, err
	}
	orch := NewOrchestrator(0)
	svc, err := orch.Register(o.Name, ServiceConfig{
		Service: o.Service, Policy: pol, Model: CurveModel(o.Curve),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	orch.SetReady(o.Ready)
	orch.Start()
	var ctrl *CtrlServer
	if o.CtrlAddr != "" {
		if ctrl, err = ServeCtrl(o.CtrlAddr, orch.Handler()); err != nil {
			orch.Close()
			return nil, nil, nil, err
		}
	}
	return orch, svc, ctrl, nil
}
