package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"time"

	"incod/internal/core"
)

// Handler returns the versioned control-plane HTTP API — the role the
// P4Runtime/gRPC channel plays for a hardware deployment's controller:
//
//	GET  /v1/services                     -> [ServiceStatus]
//	GET  /v1/services/{name}              -> ServiceStatus (placement,
//	                                         shifts, in-flight shifting
//	                                         flag, last shift duration,
//	                                         retry count, last error,
//	                                         transition log)
//	GET  /v1/services/{name}/thresholds   -> Thresholds
//	POST /v1/services/{name}/thresholds   <- Thresholds (partial updates;
//	                                         400 on invalid values, clamp
//	                                         reported in the response)
//	POST /v1/services/{name}/placement    <- {"placement": "host" |
//	                                         "network" | "auto"} (manual
//	                                         pin; "auto" returns control
//	                                         to the policy)
//	GET  /v1/dataplane                    -> {name: dataplane.Stats}
//	GET  /v1/services/{name}/dataplane    -> dataplane.Stats (per-shard
//	                                         serving-engine counters,
//	                                         rate, handler stats)
//
// Errors are JSON {"error": "..."} with 404 for unknown services or
// services without an attached dataplane, 400 for invalid input, 409 for
// threshold operations on a policy without rate thresholds, and 405 for
// unsupported methods.
func (o *Orchestrator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness, not liveness: 200 only once the installed probe
		// (the serving engine's Running) says the dataplane serves.
		// Fleet controllers gate trace replay on this instead of
		// sleeping an arbitrary spawn delay.
		if !o.Ready() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]bool{"ready": false})
			return
		}
		writeJSON(w, map[string]bool{"ready": true})
	})
	mux.HandleFunc("GET /v1/services", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.Statuses())
	})
	mux.HandleFunc("GET /v1/services/{name}", func(w http.ResponseWriter, r *http.Request) {
		s, err := o.Status(r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, s)
	})
	mux.HandleFunc("GET /v1/services/{name}/thresholds", func(w http.ResponseWriter, r *http.Request) {
		t, err := o.Thresholds(r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, t)
	})
	mux.HandleFunc("POST /v1/services/{name}/thresholds", func(w http.ResponseWriter, r *http.Request) {
		var t Thresholds
		if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		got, err := o.SetThresholds(r.PathValue("name"), t)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, got)
	})
	mux.HandleFunc("GET /v1/dataplane", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.Dataplanes())
	})
	mux.HandleFunc("GET /v1/services/{name}/dataplane", func(w http.ResponseWriter, r *http.Request) {
		st, err := o.Dataplane(r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("POST /v1/services/{name}/placement", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		var req struct {
			Placement string `json:"placement"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		if req.Placement == "auto" {
			if err := o.Unpin(name); err != nil {
				writeErr(w, err)
				return
			}
		} else {
			p, err := core.ParsePlacement(req.Placement)
			if err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			if err := o.Pin(name, p); err != nil {
				writeErr(w, err)
				return
			}
		}
		s, err := o.Status(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, s)
	})
	return mux
}

// writeErr maps orchestrator errors onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownService), errors.Is(err, ErrNoDataplane):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrNotTunable):
		writeError(w, http.StatusConflict, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// CtrlServer is a running control-plane HTTP server with a graceful
// shutdown path. Unlike a bare ListenAndServe goroutine, bind errors are
// returned synchronously from ServeCtrl and serve-time failures surface
// on Err.
type CtrlServer struct {
	srv  *http.Server
	addr net.Addr
	err  chan error
}

// ServeCtrl binds addr and serves h in the background. The returned
// error covers listen failures (bad address, port in use).
func ServeCtrl(addr string, h http.Handler) (*CtrlServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &CtrlServer{
		srv:  &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second},
		addr: ln.Addr(),
		err:  make(chan error, 1),
	}
	go func() {
		if err := c.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			c.err <- err
		}
	}()
	return c, nil
}

// Addr is the bound listen address (useful with ":0").
func (c *CtrlServer) Addr() net.Addr { return c.addr }

// Err delivers an asynchronous serve failure, if any.
func (c *CtrlServer) Err() <-chan error { return c.err }

// Shutdown gracefully stops the server, waiting for in-flight requests
// up to ctx's deadline.
func (c *CtrlServer) Shutdown(ctx context.Context) error { return c.srv.Shutdown(ctx) }
