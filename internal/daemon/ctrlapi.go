package daemon

import (
	"encoding/json"
	"net/http"
	"time"
)

// Status is the control-plane view of a daemon's on-demand advisor — the
// role the P4Runtime/gRPC channel plays for a hardware deployment's
// controller: read placement and counters, adjust the §9.1 thresholds at
// runtime.
type Status struct {
	Name       string  `json:"name"`
	Placement  string  `json:"placement"`
	Shifts     int     `json:"shifts"`
	Requests   uint64  `json:"requests"`
	WindowKpps float64 `json:"window_kpps"`

	ToNetworkKpps   float64 `json:"to_network_kpps"`
	ToNetworkWindow string  `json:"to_network_window"`
	ToHostKpps      float64 `json:"to_host_kpps"`
	ToHostWindow    string  `json:"to_host_window"`
}

// Thresholds is the runtime-adjustable §9.1 parameter set ("all of its
// parameters are configurable").
type Thresholds struct {
	ToNetworkKpps float64 `json:"to_network_kpps"`
	ToHostKpps    float64 `json:"to_host_kpps"`
}

// Status snapshots the advisor.
func (a *Advisor) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	var window float64
	if n := len(a.samples); n > 0 {
		for _, s := range a.samples {
			window += s.kpps
		}
		window /= float64(n)
	}
	return Status{
		Name:            a.name,
		Placement:       a.placement.String(),
		Shifts:          a.shifts,
		Requests:        a.count,
		WindowKpps:      window,
		ToNetworkKpps:   a.cfg.ToNetworkKpps,
		ToNetworkWindow: a.cfg.ToNetworkWindow.String(),
		ToHostKpps:      a.cfg.ToHostKpps,
		ToHostWindow:    a.cfg.ToHostWindow.String(),
	}
}

// SetThresholds updates the shift thresholds. Values <= 0 keep the
// current setting; to preserve hysteresis the to-host threshold is
// clamped below the to-network one.
func (a *Advisor) SetThresholds(t Thresholds) Thresholds {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t.ToNetworkKpps > 0 {
		a.cfg.ToNetworkKpps = t.ToNetworkKpps
	}
	if t.ToHostKpps > 0 {
		a.cfg.ToHostKpps = t.ToHostKpps
	}
	if a.cfg.ToHostKpps >= a.cfg.ToNetworkKpps {
		a.cfg.ToHostKpps = a.cfg.ToNetworkKpps * 0.7
	}
	return Thresholds{ToNetworkKpps: a.cfg.ToNetworkKpps, ToHostKpps: a.cfg.ToHostKpps}
}

// Handler returns the control-plane HTTP API:
//
//	GET  /status      -> Status JSON
//	GET  /thresholds  -> Thresholds JSON
//	POST /thresholds  <- Thresholds JSON (partial updates allowed)
func (a *Advisor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, a.Status())
	})
	mux.HandleFunc("/thresholds", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			s := a.Status()
			writeJSON(w, Thresholds{ToNetworkKpps: s.ToNetworkKpps, ToHostKpps: s.ToHostKpps})
		case http.MethodPost:
			var t Thresholds
			if err := json.NewDecoder(r.Body).Decode(&t); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeJSON(w, a.SetThresholds(t))
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

// ServeCtrl starts the control-plane API on addr in the background.
func (a *Advisor) ServeCtrl(addr string) *http.Server {
	srv := &http.Server{Addr: addr, Handler: a.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.ListenAndServe() }()
	return srv
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
