package daemon

import (
	"context"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// GracefulStop drains the control server (bounded by a 2 s timeout) and
// stops the orchestrator. ctrl may be nil (control plane disabled).
func GracefulStop(name string, ctrl *CtrlServer, orch *Orchestrator) {
	if ctrl != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := ctrl.Shutdown(ctx); err != nil {
			log.Printf("%s: control plane shutdown: %v", name, err)
		}
	}
	orch.Close()
}

// OnShutdown installs the daemons' shared exit path: a background
// watcher that waits for SIGINT/SIGTERM or a control-plane serve
// failure. On a signal it runs GracefulStop then fn (e.g. closing the
// daemon's packet socket to unblock its read loop, letting main return
// 0). A control-plane failure is not a clean exit: after GracefulStop
// the process exits 1 so supervisors restart the daemon. ctrl may be
// nil.
func OnShutdown(name string, ctrl *CtrlServer, orch *Orchestrator, fn func()) {
	var ctrlErr <-chan error // nil channel blocks forever when disabled
	if ctrl != nil {
		ctrlErr = ctrl.Err()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case s := <-sig:
			log.Printf("%s: %v, shutting down", name, s)
		case err := <-ctrlErr:
			log.Printf("%s: control plane failed: %v, exiting", name, err)
			GracefulStop(name, ctrl, orch)
			os.Exit(1)
		}
		GracefulStop(name, ctrl, orch)
		if fn != nil {
			fn()
		}
	}()
}
