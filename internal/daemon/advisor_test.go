package daemon

import (
	"testing"
	"time"

	"incod/internal/core"
)

// drive feeds the advisor a synthetic request stream at kpps for d of
// synthetic wall time, stepping the decision tick manually.
func drive(a *Advisor, start time.Time, last uint64, kpps float64, d time.Duration) (time.Time, uint64) {
	step := a.cfg.SamplePeriod
	now := start
	lastAt := start
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		now = now.Add(step)
		// Deliver the requests that arrived during this step.
		n := uint64(kpps * 1000 * step.Seconds())
		for i := uint64(0); i < n; i++ {
			a.Observe()
		}
		last, lastAt = a.Tick(now, last, lastAt)
	}
	return now, last
}

func newTestAdvisor(t *testing.T, cross float64) *Advisor {
	t.Helper()
	a := New("test", cross)
	a.Close() // kill the background loop; tests drive Tick directly
	return a
}

func TestAdvisorShiftsUpAndBack(t *testing.T) {
	a := newTestAdvisor(t, 100)
	start := time.Unix(0, 0)

	if a.Placement() != core.Host {
		t.Fatal("advisor should start on the host")
	}
	// Low rate: stays.
	now, last := drive(a, start, 0, 20, 3*time.Second)
	if a.Placement() != core.Host {
		t.Fatal("low rate must stay on host")
	}
	// Sustained high rate: shifts.
	now, last = drive(a, now, last, 200, 2*time.Second)
	if a.Placement() != core.Network {
		t.Fatal("sustained high rate should shift to network")
	}
	// Inside the hysteresis band: holds.
	now, last = drive(a, now, last, 90, 5*time.Second)
	if a.Placement() != core.Network {
		t.Fatal("hysteresis band must not shift back")
	}
	// Low: returns.
	_, _ = drive(a, now, last, 5, 3*time.Second)
	if a.Placement() != core.Host {
		t.Fatal("low sustained rate should shift back")
	}
	if a.Shifts() != 2 {
		t.Errorf("shifts = %d, want 2", a.Shifts())
	}
}

func TestAdvisorSpikeSuppression(t *testing.T) {
	a := newTestAdvisor(t, 100)
	now, last := drive(a, time.Unix(0, 0), 0, 20, 3*time.Second)
	// A 200ms 300 kpps spike, then quiet: the 1s window averages it to
	// ~76 kpps, below the 110 kpps up-threshold.
	now, last = drive(a, now, last, 300, 200*time.Millisecond)
	_, _ = drive(a, now, last, 20, 3*time.Second)
	if a.Placement() != core.Host || a.Shifts() != 0 {
		t.Errorf("spike should not shift (placement %v, shifts %d)", a.Placement(), a.Shifts())
	}
}

func TestAdvisorCloseIdempotent(t *testing.T) {
	a := New("x", 50)
	a.Close()
	a.Close() // must not panic
}
