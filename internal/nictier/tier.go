package nictier

import (
	"time"

	"incod/internal/dataplane"
	"incod/internal/fpga"
	"incod/internal/telemetry"
)

// Tier is one emulated NIC offload module: a dataplane fast path with the
// shift lifecycle Service drives. The up-shift sequence is
// Stage -> SetFastPath -> Barrier -> Warm, so a tier starts interposing
// on the write path (and falling through on reads) before its bulk state
// transfer runs; the down-shift sequence is ClearFastPath -> Park.
type Tier interface {
	dataplane.FastPath
	// Name identifies the tier in stats and logs ("lake", "emu-dns",
	// "p4xos-acceptor").
	Name() string
	// Stage arms the tier for installation: state cleared, write
	// interposition enabled, serving still falling through. Called
	// before engine dispatch flips to the tier.
	Stage() error
	// Warm performs the §9.2 bulk transition work — cache warm-up from
	// the store, zone snapshot install, acceptor state handoff — with
	// the tier already installed and pre-flip host work fenced, so no
	// update can fall between the snapshot and the flip. The host keeps
	// serving throughout.
	Warm() error
	// Park performs the down-shift transition work after the fast path
	// has been drained: flush caches, drop tables, hand state back.
	Park() error
	// Counters exposes the tier's protocol counters (folded into
	// dataplane Stats as the "tier" map).
	Counters() *telemetry.AtomicCounters
	// HitRatio is the fraction of tier-classified traffic the tier
	// served itself rather than passing to the host.
	HitRatio() float64
	// PowerWatts is the card's modeled in-server power increment right
	// now: the active design draw while serving, the park-reset draw
	// while idle.
	PowerWatts() float64
}

// meterBuckets configures every tier's utilization rate meter.
const (
	meterBucket  = 100 * time.Millisecond
	meterBuckets = 10
)

// designWatts models the in-server power increment of a board running
// design c at pipeline utilization util, from the §5 component constants:
// reference-NIC base, fixed application logic, PEs, external memories,
// plus the (small, §4.3) dynamic term. This deliberately does not reuse
// fpga.Board, which is bound to the simulator clock; the two models share
// the same §5 constants but the board adds sim-time load tracking the
// wall-clock tiers meter themselves.
func designWatts(c fpga.Config, util float64) float64 {
	p := fpga.NICBaseCardWatts + c.LogicFixedWatts + float64(c.NumPEs)*fpga.PEWatts
	if c.UsesDRAM {
		p += fpga.DRAMWatts
	}
	if c.UsesSRAM {
		p += fpga.SRAMWatts
	}
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return p + c.DynamicWattsMax*util
}

// parkedWatts models the same board parked with the paper's chosen idle
// strategy (§9.2 park-reset): module inactive, external memory interfaces
// held in reset (saving MemoryResetSaveFraction of their draw), clocks
// gated. The card keeps forwarding as a NIC, so it never drops below the
// reference-NIC base.
func parkedWatts(c fpga.Config) float64 {
	p := fpga.NICBaseCardWatts + c.LogicFixedWatts + float64(c.NumPEs)*fpga.PEWatts
	mem := 0.0
	if c.UsesDRAM {
		mem += fpga.DRAMWatts
	}
	if c.UsesSRAM {
		mem += fpga.SRAMWatts
	}
	p += mem * (1 - fpga.MemoryResetSaveFraction)
	p -= fpga.ClockGatingSavesWatts
	if p < fpga.NICBaseCardWatts {
		p = fpga.NICBaseCardWatts
	}
	return p
}

// utilization is rate/peak clamped to [0,1].
func utilization(meter *telemetry.AtomicRateMeter, peakKpps float64) float64 {
	if peakKpps <= 0 {
		return 0
	}
	u := meter.Rate() / 1000 / peakKpps
	if u > 1 {
		u = 1
	}
	return u
}
