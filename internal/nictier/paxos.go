package nictier

import (
	"net/netip"
	"sync"
	"sync/atomic"

	"incod/internal/dataplane"
	"incod/internal/fpga"
	"incod/internal/paxos"
	"incod/internal/telemetry"
)

// PaxosAcceptorTier is the P4xos-style fast path (§3.2): the acceptor
// role served from "NIC memory". Warm takes a state handoff of the host
// role's AcceptorTable (every promise and vote made on the host is in
// the table the tier serves from); until the down-shift hands it back,
// the host role delegates stragglers here, so exactly one copy of the
// acceptor state ever answers. Messages other than Phase1A/2A fall
// through to the host handler.
type PaxosAcceptorTier struct {
	host *paxos.LiveAcceptor

	// mu serializes mutating table accesses (ProcessView, delegated
	// processing) and the Warm/Park swaps; the pointer itself is atomic so
	// the lock-free settled-vote pre-pass can read it without the lock.
	// Nil while parked.
	mu    sync.Mutex
	table atomic.Pointer[paxos.AcceptorTable]

	active atomic.Bool
	meter  *telemetry.AtomicRateMeter

	counters    *telemetry.AtomicCounters
	phase1      *atomic.Uint64
	phase2      *atomic.Uint64
	passthrough *atomic.Uint64
	handedOff   *atomic.Uint64
}

var _ paxos.AcceptorDelegate = (*PaxosAcceptorTier)(nil)
var _ dataplane.FastPath = (*PaxosAcceptorTier)(nil)
var _ dataplane.BatchFastPath = (*PaxosAcceptorTier)(nil)

// NewPaxosAcceptor returns a tier that can take over host's acceptor
// state. Vote fan-out reuses the host role's learner list and sender.
func NewPaxosAcceptor(host *paxos.LiveAcceptor) *PaxosAcceptorTier {
	c := telemetry.NewAtomicCounters()
	return &PaxosAcceptorTier{
		host:        host,
		meter:       telemetry.NewAtomicRateMeter(meterBucket, meterBuckets),
		counters:    c,
		phase1:      c.Handle("phase1"),
		phase2:      c.Handle("phase2"),
		passthrough: c.Handle("passthrough"),
		handedOff:   c.Handle("handoff_instances"),
	}
}

// Name implements Tier.
func (t *PaxosAcceptorTier) Name() string { return "p4xos-acceptor" }

// Counters implements Tier.
func (t *PaxosAcceptorTier) Counters() *telemetry.AtomicCounters { return t.counters }

// StatsCounters lets dataplane.Snapshot fold the tier counters in.
func (t *PaxosAcceptorTier) StatsCounters() *telemetry.AtomicCounters { return t.counters }

// HitRatio implements Tier: the fraction of classified consensus
// messages the tier served.
func (t *PaxosAcceptorTier) HitRatio() float64 {
	hits := t.phase1.Load() + t.phase2.Load()
	total := hits + t.passthrough.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// PowerWatts implements Tier.
func (t *PaxosAcceptorTier) PowerWatts() float64 {
	if t.active.Load() {
		return designWatts(fpga.P4xosDesign, utilization(t.meter, fpga.P4xosDesign.PeakKpps))
	}
	return parkedWatts(fpga.P4xosDesign)
}

// Stage implements Tier. The tier has no state yet, so consensus traffic
// keeps falling through to the host role until Warm hands it over.
func (t *PaxosAcceptorTier) Stage() error {
	t.active.Store(true)
	return nil
}

// Warm implements Tier: the acceptor state handoff. The host role
// surrenders its table (serialized with its in-flight processing) and
// starts delegating stragglers here; the tier installs a deep copy — the
// modeled DMA into NIC memory.
func (t *PaxosAcceptorTier) Warm() error {
	moved := t.host.BeginHandoff(t)
	clone := moved.Clone()
	instances := clone.Instances() // before publishing: workers own it after
	t.mu.Lock()
	t.table.Store(clone)
	t.mu.Unlock()
	t.handedOff.Store(uint64(instances))
	return nil
}

// Park implements Tier: hand the state back to the host role. Called
// after the fast path has been drained; a straggler delegated in the
// instant between the detach and the reattach is dropped (UDP loss
// semantics — proposers retry), never answered from a stale copy. The
// table moves back by reference — the tier holds the only live copy at
// this point, and cloning here would only widen the drop window.
func (t *PaxosAcceptorTier) Park() error {
	t.active.Store(false)
	t.mu.Lock()
	table := t.table.Load()
	t.table.Store(nil)
	t.mu.Unlock()
	t.host.EndHandoff(table)
	return nil
}

// ProcessDelegated implements paxos.AcceptorDelegate: a straggler that
// reached the host role after the handoff lands on the tier's copy of
// the state. Called with the host role's mutex held (lock order: role,
// then tier).
func (t *PaxosAcceptorTier) ProcessDelegated(m paxos.Msg) (paxos.Msg, bool) {
	t.mu.Lock()
	tab := t.table.Load()
	if tab == nil {
		t.mu.Unlock()
		return paxos.Msg{}, false
	}
	resp, vote, ok := tab.Process(m, t.host.ID())
	t.mu.Unlock()
	return t.finish(m.Type, resp, vote, ok)
}

// finish counts a processed message and fans a vote out to the learners.
func (t *PaxosAcceptorTier) finish(typ paxos.MsgType, resp paxos.Msg, vote, ok bool) (paxos.Msg, bool) {
	if !ok {
		return paxos.Msg{}, false
	}
	switch typ {
	case paxos.MsgPhase1A:
		t.phase1.Add(1)
	case paxos.MsgPhase2A:
		t.phase2.Add(1)
	}
	if vote {
		send := t.host.Sender()
		for _, l := range t.host.Learners() {
			send(l, resp)
		}
	}
	return resp, true
}

// TryHandleDatagram implements dataplane.FastPath. Like the host role,
// the steady-state promise and re-vote paths decode a view over the
// datagram, touch only retained table state and encode into the scratch
// buffer — no heap allocation.
func (t *PaxosAcceptorTier) TryHandleDatagram(in []byte, _ netip.AddrPort, scratch *[]byte) ([]byte, bool, bool) {
	var v paxos.MsgView
	if paxos.DecodeView(in, &v) != nil {
		t.passthrough.Add(1)
		return nil, false, false
	}
	if v.Type != paxos.MsgPhase1A && v.Type != paxos.MsgPhase2A {
		t.passthrough.Add(1)
		return nil, false, false
	}
	t.meter.Add(1)
	// Lock-free pre-pass: a re-vote for a settled instance is answered
	// straight from the table's published lookaside without the tier lock
	// (the settled vote is immutable, so a stale table generation still
	// answers correctly — see LiveAcceptor.table).
	if v.Type == paxos.MsgPhase2A {
		if tab := t.table.Load(); tab != nil {
			if resp, ok := tab.TryVote(&v, t.host.ID()); ok {
				resp, _ = t.finish(v.Type, resp, true, true)
				*scratch = paxos.AppendMsg((*scratch)[:0], resp)
				return *scratch, true, true
			}
		}
	}
	t.mu.Lock()
	tab := t.table.Load()
	if tab == nil {
		t.mu.Unlock()
		// Not yet warmed: the host role still owns the state.
		return nil, false, false
	}
	resp, vote, ok := tab.ProcessView(&v, t.host.ID())
	t.mu.Unlock()
	if resp, ok = t.finish(v.Type, resp, vote, ok); !ok {
		return nil, false, false
	}
	*scratch = paxos.AppendMsg((*scratch)[:0], resp)
	return *scratch, true, true
}

// TryHandleBatch implements dataplane.BatchFastPath: the whole chunk of
// consensus messages is processed under one acquisition of the tier's
// lock — the per-batch epoch check is the same table-nil test the single
// path does per datagram — with fan-out and reply encoding after the
// lock is released, exactly like the batch form of the host role.
func (t *PaxosAcceptorTier) TryHandleBatch(items []*dataplane.BatchItem) {
	const chunk = 64
	for off := 0; off < len(items); off += chunk {
		t.handleChunk(items[off:min(off+chunk, len(items))])
	}
}

func (t *PaxosAcceptorTier) handleChunk(items []*dataplane.BatchItem) {
	var (
		views [64]paxos.MsgView
		resps [64]paxos.Msg
		votes [64]bool
		oks   [64]bool
		done  [64]bool
	)
	classified := uint64(0)
	passed := uint64(0)
	for i, it := range items {
		if paxos.DecodeView(it.In, &views[i]) != nil ||
			(views[i].Type != paxos.MsgPhase1A && views[i].Type != paxos.MsgPhase2A) {
			passed++
			continue
		}
		classified++
		oks[i] = true
	}
	if passed > 0 {
		t.passthrough.Add(passed)
	}
	if classified == 0 {
		return
	}
	t.meter.Add(classified)
	// Lock-free pre-pass: settled re-votes are answered from the table's
	// published lookaside before the tier lock is taken; only the
	// remainder pays for serialization.
	if tab := t.table.Load(); tab != nil {
		for i := range items {
			if oks[i] && views[i].Type == paxos.MsgPhase2A {
				if resp, ok := tab.TryVote(&views[i], t.host.ID()); ok {
					resps[i], votes[i], done[i] = resp, true, true
				}
			}
		}
	}
	t.mu.Lock()
	if tab := t.table.Load(); tab != nil {
		for i := range items {
			if oks[i] && !done[i] {
				resps[i], votes[i], oks[i] = tab.ProcessView(&views[i], t.host.ID())
			}
		}
		t.mu.Unlock()
	} else {
		t.mu.Unlock()
		// Not yet warmed (or parked mid-batch): undecided items fall
		// through to the host role. Pre-pass answers were served from a
		// still-valid generation and go out below.
		for i := range items {
			if !done[i] {
				oks[i] = false
			}
		}
	}
	var p1, p2 uint64
	send := t.host.Sender()
	for i, it := range items {
		if !oks[i] {
			continue
		}
		if views[i].Type == paxos.MsgPhase1A {
			p1++
		} else {
			p2++
		}
		if votes[i] {
			for _, l := range t.host.Learners() {
				send(l, resps[i])
			}
		}
		out := paxos.AppendMsg((*it.Scratch)[:0], resps[i])
		*it.Scratch = out
		it.Served = true
		it.Out = out
	}
	if p1 > 0 {
		t.phase1.Add(p1)
	}
	if p2 > 0 {
		t.phase2.Add(p2)
	}
}
