package nictier_test

import (
	"net/netip"
	"sync"
	"testing"

	"incod/internal/dataplane"
	"incod/internal/dns"
	"incod/internal/nictier"
	"incod/internal/paxos"
)

func mkBatch(datagrams [][]byte) []*dataplane.BatchItem {
	items := make([]*dataplane.BatchItem, len(datagrams))
	for i, dg := range datagrams {
		s := make([]byte, 0, 4096)
		items[i] = &dataplane.BatchItem{In: dg, Scratch: &s}
	}
	return items
}

func encodeDNSQuery(t *testing.T, id uint16, name string) []byte {
	t.Helper()
	q, err := dns.Encode(dns.NewQuery(id, name))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestDNSTierBatchMatchesPerDatagram drives the same traffic through
// TryHandleDatagram and TryHandleBatch on identically warmed tiers: the
// batch form (table loaded once per batch) must classify and answer
// byte-identically — hits and NXDOMAINs served, everything else falling
// through — with matching counters.
func TestDNSTierBatchMatchesPerDatagram(t *testing.T) {
	mkWarm := func() *nictier.DNSTier {
		zone := dns.NewZone()
		zone.PopulateSequential(8)
		tier := nictier.NewDNS(zone)
		if err := tier.Stage(); err != nil {
			t.Fatal(err)
		}
		if err := tier.Warm(); err != nil {
			t.Fatal(err)
		}
		return tier
	}
	mx := dns.NewQuery(5, dns.SequentialName(1))
	mx.QType = 15
	mxq, err := dns.Encode(mx)
	if err != nil {
		t.Fatal(err)
	}
	stray, err := dns.Encode(dns.Message{ID: 6, Response: true, Name: "a.b", QType: dns.TypeA, QClass: dns.ClassIN})
	if err != nil {
		t.Fatal(err)
	}
	datagrams := [][]byte{
		encodeDNSQuery(t, 1, dns.SequentialName(3)),   // hit
		encodeDNSQuery(t, 2, "HOST4.Example.COM"),     // mixed-case hit
		encodeDNSQuery(t, 3, "missing.example.com"),   // authoritative NXDOMAIN
		encodeDNSQuery(t, 4, "a.b.c.d.e.f.g.h.i.jkl"), // too deep: punt to host
		mxq,             // non-A: punt
		stray,           // response: punt
		[]byte{1, 2, 3}, // malformed: punt
	}

	single := mkWarm()
	type result struct {
		out           []byte
		served, reply bool
	}
	var want []result
	scratch := make([]byte, 0, 4096)
	for _, dg := range datagrams {
		out, served, reply := single.TryHandleDatagram(dg, netip.AddrPort{}, &scratch)
		want = append(want, result{out: append([]byte(nil), out...), served: served, reply: reply})
	}

	batched := mkWarm()
	items := mkBatch(datagrams)
	batched.TryHandleBatch(items)
	for i, it := range items {
		if it.Served != want[i].served {
			t.Fatalf("datagram %d (%q): batch served=%v, single served=%v", i, datagrams[i], it.Served, want[i].served)
		}
		wantOut := ""
		if want[i].served && want[i].reply {
			wantOut = string(want[i].out)
		}
		if string(it.Out) != wantOut {
			t.Fatalf("datagram %d (%q): batch reply %q, single reply %q", i, datagrams[i], it.Out, wantOut)
		}
	}
	sc := single.Counters().Snapshot()
	bc := batched.Counters().Snapshot()
	for _, k := range []string{"answered", "nxdomain", "passthrough"} {
		if sc[k] != bc[k] {
			t.Fatalf("counter %s: batch %d != single %d", k, bc[k], sc[k])
		}
		if sc[k] == 0 {
			t.Fatalf("test traffic should bump %s", k)
		}
	}
}

// TestDNSTierUnwarmedBatchFallsThrough: with no table installed, a whole
// batch must fall through to the host untouched.
func TestDNSTierUnwarmedBatchFallsThrough(t *testing.T) {
	zone := dns.NewZone()
	zone.PopulateSequential(2)
	tier := nictier.NewDNS(zone)
	if err := tier.Stage(); err != nil {
		t.Fatal(err)
	}
	items := mkBatch([][]byte{encodeDNSQuery(t, 1, dns.SequentialName(0))})
	tier.TryHandleBatch(items)
	if items[0].Served || items[0].Out != nil {
		t.Fatalf("unwarmed tier must not serve: %+v", items[0])
	}
}

// TestPaxosTierBatchMatchesPerDatagram: the batch form (one tier lock
// per chunk) must serve the same messages with byte-identical replies
// and identical learner fan-out as the per-datagram form.
func TestPaxosTierBatchMatchesPerDatagram(t *testing.T) {
	type rig struct {
		tier *nictier.PaxosAcceptorTier
		sent *[]string
	}
	mkWarm := func() rig {
		var mu sync.Mutex
		sent := []string{}
		send := func(to string, m paxos.Msg) {
			mu.Lock()
			sent = append(sent, to+"|"+string(paxos.Encode(m)))
			mu.Unlock()
		}
		host := paxos.NewLiveAcceptor(3, []string{"learner-1"}, send)
		scratch := make([]byte, 0, 1024)
		// The host votes on instance 1 before the shift, so the handoff
		// carries state.
		p2a := paxos.Encode(paxos.Msg{Type: paxos.MsgPhase2A, Instance: 1, Ballot: 5,
			ClientID: 9, Seq: 42, ClientAddr: "c:1", Value: []byte("cmd")})
		if _, ok := host.HandleDatagram(p2a, &scratch); !ok {
			t.Fatal("host seed vote failed")
		}
		tier := nictier.NewPaxosAcceptor(host)
		if err := tier.Stage(); err != nil {
			t.Fatal(err)
		}
		if err := tier.Warm(); err != nil {
			t.Fatal(err)
		}
		return rig{tier: tier, sent: &sent}
	}

	datagrams := [][]byte{
		paxos.Encode(paxos.Msg{Type: paxos.MsgPhase1A, Instance: 1, Ballot: 6}),                      // 1B with the handed-off vote
		paxos.Encode(paxos.Msg{Type: paxos.MsgPhase2A, Instance: 2, Ballot: 6, Value: []byte("c2")}), // fresh vote
		paxos.Encode(paxos.Msg{Type: paxos.MsgPhase2A, Instance: 2, Ballot: 6, Value: []byte("c2")}), // re-vote
		paxos.Encode(paxos.Msg{Type: paxos.MsgPhase1A, Instance: 9, Ballot: 1}),                      // fresh promise
		paxos.Encode(paxos.Msg{Type: paxos.MsgPhase2B, Instance: 1, NodeID: 1}),                      // passthrough
		paxos.Encode(paxos.Msg{Type: paxos.MsgClientRequest, Seq: 3, Value: []byte("r")}),            // passthrough
		[]byte{1, 2}, // garbage: passthrough
	}

	single := mkWarm()
	type result struct {
		out           []byte
		served, reply bool
	}
	var want []result
	scratch := make([]byte, 0, 4096)
	for _, dg := range datagrams {
		out, served, reply := single.tier.TryHandleDatagram(dg, netip.AddrPort{}, &scratch)
		want = append(want, result{out: append([]byte(nil), out...), served: served, reply: reply})
	}

	batched := mkWarm()
	items := mkBatch(datagrams)
	batched.tier.TryHandleBatch(items)
	for i, it := range items {
		if it.Served != want[i].served {
			t.Fatalf("datagram %d: batch served=%v, single served=%v", i, it.Served, want[i].served)
		}
		wantOut := ""
		if want[i].served && want[i].reply {
			wantOut = string(want[i].out)
		}
		if string(it.Out) != wantOut {
			t.Fatalf("datagram %d: batch reply %q, single reply %q", i, it.Out, wantOut)
		}
	}
	if len(*single.sent) != len(*batched.sent) {
		t.Fatalf("fan-out: batch %d != single %d", len(*batched.sent), len(*single.sent))
	}
	for i := range *single.sent {
		if (*single.sent)[i] != (*batched.sent)[i] {
			t.Fatalf("fan-out %d diverged:\n batch %q\nsingle %q", i, (*batched.sent)[i], (*single.sent)[i])
		}
	}
	sc := single.tier.Counters().Snapshot()
	bc := batched.tier.Counters().Snapshot()
	for _, k := range []string{"phase1", "phase2", "passthrough"} {
		if sc[k] != bc[k] {
			t.Fatalf("counter %s: batch %d != single %d", k, bc[k], sc[k])
		}
		if sc[k] == 0 {
			t.Fatalf("test traffic should bump %s", k)
		}
	}
}

// TestDNSTierAnswerHitZeroAlloc mirrors the KVS tier's acceptance bar:
// a warmed answer hit — mixed-case name included — and an authoritative
// NXDOMAIN do zero heap allocations, per datagram and per batch.
func TestDNSTierAnswerHitZeroAlloc(t *testing.T) {
	zone := dns.NewZone()
	zone.PopulateSequential(8)
	tier := nictier.NewDNS(zone)
	if err := tier.Stage(); err != nil {
		t.Fatal(err)
	}
	if err := tier.Warm(); err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 0, 4096)
	for name, dg := range map[string][]byte{
		"hit":      encodeDNSQuery(t, 1, "HOST3.Example.COM"),
		"nxdomain": encodeDNSQuery(t, 2, "NOWHERE.example.com"),
	} {
		served := true
		allocs := testing.AllocsPerRun(2000, func() {
			_, ok, _ := tier.TryHandleDatagram(dg, netip.AddrPort{}, &scratch)
			served = served && ok
		})
		if !served {
			t.Fatalf("%s: tier did not serve", name)
		}
		if allocs != 0 {
			t.Fatalf("%s path allocates %.1f times per op, want 0", name, allocs)
		}
	}

	q := encodeDNSQuery(t, 3, "Host5.Example.Com")
	items := mkBatch(make([][]byte, 32))
	allocs := testing.AllocsPerRun(500, func() {
		for i := range items {
			items[i].In = q
			items[i].Out = nil
			items[i].Served = false
		}
		tier.TryHandleBatch(items)
	})
	if allocs != 0 {
		t.Fatalf("TryHandleBatch allocates %.1f times per batch, want 0", allocs)
	}
	if !items[0].Served || len(items[0].Out) == 0 {
		t.Fatal("batched hit was not served")
	}
}

// TestPaxosTierSteadyStateZeroAlloc: promises and re-votes on the tier's
// handed-off table allocate nothing, per datagram and per batch.
func TestPaxosTierSteadyStateZeroAlloc(t *testing.T) {
	host := paxos.NewLiveAcceptor(1, nil, func(string, paxos.Msg) {})
	scratch := make([]byte, 0, 4096)
	p2a := paxos.Encode(paxos.Msg{Type: paxos.MsgPhase2A, Instance: 4, Ballot: 2,
		ClientAddr: "c:9", Value: []byte("steady-value")})
	if _, ok := host.HandleDatagram(p2a, &scratch); !ok {
		t.Fatal("seed vote failed")
	}
	tier := nictier.NewPaxosAcceptor(host)
	if err := tier.Stage(); err != nil {
		t.Fatal(err)
	}
	if err := tier.Warm(); err != nil {
		t.Fatal(err)
	}
	p1a := paxos.Encode(paxos.Msg{Type: paxos.MsgPhase1A, Instance: 4, Ballot: 2})
	for name, dg := range map[string][]byte{"2A re-vote": p2a, "1A promise": p1a} {
		served := true
		allocs := testing.AllocsPerRun(2000, func() {
			_, ok, _ := tier.TryHandleDatagram(dg, netip.AddrPort{}, &scratch)
			served = served && ok
		})
		if !served {
			t.Fatalf("%s: tier did not serve", name)
		}
		if allocs != 0 {
			t.Fatalf("%s allocates %.1f times per op, want 0", name, allocs)
		}
	}

	items := mkBatch(make([][]byte, 32))
	allocs := testing.AllocsPerRun(500, func() {
		for i := range items {
			items[i].In = p2a
			items[i].Out = nil
			items[i].Served = false
		}
		tier.TryHandleBatch(items)
	})
	if allocs != 0 {
		t.Fatalf("TryHandleBatch allocates %.1f times per batch, want 0", allocs)
	}
	if !items[0].Served || len(items[0].Out) == 0 {
		t.Fatal("batched 2A was not served")
	}
}
