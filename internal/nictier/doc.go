// Package nictier is the live offload tier: an emulated NIC fast path
// that makes placement a real, observable property of the wall-clock
// dataplane instead of an advisory log line. The paper's three hardware
// designs are restated as dataplane.FastPath implementations that
// interpose on engine dispatch before the host handler:
//
//   - KVSTier — a LaKe-style layered lookaside cache (§3.1): L1 sized to
//     the on-chip BRAM entry budget, L2 to the DRAM layer, serving
//     single-key memcached GET hits with zero heap allocations; writes
//     are write-through-interposed and fall to the host store of record.
//   - DNSTier — an Emu-DNS-style answer table (§3.3) synced from the
//     authoritative zone, answering A/IN queries and NXDOMAIN directly.
//   - PaxosAcceptorTier — a P4xos-style acceptor (§3.2) that takes a
//     state handoff of the host role's AcceptorTable and serves
//     Phase1A/2A, fanning votes out to the learners.
//
// Each tier models its card's power draw from the internal/fpga §5
// component constants (active design watts when serving, the §9.2
// park-reset draw when idle), so power-aware policies and the /v1 API see
// a live per-tier wattage.
//
// Service binds a tier to an engine as a core.Service whose Shift
// performs the §9.2 transition tasks for real: shifting to "network"
// stages the tier, flips engine dispatch, fences pre-flip host work with
// Engine.Barrier, then warms (cache fill from the store, zone snapshot
// install, acceptor state handoff) while the host keeps serving every
// miss; shifting back drains the fast path without dropping an in-flight
// request, then parks the tier. Correctness across the migration relies
// on two invariants: the host store/zone/role stays the source of truth
// (a tier cache may miss, never lie), and same-key operations are
// serialized by the engine's key-hashed dispatch.
package nictier
