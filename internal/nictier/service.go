package nictier

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"incod/internal/core"
	"incod/internal/dataplane"
)

// Dataplane is the slice of a serving engine a placement shift drives:
// install the offload tier on dispatch, drain it back out, and fence
// in-flight host work. *dataplane.Engine implements it for the live
// daemons; internal/chaos implements it over the deterministic simnet
// substrate so the same Service code shifts under fault injection.
type Dataplane interface {
	// SetFastPath atomically interposes fp on dispatch (nil clears).
	SetFastPath(fp dataplane.FastPath)
	// ClearFastPath uninstalls the tier and drains it: no call may still
	// be inside the tier when it returns.
	ClearFastPath()
	// Barrier returns once every datagram dequeued before the call has
	// fully landed — the fence between flipping dispatch and snapshotting
	// host state.
	Barrier()
}

// Service binds a Tier to a serving engine as a core.Service: Shift is
// no longer advisory. Shifting to the network stages the tier, flips
// engine dispatch, fences pre-flip host work, and warms (the §9.2
// transition task) while the host keeps serving every fall-through;
// shifting back drains the fast path without dropping an in-flight
// request, then parks the tier. The orchestrator drives it exactly like
// any other core.Service — same policies, same /v1 API.
type Service struct {
	name string
	eng  Dataplane
	tier Tier

	// shiftMu serializes transitions only. Placement and the transition
	// durations are atomics so status reads (taken under the
	// orchestrator mutex) never block behind a long warm-up or drain.
	shiftMu   sync.Mutex
	where     atomic.Int32 // core.Placement
	lastWarm  atomic.Int64 // nanoseconds
	lastDrain atomic.Int64 // nanoseconds
}

var _ core.Service = (*Service)(nil)
var _ core.CostReporter = (*Service)(nil)

// NewService binds tier to eng under name. The service starts on the
// host (tier parked, host handler serving everything).
func NewService(name string, eng Dataplane, tier Tier) *Service {
	return &Service{name: name, eng: eng, tier: tier}
}

// Name implements core.Service.
func (s *Service) Name() string { return s.name }

// Tier returns the bound tier.
func (s *Service) Tier() Tier { return s.tier }

// Placement implements core.Service. It never blocks — not even while a
// transition is in flight — so orchestrator status snapshots stay cheap.
func (s *Service) Placement() core.Placement {
	return core.Placement(s.where.Load())
}

// LastTransitions returns the measured durations of the most recent
// up-shift (warm) and down-shift (drain), zero when not yet performed.
func (s *Service) LastTransitions() (warm, drain time.Duration) {
	return time.Duration(s.lastWarm.Load()), time.Duration(s.lastDrain.Load())
}

// Shift implements core.Service, performing the real transition work.
func (s *Service) Shift(to core.Placement) error {
	s.shiftMu.Lock()
	defer s.shiftMu.Unlock()
	if to == s.Placement() {
		return nil
	}
	start := time.Now()
	if to == core.Network {
		if err := s.tier.Stage(); err != nil {
			return fmt.Errorf("nictier: stage %s: %w", s.tier.Name(), err)
		}
		// Install the fast path first (write interposition from here
		// on), fence the host work that predates the flip, then bulk
		// warm — so nothing falls between the snapshot and the flip.
		s.eng.SetFastPath(s.tier)
		s.eng.Barrier()
		if err := s.tier.Warm(); err != nil {
			s.eng.ClearFastPath()
			_ = s.tier.Park()
			return fmt.Errorf("nictier: warm %s: %w", s.tier.Name(), err)
		}
		s.lastWarm.Store(int64(time.Since(start)))
	} else {
		// Drain the fast path — in-flight tier requests finish and are
		// answered — then park (state flushed or handed back).
		s.eng.ClearFastPath()
		if err := s.tier.Park(); err != nil {
			// Roll the drain back: reinstall the tier so dispatch matches
			// the placement still being reported (network). Without this a
			// failed park strands the service between placements — status
			// says network while every datagram already bypasses the tier.
			s.eng.SetFastPath(s.tier)
			return fmt.Errorf("nictier: park %s: %w", s.tier.Name(), err)
		}
		s.lastDrain.Store(int64(time.Since(start)))
	}
	s.where.Store(int32(to))
	return nil
}

// TransitionCost implements core.CostReporter. Both directions run
// concurrently with serving (Duration 0 degradation); the note names the
// §9.2 task and, once measured, how long the last one took.
func (s *Service) TransitionCost(to core.Placement) core.TransitionCost {
	warm, drain := s.LastTransitions()
	if to == core.Network {
		note := s.tier.Name() + " warm-up"
		if warm > 0 {
			note += fmt.Sprintf(" (last %v)", warm.Round(time.Microsecond))
		}
		return core.TransitionCost{Note: note}
	}
	note := s.tier.Name() + " drain+park"
	if drain > 0 {
		note += fmt.Sprintf(" (last %v)", drain.Round(time.Microsecond))
	}
	return core.TransitionCost{Note: note}
}
