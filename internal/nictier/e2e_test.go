package nictier_test

// Loopback end-to-end tests: the real engine over real UDP sockets with
// the offload tier attached, driven by the real orchestrator — a load
// ramp provably crosses the threshold, the service shifts to the NIC
// tier while clients keep getting correct answers, and shifting back
// down drains cleanly.

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"incod/internal/core"
	"incod/internal/daemon"
	"incod/internal/dataplane"
	"incod/internal/dns"
	"incod/internal/kvs"
	"incod/internal/memcache"
	"incod/internal/nictier"
	"incod/internal/paxos"
)

func listenLoopback(t *testing.T) net.PacketConn {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestE2EShiftUnderLoadKVS(t *testing.T) {
	store := kvs.NewShardedStore(4, 0)
	h := kvs.NewHandler(store)
	conn := listenLoopback(t)
	eng := dataplane.New(conn, h, dataplane.Config{
		Name: "kvs-shift-e2e", Shards: 4, ShardBy: kvs.ShardByKey,
	})
	eng.Start()
	t.Cleanup(eng.Close)

	svc := nictier.NewService("kvs", eng, nictier.NewKVS(h))
	// Thresholds far below loopback rates so the ramp provably crosses:
	// up at 200 req/s sustained 150ms, back down below 50 req/s.
	pol := core.NewThresholdPolicy(core.NetworkControllerConfig{
		ToNetworkKpps: 0.2, ToNetworkWindow: 150 * time.Millisecond,
		ToHostKpps: 0.05, ToHostWindow: 150 * time.Millisecond,
	})
	o := daemon.NewOrchestrator(0)
	m, err := o.Register("kvs", daemon.ServiceConfig{Service: svc, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	m.UseCounter(eng.Handled)
	if err := o.AttachDataplane("kvs", eng); err != nil {
		t.Fatal(err)
	}
	o.Tick(time.Now()) // prime metering

	const keys = 64
	for i := 0; i < keys; i++ {
		store.Set(fmt.Sprintf("key-%d", i), kvs.Entry{Value: []byte(fmt.Sprintf("value-%d", i))})
	}

	// The verifier: a closed-loop client hammering GETs and checking
	// every reply byte-for-byte, through both shifts. Timeouts retry
	// (UDP may drop); a wrong answer is fatal.
	cconn, err := net.Dial("udp", eng.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cconn.Close() })
	var verified, wrong atomic.Uint64
	var paused, stop atomic.Bool
	wrongDetail := make(chan string, 1)
	go func() {
		buf := make([]byte, 64*1024)
		var id uint16
		for i := 0; !stop.Load(); i++ {
			if paused.Load() {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			key := fmt.Sprintf("key-%d", i%keys)
			want := fmt.Sprintf("value-%d", i%keys)
			id++
			if _, err := cconn.Write(framedGet(id, key)); err != nil {
				return
			}
			cconn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			for {
				n, err := cconn.Read(buf)
				if err != nil {
					break // timeout or closed: retry with the next request
				}
				f, body, err := memcache.DecodeFrame(buf[:n])
				if err != nil || f.RequestID != id {
					continue // stale reply from an earlier timeout
				}
				resp, err := memcache.ParseResponse(body)
				if err != nil || !resp.Hit || string(resp.Value) != want {
					wrong.Add(1)
					select {
					case wrongDetail <- fmt.Sprintf("get %s: err=%v resp=%+v", key, err, resp):
					default:
					}
				} else {
					verified.Add(1)
				}
				break
			}
		}
	}()

	placementOf := func() string {
		s, err := o.Status("kvs")
		if err != nil {
			t.Fatal(err)
		}
		return s.Placement
	}

	// Ramp up: tick on real wall time until the policy shifts.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && placementOf() != "network" {
		time.Sleep(25 * time.Millisecond)
		o.Tick(time.Now())
	}
	if placementOf() != "network" {
		t.Fatalf("load ramp never crossed the threshold (status %+v, engine %+v)",
			statusOf(t, o), eng.Snapshot())
	}

	// Keep serving on the NIC tier for a while; traffic must be answered
	// from the fast path.
	time.Sleep(300 * time.Millisecond)
	snap := eng.Snapshot()
	if !snap.TierActive || snap.Offloaded == 0 {
		t.Fatalf("tier should be serving, engine %+v", snap)
	}
	if snap.TierHitRatio <= 0 {
		t.Fatalf("nic-tier hit ratio must be nonzero, engine %+v", snap)
	}
	if snap.TierPowerWatts <= 0 {
		t.Fatalf("tier power model missing, engine %+v", snap)
	}
	st := statusOf(t, o)
	if st.Shifts < 1 || st.LastShiftDuration == "" || len(st.Transitions) == 0 {
		t.Fatalf("shift telemetry missing: %+v", st)
	}

	// Drop the load: the policy must shift back down and drain cleanly.
	paused.Store(true)
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && placementOf() != "host" {
		time.Sleep(25 * time.Millisecond)
		o.Tick(time.Now())
	}
	if placementOf() != "host" {
		t.Fatalf("idle service never shifted back (status %+v)", statusOf(t, o))
	}
	if eng.Snapshot().TierActive {
		t.Fatal("fast path must be uninstalled after the down-shift")
	}

	// Post-drain the host must still answer correctly.
	before := verified.Load()
	paused.Store(false)
	waitUntil := time.Now().Add(2 * time.Second)
	for verified.Load() < before+50 && time.Now().Before(waitUntil) {
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	if verified.Load() < before+50 {
		t.Fatalf("host stopped answering after the down-shift (verified %d -> %d)", before, verified.Load())
	}

	if w := wrong.Load(); w != 0 {
		detail := "<none captured>"
		select {
		case detail = <-wrongDetail:
		default:
		}
		t.Fatalf("%d wrong answers during migration (first: %s)", w, detail)
	}
	if verified.Load() == 0 {
		t.Fatal("verifier never verified anything")
	}
	st = statusOf(t, o)
	if st.Shifts < 2 {
		t.Fatalf("want at least up+down shifts, got %+v", st)
	}
}

func statusOf(t *testing.T, o *daemon.Orchestrator) daemon.ServiceStatus {
	t.Helper()
	s, err := o.Status("kvs")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Service.Shift drives the DNS tier end to end over real sockets: after
// the up-shift the answer comes from the tier's synced table, and the
// down-shift hands serving back to the host zone.
func TestE2EServiceShiftDNS(t *testing.T) {
	zone := dns.NewZone()
	zone.PopulateSequential(8)
	conn := listenLoopback(t)
	eng := dataplane.New(conn, dns.NewHandler(zone), dataplane.Config{
		Name: "dns-shift-e2e", Shards: 2, MaxDatagram: 4096,
	})
	eng.Start()
	t.Cleanup(eng.Close)
	svc := nictier.NewService("dns", eng, nictier.NewDNS(zone))

	cconn, err := net.Dial("udp", eng.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cconn.Close()
	resolve := func(id uint16, name string) dns.Message {
		t.Helper()
		q, err := dns.Encode(dns.NewQuery(id, name))
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		for attempt := 0; attempt < 5; attempt++ {
			if _, err := cconn.Write(q); err != nil {
				t.Fatal(err)
			}
			cconn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
			n, err := cconn.Read(buf)
			if err != nil {
				continue
			}
			m, err := dns.Decode(buf[:n], 0)
			if err == nil && m.ID == id {
				return m
			}
		}
		t.Fatalf("no answer for %s", name)
		return dns.Message{}
	}

	if m := resolve(1, dns.SequentialName(2)); !m.HasAnswer || m.Addr != [4]byte{10, 0, 0, 2} {
		t.Fatalf("host answer: %+v", m)
	}
	if err := svc.Shift(core.Network); err != nil {
		t.Fatal(err)
	}
	if m := resolve(2, dns.SequentialName(5)); !m.HasAnswer || m.Addr != [4]byte{10, 0, 0, 5} {
		t.Fatalf("tier answer: %+v", m)
	}
	if snap := eng.Snapshot(); !snap.TierActive || snap.Offloaded == 0 || snap.Tier["answered"] == 0 {
		t.Fatalf("tier should have answered, engine %+v", snap)
	}
	if err := svc.Shift(core.Host); err != nil {
		t.Fatal(err)
	}
	if m := resolve(3, dns.SequentialName(1)); !m.HasAnswer || m.Addr != [4]byte{10, 0, 0, 1} {
		t.Fatalf("post-drain host answer: %+v", m)
	}
	warm, drain := svc.LastTransitions()
	if warm <= 0 || drain <= 0 {
		t.Fatalf("transition durations not measured: warm=%v drain=%v", warm, drain)
	}
}

// Service.Shift drives the Paxos acceptor tier over real sockets: votes
// made on the host are visible through the tier (state handoff) and
// votes made on the tier survive the shift back.
func TestE2EServiceShiftPaxosAcceptor(t *testing.T) {
	conn := listenLoopback(t)
	send := func(to string, m paxos.Msg) {
		if addr, err := net.ResolveUDPAddr("udp", to); err == nil {
			conn.WriteTo(paxos.Encode(m), addr)
		}
	}
	host := paxos.NewLiveAcceptor(1, nil, send)
	eng := dataplane.New(conn, host, dataplane.Config{Name: "paxos-shift-e2e", Shards: 1})
	eng.Start()
	t.Cleanup(eng.Close)
	svc := nictier.NewService("paxos", eng, nictier.NewPaxosAcceptor(host))

	cconn, err := net.Dial("udp", eng.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cconn.Close()
	exchange := func(m paxos.Msg) paxos.Msg {
		t.Helper()
		buf := make([]byte, 4096)
		for attempt := 0; attempt < 5; attempt++ {
			if _, err := cconn.Write(paxos.Encode(m)); err != nil {
				t.Fatal(err)
			}
			cconn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
			n, err := cconn.Read(buf)
			if err != nil {
				continue
			}
			if resp, err := paxos.Decode(buf[:n]); err == nil {
				return resp
			}
		}
		t.Fatalf("no reply to %+v", m)
		return paxos.Msg{}
	}

	// Vote on the host, then shift: the tier must know the vote.
	if r := exchange(paxos.Msg{Type: paxos.MsgPhase2A, Instance: 1, Ballot: 3, Value: []byte("a")}); r.Type != paxos.MsgPhase2B {
		t.Fatalf("host vote: %+v", r)
	}
	if err := svc.Shift(core.Network); err != nil {
		t.Fatal(err)
	}
	if r := exchange(paxos.Msg{Type: paxos.MsgPhase1A, Instance: 1, Ballot: 4}); r.VBallot != 3 || string(r.Value) != "a" {
		t.Fatalf("tier lost the handed-off vote: %+v", r)
	}
	// Vote on the tier, shift back: the host must know it.
	if r := exchange(paxos.Msg{Type: paxos.MsgPhase2A, Instance: 2, Ballot: 4, Value: []byte("b")}); r.Type != paxos.MsgPhase2B {
		t.Fatalf("tier vote: %+v", r)
	}
	if snap := eng.Snapshot(); snap.Offloaded == 0 {
		t.Fatalf("consensus traffic should have been offloaded, engine %+v", snap)
	}
	if err := svc.Shift(core.Host); err != nil {
		t.Fatal(err)
	}
	if r := exchange(paxos.Msg{Type: paxos.MsgPhase1A, Instance: 2, Ballot: 5}); r.VBallot != 4 || string(r.Value) != "b" {
		t.Fatalf("handback lost the tier vote: %+v", r)
	}
}
