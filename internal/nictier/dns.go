package nictier

import (
	"net/netip"
	"sync/atomic"

	"incod/internal/dataplane"
	"incod/internal/dns"
	"incod/internal/fpga"
	"incod/internal/telemetry"
)

// DNSTier is the Emu-DNS-style fast path (§3.3): an answer table synced
// from the authoritative zone, serving A/IN resolution directly —
// including authoritative NXDOMAIN for unknown names ("Emu DNS informs
// the client that it cannot resolve the name"). Non-A/IN questions and
// stray responses fall through to the host handler, like the hardware
// classifier punting what the pipeline does not support.
//
// The tier syncs precompiled wire images, not ARecords: Warm snapshots
// the zone's wire-answer cache (sharing the immutable per-record
// response datagrams), so a tier answer is the same one-copy-and-patch
// as the host's and byte-identical to it. The installed table is an
// atomic pointer — the tier's epoch — which the batch path loads once
// per batch instead of once per datagram.
type DNSTier struct {
	zone *dns.Zone

	table  atomic.Pointer[dns.AnswerTable] // nil while parked or unwarmed
	active atomic.Bool
	meter  *telemetry.AtomicRateMeter

	counters    *telemetry.AtomicCounters
	answered    *atomic.Uint64
	nxdomain    *atomic.Uint64
	passthrough *atomic.Uint64
	synced      *atomic.Uint64
}

var _ dataplane.FastPath = (*DNSTier)(nil)
var _ dataplane.BatchFastPath = (*DNSTier)(nil)

// NewDNS returns an Emu-DNS-style tier synced from zone.
func NewDNS(zone *dns.Zone) *DNSTier {
	c := telemetry.NewAtomicCounters()
	return &DNSTier{
		zone:        zone,
		meter:       telemetry.NewAtomicRateMeter(meterBucket, meterBuckets),
		counters:    c,
		answered:    c.Handle("answered"),
		nxdomain:    c.Handle("nxdomain"),
		passthrough: c.Handle("passthrough"),
		synced:      c.Handle("synced_records"),
	}
}

// Name implements Tier.
func (t *DNSTier) Name() string { return "emu-dns" }

// Counters implements Tier.
func (t *DNSTier) Counters() *telemetry.AtomicCounters { return t.counters }

// StatsCounters lets dataplane.Snapshot fold the tier counters in.
func (t *DNSTier) StatsCounters() *telemetry.AtomicCounters { return t.counters }

// HitRatio implements Tier: the fraction of classified queries answered
// from the table (NXDOMAINs are answers too, but only positive
// resolutions count as hits).
func (t *DNSTier) HitRatio() float64 {
	hits := t.answered.Load()
	total := hits + t.nxdomain.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// PowerWatts implements Tier.
func (t *DNSTier) PowerWatts() float64 {
	if t.active.Load() {
		return designWatts(fpga.EmuDNSDesign, utilization(t.meter, fpga.EmuDNSDesign.PeakKpps))
	}
	return parkedWatts(fpga.EmuDNSDesign)
}

// Stage implements Tier. The table stays empty until Warm, so queries
// keep falling through to the host zone.
func (t *DNSTier) Stage() error {
	t.active.Store(true)
	return nil
}

// Warm implements Tier: the zone sync — snapshot the zone's wire-answer
// cache into the tier's own table while the host keeps serving. One map
// copy; the precompiled images are shared, immutable.
func (t *DNSTier) Warm() error {
	table := t.zone.WireAnswers()
	t.table.Store(table)
	t.synced.Store(uint64(table.Len()))
	return nil
}

// Park implements Tier: drop the table (park-reset; state lost).
func (t *DNSTier) Park() error {
	t.active.Store(false)
	t.table.Store(nil)
	return nil
}

// serve verdicts. Classified queries (those the pipeline parsed and
// metered) are below tierUnparsed; only answered and nxdomain are served
// by the tier, the rest fall through to the host.
const (
	tierAnswered = iota
	tierNXDomain
	tierPunted   // parsed A/IN-incapable or pre-warm: metered, host serves
	tierUnparsed // malformed, compressed, too deep, or a stray response
	tierVerdicts
)

// serve answers one query from table (already loaded for the batch).
// served=false falls through to the host.
func (t *DNSTier) serve(table *dns.AnswerTable, in []byte, scratch *[]byte) (out []byte, served bool, verdict int) {
	var v dns.QuestionView
	if err := dns.ParseQuestion(in, dns.MaxLabels, &v); err != nil || v.Response() {
		// Malformed, compressed or too deep for the fixed pipeline, or a
		// stray response: host path semantics apply.
		return nil, false, tierUnparsed
	}
	if v.QType != dns.TypeA || v.QClass != dns.ClassIN {
		// Beyond the pipeline: punt to the host software.
		return nil, false, tierPunted
	}
	if table == nil {
		// Not yet warmed: the host zone answers.
		return nil, false, tierPunted
	}
	if a, ok := table.Lookup(v.QName); ok {
		*scratch = a.AppendReply((*scratch)[:0], &v)
		return *scratch, true, tierAnswered
	}
	*scratch = dns.AppendNoAnswer((*scratch)[:0], in, &v, dns.RCodeNXDomain)
	return *scratch, true, tierNXDomain
}

func (t *DNSTier) count(verdict int, n uint64) {
	if n == 0 {
		return
	}
	switch verdict {
	case tierAnswered:
		t.answered.Add(n)
	case tierNXDomain:
		t.nxdomain.Add(n)
	default:
		t.passthrough.Add(n)
	}
}

// TryHandleDatagram implements dataplane.FastPath. The answer and
// NXDOMAIN paths do no heap allocation.
func (t *DNSTier) TryHandleDatagram(in []byte, _ netip.AddrPort, scratch *[]byte) ([]byte, bool, bool) {
	out, served, verdict := t.serve(t.table.Load(), in, scratch)
	if verdict < tierUnparsed {
		t.meter.Add(1)
	}
	t.count(verdict, 1)
	return out, served, served
}

// TryHandleBatch implements dataplane.BatchFastPath: the installed table
// — the tier's epoch — is loaded once for the whole batch, and the meter
// and counters are bumped once per batch; each item then takes the same
// classification as TryHandleDatagram.
func (t *DNSTier) TryHandleBatch(items []*dataplane.BatchItem) {
	table := t.table.Load()
	var counts [tierVerdicts]uint64
	for _, it := range items {
		out, served, verdict := t.serve(table, it.In, it.Scratch)
		counts[verdict]++
		if served {
			it.Served = true
			it.Out = out
		}
	}
	if classified := counts[tierAnswered] + counts[tierNXDomain] + counts[tierPunted]; classified > 0 {
		t.meter.Add(classified)
	}
	for verdict, n := range counts {
		t.count(verdict, n)
	}
}
