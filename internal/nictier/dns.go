package nictier

import (
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"

	"incod/internal/dns"
	"incod/internal/fpga"
	"incod/internal/telemetry"
)

// DNSTier is the Emu-DNS-style fast path (§3.3): an answer table synced
// from the authoritative zone, serving A/IN resolution directly —
// including authoritative NXDOMAIN for unknown names ("Emu DNS informs
// the client that it cannot resolve the name"). Non-A/IN questions and
// stray responses fall through to the host handler, like the hardware
// classifier punting what the pipeline does not support.
type DNSTier struct {
	zone *dns.Zone

	mu     sync.RWMutex
	table  map[string]dns.ARecord
	active atomic.Bool
	meter  *telemetry.AtomicRateMeter

	counters    *telemetry.AtomicCounters
	answered    *atomic.Uint64
	nxdomain    *atomic.Uint64
	passthrough *atomic.Uint64
	synced      *atomic.Uint64
}

// NewDNS returns an Emu-DNS-style tier synced from zone.
func NewDNS(zone *dns.Zone) *DNSTier {
	c := telemetry.NewAtomicCounters()
	return &DNSTier{
		zone:        zone,
		meter:       telemetry.NewAtomicRateMeter(meterBucket, meterBuckets),
		counters:    c,
		answered:    c.Handle("answered"),
		nxdomain:    c.Handle("nxdomain"),
		passthrough: c.Handle("passthrough"),
		synced:      c.Handle("synced_records"),
	}
}

// Name implements Tier.
func (t *DNSTier) Name() string { return "emu-dns" }

// Counters implements Tier.
func (t *DNSTier) Counters() *telemetry.AtomicCounters { return t.counters }

// StatsCounters lets dataplane.Snapshot fold the tier counters in.
func (t *DNSTier) StatsCounters() *telemetry.AtomicCounters { return t.counters }

// HitRatio implements Tier: the fraction of classified queries answered
// from the table (NXDOMAINs are answers too, but only positive
// resolutions count as hits).
func (t *DNSTier) HitRatio() float64 {
	hits := t.answered.Load()
	total := hits + t.nxdomain.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// PowerWatts implements Tier.
func (t *DNSTier) PowerWatts() float64 {
	if t.active.Load() {
		return designWatts(fpga.EmuDNSDesign, utilization(t.meter, fpga.EmuDNSDesign.PeakKpps))
	}
	return parkedWatts(fpga.EmuDNSDesign)
}

// Stage implements Tier. The table stays empty until Warm, so queries
// keep falling through to the host zone.
func (t *DNSTier) Stage() error {
	t.active.Store(true)
	return nil
}

// Warm implements Tier: the zone sync — snapshot every record into the
// tier's own answer table while the host keeps serving.
func (t *DNSTier) Warm() error {
	table := make(map[string]dns.ARecord, t.zone.Len())
	t.zone.Range(func(name string, r dns.ARecord) bool {
		table[name] = r
		return true
	})
	t.mu.Lock()
	t.table = table
	t.mu.Unlock()
	t.synced.Store(uint64(len(table)))
	return nil
}

// Park implements Tier: drop the table (park-reset; state lost).
func (t *DNSTier) Park() error {
	t.active.Store(false)
	t.mu.Lock()
	t.table = nil
	t.mu.Unlock()
	return nil
}

// TryHandleDatagram implements dataplane.FastPath.
func (t *DNSTier) TryHandleDatagram(in []byte, _ netip.AddrPort, scratch *[]byte) ([]byte, bool, bool) {
	q, err := dns.Decode(in, dns.MaxLabels)
	if err != nil || q.Response {
		// Malformed or stray response: host path semantics apply.
		t.passthrough.Add(1)
		return nil, false, false
	}
	t.meter.Add(1)
	if q.QType != dns.TypeA || q.QClass != dns.ClassIN {
		// Beyond the pipeline: punt to the host software.
		t.passthrough.Add(1)
		return nil, false, false
	}
	t.mu.RLock()
	table := t.table
	t.mu.RUnlock()
	if table == nil {
		// Not yet warmed: the host zone answers.
		t.passthrough.Add(1)
		return nil, false, false
	}
	resp := dns.Message{
		ID:        q.ID,
		Response:  true,
		Authority: true,
		RecDes:    q.RecDes,
		Name:      q.Name,
		QType:     q.QType,
		QClass:    q.QClass,
	}
	rec, ok := table[q.Name]
	if !ok {
		// Zone names are stored lowercased; retry case-folded.
		rec, ok = table[strings.ToLower(q.Name)]
	}
	if ok {
		t.answered.Add(1)
		resp.HasAnswer = true
		resp.Addr = rec.Addr
		resp.TTL = rec.TTL
	} else {
		t.nxdomain.Add(1)
		resp.RCode = dns.RCodeNXDomain
	}
	out, err := dns.AppendMessage((*scratch)[:0], resp)
	if err != nil {
		t.passthrough.Add(1)
		return nil, false, false
	}
	*scratch = out
	return out, true, true
}
