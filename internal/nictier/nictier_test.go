package nictier_test

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"incod/internal/dataplane"
	"incod/internal/dns"
	"incod/internal/fpga"
	"incod/internal/kvs"
	"incod/internal/memcache"
	"incod/internal/nictier"
	"incod/internal/paxos"
	"incod/internal/simnet"
)

func framedGet(id uint16, key string) []byte {
	return memcache.EncodeFrame(memcache.Frame{RequestID: id, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: key}))
}

func framedSet(id uint16, key, value string) []byte {
	return memcache.EncodeFrame(memcache.Frame{RequestID: id, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpSet, Key: key, Value: []byte(value)}))
}

func framedDelete(id uint16, key string) []byte {
	return memcache.EncodeFrame(memcache.Frame{RequestID: id, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpDelete, Key: key}))
}

// worker mimics one engine shard worker: offer to the tier first, fall
// through to the host handler — the dispatch order the engine uses.
func worker(t *testing.T, tier nictier.Tier, h *kvs.Handler, in []byte, scratch *[]byte) (out []byte, offloaded bool) {
	t.Helper()
	out, served, reply := tier.TryHandleDatagram(in, netip.AddrPort{}, scratch)
	if served {
		if !reply {
			return nil, true
		}
		return out, true
	}
	out, _ = h.HandleDatagram(in, scratch)
	return out, false
}

func parseFramedResponse(t *testing.T, out []byte) memcache.Response {
	t.Helper()
	_, body, err := memcache.DecodeFrame(out)
	if err != nil {
		t.Fatalf("reply frame: %v", err)
	}
	resp, err := memcache.ParseResponse(body)
	if err != nil {
		t.Fatalf("reply parse: %v", err)
	}
	return resp
}

func TestKVSTierLifecycle(t *testing.T) {
	store := kvs.NewShardedStore(2, 0)
	h := kvs.NewHandler(store)
	tier := nictier.NewKVS(h)
	scratch := make([]byte, 0, 64*1024)

	// Preload through the host handler, as a daemon would before a shift.
	for i := 0; i < 10; i++ {
		h.HandleDatagram(framedSet(1, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)), &scratch)
	}

	// Parked tier: everything falls through.
	out, offloaded := worker(t, tier, h, framedGet(2, "k3"), &scratch)
	if offloaded {
		t.Fatal("parked tier must not serve")
	}
	if resp := parseFramedResponse(t, out); !resp.Hit || string(resp.Value) != "v3" {
		t.Fatalf("host fall-through reply: %+v", resp)
	}

	if err := tier.Stage(); err != nil {
		t.Fatal(err)
	}
	if err := tier.Warm(); err != nil {
		t.Fatal(err)
	}
	if got := tier.Counters().Get("warmed_entries"); got != 10 {
		t.Fatalf("warmed_entries = %d, want 10", got)
	}

	// Warm tier serves GET hits itself, framed and raw ASCII alike.
	out, offloaded = worker(t, tier, h, framedGet(3, "k3"), &scratch)
	if !offloaded {
		t.Fatal("warm tier should serve the GET")
	}
	if resp := parseFramedResponse(t, out); !resp.Hit || string(resp.Value) != "v3" {
		t.Fatalf("tier reply: %+v", resp)
	}
	out, offloaded = worker(t, tier, h, []byte("get k4\r\n"), &scratch)
	if !offloaded {
		t.Fatal("warm tier should serve the raw ASCII GET")
	}
	if resp, err := memcache.ParseResponse(out); err != nil || !resp.Hit || string(resp.Value) != "v4" {
		t.Fatalf("raw tier reply: %+v err %v", resp, err)
	}
	if tier.HitRatio() <= 0 {
		t.Fatal("hit ratio should be positive")
	}

	// SET write-through: tier updates its cache, host stays authoritative
	// and replies; the next GET serves the new value from the tier.
	out, offloaded = worker(t, tier, h, framedSet(4, "k3", "v3-new"), &scratch)
	if offloaded {
		t.Fatal("SET must fall through to the host store of record")
	}
	if resp := parseFramedResponse(t, out); resp.Status != memcache.StatusStored {
		t.Fatalf("set reply: %+v", resp)
	}
	out, offloaded = worker(t, tier, h, framedGet(5, "k3"), &scratch)
	if !offloaded {
		t.Fatal("tier should serve the updated key")
	}
	if resp := parseFramedResponse(t, out); string(resp.Value) != "v3-new" {
		t.Fatalf("tier must serve the written-through value, got %q", resp.Value)
	}
	if e, ok := store.GetString("k3", simnet.Time(0)); !ok || string(e.Value) != "v3-new" {
		t.Fatalf("store of record: %+v ok=%v", e, ok)
	}

	// DELETE invalidates the cache; the GET then misses to the host.
	worker(t, tier, h, framedDelete(6, "k3"), &scratch)
	out, offloaded = worker(t, tier, h, framedGet(7, "k3"), &scratch)
	if offloaded {
		t.Fatal("deleted key must not be served from the tier")
	}
	if resp := parseFramedResponse(t, out); resp.Hit {
		t.Fatalf("deleted key must miss, got %+v", resp)
	}

	// Multi-key gets punt to the host.
	out, offloaded = worker(t, tier, h, framedGet(8, "k1 k2"), &scratch)
	if offloaded {
		t.Fatal("multiget must fall through")
	}
	if resp := parseFramedResponse(t, out); !resp.Hit || len(resp.Items) != 2 {
		t.Fatalf("multiget host reply: %+v", resp)
	}

	// Park flushes state: back to full fall-through.
	if err := tier.Park(); err != nil {
		t.Fatal(err)
	}
	if _, offloaded = worker(t, tier, h, framedGet(9, "k4"), &scratch); offloaded {
		t.Fatal("parked tier must not serve")
	}
	if l1, l2 := tier.CacheSizes(); l1 != 0 || l2 != 0 {
		t.Fatalf("park must flush caches, have l1=%d l2=%d", l1, l2)
	}
}

// A delete racing the warm-up's bulk snapshot must never be resurrected:
// a key deleted while Warm runs may be missing from the cache (a host
// round trip) but must not be served with the old value.
func TestKVSTierWarmDeleteRace(t *testing.T) {
	store := kvs.NewShardedStore(4, 0)
	h := kvs.NewHandler(store)
	tier := nictier.NewKVS(h)
	scratch := make([]byte, 0, 64*1024)

	const n = 20000
	for i := 0; i < n; i++ {
		store.Set(fmt.Sprintf("k%d", i), kvs.Entry{Value: []byte("v")})
	}
	if err := tier.Stage(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := tier.Warm(); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		sc := make([]byte, 0, 64*1024)
		for i := 0; i < n; i += 2 {
			// The worker order: tier write-through, then host handler.
			in := framedDelete(uint16(i), fmt.Sprintf("k%d", i))
			if _, served, _ := tier.TryHandleDatagram(in, netip.AddrPort{}, &sc); served {
				t.Error("delete must fall through")
				return
			}
			h.HandleDatagram(in, &sc)
		}
	}()
	wg.Wait()

	for i := 0; i < n; i += 2 {
		in := framedGet(uint16(i), fmt.Sprintf("k%d", i))
		out, served, _ := tier.TryHandleDatagram(in, netip.AddrPort{}, &scratch)
		if served {
			t.Fatalf("k%d: deleted key resurrected by warm-up: %q", i, out)
		}
	}
}

func TestDNSTier(t *testing.T) {
	zone := dns.NewZone()
	zone.PopulateSequential(8)
	tier := nictier.NewDNS(zone)
	scratch := make([]byte, 0, 4096)

	q, err := dns.Encode(dns.NewQuery(7, dns.SequentialName(3)))
	if err != nil {
		t.Fatal(err)
	}
	if _, served, _ := tier.TryHandleDatagram(q, netip.AddrPort{}, &scratch); served {
		t.Fatal("unwarmed tier must fall through")
	}

	if err := tier.Stage(); err != nil {
		t.Fatal(err)
	}
	if err := tier.Warm(); err != nil {
		t.Fatal(err)
	}
	if got := tier.Counters().Get("synced_records"); got != 8 {
		t.Fatalf("synced_records = %d, want 8", got)
	}

	out, served, reply := tier.TryHandleDatagram(q, netip.AddrPort{}, &scratch)
	if !served || !reply {
		t.Fatal("warm tier should answer the A query")
	}
	m, err := dns.Decode(out, 0)
	if err != nil || !m.HasAnswer || m.ID != 7 || m.Addr != [4]byte{10, 0, 0, 3} {
		t.Fatalf("tier answer: %+v err %v", m, err)
	}
	if !m.Authority {
		t.Fatal("tier answers must be authoritative")
	}

	// Unknown name: authoritative NXDOMAIN from the tier (§3.3).
	q2, _ := dns.Encode(dns.NewQuery(8, "nowhere.example.com"))
	out, served, _ = tier.TryHandleDatagram(q2, netip.AddrPort{}, &scratch)
	if !served {
		t.Fatal("tier should answer NXDOMAIN itself")
	}
	if m, err = dns.Decode(out, 0); err != nil || m.RCode != dns.RCodeNXDomain {
		t.Fatalf("nxdomain: %+v err %v", m, err)
	}

	// Non-A questions punt to the host software.
	mx := dns.NewQuery(9, dns.SequentialName(1))
	mx.QType = 15
	q3, _ := dns.Encode(mx)
	if _, served, _ = tier.TryHandleDatagram(q3, netip.AddrPort{}, &scratch); served {
		t.Fatal("non-A questions must fall through")
	}

	if err := tier.Park(); err != nil {
		t.Fatal(err)
	}
	if _, served, _ = tier.TryHandleDatagram(q, netip.AddrPort{}, &scratch); served {
		t.Fatal("parked tier must fall through")
	}
}

func TestPaxosTierHandoff(t *testing.T) {
	var mu sync.Mutex
	fanout := map[string][]paxos.Msg{}
	send := func(to string, m paxos.Msg) {
		mu.Lock()
		fanout[to] = append(fanout[to], m)
		mu.Unlock()
	}
	host := paxos.NewLiveAcceptor(3, []string{"learner-1"}, send)
	scratch := make([]byte, 0, 4096)

	// The host role votes on instance 1 before any shift.
	p2a := paxos.Encode(paxos.Msg{Type: paxos.MsgPhase2A, Instance: 1, Ballot: 5,
		ClientID: 9, Seq: 42, Value: []byte("cmd")})
	out, ok := host.HandleDatagram(p2a, &scratch)
	if !ok {
		t.Fatal("host must answer the 2A")
	}
	if m, err := paxos.Decode(out); err != nil || m.Type != paxos.MsgPhase2B || m.VBallot != 5 {
		t.Fatalf("host vote: %+v err %v", m, err)
	}

	tier := nictier.NewPaxosAcceptor(host)
	if err := tier.Stage(); err != nil {
		t.Fatal(err)
	}
	// Before the handoff the tier has no state and must fall through.
	p1a := paxos.Encode(paxos.Msg{Type: paxos.MsgPhase1A, Instance: 1, Ballot: 6})
	if _, served, _ := tier.TryHandleDatagram(p1a, netip.AddrPort{}, &scratch); served {
		t.Fatal("unwarmed tier must fall through")
	}
	if err := tier.Warm(); err != nil {
		t.Fatal(err)
	}
	if got := tier.Counters().Get("handoff_instances"); got != 1 {
		t.Fatalf("handoff_instances = %d, want 1", got)
	}

	// The tier's 1B for instance 1 must carry the host-made vote.
	out, served, reply := tier.TryHandleDatagram(p1a, netip.AddrPort{}, &scratch)
	if !served || !reply {
		t.Fatal("warm tier should serve the 1A")
	}
	m, err := paxos.Decode(out)
	if err != nil || m.Type != paxos.MsgPhase1B || m.VBallot != 5 || string(m.Value) != "cmd" {
		t.Fatalf("tier 1B must carry the handed-off vote: %+v err %v", m, err)
	}
	if m.NodeID != 3 {
		t.Fatalf("tier must keep the acceptor identity, got node %d", m.NodeID)
	}

	// A straggler dispatched to the host is delegated to the tier's copy.
	out, ok = host.HandleDatagram(p1a, &scratch)
	if !ok {
		t.Fatal("host must delegate the straggler")
	}
	if m, err = paxos.Decode(out); err != nil || m.VBallot != 5 {
		t.Fatalf("delegated 1B: %+v err %v", m, err)
	}

	// A vote made on the tier fans out to the learners...
	p2a2 := paxos.Encode(paxos.Msg{Type: paxos.MsgPhase2A, Instance: 2, Ballot: 6, Value: []byte("c2")})
	if _, served, _ = tier.TryHandleDatagram(p2a2, netip.AddrPort{}, &scratch); !served {
		t.Fatal("warm tier should serve the 2A")
	}
	mu.Lock()
	learnerVotes := len(fanout["learner-1"])
	mu.Unlock()
	if learnerVotes < 2 { // one host vote + one tier vote
		t.Fatalf("learner fan-out = %d votes, want >= 2", learnerVotes)
	}

	// ...and survives the shift back: after Park the host's 1B for
	// instance 2 reflects the tier-made vote.
	if err := tier.Park(); err != nil {
		t.Fatal(err)
	}
	p1a2 := paxos.Encode(paxos.Msg{Type: paxos.MsgPhase1A, Instance: 2, Ballot: 7})
	out, ok = host.HandleDatagram(p1a2, &scratch)
	if !ok {
		t.Fatal("host must serve after the handback")
	}
	if m, err = paxos.Decode(out); err != nil || m.VBallot != 6 || string(m.Value) != "c2" {
		t.Fatalf("handback lost the tier vote: %+v err %v", m, err)
	}
	if _, served, _ := tier.TryHandleDatagram(p1a2, netip.AddrPort{}, &scratch); served {
		t.Fatal("parked tier must fall through")
	}
}

// The acceptance bar for the fast path: a warmed single-key GET hit does
// zero heap allocations.
func TestKVSTierGetHitZeroAlloc(t *testing.T) {
	store := kvs.NewShardedStore(2, 0)
	h := kvs.NewHandler(store)
	tier := nictier.NewKVS(h)
	store.Set("hot", kvs.Entry{Flags: 7, Value: []byte("payload")})
	if err := tier.Stage(); err != nil {
		t.Fatal(err)
	}
	if err := tier.Warm(); err != nil {
		t.Fatal(err)
	}
	req := framedGet(1, "hot")
	scratch := make([]byte, 0, 64*1024)
	served := true
	allocs := testing.AllocsPerRun(2000, func() {
		_, ok, _ := tier.TryHandleDatagram(req, netip.AddrPort{}, &scratch)
		served = served && ok
	})
	if !served {
		t.Fatal("hit path did not serve")
	}
	if allocs != 0 {
		t.Fatalf("GET hit path allocates %.1f times per op, want 0", allocs)
	}
}

func TestTierPowerModel(t *testing.T) {
	store := kvs.NewShardedStore(2, 0)
	tier := nictier.NewKVS(kvs.NewHandler(store))
	parked := tier.PowerWatts()
	if err := tier.Stage(); err != nil {
		t.Fatal(err)
	}
	active := tier.PowerWatts()
	if parked >= active {
		t.Fatalf("park-reset draw (%.1fW) must be below the active design draw (%.1fW)", parked, active)
	}
	if parked < fpga.NICBaseCardWatts {
		t.Fatalf("parked card still forwards as a NIC: %.1fW < base %.1fW", parked, fpga.NICBaseCardWatts)
	}
	// §4.2 anchor: the active LaKe card adds roughly 20 W to the server.
	if active < 15 || active > 25 {
		t.Fatalf("active LaKe draw %.1fW implausible vs the ~20W §4.2 anchor", active)
	}
}

func BenchmarkNICTierKVSGetHit(b *testing.B) {
	store := kvs.NewShardedStore(4, 0)
	h := kvs.NewHandler(store)
	tier := nictier.NewKVS(h)
	store.Set("hot", kvs.Entry{Flags: 7, Value: []byte("payload-of-a-modest-size")})
	if err := tier.Stage(); err != nil {
		b.Fatal(err)
	}
	if err := tier.Warm(); err != nil {
		b.Fatal(err)
	}
	req := framedGet(1, "hot")
	scratch := make([]byte, 0, 64*1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, served, _ := tier.TryHandleDatagram(req, netip.AddrPort{}, &scratch); !served {
			b.Fatal("miss on the hit path")
		}
	}
}

// TestKVSTierBatchMatchesPerDatagram drives the same traffic through
// TryHandleDatagram and TryHandleBatch on identically warmed tiers: the
// batch form (one epoch read per batch) must classify and answer
// identically — hits served, misses and mutations falling through.
func TestKVSTierBatchMatchesPerDatagram(t *testing.T) {
	mkWarm := func() (*kvs.Handler, *nictier.KVSTier) {
		h := kvs.NewHandler(kvs.NewShardedStore(2, 0))
		scratch := make([]byte, 0, 4096)
		for i := 0; i < 8; i++ {
			h.HandleDatagram(framedSet(1, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)), &scratch)
		}
		tier := nictier.NewKVS(h)
		if err := tier.Stage(); err != nil {
			t.Fatal(err)
		}
		if err := tier.Warm(); err != nil {
			t.Fatal(err)
		}
		return h, tier
	}

	datagrams := [][]byte{
		framedGet(2, "k3"),           // hit
		framedGet(3, "missing"),      // miss -> host
		[]byte("get k4\r\n"),         // raw hit
		framedSet(4, "k1", "new"),    // write-through, falls through
		framedDelete(5, "k2"),        // invalidate, falls through
		[]byte("gets k0 k1\r\n"),     // multiget passthrough
		[]byte("\x00\x02\x03broken"), // malformed passthrough
	}

	_, single := mkWarm()
	type result struct {
		out           []byte
		served, reply bool
	}
	var want []result
	scratch := make([]byte, 0, 4096)
	for _, dg := range datagrams {
		out, served, reply := single.TryHandleDatagram(dg, netip.AddrPort{}, &scratch)
		want = append(want, result{out: append([]byte(nil), out...), served: served, reply: reply})
	}

	_, batched := mkWarm()
	items := make([]*dataplane.BatchItem, len(datagrams))
	for i, dg := range datagrams {
		s := make([]byte, 0, 4096)
		items[i] = &dataplane.BatchItem{In: dg, Scratch: &s}
	}
	batched.TryHandleBatch(items)
	for i, it := range items {
		if it.Served != want[i].served {
			t.Fatalf("datagram %d (%q): batch served=%v, single served=%v", i, datagrams[i], it.Served, want[i].served)
		}
		wantOut := ""
		if want[i].served && want[i].reply {
			wantOut = string(want[i].out)
		}
		if string(it.Out) != wantOut {
			t.Fatalf("datagram %d (%q): batch reply %q, single reply %q", i, datagrams[i], it.Out, wantOut)
		}
	}
	if got, wantHits := batched.Counters().Get("l1_hit")+batched.Counters().Get("l2_hit"),
		single.Counters().Get("l1_hit")+single.Counters().Get("l2_hit"); got != wantHits {
		t.Fatalf("batch tier hits %d != single tier hits %d", got, wantHits)
	}
}
