package nictier

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"incod/internal/dataplane"
	"incod/internal/fpga"
	"incod/internal/kvs"
	"incod/internal/memcache"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// KVSTier is the LaKe-style fast path (§3.1): a layered lookaside cache
// in front of the host memcached handler. L1 is sized to the on-chip
// BRAM value budget, L2 to the (simulation-default) DRAM layer. GET hits
// are served from the cache with zero heap allocations; GET misses and
// everything else fall through to the host, with SET/DELETE interposed
// write-through so the cache never holds a value the store of record
// does not ("a query is only forwarded to software if there are misses
// at both layers" — here the miss *is* the forward).
//
// Coherence contract: the engine must dispatch by key (kvs.ShardByKey),
// so all operations on one key are serialized by one worker; the cache
// then observes every write in store order. The one writer the engine
// does not serialize is Warm's bulk snapshot, which is made safe by
// SetIfAbsent installs plus a deletion log covering the warm window.
type KVSTier struct {
	store *kvs.ShardedStore // host store of record (warm-up source)
	epoch time.Time         // shared with the host handler's virtual clock

	l1, l2       *kvs.ShardedStore
	l1Cap, l2Cap int // entry bounds, reused by Park's reset
	active       atomic.Bool
	meter        *telemetry.AtomicRateMeter

	// The deletion log: while warming, write-through deletes are
	// recorded so the final warm pass can undo any snapshot install
	// that raced them (a resurrected deleted key would be served
	// incorrectly; a missing cache entry is merely a host round trip).
	delMu   sync.Mutex
	warming bool
	delLog  []string

	counters    *telemetry.AtomicCounters
	l1Hits      *atomic.Uint64
	l2Hits      *atomic.Uint64
	misses      *atomic.Uint64
	writes      *atomic.Uint64
	passthrough *atomic.Uint64
	warmed      *atomic.Uint64
}

// NewKVS returns a LaKe-style tier in front of h's store, sharing h's
// expiry clock, with the board-default cache capacities.
func NewKVS(h *kvs.Handler) *KVSTier {
	return NewKVSSized(h, fpga.OnChipValueEntries, kvs.L2DefaultCapacity)
}

// NewKVSSized is NewKVS with explicit L1/L2 entry bounds (<= 0 selects
// the board default for that layer). The bounds also size the backing
// tables, so small ones keep tier construction and Park's cache reset
// cheap — the chaos harness builds and parks thousands of tiers per
// sweep, where the default DRAM-scale L2 table would dominate the run.
func NewKVSSized(h *kvs.Handler, l1Cap, l2Cap int) *KVSTier {
	if l1Cap <= 0 {
		l1Cap = fpga.OnChipValueEntries
	}
	if l2Cap <= 0 {
		l2Cap = kvs.L2DefaultCapacity
	}
	c := telemetry.NewAtomicCounters()
	return &KVSTier{
		store:       h.Store(),
		epoch:       h.Epoch(),
		l1:          kvs.NewShardedStore(0, l1Cap),
		l2:          kvs.NewShardedStore(0, l2Cap),
		l1Cap:       l1Cap,
		l2Cap:       l2Cap,
		meter:       telemetry.NewAtomicRateMeter(meterBucket, meterBuckets),
		counters:    c,
		l1Hits:      c.Handle("l1_hit"),
		l2Hits:      c.Handle("l2_hit"),
		misses:      c.Handle("miss"),
		writes:      c.Handle("write_through"),
		passthrough: c.Handle("passthrough"),
		warmed:      c.Handle("warmed_entries"),
	}
}

// Name implements Tier.
func (t *KVSTier) Name() string { return "lake" }

// Counters implements Tier.
func (t *KVSTier) Counters() *telemetry.AtomicCounters { return t.counters }

// StatsCounters lets dataplane.Snapshot fold the tier counters in.
func (t *KVSTier) StatsCounters() *telemetry.AtomicCounters { return t.counters }

// CacheSizes returns the current L1 and L2 entry counts.
func (t *KVSTier) CacheSizes() (l1, l2 int) { return t.l1.Len(), t.l2.Len() }

// HitRatio implements Tier: the fraction of classified GETs served from
// either cache layer.
func (t *KVSTier) HitRatio() float64 {
	hits := t.l1Hits.Load() + t.l2Hits.Load()
	total := hits + t.misses.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// PowerWatts implements Tier: the LaKe design draw while serving, the
// park-reset draw while idle.
func (t *KVSTier) PowerWatts() float64 {
	if t.active.Load() {
		return designWatts(fpga.LaKeDesign, utilization(t.meter, fpga.LaKeDesign.PeakKpps))
	}
	return parkedWatts(fpga.LaKeDesign)
}

// Stage implements Tier: cold caches, deletion log armed.
func (t *KVSTier) Stage() error {
	t.delMu.Lock()
	t.warming = true
	t.delLog = t.delLog[:0]
	t.delMu.Unlock()
	t.active.Store(true)
	return nil
}

// Warm implements Tier: the LaKe cache activation — bulk-install the
// store of record into L2, and seed L1 with the host's measured hot-key
// top-K (falling back to walk order when hot-key sampling is off) while
// the host keeps serving. SetIfAbsent keeps concurrent write-through
// values (newer by definition) from being clobbered, and the deletion
// log erases any install that raced a delete.
func (t *KVSTier) Warm() error {
	// Snapshot the hot set before the walk: a shift pre-loads the keys
	// the host actually served, not whatever order the table yields.
	hot := t.store.HotKeys(fpga.OnChipValueEntries)
	installed := 0
	t.store.Range(func(key string, e kvs.Entry) bool {
		// Range hands the walk a fresh copy of each value, so the tier
		// caches can own the bytes directly.
		if t.l2.SetIfAbsent(key, e) {
			installed++
		}
		if len(hot) == 0 && installed <= fpga.OnChipValueEntries {
			// No hot-key telemetry: seed L1 with the first slice of the
			// walk; its own bound caps it at the on-chip budget either
			// way, and real popularity sorts itself out via promotion.
			t.l1.SetIfAbsent(key, e)
		}
		return true
	})
	// Seed L1 from the measured hot set, hottest first, reading through
	// L2 so the host store's serving counters stay untouched.
	now := simnet.Time(time.Since(t.epoch))
	for _, hk := range hot {
		if e, ok := t.l2.GetString(hk.Key, now); ok {
			t.l1.SetIfAbsent(hk.Key, e)
		}
	}
	t.delMu.Lock()
	for _, k := range t.delLog {
		t.l1.Delete(k)
		t.l2.Delete(k)
	}
	t.delLog = nil
	t.warming = false
	t.delMu.Unlock()
	t.warmed.Store(uint64(installed))
	return nil
}

// Park implements Tier: the §9.2 park-reset — memories in reset, cached
// state lost.
func (t *KVSTier) Park() error {
	t.active.Store(false)
	t.l1 = kvs.NewShardedStore(0, t.l1Cap)
	t.l2 = kvs.NewShardedStore(0, t.l2Cap)
	t.delMu.Lock()
	t.warming = false
	t.delLog = nil
	t.delMu.Unlock()
	return nil
}

// TryHandleDatagram implements dataplane.FastPath. The single-key GET
// hit path — frame decode, view parse, L1 lookup, reply encode — does no
// heap allocation.
func (t *KVSTier) TryHandleDatagram(in []byte, _ netip.AddrPort, scratch *[]byte) ([]byte, bool, bool) {
	return t.tryHandleAt(in, simnet.Time(time.Since(t.epoch)), scratch)
}

// TryHandleBatch implements dataplane.BatchFastPath: the epoch is read
// and converted to the virtual clock once for the whole batch instead of
// once per datagram; each item then takes the same classification as
// TryHandleDatagram.
func (t *KVSTier) TryHandleBatch(items []*dataplane.BatchItem) {
	now := simnet.Time(time.Since(t.epoch))
	for _, it := range items {
		out, served, reply := t.tryHandleAt(it.In, now, it.Scratch)
		if served {
			it.Served = true
			if reply {
				it.Out = out
			}
		}
	}
}

func (t *KVSTier) tryHandleAt(in []byte, now simnet.Time, scratch *[]byte) ([]byte, bool, bool) {
	var v memcache.RequestView
	framed := false
	var reqID uint16
	if f, b, err := memcache.DecodeFrame(in); err == nil && memcache.ParseRequestView(b, &v) == nil {
		framed, reqID = true, f.RequestID
	} else if memcache.ParseRequestView(in, &v) != nil {
		// Malformed: the host path owns error replies.
		t.passthrough.Add(1)
		return nil, false, false
	}
	t.meter.Add(1)
	switch {
	case v.Op == memcache.OpGet && !v.MultiKey:
		// Encode the reply straight out of the lock-free read: the frame
		// header goes down first, then AppendGetHit copies the value
		// bytes in under seqlock validation — no lock, no allocation.
		out := (*scratch)[:0]
		if framed {
			out = memcache.AppendFrame(out, memcache.Frame{RequestID: reqID, Total: 1})
		}
		if res, ok := t.l1.AppendGetHit(out, v.Key, now); ok {
			t.l1Hits.Add(1)
			*scratch = res
			return res, true, true
		}
		if res, ok := t.l2.AppendGetHit(out, v.Key, now); ok {
			t.l2Hits.Add(1)
			if e, ok2 := t.l2.Get(v.Key, now); ok2 {
				t.l1.Set(string(v.Key), e) // promote; off the allocation-free path
			}
			*scratch = res
			return res, true, true
		}
		// Miss at both layers: the host software services it (§3.1).
		t.misses.Add(1)
		return nil, false, false
	case v.Op == memcache.OpSet:
		// Write-through into the cache layers, then fall through so the
		// host store stays authoritative and sends the reply.
		t.writes.Add(1)
		var exp int64
		if v.Exptime > 0 {
			exp = int64(now.Add(time.Duration(v.Exptime) * time.Second))
		}
		val := make([]byte, len(v.Value))
		copy(val, v.Value)
		key := string(v.Key)
		e := kvs.Entry{Flags: v.Flags, Value: val, Expires: exp}
		t.l2.Set(key, e)
		t.l1.Set(key, e)
		return nil, false, false
	case v.Op == memcache.OpDelete:
		t.writes.Add(1)
		key := string(v.Key)
		// Log BEFORE invalidating: if the warm pass already replayed the
		// log (warming=false here), its snapshot installs are all done
		// and the deletes below land last; if it has not, the key is in
		// the log and the replay erases any racing snapshot install.
		// Invalidate-first would leave a window where Warm reinstalls
		// the key after the delete but before the log append.
		t.delMu.Lock()
		if t.warming {
			t.delLog = append(t.delLog, key)
		}
		t.delMu.Unlock()
		t.l1.Delete(key)
		t.l2.Delete(key)
		return nil, false, false
	}
	// Multi-key gets and anything else: the general host path.
	t.passthrough.Add(1)
	return nil, false, false
}
