package cluster

// LoadTrace is an offered-load series in kpps, one sample per second —
// the demand a service sees over (part of) a day.
type LoadTrace []float64

// DiurnalLoad synthesizes a day of per-second load: quiet nights around
// nightKpps, busy daytime ramping to peakKpps, following the §9.3
// observation that on-demand pays off when load swings across the
// crossover on scheduling timescales.
func DiurnalLoad(nightKpps, peakKpps float64) LoadTrace {
	const daySeconds = 24 * 3600
	out := make(LoadTrace, daySeconds)
	for s := range out {
		h := float64(s) / 3600
		switch {
		case h < 7 || h >= 23:
			out[s] = nightKpps
		default:
			// Ramp up to the afternoon peak and back down.
			frac := 1 - abs(h-15)/8 // 0 at 7h/23h, 1 at 15h
			out[s] = nightKpps + (peakKpps-nightKpps)*frac
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// EnergyKWh integrates a power function over the load trace.
func (t LoadTrace) EnergyKWh(powerWatts func(kpps float64) float64) float64 {
	var joules float64
	for _, kpps := range t {
		joules += powerWatts(kpps)
	}
	return joules / 3.6e6
}

// DaySaving compares always-software against an on-demand envelope over
// the trace and returns (software kWh, on-demand kWh, saved fraction).
func DaySaving(t LoadTrace, sw, onDemand func(kpps float64) float64) (swKWh, odKWh, savedFrac float64) {
	swKWh = t.EnergyKWh(sw)
	odKWh = t.EnergyKWh(onDemand)
	if swKWh > 0 {
		savedFrac = 1 - odKWh/swKWh
	}
	return swKWh, odKWh, savedFrac
}

// ShiftCount reports how many placement changes an on-demand controller
// with the given hysteresis pair would make over the trace — the §9.3
// "is the variance low enough for the scheduling period?" question made
// concrete.
func ShiftCount(t LoadTrace, upKpps, downKpps float64) int {
	inNetwork := false
	shifts := 0
	for _, kpps := range t {
		switch {
		case !inNetwork && kpps > upKpps:
			inNetwork = true
			shifts++
		case inNetwork && kpps < downKpps:
			inNetwork = false
			shifts++
		}
	}
	return shifts
}
