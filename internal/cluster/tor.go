package cluster

import (
	"incod/internal/asic"
	"incod/internal/energy"
	"incod/internal/power"
)

// §9.4 analysis: a ToR switch serving a rack of n nodes. For the switch,
// Pi_N = Pi_S (the device forwards regardless), so the tipping point
// compares dynamic power only — and switch dynamic power is so small
// (<5 W per 100G port) that the tipping point "R is almost zero".

// ToRConfig describes the rack.
type ToRConfig struct {
	// Nodes in the rack.
	Nodes int
	// PacketBytes sizes the application's packets.
	PacketBytes int
	// ServerCurve is the per-server software power curve.
	ServerCurve power.SoftwareCurve
}

// SwitchTippingKpps returns the rate at which running the workload on the
// ToR switch becomes cheaper than one server running it, using the §9.4
// per-port dynamic-power arithmetic for the switch side.
func SwitchTippingKpps(cfg ToRConfig, limitKpps float64) float64 {
	sw := energy.Profile{
		Name: cfg.ServerCurve.Name,
		DynamicWatts: func(kpps float64) float64 {
			return cfg.ServerCurve.Power(kpps) - cfg.ServerCurve.Power(0)
		},
	}
	nw := energy.Profile{
		Name: "tor-switch",
		DynamicWatts: func(kpps float64) float64 {
			return asic.PortDynamicWatts(kpps*1000, cfg.PacketBytes)
		},
	}
	return energy.TippingPointKpps(sw, nw, limitKpps)
}

// CacheSplitPower models the §9.4 partial-offload case: the switch serves
// hitRatio of the aggregate rack request rate (in kpps) and the host
// serves the rest. It returns total dynamic watts for the split and for
// the host-only deployment, so callers can see the efficiency as a
// function of the hit:miss ratio.
func CacheSplitPower(cfg ToRConfig, rackKpps, hitRatio float64) (split, hostOnly float64) {
	if hitRatio < 0 {
		hitRatio = 0
	}
	if hitRatio > 1 {
		hitRatio = 1
	}
	missKpps := rackKpps * (1 - hitRatio)
	perServerMiss := missKpps
	if cfg.Nodes > 0 {
		perServerMiss = missKpps / float64(cfg.Nodes)
	}
	hostDyn := func(kpps float64) float64 {
		return cfg.ServerCurve.Power(kpps) - cfg.ServerCurve.Power(0)
	}
	switchDyn := asic.PortDynamicWatts(rackKpps*hitRatio*1000, cfg.PacketBytes)
	split = switchDyn + float64(max(cfg.Nodes, 1))*hostDyn(perServerMiss)
	perServerAll := rackKpps
	if cfg.Nodes > 0 {
		perServerAll = rackKpps / float64(cfg.Nodes)
	}
	hostOnly = float64(max(cfg.Nodes, 1)) * hostDyn(perServerAll)
	return split, hostOnly
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RequestHalving quantifies the §10 observation that running in a switch
// halves the application-specific packets through it: request and reply
// traverse as one packet (in as the request, out as the reply) instead of
// two.
func RequestHalving(requestsPerSec float64) (switchPackets, serverPackets float64) {
	return requestsPerSec, 2 * requestsPerSec
}
