package cluster

import "math/rand"

// This file exports the trace machinery the live fleet controller needs:
// the sim-time demand models (DiurnalLoad, the Dynamo workload kinds)
// resampled and scaled so a day of per-second demand can be replayed as
// real traffic in a compressed wall-clock window.

// Sample resamples the trace to n evenly spaced points (first and last
// samples preserved), the shape a live replayer turns into load-generator
// phases. n <= 0 returns nil; n >= len(t) returns a copy.
func (t LoadTrace) Sample(n int) LoadTrace {
	if n <= 0 || len(t) == 0 {
		return nil
	}
	if n >= len(t) {
		out := make(LoadTrace, len(t))
		copy(out, t)
		return out
	}
	out := make(LoadTrace, n)
	if n == 1 {
		out[0] = t[0]
		return out
	}
	for i := range out {
		idx := i * (len(t) - 1) / (n - 1)
		out[i] = t[idx]
	}
	return out
}

// Scale returns a copy of the trace with every sample multiplied by f —
// how a datacenter-rate trace is brought down to loopback-feasible rates
// (the controller's rate-scale un-does it in the energy model).
func (t LoadTrace) Scale(f float64) LoadTrace {
	out := make(LoadTrace, len(t))
	for i, v := range t {
		out[i] = v * f
	}
	return out
}

// Peak returns the highest sample in the trace.
func (t LoadTrace) Peak() float64 {
	var peak float64
	for _, v := range t {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Mean returns the average sample.
func (t LoadTrace) Mean() float64 {
	if len(t) == 0 {
		return 0
	}
	var sum float64
	for _, v := range t {
		sum += v
	}
	return sum / float64(len(t))
}

// DynamoLoad synthesizes seconds of per-second demand in kpps: the
// diurnal night/peak envelope modulated by the §9.3 Dynamo workload-kind
// volatility (caching steady, web volatile, mixed rack between). This is
// the load-side counterpart of GenerateTrace's power samples — the same
// random-walk/burst process, applied as a multiplicative factor around
// the envelope — so a fleet replaying it sees realistic second-scale
// variance on top of the day shape.
func DynamoLoad(rng *rand.Rand, kind WorkloadKind, nightKpps, peakKpps float64, seconds int) LoadTrace {
	if seconds <= 0 {
		return nil
	}
	envelope := DiurnalLoad(nightKpps, peakKpps)
	// Volatility factors around 1.0 with the kind's parameters.
	factors := GenerateTrace(rng, kind, 1.0, seconds)
	out := make(LoadTrace, seconds)
	for s := range out {
		e := envelope[(s*len(envelope))/seconds]
		v := e * factors[s]
		if v < 0 {
			v = 0
		}
		out[s] = v
	}
	return out
}
