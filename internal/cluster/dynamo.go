// Package cluster implements the §9.3/§9.4 data-center analyses: Dynamo
// (Facebook) power-variance statistics, Google-cluster-trace offload
// candidate mining, and the top-of-rack switch on-demand arithmetic.
//
// The real traces are proprietary (Dynamo) or partially normalized
// (Google); per the substitution rule, synthetic generators reproduce the
// published aggregate statistics, and the analysis code computes exactly
// the quantities the paper derives from them.
package cluster

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// PowerTrace is a per-second power sample series for one rack or workload.
type PowerTrace []float64

// WorkloadKind selects a §9.3 workload volatility profile.
type WorkloadKind int

// Workload kinds with the Dynamo-published variance behaviour: caching is
// steady (median 9.2%, p99 26.2% over 60s), web is volatile (median
// 37.2%, p99 62.2%), and a mixed rack sits between (median <5%, p99 12.8%
// over 3s / 26.6% over 30s).
const (
	RackMixed WorkloadKind = iota
	Caching
	WebServer
)

// String names the workload.
func (k WorkloadKind) String() string {
	switch k {
	case Caching:
		return "caching"
	case WebServer:
		return "web"
	}
	return "rack"
}

// volatility parameters per kind: random-walk step (fraction of base) and
// burst probability/magnitude.
func (k WorkloadKind) params() (step, burstP, burstMag float64) {
	switch k {
	case Caching:
		return 0.018, 0.003, 0.24
	case WebServer:
		return 0.075, 0.02, 0.45
	default: // RackMixed
		return 0.015, 0.012, 0.26
	}
}

// GenerateTrace synthesizes seconds of per-second power samples for the
// given workload around baseWatts.
func GenerateTrace(rng *rand.Rand, kind WorkloadKind, basePower float64, seconds int) PowerTrace {
	step, burstP, burstMag := kind.params()
	trace := make(PowerTrace, seconds)
	level := basePower
	for i := range trace {
		level += basePower * step * (rng.Float64()*2 - 1)
		// Mean-revert toward base.
		level += (basePower - level) * 0.08
		v := level
		if rng.Float64() < burstP {
			v += basePower * burstMag * rng.Float64()
		}
		if v < basePower*0.3 {
			v = basePower * 0.3
		}
		trace[i] = v
	}
	return trace
}

// VariationStats holds the §9.3 Dynamo variance metrics for one window
// length: the distribution of (max-min)/mean over sliding windows.
type VariationStats struct {
	Window    time.Duration
	MedianPct float64
	P99Pct    float64
}

// Variation computes variation statistics over sliding windows of w
// seconds.
func (t PowerTrace) Variation(w time.Duration) VariationStats {
	n := int(w / time.Second)
	if n < 1 {
		n = 1
	}
	if n > len(t) {
		n = len(t)
	}
	var vars []float64
	for i := 0; i+n <= len(t); i++ {
		lo, hi, sum := math.MaxFloat64, 0.0, 0.0
		for _, v := range t[i : i+n] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			sum += v
		}
		mean := sum / float64(n)
		if mean > 0 {
			vars = append(vars, (hi-lo)/mean*100)
		}
	}
	if len(vars) == 0 {
		return VariationStats{Window: w}
	}
	sort.Float64s(vars)
	return VariationStats{
		Window:    w,
		MedianPct: percentile(vars, 0.50),
		P99Pct:    percentile(vars, 0.99),
	}
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// SafeForOnDemand applies the §9.3 rule: "If there is low power variance
// over the scheduling period, it will be safe to use in-network computing.
// If there is large variance, in-network computing on demand may be
// incorrect or inefficient."
func SafeForOnDemand(v VariationStats, maxP99Pct float64) bool {
	return v.P99Pct <= maxP99Pct
}

// DynamoPublished returns the variance numbers the paper quotes from the
// Dynamo study, for side-by-side reporting in EXPERIMENTS.md.
func DynamoPublished() map[string]VariationStats {
	return map[string]VariationStats{
		"rack-3s":     {Window: 3 * time.Second, MedianPct: 5, P99Pct: 12.8},
		"rack-30s":    {Window: 30 * time.Second, MedianPct: 5, P99Pct: 26.6},
		"caching-60s": {Window: 60 * time.Second, MedianPct: 9.2, P99Pct: 26.2},
		"web-60s":     {Window: 60 * time.Second, MedianPct: 37.2, P99Pct: 62.2},
	}
}
