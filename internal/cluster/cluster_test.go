package cluster

import (
	"math/rand"
	"testing"
	"time"

	"incod/internal/power"
)

func TestVariationOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trace := GenerateTrace(rng, RackMixed, 1000, 3600)
	v3 := trace.Variation(3 * time.Second)
	v30 := trace.Variation(30 * time.Second)
	// §9.3: variance grows with window (12.8% p99 over 3s, 26.6% over 30s),
	// and medians sit well below the tails.
	if v30.P99Pct <= v3.P99Pct {
		t.Errorf("p99 should grow with window: 3s=%v, 30s=%v", v3.P99Pct, v30.P99Pct)
	}
	if v3.MedianPct >= v3.P99Pct || v30.MedianPct >= v30.P99Pct {
		t.Error("median should sit below p99")
	}
	// Rack-level medians are small ("median power variation less than 5%").
	if v3.MedianPct > 8 {
		t.Errorf("3s median = %v%%, want small", v3.MedianPct)
	}
}

func TestWorkloadVolatilityOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	caching := GenerateTrace(rng, Caching, 500, 3600).Variation(60 * time.Second)
	web := GenerateTrace(rng, WebServer, 500, 3600).Variation(60 * time.Second)
	// §9.3: web (median 37.2%) is far more volatile than caching (9.2%).
	if web.MedianPct <= caching.MedianPct {
		t.Errorf("web median %v%% should exceed caching %v%%", web.MedianPct, caching.MedianPct)
	}
	if web.P99Pct <= caching.P99Pct {
		t.Errorf("web p99 %v%% should exceed caching %v%%", web.P99Pct, caching.P99Pct)
	}
	// The §9.3 rule: caching is a safe on-demand target, web is risky.
	if !SafeForOnDemand(caching, 35) {
		t.Error("caching should be safe for on-demand")
	}
	if SafeForOnDemand(web, 35) {
		t.Error("web workload should be flagged as risky")
	}
}

func TestTraceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trace := GenerateTrace(rng, WebServer, 400, 1000)
	if len(trace) != 1000 {
		t.Fatalf("trace length %d", len(trace))
	}
	for i, v := range trace {
		if v < 400*0.3 || v > 400*3 {
			t.Fatalf("sample %d = %v out of sane bounds", i, v)
		}
	}
	if (PowerTrace{}).Variation(time.Second).P99Pct != 0 {
		t.Error("empty trace should yield zero stats")
	}
	if WorkloadKind(0).String() != "rack" || Caching.String() != "caching" || WebServer.String() != "web" {
		t.Error("WorkloadKind names wrong")
	}
}

func TestGoogleTraceMix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tasks := GenerateGoogleTrace(rng, 50000, 24*time.Hour)
	s := Stats(tasks)
	// §9.3: ~5% of jobs are long (>2h) and take ~90% of resources.
	if s.LongJobFraction < 0.03 || s.LongJobFraction > 0.08 {
		t.Errorf("long-job fraction = %v, want ~0.05", s.LongJobFraction)
	}
	if s.LongJobResourceFrac < 0.80 {
		t.Errorf("long-job resource share = %v, want ~0.9", s.LongJobResourceFrac)
	}
}

func TestOffloadCandidates(t *testing.T) {
	tasks := []Task{
		{Duration: 10 * time.Minute, CPUCores: 0.5}, // candidate
		{Duration: 2 * time.Minute, CPUCores: 0.5},  // too short
		{Duration: time.Hour, CPUCores: 0.05},       // too light
		{Duration: 5 * time.Minute, CPUCores: 0.1},  // boundary: candidate
	}
	got := OffloadCandidates(tasks)
	if len(got) != 2 {
		t.Errorf("candidates = %d, want 2", len(got))
	}
}

func TestCandidateDensity(t *testing.T) {
	// One task using 2 cores for the whole horizon on a 1-node cluster:
	// density = 2.
	tasks := []Task{{Start: 0, Duration: time.Hour, CPUCores: 2}}
	d := CandidateDensity(tasks, 1, time.Hour)
	if d < 1.9 || d > 2.1 {
		t.Errorf("density = %v, want ~2", d)
	}
	if CandidateDensity(tasks, 0, time.Hour) != 0 {
		t.Error("zero nodes should yield 0")
	}
	// A realistic trace lands in the high single digits per node (§9.3
	// reports 7.7), diminishing the per-node saving.
	rng := rand.New(rand.NewSource(5))
	big := GenerateGoogleTrace(rng, 120000, 24*time.Hour)
	density := CandidateDensity(big, 100, 24*time.Hour)
	if density < 2 || density > 20 {
		t.Errorf("trace density = %v per node, want high single digits", density)
	}
}

func TestLastJobSaving(t *testing.T) {
	// Offloading a lone 0.5-core job from the Xeon saves the first-core
	// jump minus the ~10 W card.
	saving := LastJobSaving(power.XeonE52660v4Dual, 0.5, 10)
	if saving < 15 {
		t.Errorf("last-job saving = %v W, want > 15 (first-core jump dominates)", saving)
	}
	// With many other jobs running the saving would shrink; the analysis
	// only models the lone-job case the paper proposes.
}

func TestSwitchTippingNearZero(t *testing.T) {
	cfg := ToRConfig{Nodes: 24, PacketBytes: 1500, ServerCurve: power.MemcachedMellanox}
	tip := SwitchTippingKpps(cfg, 2000)
	// §9.4: "PdN(R) will equal PdS(R) when R is almost zero".
	if tip < 0 || tip > 10 {
		t.Errorf("switch tipping point = %v kpps, want ~0", tip)
	}
}

func TestCacheSplitPower(t *testing.T) {
	cfg := ToRConfig{Nodes: 24, PacketBytes: 1500, ServerCurve: power.MemcachedMellanox}
	split, hostOnly := CacheSplitPower(cfg, 2400, 0.9)
	if split >= hostOnly {
		t.Errorf("90%% hit split (%v W) should beat host-only (%v W)", split, hostOnly)
	}
	// Zero hit ratio: no switch benefit beyond the (tiny) port power.
	split0, host0 := CacheSplitPower(cfg, 2400, 0)
	if split0 < host0-1e-9 {
		t.Errorf("0%% hits shouldn't beat host-only: %v vs %v", split0, host0)
	}
	// Clamping.
	if s, _ := CacheSplitPower(cfg, 2400, 2); s <= 0 {
		t.Error("hit ratio should clamp to 1")
	}
}

func TestRequestHalving(t *testing.T) {
	sw, srv := RequestHalving(1000)
	if sw != 1000 || srv != 2000 {
		t.Errorf("halving = %v, %v", sw, srv)
	}
}
