package cluster

import (
	"math"
	"testing"

	"incod/internal/power"
)

func TestDiurnalLoadShape(t *testing.T) {
	tr := DiurnalLoad(20, 500)
	if len(tr) != 24*3600 {
		t.Fatalf("trace length %d", len(tr))
	}
	if tr[3*3600] != 20 {
		t.Errorf("3am load = %v, want night level", tr[3*3600])
	}
	peak := tr[15*3600]
	if math.Abs(peak-500) > 1 {
		t.Errorf("3pm load = %v, want ~500", peak)
	}
	if tr[10*3600] <= 20 || tr[10*3600] >= 500 {
		t.Errorf("10am load = %v, want between night and peak", tr[10*3600])
	}
}

func TestDaySaving(t *testing.T) {
	tr := DiurnalLoad(20, 500)
	lake := func(float64) float64 { return 59.2 }
	onDemand := func(kpps float64) float64 {
		sw := power.MemcachedMellanox.Power(kpps)
		if hw := lake(kpps); hw < sw {
			return hw
		}
		return sw
	}
	swKWh, odKWh, saved := DaySaving(tr, power.MemcachedMellanox.Power, onDemand)
	if odKWh >= swKWh {
		t.Fatalf("on-demand %v kWh should beat software %v", odKWh, swKWh)
	}
	// Busy daytime sits above the crossover for most of the day; the
	// saving should be substantial but below the instantaneous max (~47%).
	if saved < 0.10 || saved > 0.50 {
		t.Errorf("day saving = %.0f%%, want 10-50%%", saved*100)
	}
}

func TestShiftCountHysteresis(t *testing.T) {
	tr := DiurnalLoad(20, 500)
	// One clean excursion above the crossover: exactly 2 shifts.
	if got := ShiftCount(tr, 88, 56); got != 2 {
		t.Errorf("diurnal shifts = %d, want 2", got)
	}
	// A trace that never crosses: zero shifts.
	if got := ShiftCount(DiurnalLoad(5, 50), 88, 56); got != 0 {
		t.Errorf("low trace shifts = %d, want 0", got)
	}
}

func TestEnergyKWhConstant(t *testing.T) {
	tr := make(LoadTrace, 3600) // one hour at any load
	got := tr.EnergyKWh(func(float64) float64 { return 1000 })
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("1kW for 1h = %v kWh, want 1", got)
	}
}
