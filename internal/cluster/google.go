package cluster

import (
	"math/rand"
	"time"

	"incod/internal/power"
)

// Task is one job/task from a Google-style cluster trace: a start time, a
// duration and a (normalized) CPU-core utilization.
type Task struct {
	Start    time.Duration
	Duration time.Duration
	// CPUCores is normalized CPU usage in cores (0.1 = 10% of one core).
	CPUCores float64
}

// TraceStats summarizes a synthetic trace against the §9.3 Google-trace
// facts: "90% of resource utilization is by jobs longer than two hours,
// though these jobs represent only 5% of the total number of jobs".
type TraceStats struct {
	Tasks               int
	LongJobs            int     // > 2h
	LongJobFraction     float64 // of job count
	LongJobResourceFrac float64 // of total core-seconds
}

// GenerateGoogleTrace synthesizes n tasks over the horizon with the
// published duration/resource mix: ~5% of jobs run beyond two hours and
// take ~90% of the core-seconds.
func GenerateGoogleTrace(rng *rand.Rand, n int, horizon time.Duration) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		t := &tasks[i]
		t.Start = time.Duration(rng.Float64() * float64(horizon))
		if rng.Float64() < 0.05 {
			// Long job: 2h..12h, heavier CPU.
			t.Duration = 2*time.Hour + time.Duration(rng.Float64()*float64(10*time.Hour))
			t.CPUCores = 0.1 + rng.Float64()*1.9
		} else {
			// Short job: seconds to ~30 minutes, often light.
			t.Duration = time.Duration(rng.ExpFloat64() * float64(4*time.Minute))
			if t.Duration > 30*time.Minute {
				t.Duration = 30 * time.Minute
			}
			if t.Duration < time.Second {
				t.Duration = time.Second
			}
			t.CPUCores = rng.Float64() * 0.5
		}
	}
	return tasks
}

// Stats computes the duration/resource mix.
func Stats(tasks []Task) TraceStats {
	var s TraceStats
	s.Tasks = len(tasks)
	var total, long float64
	for _, t := range tasks {
		cs := t.CPUCores * t.Duration.Seconds()
		total += cs
		if t.Duration > 2*time.Hour {
			s.LongJobs++
			long += cs
		}
	}
	if s.Tasks > 0 {
		s.LongJobFraction = float64(s.LongJobs) / float64(s.Tasks)
	}
	if total > 0 {
		s.LongJobResourceFrac = long / total
	}
	return s
}

// OffloadCandidates returns the tasks matching the §9.3 mining rule:
// "tasks ... that utilize for at least five minutes 10% or more of a CPU
// core, making them candidates for offloading".
func OffloadCandidates(tasks []Task) []Task {
	var out []Task
	for _, t := range tasks {
		if t.Duration >= 5*time.Minute && t.CPUCores >= 0.1 {
			out = append(out, t)
		}
	}
	return out
}

// CandidateDensity computes, per §9.3, the average number of candidate
// (normalized) CPU cores concurrently running per node within 5-minute
// sample periods. The paper finds 7.7 — high enough to diminish the
// power-saving benefit, since only a limited number of workloads can be
// offloaded at a time.
func CandidateDensity(tasks []Task, nodes int, horizon time.Duration) float64 {
	if nodes <= 0 || horizon <= 0 {
		return 0
	}
	const window = 5 * time.Minute
	bins := int(horizon / window)
	if bins == 0 {
		bins = 1
	}
	coresPerBin := make([]float64, bins)
	for _, t := range OffloadCandidates(tasks) {
		first := int(t.Start / window)
		last := int((t.Start + t.Duration) / window)
		for b := first; b <= last && b < bins; b++ {
			coresPerBin[b] += t.CPUCores
		}
	}
	var sum float64
	for _, c := range coresPerBin {
		sum += c
	}
	return sum / float64(bins) / float64(nodes)
}

// LastJobSaving implements the §9.3 "load diminishes" usage model: "as
// jobs end or are migrated from the server, moving the last (or first)
// job to the network will save power". It returns the watts saved by
// offloading a lone job of the given core utilization from the server
// (which can then idle) versus keeping it on-CPU, assuming the network
// device adds cardWatts.
func LastJobSaving(m power.CPUModel, jobCores float64, cardWatts float64) float64 {
	active := int(jobCores) + 1
	util := jobCores / float64(active)
	onCPU := m.Power(active, util)
	offloaded := m.IdleWatts + cardWatts
	return onCPU - offloaded
}
