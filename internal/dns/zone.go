package dns

import "fmt"

// asciiLower lowercases ASCII A-Z only, allocating only when a change
// is needed. DNS case-insensitivity is defined over ASCII (RFC 4343) —
// using it for the zone's string index keeps that index exactly
// consistent with the wire cache's fold rules, where strings.ToLower's
// Unicode folding would make a non-ASCII name reachable by one spelling
// and not the other.
func asciiLower(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			b := []byte(s)
			for j := i; j < len(b); j++ {
				if b[j] >= 'A' && b[j] <= 'Z' {
					b[j] += 'a' - 'A'
				}
			}
			return string(b)
		}
	}
	return s
}

// Zone is an authoritative resolution table from names to IPv4 addresses
// (§3.3: "the design supports resolution queries from names to IPv4
// addresses"). Lookups are case-insensitive per RFC 1035. Alongside the
// records map the zone keeps the precompiled wire-answer cache (see
// wire.go and the package comment): Add compiles the record's full
// response datagram once, Remove drops it, so the serving path answers
// with one copy and a header patch instead of encoding per query.
type Zone struct {
	records map[string]ARecord
	wire    *AnswerTable
}

// ARecord is one address record.
type ARecord struct {
	Addr [4]byte
	TTL  uint32
}

// NewZone returns an empty zone.
func NewZone() *Zone {
	return &Zone{records: make(map[string]ARecord), wire: NewAnswerTable()}
}

// Len returns the number of records.
func (z *Zone) Len() int { return len(z.records) }

// Add installs or replaces the A record for name, compiling its wire
// answer. Names that cannot be wire-encoded (empty or oversized labels)
// stay out of the wire cache — no wire query can spell them either — but
// remain visible to the string API.
func (z *Zone) Add(name string, addr [4]byte, ttl uint32) {
	lower := asciiLower(name)
	rec := ARecord{Addr: addr, TTL: ttl}
	z.records[lower] = rec
	if a, err := compileAnswer(lower, rec); err == nil {
		z.wire.add(a)
	}
}

// Remove deletes the record for name, reporting whether it existed.
func (z *Zone) Remove(name string) bool {
	key := asciiLower(name)
	_, ok := z.records[key]
	delete(z.records, key)
	if wireName, err := appendName(nil, key); err == nil {
		z.wire.remove(wireName)
	}
	return ok
}

// LookupWire finds the precompiled answer for a wire-form question name,
// case-insensitively and without allocating — the serving path's lookup.
func (z *Zone) LookupWire(qname []byte) (*WireAnswer, bool) {
	return z.wire.Lookup(qname)
}

// WireAnswers snapshots the wire-answer cache: an independent index
// sharing the immutable images, for the NIC tier's zone sync.
func (z *Zone) WireAnswers() *AnswerTable { return z.wire.Clone() }

// Lookup resolves name.
func (z *Zone) Lookup(name string) (ARecord, bool) {
	r, ok := z.records[asciiLower(name)]
	return r, ok
}

// Range calls fn for every record (order unspecified) until fn returns
// false. The offload tier's zone sync snapshots the zone through it.
func (z *Zone) Range(fn func(name string, r ARecord) bool) {
	for n, r := range z.records {
		if !fn(n, r) {
			return
		}
	}
}

// Names returns all record names (order unspecified).
func (z *Zone) Names() []string {
	out := make([]string, 0, len(z.records))
	for n := range z.records {
		out = append(out, n)
	}
	return out
}

// PopulateSequential fills the zone with n records named
// "hostN.example.com" mapping to 10.x.y.z, for load generation.
func (z *Zone) PopulateSequential(n int) {
	for i := 0; i < n; i++ {
		z.Add(SequentialName(i), [4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}, 300)
	}
}

// SequentialName returns the i'th generated zone name.
func SequentialName(i int) string { return fmt.Sprintf("host%d.example.com", i) }

// Resolve answers query q against the zone: an authoritative A answer on
// success, NXDOMAIN for unknown names ("Emu DNS informs the client that it
// cannot resolve the name", §3.3), NOTIMPL for non-A/IN questions.
func (z *Zone) Resolve(q Message) Message {
	resp := Message{
		ID:        q.ID,
		Response:  true,
		Authority: true,
		RecDes:    q.RecDes,
		Name:      q.Name,
		QType:     q.QType,
		QClass:    q.QClass,
	}
	if q.QType != TypeA || q.QClass != ClassIN {
		resp.RCode = RCodeNotImpl
		return resp
	}
	rec, ok := z.Lookup(q.Name)
	if !ok {
		resp.RCode = RCodeNXDomain
		return resp
	}
	resp.HasAnswer = true
	resp.Addr = rec.Addr
	resp.TTL = rec.TTL
	return resp
}
