package dns

import (
	"encoding/binary"
	"testing"

	"incod/internal/dataplane"
)

func encodeQuery(t *testing.T, id uint16, name string) []byte {
	t.Helper()
	b, err := Encode(NewQuery(id, name))
	if err != nil {
		t.Fatalf("encode %q: %v", name, err)
	}
	return b
}

// compressedQuery builds a query whose question name is a compression
// pointer to offset 6 (the zero NSCOUNT bytes, i.e. the root name) — the
// shape that must take the Decode fallback path.
func compressedQuery(id uint16) []byte {
	b := make([]byte, 18)
	binary.BigEndian.PutUint16(b[0:], id)
	b[5] = 1 // QDCOUNT
	b[12], b[13] = 0xC0, 6
	binary.BigEndian.PutUint16(b[14:], TypeA)
	binary.BigEndian.PutUint16(b[16:], ClassIN)
	return b
}

func testZone() *Zone {
	z := NewZone()
	z.PopulateSequential(32)
	z.Add("", [4]byte{127, 0, 0, 1}, 60) // root record for the compressed-query fallback
	return z
}

// TestHandleBatchMatchesHandleDatagram drives the same traffic through
// HandleDatagram and HandleBatch on identically loaded zones: replies
// must match byte for byte and the amortized counters must agree with
// the per-datagram ones.
func TestHandleBatchMatchesHandleDatagram(t *testing.T) {
	mx := NewQuery(40, SequentialName(3))
	mx.QType = 15
	mxq, err := Encode(mx)
	if err != nil {
		t.Fatal(err)
	}
	chaos := NewQuery(41, SequentialName(4))
	chaos.QClass = 3
	chaosq, err := Encode(chaos)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Encode(Message{ID: 50, Response: true, Name: "a.b", QType: TypeA, QClass: ClassIN})
	if err != nil {
		t.Fatal(err)
	}
	var datagrams [][]byte
	for i := 0; i < 70; i++ { // spans two batch chunks
		datagrams = append(datagrams, encodeQuery(t, uint16(i), SequentialName(i%32)))
	}
	datagrams = append(datagrams,
		encodeQuery(t, 100, "HOST3.Example.COM"), // mixed-case hit
		encodeQuery(t, 101, "HoSt7.eXaMpLe.CoM"), // mixed-case hit
		encodeQuery(t, 102, "missing.example.com"),
		encodeQuery(t, 103, "MISSING.EXAMPLE.COM"),
		mxq,                     // NOTIMPL
		chaosq,                  // CH class: NOTIMPL
		resp,                    // stray response: ignored, no reply
		[]byte{1, 2, 3},         // malformed short
		compressedQuery(104),    // Decode fallback, root hit
		encodeQuery(t, 105, ""), // plain root hit
		[]byte("\xff\xff garbage please ignore"),
	)

	single := NewHandler(testZone())
	batch := NewHandler(testZone())

	want := make([][]byte, len(datagrams))
	scratch := make([]byte, 0, 4096)
	for i, dg := range datagrams {
		out, ok := single.HandleDatagram(dg, &scratch)
		if ok {
			want[i] = append([]byte(nil), out...)
		}
	}

	items := make([]*dataplane.BatchItem, len(datagrams))
	for i, dg := range datagrams {
		s := make([]byte, 0, 4096)
		items[i] = &dataplane.BatchItem{In: dg, Scratch: &s}
	}
	batch.HandleBatch(items)
	for i, it := range items {
		if string(it.Out) != string(want[i]) {
			t.Fatalf("datagram %d (%q):\n batch reply %q\nsingle reply %q", i, datagrams[i], it.Out, want[i])
		}
	}

	sc := single.StatsCounters().Snapshot()
	bc := batch.StatsCounters().Snapshot()
	for _, k := range []string{"answered", "nxdomain", "notimpl", "malformed", "ignored"} {
		if sc[k] != bc[k] {
			t.Fatalf("counter %s: batch %d != single %d", k, bc[k], sc[k])
		}
	}
	if sc["answered"] == 0 || sc["nxdomain"] == 0 || sc["notimpl"] == 0 || sc["malformed"] == 0 || sc["ignored"] == 0 {
		t.Fatalf("test traffic should hit every verdict, got %v", sc)
	}
}

// TestHandlerWireAnswersMatchResolve pins the wire cache against the
// string codec: for hits, NXDOMAIN and NOTIMPL alike, the handler's
// reply must be byte-identical to encoding Zone.Resolve's answer —
// including echoing the client's case and RD bit.
func TestHandlerWireAnswersMatchResolve(t *testing.T) {
	zone := testZone()
	h := NewHandler(zone)
	scratch := make([]byte, 0, 4096)
	queries := []Message{
		NewQuery(1, "host5.example.com"),
		NewQuery(2, "Host5.Example.COM"),
		NewQuery(3, "absent.example.com"),
		NewQuery(4, "ABSENT.example.com"),
	}
	mx := NewQuery(5, "host5.example.com")
	mx.QType = 15
	queries = append(queries, mx)
	rd := NewQuery(6, "HOST5.example.com")
	rd.RecDes = true
	queries = append(queries, rd)

	for _, q := range queries {
		wire, err := Encode(q)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := h.HandleDatagram(wire, &scratch)
		if !ok {
			t.Fatalf("query %+v: no reply", q)
		}
		want, err := Encode(zone.Resolve(q))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("query %+v:\n got %q\nwant %q", q, got, want)
		}
	}
}

// TestZoneWireCacheCoherence pins the Add/Remove contract: Add replaces
// the precompiled image, Remove drops it.
func TestZoneWireCacheCoherence(t *testing.T) {
	z := NewZone()
	z.Add("x.example.com", [4]byte{1, 1, 1, 1}, 100)
	qname, err := appendName(nil, "x.example.com")
	if err != nil {
		t.Fatal(err)
	}
	a, ok := z.LookupWire(qname)
	if !ok || a.Record().Addr != [4]byte{1, 1, 1, 1} {
		t.Fatalf("wire lookup after Add: %+v ok=%v", a, ok)
	}
	// Replacement recompiles.
	z.Add("X.EXAMPLE.COM", [4]byte{2, 2, 2, 2}, 200)
	if z.Len() != 1 {
		t.Fatalf("case-insensitive replace should keep one record, have %d", z.Len())
	}
	if a, ok = z.LookupWire(qname); !ok || a.Record().Addr != [4]byte{2, 2, 2, 2} || a.Record().TTL != 200 {
		t.Fatalf("wire lookup after replace: %+v ok=%v", a, ok)
	}
	// Snapshots share images but not index mutations.
	snap := z.WireAnswers()
	if !z.Remove("x.EXAMPLE.com") {
		t.Fatal("Remove failed")
	}
	if _, ok = z.LookupWire(qname); ok {
		t.Fatal("wire entry must die with Remove")
	}
	if _, ok = snap.Lookup(qname); !ok {
		t.Fatal("snapshot must survive the zone-side Remove")
	}
}

// TestQuestionViewParse pins the view parser against the codec errors.
func TestQuestionViewParse(t *testing.T) {
	var v QuestionView
	q := encodeQuery(t, 9, "a.Bc.de")
	if err := ParseQuestion(q, 0, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID != 9 || v.QType != TypeA || v.QClass != ClassIN || v.Response() {
		t.Fatalf("view: %+v", v)
	}
	if string(v.QName) != "\x01a\x02Bc\x02de\x00" {
		t.Fatalf("qname view %q", v.QName)
	}
	if v.End != len(q) {
		t.Fatalf("End = %d, want %d", v.End, len(q))
	}
	if err := ParseQuestion(compressedQuery(1), 0, &v); err != ErrCompressedName {
		t.Fatalf("compressed err = %v", err)
	}
	deep := encodeQuery(t, 1, "a.b.c.d.e.f.g.h.i.j")
	if err := ParseQuestion(deep, MaxLabels, &v); err != ErrNameTooDeep {
		t.Fatalf("deep err = %v", err)
	}
	if err := ParseQuestion(deep, 0, &v); err != nil {
		t.Fatalf("unlimited deep err = %v", err)
	}
	if err := ParseQuestion(q[:len(q)-2], 0, &v); err != ErrTruncatedMessage {
		t.Fatalf("truncated err = %v", err)
	}
	trunc := append(make([]byte, 12), 40, 'a')
	trunc[5] = 1
	if err := ParseQuestion(trunc, 0, &v); err != ErrTruncatedMessage {
		t.Fatalf("truncated label err = %v", err)
	}
}

// TestDNSAnswerHitZeroAlloc is the acceptance bar for the tentpole: the
// answer-hit path — including a mixed-case name that would have paid
// strings.ToLower before — does zero heap allocations, and so do the
// NXDOMAIN and NOTIMPL paths.
func TestDNSAnswerHitZeroAlloc(t *testing.T) {
	h := NewHandler(testZone())
	scratch := make([]byte, 0, 4096)
	mx := NewQuery(3, "host2.example.com")
	mx.QType = 15
	mxq, err := Encode(mx)
	if err != nil {
		t.Fatal(err)
	}
	for name, dg := range map[string][]byte{
		"hit":         encodeQuery(t, 1, "HOST3.Example.COM"),
		"nxdomain":    encodeQuery(t, 2, "MISSING.example.com"),
		"notimpl":     mxq,
		"batched-hit": nil, // handled below
	} {
		if dg == nil {
			continue
		}
		ok := true
		allocs := testing.AllocsPerRun(2000, func() {
			out, served := h.HandleDatagram(dg, &scratch)
			ok = ok && served && len(out) > 0
		})
		if !ok {
			t.Fatalf("%s: no reply", name)
		}
		if allocs != 0 {
			t.Fatalf("%s path allocates %.1f times per op, want 0", name, allocs)
		}
	}

	// The batch form must be zero-alloc end to end as well.
	const n = 32
	items := make([]*dataplane.BatchItem, n)
	queries := make([][]byte, n)
	for i := range items {
		queries[i] = encodeQuery(t, uint16(i), "Host"+string(rune('0'+i%10))+".Example.Com")
		s := make([]byte, 0, 4096)
		items[i] = &dataplane.BatchItem{Scratch: &s}
	}
	allocs := testing.AllocsPerRun(500, func() {
		for i := range items {
			items[i].In = queries[i]
			items[i].Out = nil
			items[i].Served = false
		}
		h.HandleBatch(items)
	})
	if allocs != 0 {
		t.Fatalf("HandleBatch allocates %.1f times per batch, want 0", allocs)
	}
	if len(items[0].Out) == 0 {
		t.Fatal("batched query got no reply")
	}
}
