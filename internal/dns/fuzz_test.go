package dns

import (
	"strings"
	"testing"
)

// wireDotted converts a view's wire-form name (validated by
// ParseQuestion) to the dotted string Decode would produce.
func wireDotted(qname []byte) string {
	var labels []string
	for off := 0; ; {
		l := int(qname[off])
		if l == 0 {
			break
		}
		labels = append(labels, string(qname[off+1:off+1+l]))
		off += 1 + l
	}
	return strings.Join(labels, ".")
}

// FuzzDecode guards the codec pair behind the serving path: the
// allocating Decode and the zero-copy ParseQuestion must never panic or
// hang on arbitrary input — compression-pointer loops and truncated
// labels included — and whenever both parse a datagram they must agree
// on the question.
func FuzzDecode(f *testing.F) {
	if q, err := Encode(NewQuery(7, "Host3.Example.COM")); err == nil {
		f.Add(q)
	}
	if deep, err := Encode(NewQuery(1, strings.Repeat("x.", MaxLabels+2)+"com")); err == nil {
		f.Add(deep)
	}
	if resp, err := Encode(Message{ID: 2, Response: true, Authority: true, Name: "a.b",
		QType: TypeA, QClass: ClassIN, HasAnswer: true, TTL: 5, Addr: [4]byte{1, 2, 3, 4}}); err == nil {
		f.Add(resp)
	}
	// A compression pointer that loops back to itself.
	loop := make([]byte, 18)
	loop[5] = 1
	loop[12], loop[13] = 0xC0, 12
	f.Add(loop)
	// A pointer chain bouncing between two offsets.
	chain := make([]byte, 20)
	chain[5] = 1
	chain[12], chain[13] = 0xC0, 14
	chain[14], chain[15] = 0xC0, 12
	f.Add(chain)
	// A label length byte pointing past the end of the datagram.
	trunc := append(make([]byte, 12), 63, 'a', 'b')
	trunc[5] = 1
	f.Add(trunc)
	// Truncated header and empty input.
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, derr := Decode(data, 0) // must not panic or hang
		var v QuestionView
		if err := ParseQuestion(data, 0, &v); err != nil {
			return
		}
		// The view parser accepts only complete, uncompressed questions;
		// Decode can still fail on a malformed answer section the view
		// parser ignores, but when it succeeds the questions must agree.
		if derr != nil {
			return
		}
		if m.ID != v.ID || m.QType != v.QType || m.QClass != v.QClass {
			t.Fatalf("view (%d %d %d) != decode (%d %d %d)",
				v.ID, v.QType, v.QClass, m.ID, m.QType, m.QClass)
		}
		if got := wireDotted(v.QName); got != m.Name {
			t.Fatalf("view name %q != decode name %q", got, m.Name)
		}
		if m.Response != v.Response() || m.RecDes != v.RecDes() {
			t.Fatalf("flag views diverged: %+v vs %+v", v, m)
		}
	})
}
