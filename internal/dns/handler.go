package dns

import (
	"sync/atomic"

	"incod/internal/dataplane"
	"incod/internal/telemetry"
)

// Handler serves authoritative A lookups from a Zone — the dataplane
// adapter behind incdnsd. The zone must be fully loaded before serving
// starts: Zone is a plain map, safe for any number of concurrent readers
// only while nobody writes, which is exactly the daemon's lifecycle
// (load, then serve).
type Handler struct {
	zone *Zone

	counters  *telemetry.AtomicCounters
	answered  *atomic.Uint64
	nxdomain  *atomic.Uint64
	notimpl   *atomic.Uint64
	malformed *atomic.Uint64
	ignored   *atomic.Uint64
}

var _ dataplane.Handler = (*Handler)(nil)
var _ dataplane.StatsReporter = (*Handler)(nil)

// NewHandler returns a handler serving zone.
func NewHandler(zone *Zone) *Handler {
	c := telemetry.NewAtomicCounters()
	return &Handler{
		zone:      zone,
		counters:  c,
		answered:  c.Handle("answered"),
		nxdomain:  c.Handle("nxdomain"),
		notimpl:   c.Handle("notimpl"),
		malformed: c.Handle("malformed"),
		ignored:   c.Handle("ignored"),
	}
}

// StatsCounters exposes protocol counters on the /v1 control API.
func (h *Handler) StatsCounters() *telemetry.AtomicCounters { return h.counters }

// HandleDatagram implements dataplane.Handler: decode the question,
// resolve it against the zone, encode the answer into the scratch buffer.
// Malformed datagrams and stray responses are dropped, like the old read
// loop (and real resolvers) did.
func (h *Handler) HandleDatagram(in []byte, scratch *[]byte) ([]byte, bool) {
	q, err := Decode(in, 0)
	if err != nil {
		h.malformed.Add(1)
		return nil, false
	}
	if q.Response {
		h.ignored.Add(1)
		return nil, false
	}
	resp := h.zone.Resolve(q)
	switch {
	case resp.HasAnswer:
		h.answered.Add(1)
	case resp.RCode == RCodeNXDomain:
		h.nxdomain.Add(1)
	case resp.RCode == RCodeNotImpl:
		h.notimpl.Add(1)
	}
	out, err := AppendMessage((*scratch)[:0], resp)
	if err != nil {
		h.malformed.Add(1)
		return nil, false
	}
	*scratch = out
	return out, true
}
