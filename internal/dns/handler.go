package dns

import (
	"errors"
	"sync/atomic"

	"incod/internal/dataplane"
	"incod/internal/telemetry"
)

// Handler serves authoritative A lookups from a Zone — the dataplane
// adapter behind incdnsd. The zone must be fully loaded before serving
// starts: Zone is a plain map, safe for any number of concurrent readers
// only while nobody writes, which is exactly the daemon's lifecycle
// (load, then serve).
//
// The hot path is allocation-free for every outcome: queries parse into
// a QuestionView over the datagram, hits are one copy of the record's
// precompiled wire answer plus an ID/flags patch, and negative responses
// echo the question section verbatim. Only queries with compression
// pointers in the question name take the allocating Decode fallback.
type Handler struct {
	zone *Zone

	counters  *telemetry.AtomicCounters
	answered  *atomic.Uint64
	nxdomain  *atomic.Uint64
	notimpl   *atomic.Uint64
	malformed *atomic.Uint64
	ignored   *atomic.Uint64
}

var _ dataplane.Handler = (*Handler)(nil)
var _ dataplane.BatchHandler = (*Handler)(nil)
var _ dataplane.StatsReporter = (*Handler)(nil)

// NewHandler returns a handler serving zone.
func NewHandler(zone *Zone) *Handler {
	c := telemetry.NewAtomicCounters()
	return &Handler{
		zone:      zone,
		counters:  c,
		answered:  c.Handle("answered"),
		nxdomain:  c.Handle("nxdomain"),
		notimpl:   c.Handle("notimpl"),
		malformed: c.Handle("malformed"),
		ignored:   c.Handle("ignored"),
	}
}

// StatsCounters exposes protocol counters on the /v1 control API.
func (h *Handler) StatsCounters() *telemetry.AtomicCounters { return h.counters }

// serve verdicts, indexing batchCounts.
const (
	vAnswered = iota
	vNXDomain
	vNotImpl
	vMalformed
	vIgnored
	vCount
)

// serve resolves one datagram into the scratch buffer, returning the
// reply (nil for dropped datagrams) and the verdict to count.
func (h *Handler) serve(in []byte, scratch *[]byte) ([]byte, int) {
	var v QuestionView
	err := ParseQuestion(in, 0, &v)
	if err != nil {
		if errors.Is(err, ErrCompressedName) {
			return h.serveCompressed(in, scratch)
		}
		return nil, vMalformed
	}
	if v.Response() {
		return nil, vIgnored
	}
	if v.QType != TypeA || v.QClass != ClassIN {
		*scratch = AppendNoAnswer((*scratch)[:0], in, &v, RCodeNotImpl)
		return *scratch, vNotImpl
	}
	if a, ok := h.zone.LookupWire(v.QName); ok {
		*scratch = a.AppendReply((*scratch)[:0], &v)
		return *scratch, vAnswered
	}
	*scratch = AppendNoAnswer((*scratch)[:0], in, &v, RCodeNXDomain)
	return *scratch, vNXDomain
}

// serveCompressed is the rare fallback for queries whose question name
// uses compression pointers: the allocating string codec, semantics
// unchanged from the pre-wire-cache handler.
func (h *Handler) serveCompressed(in []byte, scratch *[]byte) ([]byte, int) {
	q, err := Decode(in, 0)
	if err != nil {
		return nil, vMalformed
	}
	if q.Response {
		return nil, vIgnored
	}
	resp := h.zone.Resolve(q)
	out, err := AppendMessage((*scratch)[:0], resp)
	if err != nil {
		return nil, vMalformed
	}
	*scratch = out
	switch {
	case resp.HasAnswer:
		return out, vAnswered
	case resp.RCode == RCodeNXDomain:
		return out, vNXDomain
	default:
		return out, vNotImpl
	}
}

func (h *Handler) count(verdict int, n uint64) {
	if n == 0 {
		return
	}
	switch verdict {
	case vAnswered:
		h.answered.Add(n)
	case vNXDomain:
		h.nxdomain.Add(n)
	case vNotImpl:
		h.notimpl.Add(n)
	case vMalformed:
		h.malformed.Add(n)
	case vIgnored:
		h.ignored.Add(n)
	}
}

// HandleDatagram implements dataplane.Handler: parse the question,
// resolve it against the zone's wire-answer cache, patch the reply into
// the scratch buffer. Malformed datagrams and stray responses are
// dropped, like the old read loop (and real resolvers) did.
func (h *Handler) HandleDatagram(in []byte, scratch *[]byte) ([]byte, bool) {
	out, verdict := h.serve(in, scratch)
	h.count(verdict, 1)
	return out, out != nil
}

// HandleBatch implements dataplane.BatchHandler: every datagram takes
// the same zero-alloc resolve as HandleDatagram (the zone is read
// lock-free, so there is no lock to amortize), with the protocol
// counters accumulated locally and flushed once per batch instead of
// once per datagram.
func (h *Handler) HandleBatch(items []*dataplane.BatchItem) {
	var counts [vCount]uint64
	for _, it := range items {
		out, verdict := h.serve(it.In, it.Scratch)
		counts[verdict]++
		if out != nil {
			it.Out = out
		}
	}
	for verdict, n := range counts {
		h.count(verdict, n)
	}
}
