package dns

import (
	"time"

	"incod/internal/fpga"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// EmuDNS is the §3.3 Emu-compiled DNS accelerator on NetFPGA SUME, amended
// (as the paper does) with a LaKe-style packet classifier so the board also
// serves as a NIC for non-DNS traffic. It resolves A/IN queries from an
// on-chip copy of the zone; names deeper than its fixed parse depth, and
// all traffic while the module is inactive, go to the host software.
type EmuDNS struct {
	addr    simnet.Addr
	sim     *simnet.Simulator
	net     *simnet.Network
	board   *fpga.Board
	backend *SoftServer

	// zone is the on-chip table, a copy of (a subset of) the backend's.
	zone *Zone

	rate     *telemetry.RateMeter
	Latency  *telemetry.Histogram
	Counters *telemetry.Counters
}

// NewEmuDNS programs a board with the Emu DNS design at addr, forwarding
// software-path queries to backend. The on-chip zone starts as a snapshot
// of the backend's zone.
func NewEmuDNS(net *simnet.Network, addr simnet.Addr, backend *SoftServer) *EmuDNS {
	e := &EmuDNS{
		addr:     addr,
		sim:      net.Sim(),
		net:      net,
		board:    fpga.NewBoard(fpga.EmuDNSDesign),
		backend:  backend,
		zone:     NewZone(),
		rate:     telemetry.NewRateMeter(10*time.Millisecond, 100),
		Latency:  telemetry.NewHistogram(),
		Counters: telemetry.NewCounters(),
	}
	e.SyncZone()
	e.board.SetLoadFunc(func() float64 {
		peak := e.board.PeakKpps()
		if peak <= 0 {
			return 0
		}
		return e.RateKpps() / peak
	})
	net.Attach(e)
	return e
}

// Addr implements simnet.Node.
func (e *EmuDNS) Addr() simnet.Addr { return e.addr }

// Board exposes the underlying FPGA board.
func (e *EmuDNS) Board() *fpga.Board { return e.board }

// Zone returns the on-chip resolution table.
func (e *EmuDNS) Zone() *Zone { return e.zone }

// SyncZone refreshes the on-chip table from the backend's zone (the
// application-specific transition task when shifting DNS to hardware).
func (e *EmuDNS) SyncZone() {
	zone := NewZone()
	e.backend.Zone().Range(func(name string, rec ARecord) bool {
		zone.Add(name, rec.Addr, rec.TTL)
		return true
	})
	e.zone = zone
}

// RateKpps is the DNS query rate seen by the classifier.
func (e *EmuDNS) RateKpps() float64 { return e.rate.Rate(e.sim.Now()) / 1000 }

// PowerWatts implements telemetry.PowerSource (card increment only).
func (e *EmuDNS) PowerWatts(now simnet.Time) float64 { return e.board.PowerWatts(now) }

// Active reports whether the DNS module is serving.
func (e *EmuDNS) Active() bool { return e.board.ModuleActive() }

// Activate enables hardware service; the zone must be synced first (DNS is
// read-mostly, so unlike LaKe there is no warm-up miss phase — §9.2 notes
// shifting DNS "is much the same as shifting KVS" but with a simpler
// host-side task).
func (e *EmuDNS) Activate() {
	e.board.SetClockGating(false)
	e.board.SetModuleActive(true)
}

// Deactivate parks the module; the card keeps forwarding as a NIC. Emu DNS
// has no external memories, so only clock gating applies.
func (e *EmuDNS) Deactivate() {
	e.board.SetModuleActive(false)
	e.board.SetClockGating(true)
}

func (e *EmuDNS) utilization() float64 {
	peak := e.board.PeakKpps()
	if peak <= 0 {
		return 0
	}
	u := e.RateKpps() / peak
	if u > 1 {
		u = 1
	}
	return u
}

// Receive implements simnet.Node.
func (e *EmuDNS) Receive(pkt *simnet.Packet) {
	if pkt.DstPort != Port {
		e.Counters.Inc("passthrough", 1)
		e.sim.Schedule(600*time.Nanosecond, func() { e.backend.Receive(pkt) })
		return
	}
	e.rate.Add(e.sim.Now(), 1)
	if !e.board.ModuleActive() {
		e.Counters.Inc("to_software", 1)
		e.sim.Schedule(600*time.Nanosecond, func() { e.backend.Receive(pkt) })
		return
	}
	// Overload shedding: the non-pipelined design saturates at ~1 Mqps.
	if u := e.utilization(); u >= 1 {
		rate := e.RateKpps()
		peak := e.board.PeakKpps()
		if rate > peak && e.sim.Rand().Float64() > peak/rate {
			e.Counters.Inc("dropped", 1)
			return
		}
	}
	q, err := Decode(pkt.Payload, MaxLabels)
	if err == ErrNameTooDeep {
		// Deeper than the pipeline parses: hand to the software (§9.2's
		// "worst case ... treated as iterative requests").
		e.Counters.Inc("too_deep", 1)
		e.forwardToSoftware(pkt)
		return
	}
	if err != nil || q.Response {
		e.Counters.Inc("bad_query", 1)
		return
	}
	e.Counters.Inc("queries", 1)
	resp := e.zone.Resolve(q)
	if resp.RCode == RCodeNXDomain {
		e.Counters.Inc("nxdomain", 1)
	}
	lat := emuLatency(e.sim.Rand())
	e.Latency.Observe(lat)
	e.reply(pkt, resp, lat)
}

func (e *EmuDNS) forwardToSoftware(pkt *simnet.Packet) {
	q, err := Decode(pkt.Payload, 0)
	if err != nil || q.Response {
		e.Counters.Inc("bad_query", 1)
		return
	}
	resp, lat := e.backend.Process(q)
	e.reply(pkt, resp, lat+300*time.Nanosecond)
}

func (e *EmuDNS) reply(pkt *simnet.Packet, resp Message, after time.Duration) {
	payload, err := Encode(resp)
	if err != nil {
		e.Counters.Inc("encode_error", 1)
		return
	}
	src, srcPort := pkt.Src, pkt.SrcPort
	e.sim.Schedule(after, func() {
		e.net.Send(&simnet.Packet{
			Src: e.addr, Dst: src, SrcPort: Port, DstPort: srcPort, Payload: payload,
		})
	})
}
