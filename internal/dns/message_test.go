package dns

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(42, "www.example.com")
	b, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 42 || got.Name != "www.example.com" || got.QType != TypeA ||
		got.QClass != ClassIN || got.Response {
		t.Errorf("round trip: %+v", got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := Message{
		ID: 7, Response: true, Authority: true, Name: "a.b.c",
		QType: TypeA, QClass: ClassIN, HasAnswer: true,
		TTL: 300, Addr: [4]byte{10, 1, 2, 3},
	}
	b, err := Encode(resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || !got.Authority || !got.HasAnswer {
		t.Errorf("flags lost: %+v", got)
	}
	if got.Addr != resp.Addr || got.TTL != 300 || got.Name != "a.b.c" {
		t.Errorf("answer lost: %+v", got)
	}
}

func TestNXDomainRoundTrip(t *testing.T) {
	resp := Message{ID: 9, Response: true, RCode: RCodeNXDomain, Name: "no.such", QType: TypeA, QClass: ClassIN}
	b, err := Encode(resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.RCode != RCodeNXDomain || got.HasAnswer {
		t.Errorf("NXDOMAIN lost: %+v", got)
	}
}

func TestDepthLimit(t *testing.T) {
	deep := strings.Repeat("x.", MaxLabels+2) + "com"
	b, err := Encode(NewQuery(1, deep))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(b, MaxLabels); err != ErrNameTooDeep {
		t.Errorf("deep name err = %v, want ErrNameTooDeep", err)
	}
	// Software (unlimited) parses it fine.
	if _, err := Decode(b, 0); err != nil {
		t.Errorf("unlimited decode failed: %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}, 0); err != ErrTruncatedMessage {
		t.Errorf("short message err = %v", err)
	}
	// Bad label length byte (0x80 is a reserved prefix).
	msg := append(make([]byte, 12), 0x80)
	msg[5] = 1 // QDCOUNT=1
	if _, err := Decode(msg, 0); err != ErrBadName {
		t.Errorf("reserved label err = %v", err)
	}
	// Question count != 1.
	q, _ := Encode(NewQuery(1, "a"))
	q[5] = 2
	if _, err := Decode(q, 0); err == nil {
		t.Error("qdcount=2 should fail")
	}
	// Truncated question section.
	q2, _ := Encode(NewQuery(1, "abc"))
	if _, err := Decode(q2[:len(q2)-2], 0); err != ErrTruncatedMessage {
		t.Errorf("truncated question err = %v", err)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(NewQuery(1, "a..b")); err != ErrBadName {
		t.Errorf("empty label err = %v", err)
	}
	if _, err := Encode(NewQuery(1, strings.Repeat("a", 64)+".com")); err != ErrLabelTooLong {
		t.Errorf("long label err = %v", err)
	}
}

func TestCompressionPointerLoopRejected(t *testing.T) {
	// A name that points at itself must not hang the parser.
	msg := make([]byte, 16)
	msg[5] = 1                  // QDCOUNT=1
	msg[12], msg[13] = 0xC0, 12 // pointer to itself
	if _, err := Decode(msg, 0); err == nil {
		t.Error("self-referencing pointer should error")
	}
}

func TestRootNameRoundTrip(t *testing.T) {
	b, err := Encode(NewQuery(5, ""))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b, 0)
	if err != nil || got.Name != "" {
		t.Errorf("root query: %+v, %v", got, err)
	}
}

// Property: any well-formed name round-trips through encode/decode.
func TestNameRoundTripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		// Build a valid name from the fuzz input.
		var labels []string
		for _, b := range raw {
			n := int(b%20) + 1
			labels = append(labels, strings.Repeat("a", n))
			if len(labels) == 6 {
				break
			}
		}
		name := strings.Join(labels, ".")
		enc, err := Encode(NewQuery(3, name))
		if err != nil {
			return false
		}
		got, err := Decode(enc, 0)
		return err == nil && got.Name == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
