package dns

import (
	"math/rand"
	"time"

	"incod/internal/power"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// nsdLatency is the software (NSD) service latency: ~70x Emu DNS's, per
// the §3.3 benchmark ("approximately x70 average and 99th percentile
// latency improvement"), stretching toward saturation.
func nsdLatency(rng *rand.Rand, util float64) time.Duration {
	d := 88*time.Microsecond + time.Duration(rng.ExpFloat64()*float64(2*time.Microsecond))
	if util > 0.5 {
		q := util
		if q > 0.99 {
			q = 0.99
		}
		d += time.Duration(float64(30*time.Microsecond) * (q - 0.5) / (1 - q))
	}
	return d
}

// emuLatency is the Emu DNS hardware latency: a non-pipelined but shallow
// on-chip design, ~1/70th of NSD's.
func emuLatency(rng *rand.Rand) time.Duration {
	return 1250*time.Nanosecond + time.Duration(rng.ExpFloat64()*float64(40*time.Nanosecond))
}

// SoftServer is the NSD-style authoritative software server of §4.4.
type SoftServer struct {
	addr simnet.Addr
	sim  *simnet.Simulator
	net  *simnet.Network
	zone *Zone

	curve    power.SoftwareCurve
	rate     *telemetry.RateMeter
	Latency  *telemetry.Histogram
	Counters *telemetry.Counters
}

// NewSoftServer attaches an NSD-style server at addr serving zone.
func NewSoftServer(net *simnet.Network, addr simnet.Addr, zone *Zone) *SoftServer {
	s := &SoftServer{
		addr:     addr,
		sim:      net.Sim(),
		net:      net,
		zone:     zone,
		curve:    power.NSDServer,
		rate:     telemetry.NewRateMeter(10*time.Millisecond, 100),
		Latency:  telemetry.NewHistogram(),
		Counters: telemetry.NewCounters(),
	}
	net.Attach(s)
	return s
}

// Addr implements simnet.Node.
func (s *SoftServer) Addr() simnet.Addr { return s.addr }

// Zone returns the served zone.
func (s *SoftServer) Zone() *Zone { return s.zone }

// RateKpps returns the query rate over the 1s window.
func (s *SoftServer) RateKpps() float64 { return s.rate.Rate(s.sim.Now()) / 1000 }

// Utilization returns the fraction of the NSD peak rate in use.
func (s *SoftServer) Utilization() float64 { return s.curve.Utilization(s.RateKpps()) }

// PowerWatts implements telemetry.PowerSource (whole server, §4.4 curve).
func (s *SoftServer) PowerWatts(now simnet.Time) float64 {
	return s.curve.Power(s.rate.Rate(now) / 1000)
}

// Process resolves one query and returns the response with the software
// service latency. Emu DNS calls this for queries it cannot parse.
func (s *SoftServer) Process(q Message) (Message, time.Duration) {
	s.rate.Add(s.sim.Now(), 1)
	resp := s.zone.Resolve(q)
	lat := nsdLatency(s.sim.Rand(), s.Utilization())
	s.Latency.Observe(lat)
	return resp, lat
}

// Receive implements simnet.Node.
func (s *SoftServer) Receive(pkt *simnet.Packet) {
	if pkt.DstPort != Port {
		s.Counters.Inc("non_dns", 1)
		return
	}
	if u := s.Utilization(); u >= 1 {
		rate := s.RateKpps()
		if rate > s.curve.PeakKpps && s.sim.Rand().Float64() > s.curve.PeakKpps/rate {
			s.Counters.Inc("dropped", 1)
			return
		}
	}
	q, err := Decode(pkt.Payload, 0)
	if err != nil || q.Response {
		s.Counters.Inc("bad_query", 1)
		return
	}
	s.Counters.Inc("queries", 1)
	resp, lat := s.Process(q)
	if resp.RCode == RCodeNXDomain {
		s.Counters.Inc("nxdomain", 1)
	}
	s.reply(pkt, resp, lat)
}

func (s *SoftServer) reply(pkt *simnet.Packet, resp Message, after time.Duration) {
	payload, err := Encode(resp)
	if err != nil {
		s.Counters.Inc("encode_error", 1)
		return
	}
	src, srcPort := pkt.Src, pkt.SrcPort
	s.sim.Schedule(after, func() {
		s.net.Send(&simnet.Packet{
			Src: s.addr, Dst: src, SrcPort: Port, DstPort: srcPort, Payload: payload,
		})
	})
}
