package dns

import (
	"strings"
	"testing"
	"time"

	"incod/internal/simnet"
	"incod/internal/telemetry"
)

func TestZoneBasics(t *testing.T) {
	z := NewZone()
	z.Add("Host.Example.COM", [4]byte{1, 2, 3, 4}, 60)
	if rec, ok := z.Lookup("host.example.com"); !ok || rec.Addr != [4]byte{1, 2, 3, 4} {
		t.Errorf("case-insensitive lookup failed: %+v, %v", rec, ok)
	}
	if !z.Remove("HOST.example.com") {
		t.Error("Remove should succeed")
	}
	if z.Remove("host.example.com") {
		t.Error("second Remove should fail")
	}
	z.PopulateSequential(10)
	if z.Len() != 10 {
		t.Errorf("Len = %d, want 10", z.Len())
	}
	if len(z.Names()) != 10 {
		t.Error("Names() incomplete")
	}
}

func TestZoneResolve(t *testing.T) {
	z := NewZone()
	z.Add("a.b", [4]byte{9, 9, 9, 9}, 120)
	resp := z.Resolve(NewQuery(1, "a.b"))
	if !resp.Response || !resp.Authority || !resp.HasAnswer || resp.Addr != [4]byte{9, 9, 9, 9} {
		t.Errorf("resolve hit: %+v", resp)
	}
	resp = z.Resolve(NewQuery(2, "missing"))
	if resp.RCode != RCodeNXDomain || resp.HasAnswer {
		t.Errorf("resolve miss: %+v", resp)
	}
	q := NewQuery(3, "a.b")
	q.QType = 28 // AAAA unsupported
	if resp := z.Resolve(q); resp.RCode != RCodeNotImpl {
		t.Errorf("AAAA should be NOTIMPL: %+v", resp)
	}
}

func dnsRig(t *testing.T) (*simnet.Simulator, *Client, *EmuDNS, *SoftServer) {
	t.Helper()
	sim := simnet.New(11)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	zone := NewZone()
	zone.PopulateSequential(100)
	backend := NewSoftServer(net, "host", zone)
	emu := NewEmuDNS(net, "emu", backend)
	client := NewClient(net, "client", "emu")
	return sim, client, emu, backend
}

func TestEmuServesFromHardware(t *testing.T) {
	sim, client, emu, backend := dnsRig(t)
	i := 0
	client.NameFunc = func() string { i++; return SequentialName(i % 100) }
	client.Start(100)
	sim.RunFor(100 * time.Millisecond)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)

	if emu.Counters.Get("queries") == 0 {
		t.Fatal("hardware served nothing")
	}
	if backend.Counters.Get("queries") != 0 {
		t.Error("software should see no queries while hardware is active")
	}
	if got := client.Counters.Get("resolved"); got != client.Counters.Get("recv") {
		t.Errorf("resolved %d of %d", got, client.Counters.Get("recv"))
	}
	// Hardware latency ~1.3µs.
	if med := client.Latency.Median(); med > 3*time.Microsecond {
		t.Errorf("hardware median = %v, want ~1.3µs + wire", med)
	}
}

func TestEmuNXDomain(t *testing.T) {
	sim, client, emu, _ := dnsRig(t)
	client.NameFunc = func() string { return "nonexistent.example.com" }
	client.Start(10)
	sim.RunFor(20 * time.Millisecond)
	client.Stop()
	sim.RunFor(5 * time.Millisecond)
	if client.Counters.Get("nxdomain") == 0 {
		t.Error("client should see NXDOMAIN for unknown names")
	}
	if emu.Counters.Get("nxdomain") == 0 {
		t.Error("hardware should count NXDOMAIN")
	}
}

func TestEmuDeepNamesGoToSoftware(t *testing.T) {
	sim, client, emu, backend := dnsRig(t)
	deep := strings.Repeat("x.", MaxLabels+2) + "example.com"
	backend.Zone().Add(deep, [4]byte{10, 0, 0, 1}, 60)
	emu.SyncZone()
	client.NameFunc = func() string { return deep }
	client.Start(10)
	sim.RunFor(50 * time.Millisecond)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)
	if emu.Counters.Get("too_deep") == 0 {
		t.Fatal("deep names should hit the depth limit")
	}
	if client.Counters.Get("resolved") == 0 {
		t.Error("software should still resolve deep names")
	}
	// Deep queries pay the software latency.
	if med := client.Latency.Median(); med < 50*time.Microsecond {
		t.Errorf("deep-name median = %v, want software-class latency", med)
	}
}

func TestSoftwareVsHardwareLatencyX70(t *testing.T) {
	sim, client, _, _ := dnsRig(t)
	i := 0
	client.NameFunc = func() string { i++; return SequentialName(i % 100) }
	client.Start(100)
	sim.RunFor(100 * time.Millisecond)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)
	hwMed := client.Latency.Median()

	// Same load against the software directly.
	sim2 := simnet.New(12)
	net2 := simnet.NewNetwork(sim2, simnet.TenGigE)
	zone2 := NewZone()
	zone2.PopulateSequential(100)
	NewSoftServer(net2, "host", zone2)
	client2 := NewClient(net2, "client", "host")
	j := 0
	client2.NameFunc = func() string { j++; return SequentialName(j % 100) }
	client2.Start(100)
	sim2.RunFor(100 * time.Millisecond)
	client2.Stop()
	sim2.RunFor(10 * time.Millisecond)
	swMed := client2.Latency.Median()

	ratio := float64(swMed) / float64(hwMed)
	// §3.3: ~x70 latency improvement. Wire time compresses the
	// end-to-end ratio slightly; accept 30-90.
	if ratio < 30 || ratio > 90 {
		t.Errorf("software/hardware latency ratio = %.0f (sw=%v hw=%v), want ~70", ratio, swMed, hwMed)
	}
}

func TestEmuInactivePassthrough(t *testing.T) {
	sim, client, emu, backend := dnsRig(t)
	emu.Deactivate()
	client.NameFunc = func() string { return SequentialName(1) }
	client.Start(20)
	sim.RunFor(50 * time.Millisecond)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)
	if emu.Counters.Get("queries") != 0 {
		t.Error("inactive module must not serve")
	}
	if backend.Counters.Get("queries") == 0 {
		t.Error("software should serve while module is parked")
	}
	if client.Counters.Get("resolved") == 0 {
		t.Error("client got no resolutions via software")
	}
}

func TestEmuPowerShape(t *testing.T) {
	sim, client, emu, backend := dnsRig(t)
	combined := telemetry.SumPower{backend, emu}
	// §4.4: Emu DNS totals ~47.5 W idle and stays under ~48 W loaded.
	idle := combined.PowerWatts(sim.Now())
	if idle < 47 || idle > 48.2 {
		t.Errorf("idle combined = %v W, want ~47.5", idle)
	}
	i := 0
	client.NameFunc = func() string { i++; return SequentialName(i % 100) }
	client.Start(900)
	sim.RunFor(1200 * time.Millisecond)
	loaded := combined.PowerWatts(sim.Now())
	client.Stop()
	if loaded >= 48.5 {
		t.Errorf("loaded combined = %v W, want < 48.5", loaded)
	}
}

func TestEmuNonDNSPassthrough(t *testing.T) {
	sim, _, emu, backend := dnsRig(t)
	emu.Receive(&simnet.Packet{Src: "x", Dst: "emu", DstPort: 9999, Payload: []byte("data")})
	sim.RunFor(time.Millisecond)
	if emu.Counters.Get("passthrough") != 1 {
		t.Error("non-DNS traffic should pass through to the host")
	}
	if backend.Counters.Get("non_dns") != 1 {
		t.Error("host should receive the passthrough packet")
	}
}

func TestSyncZoneCopies(t *testing.T) {
	sim, client, emu, backend := dnsRig(t)
	backend.Zone().Add("new.example.com", [4]byte{10, 9, 8, 7}, 60)
	// Not yet synced: hardware answers NXDOMAIN.
	client.NameFunc = func() string { return "new.example.com" }
	client.Query("new.example.com")
	sim.RunFor(5 * time.Millisecond)
	if client.Counters.Get("nxdomain") != 1 {
		t.Fatalf("expected NXDOMAIN before sync, counters: %v", client.Counters)
	}
	emu.SyncZone()
	client.Query("new.example.com")
	sim.RunFor(5 * time.Millisecond)
	if client.Counters.Get("resolved") != 1 {
		t.Error("after SyncZone the hardware should resolve the new name")
	}
}
