package dns

import (
	"time"

	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// Client generates DNS query load against a server address and records
// end-to-end latency, standing in for the paper's OSNT traffic source.
type Client struct {
	addr   simnet.Addr
	server simnet.Addr
	sim    *simnet.Simulator
	net    *simnet.Network

	// NameFunc picks the queried name; defaults to a fixed name.
	NameFunc func() string

	nextID   uint16
	pending  map[uint16]simnet.Time
	Latency  *telemetry.Histogram
	Counters *telemetry.Counters
	cancel   func()
}

// NewClient attaches a DNS client at addr targeting server.
func NewClient(net *simnet.Network, addr, server simnet.Addr) *Client {
	c := &Client{
		addr:     addr,
		server:   server,
		sim:      net.Sim(),
		net:      net,
		NameFunc: func() string { return SequentialName(0) },
		pending:  make(map[uint16]simnet.Time),
		Latency:  telemetry.NewHistogram(),
		Counters: telemetry.NewCounters(),
	}
	net.Attach(c)
	return c
}

// Addr implements simnet.Node.
func (c *Client) Addr() simnet.Addr { return c.addr }

// Start issues Poisson queries at rateKpps until Stop.
func (c *Client) Start(rateKpps float64) {
	c.Stop()
	if rateKpps <= 0 {
		return
	}
	meanGap := time.Duration(float64(time.Second) / (rateKpps * 1000))
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		c.Query(c.NameFunc())
		gap := time.Duration(c.sim.Rand().ExpFloat64() * float64(meanGap))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		c.sim.Schedule(gap, tick)
	}
	c.sim.Schedule(meanGap, tick)
	c.cancel = func() { stopped = true }
}

// Stop halts the query stream.
func (c *Client) Stop() {
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
}

// Query sends one A query for name.
func (c *Client) Query(name string) {
	c.nextID++
	id := c.nextID
	payload, err := Encode(NewQuery(id, name))
	if err != nil {
		c.Counters.Inc("encode_error", 1)
		return
	}
	c.pending[id] = c.sim.Now()
	c.Counters.Inc("sent", 1)
	c.net.Send(&simnet.Packet{
		Src: c.addr, Dst: c.server, SrcPort: 41000, DstPort: Port, Payload: payload,
	})
}

// Receive implements simnet.Node.
func (c *Client) Receive(pkt *simnet.Packet) {
	m, err := Decode(pkt.Payload, 0)
	if err != nil || !m.Response {
		c.Counters.Inc("bad_response", 1)
		return
	}
	sent, ok := c.pending[m.ID]
	if !ok {
		c.Counters.Inc("unmatched", 1)
		return
	}
	delete(c.pending, m.ID)
	c.Latency.Observe(c.sim.Now().Sub(sent))
	c.Counters.Inc("recv", 1)
	switch m.RCode {
	case RCodeNoError:
		if m.HasAnswer {
			c.Counters.Inc("resolved", 1)
		}
	case RCodeNXDomain:
		c.Counters.Inc("nxdomain", 1)
	default:
		c.Counters.Inc("other_rcode", 1)
	}
}

// Outstanding returns unanswered query count.
func (c *Client) Outstanding() int { return len(c.pending) }

// Retarget points subsequent queries at a new server.
func (c *Client) Retarget(server simnet.Addr) { c.server = server }
