// Package dns implements the DNS case study (§3.3): a real DNS wire codec
// (header, question, A answers with name compression), an NSD-style
// authoritative software server, and Emu DNS — the FPGA implementation
// supporting non-recursive name -> IPv4 resolution, amended with the
// packet classifier so the card also serves as a NIC.
//
// # The serving hot path
//
// The live datapath (Handler behind incdnsd, and nictier's Emu-DNS-style
// answer table) never touches the string-based Message API. Queries are
// parsed into a QuestionView whose QName is a byte view over the inbound
// datagram — no per-packet name string — and answers come from the
// zone's precompiled wire-answer cache:
//
//   - Zone.Add compiles the full response datagram for the record once —
//     header, question (canonical lowercase name), and a compressed A
//     answer — into a WireAnswer. Answering a query is then one copy of
//     that image into the reply buffer plus patching the two ID bytes,
//     the two flags bytes (QR|AA plus the query's RD bit), and echoing
//     the client's spelling of the name over the question section
//     (fold-equal names have identical wire length, so the patch is
//     in place).
//   - Lookups are case-insensitive without allocating: the wire-form
//     name is hashed and compared under ASCII folding (FNV-1a over
//     folded bytes) instead of strings.ToLower, which allocates on every
//     mixed-case query.
//   - Negative responses (NXDOMAIN, NOTIMPL) are appended directly from
//     the view, echoing the raw question section.
//
// Together these make the answer-hit, NXDOMAIN and NOTIMPL paths zero
// heap allocations per query; only queries using compression pointers in
// the question name fall back to the allocating Message codec.
//
// # Cache coherence
//
// WireAnswer images are immutable once compiled. Zone.Add replaces the
// record's image (it never mutates one in place) and Zone.Remove drops
// it, keeping the cache exactly in sync with the records map; both are
// writer-side operations — a Zone is a plain map, safe for any number of
// concurrent readers only while nobody writes, which is the daemons'
// load-then-serve lifecycle. The offload tier's zone sync
// (nictier.DNSTier.Warm) snapshots the cache with Zone.WireAnswers: the
// snapshot owns its own index but shares the immutable images, so a
// sync is one map copy, not a recompilation, and a tier answer is
// byte-identical to the host's.
package dns
