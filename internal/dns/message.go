package dns

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Port is the DNS UDP port the packet classifier matches.
const Port = 53

// Record types and classes (only what Emu DNS supports, §3.3).
const (
	TypeA   = 1
	ClassIN = 1
)

// RCodes.
const (
	RCodeNoError  = 0
	RCodeFormErr  = 1
	RCodeServFail = 2
	RCodeNXDomain = 3
	RCodeNotImpl  = 4
)

// Header flag bits.
const (
	flagQR = 1 << 15 // response
	flagAA = 1 << 10 // authoritative answer
	flagRD = 1 << 8  // recursion desired
)

// Message is a parsed DNS message restricted to a single question and
// (optionally) a single A answer — the shape Emu DNS handles.
type Message struct {
	ID        uint16
	Response  bool
	Authority bool
	RecDes    bool
	RCode     int
	Name      string // question name, dot-separated, no trailing dot
	QType     uint16
	QClass    uint16
	// Answer (responses with RCodeNoError and HasAnswer).
	HasAnswer bool
	TTL       uint32
	Addr      [4]byte
}

// Codec errors.
var (
	ErrTruncatedMessage = errors.New("dns: truncated message")
	ErrBadName          = errors.New("dns: malformed name")
	ErrLabelTooLong     = errors.New("dns: label exceeds 63 bytes")
	ErrNameTooDeep      = errors.New("dns: name exceeds supported label depth")
)

// MaxLabels is the parse depth Emu DNS's fixed pipeline supports (§9.2
// discusses "queries that require parsing deeper than the maximum
// supported depth"). Software servers have no such limit.
const MaxLabels = 8

// appendName encodes a dot-separated name as DNS labels.
func appendName(b []byte, name string) ([]byte, error) {
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if label == "" {
				return nil, ErrBadName
			}
			if len(label) > 63 {
				return nil, ErrLabelTooLong
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0), nil
}

// parseName decodes labels at off, enforcing depthLimit (0 = unlimited).
// Compression pointers are accepted for robustness even though queries in
// practice never need them.
func parseName(msg []byte, off int, depthLimit int) (string, int, error) {
	var labels []string
	jumped := false
	end := off
	for hops := 0; ; hops++ {
		if hops > 64 {
			return "", 0, ErrBadName
		}
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		l := int(msg[off])
		switch {
		case l == 0:
			if !jumped {
				end = off + 1
			}
			if depthLimit > 0 && len(labels) > depthLimit {
				return "", 0, ErrNameTooDeep
			}
			return strings.Join(labels, "."), end, nil
		case l&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			ptr := int(binary.BigEndian.Uint16(msg[off:]) & 0x3FFF)
			if !jumped {
				end = off + 2
			}
			jumped = true
			off = ptr
		case l&0xC0 != 0:
			return "", 0, ErrBadName
		default:
			if off+1+l > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			labels = append(labels, string(msg[off+1:off+1+l]))
			off += 1 + l
		}
	}
}

// Encode serializes the message. Responses carrying an answer use a
// compression pointer to the question name, like real servers do.
func Encode(m Message) ([]byte, error) {
	return AppendMessage(make([]byte, 0, 12+len(m.Name)+2+4+16), m)
}

// AppendMessage is Encode into a caller-provided buffer: the serving path
// encodes responses into a reusable dataplane scratch buffer, avoiding a
// per-response allocation. The message must begin at the start of the
// datagram the caller transmits (compression pointers are
// message-relative), so handlers pass scratch[:0].
func AppendMessage(dst []byte, m Message) ([]byte, error) {
	var flags uint16
	if m.Response {
		flags |= flagQR
	}
	if m.Authority {
		flags |= flagAA
	}
	if m.RecDes {
		flags |= flagRD
	}
	flags |= uint16(m.RCode & 0xF)
	an := 0
	if m.HasAnswer {
		an = 1
	}
	b := binary.BigEndian.AppendUint16(dst, m.ID)
	b = binary.BigEndian.AppendUint16(b, flags)
	b = binary.BigEndian.AppendUint16(b, 1) // QDCOUNT
	b = binary.BigEndian.AppendUint16(b, uint16(an))
	b = binary.BigEndian.AppendUint16(b, 0) // NSCOUNT
	b = binary.BigEndian.AppendUint16(b, 0) // ARCOUNT
	var err error
	b, err = appendName(b, m.Name)
	if err != nil {
		return nil, err
	}
	b = binary.BigEndian.AppendUint16(b, m.QType)
	b = binary.BigEndian.AppendUint16(b, m.QClass)
	if m.HasAnswer {
		b = append(b, 0xC0, 12) // pointer to the question name
		b = binary.BigEndian.AppendUint16(b, TypeA)
		b = binary.BigEndian.AppendUint16(b, ClassIN)
		b = binary.BigEndian.AppendUint32(b, m.TTL)
		b = binary.BigEndian.AppendUint16(b, 4)
		b = append(b, m.Addr[:]...)
	}
	return b, nil
}

// Decode parses a message with at most one question and one A answer.
// depthLimit bounds question-name label depth (0 = unlimited); hardware
// callers pass MaxLabels.
func Decode(msg []byte, depthLimit int) (Message, error) {
	if len(msg) < 12 {
		return Message{}, ErrTruncatedMessage
	}
	var m Message
	m.ID = binary.BigEndian.Uint16(msg[0:])
	flags := binary.BigEndian.Uint16(msg[2:])
	m.Response = flags&flagQR != 0
	m.Authority = flags&flagAA != 0
	m.RecDes = flags&flagRD != 0
	m.RCode = int(flags & 0xF)
	qd := binary.BigEndian.Uint16(msg[4:])
	an := binary.BigEndian.Uint16(msg[6:])
	if qd != 1 {
		return Message{}, fmt.Errorf("dns: unsupported question count %d", qd)
	}
	name, off, err := parseName(msg, 12, depthLimit)
	if err != nil {
		return Message{}, err
	}
	m.Name = name
	if off+4 > len(msg) {
		return Message{}, ErrTruncatedMessage
	}
	m.QType = binary.BigEndian.Uint16(msg[off:])
	m.QClass = binary.BigEndian.Uint16(msg[off+2:])
	off += 4
	if an >= 1 {
		_, off, err = parseName(msg, off, 0)
		if err != nil {
			return Message{}, err
		}
		if off+10 > len(msg) {
			return Message{}, ErrTruncatedMessage
		}
		rtype := binary.BigEndian.Uint16(msg[off:])
		m.TTL = binary.BigEndian.Uint32(msg[off+4:])
		rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
		off += 10
		if off+rdlen > len(msg) {
			return Message{}, ErrTruncatedMessage
		}
		if rtype == TypeA && rdlen == 4 {
			copy(m.Addr[:], msg[off:off+4])
			m.HasAnswer = true
		}
	}
	return m, nil
}

// NewQuery builds a standard A/IN query for name.
func NewQuery(id uint16, name string) Message {
	return Message{ID: id, Name: name, QType: TypeA, QClass: ClassIN}
}

// --- zero-copy question parsing (the serving hot path) ---------------------

// Codec errors specific to the view parser. A compressed question name is
// not malformed — callers fall back to the allocating Decode path (the
// host handler) or punt to the host (the NIC tier), matching the fixed
// hardware pipeline that only parses inline labels.
var (
	ErrCompressedName = errors.New("dns: compressed question name")
	errBadQDCount     = errors.New("dns: unsupported question count")
)

// QuestionView is a query parsed without copying: QName is the raw
// wire-form question name (length-prefixed labels, including the root
// terminator) aliasing the inbound datagram, valid only until the buffer
// is reused. It carries exactly what the answer path needs — the ID and
// flags to patch, the name to look up and echo, and the question-section
// end offset for negative responses.
type QuestionView struct {
	ID     uint16
	Flags  uint16
	QName  []byte
	QType  uint16
	QClass uint16
	// End is the offset just past the question section.
	End int
}

// Response reports the QR bit — set on answers, which servers ignore.
func (v *QuestionView) Response() bool { return v.Flags&flagQR != 0 }

// RecDes reports the RD bit, echoed into responses.
func (v *QuestionView) RecDes() bool { return v.Flags&flagRD != 0 }

// ParseQuestion parses the header and question section of msg into v
// without allocating. depthLimit bounds the label depth (0 = unlimited);
// hardware callers pass MaxLabels and treat ErrNameTooDeep as a punt to
// software. Compression pointers in the question name return
// ErrCompressedName so callers can fall back to Decode. The answer
// section, if any, is not parsed.
func ParseQuestion(msg []byte, depthLimit int, v *QuestionView) error {
	if len(msg) < 12 {
		return ErrTruncatedMessage
	}
	if binary.BigEndian.Uint16(msg[4:]) != 1 {
		return errBadQDCount
	}
	v.ID = binary.BigEndian.Uint16(msg[0:])
	v.Flags = binary.BigEndian.Uint16(msg[2:])
	off := 12
	labels := 0
	for {
		if off >= len(msg) {
			return ErrTruncatedMessage
		}
		l := int(msg[off])
		if l == 0 {
			off++
			break
		}
		switch {
		case l&0xC0 == 0xC0:
			return ErrCompressedName
		case l&0xC0 != 0:
			return ErrBadName
		}
		if off+1+l > len(msg) {
			return ErrTruncatedMessage
		}
		labels++
		off += 1 + l
	}
	if depthLimit > 0 && labels > depthLimit {
		return ErrNameTooDeep
	}
	if off+4 > len(msg) {
		return ErrTruncatedMessage
	}
	v.QName = msg[12:off]
	v.QType = binary.BigEndian.Uint16(msg[off:])
	v.QClass = binary.BigEndian.Uint16(msg[off+2:])
	v.End = off + 4
	return nil
}

// AppendNoAnswer appends a no-answer response (NXDOMAIN, NOTIMPL) for the
// query msg parsed into v: the response header followed by the question
// section echoed verbatim from the inbound datagram. It allocates nothing
// beyond dst's growth.
func AppendNoAnswer(dst, msg []byte, v *QuestionView, rcode int) []byte {
	dst = binary.BigEndian.AppendUint16(dst, v.ID)
	dst = binary.BigEndian.AppendUint16(dst, flagQR|flagAA|v.Flags&flagRD|uint16(rcode&0xF))
	dst = binary.BigEndian.AppendUint16(dst, 1) // QDCOUNT
	dst = binary.BigEndian.AppendUint16(dst, 0) // ANCOUNT
	dst = binary.BigEndian.AppendUint16(dst, 0) // NSCOUNT
	dst = binary.BigEndian.AppendUint16(dst, 0) // ARCOUNT
	return append(dst, msg[12:v.End]...)
}
