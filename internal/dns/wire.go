package dns

import "encoding/binary"

// This file is the precompiled wire-answer cache behind the zero-copy
// serving path: one immutable response datagram per A record, compiled at
// Zone.Add time, indexed by an ASCII-folded hash of the wire-form name so
// lookups are case-insensitive without strings.ToLower's allocation. See
// the package comment for the coherence contract.

// WireAnswer is the precompiled answer for one record: the full response
// datagram (ID 0, flags QR|AA, canonical lowercase question name,
// compressed A answer). Images are immutable after compilation — Zone.Add
// replaces, never mutates — so snapshots share them freely.
type WireAnswer struct {
	name  string  // canonical lowercase dotted name
	qname []byte  // wire-form question name within image
	image []byte  // the full prebuilt response datagram
	rec   ARecord // the record the image was compiled from
}

// Name returns the canonical (lowercase, dot-separated) record name.
func (a *WireAnswer) Name() string { return a.name }

// Record returns the A record the answer was compiled from.
func (a *WireAnswer) Record() ARecord { return a.rec }

// WireLen returns the response datagram's length in bytes.
func (a *WireAnswer) WireLen() int { return len(a.image) }

// AppendReply appends the complete answer for the query parsed into v:
// one copy of the precompiled image, then patch the ID and flags (QR|AA
// plus the query's RD bit) and echo the client's spelling of the name
// over the question section. v must have fold-matched this answer, so
// the names have identical wire length. Allocates nothing beyond dst's
// growth.
func (a *WireAnswer) AppendReply(dst []byte, v *QuestionView) []byte {
	n := len(dst)
	dst = append(dst, a.image...)
	b := dst[n:]
	binary.BigEndian.PutUint16(b[0:], v.ID)
	binary.BigEndian.PutUint16(b[2:], flagQR|flagAA|v.Flags&flagRD)
	copy(b[12:], v.QName)
	return dst
}

// compileAnswer builds the wire image for a record. name must already be
// lowercase. Names that cannot be wire-encoded (empty labels, labels over
// 63 bytes) return an error — such names can never appear in a wire query
// either, so they are simply absent from the cache.
func compileAnswer(name string, r ARecord) (*WireAnswer, error) {
	img, err := AppendMessage(make([]byte, 0, 12+len(name)+2+4+16), Message{
		Response: true, Authority: true,
		Name: name, QType: TypeA, QClass: ClassIN,
		HasAnswer: true, TTL: r.TTL, Addr: r.Addr,
	})
	if err != nil {
		return nil, err
	}
	nameLen := 1
	if name != "" {
		nameLen = len(name) + 2
	}
	return &WireAnswer{name: name, qname: img[12 : 12+nameLen], image: img, rec: r}, nil
}

// foldByte lowercases ASCII A-Z. Label length bytes are at most 63, below
// 'A', so folding the whole wire name never corrupts them.
func foldByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// foldHash is FNV-1a over the ASCII-folded bytes of a wire-form name.
func foldHash(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h = (h ^ uint64(foldByte(c))) * prime
	}
	return h
}

// foldEqual reports whether two wire-form names match case-insensitively.
func foldEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if foldByte(a[i]) != foldByte(b[i]) {
			return false
		}
	}
	return true
}

// AnswerTable indexes WireAnswers by the folded hash of their wire-form
// name. The zone owns one (kept coherent by Add/Remove); the NIC tier
// serves from an independent snapshot sharing the same immutable images.
// Like Zone, a table is safe for concurrent readers only while nobody
// writes.
type AnswerTable struct {
	buckets map[uint64][]*WireAnswer
	n       int
}

// NewAnswerTable returns an empty table.
func NewAnswerTable() *AnswerTable {
	return &AnswerTable{buckets: make(map[uint64][]*WireAnswer)}
}

// Len returns the number of answers in the table.
func (t *AnswerTable) Len() int { return t.n }

// Lookup finds the answer whose name fold-matches the wire-form qname.
// It allocates nothing.
func (t *AnswerTable) Lookup(qname []byte) (*WireAnswer, bool) {
	for _, a := range t.buckets[foldHash(qname)] {
		if foldEqual(a.qname, qname) {
			return a, true
		}
	}
	return nil, false
}

// add installs a, replacing any fold-equal entry.
func (t *AnswerTable) add(a *WireAnswer) {
	h := foldHash(a.qname)
	chain := t.buckets[h]
	for i, old := range chain {
		if foldEqual(old.qname, a.qname) {
			chain[i] = a
			return
		}
	}
	t.buckets[h] = append(chain, a)
	t.n++
}

// remove drops the entry fold-matching qname, reporting whether it
// existed.
func (t *AnswerTable) remove(qname []byte) bool {
	h := foldHash(qname)
	chain := t.buckets[h]
	for i, old := range chain {
		if foldEqual(old.qname, qname) {
			chain[i] = chain[len(chain)-1]
			chain = chain[:len(chain)-1]
			if len(chain) == 0 {
				delete(t.buckets, h)
			} else {
				t.buckets[h] = chain
			}
			t.n--
			return true
		}
	}
	return false
}

// Clone returns an independent snapshot: its own index, sharing the
// immutable answer images — the NIC tier's zone sync.
func (t *AnswerTable) Clone() *AnswerTable {
	out := &AnswerTable{buckets: make(map[uint64][]*WireAnswer, len(t.buckets)), n: t.n}
	for h, chain := range t.buckets {
		out.buckets[h] = append([]*WireAnswer(nil), chain...)
	}
	return out
}

// Range calls fn for every answer (order unspecified) until fn returns
// false.
func (t *AnswerTable) Range(fn func(a *WireAnswer) bool) {
	for _, chain := range t.buckets {
		for _, a := range chain {
			if !fn(a) {
				return
			}
		}
	}
}
