//go:build !linux || (!amd64 && !arm64)

package netio

import (
	"fmt"
	"net"
	"runtime"
)

// PinThread is linux-only; elsewhere pinning silently costs nothing to
// skip, so callers log and continue.
func PinThread(cpu int) error {
	return fmt.Errorf("netio: thread pinning unsupported on %s/%s", runtime.GOOS, runtime.GOARCH)
}

// SetBusyPoll is linux-only (SO_BUSY_POLL).
func SetBusyPoll(pc net.PacketConn, usec int) error {
	return fmt.Errorf("netio: SO_BUSY_POLL unsupported on %s/%s", runtime.GOOS, runtime.GOARCH)
}
