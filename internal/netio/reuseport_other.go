//go:build !linux

package netio

import "net"

const reusePortAvailable = false

// reusePortListenConfig is unreachable off Linux (ListenReusePortGroup
// gates on reusePortAvailable first) but keeps the portable build whole.
func reusePortListenConfig() *net.ListenConfig { return &net.ListenConfig{} }
