package netio

import (
	"fmt"
	"net"
	"net/netip"
	"os"
	"testing"
	"time"
)

func mkMsgs(n, size int) []Message {
	ms := make([]Message, n)
	for i := range ms {
		ms[i].Buf = make([]byte, size)
	}
	return ms
}

// readAll collects want datagrams from bc, tolerating partial batches.
func readAll(t *testing.T, bc BatchConn, want int) []Message {
	t.Helper()
	var got []Message
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < want {
		if err := bc.SetReadDeadline(deadline); err != nil {
			t.Fatal(err)
		}
		ms := mkMsgs(want, 2048)
		n, err := bc.ReadBatch(ms)
		if err != nil {
			t.Fatalf("ReadBatch after %d/%d: %v", len(got), want, err)
		}
		got = append(got, ms[:n]...)
	}
	return got
}

func TestBatchConnRoundTrip(t *testing.T) {
	spc, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server := NewBatchConn(spc)
	defer server.Close()

	cconn, err := net.Dial("udp4", spc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewBatchConn(cconn.(*net.UDPConn))
	defer client.Close()

	// Client sends a batch through its connected socket (zero Src).
	const k = 8
	out := make([]Message, k)
	for i := range out {
		out[i].Buf = []byte(fmt.Sprintf("msg-%02d", i))
		out[i].N = len(out[i].Buf)
	}
	if n, err := client.WriteBatch(out); err != nil || n != k {
		t.Fatalf("client WriteBatch = %d, %v; want %d", n, err, k)
	}

	// Server reads them, sees the client's source, echoes back.
	in := readAll(t, server, k)
	clientAP := cconn.LocalAddr().(*net.UDPAddr).AddrPort()
	seen := map[string]bool{}
	for i := range in {
		m := &in[i]
		if m.Src.Port() != clientAP.Port() {
			t.Fatalf("message %d: src %v, want port %d", i, m.Src, clientAP.Port())
		}
		seen[string(m.Buf[:m.N])] = true
		m.Buf = append(m.Buf[:0], m.Buf[:m.N]...)
	}
	if len(seen) != k {
		t.Fatalf("server saw %d distinct payloads, want %d", len(seen), k)
	}
	if n, err := server.WriteBatch(in); err != nil || n != k {
		t.Fatalf("server WriteBatch = %d, %v; want %d", n, err, k)
	}
	back := readAll(t, client, k)
	for i := range back {
		if payload := string(back[i].Buf[:back[i].N]); !seen[payload] {
			t.Fatalf("echo %d: unexpected payload %q", i, payload)
		}
	}
}

func TestReadBatchHonorsDeadline(t *testing.T) {
	spc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bc := NewBatchConn(spc)
	defer bc.Close()
	if err := bc.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = bc.ReadBatch(mkMsgs(4, 512))
	if err == nil {
		t.Fatal("ReadBatch on an idle socket returned without error")
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %v (os.ErrDeadlineExceeded match: %v)",
			err, os.IsTimeout(err))
	}
	if since := time.Since(start); since > 3*time.Second {
		t.Fatalf("deadline took %v to fire", since)
	}
}

func TestReusePortGroupSpreadsFlows(t *testing.T) {
	conns, err := ListenReusePortGroup("udp4", "127.0.0.1:0", 4)
	if err != nil {
		t.Skipf("reuseport group unavailable: %v", err)
	}
	for _, c := range conns {
		defer c.Close()
	}
	addr := conns[0].LocalAddr().String()
	for i := 1; i < len(conns); i++ {
		if got := conns[i].LocalAddr().String(); got != addr {
			t.Fatalf("socket %d bound to %s, want %s", i, got, addr)
		}
	}

	// Many distinct client flows: the kernel's 4-tuple hash should land
	// traffic on more than one group socket.
	const flows = 32
	for i := 0; i < flows; i++ {
		c, err := net.Dial("udp4", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write([]byte(fmt.Sprintf("flow-%d", i))); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	total, busy := 0, 0
	buf := make([]byte, 256)
	for _, c := range conns {
		got := 0
		for {
			c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			if _, _, err := c.ReadFrom(buf); err != nil {
				break
			}
			got++
		}
		if got > 0 {
			busy++
		}
		total += got
	}
	if total != flows {
		t.Fatalf("group received %d of %d datagrams", total, flows)
	}
	if busy < 2 {
		t.Fatalf("all %d flows landed on one socket; want the kernel to spread them", flows)
	}
}

type stringAddr string

func (a stringAddr) Network() string { return "udp" }
func (a stringAddr) String() string  { return string(a) }

func TestAddrPortOf(t *testing.T) {
	ua := &net.UDPAddr{IP: net.IPv4(10, 0, 0, 7), Port: 4242}
	if ap, ok := AddrPortOf(ua); !ok || ap.Port() != 4242 {
		t.Fatalf("UDPAddr: got %v, %v", ap, ok)
	}
	if ap, ok := AddrPortOf(stringAddr("192.168.1.9:5353")); !ok || ap != netip.MustParseAddrPort("192.168.1.9:5353") {
		t.Fatalf("string addr: got %v, %v", ap, ok)
	}
	if _, ok := AddrPortOf(stringAddr("not-an-address")); ok {
		t.Fatal("unparseable addr should not yield an AddrPort")
	}
	if _, ok := AddrPortOf(nil); ok {
		t.Fatal("nil addr should not yield an AddrPort")
	}
}
