//go:build !netio_fallback

package netio

// forceFallback is flipped on by the netio_fallback build tag, which
// forces NewBatchConn to the portable singleConn path (and fails the
// uring probe) so CI can run the fallback under -race on linux instead
// of only cross-compiling it.
const forceFallback = false
