//go:build !linux || (!amd64 && !arm64)

package netio

import (
	"fmt"
	"net"
	"runtime"
)

// NewUringConn is unavailable off linux/amd64+arm64; callers select the
// mmsg or portable backend via NewBatchConn instead.
func NewUringConn(pc net.PacketConn, cfg UringConfig) (BatchConn, error) {
	return nil, fmt.Errorf("%w: %s/%s", ErrUringUnsupported, runtime.GOOS, runtime.GOARCH)
}

func probeUring() error {
	return fmt.Errorf("%w: %s/%s", ErrUringUnsupported, runtime.GOOS, runtime.GOARCH)
}
