package netio

import (
	"net"
	"sort"
	"testing"
	"time"
)

func TestMessageSegments(t *testing.T) {
	cases := []struct {
		n, segSize, want int
	}{
		{n: 100, segSize: 0, want: 1},   // plain datagram
		{n: 100, segSize: 100, want: 1}, // segSize >= N is not a train
		{n: 100, segSize: 200, want: 1},
		{n: 100, segSize: 25, want: 4}, // exact split
		{n: 100, segSize: 30, want: 4}, // short final segment
		{n: 1, segSize: 1, want: 1},
		{n: 0, segSize: 16, want: 1},
	}
	for _, c := range cases {
		m := Message{N: c.n, SegSize: c.segSize}
		if got := m.Segments(); got != c.want {
			t.Errorf("Segments(N=%d, SegSize=%d) = %d, want %d", c.n, c.segSize, got, c.want)
		}
	}
}

// trainTestBatch builds a mixed write batch — plain datagrams around two
// trains (one exact-split, one with a short tail) — and the multiset of
// wire datagrams any correct transmit path must produce from it.
func trainTestBatch(dst net.Addr) (ms []Message, wire []string) {
	ap, _ := AddrPortOf(dst)
	add := func(payload string, segSize int) {
		ms = append(ms, Message{Buf: []byte(payload), N: len(payload), Src: ap, SegSize: segSize})
		if segSize <= 0 || segSize >= len(payload) {
			wire = append(wire, payload)
			return
		}
		for off := 0; off < len(payload); off += segSize {
			end := min(off+segSize, len(payload))
			wire = append(wire, payload[off:end])
		}
	}
	add("plain-head", 0)
	add("AAAAAAAAbbbbbbbbCCCCCCCCdddddddd", 8) // 4 equal segments
	add("0123456789-0123456789-tail", 10)      // 2 full + 6-byte tail
	add("plain-tail", 0)
	return ms, wire
}

// collectDatagrams reads want datagrams off a plain UDP socket.
func collectDatagrams(t *testing.T, pc net.PacketConn, want int) []string {
	t.Helper()
	_ = pc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	var got []string
	for len(got) < want {
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			t.Fatalf("after %d/%d datagrams: %v", len(got), want, err)
		}
		got = append(got, string(buf[:n]))
	}
	return got
}

// TestTrainTxAcrossRungs sends the same mixed batch through every
// transport rung and asserts the receiver — a plain UDP socket, i.e. no
// GRO — sees the identical per-datagram wire image, with the telemetry
// reporting truthfully whether trains were coalesced or unrolled.
func TestTrainTxAcrossRungs(t *testing.T) {
	rungs := []struct {
		name  string
		build func(pc net.PacketConn) (BatchConn, error)
	}{
		{"single", func(pc net.PacketConn) (BatchConn, error) { return NewSingleConn(pc), nil }},
		{"auto", func(pc net.PacketConn) (BatchConn, error) { return NewBatchConn(pc), nil }},
		{"uring", func(pc net.PacketConn) (BatchConn, error) {
			if err := ProbeUring(); err != nil {
				return nil, err
			}
			return NewUringConn(pc, UringConfig{})
		}},
	}
	for _, rung := range rungs {
		t.Run(rung.name, func(t *testing.T) {
			srv, err := net.ListenPacket("udp4", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			spc, err := net.ListenPacket("udp4", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			bc, err := rung.build(spc)
			if err != nil {
				_ = spc.Close()
				t.Skipf("%s rung unavailable: %v", rung.name, err)
			}
			defer bc.Close()

			ms, wire := trainTestBatch(srv.LocalAddr())
			if n, err := bc.WriteBatch(ms); err != nil || n != len(ms) {
				t.Fatalf("WriteBatch = %d, %v; want %d", n, err, len(ms))
			}
			got := collectDatagrams(t, srv, len(wire))
			sort.Strings(got)
			want := append([]string(nil), wire...)
			sort.Strings(want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("wire datagram %d = %q, want %q\n(train mis-split?)", i, got[i], want[i])
				}
			}

			st, ok := TxStatsOf(bc)
			if !ok {
				t.Fatalf("rung %s reports no TxStats", BackendOf(bc))
			}
			// Conservation: every train either rode as one coalesced send
			// or was unrolled — never both, never neither.
			const trainsSent, trainSegsSent = 2, 7
			if st.Trains+st.Fallbacks != trainsSent {
				t.Fatalf("Trains=%d + Fallbacks=%d, want %d total", st.Trains, st.Fallbacks, trainsSent)
			}
			switch backend := BackendOf(bc); backend {
			case "single":
				if st.Trains != 0 || st.Fallbacks != trainsSent {
					t.Fatalf("single rung: %+v, want every train unrolled", st)
				}
			default:
				if ProbeGSO() == nil {
					if st.Trains != trainsSent || st.TrainSegs != trainSegsSent || st.Fallbacks != 0 {
						t.Fatalf("%s rung with working GSO: %+v, want %d coalesced trains / %d segs",
							backend, st, trainsSent, trainSegsSent)
					}
					if backend == "uring" && st.RingSends != trainsSent {
						t.Fatalf("uring rung: RingSends=%d, want %d (trains must ride the ring)",
							st.RingSends, trainsSent)
					}
				}
				// When the probe fails the conn may still coalesce (the
				// INCOD_NO_GSOTX env var disables the probe, not the
				// kernel); conservation above is the only portable claim.
			}
		})
	}
}

// TestTrainConnectedSocket covers the load generator's shape: a
// connected client socket sending trains with a zero Src.
func TestTrainConnectedSocket(t *testing.T) {
	srv, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cc, err := net.Dial("udp4", srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	bc := NewBatchConn(cc.(*net.UDPConn))
	defer bc.Close()

	payload := []byte("seg-1!!!seg-2!!!seg-3!!!")
	ms := []Message{{Buf: payload, N: len(payload), SegSize: 8}}
	if n, err := bc.WriteBatch(ms); err != nil || n != 1 {
		t.Fatalf("WriteBatch = %d, %v", n, err)
	}
	got := collectDatagrams(t, srv, 3)
	for i, want := range []string{"seg-1!!!", "seg-2!!!", "seg-3!!!"} {
		found := false
		for _, g := range got {
			if g == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("segment %d (%q) missing from %q", i, want, got)
		}
	}
}

// TestProbeGSOCached asserts the probe is stable across calls (it is
// cached) and agrees with itself.
func TestProbeGSOCached(t *testing.T) {
	first := ProbeGSO()
	second := ProbeGSO()
	if (first == nil) != (second == nil) {
		t.Fatalf("ProbeGSO flapped: %v then %v", first, second)
	}
	t.Logf("ProbeGSO: %v", first)
}

func BenchmarkWriteBatchTrains(b *testing.B) {
	if err := ProbeGSO(); err != nil {
		b.Skipf("GSO unavailable: %v", err)
	}
	srv, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	go func() { // drain so the socket buffer never backs up
		buf := make([]byte, 2048)
		for {
			if _, _, err := srv.ReadFrom(buf); err != nil {
				return
			}
		}
	}()
	cc, err := net.Dial("udp4", srv.LocalAddr().String())
	if err != nil {
		b.Fatal(err)
	}
	bc := NewBatchConn(cc.(*net.UDPConn))
	defer bc.Close()

	const segs, segSize = 32, 100
	train := make([]byte, segs*segSize)
	for i := range train {
		train[i] = byte(i)
	}
	ms := []Message{{Buf: train, N: len(train), SegSize: segSize}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bc.WriteBatch(ms); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st, _ := TxStatsOf(bc); st.Fallbacks > 0 {
		b.Logf("warning: %d trains fell back per-datagram", st.Fallbacks)
	}
	b.SetBytes(int64(len(train)))
}
