//go:build linux && (amd64 || arm64)

package netio

import (
	"fmt"
	"net"
	"syscall"
	"unsafe"
)

// PinThread binds the calling OS thread to the given CPU via
// sched_setaffinity. Callers must hold the thread first with
// runtime.LockOSThread, or the Go scheduler will migrate the goroutine
// off the pinned thread.
func PinThread(cpu int) error {
	if cpu < 0 {
		return fmt.Errorf("netio: pin to negative cpu %d", cpu)
	}
	var mask [16]uint64 // 1024 CPUs, same size as glibc's cpu_set_t
	if cpu >= len(mask)*64 {
		return fmt.Errorf("netio: cpu %d out of range", cpu)
	}
	mask[cpu/64] = 1 << (uint(cpu) % 64)
	_, _, errno := syscall.Syscall(sysSchedSetaffinity, 0,
		unsafe.Sizeof(mask), uintptr(unsafe.Pointer(&mask)))
	if errno != 0 {
		return fmt.Errorf("netio: sched_setaffinity(cpu=%d): %v", cpu, errno)
	}
	return nil
}

// soBusyPoll is SO_BUSY_POLL, not in the frozen syscall package.
const soBusyPoll = 46

// SetBusyPoll enables kernel busy-polling on the socket for the given
// number of microseconds: blocked receives spin on the device queue
// before sleeping, trading CPU for latency. Requires a *net.UDPConn;
// typical values are 50–200 µs.
func SetBusyPoll(pc net.PacketConn, usec int) error {
	udp, ok := pc.(*net.UDPConn)
	if !ok {
		return fmt.Errorf("netio: busy-poll needs a *net.UDPConn, got %T", pc)
	}
	rc, err := udp.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	err = rc.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soBusyPoll, usec)
	})
	if err != nil {
		return err
	}
	return serr
}
