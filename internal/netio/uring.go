package netio

import (
	"errors"
	"sync"
)

// ErrUringUnsupported reports that the running kernel (or platform)
// lacks the io_uring features the uring backend needs — multishot
// RECVMSG, provided-buffer rings and EXT_ARG timeout waits. Callers
// test for it with errors.Is and degrade to NewBatchConn.
var ErrUringUnsupported = errors.New("netio: io_uring backend unsupported on this kernel")

// UringConfig sizes a NewUringConn ring. The zero value is serviceable.
type UringConfig struct {
	// Entries is the submission-queue depth (default 128). The ring only
	// ever carries the multishot receive, so this mostly sizes the
	// completion queue alongside Buffers.
	Entries int
	// Buffers is the provided-buffer ring size (default 256, rounded up
	// to a power of two): the number of datagrams the kernel can
	// complete ahead of ReadBatch before the multishot starves and has
	// to be re-armed.
	Buffers int
	// BufSize is the largest datagram accepted without truncation
	// (default 64 KiB, the memcached UDP maximum). With GRO active it
	// also bounds a coalesced GSO train, so undersizing it truncates
	// bursts a GSO sender packs into one send.
	BufSize int
	// DisableGRO turns off the receive-side UDP GRO the backend enables
	// by default: with GRO, a sender's GSO train arrives as one
	// coalesced completion carrying a segment-size cmsg and the conn
	// splits it back into per-datagram Messages, collapsing the
	// kernel's per-datagram delivery cost to per-train. The mmsg rung
	// has no cmsg path, so this is a uring-rung capability.
	DisableGRO bool
}

func (c UringConfig) withDefaults() UringConfig {
	if c.Entries <= 0 {
		c.Entries = 128
	}
	if c.Buffers <= 0 {
		c.Buffers = 256
	}
	// Power-of-two ring, kernel requirement.
	n := 1
	for n < c.Buffers {
		n <<= 1
	}
	c.Buffers = n
	if c.BufSize <= 0 {
		c.BufSize = 64 * 1024
	}
	return c
}

// UringStats is a point-in-time snapshot of one uring conn's ring
// telemetry, surfaced by the dataplane on /v1/dataplane.
type UringStats struct {
	// RingEntries is the submission-queue depth; BufRingSize the
	// provided-buffer ring size.
	RingEntries int
	BufRingSize int
	// Resubmits counts multishot re-arms after a termination (buffer
	// starvation, transient error): 0 means the first arm never died.
	Resubmits uint64
	// Starved counts ENOBUFS terminations specifically — the consumer
	// fell more than BufRingSize datagrams behind the socket.
	Starved uint64
	// GRO reports whether receive-side UDP GRO is active on the socket
	// (GSO trains arrive as one coalesced completion).
	GRO bool
	// SendErrors counts WriteBatch calls that returned an error from the
	// sendmmsg transmit path (the same errors the mmsg rung surfaces).
	SendErrors uint64
	// Enters counts io_uring_enter syscalls, the number to compare with
	// the datagram counters for the amortization ratio.
	Enters uint64
}

// UringStatser is implemented by BatchConns that expose ring telemetry
// (the uring backend). BackendOf + UringStatsOf let the dataplane report
// per-shard transport detail without depending on concrete types.
type UringStatser interface {
	Stats() UringStats
}

// UringStatsOf returns bc's ring telemetry when bc is a uring conn.
func UringStatsOf(bc BatchConn) (UringStats, bool) {
	if s, ok := bc.(UringStatser); ok {
		return s.Stats(), true
	}
	return UringStats{}, false
}

// BackendOf names the transport rung serving bc: "uring", "mmsg" or
// "single".
func BackendOf(bc BatchConn) string {
	if b, ok := bc.(interface{ Backend() string }); ok {
		return b.Backend()
	}
	return "unknown"
}

var (
	probeOnce sync.Once
	probeErr  error
)

// ProbeUring reports whether the io_uring backend works end to end on
// this process: it builds a real ring over a loopback socket, sends
// itself a datagram and reads it back through the multishot RECVMSG +
// provided-buffer path. The verdict is cached for the life of the
// process. Daemons call it once and fall back to the mmsg backend
// (logging the downgrade) when it fails.
func ProbeUring() error {
	probeOnce.Do(func() { probeErr = probeUring() })
	return probeErr
}
