package netio

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"time"
)

// Message is one datagram in a batch. On read, Buf is filled in place, N
// is set to the datagram length and Src to the peer address. On write,
// Buf[:N] is sent to Src; a zero Src sends to the connected peer (the
// net.Dial case), which is how the load generator drives a connected
// socket through the same interface.
type Message struct {
	Buf []byte
	N   int
	Src netip.AddrPort
}

// BatchConn is a datagram socket with batched I/O. ReadBatch blocks for
// the first datagram (honoring the read deadline) and returns as many as
// are immediately available, up to len(ms); WriteBatch transmits every
// message or returns how many were sent before the error. One ReadBatch
// or WriteBatch call is one syscall on Linux, so a batch of 32 amortizes
// the per-packet syscall cost 32x.
type BatchConn interface {
	ReadBatch(ms []Message) (int, error)
	WriteBatch(ms []Message) (int, error)
	SetReadDeadline(t time.Time) error
	LocalAddr() net.Addr
	Close() error
}

// NewBatchConn wraps pc in batch I/O: on Linux a *net.UDPConn gets true
// recvmmsg/sendmmsg batching; anything else (in-memory transports,
// other platforms) gets a portable one-datagram-per-ReadBatch fallback
// with identical semantics.
func NewBatchConn(pc net.PacketConn) BatchConn {
	if !forceFallback {
		if bc := newMmsgConn(pc); bc != nil {
			return bc
		}
	}
	return &singleConn{pc: pc}
}

// NewSingleConn wraps pc in the portable one-datagram-per-call backend
// unconditionally, bypassing the mmsg upgrade. Benches and the engine
// selector use it to measure (or force) the lowest transport rung on
// platforms where NewBatchConn would pick a faster one.
func NewSingleConn(pc net.PacketConn) BatchConn {
	return &singleConn{pc: pc}
}

// errNoDest reports a WriteBatch message with a zero Src on a socket
// that is not connected.
var errNoDest = errors.New("netio: message has no destination and the socket is not connected")

// singleConn is the portable fallback: one datagram per call, same
// contract as the mmsg path.
type singleConn struct{ pc net.PacketConn }

func (c *singleConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	m := &ms[0]
	if u, ok := c.pc.(*net.UDPConn); ok {
		n, src, err := u.ReadFromUDPAddrPort(m.Buf)
		if err != nil {
			return 0, err
		}
		m.N, m.Src = n, src
		return 1, nil
	}
	n, raw, err := c.pc.ReadFrom(m.Buf)
	if err != nil {
		return 0, err
	}
	m.N = n
	m.Src, _ = AddrPortOf(raw)
	return 1, nil
}

func (c *singleConn) WriteBatch(ms []Message) (int, error) {
	u, _ := c.pc.(*net.UDPConn)
	for i := range ms {
		m := &ms[i]
		var err error
		switch {
		case !m.Src.IsValid():
			if w, ok := c.pc.(net.Conn); ok {
				_, err = w.Write(m.Buf[:m.N])
			} else {
				err = errNoDest
			}
		case u != nil:
			_, err = u.WriteToUDPAddrPort(m.Buf[:m.N], m.Src)
		default:
			_, err = c.pc.WriteTo(m.Buf[:m.N], net.UDPAddrFromAddrPort(m.Src))
		}
		if err != nil {
			return i, err
		}
	}
	return len(ms), nil
}

func (c *singleConn) SetReadDeadline(t time.Time) error { return c.pc.SetReadDeadline(t) }
func (c *singleConn) LocalAddr() net.Addr               { return c.pc.LocalAddr() }
func (c *singleConn) Close() error                      { return c.pc.Close() }

// Backend names the transport rung for stats and logs.
func (c *singleConn) Backend() string { return "single" }

// AddrPortOf extracts a netip.AddrPort from a net.Addr: the fast path
// for *net.UDPAddr, otherwise by parsing a.String() — which covers
// custom net.Addr implementations (test transports) whose String is the
// conventional "ip:port". ok is false when no address can be derived.
func AddrPortOf(a net.Addr) (ap netip.AddrPort, ok bool) {
	switch v := a.(type) {
	case *net.UDPAddr:
		return v.AddrPort(), true
	case nil:
		return netip.AddrPort{}, false
	}
	ap, err := netip.ParseAddrPort(a.String())
	if err != nil {
		return netip.AddrPort{}, false
	}
	return ap, true
}

// ListenReusePortGroup opens n UDP sockets bound to the same address via
// SO_REUSEPORT, so the kernel spreads inbound flows across them by
// 4-tuple hash — the per-shard-socket substrate of the batched
// dataplane. An ephemeral port (":0") resolved by the first socket is
// pinned for the rest of the group. n < 1 is treated as 1; n > 1
// requires SO_REUSEPORT and fails with a descriptive error on platforms
// without it.
func ListenReusePortGroup(network, addr string, n int) ([]net.PacketConn, error) {
	if n < 1 {
		n = 1
	}
	if !reusePortAvailable {
		if n > 1 {
			return nil, fmt.Errorf("netio: %d-socket reuseport group unsupported on this platform (SO_REUSEPORT required)", n)
		}
		pc, err := net.ListenPacket(network, addr)
		if err != nil {
			return nil, err
		}
		return []net.PacketConn{pc}, nil
	}
	lc := reusePortListenConfig()
	conns := make([]net.PacketConn, 0, n)
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), network, addr)
		if err != nil {
			for _, c := range conns {
				_ = c.Close()
			}
			return nil, fmt.Errorf("netio: reuseport socket %d/%d on %s: %w", i+1, n, addr, err)
		}
		if i == 0 {
			addr = pc.LocalAddr().String()
		}
		conns = append(conns, pc)
	}
	return conns, nil
}
