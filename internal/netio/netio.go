package netio

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync/atomic"
	"time"
)

// Message is one datagram in a batch. On read, Buf is filled in place, N
// is set to the datagram length and Src to the peer address. On write,
// Buf[:N] is sent to Src; a zero Src sends to the connected peer (the
// net.Dial case), which is how the load generator drives a connected
// socket through the same interface.
//
// A SegSize in (0, N) marks Buf[:N] as a GSO train instead of one
// datagram: a run of SegSize-byte datagrams, the last of which may be
// shorter, all bound for Src. Rungs with UDP_SEGMENT hand the whole
// train to the kernel in one send; rungs without it unroll the train
// into per-datagram sends with identical bytes on the wire (counted in
// TxStats.Fallbacks). Callers should only mark trains after ProbeGSO
// succeeds — the unroll keeps them correct, not fast.
type Message struct {
	Buf     []byte
	N       int
	Src     netip.AddrPort
	SegSize int
}

// Kernel bounds on one GSO train: UDP_MAX_SEGMENTS caps a train at 64
// segments, and one UDP send carries at most the largest legal payload.
// Train builders must respect both.
const (
	MaxTrainSegs  = 64
	MaxTrainBytes = 65507
)

// Segments returns how many datagrams the message puts on the wire:
// the train's segment count when SegSize marks one, otherwise 1.
func (m *Message) Segments() int {
	if m.SegSize <= 0 || m.SegSize >= m.N {
		return 1
	}
	return (m.N + m.SegSize - 1) / m.SegSize
}

// BatchConn is a datagram socket with batched I/O. ReadBatch blocks for
// the first datagram (honoring the read deadline) and returns as many as
// are immediately available, up to len(ms); WriteBatch transmits every
// message or returns how many were sent before the error. One ReadBatch
// or WriteBatch call is one syscall on Linux, so a batch of 32 amortizes
// the per-packet syscall cost 32x.
type BatchConn interface {
	ReadBatch(ms []Message) (int, error)
	WriteBatch(ms []Message) (int, error)
	SetReadDeadline(t time.Time) error
	LocalAddr() net.Addr
	Close() error
}

// NewBatchConn wraps pc in batch I/O: on Linux a *net.UDPConn gets true
// recvmmsg/sendmmsg batching; anything else (in-memory transports,
// other platforms) gets a portable one-datagram-per-ReadBatch fallback
// with identical semantics.
func NewBatchConn(pc net.PacketConn) BatchConn {
	if !forceFallback {
		if bc := newMmsgConn(pc); bc != nil {
			return bc
		}
	}
	return &singleConn{pc: pc}
}

// NewSingleConn wraps pc in the portable one-datagram-per-call backend
// unconditionally, bypassing the mmsg upgrade. Benches and the engine
// selector use it to measure (or force) the lowest transport rung on
// platforms where NewBatchConn would pick a faster one.
func NewSingleConn(pc net.PacketConn) BatchConn {
	return &singleConn{pc: pc}
}

// errNoDest reports a WriteBatch message with a zero Src on a socket
// that is not connected.
var errNoDest = errors.New("netio: message has no destination and the socket is not connected")

// TxStats is the transmit side's GSO train telemetry. Every field
// reports what actually happened, not what was requested: a conn that
// unrolled a train per-datagram counts a Fallback, not a Train.
type TxStats struct {
	// Trains counts GSO trains handed to the kernel as single sends.
	Trains uint64
	// TrainSegs counts the datagrams those trains carried.
	TrainSegs uint64
	// Fallbacks counts trains unrolled into per-datagram sends because
	// the rung (or the kernel, per send) could not take UDP_SEGMENT.
	Fallbacks uint64
	// RingSends counts trains submitted as io_uring SENDMSG SQEs rather
	// than inline sendmmsg.
	RingSends uint64
	// SendZC counts zero-copy ring sends. Reserved: the conn never uses
	// SENDMSG_ZC today (trains are copied into ring-owned buffers), so
	// it is truthfully zero.
	SendZC uint64
}

// Add accumulates o into s, for summing per-socket stats.
func (s *TxStats) Add(o TxStats) {
	s.Trains += o.Trains
	s.TrainSegs += o.TrainSegs
	s.Fallbacks += o.Fallbacks
	s.RingSends += o.RingSends
	s.SendZC += o.SendZC
}

// TxStatser is implemented by conns that track GSO transmit telemetry.
type TxStatser interface{ TxStats() TxStats }

// TxStatsOf reports bc's transmit telemetry when its rung tracks any.
func TxStatsOf(bc BatchConn) (TxStats, bool) {
	if t, ok := bc.(TxStatser); ok {
		return t.TxStats(), true
	}
	return TxStats{}, false
}

// txCounters is the shared atomic backing of TxStats, embedded by every
// rung's conn.
type txCounters struct {
	trains, trainSegs, fallbacks, ringSends atomic.Uint64
}

func (t *txCounters) snapshot() TxStats {
	return TxStats{
		Trains:    t.trains.Load(),
		TrainSegs: t.trainSegs.Load(),
		Fallbacks: t.fallbacks.Load(),
		RingSends: t.ringSends.Load(),
	}
}

// singleConn is the portable fallback: one datagram per call, same
// contract as the mmsg path.
type singleConn struct {
	pc net.PacketConn
	tx txCounters
}

func (c *singleConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	m := &ms[0]
	if u, ok := c.pc.(*net.UDPConn); ok {
		n, src, err := u.ReadFromUDPAddrPort(m.Buf)
		if err != nil {
			return 0, err
		}
		m.N, m.Src = n, src
		return 1, nil
	}
	n, raw, err := c.pc.ReadFrom(m.Buf)
	if err != nil {
		return 0, err
	}
	m.N = n
	m.Src, _ = AddrPortOf(raw)
	return 1, nil
}

func (c *singleConn) WriteBatch(ms []Message) (int, error) {
	u, _ := c.pc.(*net.UDPConn)
	for i := range ms {
		m := &ms[i]
		if m.SegSize > 0 && m.SegSize < m.N {
			// This rung has no UDP_SEGMENT: unroll the train into the
			// same per-datagram sends a GSO kernel would produce.
			for off := 0; off < m.N; off += m.SegSize {
				end := min(off+m.SegSize, m.N)
				if err := c.writeOne(u, m.Buf[off:end], m.Src); err != nil {
					return i, err
				}
			}
			c.tx.fallbacks.Add(1)
			continue
		}
		if err := c.writeOne(u, m.Buf[:m.N], m.Src); err != nil {
			return i, err
		}
	}
	return len(ms), nil
}

func (c *singleConn) writeOne(u *net.UDPConn, buf []byte, src netip.AddrPort) error {
	var err error
	switch {
	case !src.IsValid():
		if w, ok := c.pc.(net.Conn); ok {
			_, err = w.Write(buf)
		} else {
			err = errNoDest
		}
	case u != nil:
		_, err = u.WriteToUDPAddrPort(buf, src)
	default:
		_, err = c.pc.WriteTo(buf, net.UDPAddrFromAddrPort(src))
	}
	return err
}

// TxStats implements TxStatser: on this rung only Fallbacks can be
// nonzero.
func (c *singleConn) TxStats() TxStats { return c.tx.snapshot() }

func (c *singleConn) SetReadDeadline(t time.Time) error { return c.pc.SetReadDeadline(t) }
func (c *singleConn) LocalAddr() net.Addr               { return c.pc.LocalAddr() }
func (c *singleConn) Close() error                      { return c.pc.Close() }

// Backend names the transport rung for stats and logs.
func (c *singleConn) Backend() string { return "single" }

// AddrPortOf extracts a netip.AddrPort from a net.Addr: the fast path
// for *net.UDPAddr, otherwise by parsing a.String() — which covers
// custom net.Addr implementations (test transports) whose String is the
// conventional "ip:port". ok is false when no address can be derived.
func AddrPortOf(a net.Addr) (ap netip.AddrPort, ok bool) {
	switch v := a.(type) {
	case *net.UDPAddr:
		return v.AddrPort(), true
	case nil:
		return netip.AddrPort{}, false
	}
	ap, err := netip.ParseAddrPort(a.String())
	if err != nil {
		return netip.AddrPort{}, false
	}
	return ap, true
}

// ListenReusePortGroup opens n UDP sockets bound to the same address via
// SO_REUSEPORT, so the kernel spreads inbound flows across them by
// 4-tuple hash — the per-shard-socket substrate of the batched
// dataplane. An ephemeral port (":0") resolved by the first socket is
// pinned for the rest of the group. n < 1 is treated as 1; n > 1
// requires SO_REUSEPORT and fails with a descriptive error on platforms
// without it.
func ListenReusePortGroup(network, addr string, n int) ([]net.PacketConn, error) {
	if n < 1 {
		n = 1
	}
	if !reusePortAvailable {
		if n > 1 {
			return nil, fmt.Errorf("netio: %d-socket reuseport group unsupported on this platform (SO_REUSEPORT required)", n)
		}
		pc, err := net.ListenPacket(network, addr)
		if err != nil {
			return nil, err
		}
		return []net.PacketConn{pc}, nil
	}
	lc := reusePortListenConfig()
	conns := make([]net.PacketConn, 0, n)
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), network, addr)
		if err != nil {
			for _, c := range conns {
				_ = c.Close()
			}
			return nil, fmt.Errorf("netio: reuseport socket %d/%d on %s: %w", i+1, n, addr, err)
		}
		if i == 0 {
			addr = pc.LocalAddr().String()
		}
		conns = append(conns, pc)
	}
	return conns, nil
}
