//go:build linux && (amd64 || arm64)

package netio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// The io_uring backend: the third transport rung above recvmmsg/sendmmsg.
//
// Receive side: one multishot RECVMSG stays armed on the socket, filling
// completions from a registered provided-buffer ring — the kernel picks
// a buffer per datagram and posts a CQE, so a loaded socket is drained
// from the mmap'd completion queue with no syscall at all. Send side:
// plain datagrams flush through the same sendmmsg(2) loop as the mmsg
// rung — profiles show a SENDMSG SQE costing ~40% more than a sendmmsg
// slot per datagram, since each SQE pays a full io_uring request
// lifecycle to buy async punting that MSG_DONTWAIT UDP transmit never
// uses. GSO trains flip that economics: one SENDMSG SQE carries up to 64
// segments in one UDP_SEGMENT send, so the request lifecycle amortizes
// below what even sendmmsg charges per datagram, and trains therefore
// ride the ring (payload copied into a slot that stays claimed until the
// CQE). Each direction and shape lands on the primitive that wins it.
//
// Everything is raw syscalls against the standard library only —
// io_uring_setup/io_uring_enter/io_uring_register share one number on
// every 64-bit Linux architecture.

// io_uring syscall numbers (post asm-generic unification, identical on
// amd64 and arm64).
const (
	sysIoUringSetup    = 425
	sysIoUringEnter    = 426
	sysIoUringRegister = 427
)

const (
	opSendmsg = 9  // IORING_OP_SENDMSG
	opRecvmsg = 10 // IORING_OP_RECVMSG

	sqeBufferSelect   = 1 << 5 // IOSQE_BUFFER_SELECT
	ioprioRecvMultish = 1 << 1 // IORING_RECV_MULTISHOT (in sqe.ioprio)

	cqeFBuffer     = 1 << 0 // IORING_CQE_F_BUFFER: flags carry a buffer id
	cqeFMore       = 1 << 1 // IORING_CQE_F_MORE: the multishot is still armed
	cqeBufferShift = 16

	cqEventfdDisabled = 1 << 0 // IORING_CQ_EVENTFD_DISABLED (CQ ring flags)

	enterGetevents = 1 << 0 // IORING_ENTER_GETEVENTS
	enterExtArg    = 1 << 3 // IORING_ENTER_EXT_ARG

	setupCQSize      = 1 << 3 // IORING_SETUP_CQSIZE
	setupClamp       = 1 << 4 // IORING_SETUP_CLAMP
	setupCoopTaskrun = 1 << 8 // IORING_SETUP_COOP_TASKRUN

	featSingleMmap = 1 << 0 // IORING_FEAT_SINGLE_MMAP
	featExtArg     = 1 << 8 // IORING_FEAT_EXT_ARG

	offSQRing = 0
	offCQRing = 0x8000000
	offSQEs   = 0x10000000

	regEventfd    = 4  // IORING_REGISTER_EVENTFD
	unregEventfd  = 5  // IORING_UNREGISTER_EVENTFD
	regPbufRing   = 22 // IORING_REGISTER_PBUF_RING
	unregPbufRing = 23 // IORING_UNREGISTER_PBUF_RING
)

// sqringOffsets / cqringOffsets / uringParams mirror the kernel ABI
// structs io_sqring_offsets, io_cqring_offsets, io_uring_params.
type sqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	flags, dropped, array, resv1      uint32
	userAddr                          uint64
}

type cqringOffsets struct {
	head, tail, ringMask, ringEntries uint32
	overflow, cqes, flags, resv1      uint32
	userAddr                          uint64
}

type uringParams struct {
	sqEntries    uint32
	cqEntries    uint32
	flags        uint32
	sqThreadCPU  uint32
	sqThreadIdle uint32
	features     uint32
	wqFd         uint32
	resv         [3]uint32
	sqOff        sqringOffsets
	cqOff        cqringOffsets
}

// uringSQE is struct io_uring_sqe (64 bytes).
type uringSQE struct {
	opcode      uint8
	flags       uint8
	ioprio      uint16
	fd          int32
	off         uint64
	addr        uint64
	len         uint32
	opFlags     uint32 // msg_flags for SENDMSG/RECVMSG
	userData    uint64
	bufGroup    uint16 // union buf_index / buf_group
	personality uint16
	spliceFdIn  int32
	addr3       uint64
	_pad2       uint64
}

// uringCQE is struct io_uring_cqe (16 bytes).
type uringCQE struct {
	userData uint64
	res      int32
	flags    uint32
}

// uringBuf is struct io_uring_buf (16 bytes); the provided-buffer ring
// is an array of these, with the ring tail overlaid on entry 0's resv
// field (offset 14) per the io_uring_buf_ring union.
type uringBuf struct {
	addr uint64
	len  uint32
	bid  uint16
	resv uint16
}

// uringBufReg is struct io_uring_buf_reg, the IORING_REGISTER_PBUF_RING
// argument.
type uringBufReg struct {
	ringAddr    uint64
	ringEntries uint32
	bgid        uint16
	flags       uint16
	resv        [3]uint64
}

// kernelTimespec / geteventsArg are the IORING_ENTER_EXT_ARG timeout
// argument (struct __kernel_timespec, struct io_uring_getevents_arg).
type kernelTimespec struct{ sec, nsec int64 }

type geteventsArg struct {
	sigmask   uint64
	sigmaskSz uint32
	pad       uint32
	ts        uint64
}

// recvmsgOutSize is sizeof(struct io_uring_recvmsg_out), the header a
// multishot RECVMSG completion writes at the start of its provided
// buffer, ahead of the (reserved-size) source address and the payload.
const recvmsgOutSize = 16

// nameSpace is the per-buffer space reserved for the datagram's source
// sockaddr, fixed at sizeof(struct sockaddr_storage)-ish via
// RawSockaddrAny like the rest of this package.
const nameSpace = int(unsafe.Sizeof(syscall.RawSockaddrAny{}))

// groCtrlSpace is the control-message budget reserved per buffer when
// UDP GRO is active: CMSG_SPACE(sizeof(int)) for the UDP_GRO
// segment-size cmsg, the only control data this conn opts into.
const groCtrlSpace = 24

// pendingRecv is one parsed multishot completion whose provided buffer
// is still claimed; delivery copies the payload out and recycles bid.
// With GRO a completion may be a coalesced train: seg is the segment
// size from the UDP_GRO cmsg (0 = plain datagram) and off tracks how far
// delivery has consumed the payload across ReadBatch calls.
type pendingRecv struct {
	bid uint16
	n   int
	seg int
	off int
	src netip.AddrPort
}

// uringConn is the io_uring BatchConn. The ring carries the receive
// direction and GSO-train sends; plain transmit goes through the
// sendmmsg fast path on its own lock, so ReadBatch and WriteBatch still
// run concurrently (the loadgen splits a conn that way: a dedicated
// receiver plus a sender) — a train send takes the ring mutex only for
// the short stage/submit window, never across a wait. The mutex guards
// all ring state but is never held across a blocking wait — waits
// happen with the lock dropped so Close stays prompt.
type uringConn struct {
	mu sync.Mutex

	pc  net.PacketConn
	rc  syscall.RawConn
	fd  int
	ip4 bool

	ringFd    int
	sqMem     []byte
	cqMem     []byte // aliases sqMem under IORING_FEAT_SINGLE_MMAP
	sqeMem    []byte
	oneMmap   bool
	sqEntries uint32
	cqEntries uint32

	kSQHead *uint32
	kSQTail *uint32
	sqMask  uint32
	sqArray []uint32
	sqes    []uringSQE
	sqTail  uint32 // our cached tail, pushed to *kSQTail on flush

	kCQHead  *uint32
	kCQTail  *uint32
	kCQFlags *uint32 // user-writable: IORING_CQ_EVENTFD_DISABLED
	cqMask   uint32
	cqes     []uringCQE

	// Provided-buffer ring: entries in bufRingMem (page-aligned mmap,
	// registered with the kernel), data buffers in slab. bufTail is our
	// cached tail; the kernel-visible tail lives at bufRingMem[14].
	bufRingMem []byte
	bufEntries []uringBuf
	bufMask    uint16
	bufTail    uint16
	slab       []byte
	bufStride  int
	nBufs      int
	claimed    int // buffers held by pending completions
	fence      atomic.Uint32

	// Receive-side UDP GRO: when on, ctrlSpace bytes of each provided
	// buffer hold the UDP_GRO cmsg and coalesced trains are split back
	// into per-datagram Messages at delivery.
	gro       bool
	ctrlSpace int

	// Multishot recv state. rcvHdr must stay reachable while armed.
	rcvHdr      syscall.Msghdr
	recvArmed   bool
	everArmed   bool
	recvErr     syscall.Errno
	pending     []pendingRecv
	pendingHead int

	// Transmit side: the reusable sendmmsg header vector, locked
	// independently of the ring (mmsgScratch carries its own mutex) so
	// plain sends never contend with the receive path.
	tx  mmsgScratch
	txc txCounters

	// GSO train transmit rides the ring: one SENDMSG SQE per train, its
	// payload copied into a send slot whose buffer, msghdr, iovec,
	// sockaddr and cmsg all stay claimed until the CQE returns the slot
	// to sendFree. The slab is mmap'd (non-GC memory, like the receive
	// slab) because the kernel reads it after WriteBatch returns.
	sendSlab  []byte
	sendHdrs  []syscall.Msghdr
	sendIovs  []syscall.Iovec
	sendNames []syscall.RawSockaddrAny
	sendCtrls []byte
	sendFree  []uint16

	// CQ-ready eventfd, registered with the ring and parked on through
	// the Go netpoller: an idle ReadBatch blocks its goroutine, not an
	// OS thread inside io_uring_enter. That matters enormously when
	// cores are scarce — a thread stuck in a blocking enter pins its P
	// until sysmon retakes it, starving the very peers whose traffic
	// would produce the next completion. evFile is pollable (checked at
	// setup) so read deadlines work; the raw enter wait below is the
	// fallback for kernels where registering the eventfd fails.
	evFile     *os.File
	evPollable bool
	evScratch  [8]byte

	// EXT_ARG wait scratch for the fallback enter-based wait,
	// heap-resident so the pointers inside are stable across the
	// syscall. Only ReadBatch waits (sends complete inline via
	// sendmmsg), so one pair suffices.
	rdTs   kernelTimespec
	rdEarg geteventsArg

	deadline atomic.Int64 // unix nanos; 0 = none
	closed   atomic.Bool
	waiters  atomic.Int32 // threads inside a lockless io_uring_enter wait

	resubmits uint64
	starved   uint64
	sendErrs  atomic.Uint64
	enters    atomic.Uint64
}

// recvTag is the user_data of the multishot RECVMSG; sendTag marks a
// train SENDMSG SQE, with the slot index in the low bits. The two bit
// namespaces cannot collide: a recv CQE's user_data is exactly recvTag.
const (
	recvTag = uint64(1) << 63
	sendTag = uint64(1) << 62
)

// sendSlots bounds the trains in flight on the ring at once; a full
// slot table falls back to an inline GSO sendmmsg, so it is a working
// set, not a limit. sendSlotSize fits the largest legal train.
const (
	sendSlots    = 32
	sendSlotSize = 65536
)

// NewUringConn builds the io_uring BatchConn over pc, which must be a
// real *net.UDPConn. The conn takes ownership: Close tears down the
// ring first and the socket second. The ring serves the receive
// direction (multishot RECVMSG into a provided-buffer ring); WriteBatch
// flushes through the sendmmsg path shared with the mmsg rung, which
// profiles measurably cheaper for inline UDP transmit — see the package
// comment above. On kernels without the needed features it fails with
// an error wrapping ErrUringUnsupported; callers degrade to
// NewBatchConn.
func NewUringConn(pc net.PacketConn, cfg UringConfig) (BatchConn, error) {
	udp, ok := pc.(*net.UDPConn)
	if !ok {
		return nil, fmt.Errorf("netio: uring backend needs a *net.UDPConn, got %T", pc)
	}
	cfg = cfg.withDefaults()
	rc, err := udp.SyscallConn()
	if err != nil {
		return nil, err
	}
	c := &uringConn{pc: pc, rc: rc, ringFd: -1}
	if err := rc.Control(func(fd uintptr) { c.fd = int(fd) }); err != nil {
		return nil, err
	}
	la, _ := udp.LocalAddr().(*net.UDPAddr)
	c.ip4 = la != nil && la.IP.To4() != nil

	// Receive-side GRO: a GSO sender's whole train then arrives as one
	// coalesced completion (one poll wake, one CQE, one copy) instead of
	// one per datagram; deliver splits it back up using the UDP_GRO
	// cmsg. Kernels without UDP_GRO just leave it off.
	if !cfg.DisableGRO && syscall.SetsockoptInt(c.fd, solUDP, udpGRO, 1) == nil {
		c.gro = true
		c.ctrlSpace = groCtrlSpace
	}

	ok = false
	defer func() {
		if !ok {
			c.teardown()
		}
	}()

	// COOP_TASKRUN defers completion task-work to the ring owner's next
	// enter instead of interrupting it per datagram — a measurable win
	// when cores are scarce; pre-5.19 kernels reject it, so retry bare.
	setupFlags := uint32(setupClamp | setupCQSize | setupCoopTaskrun)
	var p uringParams
	for {
		// CQ must absorb a completion per provided buffer, with
		// headroom, or the multishot overflows between reaps.
		p = uringParams{flags: setupFlags, cqEntries: uint32(2 * (cfg.Buffers + cfg.Entries))}
		rfd, _, errno := syscall.Syscall(sysIoUringSetup, uintptr(cfg.Entries), uintptr(unsafe.Pointer(&p)), 0)
		if errno == syscall.EINVAL && setupFlags&setupCoopTaskrun != 0 {
			setupFlags &^= setupCoopTaskrun
			continue
		}
		if errno != 0 {
			return nil, fmt.Errorf("%w: io_uring_setup: %v", ErrUringUnsupported, errno)
		}
		c.ringFd = int(rfd)
		break
	}
	if p.features&featExtArg == 0 {
		return nil, fmt.Errorf("%w: no IORING_FEAT_EXT_ARG", ErrUringUnsupported)
	}
	c.sqEntries, c.cqEntries = p.sqEntries, p.cqEntries

	sqSize := int(p.sqOff.array) + int(p.sqEntries)*4
	cqSize := int(p.cqOff.cqes) + int(p.cqEntries)*int(unsafe.Sizeof(uringCQE{}))
	c.oneMmap = p.features&featSingleMmap != 0
	if c.oneMmap {
		size := max(sqSize, cqSize)
		mem, err := syscall.Mmap(c.ringFd, offSQRing, size,
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
		if err != nil {
			return nil, fmt.Errorf("netio: uring sq/cq mmap: %w", err)
		}
		c.sqMem, c.cqMem = mem, mem
	} else {
		if c.sqMem, err = syscall.Mmap(c.ringFd, offSQRing, sqSize,
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE); err != nil {
			return nil, fmt.Errorf("netio: uring sq mmap: %w", err)
		}
		if c.cqMem, err = syscall.Mmap(c.ringFd, offCQRing, cqSize,
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE); err != nil {
			return nil, fmt.Errorf("netio: uring cq mmap: %w", err)
		}
	}
	if c.sqeMem, err = syscall.Mmap(c.ringFd, offSQEs, int(p.sqEntries)*int(unsafe.Sizeof(uringSQE{})),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE); err != nil {
		return nil, fmt.Errorf("netio: uring sqe mmap: %w", err)
	}

	c.kSQHead = (*uint32)(unsafe.Pointer(&c.sqMem[p.sqOff.head]))
	c.kSQTail = (*uint32)(unsafe.Pointer(&c.sqMem[p.sqOff.tail]))
	c.sqMask = *(*uint32)(unsafe.Pointer(&c.sqMem[p.sqOff.ringMask]))
	c.sqArray = unsafe.Slice((*uint32)(unsafe.Pointer(&c.sqMem[p.sqOff.array])), p.sqEntries)
	c.sqes = unsafe.Slice((*uringSQE)(unsafe.Pointer(&c.sqeMem[0])), p.sqEntries)
	for i := range c.sqArray {
		c.sqArray[i] = uint32(i) // identity map: slot i submits sqes[i]
	}
	c.sqTail = atomic.LoadUint32(c.kSQTail)

	c.kCQHead = (*uint32)(unsafe.Pointer(&c.cqMem[p.cqOff.head]))
	c.kCQTail = (*uint32)(unsafe.Pointer(&c.cqMem[p.cqOff.tail]))
	c.kCQFlags = (*uint32)(unsafe.Pointer(&c.cqMem[p.cqOff.flags]))
	c.cqMask = *(*uint32)(unsafe.Pointer(&c.cqMem[p.cqOff.ringMask]))
	c.cqes = unsafe.Slice((*uringCQE)(unsafe.Pointer(&c.cqMem[p.cqOff.cqes])), p.cqEntries)

	if err := c.setupBufRing(cfg); err != nil {
		return nil, err
	}
	if err := c.setupSendSlots(); err != nil {
		return nil, err
	}
	c.setupEventfd()

	// Arm the multishot receive and hand it to the kernel now, so the
	// first ReadBatch starts with the socket already being drained. The
	// msghdr is a template: Namelen/Controllen are per-buffer budgets
	// carved out of each provided buffer, not userspace pointers.
	c.rcvHdr = syscall.Msghdr{Namelen: uint32(nameSpace), Controllen: uint64(c.ctrlSpace)}
	if err := c.armRecv(); err != nil {
		return nil, err
	}
	if err := c.submit(); err != nil {
		return nil, fmt.Errorf("%w: arming multishot recvmsg: %v", ErrUringUnsupported, err)
	}
	ok = true
	return c, nil
}

func (c *uringConn) setupBufRing(cfg UringConfig) error {
	n := cfg.Buffers
	ringBytes := (n*int(unsafe.Sizeof(uringBuf{})) + syscall.Getpagesize() - 1) &^ (syscall.Getpagesize() - 1)
	mem, err := syscall.Mmap(-1, 0, ringBytes,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_ANONYMOUS|syscall.MAP_PRIVATE)
	if err != nil {
		return fmt.Errorf("netio: uring buf-ring mmap: %w", err)
	}
	c.bufRingMem = mem
	reg := uringBufReg{
		ringAddr:    uint64(uintptr(unsafe.Pointer(&mem[0]))),
		ringEntries: uint32(n),
		bgid:        0,
	}
	if _, _, errno := syscall.Syscall6(sysIoUringRegister, uintptr(c.ringFd),
		regPbufRing, uintptr(unsafe.Pointer(&reg)), 1, 0, 0); errno != 0 {
		return fmt.Errorf("%w: IORING_REGISTER_PBUF_RING: %v", ErrUringUnsupported, errno)
	}
	c.bufEntries = unsafe.Slice((*uringBuf)(unsafe.Pointer(&mem[0])), n)
	c.bufMask = uint16(n - 1)
	c.nBufs = n
	c.bufStride = recvmsgOutSize + nameSpace + c.ctrlSpace + cfg.BufSize
	slab, err := syscall.Mmap(-1, 0, n*c.bufStride,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_ANONYMOUS|syscall.MAP_PRIVATE)
	if err != nil {
		return fmt.Errorf("netio: uring buffer slab mmap: %w", err)
	}
	c.slab = slab
	for i := 0; i < n; i++ {
		c.provideBuf(uint16(i))
	}
	c.publishBufTail()
	return nil
}

// setupSendSlots builds the train-transmit slot table. The payload slab
// is mmap'd so untouched slots cost no physical pages and the memory
// outlives the Go references the kernel cannot see; the header arrays
// are ordinary heap slices pinned by the conn, exactly like rcvHdr.
func (c *uringConn) setupSendSlots() error {
	slab, err := syscall.Mmap(-1, 0, sendSlots*sendSlotSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_ANONYMOUS|syscall.MAP_PRIVATE)
	if err != nil {
		return fmt.Errorf("netio: uring send slab mmap: %w", err)
	}
	c.sendSlab = slab
	c.sendHdrs = make([]syscall.Msghdr, sendSlots)
	c.sendIovs = make([]syscall.Iovec, sendSlots)
	c.sendNames = make([]syscall.RawSockaddrAny, sendSlots)
	c.sendCtrls = make([]byte, sendSlots*gsoCtrlSpace)
	c.sendFree = make([]uint16, sendSlots)
	for i := range c.sendFree {
		c.sendFree[i] = uint16(i)
	}
	return nil
}

// provideBuf stages buffer bid at the ring tail; publishBufTail makes
// the staged entries visible to the kernel. Only addr/len/bid are
// written — entry 0's resv field doubles as the ring tail and must
// never be touched by an add.
func (c *uringConn) provideBuf(bid uint16) {
	e := &c.bufEntries[c.bufTail&c.bufMask]
	e.addr = uint64(uintptr(unsafe.Pointer(&c.slab[int(bid)*c.bufStride])))
	e.len = uint32(c.bufStride)
	e.bid = bid
	c.bufTail++
}

// publishBufTail store-releases the buffer-ring tail. sync/atomic has
// no 16-bit store, and the tail straddles no 4-byte boundary we could
// widen, so order the entry writes ahead of the plain tail store with a
// full RMW barrier (LOCK XADD / LDADDAL are two-way fences on the
// architectures this file builds for).
func (c *uringConn) publishBufTail() {
	c.fence.Add(0)
	*(*uint16)(unsafe.Pointer(&c.bufRingMem[14])) = c.bufTail
}

// setupEventfd registers a nonblocking eventfd as the ring's CQ-ready
// notifier and wraps it in an os.File, which the runtime adds to the
// netpoller (eventfds are pollable). ReadBatch then waits for
// completions the way every other conn in this package waits for the
// socket: goroutine parked, OS thread and P free. Failure is not fatal
// — ReadBatch falls back to bounded io_uring_enter waits.
func (c *uringConn) setupEventfd() {
	efd, _, errno := syscall.Syscall(sysEventfd2, 0,
		uintptr(syscall.O_NONBLOCK|syscall.O_CLOEXEC), 0)
	if errno != 0 {
		return
	}
	fd32 := int32(efd)
	if _, _, errno := syscall.Syscall6(sysIoUringRegister, uintptr(c.ringFd),
		regEventfd, uintptr(unsafe.Pointer(&fd32)), 1, 0, 0); errno != 0 {
		_ = syscall.Close(int(efd))
		return
	}
	f := os.NewFile(efd, "uring-cq-eventfd")
	// Pollability check: deadlines only work when the runtime actually
	// registered the fd with the netpoller.
	if f.SetReadDeadline(time.Time{}) != nil {
		_, _, _ = syscall.Syscall6(sysIoUringRegister, uintptr(c.ringFd),
			unregEventfd, 0, 0, 0, 0)
		_ = f.Close()
		return
	}
	c.evFile = f
	c.evPollable = true
	// Signal suppression (the NAPI trick): keep the eventfd quiet while
	// the reader is actively draining, so senders don't pay a wakeup per
	// datagram; ReadBatch re-enables it only on the edge of parking.
	atomic.StoreUint32(c.kCQFlags, cqEventfdDisabled)
}

// nextSQE claims the next submission slot, flushing to the kernel first
// when the ring is full.
func (c *uringConn) nextSQE() (*uringSQE, error) {
	for c.sqTail-atomic.LoadUint32(c.kSQHead) >= c.sqEntries {
		if err := c.submit(); err != nil {
			return nil, err
		}
	}
	sqe := &c.sqes[c.sqTail&c.sqMask]
	*sqe = uringSQE{}
	c.sqTail++
	return sqe, nil
}

// armRecv queues the multishot RECVMSG SQE. The actual submission
// happens at the next submit/enterWait.
func (c *uringConn) armRecv() error {
	sqe, err := c.nextSQE()
	if err != nil {
		return err
	}
	sqe.opcode = opRecvmsg
	sqe.flags = sqeBufferSelect
	sqe.ioprio = ioprioRecvMultish
	sqe.fd = int32(c.fd)
	sqe.addr = uint64(uintptr(unsafe.Pointer(&c.rcvHdr)))
	sqe.len = 1
	sqe.bufGroup = 0
	sqe.userData = recvTag
	c.recvArmed = true
	if c.everArmed {
		c.resubmits++
	}
	c.everArmed = true
	return nil
}

// toSubmit derives the unsubmitted SQE count from the ring itself, so a
// partially-consumed submission (EINTR mid-enter) self-corrects.
func (c *uringConn) toSubmit() uint32 {
	return c.sqTail - atomic.LoadUint32(c.kSQHead)
}

// submit pushes queued SQEs to the kernel without waiting.
func (c *uringConn) submit() error {
	atomic.StoreUint32(c.kSQTail, c.sqTail)
	for {
		n := c.toSubmit()
		if n == 0 {
			return nil
		}
		c.enters.Add(1)
		_, _, errno := syscall.Syscall6(sysIoUringEnter, uintptr(c.ringFd),
			uintptr(n), 0, 0, 0, 0)
		switch errno {
		case 0:
			return nil
		case syscall.EINTR:
			continue
		case syscall.EBUSY:
			// CQ is saturated; reap and retry.
			c.reap()
			continue
		default:
			return fmt.Errorf("netio: io_uring_enter(submit): %v", errno)
		}
	}
}

// waitCQE waits up to d for one completion WITHOUT holding c.mu and
// without submitting (callers flush queued SQEs under the lock first).
// ts/earg must be the calling site's dedicated scratch pair so the
// reader and the writer can wait concurrently. It returns
// syscall.ETIME when the wait expires. The waiter count keeps Close
// from tearing the ring down while a thread is inside the syscall.
func (c *uringConn) waitCQE(ts *kernelTimespec, earg *geteventsArg, d time.Duration) syscall.Errno {
	if d < 0 {
		d = 0
	}
	ts.sec = int64(d / time.Second)
	ts.nsec = int64(d % time.Second)
	*earg = geteventsArg{ts: uint64(uintptr(unsafe.Pointer(ts)))}
	c.waiters.Add(1)
	defer c.waiters.Add(-1)
	if c.closed.Load() {
		// Close is (or was) draining waiters; don't enter on a ring fd
		// that may already be gone.
		return syscall.ETIME
	}
	c.enters.Add(1)
	_, _, errno := syscall.Syscall6(sysIoUringEnter, uintptr(c.ringFd),
		0, 1, enterGetevents|enterExtArg,
		uintptr(unsafe.Pointer(earg)), uintptr(unsafe.Sizeof(*earg)))
	return errno
}

// reap drains the completion queue: multishot receives are parsed into
// pending (their provided buffer stays claimed until delivery), train
// send completions release their slot and account errors. Anything else
// is skipped defensively.
func (c *uringConn) reap() {
	head := atomic.LoadUint32(c.kCQHead)
	tail := atomic.LoadUint32(c.kCQTail)
	for ; head != tail; head++ {
		cqe := c.cqes[head&c.cqMask]
		switch {
		case cqe.userData == recvTag:
			c.reapRecv(&cqe)
		case cqe.userData&sendTag != 0:
			c.reapSend(&cqe)
		}
	}
	atomic.StoreUint32(c.kCQHead, head)
}

// reapSend retires one train SENDMSG completion: the slot (buffer,
// msghdr, cmsg) was claimed since submission and is free again only
// now. Errors are counted, not returned — the send already succeeded
// from the caller's point of view, matching UDP's fire-and-forget
// contract (and the mmsg rung's own error accounting).
func (c *uringConn) reapSend(cqe *uringCQE) {
	slot := uint16(cqe.userData &^ sendTag)
	if int(slot) < sendSlots {
		c.sendFree = append(c.sendFree, slot)
	}
	if cqe.res < 0 {
		c.sendErrs.Add(1)
	}
}

func (c *uringConn) reapRecv(cqe *uringCQE) {
	if cqe.flags&cqeFMore == 0 {
		c.recvArmed = false
	}
	if cqe.res < 0 {
		errno := syscall.Errno(-cqe.res)
		switch errno {
		case syscall.ENOBUFS:
			// The consumer fell a whole buffer ring behind; re-armed
			// once buffers are recycled.
			c.starved++
		case syscall.EINTR, syscall.EAGAIN:
			// Transient; the rearm in ReadBatch retries.
		default:
			c.recvErr = errno
		}
		return
	}
	if cqe.flags&cqeFBuffer == 0 {
		return // defensive: a data CQE without a buffer id carries nothing
	}
	bid := uint16(cqe.flags >> cqeBufferShift)
	base := c.slab[int(bid)*c.bufStride:]
	payloadLen := int(binary.LittleEndian.Uint32(base[8:]))
	payloadOff := recvmsgOutSize + nameSpace + c.ctrlSpace
	if payloadLen > c.bufStride-payloadOff {
		payloadLen = c.bufStride - payloadOff // truncated oversize datagram
	}
	seg := 0
	if controllen := int(binary.LittleEndian.Uint32(base[4:])); controllen > 0 {
		seg = parseGROSegSize(base[recvmsgOutSize+nameSpace : recvmsgOutSize+nameSpace+min(controllen, c.ctrlSpace)])
	}
	src := sockaddrToAddrPort((*syscall.RawSockaddrAny)(unsafe.Pointer(&base[recvmsgOutSize])))
	c.pending = append(c.pending, pendingRecv{bid: bid, n: payloadLen, seg: seg, src: src})
	c.claimed++
}

// parseGROSegSize walks the control region of a completion for the
// UDP_GRO cmsg and returns its segment size (0 when absent: the payload
// is one plain datagram). Layout per struct cmsghdr: u64 len, i32
// level, i32 type, data, 8-byte aligned.
func parseGROSegSize(ctrl []byte) int {
	for len(ctrl) >= 16 {
		clen := int(binary.LittleEndian.Uint64(ctrl))
		if clen < 16 || clen > len(ctrl) {
			return 0
		}
		level := int32(binary.LittleEndian.Uint32(ctrl[8:]))
		typ := int32(binary.LittleEndian.Uint32(ctrl[12:]))
		if level == solUDP && typ == udpGRO && clen >= 20 {
			return int(int32(binary.LittleEndian.Uint32(ctrl[16:])))
		}
		adv := (clen + 7) &^ 7
		if adv <= 0 || adv > len(ctrl) {
			return 0
		}
		ctrl = ctrl[adv:]
	}
	return 0
}

// deliver copies parsed completions into ms, recycling each provided
// buffer as it goes, and returns the count. A GRO-coalesced completion
// fans out into one Message per segment — the caller sees exactly the
// datagrams the sender's GSO train carried; when ms fills mid-train the
// remainder stays pending (its buffer claimed) for the next call.
func (c *uringConn) deliver(ms []Message) int {
	n := 0
	for n < len(ms) && c.pendingHead < len(c.pending) {
		p := &c.pending[c.pendingHead]
		base := c.slab[int(p.bid)*c.bufStride+recvmsgOutSize+nameSpace+c.ctrlSpace:]
		seg := p.seg
		if seg <= 0 || seg > p.n {
			seg = p.n
		}
		if p.n == 0 { // zero-length datagram: deliver one empty message
			ms[n].N = 0
			ms[n].Src = p.src
			n++
		}
		for n < len(ms) && p.off < p.n {
			end := min(p.off+seg, p.n)
			m := &ms[n]
			m.N = copy(m.Buf, base[p.off:end])
			m.Src = p.src
			p.off = end
			n++
		}
		if p.off < p.n {
			break // ms filled mid-train; resume here next call
		}
		c.pendingHead++
		c.provideBuf(p.bid)
		c.claimed--
	}
	if c.pendingHead == len(c.pending) {
		c.pending = c.pending[:0]
		c.pendingHead = 0
	}
	if n > 0 {
		c.publishBufTail()
	}
	return n
}

// readSpins bounds the yield-and-peek passes an empty ReadBatch makes
// before parking on the eventfd. Parking re-enables per-completion
// eventfd signals, so under sustained load a couple of scheduler yields
// (letting producers run, then peeking the CQ) are far cheaper than the
// park/wake cycle they avoid.
//
// Tuned on the DNS reply loop (BenchmarkLoopbackUringDNS, 4 shards,
// 16 windowed clients), where the uring rung trailed mmsg in the
// BENCH_7 snapshot (260 vs 277 kpps): 4 spins ~285 kpps, 8 ~294, 16
// ~293, 32 ~282 on the same rig. 8 recovers most of the gap — the
// window's last few replies land within the longer peek budget instead
// of paying a park/wake — and doubling again only burns CPU the shard
// workers want.
const readSpins = 8

func (c *uringConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	spins := 0
	for {
		if c.closed.Load() {
			return 0, net.ErrClosed
		}
		c.mu.Lock()
		if c.closed.Load() {
			// Close won the race while we were waiting for the lock; the
			// ring memory is gone.
			c.mu.Unlock()
			return 0, net.ErrClosed
		}
		if c.evPollable {
			// Actively draining: suppress eventfd signals so senders
			// don't pay a wakeup per datagram they complete into the CQ.
			atomic.StoreUint32(c.kCQFlags, cqEventfdDisabled)
		}
		c.reap()
		if c.recvErr != 0 {
			err := c.recvErr
			c.recvErr = 0
			_ = c.rearmIfPossible()
			c.mu.Unlock()
			return 0, err
		}
		if c.pendingHead < len(c.pending) {
			n := c.deliver(ms)
			// Recycling may have made a starved multishot armable again;
			// queue and push it before handing data back. An arm error
			// resurfaces on the next call — data first.
			_ = c.rearmIfPossible()
			c.mu.Unlock()
			return n, nil
		}
		err := c.rearmIfPossible()
		if err == nil && spins < readSpins {
			// Before committing to a park, yield the processor and ask the
			// kernel to run deferred completion work (a zero-wait enter).
			// Under load the next batch is already in the socket and this
			// finds it without ever re-enabling eventfd signals — parking
			// is what makes every sender pay a wakeup per datagram until
			// the reader runs again.
			spins++
			c.mu.Unlock()
			runtime.Gosched()
			c.peekCQ()
			continue
		}
		if err == nil && c.evPollable {
			// About to park: re-enable eventfd signals, then reap once
			// more — a completion posted between the last reap and the
			// enable produced no signal and would otherwise be slept on.
			atomic.StoreUint32(c.kCQFlags, 0)
			c.reap()
			if c.pendingHead < len(c.pending) || c.recvErr != 0 {
				c.mu.Unlock()
				continue // deliver (or surface the error) on the next pass
			}
		}
		c.mu.Unlock()
		if err != nil {
			return 0, err
		}
		// Nothing pending: wait with the lock dropped, bounded by the
		// read deadline (or a housekeeping tick, so Close and deadline
		// changes are honored even with no traffic). The preferred wait
		// parks this goroutine on the CQ eventfd via the netpoller; the
		// fallback blocks a thread in io_uring_enter.
		wait := 50 * time.Millisecond
		if dl := c.deadline.Load(); dl != 0 {
			remaining := time.Until(time.Unix(0, dl))
			if remaining <= 0 {
				return 0, os.ErrDeadlineExceeded
			}
			wait = min(wait, remaining)
		}
		if c.evPollable {
			if err := c.waitEventfd(wait); err != nil {
				return 0, err
			}
			continue
		}
		switch errno := c.waitCQE(&c.rdTs, &c.rdEarg, wait); errno {
		case 0, syscall.ETIME, syscall.EINTR, syscall.EBUSY:
			// Loop: reap whatever arrived, then re-check the deadline.
		default:
			return 0, fmt.Errorf("netio: io_uring_enter(wait): %v", errno)
		}
	}
}

// peekCQ makes the kernel run deferred completion work without waiting:
// a zero-wait GETEVENTS enter processes the task work that copies
// already-delivered datagrams into provided buffers and posts their
// CQEs. The waiter count keeps Close from tearing the ring down under
// the syscall.
func (c *uringConn) peekCQ() {
	c.waiters.Add(1)
	defer c.waiters.Add(-1)
	if c.closed.Load() {
		return
	}
	c.enters.Add(1)
	_, _, _ = syscall.Syscall6(sysIoUringEnter, uintptr(c.ringFd),
		0, 0, enterGetevents, 0, 0)
}

// waitEventfd parks the reader on the CQ eventfd for up to d. A
// successful read just clears the counter — the caller loops and reaps;
// a timeout is equally a normal wakeup (the caller re-checks its
// deadline). Close closes the eventfd, which surfaces here as ErrClosed
// and is folded into the closed check at the top of the read loop.
func (c *uringConn) waitEventfd(d time.Duration) error {
	if err := c.evFile.SetReadDeadline(time.Now().Add(d)); err != nil {
		return err
	}
	_, err := c.evFile.Read(c.evScratch[:])
	if err == nil || os.IsTimeout(err) || errors.Is(err, os.ErrClosed) || errors.Is(err, syscall.EINTR) {
		return nil
	}
	return err
}

// rearmIfPossible re-queues the multishot receive if it terminated and
// at least one provided buffer is free, then submits.
func (c *uringConn) rearmIfPossible() error {
	if c.recvArmed || c.claimed >= c.nBufs {
		return nil
	}
	if err := c.armRecv(); err != nil {
		return err
	}
	return c.submit()
}

// WriteBatch transmits plain datagrams via the shared sendmmsg path —
// the primitive profiles show cheapest for inline per-datagram UDP —
// and GSO trains as SENDMSG SQEs, where one SQE's request lifecycle is
// amortized over up to 64 segments and flips that economics. Train
// payloads are copied into ring-owned send slots, so the caller's
// buffers are free the moment WriteBatch returns while each slot stays
// claimed until its CQE. Runs of plain messages around a train flush
// before the train is staged, keeping submission order aligned with the
// caller's message order.
func (c *uringConn) WriteBatch(ms []Message) (int, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	sent, staged := 0, 0
	for i := 0; i < len(ms); {
		if !ringTrain(&ms[i]) {
			j := i + 1
			for j < len(ms) && !ringTrain(&ms[j]) {
				j++
			}
			n, err := writeBatchGSO(c.rc, &c.tx, &c.txc, ms[i:j], c.ip4)
			sent += n
			if err != nil {
				if staged > 0 {
					c.flushSends()
				}
				c.sendErrs.Add(1)
				return sent, err
			}
			i = j
			continue
		}
		if c.stageTrain(&ms[i]) {
			staged++
			sent++
		} else {
			// Every send slot is in flight even after a reap: send this
			// train inline, still as one GSO datagram burst. Flush the
			// staged SQEs first so same-destination order holds.
			if staged > 0 {
				c.flushSends()
				staged = 0
			}
			n, err := writeBatchGSO(c.rc, &c.tx, &c.txc, ms[i:i+1], c.ip4)
			sent += n
			if err != nil {
				c.sendErrs.Add(1)
				return sent, err
			}
		}
		i++
	}
	if staged > 0 {
		c.flushSends()
	}
	return sent, nil
}

// ringTrain reports whether m should ride the ring: a GSO train that
// fits a send slot.
func ringTrain(m *Message) bool {
	return m.SegSize > 0 && m.SegSize < m.N && m.N <= sendSlotSize
}

// stageTrain claims a send slot, copies the train in and queues its
// SENDMSG SQE (submitted by flushSends). false means no slot was free
// even after a reap.
func (c *uringConn) stageTrain(m *Message) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.sendFree) == 0 {
		c.reap()
		if len(c.sendFree) == 0 {
			return false
		}
	}
	slot := c.sendFree[len(c.sendFree)-1]
	buf := c.sendSlab[int(slot)*sendSlotSize:][:sendSlotSize]
	n := copy(buf, m.Buf[:m.N])
	iov := &c.sendIovs[slot]
	iov.Base = &buf[0]
	iov.SetLen(n)
	hdr := &c.sendHdrs[slot]
	*hdr = syscall.Msghdr{Iov: iov}
	hdr.Iovlen = 1
	if m.Src.IsValid() {
		hdr.Name = (*byte)(unsafe.Pointer(&c.sendNames[slot]))
		hdr.Namelen = putSockaddr(&c.sendNames[slot], m.Src, c.ip4)
	}
	ctrl := c.sendCtrls[int(slot)*gsoCtrlSpace : (int(slot)+1)*gsoCtrlSpace]
	putGSOControl(ctrl, uint16(m.SegSize))
	hdr.Control = &ctrl[0]
	hdr.SetControllen(gsoCtrlSpace)
	sqe, err := c.nextSQE()
	if err != nil {
		return false
	}
	c.sendFree = c.sendFree[:len(c.sendFree)-1]
	sqe.opcode = opSendmsg
	sqe.fd = int32(c.fd)
	sqe.addr = uint64(uintptr(unsafe.Pointer(hdr)))
	sqe.len = 1
	sqe.userData = sendTag | uint64(slot)
	c.txc.trains.Add(1)
	c.txc.trainSegs.Add(uint64(m.Segments()))
	c.txc.ringSends.Add(1)
	return true
}

// flushSends pushes queued train SQEs to the kernel.
func (c *uringConn) flushSends() {
	c.mu.Lock()
	_ = c.submit()
	c.mu.Unlock()
}

// TxStats implements TxStatser.
func (c *uringConn) TxStats() TxStats { return c.txc.snapshot() }

func (c *uringConn) SetReadDeadline(t time.Time) error {
	if t.IsZero() {
		c.deadline.Store(0)
		return nil
	}
	c.deadline.Store(t.UnixNano())
	return nil
}

func (c *uringConn) LocalAddr() net.Addr { return c.pc.LocalAddr() }

// Backend names the transport rung for stats and logs.
func (c *uringConn) Backend() string { return "uring" }

// Stats snapshots the ring telemetry. Callers hold no lock; the
// counters are maintained under the conn mutex, so a snapshot taken
// mid-call may be one datagram stale, which is fine for telemetry.
func (c *uringConn) Stats() UringStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return UringStats{
		RingEntries: int(c.sqEntries),
		BufRingSize: c.nBufs,
		GRO:         c.gro,
		Resubmits:   c.resubmits,
		Starved:     c.starved,
		SendErrors:  c.sendErrs.Load(),
		Enters:      c.enters.Load(),
	}
}

func (c *uringConn) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Wake a reader parked on the CQ eventfd (its Read fails with
	// ErrClosed and the loop observes closed), then drain lockless
	// enter-waiters: their io_uring_enter holds the (still open) ring fd
	// and wakes within one bounded tick; a fresh waiter sees closed and
	// never enters.
	if c.evFile != nil {
		_ = c.evFile.Close()
	}
	for c.waiters.Load() != 0 {
		time.Sleep(time.Millisecond)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.teardown()
	return nil
}

// teardown releases ring resources and the socket; safe on a partially
// constructed conn. evFile is closed but never nilled: a late reader
// racing into waitEventfd must find a (closed) file, not a nil pointer,
// and os.File tolerates both the double close and post-close reads.
func (c *uringConn) teardown() {
	if c.evFile != nil {
		_ = c.evFile.Close()
	}
	if c.ringFd >= 0 {
		// Closing the ring cancels the multishot and drops the pbuf
		// ring registration with it.
		_ = syscall.Close(c.ringFd)
		c.ringFd = -1
	}
	if c.sqeMem != nil {
		_ = syscall.Munmap(c.sqeMem)
		c.sqeMem = nil
	}
	if c.cqMem != nil && !c.oneMmap {
		_ = syscall.Munmap(c.cqMem)
	}
	c.cqMem = nil
	if c.sqMem != nil {
		_ = syscall.Munmap(c.sqMem)
		c.sqMem = nil
	}
	if c.bufRingMem != nil {
		_ = syscall.Munmap(c.bufRingMem)
		c.bufRingMem = nil
	}
	if c.slab != nil {
		_ = syscall.Munmap(c.slab)
		c.slab = nil
	}
	if c.sendSlab != nil {
		_ = syscall.Munmap(c.sendSlab)
		c.sendSlab = nil
	}
	if c.pc != nil {
		_ = c.pc.Close()
	}
}

func probeUring() error {
	if forceFallback {
		return fmt.Errorf("%w: netio_fallback build", ErrUringUnsupported)
	}
	pc, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("netio: uring probe socket: %w", err)
	}
	uc, err := NewUringConn(pc, UringConfig{Entries: 8, Buffers: 8, BufSize: 2048})
	if err != nil {
		_ = pc.Close()
		return err
	}
	defer uc.Close()
	self, ok := AddrPortOf(pc.LocalAddr())
	if !ok {
		return fmt.Errorf("netio: uring probe: unusable local addr %v", pc.LocalAddr())
	}
	payload := []byte("uring-probe")
	if _, err := uc.WriteBatch([]Message{{Buf: payload, N: len(payload), Src: self}}); err != nil {
		return fmt.Errorf("%w: probe send: %v", ErrUringUnsupported, err)
	}
	if err := uc.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		return err
	}
	ms := []Message{{Buf: make([]byte, 64)}}
	n, err := uc.ReadBatch(ms)
	if err != nil || n != 1 || string(ms[0].Buf[:ms[0].N]) != string(payload) {
		return fmt.Errorf("%w: probe roundtrip failed (n=%d, err=%v)", ErrUringUnsupported, n, err)
	}
	return nil
}
