//go:build !(linux && (amd64 || arm64))

package netio

import "net"

// newMmsgConn has no implementation here (non-Linux, or a Linux arch we
// did not enumerate syscall numbers for): every conn takes the portable
// single-datagram fallback.
func newMmsgConn(net.PacketConn) BatchConn { return nil }
