//go:build linux && (amd64 || arm64)

package netio

import (
	"net"
	"net/netip"
	"sync"
	"syscall"
	"time"
	"unsafe"
)

// mmsghdr mirrors the kernel's struct mmsghdr. The compiler inserts the
// same trailing padding C does (msg_len rounds the struct up to msghdr's
// alignment), so a []mmsghdr is laid out exactly like the kernel vector.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
}

// mmsgScratch is the reusable header/iovec/sockaddr vector behind one
// direction of an mmsgConn. Each shard owns its conn so the mutex is
// uncontended; it only guards against misuse from multiple goroutines.
type mmsgScratch struct {
	mu    sync.Mutex
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrAny
	// ctrls holds one gsoCtrlSpace-byte control buffer per slot, used
	// only by messages marked as GSO trains.
	ctrls []byte
}

func (s *mmsgScratch) ensure(n int) {
	if cap(s.hdrs) < n {
		s.hdrs = make([]mmsghdr, n)
		s.iovs = make([]syscall.Iovec, n)
		s.names = make([]syscall.RawSockaddrAny, n)
		s.ctrls = make([]byte, n*gsoCtrlSpace)
	}
	s.hdrs = s.hdrs[:n]
	s.iovs = s.iovs[:n]
	s.names = s.names[:n]
	s.ctrls = s.ctrls[:n*gsoCtrlSpace]
}

// mmsgConn is the Linux BatchConn: recvmmsg/sendmmsg with MSG_DONTWAIT
// inside syscall.RawConn callbacks, so the runtime netpoller still parks
// the goroutine on EAGAIN and read deadlines behave exactly like
// net.UDPConn's.
type mmsgConn struct {
	udp *net.UDPConn
	rc  syscall.RawConn
	ip4 bool // socket family: true when bound to an IPv4 address
	rx  mmsgScratch
	tx  mmsgScratch
	txc txCounters
}

// newMmsgConn returns the recvmmsg/sendmmsg implementation when pc is a
// real UDP socket, nil otherwise (the caller falls back).
func newMmsgConn(pc net.PacketConn) BatchConn {
	udp, ok := pc.(*net.UDPConn)
	if !ok {
		return nil
	}
	rc, err := udp.SyscallConn()
	if err != nil {
		return nil
	}
	la, _ := udp.LocalAddr().(*net.UDPAddr)
	return &mmsgConn{udp: udp, rc: rc, ip4: la != nil && la.IP.To4() != nil}
}

func (c *mmsgConn) LocalAddr() net.Addr               { return c.udp.LocalAddr() }
func (c *mmsgConn) Close() error                      { return c.udp.Close() }
func (c *mmsgConn) SetReadDeadline(t time.Time) error { return c.udp.SetReadDeadline(t) }

// Backend names the transport rung for stats and logs.
func (c *mmsgConn) Backend() string { return "mmsg" }

func (c *mmsgConn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	c.rx.mu.Lock()
	defer c.rx.mu.Unlock()
	c.rx.ensure(len(ms))
	for i := range ms {
		iov := &c.rx.iovs[i]
		iov.Base = &ms[i].Buf[0]
		iov.SetLen(len(ms[i].Buf))
		h := &c.rx.hdrs[i]
		h.hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&c.rx.names[i])),
			Namelen: uint32(unsafe.Sizeof(c.rx.names[i])),
			Iov:     iov,
		}
		h.hdr.Iovlen = 1
		h.n = 0
	}
	var n int
	var operr syscall.Errno
	err := c.rc.Read(func(fd uintptr) bool {
		for {
			r, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&c.rx.hdrs[0])), uintptr(len(ms)),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch errno {
			case 0:
				n = int(r)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park in the netpoller until readable
			default:
				operr = errno
				return true
			}
		}
	})
	if err != nil {
		return 0, err
	}
	if operr != 0 {
		return 0, operr
	}
	for i := 0; i < n; i++ {
		ms[i].N = int(c.rx.hdrs[i].n)
		ms[i].Src = sockaddrToAddrPort(&c.rx.names[i])
	}
	return n, nil
}

func (c *mmsgConn) WriteBatch(ms []Message) (int, error) {
	return writeBatchGSO(c.rc, &c.tx, &c.txc, ms, c.ip4)
}

// TxStats implements TxStatser.
func (c *mmsgConn) TxStats() TxStats { return c.txc.snapshot() }

// writeBatchGSO is the transmit entry shared by the mmsg rung and the
// uring rung's inline side: sendmmsg with a UDP_SEGMENT cmsg on each
// train message, plus a graceful per-datagram retry when the kernel
// rejects one specific train (st records what actually happened, so a
// fallback never masquerades as a coalesced send).
func writeBatchGSO(rc syscall.RawConn, tx *mmsgScratch, st *txCounters, ms []Message, ip4 bool) (int, error) {
	sent := 0
	for sent < len(ms) {
		n, err := sendmmsgBatch(rc, tx, ms[sent:], ip4)
		countTrains(st, ms[sent:sent+n])
		sent += n
		if err == nil {
			return sent, nil
		}
		// ms[sent] is the message the kernel refused. A refused train is
		// unrolled and re-sent segment by segment — identical bytes on
		// the wire, no UDP_SEGMENT — so a kernel or path that rejects
		// one send shape degrades per message, not per socket.
		if m := &ms[sent]; m.SegSize > 0 && m.SegSize < m.N {
			if ferr := sendTrainSplit(rc, tx, m, ip4); ferr != nil {
				return sent, ferr
			}
			st.fallbacks.Add(1)
			sent++
			continue
		}
		return sent, err
	}
	return sent, nil
}

// countTrains credits the trains in a successfully sent run.
func countTrains(st *txCounters, ms []Message) {
	for i := range ms {
		if segs := ms[i].Segments(); segs > 1 {
			st.trains.Add(1)
			st.trainSegs.Add(uint64(segs))
		}
	}
}

// sendTrainSplit unrolls one train into per-datagram sends through the
// same sendmmsg loop. The segment vector lives on the stack: a train
// carries at most MaxTrainSegs segments.
func sendTrainSplit(rc syscall.RawConn, tx *mmsgScratch, m *Message, ip4 bool) error {
	var segbuf [MaxTrainSegs]Message
	segs := segbuf[:0]
	flush := func() error {
		if len(segs) == 0 {
			return nil
		}
		_, err := sendmmsgBatch(rc, tx, segs, ip4)
		segs = segs[:0]
		return err
	}
	for off := 0; off < m.N; off += m.SegSize {
		end := min(off+m.SegSize, m.N)
		segs = append(segs, Message{Buf: m.Buf[off:end], N: end - off, Src: m.Src})
		if len(segs) == cap(segs) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// sendmmsgBatch flushes ms through a sendmmsg(2) loop on rc's fd using
// tx's reusable header vector, parking in the netpoller on EAGAIN.
// Shared by the mmsg conn and by the uring conn's transmit side: for
// inline UDP sends sendmmsg is the cheapest batch primitive the kernel
// offers (an io_uring SENDMSG SQE buys async punting this workload
// never needs, at the cost of a request lifecycle per datagram).
func sendmmsgBatch(rc syscall.RawConn, tx *mmsgScratch, ms []Message, ip4 bool) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	tx.ensure(len(ms))
	for i := range ms {
		m := &ms[i]
		iov := &tx.iovs[i]
		iov.Base = nil
		if m.N > 0 {
			iov.Base = &m.Buf[0]
		}
		iov.SetLen(m.N)
		h := &tx.hdrs[i]
		h.hdr = syscall.Msghdr{Iov: iov}
		h.hdr.Iovlen = 1
		h.n = 0
		if m.Src.IsValid() {
			h.hdr.Name = (*byte)(unsafe.Pointer(&tx.names[i]))
			h.hdr.Namelen = putSockaddr(&tx.names[i], m.Src, ip4)
		}
		if m.SegSize > 0 && m.SegSize < m.N {
			ctrl := tx.ctrls[i*gsoCtrlSpace : (i+1)*gsoCtrlSpace]
			putGSOControl(ctrl, uint16(m.SegSize))
			h.hdr.Control = &ctrl[0]
			h.hdr.SetControllen(gsoCtrlSpace)
		}
	}
	sent := 0
	for sent < len(ms) {
		var n int
		var operr syscall.Errno
		err := rc.Write(func(fd uintptr) bool {
			for {
				r, _, errno := syscall.Syscall6(sysSendmmsg, fd,
					uintptr(unsafe.Pointer(&tx.hdrs[sent])), uintptr(len(ms)-sent),
					uintptr(syscall.MSG_DONTWAIT), 0, 0)
				switch errno {
				case 0:
					n = int(r)
					return true
				case syscall.EINTR:
					continue
				case syscall.EAGAIN:
					return false
				default:
					operr = errno
					return true
				}
			}
		})
		if err != nil {
			return sent, err
		}
		if operr != 0 {
			return sent, operr
		}
		if n == 0 {
			break // defensive: the kernel reported progress of zero
		}
		sent += n
	}
	return sent, nil
}

// putSockaddr encodes ap into sa with the socket's family, returning the
// sockaddr length. The port bytes are written explicitly (network byte
// order) so the encoding is endianness-independent.
func putSockaddr(sa *syscall.RawSockaddrAny, ap netip.AddrPort, ip4 bool) uint32 {
	port := ap.Port()
	if ip4 {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		*sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Addr: ap.Addr().Unmap().As4()}
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		p[0], p[1] = byte(port>>8), byte(port)
		return syscall.SizeofSockaddrInet4
	}
	sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
	*sa6 = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Addr: ap.Addr().As16()}
	p := (*[2]byte)(unsafe.Pointer(&sa6.Port))
	p[0], p[1] = byte(port>>8), byte(port)
	return syscall.SizeofSockaddrInet6
}

func sockaddrToAddrPort(sa *syscall.RawSockaddrAny) netip.AddrPort {
	switch sa.Addr.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), uint16(p[0])<<8|uint16(p[1]))
	case syscall.AF_INET6:
		sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa6.Port))
		return netip.AddrPortFrom(netip.AddrFrom16(sa6.Addr).Unmap(), uint16(p[0])<<8|uint16(p[1]))
	}
	return netip.AddrPort{}
}
