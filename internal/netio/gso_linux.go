//go:build linux && (amd64 || arm64)

package netio

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"syscall"
	"time"
	"unsafe"
)

// UDP generic segmentation offload (UDP_SEGMENT, linux >= 4.18): a single
// send call carries a train of equal-size datagrams that the kernel
// segments at delivery. For a load generator this collapses the dominant
// per-datagram cost — one udp_sendmsg walk per train instead of per
// datagram — which is what it takes to saturate a receive-side-batched
// server from the same host.
const (
	solUDP     = 17
	udpSegment = 103
	udpGRO     = 104
)

// EnableGSO sets the socket's UDP segment size: any payload longer than
// segSize is split into segSize-byte datagrams (final one may be short),
// while payloads of at most segSize are sent unchanged. Returns an error
// on kernels without UDP_SEGMENT; callers fall back to per-datagram
// sends.
func EnableGSO(c *net.UDPConn, segSize int) error {
	if segSize <= 0 || segSize > 65535 {
		return fmt.Errorf("netio: GSO segment size %d out of range", segSize)
	}
	rc, err := c.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	if err := rc.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, segSize)
	}); err != nil {
		return err
	}
	if serr != nil {
		return fmt.Errorf("netio: UDP_SEGMENT unavailable: %w", serr)
	}
	return nil
}

// Per-send UDP_SEGMENT: instead of a socket-wide segment size, a send
// carries its own via a cmsg, which is what lets one socket mix plain
// datagrams and trains of different widths — the shape a reply path
// produces. The layout below is cmsghdr on 64-bit linux: u64 cmsg_len,
// i32 cmsg_level, i32 cmsg_type, then the u16 segment size.
const (
	// gsoCtrlLen is CMSG_LEN(sizeof(uint16)): the 16-byte header plus
	// the payload, unpadded — what cmsg_len and msg_controllen carry.
	gsoCtrlLen = 18
	// gsoCtrlSpace is CMSG_SPACE(sizeof(uint16)): gsoCtrlLen padded to
	// 8-byte alignment — the room one control buffer occupies.
	gsoCtrlSpace = 24
)

// putGSOControl fills ctrl (gsoCtrlSpace bytes) with a UDP_SEGMENT cmsg
// carrying segSize.
func putGSOControl(ctrl []byte, segSize uint16) {
	_ = ctrl[gsoCtrlSpace-1]
	for i := range ctrl {
		ctrl[i] = 0
	}
	*(*uint64)(unsafe.Pointer(&ctrl[0])) = gsoCtrlLen
	*(*int32)(unsafe.Pointer(&ctrl[8])) = solUDP
	*(*int32)(unsafe.Pointer(&ctrl[12])) = udpSegment
	*(*uint16)(unsafe.Pointer(&ctrl[16])) = segSize
}

var (
	gsoProbeOnce sync.Once
	gsoProbeErr  error
)

// ProbeGSO reports whether per-send UDP_SEGMENT trains work end to end
// on this kernel, by sending one three-segment loopback train (raw
// sendmmsg + cmsg, no fallback in the path) and checking that exactly
// three datagrams with the right bytes come out. The result is cached;
// the netio_fallback build tag and the INCOD_NO_GSOTX environment
// variable both force a failure, which is how CI keeps the per-datagram
// path covered on GSO-capable kernels.
func ProbeGSO() error {
	gsoProbeOnce.Do(func() { gsoProbeErr = probeGSO() })
	return gsoProbeErr
}

func probeGSO() error {
	if forceFallback {
		return errors.New("netio: GSO TX disabled by the netio_fallback build tag")
	}
	if os.Getenv("INCOD_NO_GSOTX") != "" {
		return errors.New("netio: GSO TX disabled by INCOD_NO_GSOTX")
	}
	srv, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return fmt.Errorf("netio: GSO probe listen: %w", err)
	}
	defer srv.Close()
	cli, err := net.DialUDP("udp4", nil, srv.LocalAddr().(*net.UDPAddr))
	if err != nil {
		return fmt.Errorf("netio: GSO probe dial: %w", err)
	}
	defer cli.Close()
	rc, err := cli.SyscallConn()
	if err != nil {
		return err
	}
	const seg = 16
	train := bytes.Repeat([]byte("incod-gso-probe!"), 2)
	train = append(train, "tail"...)
	var tx mmsgScratch
	ms := []Message{{Buf: train, N: len(train), SegSize: seg}}
	if n, err := sendmmsgBatch(rc, &tx, ms, true); err != nil || n != 1 {
		return fmt.Errorf("netio: UDP_SEGMENT send rejected (n=%d): %w", n, err)
	}
	_ = srv.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 256)
	for off := 0; off < len(train); {
		n, _, err := srv.ReadFromUDPAddrPort(buf)
		if err != nil {
			return fmt.Errorf("netio: GSO probe receive: %w", err)
		}
		want := min(seg, len(train)-off)
		if n != want || !bytes.Equal(buf[:n], train[off:off+want]) {
			return fmt.Errorf("netio: GSO probe segment mismatch at %d (%d bytes)", off, n)
		}
		off += n
	}
	return nil
}
