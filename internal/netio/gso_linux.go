//go:build linux && (amd64 || arm64)

package netio

import (
	"fmt"
	"net"
	"syscall"
)

// UDP generic segmentation offload (UDP_SEGMENT, linux >= 4.18): a single
// send call carries a train of equal-size datagrams that the kernel
// segments at delivery. For a load generator this collapses the dominant
// per-datagram cost — one udp_sendmsg walk per train instead of per
// datagram — which is what it takes to saturate a receive-side-batched
// server from the same host.
const (
	solUDP     = 17
	udpSegment = 103
	udpGRO     = 104
)

// EnableGSO sets the socket's UDP segment size: any payload longer than
// segSize is split into segSize-byte datagrams (final one may be short),
// while payloads of at most segSize are sent unchanged. Returns an error
// on kernels without UDP_SEGMENT; callers fall back to per-datagram
// sends.
func EnableGSO(c *net.UDPConn, segSize int) error {
	if segSize <= 0 || segSize > 65535 {
		return fmt.Errorf("netio: GSO segment size %d out of range", segSize)
	}
	rc, err := c.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	if err := rc.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, segSize)
	}); err != nil {
		return err
	}
	if serr != nil {
		return fmt.Errorf("netio: UDP_SEGMENT unavailable: %w", serr)
	}
	return nil
}
