//go:build netio_fallback

package netio

// The netio_fallback build tag forces the portable singleConn backend
// everywhere (and fails the uring probe), so the code path that
// normally only runs on non-Linux platforms gets exercised by the linux
// -race CI leg.
const forceFallback = true
