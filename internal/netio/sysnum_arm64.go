//go:build linux && arm64

package netio

// From the linux generic (asm-generic) 64-bit syscall table.
const (
	sysRecvmmsg         = 243
	sysSendmmsg         = 269
	sysSchedSetaffinity = 122
	sysEventfd2         = 19
)
