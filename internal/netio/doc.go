// Package netio is the batched socket layer under the dataplane. It
// offers one seam — BatchConn, reading and writing slices of Messages —
// over three transport rungs, each amortizing more per-packet cost than
// the one below:
//
//	single  one recvfrom/sendto per datagram through net.PacketConn.
//	        Portable everywhere; the correctness baseline every other
//	        rung must match byte for byte. Train-marked Messages are
//	        unrolled into per-segment sends.
//	mmsg    recvmmsg(2)/sendmmsg(2) via syscall.RawConn: many datagrams
//	        per syscall, with the runtime netpoller still parking the
//	        goroutine between batches. A Message marked as a train
//	        (SegSize set) carries a UDP_SEGMENT cmsg on its slot of the
//	        sendmmsg vector, so one syscall can push a whole batch of
//	        trains — kernel segmentation fans each back into datagrams
//	        at delivery. Linux only; the default.
//	uring   receive side rebuilt around io_uring: one multishot RECVMSG
//	        stays armed on the socket, the kernel delivers each datagram
//	        into a registered provided-buffer ring and posts a
//	        completion, and a loaded socket is drained from mmap'd
//	        memory with no receive syscall at steady state. The socket
//	        also opts into UDP GRO, so a GSO sender's whole train lands
//	        as one coalesced completion that the conn splits back into
//	        per-datagram Messages — kernel cost per train, not per
//	        datagram. Transmit splits by shape: plain datagrams flush
//	        through the inline sendmmsg path shared with the mmsg rung
//	        (profiles show SENDMSG SQEs costing ~40% more than sendmmsg
//	        for single UDP sends), while trains ride the ring as
//	        SENDMSG SQEs — the per-SQE cost amortizes across every
//	        segment in the train, and submission batches with whatever
//	        else is queued on the SQ. Linux amd64/arm64, raw syscalls,
//	        stdlib only.
//
// The paper's offload argument is that the NIC amortizes per-packet
// cost the host cannot; these rungs are the software end of that same
// curve — syscall-per-packet, then syscall-per-batch, then (under
// GSO/GRO) one kernel traversal per train in both directions.
//
// # Choosing a rung
//
// NewBatchConn returns mmsg on Linux and single elsewhere; callers
// treat it as "the best portable default". NewUringConn is explicit
// opt-in (the daemons' -engine uring): it can fail on kernels without
// the needed io_uring features, so callers probe first (ProbeUring
// runs a cached loopback self-roundtrip) and degrade to NewBatchConn
// when it errors. BackendOf names the rung a conn actually landed on
// ("single", "mmsg", "uring"), which the dataplane surfaces in
// /v1/dataplane stats — the reported backend is always the truth, not
// the request.
//
// # Reply trains: GSO on the transmit side
//
// A Message whose SegSize is in (0, N) is a train: one buffer holding a
// run of SegSize-byte datagrams back to back, the last possibly short.
// Every rung accepts trains through the same WriteBatch seam and must
// produce the identical per-datagram wire image; the rungs differ only
// in what the train costs. The mmsg and uring rungs attach a
// UDP_SEGMENT cmsg so the kernel segments the run after one traversal
// of the stack; the single rung — and any kernel that refuses the cmsg
// (EINVAL/EOPNOTSUPP at send time) — unrolls the train into per-segment
// sends instead, so correctness never depends on kernel support.
//
// ProbeGSO reports (cached) whether the kernel can segment: it sends a
// real three-segment train over loopback and counts the datagrams that
// arrive. Engines use it to decide whether building trains is worth the
// copy (dataplane.Config.GSOTx), and the INCOD_NO_GSOTX environment
// variable fails the probe for CI's forced-fallback leg — note it
// disables the probe, not the conns, which still coalesce any
// train-marked Message a capable kernel allows.
//
// TxStats (via TxStatsOf) is the truthful telemetry: Trains/TrainSegs
// count coalesced sends that actually left as one submission, Fallbacks
// counts trains that were unrolled per-datagram, RingSends counts
// trains that rode the uring SQ, and SendZC stays zero until SEND_ZC is
// actually wired. Every submitted train lands in exactly one of Trains
// or Fallbacks, so the /v1/dataplane counters (tx_trains,
// tx_segs_per_train, gso_tx_fallbacks, ring_sends) never overstate what
// the kernel did.
//
// # Ownership rules (uring)
//
// The provided-buffer ring and its data slab belong to the conn: the
// kernel picks a buffer per completion, the conn parses it and copies
// the payload out into the caller's Message.Buf during ReadBatch, then
// recycles the buffer to the ring. A GRO-coalesced completion holds a
// whole train; its buffer stays claimed until every segment has been
// delivered (possibly across ReadBatch calls). A starved ring (every
// buffer claimed by undelivered completions) kills the multishot with
// ENOBUFS; the conn re-arms it once delivery recycles buffers and
// counts the event in UringStats.Resubmits / Starved.
//
// On transmit the caller's buffers are free the moment WriteBatch
// returns, whichever path a Message took. Plain datagrams flush
// through the inline sendmmsg loop on the conn's send lock. A train is
// copied into one of a fixed set of ring-owned send slots with its
// msghdr/iovec/sockaddr/cmsg images, and that slot stays claimed from
// SQE submission until its CQE is reaped (opportunistically, on later
// sends and flushes) — the kernel reads the slot asynchronously, so
// slot lifetime, not caller-buffer lifetime, spans the send. When
// every slot is in flight WriteBatch flushes, reaps, and — if a slot
// still cannot be had — sends the train through the inline GSO
// sendmmsg path rather than block; per-send errors are counted rather
// than returned, matching UDP's fire-and-forget contract.
//
// A uring conn supports one goroutine in ReadBatch concurrently with
// one in WriteBatch (a loadgen's receiver/sender split); the ring
// mutex is never held across a blocking wait, so neither direction
// can starve the other.
//
// # How the reader waits (uring)
//
// An empty ReadBatch never blocks an OS thread in io_uring_enter if it
// can help it. It spins a few yield-and-peek rounds first —
// runtime.Gosched, then a zero-wait GETEVENTS enter to run deferred
// completion work — which under load finds the next batch without ever
// sleeping. Only then does it park the goroutine on a registered CQ
// eventfd through the runtime netpoller, exactly how the other rungs
// wait for a socket: the P stays free for the peers whose traffic
// produces the next completion. While the reader is awake the eventfd
// is suppressed via IORING_CQ_EVENTFD_DISABLED (the NAPI trick), so
// senders never pay a wakeup per datagram they complete; the flag is
// re-enabled only on the edge of parking, with a final reap to close
// the race. Kernels where the eventfd cannot be registered fall back
// to bounded enter waits.
//
// # Reuseport groups, pinning and busy-polling
//
// ListenReusePortGroup opens N UDP sockets bound to the same address
// with SO_REUSEPORT, so the kernel spreads inbound flows across them
// by 4-tuple hash. That is the substrate of the dataplane's
// per-shard-socket mode: one socket per shard worker, each draining
// its own batches, no shared reader to serialize behind. Off Linux a
// group of one socket still works; asking for more reports an error,
// which the daemons surface at startup.
//
// PinThread (sched_setaffinity) pins the calling OS thread to a CPU;
// the dataplane uses it for per-shard affinity (-pin), which helps
// when shards <= cores — stable cache residency, no cross-CPU wakeup
// — and actively hurts when shards exceed cores, since pinned workers
// can no longer migrate off a contended CPU. SetBusyPoll arms
// SO_BUSY_POLL, trading spin CPU for receive latency; it only pays on
// an otherwise idle core, so it is off by default and a flag
// (-busypoll) where it matters.
//
// # Saturating the path: GSO at the endpoints
//
// EnableGSO arms UDP_SEGMENT socket-wide on a load generator's socket:
// one plain Write carries a train the kernel segments at delivery,
// collapsing the generator's dominant per-datagram send cost to
// per-train (incloadgen -fast -gsotx builds the trains per send
// instead, via Message.SegSize, which needs no socket option). Paired
// with a GRO-enabled uring server the whole loopback path — send
// syscall, socket delivery, wakeup, completion — runs once per train;
// with the server's reply side building trains too (-gsotx on the
// daemons), the return direction matches, and neither end of the
// connection pays per-datagram kernel cost anywhere.
//
// Everything here uses the standard library's syscall package only.
package netio
