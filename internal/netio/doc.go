// Package netio is the batched socket layer under the dataplane: many
// datagrams per syscall instead of one.
//
// The paper's offload argument is that the NIC amortizes per-packet cost
// the host cannot; the standard software answer is to amortize the
// per-packet *syscall* cost, which is what this package does. A
// BatchConn reads and writes slices of Messages — on Linux through
// recvmmsg(2)/sendmmsg(2) reached via syscall.RawConn (so the runtime
// netpoller still parks the goroutine between batches and read deadlines
// keep working), everywhere else through a one-datagram-per-call
// fallback with identical semantics. No dependency beyond the standard
// library's syscall package is used.
//
// ListenReusePortGroup opens N UDP sockets bound to the same address
// with SO_REUSEPORT, so the kernel spreads inbound flows across them by
// 4-tuple hash. That is the substrate of the dataplane's per-shard-
// socket mode: one socket per shard worker, each reading its own
// batches, with no shared reader to serialize behind. Off Linux a group
// of one socket still works; asking for more reports an error, which the
// daemons surface at startup.
package netio
