// Package netio is the batched socket layer under the dataplane. It
// offers one seam — BatchConn, reading and writing slices of Messages —
// over three transport rungs, each amortizing more per-packet cost than
// the one below:
//
//	single  one recvfrom/sendto per datagram through net.PacketConn.
//	        Portable everywhere; the correctness baseline every other
//	        rung must match byte for byte.
//	mmsg    recvmmsg(2)/sendmmsg(2) via syscall.RawConn: many datagrams
//	        per syscall, with the runtime netpoller still parking the
//	        goroutine between batches. Linux only; the default.
//	uring   receive side rebuilt around io_uring: one multishot RECVMSG
//	        stays armed on the socket, the kernel delivers each datagram
//	        into a registered provided-buffer ring and posts a
//	        completion, and a loaded socket is drained from mmap'd
//	        memory with no receive syscall at steady state. The socket
//	        also opts into UDP GRO, so a GSO sender's whole train lands
//	        as one coalesced completion that the conn splits back into
//	        per-datagram Messages — kernel cost per train, not per
//	        datagram. Transmit stays on the sendmmsg path shared with
//	        the mmsg rung: profiles show SENDMSG SQEs costing ~40% more
//	        than sendmmsg for inline UDP sends, so the ring owns only
//	        the direction it wins. Linux amd64/arm64, raw syscalls,
//	        stdlib only.
//
// The paper's offload argument is that the NIC amortizes per-packet
// cost the host cannot; these rungs are the software end of that same
// curve — syscall-per-packet, then syscall-per-batch, then (on the
// receive side) no syscall and, under GSO/GRO, one kernel traversal per
// train.
//
// # Choosing a rung
//
// NewBatchConn returns mmsg on Linux and single elsewhere; callers
// treat it as "the best portable default". NewUringConn is explicit
// opt-in (the daemons' -engine uring): it can fail on kernels without
// the needed io_uring features, so callers probe first (ProbeUring
// runs a cached loopback self-roundtrip) and degrade to NewBatchConn
// when it errors. BackendOf names the rung a conn actually landed on
// ("single", "mmsg", "uring"), which the dataplane surfaces in
// /v1/dataplane stats — the reported backend is always the truth, not
// the request.
//
// # Ownership rules (uring)
//
// The provided-buffer ring and its data slab belong to the conn: the
// kernel picks a buffer per completion, the conn parses it and copies
// the payload out into the caller's Message.Buf during ReadBatch, then
// recycles the buffer to the ring. A GRO-coalesced completion holds a
// whole train; its buffer stays claimed until every segment has been
// delivered (possibly across ReadBatch calls). A starved ring (every
// buffer claimed by undelivered completions) kills the multishot with
// ENOBUFS; the conn re-arms it once delivery recycles buffers and
// counts the event in UringStats.Resubmits / Starved. WriteBatch never
// touches the ring: it flushes through the same sendmmsg loop as the
// mmsg rung on its own lock, the caller's buffers are free the moment
// it returns, and per-send errors are counted rather than returned,
// matching UDP's fire-and-forget contract.
//
// A uring conn supports one goroutine in ReadBatch concurrently with
// one in WriteBatch (a loadgen's receiver/sender split); the ring
// mutex is never held across a blocking wait, so neither direction
// can starve the other.
//
// # How the reader waits (uring)
//
// An empty ReadBatch never blocks an OS thread in io_uring_enter if it
// can help it. It spins a few yield-and-peek rounds first —
// runtime.Gosched, then a zero-wait GETEVENTS enter to run deferred
// completion work — which under load finds the next batch without ever
// sleeping. Only then does it park the goroutine on a registered CQ
// eventfd through the runtime netpoller, exactly how the other rungs
// wait for a socket: the P stays free for the peers whose traffic
// produces the next completion. While the reader is awake the eventfd
// is suppressed via IORING_CQ_EVENTFD_DISABLED (the NAPI trick), so
// senders never pay a wakeup per datagram they complete; the flag is
// re-enabled only on the edge of parking, with a final reap to close
// the race. Kernels where the eventfd cannot be registered fall back
// to bounded enter waits.
//
// # Reuseport groups, pinning and busy-polling
//
// ListenReusePortGroup opens N UDP sockets bound to the same address
// with SO_REUSEPORT, so the kernel spreads inbound flows across them
// by 4-tuple hash. That is the substrate of the dataplane's
// per-shard-socket mode: one socket per shard worker, each draining
// its own batches, no shared reader to serialize behind. Off Linux a
// group of one socket still works; asking for more reports an error,
// which the daemons surface at startup.
//
// PinThread (sched_setaffinity) pins the calling OS thread to a CPU;
// the dataplane uses it for per-shard affinity (-pin), which helps
// when shards <= cores — stable cache residency, no cross-CPU wakeup
// — and actively hurts when shards exceed cores, since pinned workers
// can no longer migrate off a contended CPU. SetBusyPoll arms
// SO_BUSY_POLL, trading spin CPU for receive latency; it only pays on
// an otherwise idle core, so it is off by default and a flag
// (-busypoll) where it matters.
//
// # Saturating the server: GSO on the send side
//
// EnableGSO arms UDP_SEGMENT on a load generator's socket: one send
// call carries a train of equal-size datagrams the kernel segments at
// delivery, collapsing the generator's dominant per-datagram send cost
// to per-train. Paired with a GRO-enabled uring server the whole
// loopback path — send syscall, socket delivery, wakeup, completion —
// runs once per train, which is what lets a single host push enough
// load to expose the server's own ceiling instead of the loadgen's.
//
// Everything here uses the standard library's syscall package only.
package netio
