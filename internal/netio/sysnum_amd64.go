//go:build linux && amd64

package netio

// The frozen syscall package predates sendmmsg, so the numbers live
// here. From the linux/amd64 syscall table.
const (
	sysRecvmmsg         = 299
	sysSendmmsg         = 307
	sysSchedSetaffinity = 203
	sysEventfd2         = 290
)
