//go:build !(linux && (amd64 || arm64))

package netio

import (
	"errors"
	"net"
)

// EnableGSO requires linux's UDP_SEGMENT; other platforms send one
// datagram per call.
func EnableGSO(c *net.UDPConn, segSize int) error {
	return errors.New("netio: UDP GSO requires linux")
}

// ProbeGSO always fails off linux: train messages still work through
// every rung's per-datagram unroll, there is just no kernel to coalesce
// them.
func ProbeGSO() error {
	return errors.New("netio: UDP GSO trains require linux")
}
