//go:build !(linux && (amd64 || arm64))

package netio

import (
	"errors"
	"net"
)

// EnableGSO requires linux's UDP_SEGMENT; other platforms send one
// datagram per call.
func EnableGSO(c *net.UDPConn, segSize int) error {
	return errors.New("netio: UDP GSO requires linux")
}
