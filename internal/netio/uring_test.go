package netio

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// newUringPair builds a uring server conn on loopback and a connected
// mmsg/single client aimed at it, skipping when the kernel can't.
func newUringPair(t *testing.T, cfg UringConfig) (server BatchConn, client BatchConn) {
	t.Helper()
	if err := ProbeUring(); err != nil {
		t.Skipf("io_uring unavailable: %v", err)
	}
	spc, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	server, err = NewUringConn(spc, cfg)
	if err != nil {
		_ = spc.Close()
		t.Fatalf("NewUringConn: %v", err)
	}
	t.Cleanup(func() { server.Close() })
	cconn, err := net.Dial("udp4", spc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	client = NewBatchConn(cconn.(*net.UDPConn))
	t.Cleanup(func() { client.Close() })
	return server, client
}

func TestUringConnRoundTrip(t *testing.T) {
	server, client := newUringPair(t, UringConfig{})

	const k = 8
	out := make([]Message, k)
	for i := range out {
		out[i].Buf = []byte(fmt.Sprintf("umsg-%02d", i))
		out[i].N = len(out[i].Buf)
	}
	if n, err := client.WriteBatch(out); err != nil || n != k {
		t.Fatalf("client WriteBatch = %d, %v; want %d", n, err, k)
	}

	in := readAll(t, server, k)
	seen := map[string]bool{}
	for i := range in {
		m := &in[i]
		if !m.Src.IsValid() {
			t.Fatalf("message %d: no source address", i)
		}
		seen[string(m.Buf[:m.N])] = true
		m.Buf = append(m.Buf[:0], m.Buf[:m.N]...)
	}
	if len(seen) != k {
		t.Fatalf("server saw %d distinct payloads, want %d", len(seen), k)
	}
	// Echo through the sendmmsg transmit path.
	if n, err := server.WriteBatch(in); err != nil || n != k {
		t.Fatalf("server WriteBatch = %d, %v; want %d", n, err, k)
	}
	back := readAll(t, client, k)
	for i := range back {
		if payload := string(back[i].Buf[:back[i].N]); !seen[payload] {
			t.Fatalf("echo %d: unexpected payload %q", i, payload)
		}
	}
	if got := BackendOf(server); got != "uring" {
		t.Fatalf("BackendOf(server) = %q, want uring", got)
	}
	st, ok := UringStatsOf(server)
	if !ok || st.RingEntries == 0 || st.BufRingSize == 0 {
		t.Fatalf("UringStatsOf = %+v, %v", st, ok)
	}
}

func TestUringReadBatchHonorsDeadline(t *testing.T) {
	server, _ := newUringPair(t, UringConfig{})
	if err := server.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := server.ReadBatch(mkMsgs(4, 512))
	if err == nil {
		t.Fatal("ReadBatch on an idle socket returned without error")
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %v", err)
	}
	if since := time.Since(start); since > 3*time.Second {
		t.Fatalf("deadline took %v to fire", since)
	}
}

// TestUringBufferStarvationRecovers blasts far more datagrams than the
// provided-buffer ring holds: the multishot must terminate with ENOBUFS
// and be re-armed as ReadBatch recycles buffers, with zero loss on
// loopback.
func TestUringBufferStarvationRecovers(t *testing.T) {
	server, client := newUringPair(t, UringConfig{Entries: 8, Buffers: 8, BufSize: 512})

	const total = 256
	sent := map[string]bool{}
	for off := 0; off < total; off += 32 {
		out := make([]Message, 0, 32)
		for i := off; i < off+32; i++ {
			p := fmt.Sprintf("starve-%03d", i)
			sent[p] = true
			out = append(out, Message{Buf: []byte(p), N: len(p)})
		}
		if _, err := client.WriteBatch(out); err != nil {
			t.Fatal(err)
		}
	}
	got := readAll(t, server, total)
	for i := range got {
		if p := string(got[i].Buf[:got[i].N]); !sent[p] {
			t.Fatalf("unexpected payload %q", p)
		}
	}
	st, _ := UringStatsOf(server)
	t.Logf("stats after starvation run: %+v", st)
	if st.Starved == 0 && st.Resubmits == 0 {
		t.Logf("note: ring never starved (kernel drained %d datagrams into 8 buffers unusually fast)", total)
	}
}

// TestUringLargeWriteBatch pushes a write batch much larger than the
// ring through a uring sender: transmit runs on the sendmmsg path, so
// batch size must be independent of ring geometry.
func TestUringLargeWriteBatch(t *testing.T) {
	server, client := newUringPair(t, UringConfig{Entries: 8, Buffers: 64, BufSize: 512})
	_ = server

	// The uring backend is the sender here: connected uring client.
	cpc, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	usender, err := NewUringConn(cpc, UringConfig{Entries: 4, Buffers: 8, BufSize: 512})
	if err != nil {
		t.Fatalf("NewUringConn(sender): %v", err)
	}
	defer usender.Close()
	dst, ok := AddrPortOf(server.LocalAddr())
	if !ok {
		t.Fatal("no server addr")
	}
	const k = 64
	out := make([]Message, k)
	sent := map[string]bool{}
	for i := range out {
		p := fmt.Sprintf("slots-%02d", i)
		sent[p] = true
		out[i] = Message{Buf: []byte(p), N: len(p), Src: dst}
	}
	if n, err := usender.WriteBatch(out); err != nil || n != k {
		t.Fatalf("WriteBatch = %d, %v; want %d", n, err, k)
	}
	got := readAll(t, server, k)
	for i := range got {
		if p := string(got[i].Buf[:got[i].N]); !sent[p] {
			t.Fatalf("unexpected payload %q", p)
		}
	}
	_ = client
}

// TestUringGROTrainSplit sends one GSO train of equal-size datagrams
// (plus a short tail segment) at a uring server: whether the kernel
// delivers it coalesced (UDP_GRO active, one completion split by
// deliver) or pre-segmented (older kernel), ReadBatch must hand back
// exactly the per-datagram messages the train carried, in order. The
// deliberately tiny read batch forces mid-train resume across calls.
func TestUringGROTrainSplit(t *testing.T) {
	server, _ := newUringPair(t, UringConfig{BufSize: 4096})
	cconn, err := net.Dial("udp4", server.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cconn.Close()
	udp := cconn.(*net.UDPConn)
	const seg = 32
	if err := EnableGSO(udp, seg); err != nil {
		t.Skipf("UDP GSO unavailable: %v", err)
	}
	var train []byte
	var want []string
	for i := 0; i < 9; i++ {
		p := fmt.Sprintf("train-%02d-................................", i)[:seg]
		want = append(want, p)
		train = append(train, p...)
	}
	tail := "short-tail"
	want = append(want, tail)
	train = append(train, tail...)
	if _, err := udp.Write(train); err != nil {
		t.Fatal(err)
	}

	var got []string
	ms := mkMsgs(3, 512)
	for len(got) < len(want) {
		if err := server.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
			t.Fatal(err)
		}
		n, err := server.ReadBatch(ms)
		if err != nil {
			t.Fatalf("ReadBatch after %d messages: %v", len(got), err)
		}
		for i := 0; i < n; i++ {
			if !ms[i].Src.IsValid() {
				t.Fatalf("message %d: no source address", len(got))
			}
			got = append(got, string(ms[i].Buf[:ms[i].N]))
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("message %d = %q, want %q", i, got[i], want[i])
		}
	}
	st, _ := UringStatsOf(server)
	t.Logf("stats after GSO train: %+v", st)
}

func TestUringConnClosedRead(t *testing.T) {
	server, _ := newUringPair(t, UringConfig{})
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := server.ReadBatch(mkMsgs(1, 512)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("ReadBatch after Close = %v, want net.ErrClosed", err)
	}
	// Double close is a no-op.
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestProbeUringCaches(t *testing.T) {
	a, b := ProbeUring(), ProbeUring()
	if (a == nil) != (b == nil) {
		t.Fatalf("probe verdict changed between calls: %v vs %v", a, b)
	}
	if forceFallback && a == nil {
		t.Fatal("netio_fallback build must fail the uring probe")
	}
}
