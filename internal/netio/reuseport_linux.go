//go:build linux

package netio

import (
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT, which package syscall does not export.
const soReusePort = 0xf

const reusePortAvailable = true

func reusePortListenConfig() *net.ListenConfig {
	return &net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
}
