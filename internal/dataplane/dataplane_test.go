package dataplane

import (
	"bytes"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- in-memory PacketConn for deterministic engine tests -----------------

type fakePacket struct {
	data []byte
	from net.Addr
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

type fakeConn struct {
	in       chan fakePacket
	errs     chan error
	closed   chan struct{}
	deadline chan struct{}
	closeOne sync.Once
	dlOne    sync.Once

	mu     sync.Mutex
	writes []fakePacket
}

func newFakeConn(buf int) *fakeConn {
	return &fakeConn{
		in:       make(chan fakePacket, buf),
		errs:     make(chan error, buf),
		closed:   make(chan struct{}),
		deadline: make(chan struct{}),
	}
}

func (c *fakeConn) ReadFrom(b []byte) (int, net.Addr, error) {
	// Drain queued packets/errors before honoring deadline or close, so
	// tests get deterministic ordering.
	select {
	case p := <-c.in:
		return copy(b, p.data), p.from, nil
	case err := <-c.errs:
		return 0, nil, err
	default:
	}
	select {
	case p := <-c.in:
		return copy(b, p.data), p.from, nil
	case err := <-c.errs:
		return 0, nil, err
	case <-c.closed:
		return 0, nil, net.ErrClosed
	case <-c.deadline:
		return 0, nil, timeoutErr{}
	}
}

func (c *fakeConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes = append(c.writes, fakePacket{data: append([]byte(nil), b...), from: addr})
	return len(b), nil
}

func (c *fakeConn) writeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.writes)
}

func (c *fakeConn) Close() error {
	c.closeOne.Do(func() { close(c.closed) })
	return nil
}

func (c *fakeConn) LocalAddr() net.Addr { return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9} }

func (c *fakeConn) SetDeadline(t time.Time) error      { return c.SetReadDeadline(t) }
func (c *fakeConn) SetWriteDeadline(t time.Time) error { return nil }
func (c *fakeConn) SetReadDeadline(t time.Time) error {
	if !t.After(time.Now()) {
		c.dlOne.Do(func() { close(c.deadline) })
	}
	return nil
}

var testSrc = &net.UDPAddr{IP: net.IPv4(10, 0, 0, 7), Port: 4242}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// --- dispatch ------------------------------------------------------------

func TestShardDispatchDeterminism(t *testing.T) {
	conn := newFakeConn(64)
	e := New(conn, HandlerFunc(func(in []byte, scratch *[]byte) ([]byte, bool) {
		return nil, false
	}), Config{Shards: 8, ShardBy: func(p []byte, _ netip.AddrPort) uint64 { return HashBytes(p) }})

	// Pure function: the same payload always lands on the same shard.
	for _, payload := range []string{"get key-1\r\n", "get key-2\r\n", "set a 0 0 1\r\nx\r\n"} {
		want := e.shardIndex([]byte(payload), netip.AddrPort{})
		for i := 0; i < 100; i++ {
			if got := e.shardIndex([]byte(payload), netip.AddrPort{}); got != want {
				t.Fatalf("payload %q: shard %d then %d", payload, want, got)
			}
		}
	}

	// Different keys spread across more than one shard.
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[e.shardIndex(fmt.Appendf(nil, "get key-%d\r\n", i), netip.AddrPort{})] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 distinct keys all hashed to one shard")
	}

	// End to end: copies of one payload are all counted on a single shard.
	e.Start()
	defer e.Close()
	for i := 0; i < 20; i++ {
		conn.in <- fakePacket{data: []byte("get key-1\r\n"), from: testSrc}
	}
	waitFor(t, "20 packets received", func() bool { return e.Snapshot().Received == 20 })
	busy := 0
	for _, s := range e.Snapshot().Shards {
		if s.Received > 0 {
			busy++
			if s.Received != 20 {
				t.Fatalf("shard %d received %d of 20", s.Shard, s.Received)
			}
		}
	}
	if busy != 1 {
		t.Fatalf("one payload hit %d shards, want 1", busy)
	}
}

func TestSourceHashDeterminism(t *testing.T) {
	a := netip.MustParseAddrPort("10.1.2.3:5000")
	b := netip.MustParseAddrPort("10.1.2.3:5001")
	if SourceHash(nil, a) != SourceHash(nil, a) {
		t.Fatal("SourceHash not deterministic")
	}
	if SourceHash(nil, a) == SourceHash(nil, b) {
		t.Fatal("distinct ports should (overwhelmingly) hash differently")
	}
}

// --- resilience ----------------------------------------------------------

func TestTransientReadErrorsDoNotKillTheEngine(t *testing.T) {
	conn := newFakeConn(16)
	e := New(conn, HandlerFunc(func(in []byte, scratch *[]byte) ([]byte, bool) {
		*scratch = append((*scratch)[:0], in...)
		return *scratch, true
	}), Config{Shards: 1})
	e.Start()
	defer e.Close()

	// An async ICMP-style error, then real traffic: serving continues.
	conn.errs <- fmt.Errorf("read udp: connection refused")
	conn.in <- fakePacket{data: []byte("ping"), from: testSrc}
	waitFor(t, "packet served after transient error", func() bool { return conn.writeCount() == 1 })
	st := e.Snapshot()
	if st.ReadErrors != 1 {
		t.Fatalf("ReadErrors = %d, want 1", st.ReadErrors)
	}
	if st.Handled != 1 || st.Replies != 1 {
		t.Fatalf("handled=%d replies=%d, want 1/1", st.Handled, st.Replies)
	}
}

// stringOnlyAddr is a net.Addr that is not *net.UDPAddr: the engine must
// derive the source from String() instead of dispatching a zero source.
type stringOnlyAddr string

func (a stringOnlyAddr) Network() string { return "udp" }
func (a stringOnlyAddr) String() string  { return string(a) }

func TestNonUDPAddrSourceIsDerivedOrDropped(t *testing.T) {
	conn := newFakeConn(16)
	type seen struct {
		src netip.AddrPort
		ok  bool
	}
	got := make(chan seen, 16)
	e := New(conn, sourceHandlerFunc(func(in []byte, from netip.AddrPort, scratch *[]byte) ([]byte, bool) {
		got <- seen{src: from, ok: from.IsValid()}
		return nil, false
	}), Config{Shards: 2})
	e.Start()
	defer e.Close()

	// A parseable non-UDPAddr source reaches the handler with the real
	// address, not the zero AddrPort.
	conn.in <- fakePacket{data: []byte("hello"), from: stringOnlyAddr("10.9.8.7:6543")}
	select {
	case s := <-got:
		if !s.ok || s.src != netip.MustParseAddrPort("10.9.8.7:6543") {
			t.Fatalf("handler saw source %v (valid=%v), want 10.9.8.7:6543", s.src, s.ok)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("datagram with parseable string source never dispatched")
	}

	// An unusable source is counted and dropped, never dispatched.
	conn.in <- fakePacket{data: []byte("bogus"), from: stringOnlyAddr("not-an-address")}
	waitFor(t, "bad-source drop counted", func() bool { return e.Snapshot().BadSourceDrops == 1 })
	select {
	case s := <-got:
		t.Fatalf("unusable source was dispatched anyway (src %v)", s.src)
	default:
	}
	st := e.Snapshot()
	if st.Dropped != 0 {
		t.Fatalf("bad-source drop leaked into the overrun counter: %+v", st)
	}
}

// sourceHandlerFunc adapts a function to SourceHandler (and Handler).
type sourceHandlerFunc func(in []byte, from netip.AddrPort, scratch *[]byte) ([]byte, bool)

func (f sourceHandlerFunc) HandleDatagram(in []byte, scratch *[]byte) ([]byte, bool) {
	return f(in, netip.AddrPort{}, scratch)
}

func (f sourceHandlerFunc) HandleDatagramFrom(in []byte, from netip.AddrPort, scratch *[]byte) ([]byte, bool) {
	return f(in, from, scratch)
}

func TestQueueOverrunDropsAreCounted(t *testing.T) {
	conn := newFakeConn(64)
	gate := make(chan struct{})
	e := New(conn, HandlerFunc(func(in []byte, scratch *[]byte) ([]byte, bool) {
		<-gate
		return nil, false
	}), Config{Shards: 1, QueueDepth: 1})
	e.Start()

	for i := 0; i < 5; i++ {
		conn.in <- fakePacket{data: []byte("x"), from: testSrc}
	}
	waitFor(t, "5 packets received", func() bool { return e.Snapshot().Received == 5 })
	close(gate)
	e.Close()

	st := e.Snapshot()
	if st.Dropped < 2 {
		t.Fatalf("Dropped = %d, want >= 2 (queue depth 1, one in-flight)", st.Dropped)
	}
	if st.Handled+st.Dropped != st.Received {
		t.Fatalf("handled %d + dropped %d != received %d", st.Handled, st.Dropped, st.Received)
	}
	if st.BuffersInFlight != 0 {
		t.Fatalf("%d pooled buffers leaked after overrun + drain", st.BuffersInFlight)
	}
}

// TestQueueOverrunAccountingUnderSustainedPressure drives an order of
// magnitude more datagrams than one blocked shard can queue, then
// asserts the drop accounting is exact: every received datagram is
// either handled or dropped, every reply corresponds to a handled
// datagram, and no pooled buffer leaks — the invariant that makes the
// overload memory bound (QueueDepth * MaxDatagram per shard) real.
func TestQueueOverrunAccountingUnderSustainedPressure(t *testing.T) {
	conn := newFakeConn(256)
	gate := make(chan struct{})
	var handled atomic.Uint64
	e := New(conn, HandlerFunc(func(in []byte, scratch *[]byte) ([]byte, bool) {
		<-gate
		handled.Add(1)
		*scratch = append((*scratch)[:0], in...)
		return *scratch, true
	}), Config{Shards: 1, QueueDepth: 8, MaxDatagram: 512})
	e.Start()

	const offered = 100
	for i := 0; i < offered; i++ {
		conn.in <- fakePacket{data: fmt.Appendf(nil, "pkt-%d", i), from: testSrc}
	}
	waitFor(t, "all offered datagrams received", func() bool { return e.Snapshot().Received == offered })
	st := e.Snapshot()
	if st.Dropped < offered-8-1 {
		// Queue depth 8 plus at most one datagram parked in the blocked
		// handler: everything else must be a counted drop.
		t.Fatalf("Dropped = %d, want >= %d", st.Dropped, offered-8-1)
	}
	close(gate)
	e.Close()

	st = e.Snapshot()
	if st.Handled != handled.Load() {
		t.Fatalf("Handled counter %d != handler invocations %d", st.Handled, handled.Load())
	}
	if st.Handled+st.Dropped != st.Received {
		t.Fatalf("handled %d + dropped %d != received %d", st.Handled, st.Dropped, st.Received)
	}
	if st.Replies != st.Handled {
		t.Fatalf("replies %d != handled %d for an always-replying handler", st.Replies, st.Handled)
	}
	if st.BuffersInFlight != 0 {
		t.Fatalf("%d pooled buffers leaked after sustained overrun", st.BuffersInFlight)
	}
	if got := conn.writeCount(); uint64(got) != st.Replies {
		t.Fatalf("%d datagrams written, stats say %d replies", got, st.Replies)
	}
}

func TestCloseDrainsQueuedDatagrams(t *testing.T) {
	conn := newFakeConn(64)
	gate := make(chan struct{})
	e := New(conn, HandlerFunc(func(in []byte, scratch *[]byte) ([]byte, bool) {
		<-gate
		*scratch = append((*scratch)[:0], in...)
		return *scratch, true
	}), Config{Shards: 2, QueueDepth: 64})
	e.Start()

	const k = 12
	for i := 0; i < k; i++ {
		conn.in <- fakePacket{data: fmt.Appendf(nil, "msg-%d", i), from: testSrc}
	}
	waitFor(t, "all packets queued", func() bool { return e.Snapshot().Received == k })

	closed := make(chan struct{})
	go func() { e.Close(); close(closed) }()
	close(gate) // release the workers; Close must wait for the drain
	<-closed

	st := e.Snapshot()
	if st.Handled != k || st.Replies != k {
		t.Fatalf("after drain: handled=%d replies=%d, want %d/%d", st.Handled, st.Replies, k, k)
	}
	if conn.writeCount() != k {
		t.Fatalf("%d replies written, want %d", conn.writeCount(), k)
	}
}

func TestCloseBeforeStart(t *testing.T) {
	conn := newFakeConn(1)
	e := New(conn, HandlerFunc(func(in []byte, scratch *[]byte) ([]byte, bool) { return nil, false }),
		Config{})
	e.Close() // must not hang or panic
	select {
	case <-conn.closed:
	default:
		t.Fatal("socket not closed")
	}
}

// --- concurrency over real sockets (exercised under -race in CI) ---------

func TestConcurrentClientsOverLoopback(t *testing.T) {
	srv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	e := New(srv, HandlerFunc(func(in []byte, scratch *[]byte) ([]byte, bool) {
		*scratch = append((*scratch)[:0], "echo:"...)
		*scratch = append(*scratch, in...)
		return *scratch, true
	}), Config{Shards: 4, Name: "test-echo"})
	e.Start()
	defer e.Close()

	const clients, msgs = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("udp", srv.LocalAddr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			buf := make([]byte, 2048)
			for m := 0; m < msgs; m++ {
				msg := fmt.Sprintf("c%d-m%d", c, m)
				want := "echo:" + msg
				ok := false
				for attempt := 0; attempt < 5 && !ok; attempt++ { // UDP may drop
					if _, err := conn.Write([]byte(msg)); err != nil {
						errs <- err
						return
					}
					conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
					n, err := conn.Read(buf)
					if err == nil && bytes.Equal(buf[:n], []byte(want)) {
						ok = true
					}
				}
				if !ok {
					errs <- fmt.Errorf("client %d: no echo for %q", c, msg)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := e.Snapshot(); st.Handled < clients*msgs {
		t.Fatalf("handled %d, want >= %d", st.Handled, clients*msgs)
	}
	if e.Handled() == 0 || e.Meter().Total() != e.Handled() {
		t.Fatal("meter total and Handled out of sync")
	}
}
