package dataplane

// ShardStats is one worker's counters.
type ShardStats struct {
	Shard       int    `json:"shard"`
	Received    uint64 `json:"received"`
	Handled     uint64 `json:"handled"`
	Offloaded   uint64 `json:"offloaded"`
	Replies     uint64 `json:"replies"`
	Dropped     uint64 `json:"dropped"`
	WriteErrors uint64 `json:"write_errors"`
}

// Stats is a point-in-time snapshot of the engine, the payload of the
// control API's GET /v1/dataplane.
type Stats struct {
	Shards      []ShardStats      `json:"shards"`
	Received    uint64            `json:"received"`
	Handled     uint64            `json:"handled"`
	Offloaded   uint64            `json:"offloaded"`
	Replies     uint64            `json:"replies"`
	Dropped     uint64            `json:"dropped"`
	WriteErrors uint64            `json:"write_errors"`
	ReadErrors  uint64            `json:"read_errors"`
	RateKpps    float64           `json:"rate_kpps"`
	Handler     map[string]uint64 `json:"handler,omitempty"`

	// Offload tier telemetry. TierActive reports whether a fast path is
	// installed right now; the remaining fields describe the most
	// recently installed tier (lifetime counters survive a shift back to
	// host so the control plane can still show what the tier did).
	TierActive bool              `json:"tier_active"`
	TierName   string            `json:"tier_name,omitempty"`
	Tier       map[string]uint64 `json:"tier,omitempty"`
	// No omitempty: a 0.0 hit ratio on an active tier is a real reading
	// (e.g. an NXDOMAIN-only DNS workload), not "no data".
	TierHitRatio   float64 `json:"tier_hit_ratio"`
	TierPowerWatts float64 `json:"tier_power_watts,omitempty"`
}

// Snapshot collects per-shard and aggregate counters, the live request
// rate, and — when the handler reports its own counters — a snapshot of
// those too. When an offload tier is (or was) installed, its counters,
// hit ratio and modeled power draw are folded in as well.
func (e *Engine) Snapshot() Stats {
	st := Stats{
		Shards:     make([]ShardStats, len(e.shards)),
		ReadErrors: e.readErrs.Load(),
		RateKpps:   e.meter.Rate() / 1000,
	}
	for i, s := range e.shards {
		ss := ShardStats{
			Shard:       i,
			Received:    s.received.Load(),
			Handled:     s.handled.Load(),
			Offloaded:   s.offloaded.Load(),
			Replies:     s.replies.Load(),
			Dropped:     s.dropped.Load(),
			WriteErrors: s.writeErrs.Load(),
		}
		st.Shards[i] = ss
		st.Received += ss.Received
		st.Handled += ss.Handled
		st.Offloaded += ss.Offloaded
		st.Replies += ss.Replies
		st.Dropped += ss.Dropped
		st.WriteErrors += ss.WriteErrors
	}
	if r, ok := e.h.(StatsReporter); ok {
		st.Handler = r.StatsCounters().Snapshot()
	}
	st.TierActive = e.fastPath.Load() != nil
	if ref := e.lastTier.Load(); ref != nil {
		if n, ok := ref.fp.(interface{ Name() string }); ok {
			st.TierName = n.Name()
		}
		if r, ok := ref.fp.(StatsReporter); ok {
			st.Tier = r.StatsCounters().Snapshot()
		}
		if hr, ok := ref.fp.(interface{ HitRatio() float64 }); ok {
			st.TierHitRatio = hr.HitRatio()
		}
		if pw, ok := ref.fp.(interface{ PowerWatts() float64 }); ok {
			st.TierPowerWatts = pw.PowerWatts()
		}
	}
	return st
}
