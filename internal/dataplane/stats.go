package dataplane

// ShardStats is one worker's counters.
type ShardStats struct {
	Shard       int    `json:"shard"`
	Received    uint64 `json:"received"`
	Handled     uint64 `json:"handled"`
	Replies     uint64 `json:"replies"`
	Dropped     uint64 `json:"dropped"`
	WriteErrors uint64 `json:"write_errors"`
}

// Stats is a point-in-time snapshot of the engine, the payload of the
// control API's GET /v1/dataplane.
type Stats struct {
	Shards      []ShardStats      `json:"shards"`
	Received    uint64            `json:"received"`
	Handled     uint64            `json:"handled"`
	Replies     uint64            `json:"replies"`
	Dropped     uint64            `json:"dropped"`
	WriteErrors uint64            `json:"write_errors"`
	ReadErrors  uint64            `json:"read_errors"`
	RateKpps    float64           `json:"rate_kpps"`
	Handler     map[string]uint64 `json:"handler,omitempty"`
}

// Snapshot collects per-shard and aggregate counters, the live request
// rate, and — when the handler reports its own counters — a snapshot of
// those too.
func (e *Engine) Snapshot() Stats {
	st := Stats{
		Shards:     make([]ShardStats, len(e.shards)),
		ReadErrors: e.readErrs.Load(),
		RateKpps:   e.meter.Rate() / 1000,
	}
	for i, s := range e.shards {
		ss := ShardStats{
			Shard:       i,
			Received:    s.received.Load(),
			Handled:     s.handled.Load(),
			Replies:     s.replies.Load(),
			Dropped:     s.dropped.Load(),
			WriteErrors: s.writeErrs.Load(),
		}
		st.Shards[i] = ss
		st.Received += ss.Received
		st.Handled += ss.Handled
		st.Replies += ss.Replies
		st.Dropped += ss.Dropped
		st.WriteErrors += ss.WriteErrors
	}
	if r, ok := e.h.(StatsReporter); ok {
		st.Handler = r.StatsCounters().Snapshot()
	}
	return st
}
