package dataplane

import (
	"incod/internal/netio"
	"incod/internal/telemetry"
)

// HotKeyReporter is implemented by handlers whose GET path feeds a
// hot-key sketch (kvs.Handler over a ShardedStore with hot-key sampling
// enabled); Snapshot folds the hottest entries into /v1/dataplane.
type HotKeyReporter interface {
	HotKeys(max int) []telemetry.HotKey
}

// hotKeysInSnapshot caps how many hot keys a snapshot carries.
const hotKeysInSnapshot = 16

// ShardStats is one worker's counters.
type ShardStats struct {
	Shard       int    `json:"shard"`
	Received    uint64 `json:"received"`
	Handled     uint64 `json:"handled"`
	Offloaded   uint64 `json:"offloaded"`
	Replies     uint64 `json:"replies"`
	Dropped     uint64 `json:"dropped"`
	WriteErrors uint64 `json:"write_errors"`
	// BadSourceDrops counts datagrams dropped before dispatch because no
	// usable source address could be derived (distinct from queue
	// overruns). Only shard 0 accumulates these in single-reader mode.
	BadSourceDrops uint64 `json:"bad_source_drops,omitempty"`
	// ReadBatches / WriteBatches count recvmmsg / sendmmsg syscalls in
	// batched mode; received/read_batches is the measured RX syscall
	// amortization for this shard.
	ReadBatches  uint64 `json:"read_batches,omitempty"`
	WriteBatches uint64 `json:"write_batches,omitempty"`
}

// Stats is a point-in-time snapshot of the engine, the payload of the
// control API's GET /v1/dataplane.
type Stats struct {
	// Mode is "single-reader" or "batched"; Sockets, RxBatch and TxBatch
	// describe the batched-mode I/O geometry (Sockets is 1 in
	// single-reader mode). Backend names the transport rung actually
	// serving a batched engine — "uring", "mmsg" or "single" — which is
	// how the control plane verifies a requested uring engine didn't
	// silently degrade. Pinned reports that shard workers are bound to
	// CPUs.
	Mode    string `json:"mode"`
	Backend string `json:"backend,omitempty"`
	Pinned  bool   `json:"pinned,omitempty"`
	Sockets int    `json:"sockets"`
	RxBatch int    `json:"rx_batch,omitempty"`
	TxBatch int    `json:"tx_batch,omitempty"`

	Shards         []ShardStats      `json:"shards"`
	Received       uint64            `json:"received"`
	Handled        uint64            `json:"handled"`
	Offloaded      uint64            `json:"offloaded"`
	Replies        uint64            `json:"replies"`
	Dropped        uint64            `json:"dropped"`
	BadSourceDrops uint64            `json:"bad_source_drops"`
	WriteErrors    uint64            `json:"write_errors"`
	ReadErrors     uint64            `json:"read_errors"`
	RateKpps       float64           `json:"rate_kpps"`
	Handler        map[string]uint64 `json:"handler,omitempty"`

	// Syscall amortization, batched mode only: datagrams moved per
	// recvmmsg / sendmmsg syscall. 1.0 is the single-reader cost; higher
	// is the batching win.
	ReadBatches  uint64  `json:"read_batches,omitempty"`
	WriteBatches uint64  `json:"write_batches,omitempty"`
	RxPerRead    float64 `json:"rx_per_read,omitempty"`
	TxPerWrite   float64 `json:"tx_per_write,omitempty"`

	// BuffersInFlight is the number of pooled receive buffers currently
	// outside the pool; it returns to zero on a drained engine, so a
	// persistent residue indicates a buffer leak. BuffersCached is the
	// subset parked in per-worker private free lists.
	BuffersInFlight int64 `json:"buffers_in_flight"`
	BuffersCached   int64 `json:"buffers_cached,omitempty"`

	// HotKeys is the handler's merged hot-key top-K (hottest first),
	// present when the handler samples its GET path.
	HotKeys []telemetry.HotKey `json:"hot_keys,omitempty"`

	// io_uring backend telemetry, summed across the per-shard rings
	// (RingEntries/BufRingSize are per ring, identical for every shard).
	// Resubmits counts multishot recv re-arms, UringStarved the ENOBUFS
	// subset (the consumer fell a whole buffer ring behind),
	// UringSendErrors failed async sends, UringEnters io_uring_enter
	// syscalls across all shards.
	RingEntries     int    `json:"ring_entries,omitempty"`
	BufRingSize     int    `json:"bufring_size,omitempty"`
	Resubmits       uint64 `json:"resubmits,omitempty"`
	UringStarved    uint64 `json:"uring_starved,omitempty"`
	UringSendErrors uint64 `json:"uring_send_errors,omitempty"`
	UringEnters     uint64 `json:"uring_enters,omitempty"`

	// GSO TX telemetry, summed across the per-shard transports. GSOTx
	// reports whether train-building is engaged (requested AND the kernel
	// probe passed); the counters report what the transport actually did:
	// TxTrains coalesced sends handed to the kernel, TxTrainSegs the
	// datagrams they carried (TxSegsPerTrain the ratio), GSOTxFallbacks
	// trains unrolled per-datagram by a rung or kernel that refused
	// UDP_SEGMENT, RingSends trains submitted as io_uring SENDMSG SQEs,
	// SendZC zero-copy ring sends (always 0 today — SENDMSG_ZC is unused).
	GSOTx          bool    `json:"gso_tx,omitempty"`
	TxTrains       uint64  `json:"tx_trains,omitempty"`
	TxTrainSegs    uint64  `json:"tx_train_segs,omitempty"`
	TxSegsPerTrain float64 `json:"tx_segs_per_train,omitempty"`
	GSOTxFallbacks uint64  `json:"gso_tx_fallbacks,omitempty"`
	RingSends      uint64  `json:"ring_sends,omitempty"`
	SendZC         uint64  `json:"sendzc,omitempty"`

	// Offload tier telemetry. TierActive reports whether a fast path is
	// installed right now; the remaining fields describe the most
	// recently installed tier (lifetime counters survive a shift back to
	// host so the control plane can still show what the tier did).
	TierActive bool              `json:"tier_active"`
	TierName   string            `json:"tier_name,omitempty"`
	Tier       map[string]uint64 `json:"tier,omitempty"`
	// No omitempty: a 0.0 hit ratio on an active tier is a real reading
	// (e.g. an NXDOMAIN-only DNS workload), not "no data".
	TierHitRatio   float64 `json:"tier_hit_ratio"`
	TierPowerWatts float64 `json:"tier_power_watts,omitempty"`
}

// Snapshot collects per-shard and aggregate counters, the live request
// rate, and — when the handler reports its own counters — a snapshot of
// those too. When an offload tier is (or was) installed, its counters,
// hit ratio and modeled power draw are folded in as well.
func (e *Engine) Snapshot() Stats {
	st := Stats{
		Mode:            "single-reader",
		Sockets:         1,
		Shards:          make([]ShardStats, len(e.shards)),
		ReadErrors:      e.readErrs.Load(),
		RateKpps:        e.meter.Rate() / 1000,
		BuffersInFlight: e.bufsOut.Load(),
	}
	if e.batched {
		st.Mode = "batched"
		st.Backend = e.Backend()
		st.Pinned = e.pinned.Load()
		st.Sockets = len(e.bconns)
		st.RxBatch = e.cfg.RxBatch
		st.TxBatch = e.cfg.TxBatch
		for _, bc := range e.bconns {
			if us, ok := netio.UringStatsOf(bc); ok {
				st.RingEntries = us.RingEntries
				st.BufRingSize = us.BufRingSize
				st.Resubmits += us.Resubmits
				st.UringStarved += us.Starved
				st.UringSendErrors += us.SendErrors
				st.UringEnters += us.Enters
			}
			if ts, ok := netio.TxStatsOf(bc); ok {
				st.TxTrains += ts.Trains
				st.TxTrainSegs += ts.TrainSegs
				st.GSOTxFallbacks += ts.Fallbacks
				st.RingSends += ts.RingSends
				st.SendZC += ts.SendZC
			}
		}
		st.GSOTx = e.gsoTx
		if st.TxTrains > 0 {
			st.TxSegsPerTrain = float64(st.TxTrainSegs) / float64(st.TxTrains)
		}
	}
	for i, s := range e.shards {
		ss := ShardStats{
			Shard:          i,
			Received:       s.received.Load(),
			Handled:        s.handled.Load(),
			Offloaded:      s.offloaded.Load(),
			Replies:        s.replies.Load(),
			Dropped:        s.dropped.Load(),
			BadSourceDrops: s.badSrc.Load(),
			WriteErrors:    s.writeErrs.Load(),
			ReadBatches:    s.readBatches.Load(),
			WriteBatches:   s.writeBatches.Load(),
		}
		st.Shards[i] = ss
		st.Received += ss.Received
		st.Handled += ss.Handled
		st.Offloaded += ss.Offloaded
		st.Replies += ss.Replies
		st.Dropped += ss.Dropped
		st.BadSourceDrops += ss.BadSourceDrops
		st.WriteErrors += ss.WriteErrors
		st.ReadBatches += ss.ReadBatches
		st.WriteBatches += ss.WriteBatches
	}
	if st.ReadBatches > 0 {
		st.RxPerRead = float64(st.Received) / float64(st.ReadBatches)
	}
	if st.WriteBatches > 0 {
		st.TxPerWrite = float64(st.Replies) / float64(st.WriteBatches)
	}
	st.BuffersCached = e.bufsCached.Load()
	if r, ok := e.h.(StatsReporter); ok {
		st.Handler = r.StatsCounters().Snapshot()
	}
	if r, ok := e.h.(HotKeyReporter); ok {
		st.HotKeys = r.HotKeys(hotKeysInSnapshot)
	}
	st.TierActive = e.fastPath.Load() != nil
	if ref := e.lastTier.Load(); ref != nil {
		if n, ok := ref.fp.(interface{ Name() string }); ok {
			st.TierName = n.Name()
		}
		if r, ok := ref.fp.(StatsReporter); ok {
			st.Tier = r.StatsCounters().Snapshot()
		}
		if hr, ok := ref.fp.(interface{ HitRatio() float64 }); ok {
			st.TierHitRatio = hr.HitRatio()
		}
		if pw, ok := ref.fp.(interface{ PowerWatts() float64 }); ok {
			st.TierPowerWatts = pw.PowerWatts()
		}
	}
	return st
}
