package dataplane

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"incod/internal/netio"
)

// benchServeLoopback blasts echo traffic at a running engine from
// `clients` batched client sockets (client-side I/O cost is identical
// for both server modes, so the measured difference is the server's)
// and reports achieved reply throughput. The loadgen is windowed: each
// socket keeps one 32-message batch in flight, so loss on an overloaded
// server costs a bounded timeout instead of skewing the measurement.
func benchServeLoopback(b *testing.B, e *Engine, clients int) {
	e.Start()
	defer e.Close()
	addr := e.LocalAddr().String()
	per := b.N/clients + 1
	var replies atomic.Uint64
	payload := []byte("bench-payload-0123456789abcdef")

	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("udp", addr)
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()
			bc := netio.NewBatchConn(conn.(*net.UDPConn))
			const window = 32
			tx := make([]netio.Message, 0, window)
			rx := make([]netio.Message, window)
			for i := range rx {
				rx[i].Buf = make([]byte, 256)
			}
			for sent := 0; sent < per; {
				n := min(window, per-sent)
				tx = tx[:0]
				for k := 0; k < n; k++ {
					tx = append(tx, netio.Message{Buf: payload, N: len(payload)})
				}
				if _, err := bc.WriteBatch(tx); err != nil {
					b.Error(err)
					return
				}
				sent += n
				got := 0
				deadline := time.Now().Add(200 * time.Millisecond)
				for got < n {
					_ = bc.SetReadDeadline(deadline)
					m, err := bc.ReadBatch(rx)
					if err != nil {
						break // timeout: count the loss and move on
					}
					got += m
				}
				replies.Add(uint64(got))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > 0 {
		b.ReportMetric(float64(replies.Load())/elapsed.Seconds()/1000, "achieved-kpps")
	}
	b.ReportMetric(float64(replies.Load())/float64(clients*per)*100, "answered-%")
	if st := e.Snapshot(); st.RxPerRead > 0 {
		// Amortization diagnostic: how many datagrams each ReadBatch
		// delivered on average — the number the transport rung exists
		// to raise.
		b.ReportMetric(st.RxPerRead, "rx-per-read")
	}
}

// benchShards is the server worker count for both modes; benchClients
// keeps several flows in flight per shard so the comparison measures
// server throughput rather than one window's round-trip latency (and
// smooths the kernel's reuseport hash distribution).
const (
	benchShards  = 4
	benchClients = 4 * benchShards
)

// BenchmarkDataplaneSingleReaderLoopback is the baseline: one reader
// goroutine, two syscalls per request, N shard workers.
func BenchmarkDataplaneSingleReaderLoopback(b *testing.B) {
	conn, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	benchServeLoopback(b, New(conn, echoHandler, Config{Name: "bench-single", Shards: benchShards}), benchClients)
}

// BenchmarkDataplaneBatchedLoopback is the same shard count served in
// per-shard-socket batched mode: at equal shards it must sustain
// strictly higher achieved kpps than the single-reader baseline.
func BenchmarkDataplaneBatchedLoopback(b *testing.B) {
	conns, err := netio.ListenReusePortGroup("udp4", "127.0.0.1:0", benchShards)
	if err != nil {
		b.Skipf("reuseport group unavailable: %v", err)
	}
	benchServeLoopback(b, NewBatched(conns, echoHandler, Config{Name: "bench-batched"}), benchClients)
}

// BenchmarkDataplaneEngineLoopback sweeps the three transport rungs
// (single-reader, recvmmsg/sendmmsg, io_uring) across shard counts, so
// BENCH_*.json carries the full engine comparison the README quotes.
func BenchmarkDataplaneEngineLoopback(b *testing.B) {
	for _, backend := range []string{"single", "mmsg", "uring"} {
		for _, shards := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s-%dshard", backend, shards), func(b *testing.B) {
				var e *Engine
				switch backend {
				case "single":
					conn, err := net.ListenPacket("udp4", "127.0.0.1:0")
					if err != nil {
						b.Fatal(err)
					}
					e = New(conn, echoHandler, Config{Name: "bench-eng-single", Shards: shards})
				default:
					conns, err := netio.ListenReusePortGroup("udp4", "127.0.0.1:0", shards)
					if err != nil {
						b.Skipf("reuseport group unavailable: %v", err)
					}
					if backend == "uring" {
						if err := netio.ProbeUring(); err != nil {
							for _, c := range conns {
								c.Close()
							}
							b.Skipf("io_uring unavailable: %v", err)
						}
						bcs := make([]netio.BatchConn, len(conns))
						for i, c := range conns {
							bc, err := netio.NewUringConn(c, netio.UringConfig{BufSize: 2048})
							if err != nil {
								b.Fatal(err)
							}
							bcs[i] = bc
						}
						e = NewBatchedConns(conns, bcs, echoHandler, Config{Name: "bench-eng-uring"})
					} else {
						e = NewBatched(conns, echoHandler, Config{Name: "bench-eng-mmsg"})
					}
				}
				benchServeLoopback(b, e, 4*shards)
			})
		}
	}
}
