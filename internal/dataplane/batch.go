package dataplane

import (
	"errors"
	"log"
	"net"
	"net/netip"
	"os"
	"runtime"
	"time"

	"incod/internal/netio"
)

// BatchItem is one datagram of a batch in flight through the batched
// engine. In and Src are inputs; a handler encodes its reply into
// (*Scratch)[:0] (each item has its own reusable buffer, so replies in
// one batch never alias) and sets Out to the encoded bytes — a nil or
// empty Out sends nothing. Served is set by a BatchFastPath when the
// offload tier consumed the datagram, in which case the host handler
// never sees it.
type BatchItem struct {
	In      []byte
	Src     netip.AddrPort
	Scratch *[]byte
	Out     []byte
	Served  bool
}

// BatchHandler is implemented by handlers that can amortize per-request
// work across a whole batch — one virtual-clock read, one lock
// acquisition per store shard (kvs.Handler) — instead of paying it per
// datagram. When the handler passed to NewBatched implements it, the
// engine calls HandleBatch with every host-bound datagram of a batch;
// otherwise it falls back to per-datagram Handler/SourceHandler calls.
// Like Handler, implementations are called concurrently from different
// shard workers and each call must only touch the items it was given.
type BatchHandler interface {
	HandleBatch(items []*BatchItem)
}

// BatchFastPath is the batch form of FastPath: the offload tier is
// offered a whole batch at once so it can check its epoch and take its
// locks once per batch (nictier.KVSTier). Items it consumes are marked
// Served (with Out set when a reply should go out); the rest fall
// through to the host handler untouched.
type BatchFastPath interface {
	TryHandleBatch(items []*BatchItem)
}

// NewBatched builds an engine in per-shard-socket batched mode: conns[i]
// becomes shard i's socket (normally a SO_REUSEPORT group from
// netio.ListenReusePortGroup, all bound to one address), each shard
// reads its own recvmmsg batches, handles same-shard traffic inline
// without the channel hop, hands cross-shard datagrams to the owning
// shard's queue, and flushes replies with one sendmmsg per TxBatch.
// cfg.Shards is forced to len(conns). Call Start/Run and Close exactly
// as with New.
// With the default dispatch (no cfg.ShardBy), the arrival socket IS the
// shard: the kernel's reuseport 4-tuple hash already pins each flow to
// one socket, so per-flow ordering holds with no cross-shard handoff at
// all (one flow -> one socket -> one shard). An explicit ShardBy (e.g.
// kvs.ShardByKey, whose key serialization the offload tier's coherence
// depends on) re-enables the queue handoff for datagrams the kernel
// landed on the wrong shard's socket.
func NewBatched(conns []net.PacketConn, h Handler, cfg Config) *Engine {
	bcs := make([]netio.BatchConn, len(conns))
	for i, c := range conns {
		bcs[i] = netio.NewBatchConn(c)
	}
	return NewBatchedConns(conns, bcs, h, cfg)
}

// NewBatchedConns is NewBatched with the BatchConns already built:
// bcs[i] wraps conns[i] and becomes shard i's transport. This is how a
// daemon selects the io_uring backend — it builds netio.NewUringConn
// over each reuseport socket (falling back per ProbeUring) and hands
// the result here; the engine itself stays transport-agnostic behind
// the BatchConn seam.
func NewBatchedConns(conns []net.PacketConn, bcs []netio.BatchConn, h Handler, cfg Config) *Engine {
	if len(conns) == 0 {
		panic("dataplane: NewBatched needs at least one socket")
	}
	if len(bcs) != len(conns) {
		panic("dataplane: NewBatchedConns needs one BatchConn per socket")
	}
	arrival := cfg.ShardBy == nil
	cfg.Shards = len(conns)
	e := New(conns[0], h, cfg)
	e.batched = true
	e.arrivalDispatch = arrival
	e.bconns = bcs
	e.bh, _ = h.(BatchHandler)
	if cfg.GSOTx {
		if err := netio.ProbeGSO(); err != nil {
			log.Printf("%s: GSO TX requested but unavailable, serving per-datagram: %v", cfg.Name, err)
		} else {
			e.gsoTx = true
		}
	}
	return e
}

// Batched reports whether the engine runs in per-shard-socket batched
// mode.
func (e *Engine) Batched() bool { return e.batched }

// Backend names the transport rung serving the engine: "uring", "mmsg"
// or "single" in batched mode, "" in single-reader mode (which reads
// the net.PacketConn directly).
func (e *Engine) Backend() string {
	if !e.batched || len(e.bconns) == 0 {
		return ""
	}
	return netio.BackendOf(e.bconns[0])
}

// queuePollInterval bounds how long a batched shard blocks in recvmmsg
// before checking its cross-shard queue: the worst-case added latency
// for a handoff (or Barrier sentinel) landing on an otherwise idle
// socket. Under load reads return immediately and the deadline never
// fires.
const queuePollInterval = time.Millisecond

// batchState is one batched shard worker's reusable I/O state: receive
// slots with their pooled buffers, the item vector handed to batch
// handlers, per-item reply buffers, and the pending TX batch.
type batchState struct {
	e  *Engine
	s  *shard
	i  int
	bc netio.BatchConn

	rx     []netio.Message
	rxBufs []*[]byte

	// free is the worker-private receive-buffer free list (cap
	// cfg.BufCache): pinned workers that recycle through the shared
	// sync.Pool steal buffers across CPUs, because a pool's per-P caches
	// follow the scheduler rather than the pinned thread. Buffers parked
	// here remain counted in bufsOut (they are outside the pool) and are
	// drained back by release() so the leak invariant still holds.
	free []*[]byte

	items     []BatchItem
	ptrs      []*BatchItem
	host      []*BatchItem
	replyBufs [][]byte

	qpkts []packet
	tx    []netio.Message

	// GSO train-building scratch (engine.gsoTx): txOut is the staged
	// send vector after coalescing, trainBufs the reused buffers train
	// payloads are copied into (replies may alias receive buffers, and a
	// train must survive until the uring CQE; the copy settles both).
	txOut     []netio.Message
	txUsed    []bool
	txIdx     []int
	trainBufs [][]byte
}

func (e *Engine) newBatchState(i int) *batchState {
	n := e.cfg.RxBatch
	w := &batchState{
		e: e, s: e.shards[i], i: i, bc: e.bconns[i],
		rx:        make([]netio.Message, n),
		rxBufs:    make([]*[]byte, n),
		free:      make([]*[]byte, 0, e.cfg.BufCache),
		items:     make([]BatchItem, n),
		ptrs:      make([]*BatchItem, 0, n),
		host:      make([]*BatchItem, 0, n),
		replyBufs: make([][]byte, n),
		qpkts:     make([]packet, 0, n),
		tx:        make([]netio.Message, 0, n),
		txOut:     make([]netio.Message, 0, n),
		txUsed:    make([]bool, 0, n),
		txIdx:     make([]int, 0, n),
	}
	for k := range w.replyBufs {
		w.replyBufs[k] = make([]byte, 0, 512)
	}
	return w
}

// batchWorker is shard i's goroutine in batched mode: it owns the
// shard's socket and the shard's queue, so all traffic for the shard —
// read inline or handed off by another reader — is serialized by one
// goroutine, preserving the per-flow (and per-key) ordering contract.
func (e *Engine) batchWorker(i int) {
	defer e.workersWG.Done()
	if e.cfg.PinShards {
		// The thread must be locked before the affinity call or the Go
		// scheduler migrates the goroutine off the pinned thread. With
		// fewer cores than shards, shards share cores modulo NumCPU —
		// still a win for cache locality, though pinning buys the most
		// when every shard owns a whole core.
		runtime.LockOSThread()
		cpu := i % runtime.NumCPU()
		if err := netio.PinThread(cpu); err != nil {
			if i == 0 {
				log.Printf("%s: shard pinning unavailable, continuing unpinned: %v", e.cfg.Name, err)
			}
		} else {
			e.pinned.Store(true)
		}
	}
	w := e.newBatchState(i)
	for !e.closing.Load() {
		_ = w.bc.SetReadDeadline(time.Now().Add(queuePollInterval))
		w.fillRx()
		n, err := w.bc.ReadBatch(w.rx)
		if err == nil {
			w.s.readBatches.Add(1)
			w.processRead(n)
		} else if !isTimeout(err) {
			if e.closing.Load() {
				break
			}
			if errors.Is(err, net.ErrClosed) {
				log.Printf("%s: shard %d socket closed unexpectedly: %v", e.cfg.Name, i, err)
				break
			}
			if c := e.readErrs.Add(1); c&(c-1) == 0 {
				log.Printf("%s: transient read error (#%d, serving continues): %v", e.cfg.Name, c, err)
			}
		}
		w.drainQueue(false)
	}
	e.readPhase.Done()
	// Final drain: once every reader has left its read phase, Close
	// closes the queues; handle what is left (and any Barrier sentinel
	// racing the shutdown), then return the receive slots to the pool.
	w.drainQueue(true)
	w.release()
}

func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// getBuf takes a buffer from the worker's private free list, falling
// back to the shared pool.
func (w *batchState) getBuf() *[]byte {
	if n := len(w.free); n > 0 {
		bufp := w.free[n-1]
		w.free = w.free[:n-1]
		w.e.bufsCached.Add(-1)
		return bufp
	}
	return w.e.getBuf()
}

// putBuf parks a buffer on the worker's free list, overflowing into the
// shared pool when the list is full (or disabled).
func (w *batchState) putBuf(bufp *[]byte) {
	if len(w.free) < cap(w.free) {
		w.free = append(w.free, bufp)
		w.e.bufsCached.Add(1)
		return
	}
	w.e.putBuf(bufp)
}

// fillRx tops up receive slots whose buffers moved into a cross-shard
// queue since the last read.
func (w *batchState) fillRx() {
	for j := range w.rx {
		if w.rxBufs[j] == nil {
			bufp := w.getBuf()
			w.rxBufs[j] = bufp
			w.rx[j].Buf = (*bufp)[:w.e.cfg.MaxDatagram]
		}
	}
}

// processRead dispatches one received batch: same-shard datagrams are
// handled inline (no channel hop), cross-shard ones are handed to the
// owning shard's queue with buffer ownership.
func (w *batchState) processRead(n int) {
	e, s := w.e, w.s
	w.ptrs = w.ptrs[:0]
	k := 0
	for j := 0; j < n; j++ {
		m := &w.rx[j]
		payload := m.Buf[:m.N]
		if !m.Src.IsValid() {
			// Same guard as the single-reader readLoop: a transport that
			// cannot produce a source address (portable fallback over a
			// custom conn) must not dispatch a zero source. The slot
			// keeps its buffer.
			if c := s.badSrc.Add(1); c&(c-1) == 0 {
				log.Printf("%s: dropped datagram with unusable source address (#%d)", e.cfg.Name, c)
			}
			continue
		}
		if e.arrivalDispatch {
			it := &w.items[k]
			*it = BatchItem{In: payload, Src: m.Src, Scratch: &w.replyBufs[k]}
			k++
			w.ptrs = append(w.ptrs, it)
			continue
		}
		t := e.shardIndex(payload, m.Src)
		if t == w.i {
			it := &w.items[k]
			*it = BatchItem{In: payload, Src: m.Src, Scratch: &w.replyBufs[k]}
			k++
			w.ptrs = append(w.ptrs, it)
			continue
		}
		target := e.shards[t]
		target.received.Add(1)
		select {
		case target.ch <- packet{buf: w.rxBufs[j], n: m.N, src: m.Src}:
			// Ownership moved to the queue; refill the slot next read.
			w.rxBufs[j] = nil
			w.rx[j].Buf = nil
		default:
			target.dropped.Add(1)
			// Keep the buffer in the slot for the next read.
		}
	}
	if k > 0 {
		s.received.Add(uint64(k))
		w.processItems(w.ptrs)
	}
	w.flushTx()
}

// drainQueue consumes the shard's cross-shard queue in batches. With
// final unset it stops when the queue is momentarily empty (the caller
// goes back to its socket); with final set it blocks until the queue is
// closed and fully drained.
func (w *batchState) drainQueue(final bool) {
	for {
		pkts, barrier, closed := w.collectQueued(final)
		if len(pkts) > 0 {
			w.processQueued(pkts)
		}
		w.flushTx()
		if barrier != nil {
			barrier <- struct{}{}
			continue
		}
		if closed || len(pkts) == 0 && !final {
			return
		}
	}
}

// collectQueued pulls up to RxBatch queued packets, blocking for the
// first when final is set. It stops early at a Barrier sentinel so
// packets queued ahead of the sentinel are handled before it is
// signaled.
func (w *batchState) collectQueued(final bool) (pkts []packet, barrier chan<- struct{}, closed bool) {
	pkts = w.qpkts[:0]
	for len(pkts) < w.e.cfg.RxBatch {
		var pkt packet
		var ok bool
		if final && len(pkts) == 0 {
			pkt, ok = <-w.s.ch
		} else {
			select {
			case pkt, ok = <-w.s.ch:
			default:
				return pkts, nil, false
			}
		}
		if !ok {
			return pkts, nil, true
		}
		if pkt.barrier != nil {
			return pkts, pkt.barrier, false
		}
		pkts = append(pkts, pkt)
	}
	return pkts, nil, false
}

func (w *batchState) processQueued(pkts []packet) {
	w.ptrs = w.ptrs[:0]
	for k := range pkts {
		it := &w.items[k]
		*it = BatchItem{In: (*pkts[k].buf)[:pkts[k].n], Src: pkts[k].src, Scratch: &w.replyBufs[k]}
		w.ptrs = append(w.ptrs, it)
	}
	w.processItems(w.ptrs)
	// Flush before releasing the receive buffers: a handler may legally
	// return a reply aliasing its input, and a buffer back in the pool
	// can be recvmmsg'd into by another shard before sendmmsg runs.
	w.flushTx()
	for k := range pkts {
		w.putBuf(pkts[k].buf)
	}
}

// processItems runs one batch through the offload tier (batch form when
// the tier supports it) and the host handler (likewise), updating the
// shard counters once per batch and staging replies on the TX queue.
func (w *batchState) processItems(items []*BatchItem) {
	e, s := w.e, w.s
	if len(items) == 0 {
		return
	}
	if e.fastPath.Load() != nil {
		// Token first, then re-load — same fencing as the single-reader
		// worker, one token per batch.
		e.fpInflight.Add(1)
		if ref := e.fastPath.Load(); ref != nil {
			if bfp, ok := ref.fp.(BatchFastPath); ok {
				bfp.TryHandleBatch(items)
			} else {
				for _, it := range items {
					out, served, reply := ref.fp.TryHandleDatagram(it.In, it.Src, it.Scratch)
					if served {
						it.Served = true
						if reply {
							it.Out = out
						}
					}
				}
			}
		}
		e.fpInflight.Add(-1)
	}
	w.host = w.host[:0]
	for _, it := range items {
		if !it.Served {
			w.host = append(w.host, it)
		}
	}
	if served := len(items) - len(w.host); served > 0 {
		s.offloaded.Add(uint64(served))
	}
	if len(w.host) > 0 {
		switch {
		case e.bh != nil:
			e.bh.HandleBatch(w.host)
		case e.sh != nil:
			for _, it := range w.host {
				if out, ok := e.sh.HandleDatagramFrom(it.In, it.Src, it.Scratch); ok {
					it.Out = out
				}
			}
		default:
			for _, it := range w.host {
				if out, ok := e.h.HandleDatagram(it.In, it.Scratch); ok {
					it.Out = out
				}
			}
		}
	}
	s.handled.Add(uint64(len(items)))
	e.meter.Add(uint64(len(items)))
	for _, it := range items {
		if len(it.Out) > 0 {
			w.tx = append(w.tx, netio.Message{Buf: it.Out, N: len(it.Out), Src: it.Src})
		}
	}
}

// flushTx sends the staged replies, at most TxBatch per WriteBatch call.
// With GSO TX active the staged replies are first coalesced into
// destination-grouped UDP_SEGMENT trains; either way a message the
// socket rejects is counted and skipped, and the rest of the batch still
// goes out. Replies are counted in wire datagrams, so a train of 32
// segments is 32 replies.
func (w *batchState) flushTx() {
	s := w.s
	out := w.tx
	if w.e.gsoTx && len(out) > 1 {
		out = w.buildTrains()
	}
	for off := 0; off < len(out); {
		end := min(off+w.e.cfg.TxBatch, len(out))
		n, err := w.bc.WriteBatch(out[off:end])
		s.writeBatches.Add(1)
		sent := uint64(0)
		for k := off; k < off+n; k++ {
			sent += uint64(out[k].Segments())
		}
		s.replies.Add(sent)
		if err != nil {
			s.writeErrs.Add(1)
			off += n + 1
			continue
		}
		off = end
	}
	w.tx = w.tx[:0]
}

// buildTrains coalesces the staged replies into GSO trains: messages are
// grouped by destination (first-seen order across destinations, arrival
// order within one — the per-flow ordering contract), and each group is
// cut into equal-segment-size runs. A shorter reply may close a train as
// its final segment; a longer one starts a new run, exactly the
// UDP_SEGMENT wire format. Runs of one message pass through untouched
// (no copy, no cmsg); longer runs are copied into reused train buffers,
// which also detaches them from the pooled receive buffers a reply may
// alias. The DNS wire-answer cache and the Paxos encoder produce
// fixed-size reply images, so in practice one client's whole batch of
// replies folds into one train.
func (w *batchState) buildTrains() []netio.Message {
	out := w.txOut[:0]
	used := w.txUsed[:0]
	for range w.tx {
		used = append(used, false)
	}
	trains := 0
	for i := range w.tx {
		if used[i] {
			continue
		}
		idx := append(w.txIdx[:0], i)
		for j := i + 1; j < len(w.tx); j++ {
			if !used[j] && w.tx[j].Src == w.tx[i].Src {
				idx = append(idx, j)
				used[j] = true
			}
		}
		for k := 0; k < len(idx); {
			segSize := w.tx[idx[k]].N
			run, total := 1, segSize
			for k+run < len(idx) && run < netio.MaxTrainSegs {
				n := w.tx[idx[k+run]].N
				if n > segSize || total+n > netio.MaxTrainBytes {
					break
				}
				total += n
				run++
				if n < segSize {
					break // a short segment legally ends the train
				}
			}
			if run == 1 || segSize == 0 {
				out = append(out, w.tx[idx[k]])
				k++
				continue
			}
			buf := w.trainBuf(trains, total)
			trains++
			off := 0
			for r := 0; r < run; r++ {
				m := &w.tx[idx[k+r]]
				off += copy(buf[off:], m.Buf[:m.N])
			}
			out = append(out, netio.Message{Buf: buf, N: total, Src: w.tx[i].Src, SegSize: segSize})
			k += run
		}
		w.txIdx = idx[:0]
	}
	w.txOut = out[:0]
	w.txUsed = used[:0]
	return out
}

// trainBuf returns the i'th reusable train buffer with at least n bytes.
func (w *batchState) trainBuf(i, n int) []byte {
	for len(w.trainBufs) <= i {
		w.trainBufs = append(w.trainBufs, nil)
	}
	if cap(w.trainBufs[i]) < n {
		w.trainBufs[i] = make([]byte, n)
	}
	return w.trainBufs[i][:n]
}

// release returns the worker's receive-slot buffers and its private
// free list to the pool, so BuffersInFlight drains to zero on shutdown.
func (w *batchState) release() {
	for j, bufp := range w.rxBufs {
		if bufp != nil {
			w.e.putBuf(bufp)
			w.rxBufs[j] = nil
		}
	}
	for _, bufp := range w.free {
		w.e.bufsCached.Add(-1)
		w.e.putBuf(bufp)
	}
	w.free = w.free[:0]
}
