package dataplane

import (
	"bytes"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"incod/internal/netio"
)

// newBatchedEngine opens a reuseport group on loopback and builds a
// batched engine over it, skipping when the platform cannot open the
// group.
func newBatchedEngine(t *testing.T, sockets int, h Handler, cfg Config) *Engine {
	t.Helper()
	conns, err := netio.ListenReusePortGroup("udp4", "127.0.0.1:0", sockets)
	if err != nil {
		t.Skipf("reuseport group unavailable: %v", err)
	}
	return NewBatched(conns, h, cfg)
}

// echoClient round-trips msgs distinct payloads against addr with
// retries (UDP may drop), failing the test on a lost echo.
func echoClient(t *testing.T, addr, prefix string, msgs int) {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Error(err)
		return
	}
	defer conn.Close()
	buf := make([]byte, 2048)
	for m := 0; m < msgs; m++ {
		msg := fmt.Sprintf("%s-m%d", prefix, m)
		want := "echo:" + msg
		ok := false
		for attempt := 0; attempt < 5 && !ok; attempt++ {
			if _, err := conn.Write([]byte(msg)); err != nil {
				t.Error(err)
				return
			}
			conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
			n, err := conn.Read(buf)
			if err == nil && bytes.Equal(buf[:n], []byte(want)) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("client %s: no echo for %q", prefix, msg)
			return
		}
	}
}

var echoHandler = HandlerFunc(func(in []byte, scratch *[]byte) ([]byte, bool) {
	*scratch = append((*scratch)[:0], "echo:"...)
	*scratch = append(*scratch, in...)
	return *scratch, true
})

func TestBatchedEngineEchoOverLoopback(t *testing.T) {
	e := newBatchedEngine(t, 2, echoHandler, Config{Name: "test-batched"})
	e.Start()
	defer e.Close()

	const clients, msgs = 8, 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			echoClient(t, e.LocalAddr().String(), fmt.Sprintf("c%d", c), msgs)
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := e.Snapshot()
	if st.Mode != "batched" || st.Sockets != 2 {
		t.Fatalf("mode=%q sockets=%d, want batched/2", st.Mode, st.Sockets)
	}
	if st.Handled < clients*msgs {
		t.Fatalf("handled %d, want >= %d", st.Handled, clients*msgs)
	}
	if st.ReadBatches == 0 || st.WriteBatches == 0 {
		t.Fatalf("batch syscall counters not advancing: %+v", st)
	}
	if st.RxPerRead < 1 || st.TxPerWrite < 1 {
		t.Fatalf("amortization ratios below 1: rx=%.2f tx=%.2f", st.RxPerRead, st.TxPerWrite)
	}
}

func TestBatchedEngineCrossShardHandoff(t *testing.T) {
	// Every datagram dispatches to shard 1 regardless of which socket
	// the kernel picked, so roughly half the traffic must cross shards
	// through the queue — and still be answered.
	e := newBatchedEngine(t, 2, echoHandler, Config{
		Name:    "test-handoff",
		ShardBy: func([]byte, netip.AddrPort) uint64 { return 1 },
	})
	e.Start()
	defer e.Close()

	const clients, msgs = 6, 20
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			echoClient(t, e.LocalAddr().String(), fmt.Sprintf("x%d", c), msgs)
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := e.Snapshot()
	if got := st.Shards[0].Handled; got != 0 {
		t.Fatalf("shard 0 handled %d datagrams; dispatch pins everything to shard 1", got)
	}
	if got := st.Shards[1].Handled; got < clients*msgs {
		t.Fatalf("shard 1 handled %d, want >= %d", got, clients*msgs)
	}
}

// batchingEcho is an echo handler that records the batch sizes it was
// handed through the BatchHandler interface.
type batchingEcho struct {
	batches atomic.Uint64
	items   atomic.Uint64
}

func (b *batchingEcho) HandleDatagram(in []byte, scratch *[]byte) ([]byte, bool) {
	return echoHandler(in, scratch)
}

func (b *batchingEcho) HandleBatch(items []*BatchItem) {
	b.batches.Add(1)
	b.items.Add(uint64(len(items)))
	for _, it := range items {
		out, _ := echoHandler(it.In, it.Scratch)
		it.Out = out
	}
}

// halfFastPath is a BatchFastPath that consumes datagrams with an odd
// trailing byte, replying "tier:<payload>", and records batch calls.
type halfFastPath struct {
	batches atomic.Uint64
}

func (f *halfFastPath) TryHandleDatagram(in []byte, _ netip.AddrPort, scratch *[]byte) ([]byte, bool, bool) {
	if len(in) == 0 || in[len(in)-1]%2 == 0 {
		return nil, false, false
	}
	*scratch = append((*scratch)[:0], "tier:"...)
	*scratch = append(*scratch, in...)
	return *scratch, true, true
}

func (f *halfFastPath) TryHandleBatch(items []*BatchItem) {
	f.batches.Add(1)
	for _, it := range items {
		// Items must each own their scratch: encode through the same
		// per-item path the engine promises.
		if out, served, reply := f.TryHandleDatagram(it.In, it.Src, it.Scratch); served {
			it.Served = true
			if reply {
				it.Out = out
			}
		}
	}
}

func TestBatchedEngineBatchHandlerAndBatchFastPath(t *testing.T) {
	h := &batchingEcho{}
	e := newBatchedEngine(t, 2, h, Config{Name: "test-batchiface"})
	fp := &halfFastPath{}
	e.SetFastPath(fp)
	e.Start()
	defer e.Close()

	conn, err := net.Dial("udp", e.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 2048)
	tierReplies, hostReplies := 0, 0
	const msgs = 40
	for m := 0; m < msgs; m++ {
		msg := fmt.Sprintf("m%d", m) // trailing digit alternates parity
		var reply string
		for attempt := 0; attempt < 5 && reply == ""; attempt++ {
			if _, err := conn.Write([]byte(msg)); err != nil {
				t.Fatal(err)
			}
			conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
			if n, err := conn.Read(buf); err == nil {
				reply = string(buf[:n])
			}
		}
		switch reply {
		case "tier:" + msg:
			tierReplies++
		case "echo:" + msg:
			hostReplies++
		default:
			t.Fatalf("message %q: bad reply %q", msg, reply)
		}
	}
	if tierReplies == 0 || hostReplies == 0 {
		t.Fatalf("want a mix of tier and host replies, got %d/%d", tierReplies, hostReplies)
	}
	if h.batches.Load() == 0 {
		t.Fatal("BatchHandler.HandleBatch never called")
	}
	if fp.batches.Load() == 0 {
		t.Fatal("BatchFastPath.TryHandleBatch never called")
	}
	st := e.Snapshot()
	if st.Offloaded == 0 || st.Offloaded != uint64(tierReplies) {
		t.Fatalf("offloaded=%d, want %d", st.Offloaded, tierReplies)
	}
}

func TestBatchedEngineBarrierAndClose(t *testing.T) {
	e := newBatchedEngine(t, 2, echoHandler, Config{Name: "test-barrier"})
	e.Start()

	// Barrier against live batched workers must complete promptly even
	// with idle sockets (the queue poll bounds the wait).
	done := make(chan struct{})
	go func() { e.Barrier(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Barrier stuck against idle batched workers")
	}

	echoClient(t, e.LocalAddr().String(), "pre-close", 10)
	e.Close()
	st := e.Snapshot()
	if st.BuffersInFlight != 0 {
		t.Fatalf("%d pooled buffers leaked after Close", st.BuffersInFlight)
	}
	// Closing twice (and a post-close Barrier) must not hang or panic.
	e.Close()
	e.Barrier()
}
