package dataplane_test

// Batched-vs-uring engine equivalence: the same handlers serving the
// same request stream through the recvmmsg/sendmmsg transport and the
// io_uring transport must produce byte-identical replies. The transport
// rung is pure I/O plumbing — any divergence here is a framing or
// buffer-ownership bug in the uring backend, not a protocol decision.

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"incod/internal/dataplane"
	"incod/internal/dns"
	"incod/internal/kvs"
	"incod/internal/memcache"
	"incod/internal/netio"
)

// serveBackend starts a batched engine over a 2-socket reuseport group
// using the named netio backend and returns it with its address.
func serveBackend(t *testing.T, backend string, h dataplane.Handler, cfg dataplane.Config) (*dataplane.Engine, string) {
	t.Helper()
	conns, err := netio.ListenReusePortGroup("udp4", "127.0.0.1:0", 2)
	if err != nil {
		t.Skipf("reuseport group unavailable: %v", err)
	}
	bcs := make([]netio.BatchConn, len(conns))
	for i, c := range conns {
		switch backend {
		case "uring":
			bc, err := netio.NewUringConn(c, netio.UringConfig{})
			if err != nil {
				// The probe said the kernel can do this; a per-socket
				// failure is a real bug, not a skip.
				t.Fatalf("uring conn over reuseport socket: %v", err)
			}
			bcs[i] = bc
		default:
			bcs[i] = netio.NewBatchConn(c)
		}
	}
	e := dataplane.NewBatchedConns(conns, bcs, h, cfg)
	e.Start()
	t.Cleanup(e.Close)
	return e, conns[0].LocalAddr().String()
}

func TestBatchedVsUringByteIdenticalReplies(t *testing.T) {
	if err := netio.ProbeUring(); err != nil {
		t.Skipf("io_uring unavailable: %v", err)
	}

	// compare sends every request to both engines and demands the same
	// bytes back from each.
	compare := func(t *testing.T, addrA, addrB string, reqs [][]byte) {
		connA, err := net.Dial("udp", addrA)
		if err != nil {
			t.Fatal(err)
		}
		defer connA.Close()
		connB, err := net.Dial("udp", addrB)
		if err != nil {
			t.Fatal(err)
		}
		defer connB.Close()
		for i, req := range reqs {
			a := exchange(t, connA, req)
			b := exchange(t, connB, req)
			if !bytes.Equal(a, b) {
				t.Fatalf("request %d: batched reply %q != uring reply %q", i, a, b)
			}
		}
	}

	t.Run("dns", func(t *testing.T) {
		zone := dns.NewZone()
		zone.PopulateSequential(16)
		eA, addrA := serveBackend(t, "mmsg", dns.NewHandler(zone), dataplane.Config{Name: "equiv-dns-mmsg"})
		eB, addrB := serveBackend(t, "uring", dns.NewHandler(zone), dataplane.Config{Name: "equiv-dns-uring"})
		if got := eA.Backend(); got != "mmsg" {
			t.Fatalf("batched engine backend = %q, want mmsg", got)
		}
		if got := eB.Backend(); got != "uring" {
			t.Fatalf("uring engine backend = %q, want uring", got)
		}
		var reqs [][]byte
		for i := 0; i < 16; i++ {
			q, err := dns.Encode(dns.NewQuery(uint16(1000+i), dns.SequentialName(i)))
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, q)
		}
		// NXDOMAIN and a case-folded hit must also match.
		q, _ := dns.Encode(dns.NewQuery(2000, "nowhere.example.com"))
		reqs = append(reqs, q)
		q, _ = dns.Encode(dns.NewQuery(2001, "HOST3.EXAMPLE.COM"))
		reqs = append(reqs, q)
		compare(t, addrA, addrB, reqs)
	})

	t.Run("kvs", func(t *testing.T) {
		// Separate stores, mutated by the same request stream: replies
		// stay identical only if both transports deliver every payload
		// intact and in usable form.
		mk := func(name string) string {
			_, addr := serveBackend(t, map[bool]string{true: "uring", false: "mmsg"}[name == "uring"],
				kvs.NewHandler(kvs.NewShardedStore(4, 0)),
				dataplane.Config{Name: "equiv-kvs-" + name, ShardBy: kvs.ShardByKey})
			return addr
		}
		addrA, addrB := mk("mmsg"), mk("uring")
		var reqs [][]byte
		frame := func(id uint16, r memcache.Request) []byte {
			return memcache.EncodeFrame(memcache.Frame{RequestID: id, Total: 1}, memcache.EncodeRequest(r))
		}
		for i := 0; i < 8; i++ {
			key := fmt.Sprintf("key-%d", i)
			reqs = append(reqs,
				frame(uint16(3000+i), memcache.Request{Op: memcache.OpSet, Key: key,
					Flags: uint32(i), Value: []byte(fmt.Sprintf("value-%d", i))}),
				frame(uint16(3100+i), memcache.Request{Op: memcache.OpGet, Key: key}))
		}
		reqs = append(reqs,
			frame(3200, memcache.Request{Op: memcache.OpGet, Key: "missing"}),
			frame(3201, memcache.Request{Op: memcache.OpDelete, Key: "key-0"}),
			frame(3202, memcache.Request{Op: memcache.OpGet, Key: "key-0"}),
			[]byte("get key-1\r\n"), // raw ASCII path through both transports
		)
		compare(t, addrA, addrB, reqs)
	})
}
