// Package dataplane is the shared UDP serving runtime behind the live
// daemons (inckvsd, incdnsd, incpaxosd). The paper's premise — services
// shift between host software and network hardware on demand — only pays
// off if the host path can absorb line-rate traffic, so this package
// replaces the daemons' copy-pasted single-goroutine read loops with one
// concurrent engine:
//
//   - one reader goroutine pulls datagrams off the socket into pooled
//     buffers (sync.Pool, zero steady-state allocation);
//   - N shard workers consume from per-shard queues. Dispatch is hashed —
//     by source address by default, or by protocol key (e.g. the memcached
//     key, kvs.ShardByKey) so one shard owns one key range — which keeps
//     per-source (and per-key) ordering while spreading load across cores;
//   - handlers implement the small Handler interface and encode replies
//     into a per-worker scratch buffer, so the memcached GET hot path runs
//     with zero per-request heap allocations;
//   - an offload tier (FastPath) can be interposed on dispatch before
//     the host handler: the emulated NIC of internal/nictier. SetFastPath
//     atomically flips dispatch to the tier, Barrier fences host work that
//     predates the flip, and ClearFastPath drains the tier without
//     dropping in-flight requests — the mechanics a live placement shift
//     is built on;
//   - Close drains gracefully: the reader stops, queued datagrams are
//     still handled and answered, then the socket closes. Daemons wire
//     this into daemon.OnShutdown;
//   - per-shard counters and a shared telemetry.AtomicRateMeter feed both
//     the /v1 control API (GET /v1/dataplane) and the on-demand
//     orchestrator, which samples the meter's monotonic total instead of
//     paying a per-packet Observe call.
//
// Transient socket errors (e.g. Linux delivering an async ICMP
// port-unreachable after a write to a vanished client) are counted and
// served through; the engine exits its read loop only when shutdown
// closed the socket.
package dataplane
