// Package dataplane is the shared UDP serving runtime behind the live
// daemons (inckvsd, incdnsd, incpaxosd). The paper's premise — services
// shift between host software and network hardware on demand — only pays
// off if the host path can absorb line-rate traffic, so this package
// provides one concurrent engine with two I/O modes.
//
// # Single-reader mode (New)
//
//   - one reader goroutine pulls datagrams off the socket into pooled
//     buffers (sync.Pool, zero steady-state allocation);
//   - N shard workers consume from per-shard queues. Dispatch is hashed —
//     by source address by default, or by protocol key (e.g. the memcached
//     key, kvs.ShardByKey) so one shard owns one key range — which keeps
//     per-source (and per-key) ordering while spreading load across cores;
//   - handlers implement the small Handler interface and encode replies
//     into a per-worker scratch buffer, so the memcached GET hot path runs
//     with zero per-request heap allocations.
//
// This mode works over any net.PacketConn (tests, in-memory transports,
// non-Linux platforms) but pays two syscalls per request — one read, one
// write — through a single reader.
//
// # Batched per-shard-socket mode (NewBatched)
//
// The software answer to the NIC's per-packet amortization: cut the
// syscalls-per-packet from 2 to 2/B. Each shard owns one socket of a
// SO_REUSEPORT group (netio.ListenReusePortGroup) and is its own reader:
// it recvmmsg's up to RxBatch datagrams per syscall straight into pooled
// buffers, handles them, and flushes the replies with one sendmmsg per
// TxBatch. At the default RxBatch/TxBatch of 32 a full batch costs
// 2/32 = 0.0625 syscalls per packet, and GET /v1/dataplane reports the
// achieved amortization (rx_per_read, tx_per_write).
//
// Dispatch in batched mode: with the default ShardBy, the arrival socket
// is the shard — the kernel's reuseport 4-tuple hash pins each flow to
// one socket, so per-flow ordering holds with no cross-shard hop at all
// (one flow -> one socket -> one shard), preserving the fairness of
// processor-sharing service across flows. An explicit ShardBy
// (kvs.ShardByKey, whose per-key serialization the offload tier's
// coherence depends on) re-enables the handoff: same-shard datagrams are
// still handled inline, cross-shard ones move to the owning shard's
// queue, which that shard's worker drains between its own socket batches
// (bounded by a 1ms queue poll when its socket is idle).
//
// Handlers that implement BatchHandler (and offload tiers implementing
// BatchFastPath) receive whole batches and amortize per-request work
// further: kvs.Handler reads the virtual clock once and takes each store
// shard's lock once per batch; nictier.KVSTier checks its epoch once per
// batch.
//
// # Overload memory bound
//
// Every queued packet and every in-flight receive slot pins one
// MaxDatagram-sized pooled buffer, so the engine's overload memory is
// bounded by
//
//	Sockets*RxBatch*MaxDatagram + Shards*QueueDepth*MaxDatagram
//
// (the first term is zero in single-reader mode, where the lone reader
// holds one buffer at a time). When a shard's queue is full the datagram
// is dropped and counted, like a NIC ring overrun — backpressure never
// blocks a reader. Protocols with small datagrams (DNS) should pass
// their own MaxDatagram to shrink both terms.
//
// # Shared across both modes
//
//   - an offload tier (FastPath / BatchFastPath) can be interposed on
//     dispatch before the host handler: the emulated NIC of
//     internal/nictier. SetFastPath atomically flips dispatch to the
//     tier, Barrier fences host work that predates the flip, and
//     ClearFastPath drains the tier without dropping in-flight requests
//     — the mechanics a live placement shift is built on;
//   - Close drains gracefully: the reader(s) stop, queued datagrams are
//     still handled and answered, then the socket(s) close. Daemons wire
//     this into daemon.OnShutdown;
//   - per-shard counters and a shared telemetry.AtomicRateMeter feed both
//     the /v1 control API (GET /v1/dataplane) and the on-demand
//     orchestrator, which samples the meter's monotonic total instead of
//     paying a per-packet Observe call.
//
// Transient socket errors (e.g. Linux delivering an async ICMP
// port-unreachable after a write to a vanished client) are counted and
// served through; the engine exits its read loop only when shutdown
// closed the socket. Datagrams whose source address cannot be derived
// (exotic transports) are counted (bad_source_drops) and dropped rather
// than dispatched with a zero source.
package dataplane
