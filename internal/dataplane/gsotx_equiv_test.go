package dataplane_test

// GSO-train-vs-per-datagram equivalence: a batched engine with GSOTx
// coalesces same-destination replies into UDP_SEGMENT trains, and the
// kernel segments them back into individual datagrams at delivery — so a
// client without GRO must receive byte-identical replies from a GSO-TX
// engine and a per-datagram one. Any divergence is a train-builder bug
// (mis-cut run, wrong segment size, buffer aliasing), which is exactly
// what this test exists to catch, for all three protocols, under -race.

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"incod/internal/dataplane"
	"incod/internal/dns"
	"incod/internal/kvs"
	"incod/internal/memcache"
	"incod/internal/netio"
	"incod/internal/paxos"
)

// gsoReplyID extracts the protocol's correlation id from a reply so the
// window exchange can match replies to requests regardless of arrival
// order.
func gsoReplyID(proto string, payload []byte) (uint16, bool) {
	switch proto {
	case "kvs":
		frame, _, err := memcache.DecodeFrame(payload)
		if err != nil {
			return 0, false
		}
		return frame.RequestID, true
	case "dns":
		m, err := dns.Decode(payload, 0)
		if err != nil || !m.Response {
			return 0, false
		}
		return m.ID, true
	case "paxos":
		var v paxos.MsgView
		if paxos.DecodeView(payload, &v) != nil {
			return 0, false
		}
		return uint16(v.Instance), true
	}
	return 0, false
}

// exchangeWindows drives reqs at addr in windows of 32 outstanding
// requests per WriteBatch — the shape that lets the server's flush
// coalesce a whole window of replies into one train — and returns the
// replies keyed by correlation id.
func exchangeWindows(t *testing.T, proto, addr string, reqs [][]byte) map[uint16][]byte {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bc := netio.NewBatchConn(conn.(*net.UDPConn))
	defer bc.Close()

	const window = 32
	got := make(map[uint16][]byte, len(reqs))
	rx := make([]netio.Message, window)
	for i := range rx {
		rx[i].Buf = make([]byte, 4096)
	}
	for off := 0; off < len(reqs); off += window {
		end := min(off+window, len(reqs))
		tx := make([]netio.Message, 0, window)
		for _, r := range reqs[off:end] {
			tx = append(tx, netio.Message{Buf: r, N: len(r)})
		}
		if _, err := bc.WriteBatch(tx); err != nil {
			t.Fatal(err)
		}
		want := end - off
		deadline := time.Now().Add(5 * time.Second)
		for n := 0; n < want; {
			_ = bc.SetReadDeadline(deadline)
			m, err := bc.ReadBatch(rx)
			if err != nil {
				t.Fatalf("window at %d: %d/%d replies then %v", off, n, want, err)
			}
			for i := 0; i < m; i++ {
				id, ok := gsoReplyID(proto, rx[i].Buf[:rx[i].N])
				if !ok {
					t.Fatalf("window at %d: undecodable reply %q", off, rx[i].Buf[:rx[i].N])
				}
				got[id] = append([]byte(nil), rx[i].Buf[:rx[i].N]...)
				n++
			}
		}
	}
	return got
}

// serveGSOBackend is serveBackend plus the GSOTx knob.
func serveGSOBackend(t *testing.T, backend string, gsoTx bool, h dataplane.Handler, cfg dataplane.Config) (*dataplane.Engine, string) {
	t.Helper()
	cfg.GSOTx = gsoTx
	return serveBackend(t, backend, h, cfg)
}

func TestGSOTrainTxByteIdenticalReplies(t *testing.T) {
	if err := netio.ProbeGSO(); err != nil {
		t.Skipf("UDP GSO unavailable: %v", err)
	}

	// Three engine variants per protocol: per-datagram mmsg (the
	// reference), mmsg with train TX, and — when the kernel can — uring
	// with train TX (trains as SENDMSG SQEs).
	type variant struct {
		backend string
		gsoTx   bool
	}
	variants := []variant{{"mmsg", false}, {"mmsg", true}}
	if netio.ProbeUring() == nil {
		variants = append(variants, variant{"uring", true})
	}

	run := func(t *testing.T, proto string, mkHandler func() dataplane.Handler, cfg dataplane.Config, reqs [][]byte) {
		var ref map[uint16][]byte
		for _, v := range variants {
			name := v.backend
			if v.gsoTx {
				name += "+gso"
			}
			e, addr := serveGSOBackend(t, v.backend, v.gsoTx, mkHandler(), cfg)
			got := exchangeWindows(t, proto, addr, reqs)
			if len(got) != len(reqs) {
				t.Fatalf("%s: %d distinct replies for %d requests", name, len(got), len(reqs))
			}
			st := e.Snapshot()
			if v.gsoTx {
				if !st.GSOTx {
					t.Fatalf("%s: engine reports gso_tx=false", name)
				}
				if st.TxTrains == 0 {
					t.Fatalf("%s: no trains were built (stats %+v) — the equivalence claim would be vacuous", name, st)
				}
				if v.backend == "uring" && st.RingSends == 0 {
					t.Fatalf("%s: trains did not ride the ring (stats %+v)", name, st)
				}
			}
			if ref == nil {
				ref = got
				continue
			}
			for id, want := range ref {
				if !bytes.Equal(got[id], want) {
					t.Fatalf("%s: reply %d = %q, want %q (per-datagram reference)", name, id, got[id], want)
				}
			}
		}
	}

	t.Run("dns", func(t *testing.T) {
		zone := dns.NewZone()
		zone.PopulateSequential(64)
		var reqs [][]byte
		for i := 0; i < 64; i++ {
			q, err := dns.Encode(dns.NewQuery(uint16(1000+i), dns.SequentialName(i%64)))
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, q)
		}
		// An NXDOMAIN mid-window: a different-size reply must cut the
		// train correctly, not corrupt its neighbors.
		q, _ := dns.Encode(dns.NewQuery(2000, "nowhere.example.com"))
		reqs = append(reqs, q)
		run(t, "dns", func() dataplane.Handler { return dns.NewHandler(zone) },
			dataplane.Config{Name: "gso-equiv-dns", MaxDatagram: 4096}, reqs)
	})

	t.Run("kvs", func(t *testing.T) {
		frame := func(id uint16, r memcache.Request) []byte {
			return memcache.EncodeFrame(memcache.Frame{RequestID: id, Total: 1}, memcache.EncodeRequest(r))
		}
		var reqs [][]byte
		for i := 0; i < 16; i++ {
			reqs = append(reqs, frame(uint16(3000+i), memcache.Request{
				Op: memcache.OpSet, Key: fmt.Sprintf("key-%02d", i),
				Flags: uint32(i), Value: []byte(fmt.Sprintf("value-%02d", i))}))
		}
		for i := 0; i < 16; i++ {
			reqs = append(reqs, frame(uint16(3100+i), memcache.Request{
				Op: memcache.OpGet, Key: fmt.Sprintf("key-%02d", i)}))
		}
		reqs = append(reqs,
			frame(3200, memcache.Request{Op: memcache.OpGet, Key: "missing"}),
			frame(3201, memcache.Request{Op: memcache.OpDelete, Key: "key-00"}),
			frame(3202, memcache.Request{Op: memcache.OpGet, Key: "key-00"}))
		// Fresh store per engine: the same mutation stream must produce
		// the same replies through either TX mode.
		run(t, "kvs", func() dataplane.Handler { return kvs.NewHandler(kvs.NewShardedStore(2, 0)) },
			dataplane.Config{Name: "gso-equiv-kvs", ShardBy: kvs.ShardByKey}, reqs)
	})

	t.Run("paxos", func(t *testing.T) {
		var reqs [][]byte
		for i := 0; i < 64; i++ {
			reqs = append(reqs, paxos.Encode(paxos.Msg{
				Type: paxos.MsgPhase2A, Instance: uint64(i + 1), Ballot: 3,
				Seq: uint64(i), ClientAddr: "client-1:2345", Value: []byte("value-of-modest-size")}))
		}
		run(t, "paxos", func() dataplane.Handler {
			return paxos.NewLiveAcceptor(1, nil, func(string, paxos.Msg) {})
		}, dataplane.Config{Name: "gso-equiv-paxos", MaxDatagram: 4096}, reqs)
	})
}
