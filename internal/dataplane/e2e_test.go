package dataplane_test

// Loopback end-to-end tests: each daemon's handler served by the real
// engine over real UDP sockets, speaking the real wire protocols.

import (
	"fmt"
	"net"
	"testing"
	"time"

	"incod/internal/dataplane"
	"incod/internal/dns"
	"incod/internal/kvs"
	"incod/internal/memcache"
	"incod/internal/paxos"
	"incod/internal/simnet"
)

func serve(t *testing.T, h dataplane.Handler, cfg dataplane.Config) (*dataplane.Engine, string) {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	e := dataplane.New(conn, h, cfg)
	e.Start()
	t.Cleanup(e.Close)
	return e, conn.LocalAddr().String()
}

// exchange sends req and waits for one reply, retrying a few times since
// UDP may drop even on loopback.
func exchange(t *testing.T, conn net.Conn, req []byte) []byte {
	t.Helper()
	buf := make([]byte, 64*1024)
	for attempt := 0; attempt < 5; attempt++ {
		if _, err := conn.Write(req); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		n, err := conn.Read(buf)
		if err == nil {
			return append([]byte(nil), buf[:n]...)
		}
	}
	t.Fatalf("no reply to %q", req)
	return nil
}

func TestE2EKVSFramedAndRawASCII(t *testing.T) {
	store := kvs.NewShardedStore(4, 0)
	e, addr := serve(t, kvs.NewHandler(store),
		dataplane.Config{Name: "kvs-e2e", Shards: 4, ShardBy: kvs.ShardByKey})
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Framed memcached UDP: set then get.
	set := memcache.EncodeFrame(memcache.Frame{RequestID: 11, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpSet, Key: "alpha", Flags: 5, Value: []byte("beta")}))
	out := exchange(t, conn, set)
	f, body, err := memcache.DecodeFrame(out)
	if err != nil || f.RequestID != 11 {
		t.Fatalf("set reply frame %+v, err %v", f, err)
	}
	if resp, err := memcache.ParseResponse(body); err != nil || resp.Status != memcache.StatusStored {
		t.Fatalf("set reply %+v, err %v", resp, err)
	}
	get := memcache.EncodeFrame(memcache.Frame{RequestID: 12, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: "alpha"}))
	out = exchange(t, conn, get)
	if _, body, err = memcache.DecodeFrame(out); err != nil {
		t.Fatal(err)
	}
	resp, err := memcache.ParseResponse(body)
	if err != nil || !resp.Hit || string(resp.Value) != "beta" || resp.Flags != 5 {
		t.Fatalf("framed get reply %+v, err %v", resp, err)
	}

	// Raw ASCII (the socat/netcat path).
	out = exchange(t, conn, []byte("get alpha\r\n"))
	resp, err = memcache.ParseResponse(out)
	if err != nil || !resp.Hit || string(resp.Value) != "beta" {
		t.Fatalf("raw get reply %+v, err %v", resp, err)
	}
	out = exchange(t, conn, []byte("delete alpha\r\n"))
	if resp, err = memcache.ParseResponse(out); err != nil || resp.Status != memcache.StatusDeleted {
		t.Fatalf("raw delete reply %+v, err %v", resp, err)
	}

	if st := e.Snapshot(); st.Handled < 4 || st.Handler["hits"] < 2 {
		t.Fatalf("engine stats after e2e: %+v", st)
	}
}

func TestE2EDNS(t *testing.T) {
	zone := dns.NewZone()
	zone.PopulateSequential(4)
	e, addr := serve(t, dns.NewHandler(zone), dataplane.Config{Name: "dns-e2e", Shards: 2})
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	q, err := dns.Encode(dns.NewQuery(77, dns.SequentialName(2)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := dns.Decode(exchange(t, conn, q), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Response || !m.HasAnswer || m.ID != 77 || m.RCode != dns.RCodeNoError {
		t.Fatalf("answer: %+v", m)
	}
	if m.Addr != [4]byte{10, 0, 0, 2} {
		t.Fatalf("addr = %v", m.Addr)
	}

	// Unknown name: NXDOMAIN.
	q, _ = dns.Encode(dns.NewQuery(78, "nowhere.example.com"))
	if m, err = dns.Decode(exchange(t, conn, q), 0); err != nil || m.RCode != dns.RCodeNXDomain {
		t.Fatalf("nxdomain: %+v err %v", m, err)
	}

	if st := e.Snapshot(); st.Handler["answered"] < 1 || st.Handler["nxdomain"] < 1 {
		t.Fatalf("dns handler counters: %v", st.Handler)
	}
}

func TestE2EPaxosConsensusOverLoopback(t *testing.T) {
	// Sockets first, so every role knows its peers' addresses.
	mkConn := func() net.PacketConn {
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	sender := func(conn net.PacketConn) paxos.Sender {
		return func(to string, m paxos.Msg) {
			if addr, err := net.ResolveUDPAddr("udp", to); err == nil {
				conn.WriteTo(paxos.Encode(m), addr)
			}
		}
	}

	learnerConn := mkConn()
	leaderConn := mkConn()
	accConns := []net.PacketConn{mkConn(), mkConn(), mkConn()}
	learners := []string{learnerConn.LocalAddr().String()}
	var accAddrs []string
	for _, c := range accConns {
		accAddrs = append(accAddrs, c.LocalAddr().String())
	}

	learner := paxos.NewLiveLearner(2, leaderConn.LocalAddr().String(), sender(learnerConn))
	learner.Start(50 * time.Millisecond)
	defer learner.Stop()
	le := dataplane.New(learnerConn, learner, dataplane.Config{Name: "learner", Shards: 1})
	le.Start()
	defer le.Close()

	for i, c := range accConns {
		acc := paxos.NewLiveAcceptor(uint16(i), learners, sender(c))
		ae := dataplane.New(c, acc, dataplane.Config{Name: fmt.Sprintf("acceptor-%d", i), Shards: 1})
		ae.Start()
		defer ae.Close()
	}

	leader := paxos.NewLiveLeader(1, accAddrs, sender(leaderConn))
	lde := dataplane.New(leaderConn, leader, dataplane.Config{Name: "leader", Shards: 1})
	lde.Start()
	defer lde.Close()

	// A bare-socket client: submit requests, await decisions.
	client := mkConn()
	defer client.Close()
	self := client.LocalAddr().String()
	leaderAddr, _ := net.ResolveUDPAddr("udp", leaderConn.LocalAddr().String())

	const requests = 5
	decided := map[uint64]bool{}
	buf := make([]byte, 64*1024)
	for seq := uint64(1); seq <= requests; seq++ {
		req := paxos.Encode(paxos.Msg{Type: paxos.MsgClientRequest, Seq: seq,
			ClientAddr: simnet.Addr(self), Value: []byte(fmt.Sprintf("cmd-%d", seq))})
		got := false
		for attempt := 0; attempt < 10 && !got; attempt++ {
			if _, err := client.WriteTo(req, leaderAddr); err != nil {
				t.Fatal(err)
			}
			client.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
			n, _, err := client.ReadFrom(buf)
			if err != nil {
				continue
			}
			m, err := paxos.Decode(buf[:n])
			if err == nil && m.Type == paxos.MsgDecision {
				decided[m.Seq] = true
				if m.Seq == seq {
					got = true
				}
			}
		}
		if !got {
			t.Fatalf("no decision for seq %d (decided so far: %v)", seq, decided)
		}
	}
	if learner.DecidedCount() < requests {
		t.Fatalf("learner decided %d instances, want >= %d", learner.DecidedCount(), requests)
	}
	// Fresh leaders start at 1 and advance one instance per request (§9.2).
	if n := leader.Next(); n < requests+1 {
		t.Fatalf("leader next = %d, want >= %d", n, requests+1)
	}
}
