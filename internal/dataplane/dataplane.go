package dataplane

import (
	"errors"
	"log"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"incod/internal/netio"
	"incod/internal/telemetry"
)

// Handler processes one inbound datagram. in is only valid for the call;
// implementations that keep data must copy it. scratch is a per-worker
// reusable buffer: encode the reply into (*scratch)[:0], store the grown
// slice back through the pointer, and return it — steady state then runs
// without per-request allocation. ok=false sends no reply.
type Handler interface {
	HandleDatagram(in []byte, scratch *[]byte) (out []byte, ok bool)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(in []byte, scratch *[]byte) ([]byte, bool)

// HandleDatagram implements Handler.
func (f HandlerFunc) HandleDatagram(in []byte, scratch *[]byte) ([]byte, bool) {
	return f(in, scratch)
}

// SourceHandler is implemented by handlers that also need the datagram's
// source address (Paxos roles route by it). When the handler passed to
// New implements SourceHandler, the engine calls HandleDatagramFrom
// instead of HandleDatagram; the returned reply still goes to the source.
type SourceHandler interface {
	HandleDatagramFrom(in []byte, from netip.AddrPort, scratch *[]byte) (out []byte, ok bool)
}

// StatsReporter is implemented by handlers that keep their own protocol
// counters (hits, misses, malformed...); the engine folds a snapshot into
// Stats so they surface on the /v1 control API.
type StatsReporter interface {
	StatsCounters() *telemetry.AtomicCounters
}

// FastPath is an offload tier interposed on dispatch *before* the host
// handler — the emulated NIC of internal/nictier. For each datagram the
// worker first offers it to the installed fast path: served=true means
// the tier consumed it (the host handler never sees it), and reply=true
// with a non-empty out sends out back to the source; served=false falls
// through to the host handler with the datagram untouched. Installing
// and removing a fast path is how a live placement shift becomes real:
// SetFastPath atomically flips dispatch to the tier, ClearFastPath drains
// it without dropping in-flight requests.
//
// Implementations are called concurrently from every shard worker and
// must be safe for that; like Handler, they encode replies into the
// per-worker scratch buffer so a tier hit can stay allocation-free.
type FastPath interface {
	TryHandleDatagram(in []byte, src netip.AddrPort, scratch *[]byte) (out []byte, served, reply bool)
}

// fastPathRef boxes a FastPath so the engine can swap it atomically.
type fastPathRef struct{ fp FastPath }

// Config parameterizes an Engine. The zero value is serviceable.
type Config struct {
	// Name prefixes log lines (default "dataplane").
	Name string
	// Shards is the number of worker goroutines (default GOMAXPROCS).
	Shards int
	// QueueDepth is the per-shard queue length (default 256). When a
	// shard's queue is full the datagram is dropped and counted, like a
	// NIC ring overrun — backpressure never blocks the reader. Every
	// queued packet pins one MaxDatagram-sized pooled buffer, so worst
	// case the engine holds Shards*QueueDepth*MaxDatagram of receive
	// memory under overload; size the product accordingly.
	QueueDepth int
	// MaxDatagram is the receive buffer size (default 64 KiB, the
	// memcached UDP maximum). Protocols with small datagrams (DNS)
	// should pass their own bound — it also caps overload memory.
	MaxDatagram int
	// ShardBy picks the worker for a datagram (default SourceHash).
	// Implementations must be pure: the same payload/source pair must
	// always map to the same value, or per-flow ordering is lost.
	ShardBy func(payload []byte, src netip.AddrPort) uint64
	// RxBatch is the number of datagrams read per recvmmsg call in
	// batched mode (default 32). Each in-flight receive slot pins one
	// MaxDatagram-sized pooled buffer, so batched-mode overload memory is
	// Sockets*RxBatch*MaxDatagram on top of the queue bound above.
	RxBatch int
	// TxBatch is the maximum replies flushed per sendmmsg call in
	// batched mode (default 32).
	TxBatch int
	// PinShards locks each batched shard worker to an OS thread and
	// binds that thread to CPU shard%NumCPU. Helps when shards ≤ cores
	// (cache locality, no migration); with more shards than cores it
	// only forces sharing patterns the scheduler would pick anyway, and
	// on platforms without sched_setaffinity it degrades to a logged
	// no-op. Ignored in single-reader mode.
	PinShards bool
	// BufCache is the per-worker private receive-buffer free list size
	// in batched mode (default RxBatch, negative disables). Pinned shard
	// workers that get/put through the shared sync.Pool steal buffers
	// across CPUs (a pool's per-P caches follow the scheduler, not the
	// pinned thread), so each worker first recycles buffers through its
	// own free list and only overflows into the pool. Cached buffers
	// still count as in-flight until the worker exits.
	BufCache int
	// GSOTx requests train-oriented reply transmission in batched mode:
	// each shard's flush coalesces consecutive same-destination replies
	// into UDP_SEGMENT trains before WriteBatch. It only engages when
	// netio.ProbeGSO passes on this kernel — otherwise the engine logs
	// the downgrade once and serves per-datagram, so the flag is safe to
	// set unconditionally. Ignored in single-reader mode.
	GSOTx bool
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "dataplane"
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxDatagram <= 0 {
		c.MaxDatagram = 64 * 1024
	}
	if c.ShardBy == nil {
		c.ShardBy = SourceHash
	}
	if c.RxBatch <= 0 {
		c.RxBatch = 32
	}
	if c.BufCache == 0 {
		c.BufCache = c.RxBatch
	} else if c.BufCache < 0 {
		c.BufCache = 0
	}
	if c.TxBatch <= 0 {
		c.TxBatch = 32
	}
	return c
}

// packet is one queued datagram. buf comes from the engine's pool and is
// returned to it by the worker.
type packet struct {
	buf *[]byte
	n   int
	src netip.AddrPort
	// raw is the reply address for conns that are not *net.UDPConn
	// (tests, in-memory transports); nil on the fast path.
	raw net.Addr
	// barrier, when non-nil, marks a sentinel injected by Barrier: the
	// worker signals it and handles nothing.
	barrier chan<- struct{}
}

// shard is one worker's queue and counters. The counter block is padded
// on both sides so two pinned workers bumping their own counters never
// false-share a cache line across adjacent shard allocations.
type shard struct {
	ch chan packet

	_         [64]byte
	received  atomic.Uint64
	handled   atomic.Uint64
	offloaded atomic.Uint64
	replies   atomic.Uint64
	dropped   atomic.Uint64
	badSrc    atomic.Uint64
	writeErrs atomic.Uint64
	// Batched-mode syscall counters: one readBatches per recvmmsg, one
	// writeBatches per sendmmsg, so received/readBatches is the measured
	// RX syscall amortization.
	readBatches  atomic.Uint64
	writeBatches atomic.Uint64
	_            [64]byte
}

// Engine is a sharded UDP serving runtime with two I/O modes: the
// classic single-reader mode (one reader goroutine, N shard workers) and
// the batched per-shard-socket mode (NewBatched: each shard reads its
// own SO_REUSEPORT socket in recvmmsg batches and flushes replies with
// sendmmsg). Both share pooled buffers, hashed dispatch, graceful drain
// and the offload-tier hooks. See the package comment.
type Engine struct {
	conn net.PacketConn
	udp  *net.UDPConn // non-nil enables the allocation-free address path
	h    Handler
	sh   SourceHandler // non-nil when h implements SourceHandler
	cfg  Config

	// Batched per-shard-socket mode: bconns[i] is shard i's socket and
	// bh/bfp-capable handlers amortize work across a batch. Empty in
	// single-reader mode. arrivalDispatch means the kernel's reuseport
	// flow hash is the dispatch (no cfg.ShardBy given): every datagram
	// is handled by the shard whose socket it arrived on.
	batched         bool
	arrivalDispatch bool
	bconns          []netio.BatchConn
	bh              BatchHandler // non-nil when h implements BatchHandler
	// gsoTx is cfg.GSOTx gated on the kernel actually supporting
	// UDP_SEGMENT trains (ProbeGSO), resolved once at construction.
	gsoTx bool
	// pinned records that at least one shard worker successfully bound
	// itself to a CPU (PinShards requested and sched_setaffinity took).
	pinned atomic.Bool

	shards []*shard
	pool   sync.Pool
	// bufsOut tracks pooled receive buffers currently outside the pool
	// (in readers, queues or handlers); it must return to zero after
	// Close, which the overrun tests assert to catch buffer leaks.
	bufsOut atomic.Int64
	// bufsCached counts buffers parked in per-worker free lists (a
	// subset of bufsOut — cached buffers are outside the pool).
	bufsCached atomic.Int64
	meter      *telemetry.AtomicRateMeter

	// fastPath is the installed offload tier (nil = host-only dispatch);
	// lastTier remembers the most recently installed one so Snapshot can
	// keep reporting its lifetime counters after a shift back to host.
	fastPath   atomic.Pointer[fastPathRef]
	lastTier   atomic.Pointer[fastPathRef]
	fpInflight atomic.Int64

	readErrs atomic.Uint64

	closing    atomic.Bool
	started    atomic.Bool
	readerDone chan struct{}
	// readPhase counts batched workers still in their socket-read phase;
	// Close waits for it before closing the cross-shard queues, so no
	// reader can enqueue into a closed channel.
	readPhase sync.WaitGroup
	workersWG sync.WaitGroup
	closeOnce sync.Once
	done      chan struct{}
	// barrierMu serializes Barrier's sentinel sends with Close's channel
	// close, so a placement shift racing a shutdown cannot panic on a
	// closed shard queue.
	barrierMu sync.Mutex
}

// New builds an engine serving conn through h. Call Start (or Run) to
// begin serving and Close to drain and stop.
func New(conn net.PacketConn, h Handler, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		conn:       conn,
		h:          h,
		cfg:        cfg,
		meter:      telemetry.NewAtomicRateMeter(100*time.Millisecond, 10),
		readerDone: make(chan struct{}),
		done:       make(chan struct{}),
	}
	e.udp, _ = conn.(*net.UDPConn)
	e.sh, _ = h.(SourceHandler)
	e.pool.New = func() any {
		b := make([]byte, cfg.MaxDatagram)
		return &b
	}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = &shard{ch: make(chan packet, cfg.QueueDepth)}
	}
	return e
}

// LocalAddr returns the serving socket's address (in batched mode, the
// address shared by the whole reuseport group).
func (e *Engine) LocalAddr() net.Addr { return e.conn.LocalAddr() }

// WriteTo transmits an out-of-band datagram from the serving socket, so
// daemon side channels (Paxos role-to-role messages) share the engine's
// source address. In batched mode it sends from shard 0's socket — the
// whole group is bound to one address, so peers cannot tell the
// difference.
func (e *Engine) WriteTo(b []byte, to net.Addr) (int, error) {
	return e.conn.WriteTo(b, to)
}

// getBuf takes a MaxDatagram-sized buffer from the pool, tracking it as
// in flight until putBuf returns it.
func (e *Engine) getBuf() *[]byte {
	e.bufsOut.Add(1)
	return e.pool.Get().(*[]byte)
}

func (e *Engine) putBuf(bufp *[]byte) {
	e.bufsOut.Add(-1)
	e.pool.Put(bufp)
}

// Meter returns the shared request-rate meter the workers feed.
func (e *Engine) Meter() *telemetry.AtomicRateMeter { return e.meter }

// Handled returns the lifetime count of handled datagrams. The daemon
// orchestrator samples this monotonic total instead of being called back
// per packet.
func (e *Engine) Handled() uint64 { return e.meter.Total() }

// SetFastPath installs fp as the offload tier: from the next dequeued
// datagram on, every worker offers traffic to fp before the host handler.
// Passing nil is equivalent to ClearFastPath. Datagrams already being
// handled by the host when the flip lands finish on the host; callers
// that need those to have fully landed before snapshotting host state
// (cache warm-up, state handoff) follow with Barrier.
func (e *Engine) SetFastPath(fp FastPath) {
	if fp == nil {
		e.ClearFastPath()
		return
	}
	ref := &fastPathRef{fp: fp}
	e.fastPath.Store(ref)
	e.lastTier.Store(ref)
}

// ClearFastPath uninstalls the offload tier and drains it: it blocks
// until no worker is still inside the tier's TryHandleDatagram, so when
// it returns the tier can be parked (state flushed) without dropping an
// in-flight request. Subsequent datagrams go to the host handler. The
// wait escalates from Gosched through growing sleeps, so a tier call
// stalled mid-shift-down cannot peg a core.
func (e *Engine) ClearFastPath() {
	e.fastPath.Store(nil)
	for spins := 0; e.fpInflight.Load() != 0; spins++ {
		switch {
		case spins < 64:
			runtime.Gosched()
		case spins < 256:
			time.Sleep(20 * time.Microsecond)
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// FastPathActive reports whether an offload tier is installed.
func (e *Engine) FastPathActive() bool { return e.fastPath.Load() != nil }

// Barrier blocks until every shard worker has finished the datagrams it
// had dequeued (or queued ahead of the sentinel) when Barrier was called.
// The offload shift uses it after SetFastPath so host-handled stragglers
// from before the flip have fully landed before transition work snapshots
// host state. It is safe against a concurrent Close — a shutdown racing
// a shift degrades to a no-op barrier rather than a panic; on an engine
// that is not started (or already closing) it is a no-op.
func (e *Engine) Barrier() {
	if !e.started.Load() {
		return
	}
	done := make(chan struct{}, len(e.shards))
	sent := 0
	e.barrierMu.Lock()
	// Re-check under the lock: Close sets closing before it waits for
	// barrierMu, so either we see it here (and skip the sends) or we
	// finish sending before Close can close the queues.
	if !e.closing.Load() {
		for _, s := range e.shards {
			s.ch <- packet{barrier: done}
		}
		sent = len(e.shards)
	}
	e.barrierMu.Unlock()
	for i := 0; i < sent; i++ {
		<-done
	}
}

// Start launches the serving goroutines: the reader plus the shard
// workers in single-reader mode, or one socket-reading worker per shard
// in batched mode. It is not idempotent; call it once.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	if e.batched {
		for i := range e.shards {
			e.workersWG.Add(1)
			e.readPhase.Add(1)
			go e.batchWorker(i)
		}
		return
	}
	for _, s := range e.shards {
		e.workersWG.Add(1)
		go e.worker(s)
	}
	go e.readLoop()
}

// Run starts the engine and blocks until Close has fully drained it.
func (e *Engine) Run() {
	e.Start()
	<-e.done
}

// Running reports whether the engine is serving right now: started and
// not yet closing. It is the daemons' readiness signal — the /v1/healthz
// endpoint answers 200 only while this is true, so a fleet controller
// can gate traffic replay on actual serving instead of sleeping.
func (e *Engine) Running() bool {
	return e.started.Load() && !e.closing.Load()
}

// Close gracefully drains the engine: the readers stop accepting new
// datagrams, already-queued ones are handled and answered, then the
// socket(s) close. It is idempotent and blocks until the drain
// completes.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.closing.Store(true)
		if e.started.Load() {
			// Unblock the reader(s) without tearing the sockets down, so
			// queued replies can still be written during the drain.
			if e.batched {
				now := time.Now()
				for _, bc := range e.bconns {
					_ = bc.SetReadDeadline(now)
				}
				e.readPhase.Wait()
			} else {
				_ = e.conn.SetReadDeadline(time.Now())
				<-e.readerDone
			}
			// Hold barrierMu across the close: a Barrier that already
			// passed its closing check finishes its sends first (the
			// workers are still draining, so those sends progress).
			e.barrierMu.Lock()
			for _, s := range e.shards {
				close(s.ch)
			}
			e.barrierMu.Unlock()
			e.workersWG.Wait()
		}
		if e.batched {
			for _, bc := range e.bconns {
				_ = bc.Close()
			}
		} else {
			_ = e.conn.Close()
		}
		close(e.done)
	})
}

func (e *Engine) readLoop() {
	defer close(e.readerDone)
	for {
		bufp := e.getBuf()
		var (
			n   int
			src netip.AddrPort
			raw net.Addr
			err error
		)
		if e.udp != nil {
			n, src, err = e.udp.ReadFromUDPAddrPort(*bufp)
		} else {
			n, raw, err = e.conn.ReadFrom(*bufp)
			if err == nil {
				// Non-*net.UDPAddr sources (test transports, in-memory
				// conns) still get a real AddrPort when their String()
				// is "ip:port"; otherwise the datagram is dropped below
				// rather than dispatched with a zero source, which would
				// hash to a bogus shard and hand Paxos SourceHandlers an
				// invalid peer.
				src, _ = netio.AddrPortOf(raw)
			}
		}
		if err != nil {
			e.putBuf(bufp)
			if e.closing.Load() {
				return
			}
			if errors.Is(err, net.ErrClosed) {
				// Not our shutdown path: the socket is gone, so serving
				// is over — but only shutdown exits silently.
				log.Printf("%s: socket closed unexpectedly: %v", e.cfg.Name, err)
				return
			}
			// Transient: async ICMP errors surfaced by a previous write,
			// spurious wakeups. Count, log sparsely, keep serving.
			if c := e.readErrs.Add(1); c&(c-1) == 0 {
				log.Printf("%s: transient read error (#%d, serving continues): %v", e.cfg.Name, c, err)
			}
			continue
		}
		if !src.IsValid() {
			// Counted apart from queue-overrun drops: these datagrams
			// were never dispatched at all.
			if c := e.shards[0].badSrc.Add(1); c&(c-1) == 0 {
				log.Printf("%s: dropped datagram with unusable source address %v (#%d)", e.cfg.Name, raw, c)
			}
			e.putBuf(bufp)
			continue
		}
		s := e.shards[e.shardIndex((*bufp)[:n], src)]
		s.received.Add(1)
		select {
		case s.ch <- packet{buf: bufp, n: n, src: src, raw: raw}:
		default:
			s.dropped.Add(1)
			e.putBuf(bufp)
		}
	}
}

func (e *Engine) worker(s *shard) {
	defer e.workersWG.Done()
	scratch := make([]byte, 0, e.cfg.MaxDatagram)
	for pkt := range s.ch {
		if pkt.barrier != nil {
			pkt.barrier <- struct{}{}
			continue
		}
		in := (*pkt.buf)[:pkt.n]
		if e.fastPath.Load() != nil {
			// Token first, then re-load: ClearFastPath stores nil and
			// waits for fpInflight==0, so once it reads zero, any worker
			// that later takes a token re-reads the pointer as nil —
			// no worker can slip into a tier that is being parked.
			e.fpInflight.Add(1)
			ref := e.fastPath.Load()
			var out []byte
			var served, reply bool
			if ref != nil {
				out, served, reply = ref.fp.TryHandleDatagram(in, pkt.src, &scratch)
			}
			e.fpInflight.Add(-1)
			if served {
				s.offloaded.Add(1)
				s.handled.Add(1)
				e.meter.Add(1)
				if reply && len(out) > 0 {
					if err := e.reply(out, pkt); err != nil {
						s.writeErrs.Add(1)
					} else {
						s.replies.Add(1)
					}
				}
				e.putBuf(pkt.buf)
				continue
			}
		}
		var out []byte
		var ok bool
		if e.sh != nil {
			out, ok = e.sh.HandleDatagramFrom(in, pkt.src, &scratch)
		} else {
			out, ok = e.h.HandleDatagram(in, &scratch)
		}
		s.handled.Add(1)
		e.meter.Add(1)
		if ok && len(out) > 0 {
			if err := e.reply(out, pkt); err != nil {
				s.writeErrs.Add(1)
			} else {
				s.replies.Add(1)
			}
		}
		e.putBuf(pkt.buf)
	}
}

func (e *Engine) reply(out []byte, pkt packet) error {
	if e.udp != nil {
		_, err := e.udp.WriteToUDPAddrPort(out, pkt.src)
		return err
	}
	to := pkt.raw
	if to == nil {
		to = net.UDPAddrFromAddrPort(pkt.src)
	}
	_, err := e.conn.WriteTo(out, to)
	return err
}

func (e *Engine) shardIndex(payload []byte, src netip.AddrPort) int {
	if len(e.shards) == 1 {
		return 0
	}
	return int(e.cfg.ShardBy(payload, src) % uint64(len(e.shards)))
}

// FNV-1a, the dispatch hash.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashBytes returns the FNV-1a hash of b, the building block for custom
// ShardBy functions and for key-sharded stores.
func HashBytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

// HashString is HashBytes for a string, without a conversion.
func HashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// SourceHash is the default dispatch: hash the source address and port,
// so each client flow is handled in order by one worker.
func SourceHash(_ []byte, src netip.AddrPort) uint64 {
	a := src.Addr().As16()
	h := uint64(fnvOffset)
	for _, c := range a {
		h = (h ^ uint64(c)) * fnvPrime
	}
	p := src.Port()
	h = (h ^ uint64(p&0xFF)) * fnvPrime
	h = (h ^ uint64(p>>8)) * fnvPrime
	return h
}
