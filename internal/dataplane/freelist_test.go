package dataplane

import (
	"net/netip"
	"testing"
)

// TestBatchedFreeListCachesAndDrains exercises the per-worker private
// buffer free lists: cross-shard handoffs make the receiving worker
// recycle the sender's buffers through its own list (visible as
// BuffersCached), and Close drains every cached buffer back to the pool
// so the bufsOut leak invariant still holds.
func TestBatchedFreeListCachesAndDrains(t *testing.T) {
	// Dispatch by payload parity: the client's one connected socket lands
	// every datagram on one SO_REUSEPORT socket (kernel 4-tuple hash),
	// so parity dispatch guarantees ~half the packets hand off to the
	// other worker no matter which socket receives them.
	e := newBatchedEngine(t, 2, echoHandler, Config{
		Name:    "test-freelist",
		ShardBy: func(b []byte, _ netip.AddrPort) uint64 { return uint64(b[len(b)-1]) },
	})
	e.Start()
	echoClient(t, e.LocalAddr().String(), "fl", 40)
	if t.Failed() {
		e.Close()
		return
	}
	e.Barrier() // all handed-off packets processed, buffers recycled
	st := e.Snapshot()
	if st.BuffersCached <= 0 {
		t.Fatalf("no buffers cached after cross-shard traffic: %+v", st)
	}
	if st.BuffersCached > st.BuffersInFlight {
		t.Fatalf("cached %d exceeds in-flight %d", st.BuffersCached, st.BuffersInFlight)
	}
	e.Close()
	st = e.Snapshot()
	if st.BuffersInFlight != 0 || st.BuffersCached != 0 {
		t.Fatalf("after Close: in-flight=%d cached=%d, want 0/0", st.BuffersInFlight, st.BuffersCached)
	}
}

// TestBufCacheDisabled pins the BufCache=-1 escape hatch: everything
// recycles straight through the shared pool.
func TestBufCacheDisabled(t *testing.T) {
	e := newBatchedEngine(t, 2, echoHandler, Config{
		Name:     "test-freelist-off",
		BufCache: -1,
		ShardBy:  func(b []byte, _ netip.AddrPort) uint64 { return uint64(b[len(b)-1]) },
	})
	e.Start()
	echoClient(t, e.LocalAddr().String(), "flo", 20)
	e.Barrier()
	if st := e.Snapshot(); st.BuffersCached != 0 {
		t.Fatalf("BufCache disabled but %d buffers cached", st.BuffersCached)
	}
	e.Close()
	if st := e.Snapshot(); st.BuffersInFlight != 0 {
		t.Fatalf("%d buffers leaked after Close", st.BuffersInFlight)
	}
}
