// Package memcache implements the memcached UDP wire protocol used by the
// KVS case study (§3.1): the 8-byte UDP frame header followed by the ASCII
// command protocol. LaKe "supports standard memcached functionality"
// (§3.1), so both the software store and the hardware cache model parse
// and emit exactly these bytes.
package memcache

import (
	"encoding/binary"
	"errors"
)

// FrameHeaderSize is the size of the memcached UDP frame header.
const FrameHeaderSize = 8

// Frame is the memcached UDP frame header: request ID, sequence number,
// datagram count and a reserved field, all big-endian uint16.
type Frame struct {
	RequestID uint16
	SeqNo     uint16
	Total     uint16
	Reserved  uint16
}

// ErrShortFrame reports a datagram smaller than the frame header.
var ErrShortFrame = errors.New("memcache: datagram shorter than UDP frame header")

// EncodeFrame prepends the frame header to body and returns the datagram.
func EncodeFrame(f Frame, body []byte) []byte {
	out := make([]byte, FrameHeaderSize+len(body))
	binary.BigEndian.PutUint16(out[0:2], f.RequestID)
	binary.BigEndian.PutUint16(out[2:4], f.SeqNo)
	binary.BigEndian.PutUint16(out[4:6], f.Total)
	binary.BigEndian.PutUint16(out[6:8], f.Reserved)
	copy(out[FrameHeaderSize:], body)
	return out
}

// AppendFrame appends the 8-byte frame header to dst and returns the
// extended slice — the allocation-free counterpart of EncodeFrame for
// dataplane handlers that build the whole datagram in a scratch buffer.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = binary.BigEndian.AppendUint16(dst, f.RequestID)
	dst = binary.BigEndian.AppendUint16(dst, f.SeqNo)
	dst = binary.BigEndian.AppendUint16(dst, f.Total)
	return binary.BigEndian.AppendUint16(dst, f.Reserved)
}

// DecodeFrame splits a datagram into its frame header and body. The body
// aliases the input slice.
func DecodeFrame(datagram []byte) (Frame, []byte, error) {
	if len(datagram) < FrameHeaderSize {
		return Frame{}, nil, ErrShortFrame
	}
	f := Frame{
		RequestID: binary.BigEndian.Uint16(datagram[0:2]),
		SeqNo:     binary.BigEndian.Uint16(datagram[2:4]),
		Total:     binary.BigEndian.Uint16(datagram[4:6]),
		Reserved:  binary.BigEndian.Uint16(datagram[6:8]),
	}
	return f, datagram[FrameHeaderSize:], nil
}
