package memcache

import (
	"bytes"
	"strconv"
)

// This file is the allocation-light half of the codec: the dataplane's
// serving hot path parses requests into a view that aliases the datagram
// and encodes responses by appending into a caller-provided buffer, so a
// single-key GET costs zero heap allocations per request. The string-based
// Request/Response API remains the general (and simulator-facing) path.

// RequestView is a parsed request whose Key and Value alias the input
// datagram — valid only until the buffer is reused. Multi-key gets do not
// fit a fixed view: MultiKey is set and the caller falls back to
// ParseRequest.
type RequestView struct {
	Op       Op
	Key      []byte
	MultiKey bool
	Noreply  bool
	Flags    uint32
	Exptime  int64
	Value    []byte
}

// asciiSpace mirrors bytes.Fields' notion of whitespace, so the view
// parser splits lines exactly where ParseRequest does.
func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// nextField returns the first whitespace-separated token of b and the
// rest.
func nextField(b []byte) (tok, rest []byte) {
	for len(b) > 0 && asciiSpace(b[0]) {
		b = b[1:]
	}
	i := 0
	for i < len(b) && !asciiSpace(b[i]) {
		i++
	}
	return b[:i], b[i:]
}

// parseUintBytes is strconv.ParseUint for a byte slice without the string
// conversion (and its allocation).
func parseUintBytes(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (1<<64-1-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

func parseIntBytes(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && b[0] == '-' {
		neg = true
		b = b[1:]
	}
	v, ok := parseUintBytes(b)
	if !ok || v > 1<<63-1 {
		return 0, false
	}
	if neg {
		return -int64(v), true
	}
	return int64(v), true
}

// ParseRequestView parses one ASCII request from body into v without
// allocating. It accepts exactly what ParseRequest accepts; multi-key
// gets return nil error with v.MultiKey set and only the first key
// populated (callers needing every key use ParseRequest).
func ParseRequestView(body []byte, v *RequestView) error {
	*v = RequestView{}
	nl := bytes.Index(body, crlf)
	if nl < 0 {
		return ErrMalformed
	}
	line, rest := body[:nl], body[nl+len(crlf):]
	cmd, line := nextField(line)
	switch string(cmd) { // compiler-optimized, no allocation
	case "get", "gets":
		key, line := nextField(line)
		if len(key) == 0 {
			return ErrMalformed
		}
		if len(key) > MaxKeyLen {
			return ErrKeyTooLong
		}
		v.Op, v.Key = OpGet, key
		if more, _ := nextField(line); len(more) > 0 {
			v.MultiKey = true
		}
		return nil
	case "set":
		key, line := nextField(line)
		if len(key) == 0 {
			return ErrMalformed
		}
		if len(key) > MaxKeyLen {
			return ErrKeyTooLong
		}
		flagsB, line := nextField(line)
		flags, ok := parseUintBytes(flagsB)
		if !ok || flags > 1<<32-1 {
			return ErrMalformed
		}
		expB, line := nextField(line)
		exp, ok := parseIntBytes(expB)
		if !ok {
			return ErrMalformed
		}
		lenB, line := nextField(line)
		n, ok := parseUintBytes(lenB)
		if !ok || n > uint64(len(rest)) {
			return ErrMalformed
		}
		noreply, err := parseNoreply(line)
		if err != nil {
			return err
		}
		if !bytes.HasPrefix(rest[n:], crlf) {
			return ErrMalformed
		}
		v.Op, v.Key, v.Flags, v.Exptime, v.Value = OpSet, key, uint32(flags), exp, rest[:n]
		v.Noreply = noreply
		return nil
	case "delete":
		key, line := nextField(line)
		if len(key) == 0 {
			return ErrMalformed
		}
		if len(key) > MaxKeyLen {
			return ErrKeyTooLong
		}
		noreply, err := parseNoreply(line)
		if err != nil {
			return err
		}
		v.Op, v.Key, v.Noreply = OpDelete, key, noreply
		return nil
	}
	return ErrUnsupportedCommand
}

// parseNoreply consumes an optional trailing "noreply" token (mutations
// only, per the memcached protocol); anything else trailing is malformed.
func parseNoreply(line []byte) (bool, error) {
	tok, line := nextField(line)
	if len(tok) == 0 {
		return false, nil
	}
	if string(tok) != "noreply" {
		return false, ErrMalformed
	}
	if extra, _ := nextField(line); len(extra) > 0 {
		return false, ErrMalformed
	}
	return true, nil
}

// AppendStatus appends a one-line status response ("STORED", "END", ...).
func AppendStatus(dst []byte, status string) []byte {
	dst = append(dst, status...)
	return append(dst, crlf...)
}

// AppendValueHeader appends the "VALUE <key> <flags> <n>\r\n" line of a
// VALUE block, for callers that stream the n value bytes in themselves
// (the lock-free store copies the value word-at-a-time straight into the
// reply buffer).
func AppendValueHeader(dst, key []byte, flags uint32, n int) []byte {
	dst = append(dst, "VALUE "...)
	dst = append(dst, key...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(flags), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(n), 10)
	return append(dst, crlf...)
}

// AppendValue appends one VALUE block (no END terminator).
func AppendValue(dst, key []byte, flags uint32, value []byte) []byte {
	dst = AppendValueHeader(dst, key, flags, len(value))
	dst = append(dst, value...)
	return append(dst, crlf...)
}

// AppendGetHit appends a complete single-key get response: the VALUE
// block followed by END.
func AppendGetHit(dst, key []byte, flags uint32, value []byte) []byte {
	dst = AppendValue(dst, key, flags, value)
	return AppendStatus(dst, StatusEnd)
}

// AppendResponse appends r's wire form to dst — EncodeResponse without
// the intermediate buffer.
func AppendResponse(dst []byte, r Response) []byte {
	if r.Hit {
		items := r.Items
		if len(items) == 0 {
			dst = AppendValue(dst, []byte(r.Key), r.Flags, r.Value)
		}
		for _, it := range items {
			dst = AppendValue(dst, []byte(it.Key), it.Flags, it.Value)
		}
		return AppendStatus(dst, StatusEnd)
	}
	return AppendStatus(dst, r.Status)
}
