package memcache

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
)

// Op is a memcached command type.
type Op int

// Supported operations (the subset LaKe accelerates plus management).
const (
	OpGet Op = iota
	OpSet
	OpDelete
)

// String returns the wire verb.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Request is a parsed memcached ASCII request. Multi-key gets ("get k1
// k2 ...") set Key to the first key and Extra to the rest. Noreply is
// the protocol's fire-and-forget marker on mutations: the server applies
// the operation and sends nothing back.
type Request struct {
	Op      Op
	Key     string
	Extra   []string
	Noreply bool
	Flags   uint32
	Exptime int64
	Value   []byte
}

// AllKeys returns every requested key (gets only).
func (r Request) AllKeys() []string {
	return append([]string{r.Key}, r.Extra...)
}

// Parse errors.
var (
	ErrMalformed          = errors.New("memcache: malformed request")
	ErrUnsupportedCommand = errors.New("memcache: unsupported command")
	ErrKeyTooLong         = errors.New("memcache: key exceeds 250 bytes")
)

// MaxKeyLen is the memcached protocol key limit.
const MaxKeyLen = 250

var crlf = []byte("\r\n")

// ParseRequest parses one ASCII request from body (the datagram payload
// after the UDP frame header).
func ParseRequest(body []byte) (Request, error) {
	line, rest, found := bytes.Cut(body, crlf)
	if !found {
		return Request{}, ErrMalformed
	}
	fields := bytes.Fields(line)
	if len(fields) == 0 {
		return Request{}, ErrMalformed
	}
	switch string(fields[0]) {
	case "get", "gets":
		if len(fields) < 2 {
			return Request{}, ErrMalformed
		}
		req := Request{Op: OpGet}
		for i, f := range fields[1:] {
			key := string(f)
			if len(key) > MaxKeyLen {
				return Request{}, ErrKeyTooLong
			}
			if i == 0 {
				req.Key = key
			} else {
				req.Extra = append(req.Extra, key)
			}
		}
		return req, nil
	case "set":
		noreply := false
		if len(fields) == 6 && string(fields[5]) == "noreply" {
			noreply = true
		} else if len(fields) != 5 {
			return Request{}, ErrMalformed
		}
		key := string(fields[1])
		if len(key) > MaxKeyLen {
			return Request{}, ErrKeyTooLong
		}
		flags, err := strconv.ParseUint(string(fields[2]), 10, 32)
		if err != nil {
			return Request{}, ErrMalformed
		}
		exp, err := strconv.ParseInt(string(fields[3]), 10, 64)
		if err != nil {
			return Request{}, ErrMalformed
		}
		n, err := strconv.Atoi(string(fields[4]))
		if err != nil || n < 0 || n > len(rest) {
			return Request{}, ErrMalformed
		}
		if !bytes.HasPrefix(rest[n:], crlf) {
			return Request{}, ErrMalformed
		}
		val := make([]byte, n)
		copy(val, rest[:n])
		return Request{Op: OpSet, Key: key, Noreply: noreply, Flags: uint32(flags), Exptime: exp, Value: val}, nil
	case "delete":
		noreply := false
		if len(fields) == 3 && string(fields[2]) == "noreply" {
			noreply = true
		} else if len(fields) != 2 {
			return Request{}, ErrMalformed
		}
		key := string(fields[1])
		if len(key) > MaxKeyLen {
			return Request{}, ErrKeyTooLong
		}
		return Request{Op: OpDelete, Key: key, Noreply: noreply}, nil
	}
	return Request{}, ErrUnsupportedCommand
}

// EncodeRequest renders a request in wire form.
func EncodeRequest(r Request) []byte {
	var b bytes.Buffer
	switch r.Op {
	case OpGet:
		b.WriteString("get ")
		b.WriteString(r.Key)
		for _, k := range r.Extra {
			b.WriteByte(' ')
			b.WriteString(k)
		}
		b.Write(crlf)
	case OpSet:
		fmt.Fprintf(&b, "set %s %d %d %d%s\r\n", r.Key, r.Flags, r.Exptime, len(r.Value), noreplySuffix(r.Noreply))
		b.Write(r.Value)
		b.Write(crlf)
	case OpDelete:
		fmt.Fprintf(&b, "delete %s%s\r\n", r.Key, noreplySuffix(r.Noreply))
	}
	return b.Bytes()
}

func noreplySuffix(noreply bool) string {
	if noreply {
		return " noreply"
	}
	return ""
}

// Item is one VALUE block in a get response.
type Item struct {
	Key   string
	Flags uint32
	Value []byte
}

// Response is a parsed memcached ASCII response.
type Response struct {
	// Status is the one-line status: "STORED", "DELETED", "NOT_FOUND",
	// "END" (for gets with or without a value), or "ERROR".
	Status string
	// Key/Flags/Value are the first returned item, for the common
	// single-key case.
	Key   string
	Flags uint32
	Value []byte
	// Items holds every returned VALUE block (multi-key gets).
	Items []Item
	// Hit reports whether a get returned at least one value.
	Hit bool
}

// Canonical status lines.
const (
	StatusStored   = "STORED"
	StatusDeleted  = "DELETED"
	StatusNotFound = "NOT_FOUND"
	StatusEnd      = "END"
	StatusError    = "ERROR"
)

// EncodeResponse renders a response in wire form. Get responses emit one
// VALUE block per item (Items if set, else the legacy Key/Flags/Value
// triple) followed by END.
func EncodeResponse(r Response) []byte {
	var b bytes.Buffer
	if r.Hit {
		items := r.Items
		if len(items) == 0 {
			items = []Item{{Key: r.Key, Flags: r.Flags, Value: r.Value}}
		}
		for _, it := range items {
			fmt.Fprintf(&b, "VALUE %s %d %d\r\n", it.Key, it.Flags, len(it.Value))
			b.Write(it.Value)
			b.Write(crlf)
		}
		b.WriteString(StatusEnd)
		b.Write(crlf)
		return b.Bytes()
	}
	b.WriteString(r.Status)
	b.Write(crlf)
	return b.Bytes()
}

// ParseResponse parses one ASCII response body, collecting every VALUE
// block of a get response.
func ParseResponse(body []byte) (Response, error) {
	var resp Response
	for {
		line, rest, found := bytes.Cut(body, crlf)
		if !found {
			return Response{}, ErrMalformed
		}
		fields := bytes.Fields(line)
		if len(fields) == 0 {
			return Response{}, ErrMalformed
		}
		switch string(fields[0]) {
		case "VALUE":
			if len(fields) != 4 {
				return Response{}, ErrMalformed
			}
			flags, err := strconv.ParseUint(string(fields[2]), 10, 32)
			if err != nil {
				return Response{}, ErrMalformed
			}
			n, err := strconv.Atoi(string(fields[3]))
			if err != nil || n < 0 || n > len(rest) {
				return Response{}, ErrMalformed
			}
			if !bytes.HasPrefix(rest[n:], crlf) {
				return Response{}, ErrMalformed
			}
			val := make([]byte, n)
			copy(val, rest[:n])
			resp.Items = append(resp.Items, Item{Key: string(fields[1]), Flags: uint32(flags), Value: val})
			body = rest[n+len(crlf):]
			continue
		case StatusStored, StatusDeleted, StatusNotFound, StatusEnd, StatusError:
			resp.Status = string(fields[0])
			if len(resp.Items) > 0 {
				resp.Hit = true
				resp.Key = resp.Items[0].Key
				resp.Flags = resp.Items[0].Flags
				resp.Value = resp.Items[0].Value
			}
			return resp, nil
		default:
			return Response{}, ErrMalformed
		}
	}
}
