package memcache

import (
	"bytes"
	"testing"
)

// The view parser must accept exactly what ParseRequest accepts and agree
// with it field-for-field.
func TestParseRequestViewParity(t *testing.T) {
	cases := []string{
		"get key\r\n",
		"gets another-key\r\n",
		"get a b c\r\n",
		"set k 7 30 5\r\nhello\r\n",
		"set k 0 -1 0\r\n\r\n",
		"delete k\r\n",
		"get \r\n",
		"get missing-crlf",
		"set k x 0 5\r\nhello\r\n",
		"set k 0 0 99\r\nshort\r\n",
		"set k 0 0 5 extra\r\nhello\r\n",
		"set k 7 30 5 noreply\r\nhello\r\n",
		"set k 0 0 5 noreply extra\r\nhello\r\n",
		"delete k noreply\r\n",
		"delete k noreply extra\r\n",
		"delete k norep\r\n",
		"set k\t0 0 5\r\nhello\r\n", // bytes.Fields splits on any whitespace
		"get\ta\nb\r\n",
		"delete a b\r\n",
		"flush_all\r\n",
		"\r\n",
	}
	for _, in := range cases {
		want, wantErr := ParseRequest([]byte(in))
		var v RequestView
		gotErr := ParseRequestView([]byte(in), &v)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%q: ParseRequest err=%v, view err=%v", in, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if v.Op != want.Op {
			t.Fatalf("%q: op %v != %v", in, v.Op, want.Op)
		}
		if string(v.Key) != want.Key {
			t.Fatalf("%q: key %q != %q", in, v.Key, want.Key)
		}
		if v.MultiKey != (len(want.Extra) > 0) {
			t.Fatalf("%q: MultiKey=%v, extra=%v", in, v.MultiKey, want.Extra)
		}
		if v.Noreply != want.Noreply {
			t.Fatalf("%q: Noreply=%v, want %v", in, v.Noreply, want.Noreply)
		}
		if v.Flags != want.Flags || v.Exptime != want.Exptime {
			t.Fatalf("%q: flags/exptime %d/%d != %d/%d", in, v.Flags, v.Exptime, want.Flags, want.Exptime)
		}
		if !bytes.Equal(v.Value, want.Value) {
			t.Fatalf("%q: value %q != %q", in, v.Value, want.Value)
		}
	}
}

func TestParseRequestViewAliasesInput(t *testing.T) {
	in := []byte("set k 0 0 5\r\nhello\r\n")
	var v RequestView
	if err := ParseRequestView(in, &v); err != nil {
		t.Fatal(err)
	}
	in[len(in)-3] = 'O' // mutate the datagram: the view must see it
	if string(v.Value) != "hellO" {
		t.Fatalf("value does not alias input: %q", v.Value)
	}
}

func TestAppendResponseMatchesEncodeResponse(t *testing.T) {
	cases := []Response{
		{Status: StatusStored},
		{Status: StatusEnd},
		{Status: StatusError},
		{Status: StatusEnd, Hit: true, Key: "k", Flags: 9, Value: []byte("vvv")},
		{Status: StatusEnd, Hit: true, Items: []Item{
			{Key: "a", Flags: 1, Value: []byte("x")},
			{Key: "b", Flags: 2, Value: []byte("yy")},
		}},
	}
	for _, r := range cases {
		want := EncodeResponse(r)
		got := AppendResponse(nil, r)
		if !bytes.Equal(got, want) {
			t.Fatalf("AppendResponse = %q, want %q", got, want)
		}
	}
}

func TestAppendGetHitRoundTrips(t *testing.T) {
	out := AppendGetHit(nil, []byte("key-1"), 7, []byte("value-1"))
	resp, err := ParseResponse(out)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Hit || resp.Key != "key-1" || resp.Flags != 7 || string(resp.Value) != "value-1" {
		t.Fatalf("round trip: %+v", resp)
	}
}

func TestAppendFrameMatchesEncodeFrame(t *testing.T) {
	f := Frame{RequestID: 300, SeqNo: 2, Total: 5, Reserved: 1}
	body := []byte("payload")
	want := EncodeFrame(f, body)
	got := append(AppendFrame(nil, f), body...)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendFrame = %x, want %x", got, want)
	}
}

func TestParseRequestViewDoesNotAllocate(t *testing.T) {
	in := []byte("get key-123456\r\n")
	var v RequestView
	allocs := testing.AllocsPerRun(100, func() {
		if err := ParseRequestView(in, &v); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ParseRequestView allocates %.1f per run, want 0", allocs)
	}
}
