package memcache

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{RequestID: 0xBEEF, SeqNo: 1, Total: 2, Reserved: 0}
	dg := EncodeFrame(f, []byte("payload"))
	got, body, err := DecodeFrame(dg)
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Errorf("frame = %+v, want %+v", got, f)
	}
	if string(body) != "payload" {
		t.Errorf("body = %q", body)
	}
}

func TestShortFrame(t *testing.T) {
	if _, _, err := DecodeFrame([]byte{1, 2, 3}); err != ErrShortFrame {
		t.Errorf("err = %v, want ErrShortFrame", err)
	}
}

func TestParseGet(t *testing.T) {
	r, err := ParseRequest([]byte("get foo\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Op != OpGet || r.Key != "foo" {
		t.Errorf("parsed %+v", r)
	}
	// gets is accepted as get.
	if r, err = ParseRequest([]byte("gets bar\r\n")); err != nil || r.Key != "bar" {
		t.Errorf("gets: %+v, %v", r, err)
	}
}

func TestParseSet(t *testing.T) {
	r, err := ParseRequest([]byte("set k 7 60 5\r\nhello\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Op != OpSet || r.Key != "k" || r.Flags != 7 || r.Exptime != 60 || string(r.Value) != "hello" {
		t.Errorf("parsed %+v", r)
	}
}

func TestParseSetValueWithCRLF(t *testing.T) {
	// The byte count governs, so values may contain \r\n.
	r, err := ParseRequest([]byte("set k 0 0 4\r\na\r\nb\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Value) != "a\r\nb" {
		t.Errorf("value = %q", r.Value)
	}
}

func TestParseDelete(t *testing.T) {
	r, err := ParseRequest([]byte("delete k\r\n"))
	if err != nil || r.Op != OpDelete || r.Key != "k" {
		t.Errorf("parsed %+v, %v", r, err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		want error
	}{
		{"get foo", ErrMalformed},       // no CRLF
		{"get\r\n", ErrMalformed},       // missing key
		{"set k 0 0\r\n", ErrMalformed}, // missing length
		{"set k 0 0 10\r\nshort\r\n", ErrMalformed},
		{"set k x 0 1\r\na\r\n", ErrMalformed}, // bad flags
		{"set k 0 0 1\r\nab", ErrMalformed},    // missing trailing CRLF
		{"incr k 1\r\n", ErrUnsupportedCommand},
		{"\r\n", ErrMalformed},
		{"get " + strings.Repeat("k", 251) + "\r\n", ErrKeyTooLong},
	}
	for _, tc := range cases {
		if _, err := ParseRequest([]byte(tc.in)); err != tc.want {
			t.Errorf("ParseRequest(%q) err = %v, want %v", tc.in, err, tc.want)
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: "alpha"},
		{Op: OpSet, Key: "beta", Flags: 3, Exptime: 100, Value: []byte("v")},
		{Op: OpSet, Key: "beta2", Flags: 3, Exptime: 100, Value: []byte("v"), Noreply: true},
		{Op: OpDelete, Key: "gamma"},
		{Op: OpDelete, Key: "gamma2", Noreply: true},
	}
	for _, want := range reqs {
		got, err := ParseRequest(EncodeRequest(want))
		if err != nil {
			t.Fatalf("%v: %v", want.Op, err)
		}
		if got.Op != want.Op || got.Key != want.Key || got.Flags != want.Flags ||
			got.Exptime != want.Exptime || !bytes.Equal(got.Value, want.Value) ||
			got.Noreply != want.Noreply {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestMultiKeyGetRoundTrip(t *testing.T) {
	r, err := ParseRequest([]byte("get a b c\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	keys := r.AllKeys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
	got, err := ParseRequest(EncodeRequest(r))
	if err != nil || len(got.AllKeys()) != 3 {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
}

func TestMultiItemResponseRoundTrip(t *testing.T) {
	resp := Response{
		Status: StatusEnd,
		Items: []Item{
			{Key: "a", Flags: 1, Value: []byte("v1")},
			{Key: "b", Flags: 2, Value: []byte("longer-value")},
		},
		Hit: true,
	}
	got, err := ParseResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != 2 || !got.Hit {
		t.Fatalf("items = %+v", got.Items)
	}
	if got.Items[1].Key != "b" || string(got.Items[1].Value) != "longer-value" || got.Items[1].Flags != 2 {
		t.Errorf("item 1 = %+v", got.Items[1])
	}
	// Legacy single fields mirror the first item.
	if got.Key != "a" || string(got.Value) != "v1" {
		t.Errorf("first-item mirror wrong: %+v", got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	hit := Response{Key: "k", Flags: 9, Value: []byte("data"), Hit: true}
	got, err := ParseResponse(EncodeResponse(hit))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Hit || got.Key != "k" || got.Flags != 9 || string(got.Value) != "data" {
		t.Errorf("hit round trip: %+v", got)
	}
	for _, status := range []string{StatusStored, StatusDeleted, StatusNotFound, StatusEnd, StatusError} {
		got, err := ParseResponse(EncodeResponse(Response{Status: status}))
		if err != nil || got.Status != status || got.Hit {
			t.Errorf("status %q round trip: %+v, %v", status, got, err)
		}
	}
}

func TestParseResponseErrors(t *testing.T) {
	for _, in := range []string{"", "VALUE k\r\n", "VALUE k 0 99\r\nabc\r\n", "BOGUS\r\n", "VALUE k z 1\r\na\r\n"} {
		if _, err := ParseResponse([]byte(in)); err == nil {
			t.Errorf("ParseResponse(%q) should fail", in)
		}
	}
}

// Property: set requests round-trip for arbitrary binary values and any
// printable key.
func TestSetRoundTripProperty(t *testing.T) {
	f := func(key string, value []byte, flags uint32) bool {
		k := sanitizeKey(key)
		if k == "" {
			k = "k"
		}
		req := Request{Op: OpSet, Key: k, Flags: flags, Value: value}
		got, err := ParseRequest(EncodeRequest(req))
		return err == nil && got.Key == k && got.Flags == flags && bytes.Equal(got.Value, value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitizeKey(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > ' ' && r < 127 && b.Len() < MaxKeyLen {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func TestOpString(t *testing.T) {
	if OpGet.String() != "get" || OpSet.String() != "set" || OpDelete.String() != "delete" {
		t.Error("Op.String() wrong")
	}
	if Op(99).String() != "op(99)" {
		t.Error("unknown op should format numerically")
	}
}
