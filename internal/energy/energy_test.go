package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"incod/internal/power"
)

func linear(idle, slope float64) func(float64) float64 {
	return func(r float64) float64 { return idle + slope*r }
}

func TestEnergyDecomposition(t *testing.T) {
	p := Profile{
		Name:         "sw",
		DynamicWatts: linear(10, 0.1),
		SleepWatts:   5,
		IdleWatts:    2,
	}
	// 100k packets at 100 kpps -> Td = 1 s at Pd(100)=20 W.
	b := p.Energy(100_000, 100, 2*time.Second, 3*time.Second)
	if math.Abs(b.ActiveJ-20) > 1e-9 {
		t.Errorf("ActiveJ = %v, want 20", b.ActiveJ)
	}
	if b.SleepJ != 10 || b.IdleJ != 6 {
		t.Errorf("SleepJ, IdleJ = %v, %v, want 10, 6", b.SleepJ, b.IdleJ)
	}
	if math.Abs(b.Total()-36) > 1e-9 {
		t.Errorf("Total = %v, want 36", b.Total())
	}
}

func TestEnergyZeroRate(t *testing.T) {
	p := Profile{DynamicWatts: linear(10, 1), IdleWatts: 2}
	b := p.Energy(1000, 0, 0, time.Second)
	if b.ActiveJ != 0 {
		t.Errorf("zero rate should accrue no active energy, got %v", b.ActiveJ)
	}
	if b.IdleJ != 2 {
		t.Errorf("IdleJ = %v, want 2", b.IdleJ)
	}
}

func TestTippingPoint(t *testing.T) {
	sw := Profile{Name: "sw", DynamicWatts: linear(0, 0.25)}
	nw := Profile{Name: "nw", DynamicWatts: linear(20, 0.01)}
	got := TippingPointKpps(sw, nw, 1000)
	// 0.25R = 20 + 0.01R -> R = 83.33.
	if math.Abs(got-83.33) > 0.1 {
		t.Errorf("tipping point = %v, want ~83.33", got)
	}
}

func TestTippingPointEdges(t *testing.T) {
	cheapHW := Profile{DynamicWatts: linear(0, 0)}
	expensiveSW := Profile{DynamicWatts: linear(5, 1)}
	if TippingPointKpps(expensiveSW, cheapHW, 100) != 0 {
		t.Error("hardware cheaper everywhere should tip at 0")
	}
	if TippingPointKpps(cheapHW, expensiveSW, 100) != -1 {
		t.Error("hardware never cheaper should return -1")
	}
}

// The paper's own curves: the Paxos tipping point (software vs P4xos on
// NetFPGA) sits near 150 kpps.
func TestPaxosTippingWithPaperCurves(t *testing.T) {
	sw := Profile{Name: "libpaxos", DynamicWatts: power.LibpaxosLeader.Power}
	nw := Profile{Name: "p4xos", DynamicWatts: func(r float64) float64 {
		return 39 + 10 + 1.2*math.Min(r/10000, 1) // server + card + dynamic
	}}
	got := TippingPointKpps(sw, nw, 1000)
	if math.Abs(got-150) > 25 {
		t.Errorf("Paxos tipping point = %v kpps, want ~150", got)
	}
}

func TestAdoptionPenalty(t *testing.T) {
	if AdoptionPenaltyWatts(100, 110) != 10 {
		t.Error("penalty should be the idle-power difference")
	}
	// §9.4: programmable Arista switches can be cheaper than fixed ones.
	if AdoptionPenaltyWatts(110, 100) != -10 {
		t.Error("negative penalty should be preserved")
	}
}

func TestOpsPerWattLadder(t *testing.T) {
	// §6 ladder: software 10K's, FPGA 100K's, ASIC 10M's msgs/W. The
	// software and FPGA figures count the power attributable to the
	// application (dynamic for the server, whole standalone board for
	// the FPGA), as in §6's footnote-3 usage of "dynamic power".
	sw := Ladder{Name: "libpaxos", PeakKpps: 178, PeakWatts: 49 - 39}
	fp := Ladder{Name: "p4xos-fpga", PeakKpps: 10_000, PeakWatts: 18.2 + 1.2}
	as := Ladder{Name: "p4xos-asic", PeakKpps: 2_500_000, PeakWatts: 237}
	if e := sw.Efficiency(); e < 1e4 || e >= 1e5 {
		t.Errorf("software ops/W = %v, want 10K's", e)
	}
	if e := fp.Efficiency(); e < 1e5 || e >= 1e7 {
		t.Errorf("FPGA ops/W = %v, want 100K's", e)
	}
	if e := as.Efficiency(); e < 1e7 {
		t.Errorf("ASIC ops/W = %v, want 10M's", e)
	}
	if OpsPerWatt(100, 0) != 0 {
		t.Error("zero watts should return 0, not Inf")
	}
}

func TestSavingFraction(t *testing.T) {
	a := Breakdown{ActiveJ: 100}
	b := Breakdown{ActiveJ: 50}
	if got := SavingFraction(a, b); got != 0.5 {
		t.Errorf("saving = %v, want 0.5", got)
	}
	if SavingFraction(Breakdown{}, b) != 0 {
		t.Error("zero baseline should return 0")
	}
	if SavingFraction(b, a) != -1 {
		t.Error("worse placement should be negative")
	}
}

// Property: energy is additive in time and linear in idle duration.
func TestEnergyLinearityProperty(t *testing.T) {
	p := Profile{DynamicWatts: linear(7, 0.3), SleepWatts: 4, IdleWatts: 3}
	f := func(w uint32, rate16 uint16, secs uint8) bool {
		rate := float64(rate16%2000) + 1
		ti := time.Duration(secs) * time.Second
		b1 := p.Energy(uint64(w), rate, 0, ti)
		b2 := p.Energy(uint64(w), rate, 0, 2*ti)
		return math.Abs(b2.IdleJ-2*b1.IdleJ) < 1e-6 &&
			math.Abs(b1.ActiveJ-b2.ActiveJ) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
