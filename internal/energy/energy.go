// Package energy implements the §8 energy model of the paper, built on the
// Niccolini et al. decomposition:
//
//	E = Pd(f) * Td(W, f)  +  Ps * Ts  +  Pi * Ti        (Equation 1)
//
// where Pd is active (dynamic) power, Td the active time for W packets at
// frequency f, Ps/Ts the sleep-transition power/time and Pi/Ti the idle
// power/time. The packet rate is R = W / Td.
//
// The package answers the paper's two §8 questions: (1) should an operator
// of fixed-function devices adopt programmable ones, which hinges on the
// idle-power penalty Pi_N vs Pi_S; and (2) given programmable devices,
// when should a workload move into the network — at the rate R* where
// Pd_N(R*) = Pd_S(R*), since the device's idle/sleep power is paid
// regardless of workload placement.
package energy

import "time"

// Profile describes one placement (software or network) of a workload.
type Profile struct {
	Name string
	// DynamicWatts returns active power as a function of rate in kpps.
	DynamicWatts func(kpps float64) float64
	// SleepWatts is drawn while transitioning from sleep (Ps).
	SleepWatts float64
	// IdleWatts is drawn while idle (Pi).
	IdleWatts float64
}

// Breakdown is the three-term energy split of Equation 1, in joules.
type Breakdown struct {
	ActiveJ float64 // Pd(f) * Td(W, f)
	SleepJ  float64 // Ps * Ts
	IdleJ   float64 // Pi * Ti
}

// Total returns the summed energy in joules.
func (b Breakdown) Total() float64 { return b.ActiveJ + b.SleepJ + b.IdleJ }

// Energy evaluates Equation 1 for a workload of W packets processed at
// rate kpps (determining Td = W/R), with ts spent in sleep transitions and
// ti idle.
func (p Profile) Energy(wPackets uint64, kpps float64, ts, ti time.Duration) Breakdown {
	var td float64 // seconds
	if kpps > 0 {
		td = float64(wPackets) / (kpps * 1000)
	}
	return Breakdown{
		ActiveJ: p.DynamicWatts(kpps) * td,
		SleepJ:  p.SleepWatts * ts.Seconds(),
		IdleJ:   p.IdleWatts * ti.Seconds(),
	}
}

// TippingPointKpps returns the lowest rate at which the network placement's
// dynamic power matches or beats the software placement's — the §8
// condition Pd_N(R) = Pd_S(R). It returns -1 if the network never wins
// below limitKpps.
func TippingPointKpps(sw, nw Profile, limitKpps float64) float64 {
	f := func(r float64) float64 { return sw.DynamicWatts(r) - nw.DynamicWatts(r) }
	if f(0) >= 0 {
		return 0
	}
	if f(limitKpps) < 0 {
		return -1
	}
	lo, hi := 0.0, limitKpps
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// AdoptionPenaltyWatts answers the first §8 question: the idle-power
// penalty of deploying a programmable device instead of a standard one,
// assuming it is not (yet) used for in-network computing. Negative values
// mean the programmable device is strictly cheaper (§9.4 observes this for
// some Arista switches).
func AdoptionPenaltyWatts(standardIdle, programmableIdle float64) float64 {
	return programmableIdle - standardIdle
}

// OpsPerWatt is the §6 efficiency metric: operations per second per watt.
// It returns 0 when watts is not positive.
func OpsPerWatt(opsPerSec, watts float64) float64 {
	if watts <= 0 {
		return 0
	}
	return opsPerSec / watts
}

// Ladder compares placements by ops/W at their peak rates, reproducing the
// §6 observation: software achieves 10K's msgs/W, FPGA 100K's, ASIC 10M's.
type Ladder struct {
	Name      string
	PeakKpps  float64
	PeakWatts float64
}

// Efficiency returns messages per second per watt at peak.
func (l Ladder) Efficiency() float64 { return OpsPerWatt(l.PeakKpps*1000, l.PeakWatts) }

// SavingFraction returns how much energy placement b saves over placement
// a for the same work (1 - Eb/Ea); negative when b is worse.
func SavingFraction(a, b Breakdown) float64 {
	ta := a.Total()
	if ta == 0 {
		return 0
	}
	return 1 - b.Total()/ta
}
