package simnet

import (
	"fmt"
	"time"
)

// Addr identifies a node on the simulated network. Addresses are free-form
// strings ("server0", "lake-nic", "tor-switch").
type Addr string

// Packet is a datagram traversing the simulated network. All three case
// studies in the paper are UDP based (§3.4), so a datagram service is the
// only transport the simulator provides.
type Packet struct {
	Src, Dst Addr
	// SrcPort and DstPort are UDP ports; packet classifiers (LaKe's and
	// Emu DNS's) dispatch on DstPort.
	SrcPort, DstPort uint16
	Payload          []byte
	// Wire is the on-the-wire size in bytes used for serialization delay.
	// If zero, len(Payload) plus a fixed UDP/IP/Ethernet overhead is used.
	Wire int
	// SentAt is stamped by the network when the packet enters a link.
	SentAt Time
}

// WireSize returns the byte count used for serialization-delay accounting.
func (p *Packet) WireSize() int {
	if p.Wire > 0 {
		return p.Wire
	}
	// 42 bytes of Ethernet+IPv4+UDP headers, the common case for the
	// paper's workloads.
	return len(p.Payload) + 42
}

// Node is anything that can receive packets from the network.
type Node interface {
	// Addr returns the node's network address.
	Addr() Addr
	// Receive handles a packet delivered to this node. It runs inside the
	// simulation loop; implementations may schedule further events.
	Receive(pkt *Packet)
}

// LinkConfig describes a unidirectional link.
type LinkConfig struct {
	// Bandwidth in bits per second. Zero means infinite (no serialization
	// delay). The paper's front-panel interfaces are 10GE.
	Bandwidth float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueLimit bounds the number of packets in flight on the link
	// (drop-tail). Zero means unbounded.
	QueueLimit int
	// LossRate drops this fraction of packets at random (failure
	// injection for protocol robustness tests).
	LossRate float64
}

// WithLoss returns a copy of the config with the given loss rate.
func (c LinkConfig) WithLoss(rate float64) LinkConfig {
	c.LossRate = rate
	return c
}

// TenGigE is the link configuration of the NetFPGA SUME front-panel ports.
var TenGigE = LinkConfig{Bandwidth: 10e9, Delay: 500 * time.Nanosecond, QueueLimit: 4096}

// FortyGigE matches the paper's Tofino snake configuration ports.
var FortyGigE = LinkConfig{Bandwidth: 40e9, Delay: 500 * time.Nanosecond, QueueLimit: 4096}

// link is the runtime state of a unidirectional link.
type link struct {
	cfg LinkConfig
	// busyUntil is when the transmitter finishes the current packet.
	busyUntil  Time
	inFlight   int
	drops      uint64
	delivered  uint64
	bytes      uint64
	duplicated uint64
	reordered  uint64
}

// LinkStats is a snapshot of one direction of a link.
type LinkStats struct {
	Delivered uint64
	Drops     uint64
	Bytes     uint64
	// Duplicated counts packets the fault plan delivered twice;
	// Reordered counts packets it held back past their natural slot.
	Duplicated uint64
	Reordered  uint64
}

// Network connects nodes with point-to-point links and delivers packets
// with serialization + propagation delay.
type Network struct {
	sim   *Simulator
	nodes map[Addr]Node
	links map[[2]Addr]*link
	// Default link used between nodes with no explicit link.
	defaultLink LinkConfig
	dropped     uint64
	unroutable  uint64

	// Fault-injection state (see faults.go).
	plan           FaultPlan
	partitioned    map[[2]Addr]bool
	crashed        map[Addr]bool
	partitionDrops uint64
	crashDrops     uint64
	hash           uint64
	tracer         Tracer
}

// NewNetwork returns an empty network attached to sim. Packets between
// nodes without an explicit link use def.
func NewNetwork(sim *Simulator, def LinkConfig) *Network {
	return &Network{
		sim:         sim,
		nodes:       make(map[Addr]Node),
		links:       make(map[[2]Addr]*link),
		defaultLink: def,
	}
}

// Sim returns the simulator driving this network.
func (n *Network) Sim() *Simulator { return n.sim }

// Attach registers a node. Attaching two nodes with the same address is a
// programming error and panics.
func (n *Network) Attach(node Node) {
	if _, dup := n.nodes[node.Addr()]; dup {
		panic(fmt.Sprintf("simnet: duplicate node address %q", node.Addr()))
	}
	n.nodes[node.Addr()] = node
}

// Detach removes the node with the given address, if present.
func (n *Network) Detach(addr Addr) { delete(n.nodes, addr) }

// Node returns the attached node with the given address, or nil.
func (n *Network) Node(addr Addr) Node { return n.nodes[addr] }

// Connect installs a bidirectional link between a and b with cfg in both
// directions, replacing any existing link.
func (n *Network) Connect(a, b Addr, cfg LinkConfig) {
	n.links[[2]Addr{a, b}] = &link{cfg: cfg}
	n.links[[2]Addr{b, a}] = &link{cfg: cfg}
}

func (n *Network) linkFor(src, dst Addr) *link {
	if l, ok := n.links[[2]Addr{src, dst}]; ok {
		return l
	}
	l := &link{cfg: n.defaultLink}
	n.links[[2]Addr{src, dst}] = l
	return l
}

// Send transmits pkt from pkt.Src to pkt.Dst. Delivery happens after the
// link's serialization and propagation delay plus any fault-plan delay
// terms; packets beyond the link's queue limit, lost to the loss rate, or
// blocked by a partition or crashed endpoint are dropped. Send reports
// whether the packet was accepted onto the link.
func (n *Network) Send(pkt *Packet) bool {
	n.trace(TraceSend, pkt.Src, pkt.Dst, pkt.Payload)
	if n.crashed[pkt.Src] || n.crashed[pkt.Dst] {
		n.crashDrops++
		n.dropped++
		n.trace(TraceDropCrash, pkt.Src, pkt.Dst, nil)
		return false
	}
	if n.partitioned[[2]Addr{pkt.Src, pkt.Dst}] {
		n.partitionDrops++
		n.dropped++
		n.trace(TraceDropPart, pkt.Src, pkt.Dst, nil)
		return false
	}
	l := n.linkFor(pkt.Src, pkt.Dst)
	if l.cfg.QueueLimit > 0 && l.inFlight >= l.cfg.QueueLimit {
		l.drops++
		n.dropped++
		n.trace(TraceDropQueue, pkt.Src, pkt.Dst, nil)
		return false
	}
	if l.cfg.LossRate > 0 && n.sim.Rand().Float64() < l.cfg.LossRate {
		l.drops++
		n.dropped++
		n.trace(TraceDropLoss, pkt.Src, pkt.Dst, nil)
		return false
	}
	f := n.plan.For(pkt.Src, pkt.Dst)
	if f.LossRate > 0 && n.sim.Rand().Float64() < f.LossRate {
		l.drops++
		n.dropped++
		n.trace(TraceDropLoss, pkt.Src, pkt.Dst, nil)
		return false
	}
	now := n.sim.Now()
	pkt.SentAt = now
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	var ser time.Duration
	if l.cfg.Bandwidth > 0 {
		bits := float64(pkt.WireSize()) * 8
		ser = time.Duration(bits / l.cfg.Bandwidth * float64(time.Second))
	}
	l.busyUntil = start.Add(ser)
	deliver := l.busyUntil.Add(l.cfg.Delay)
	// Fault-plan delay terms, all drawn from the seeded RNG in fixed
	// order: jitter on every packet, then the straggler hold, then the
	// reordering hold (which lets naturally later packets overtake).
	if f.active() {
		if f.JitterMax > 0 {
			deliver = deliver.Add(time.Duration(n.sim.Rand().Int63n(int64(f.JitterMax))))
		}
		if f.StraggleRate > 0 && n.sim.Rand().Float64() < f.StraggleRate {
			deliver = deliver.Add(f.StraggleDelay)
		}
		if f.ReorderRate > 0 && n.sim.Rand().Float64() < f.ReorderRate {
			deliver = deliver.Add(time.Duration(1 + n.sim.Rand().Int63n(int64(f.reorderWindow()))))
			l.reordered++
		}
	}
	l.inFlight++
	n.sim.ScheduleAt(deliver, func() { n.deliver(l, pkt, TraceDeliver) })
	if f.DupRate > 0 && n.sim.Rand().Float64() < f.DupRate {
		l.duplicated++
		l.inFlight++
		dup := deliver.Add(time.Duration(1 + n.sim.Rand().Int63n(int64(f.reorderWindow()))))
		n.sim.ScheduleAt(dup, func() { n.deliver(l, pkt, TraceDup) })
	}
	return true
}

// deliver lands one (possibly duplicated) copy of pkt, re-checking the
// partition and crash state at delivery time so a fault injected while
// the packet was in flight still kills it.
func (n *Network) deliver(l *link, pkt *Packet, kind string) {
	l.inFlight--
	if n.crashed[pkt.Dst] || n.crashed[pkt.Src] {
		n.crashDrops++
		n.dropped++
		n.trace(TraceDropCrash, pkt.Src, pkt.Dst, nil)
		return
	}
	if n.partitioned[[2]Addr{pkt.Src, pkt.Dst}] {
		n.partitionDrops++
		n.dropped++
		n.trace(TraceDropPart, pkt.Src, pkt.Dst, nil)
		return
	}
	l.delivered++
	l.bytes += uint64(pkt.WireSize())
	node, ok := n.nodes[pkt.Dst]
	if !ok {
		n.unroutable++
		n.trace(TraceUnroutable, pkt.Src, pkt.Dst, nil)
		return
	}
	n.trace(kind, pkt.Src, pkt.Dst, pkt.Payload)
	node.Receive(pkt)
}

// Stats returns a snapshot of the src->dst link.
func (n *Network) Stats(src, dst Addr) LinkStats {
	l, ok := n.links[[2]Addr{src, dst}]
	if !ok {
		return LinkStats{}
	}
	return LinkStats{Delivered: l.delivered, Drops: l.drops, Bytes: l.bytes,
		Duplicated: l.duplicated, Reordered: l.reordered}
}

// Dropped reports the total packets dropped at link queues.
func (n *Network) Dropped() uint64 { return n.dropped }

// Unroutable reports packets delivered to addresses with no attached node.
func (n *Network) Unroutable() uint64 { return n.unroutable }

// NodeFunc adapts a function to the Node interface.
type NodeFunc struct {
	Address Addr
	Handler func(pkt *Packet)
}

// Addr implements Node.
func (f *NodeFunc) Addr() Addr { return f.Address }

// Receive implements Node.
func (f *NodeFunc) Receive(pkt *Packet) {
	if f.Handler != nil {
		f.Handler(pkt)
	}
}
