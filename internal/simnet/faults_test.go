package simnet

import (
	"fmt"
	"testing"
	"time"
)

// chatter runs a fixed request/reply workload between two nodes over a
// faulted network and returns the network for inspection.
func chatter(seed int64, plan FaultPlan, packets int) (*Simulator, *Network, *int) {
	sim := New(seed)
	net := NewNetwork(sim, LinkConfig{Delay: 10 * time.Microsecond})
	net.SetFaultPlan(plan)
	received := 0
	net.Attach(&NodeFunc{Address: "server", Handler: func(pkt *Packet) {
		reply := &Packet{Src: "server", Dst: pkt.Src, Payload: append([]byte("re:"), pkt.Payload...)}
		net.Send(reply)
	}})
	net.Attach(&NodeFunc{Address: "client", Handler: func(pkt *Packet) { received++ }})
	for i := 0; i < packets; i++ {
		i := i
		sim.Schedule(time.Duration(i)*time.Microsecond, func() {
			net.Send(&Packet{Src: "client", Dst: "server", Payload: []byte(fmt.Sprintf("req-%d", i))})
		})
	}
	sim.Run()
	return sim, net, &received
}

func TestFaultPlanSeededDeterminism(t *testing.T) {
	plan := FaultPlan{Default: Faults{
		LossRate: 0.1, DupRate: 0.15, ReorderRate: 0.3,
		ReorderWindow: 50 * time.Microsecond, JitterMax: 20 * time.Microsecond,
		StraggleRate: 0.05, StraggleDelay: 300 * time.Microsecond,
	}}
	_, netA, recvA := chatter(42, plan, 500)
	_, netB, recvB := chatter(42, plan, 500)
	if netA.TraceHash() != netB.TraceHash() {
		t.Fatalf("same seed diverged: trace hashes %x vs %x", netA.TraceHash(), netB.TraceHash())
	}
	if *recvA != *recvB {
		t.Fatalf("same seed diverged: %d vs %d replies", *recvA, *recvB)
	}
	_, netC, _ := chatter(43, plan, 500)
	if netA.TraceHash() == netC.TraceHash() {
		t.Fatalf("different seeds produced identical trace hash %x", netA.TraceHash())
	}
}

func TestReorderWindowBoundsDelay(t *testing.T) {
	const window = 40 * time.Microsecond
	sim := New(7)
	net := NewNetwork(sim, LinkConfig{Delay: 10 * time.Microsecond})
	net.SetFaultPlan(FaultPlan{Default: Faults{ReorderRate: 1, ReorderWindow: window}})
	var worst time.Duration
	net.Attach(&NodeFunc{Address: "sink", Handler: func(pkt *Packet) {
		if d := sim.Now().Sub(pkt.SentAt); d > worst {
			worst = d
		}
	}})
	for i := 0; i < 200; i++ {
		sim.Schedule(time.Duration(i)*time.Microsecond, func() {
			net.Send(&Packet{Src: "src", Dst: "sink", Payload: []byte("x")})
		})
	}
	sim.Run()
	if max := 10*time.Microsecond + window; worst > max {
		t.Fatalf("reordered packet delayed %v, beyond propagation+window bound %v", worst, max)
	}
	if st := net.Stats("src", "sink"); st.Reordered != 200 {
		t.Fatalf("Reordered = %d, want 200 at rate 1", st.Reordered)
	}
}

func TestDuplicationAccounting(t *testing.T) {
	sim := New(11)
	net := NewNetwork(sim, LinkConfig{})
	net.SetFaultPlan(FaultPlan{Default: Faults{DupRate: 0.5}})
	delivered := 0
	net.Attach(&NodeFunc{Address: "sink", Handler: func(*Packet) { delivered++ }})
	const sent = 400
	for i := 0; i < sent; i++ {
		sim.Schedule(time.Duration(i)*time.Microsecond, func() {
			net.Send(&Packet{Src: "src", Dst: "sink", Payload: []byte("d")})
		})
	}
	sim.Run()
	st := net.Stats("src", "sink")
	if st.Duplicated == 0 {
		t.Fatal("no duplicates injected at rate 0.5")
	}
	if want := sent + int(st.Duplicated); delivered != want {
		t.Fatalf("delivered %d, want sent(%d) + duplicated(%d) = %d", delivered, sent, st.Duplicated, want)
	}
	if st.Delivered != uint64(delivered) {
		t.Fatalf("LinkStats.Delivered = %d, node saw %d", st.Delivered, delivered)
	}
	if fs := net.FaultStats(); fs.Duplicated != st.Duplicated {
		t.Fatalf("FaultStats.Duplicated = %d, link says %d", fs.Duplicated, st.Duplicated)
	}
}

func TestPartitionHeal(t *testing.T) {
	sim := New(3)
	net := NewNetwork(sim, LinkConfig{Delay: time.Microsecond})
	got := 0
	net.Attach(&NodeFunc{Address: "b", Handler: func(*Packet) { got++ }})
	send := func() { net.Send(&Packet{Src: "a", Dst: "b", Payload: []byte("p")}) }

	send()
	sim.Run()
	if got != 1 {
		t.Fatalf("pre-partition delivery failed: got %d", got)
	}
	net.Partition("a", "b")
	// One packet blocked at send, one already in flight when the
	// partition lands mid-flight.
	sim.Schedule(0, send)
	sim.Run()
	net.Heal("a", "b")
	if got != 1 {
		t.Fatalf("partitioned packet delivered: got %d", got)
	}
	if fs := net.FaultStats(); fs.PartitionDrops == 0 {
		t.Fatal("partition drop not accounted")
	}
	send()
	sim.Run()
	if got != 2 {
		t.Fatalf("post-heal delivery failed: got %d", got)
	}
}

func TestCrashRestartDropsInFlight(t *testing.T) {
	sim := New(5)
	net := NewNetwork(sim, LinkConfig{Delay: 100 * time.Microsecond})
	got := 0
	net.Attach(&NodeFunc{Address: "b", Handler: func(*Packet) { got++ }})
	net.Send(&Packet{Src: "a", Dst: "b", Payload: []byte("inflight")})
	// Crash lands while the packet is still in the air.
	sim.Schedule(10*time.Microsecond, func() { net.Crash("b") })
	sim.Run()
	if got != 0 {
		t.Fatalf("in-flight packet survived a crash: got %d", got)
	}
	if !net.Crashed("b") {
		t.Fatal("Crashed not reported")
	}
	net.Restart("b")
	net.Send(&Packet{Src: "a", Dst: "b", Payload: []byte("after")})
	sim.Run()
	if got != 1 {
		t.Fatalf("post-restart delivery failed: got %d", got)
	}
	if fs := net.FaultStats(); fs.CrashDrops == 0 {
		t.Fatal("crash drop not accounted")
	}
}
