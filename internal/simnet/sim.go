package simnet

import (
	"math/rand"
	"time"
)

// Simulator owns the virtual clock and the event queue. It is not safe for
// concurrent use: the whole simulation runs on one goroutine, which is what
// makes it deterministic.
type Simulator struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	rng     *rand.Rand
	stopped bool

	// Executed counts events processed since construction.
	executed uint64
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed reports how many events have been processed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending reports how many events are waiting in the queue.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero. It returns the absolute time at which fn will fire.
func (s *Simulator) Schedule(d time.Duration, fn func()) Time {
	if d < 0 {
		d = 0
	}
	return s.ScheduleAt(s.now.Add(d), fn)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to the current time.
func (s *Simulator) ScheduleAt(at Time, fn func()) Time {
	if at < s.now {
		at = s.now
	}
	s.nextSeq++
	s.queue.push(&event{at: at, seq: s.nextSeq, fn: fn})
	return at
}

// Every schedules fn to run every period, starting one period from now,
// until the returned cancel function is called. fn observes the virtual
// clock through the simulator.
func (s *Simulator) Every(period time.Duration, fn func()) (cancel func()) {
	if period <= 0 {
		period = time.Nanosecond
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped || s.stopped {
			return
		}
		fn()
		s.Schedule(period, tick)
	}
	s.Schedule(period, tick)
	return func() { stopped = true }
}

// Stop aborts the run loop after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run processes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped {
		ev := s.queue.peek()
		if ev == nil {
			return
		}
		s.queue.pop()
		s.now = ev.at
		s.executed++
		ev.fn()
	}
}

// RunUntil processes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (s *Simulator) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		ev := s.queue.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		s.queue.pop()
		s.now = ev.at
		s.executed++
		ev.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d of virtual time.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }
