package simnet

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations re-exported for convenience when scheduling events.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns the time as fractional seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the virtual time as a duration since simulation start.
func (t Time) String() string { return fmt.Sprint(time.Duration(t)) }
