package simnet

import (
	"testing"
	"time"
)

func TestDelivery(t *testing.T) {
	s := New(1)
	n := NewNetwork(s, LinkConfig{Delay: time.Microsecond})
	var got *Packet
	var at Time
	n.Attach(&NodeFunc{Address: "b", Handler: func(p *Packet) { got, at = p, s.Now() }})
	n.Attach(&NodeFunc{Address: "a"})
	ok := n.Send(&Packet{Src: "a", Dst: "b", Payload: []byte("hi")})
	if !ok {
		t.Fatal("Send rejected packet on empty link")
	}
	s.Run()
	if got == nil || string(got.Payload) != "hi" {
		t.Fatalf("packet not delivered: %+v", got)
	}
	if at != Time(time.Microsecond) {
		t.Errorf("delivered at %v, want 1µs (propagation only, infinite bandwidth)", at)
	}
}

func TestSerializationDelay(t *testing.T) {
	s := New(1)
	// 1 Gbps link: a 1250-byte wire packet takes 10µs to serialize.
	n := NewNetwork(s, LinkConfig{Bandwidth: 1e9})
	var at Time
	n.Attach(&NodeFunc{Address: "b", Handler: func(p *Packet) { at = s.Now() }})
	n.Send(&Packet{Src: "a", Dst: "b", Wire: 1250})
	s.Run()
	if at != Time(10*time.Microsecond) {
		t.Errorf("delivered at %v, want 10µs", at)
	}
}

func TestBackToBackPacketsQueueOnLink(t *testing.T) {
	s := New(1)
	n := NewNetwork(s, LinkConfig{Bandwidth: 1e9})
	var times []Time
	n.Attach(&NodeFunc{Address: "b", Handler: func(p *Packet) { times = append(times, s.Now()) }})
	// Two packets sent at t=0 must serialize one after the other.
	n.Send(&Packet{Src: "a", Dst: "b", Wire: 1250})
	n.Send(&Packet{Src: "a", Dst: "b", Wire: 1250})
	s.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(times))
	}
	if times[0] != Time(10*time.Microsecond) || times[1] != Time(20*time.Microsecond) {
		t.Errorf("delivery times %v, want [10µs 20µs]", times)
	}
}

func TestQueueLimitDrops(t *testing.T) {
	s := New(1)
	n := NewNetwork(s, LinkConfig{Bandwidth: 1e6, QueueLimit: 2})
	n.Attach(&NodeFunc{Address: "b"})
	sent := 0
	for i := 0; i < 5; i++ {
		if n.Send(&Packet{Src: "a", Dst: "b", Wire: 1000}) {
			sent++
		}
	}
	if sent != 2 {
		t.Errorf("accepted %d packets, want 2 (queue limit)", sent)
	}
	if n.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3", n.Dropped())
	}
	s.Run()
	st := n.Stats("a", "b")
	if st.Delivered != 2 || st.Drops != 3 {
		t.Errorf("link stats = %+v, want 2 delivered, 3 drops", st)
	}
}

func TestUnroutable(t *testing.T) {
	s := New(1)
	n := NewNetwork(s, LinkConfig{})
	n.Send(&Packet{Src: "a", Dst: "ghost"})
	s.Run()
	if n.Unroutable() != 1 {
		t.Errorf("Unroutable() = %d, want 1", n.Unroutable())
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate address")
		}
	}()
	s := New(1)
	n := NewNetwork(s, LinkConfig{})
	n.Attach(&NodeFunc{Address: "x"})
	n.Attach(&NodeFunc{Address: "x"})
}

func TestDetach(t *testing.T) {
	s := New(1)
	n := NewNetwork(s, LinkConfig{})
	n.Attach(&NodeFunc{Address: "x"})
	if n.Node("x") == nil {
		t.Fatal("node not attached")
	}
	n.Detach("x")
	if n.Node("x") != nil {
		t.Error("node still attached after Detach")
	}
}

func TestWireSizeDefault(t *testing.T) {
	p := &Packet{Payload: make([]byte, 100)}
	if p.WireSize() != 142 {
		t.Errorf("WireSize() = %d, want 142 (payload+headers)", p.WireSize())
	}
	p.Wire = 64
	if p.WireSize() != 64 {
		t.Errorf("explicit WireSize() = %d, want 64", p.WireSize())
	}
}
