package simnet

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if s.Now() != Time(3*time.Millisecond) {
		t.Errorf("Now() = %v, want 3ms", s.Now())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.ScheduleAt(Time(time.Millisecond), func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order = %v, want FIFO", got)
		}
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	s := New(1)
	s.Schedule(time.Second, func() {
		fired := false
		s.ScheduleAt(0, func() { fired = true })
		s.Schedule(-time.Hour, func() {
			if !fired {
				t.Error("events in the past should run immediately, in order")
			}
		})
	})
	s.Run()
	if s.Now() != Time(time.Second) {
		t.Errorf("Now() = %v, want 1s", s.Now())
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	ran := 0
	s.Schedule(time.Second, func() { ran++ })
	s.Schedule(3*time.Second, func() { ran++ })
	s.RunUntil(Time(2 * time.Second))
	if ran != 1 {
		t.Fatalf("ran = %d events, want 1", ran)
	}
	if s.Now() != Time(2*time.Second) {
		t.Errorf("Now() = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
	s.RunFor(time.Second)
	if ran != 2 {
		t.Errorf("after RunFor, ran = %d, want 2", ran)
	}
}

func TestEveryAndCancel(t *testing.T) {
	s := New(1)
	n := 0
	var cancel func()
	cancel = s.Every(time.Millisecond, func() {
		n++
		if n == 5 {
			cancel()
		}
	})
	s.RunFor(time.Second)
	if n != 5 {
		t.Errorf("periodic fired %d times, want 5 (cancel should stop it)", n)
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	n := 0
	s.Every(time.Millisecond, func() {
		n++
		if n == 3 {
			s.Stop()
		}
	})
	s.Run()
	if n != 3 {
		t.Errorf("processed %d events, want 3 after Stop", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var trace []int64
		for i := 0; i < 100; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
			s.Schedule(d, func() { trace = append(trace, int64(s.Now())) })
		}
		s.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", tm.Seconds())
	}
	if tm.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Errorf("Sub = %v, want 500ms", tm.Sub(Time(time.Second)))
	}
	if tm.String() != "1.5s" {
		t.Errorf("String() = %q, want 1.5s", tm.String())
	}
}

// Property: the event queue always pops events in non-decreasing timestamp
// order regardless of insertion order.
func TestQueueOrderProperty(t *testing.T) {
	f := func(delays []uint32) bool {
		s := New(7)
		var fired []Time
		for _, d := range delays {
			s.Schedule(time.Duration(d%1e6)*time.Microsecond, func() {
				fired = append(fired, s.Now())
			})
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
