// Package simnet provides a deterministic discrete-event simulation engine
// with a simple packet network on top. All experiments in this repository
// run in virtual time: the simulator owns a virtual clock, an event queue,
// and a registry of nodes connected by links with bandwidth, propagation
// delay and bounded queues.
//
// The engine is single-goroutine and fully deterministic: two runs with the
// same seed and the same schedule of events produce identical results. That
// property replaces the paper's physical OSNT traffic generator and DAG
// capture card with something reproducible on any machine.
//
// # Fault plans
//
// A FaultPlan turns the network into a chaos substrate. Per link (or as a
// network-wide default) it injects packet loss, duplication, bounded
// reordering, latency jitter and stragglers; on top of the plan the
// network supports bidirectional partitions (Partition/Heal) and node
// crash/restart (Crash/Restart), which also kill packets already in
// flight. Every probabilistic choice is drawn from the simulator's seeded
// random source in a fixed order, so an entire faulted run — including
// every drop, duplicate and delay — is a pure function of (seed, plan).
//
// The network maintains an order-sensitive hash of every packet event
// (TraceHash) and an optional Tracer callback. The chaos harness in
// internal/chaos sweeps seeds, asserts properties, and on a violation
// prints the exact seed to replay; re-running with that seed reproduces
// the failure byte-for-byte, and SetTracer dumps the full schedule.
//
// Fault accounting surfaces per link in LinkStats (Duplicated, Reordered
// next to the existing Delivered/Drops/Bytes) and network-wide in
// FaultStats (partition and crash drops).
package simnet
