package simnet

import (
	"time"
)

// Faults augments one unidirectional link with chaos injectors. All
// probabilities are evaluated against the simulator's seeded random
// source in a fixed order, so a whole run — including every injected
// fault — replays byte-for-byte from (seed, plan).
//
// Faults compose with the link's LinkConfig: LossRate here is applied in
// addition to any LinkConfig.LossRate, and the delay terms add on top of
// serialization + propagation delay.
type Faults struct {
	// LossRate drops this fraction of packets.
	LossRate float64
	// DupRate delivers this fraction of packets twice. The duplicate
	// arrives after the original by up to ReorderWindow (default 10µs).
	DupRate float64
	// ReorderRate delays this fraction of packets by an extra uniform
	// draw from (0, ReorderWindow], letting later packets overtake them.
	ReorderRate float64
	// ReorderWindow bounds the extra delay of reordered (and duplicated)
	// packets. Zero with a nonzero ReorderRate defaults to 10µs.
	ReorderWindow time.Duration
	// JitterMax adds a uniform [0, JitterMax) latency to every packet.
	JitterMax time.Duration
	// StraggleRate delays this fraction of packets by StraggleDelay —
	// the "straggler tier" injector: a packet stuck behind a slow hop.
	StraggleRate float64
	// StraggleDelay is the straggler's fixed extra delay.
	StraggleDelay time.Duration
}

// active reports whether any injector is configured.
func (f Faults) active() bool {
	return f.LossRate > 0 || f.DupRate > 0 || f.ReorderRate > 0 ||
		f.JitterMax > 0 || f.StraggleRate > 0
}

// reorderWindow returns the effective reorder/duplicate delay bound.
func (f Faults) reorderWindow() time.Duration {
	if f.ReorderWindow > 0 {
		return f.ReorderWindow
	}
	return 10 * time.Microsecond
}

// FaultPlan assigns fault injectors to a network: Default applies to
// every link, Links overrides specific (src, dst) directions. A plan is
// pure data — (seed, plan) fully determines a chaos run, which is what
// makes any failure reproducible.
type FaultPlan struct {
	Default Faults
	Links   map[[2]Addr]Faults
}

// For returns the faults applying to the src->dst link.
func (p FaultPlan) For(src, dst Addr) Faults {
	if f, ok := p.Links[[2]Addr{src, dst}]; ok {
		return f
	}
	return p.Default
}

// SetFaultPlan installs plan on the network. It applies to every packet
// sent from now on, existing links included.
func (n *Network) SetFaultPlan(plan FaultPlan) { n.plan = plan }

// SetLinkFaults sets the fault injectors for both directions between a
// and b, keeping the rest of the current plan.
func (n *Network) SetLinkFaults(a, b Addr, f Faults) {
	if n.plan.Links == nil {
		n.plan.Links = make(map[[2]Addr]Faults)
	}
	n.plan.Links[[2]Addr{a, b}] = f
	n.plan.Links[[2]Addr{b, a}] = f
}

// Partition installs a bidirectional partition between a and b: every
// packet between them (in flight ones included) is dropped until Heal.
func (n *Network) Partition(a, b Addr) {
	if n.partitioned == nil {
		n.partitioned = make(map[[2]Addr]bool)
	}
	n.partitioned[[2]Addr{a, b}] = true
	n.partitioned[[2]Addr{b, a}] = true
}

// Heal removes the partition between a and b.
func (n *Network) Heal(a, b Addr) {
	delete(n.partitioned, [2]Addr{a, b})
	delete(n.partitioned, [2]Addr{b, a})
}

// HealAll removes every partition.
func (n *Network) HealAll() { n.partitioned = nil }

// Partitioned reports whether a->b is currently partitioned.
func (n *Network) Partitioned(a, b Addr) bool { return n.partitioned[[2]Addr{a, b}] }

// Crash marks addr as crashed: it neither sends nor receives until
// Restart, and packets already in flight to it are dropped on delivery.
// The node stays attached — a crash is a fault, not a topology change.
func (n *Network) Crash(addr Addr) {
	if n.crashed == nil {
		n.crashed = make(map[Addr]bool)
	}
	n.crashed[addr] = true
}

// Restart clears addr's crashed state. State recovery is the node's own
// concern — the network only resumes delivering to it.
func (n *Network) Restart(addr Addr) { delete(n.crashed, addr) }

// Crashed reports whether addr is currently crashed.
func (n *Network) Crashed(addr Addr) bool { return n.crashed[addr] }

// FaultStats aggregates the network-wide fault accounting.
type FaultStats struct {
	// PartitionDrops counts packets dropped by an active partition.
	PartitionDrops uint64
	// CrashDrops counts packets dropped because an endpoint was crashed.
	CrashDrops uint64
	// Duplicated and Reordered total the per-link counters.
	Duplicated uint64
	Reordered  uint64
}

// FaultStats returns the network-wide fault accounting.
func (n *Network) FaultStats() FaultStats {
	s := FaultStats{PartitionDrops: n.partitionDrops, CrashDrops: n.crashDrops}
	for _, l := range n.links {
		s.Duplicated += l.duplicated
		s.Reordered += l.reordered
	}
	return s
}

// --- event trace ----------------------------------------------------------

// Trace event kinds, folded into the trace hash and passed to the tracer.
const (
	TraceSend       = "send"
	TraceDeliver    = "deliver"
	TraceDup        = "dup"
	TraceDropLoss   = "drop-loss"
	TraceDropQueue  = "drop-queue"
	TraceDropPart   = "drop-partition"
	TraceDropCrash  = "drop-crash"
	TraceUnroutable = "unroutable"
)

// Tracer observes every packet event. Install with SetTracer to dump a
// run's full schedule (the chaos runner writes it as the replay
// artifact); the trace hash is maintained regardless.
type Tracer func(kind string, at Time, src, dst Addr, payload []byte)

// SetTracer installs fn (nil disables). The tracer fires in event order,
// so its output is deterministic per (seed, plan).
func (n *Network) SetTracer(fn Tracer) { n.tracer = fn }

// TraceHash is an order-sensitive FNV-1a fold of every packet event —
// kind, virtual time, endpoints and payload bytes. Two runs with the
// same seed and plan produce the same hash; any divergence in content
// or interleaving changes it, which is the determinism check the chaos
// harness sweeps.
func (n *Network) TraceHash() uint64 { return n.hash }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return fnvByte(h, 0xff)
}

// trace folds one packet event into the hash and forwards it to the
// tracer when installed.
func (n *Network) trace(kind string, src, dst Addr, payload []byte) {
	h := n.hash
	if h == 0 {
		h = fnvOffset
	}
	h = fnvString(h, kind)
	at := n.sim.Now()
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(at>>(8*i)))
	}
	h = fnvString(h, string(src))
	h = fnvString(h, string(dst))
	for _, b := range payload {
		h = fnvByte(h, b)
	}
	n.hash = h
	if n.tracer != nil {
		n.tracer(kind, at, src, dst, payload)
	}
}
