package placement

import "testing"

func TestCatalogAnchors(t *testing.T) {
	byKind := map[Kind]Platform{}
	for _, p := range Catalog() {
		byKind[p.Kind] = p
	}
	if len(byKind) != 5 {
		t.Fatalf("catalog kinds = %d, want 5", len(byKind))
	}
	// §10: switch ASIC has the highest performance and perf/W.
	sw := byKind[SwitchASIC]
	for k, p := range byKind {
		if k == SwitchASIC {
			continue
		}
		if p.PeakMpps >= sw.PeakMpps {
			t.Errorf("%v peak %v >= switch %v", k, p.PeakMpps, sw.PeakMpps)
		}
		if p.PerfPerWatt() >= sw.PerfPerWatt() {
			t.Errorf("%v perf/W %v >= switch %v", k, p.PerfPerWatt(), sw.PerfPerWatt())
		}
	}
	// §10: a switch "may not be the cheapest solution, with a price tag
	// of x10 or more".
	if sw.PriceUnits < 10 {
		t.Errorf("switch price %v, want >= 10x NIC-class", sw.PriceUnits)
	}
	// SmartNICs stay within the 25 W PCIe envelope.
	for _, k := range []Kind{FPGASmartNIC, ASICSmartNIC, SoCSmartNIC} {
		if byKind[k].Watts > 25 {
			t.Errorf("%v draws %v W, want <= 25 (PCIe envelope)", k, byKind[k].Watts)
		}
	}
	// AccelNet-class: ~4 Mpps/W.
	if ppw := byKind[FPGASmartNIC].PerfPerWatt(); ppw < 3 || ppw > 5 {
		t.Errorf("FPGA SmartNIC perf/W = %v, want ~4", ppw)
	}
	// FPGA NIC: poorest perf/W, maximum flexibility.
	fpga := byKind[FPGANIC]
	for k, p := range byKind {
		if k == FPGANIC {
			continue
		}
		if p.PerfPerWatt() <= fpga.PerfPerWatt() {
			t.Errorf("%v perf/W %v <= FPGA's %v (FPGA should be poorest)", k, p.PerfPerWatt(), fpga.PerfPerWatt())
		}
		if p.Flexibility > fpga.Flexibility {
			t.Errorf("%v flexibility %d > FPGA's %d", k, p.Flexibility, fpga.Flexibility)
		}
	}
	// SoC: easiest trajectory.
	for k, p := range byKind {
		if k != SoCSmartNIC && p.ProgrammingEase >= byKind[SoCSmartNIC].ProgrammingEase {
			t.Errorf("%v ease %d >= SoC's", k, p.ProgrammingEase)
		}
	}
	// Only the switch halves packets and only it takes out a whole rack.
	if !sw.HalvesPackets || sw.BlastRadius <= 1 {
		t.Error("switch attributes wrong")
	}
}

func TestRankHardConstraints(t *testing.T) {
	// A full KVS needs external memory and high flexibility: the switch
	// must be infeasible, FPGA platforms feasible.
	scores := Rank(Requirements{MinMpps: 5, NeedExternalMemory: true, MinFlexibility: 8})
	if !scores[0].Feasible {
		t.Fatalf("no feasible platform: %+v", scores)
	}
	for _, s := range scores {
		switch s.Platform.Kind {
		case SwitchASIC:
			if s.Feasible {
				t.Error("switch should be infeasible for memory+flexibility needs")
			}
			if len(s.Why) == 0 {
				t.Error("infeasible platform should explain why")
			}
		case FPGANIC, FPGASmartNIC:
			if !s.Feasible {
				t.Errorf("%s should be feasible: %v", s.Platform.Name, s.Why)
			}
		}
	}
}

func TestRankExtremeThroughputPicksSwitch(t *testing.T) {
	scores := Rank(Requirements{MinMpps: 1000})
	if scores[0].Platform.Kind != SwitchASIC || !scores[0].Feasible {
		t.Errorf("1 Gpps requirement should leave only the switch, got %+v", scores[0])
	}
	feasible := 0
	for _, s := range scores {
		if s.Feasible {
			feasible++
		}
	}
	if feasible != 1 {
		t.Errorf("feasible = %d, want 1", feasible)
	}
}

func TestRankBudgetAndBlastRadius(t *testing.T) {
	scores := Rank(Requirements{MaxPriceUnits: 2, MaxBlastRadius: 1})
	for _, s := range scores {
		if s.Platform.Kind == SwitchASIC && s.Feasible {
			t.Error("switch violates both budget and blast radius")
		}
	}
	// Feasible entries sort by value, descending.
	prev := -1.0
	for _, s := range scores {
		if !s.Feasible {
			break
		}
		if prev >= 0 && s.Value > prev {
			t.Error("feasible platforms not sorted by value")
		}
		prev = s.Value
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{FPGANIC: "fpga-nic", FPGASmartNIC: "fpga-smartnic",
		ASICSmartNIC: "asic-smartnic", SoCSmartNIC: "soc-smartnic", SwitchASIC: "switch-asic",
		Kind(99): "unknown"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
