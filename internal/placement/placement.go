// Package placement encodes §10 of the paper — "FPGA, SmartNIC or
// Switch?" — as an executable decision guide: a catalog of in-network
// computing platforms with the attributes the paper discusses (peak
// throughput, power, performance per watt, price, flexibility, failure
// blast radius, programming ease) and a ranking function for application
// requirements.
//
// Catalog anchors from §10:
//
//   - a switch ASIC provides the highest performance and performance per
//     watt, halves application packets, but costs "x10 or more" and has
//     limited per-Gbps resources and a vendor-fixed architecture;
//   - SmartNICs stay within the ~25 W PCIe envelope and reach millions of
//     operations per watt including external memory access;
//   - Azure's AccelNet FPGA SmartNIC draws 17-19 W standalone on a 40GE
//     board at close to 4 Mpps/W;
//   - SoC SmartNICs are the easiest to program but hit the resource wall
//     earliest;
//   - FPGAs have the poorest performance per watt but maximum flexibility
//     (any application, any interface or memory on a bespoke board).
package placement

import (
	"fmt"
	"sort"
)

// Kind classifies platforms.
type Kind int

// Platform kinds discussed in §10.
const (
	FPGANIC Kind = iota
	FPGASmartNIC
	ASICSmartNIC
	SoCSmartNIC
	SwitchASIC
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case FPGANIC:
		return "fpga-nic"
	case FPGASmartNIC:
		return "fpga-smartnic"
	case ASICSmartNIC:
		return "asic-smartnic"
	case SoCSmartNIC:
		return "soc-smartnic"
	case SwitchASIC:
		return "switch-asic"
	}
	return "unknown"
}

// Platform describes one in-network computing target.
type Platform struct {
	Name string
	Kind Kind
	// PeakMpps is the application-message capacity.
	PeakMpps float64
	// Watts is the device's power draw at load.
	Watts float64
	// PriceUnits is a relative list-price proxy (NIC-class = 1).
	PriceUnits float64
	// Flexibility (0-10): what fraction of applications fit (§10: FPGA
	// can implement "almost every application"; switches have a
	// vendor-provided architecture "that may not fit all applications").
	Flexibility int
	// ProgrammingEase (0-10): SoC SmartNICs are "the easiest trajectory".
	ProgrammingEase int
	// ExternalMemory reports large off-chip state support.
	ExternalMemory bool
	// BlastRadius is how many nodes an in-device failure takes down
	// (1 for a NIC next to its host; a rack for a ToR switch, §10's
	// "implications of a switch failure").
	BlastRadius int
	// HalvesPackets: request and reply traverse as one packet (§10).
	HalvesPackets bool
}

// PerfPerWatt returns Mpps per watt.
func (p Platform) PerfPerWatt() float64 {
	if p.Watts <= 0 {
		return 0
	}
	return p.PeakMpps / p.Watts
}

// Catalog returns the §10 platform set.
func Catalog() []Platform {
	return []Platform{
		{
			Name: "NetFPGA SUME (P4xos)", Kind: FPGANIC,
			PeakMpps: 10, Watts: 19.4, PriceUnits: 1,
			Flexibility: 10, ProgrammingEase: 4, ExternalMemory: true,
			BlastRadius: 1,
		},
		{
			Name: "AccelNet-class FPGA SmartNIC", Kind: FPGASmartNIC,
			PeakMpps: 70, Watts: 18, PriceUnits: 1.2,
			Flexibility: 9, ProgrammingEase: 4, ExternalMemory: true,
			BlastRadius: 1,
		},
		{
			Name: "ASIC SmartNIC", Kind: ASICSmartNIC,
			PeakMpps: 100, Watts: 25, PriceUnits: 1.5,
			Flexibility: 5, ProgrammingEase: 6, ExternalMemory: true,
			BlastRadius: 1,
		},
		{
			Name: "SoC SmartNIC", Kind: SoCSmartNIC,
			PeakMpps: 30, Watts: 25, PriceUnits: 1.2,
			Flexibility: 7, ProgrammingEase: 9, ExternalMemory: true,
			BlastRadius: 1,
		},
		{
			Name: "Tofino-class switch ASIC", Kind: SwitchASIC,
			PeakMpps: 2500, Watts: 237, PriceUnits: 12,
			Flexibility: 4, ProgrammingEase: 5, ExternalMemory: false,
			BlastRadius: 24, HalvesPackets: true,
		},
	}
}

// Requirements describe an application's needs.
type Requirements struct {
	// MinMpps is the required message rate.
	MinMpps float64
	// NeedExternalMemory for large state (e.g. a full KVS, §5.3).
	NeedExternalMemory bool
	// MinFlexibility (0-10): protocol/feature complexity the target must
	// absorb.
	MinFlexibility int
	// MaxPriceUnits bounds the budget (NIC-class = 1).
	MaxPriceUnits float64
	// MaxBlastRadius bounds acceptable failure impact.
	MaxBlastRadius int
}

// Score is a ranked platform.
type Score struct {
	Platform Platform
	// Feasible platforms meet every hard requirement.
	Feasible bool
	// Why lists violated requirements for infeasible platforms.
	Why []string
	// Value ranks feasible platforms: performance per watt per price.
	Value float64
}

// Rank evaluates the catalog against req, feasible platforms first,
// ordered by Value (perf/W normalized by price).
func Rank(req Requirements) []Score {
	var out []Score
	for _, p := range Catalog() {
		s := Score{Platform: p, Feasible: true}
		if p.PeakMpps < req.MinMpps {
			s.Feasible = false
			s.Why = append(s.Why, fmt.Sprintf("peak %.0f Mpps < required %.0f", p.PeakMpps, req.MinMpps))
		}
		if req.NeedExternalMemory && !p.ExternalMemory {
			s.Feasible = false
			s.Why = append(s.Why, "no external memory")
		}
		if p.Flexibility < req.MinFlexibility {
			s.Feasible = false
			s.Why = append(s.Why, fmt.Sprintf("flexibility %d < required %d", p.Flexibility, req.MinFlexibility))
		}
		if req.MaxPriceUnits > 0 && p.PriceUnits > req.MaxPriceUnits {
			s.Feasible = false
			s.Why = append(s.Why, fmt.Sprintf("price %.1f > budget %.1f", p.PriceUnits, req.MaxPriceUnits))
		}
		if req.MaxBlastRadius > 0 && p.BlastRadius > req.MaxBlastRadius {
			s.Feasible = false
			s.Why = append(s.Why, fmt.Sprintf("blast radius %d > limit %d", p.BlastRadius, req.MaxBlastRadius))
		}
		s.Value = p.PerfPerWatt() / p.PriceUnits
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Feasible != out[j].Feasible {
			return out[i].Feasible
		}
		return out[i].Value > out[j].Value
	})
	return out
}
