package kvs

import (
	"fmt"
	"testing"
	"time"

	"incod/internal/memcache"
	"incod/internal/power"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// rig builds client -> LaKe -> backend on a 10GE network.
func rig(t *testing.T) (*simnet.Simulator, *Client, *LaKe, *SoftServer) {
	t.Helper()
	sim := simnet.New(7)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	backend := NewSoftServer(net, "host", power.MemcachedMellanox)
	lake := NewLaKe(net, "lake", backend)
	client := NewClient(net, "client", "lake")
	return sim, client, lake, backend
}

func TestLaKeMissThenHit(t *testing.T) {
	sim, client, lake, backend := rig(t)
	backend.Store().Set("key-1", Entry{Value: []byte("v1")})

	client.KeyFunc = func() string { return "key-1" }
	client.Start(10) // 10 kpps
	sim.RunFor(50 * time.Millisecond)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)

	if lake.Counters.Get("miss") != 1 {
		t.Errorf("misses = %d, want exactly 1 (first query warms the cache)", lake.Counters.Get("miss"))
	}
	hits := lake.Counters.Get("l1_hit") + lake.Counters.Get("l2_hit")
	if hits < 100 {
		t.Errorf("cache hits = %d, want hundreds", hits)
	}
	if got := client.Counters.Get("hit"); got != client.Counters.Get("recv") {
		t.Errorf("client saw %d hits of %d responses", got, client.Counters.Get("recv"))
	}
	if client.Outstanding() != 0 {
		t.Errorf("%d requests unanswered", client.Outstanding())
	}
}

func TestLaKeLatencyAnchors(t *testing.T) {
	sim, client, lake, backend := rig(t)
	for i := 0; i < 100; i++ {
		backend.Store().Set(fmt.Sprintf("key-%d", i), Entry{Value: []byte("v")})
	}
	i := 0
	client.KeyFunc = func() string { i++; return fmt.Sprintf("key-%d", i%100) }
	client.Start(100)
	sim.RunFor(200 * time.Millisecond)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)

	// §5.3: hardware hits sit below 2µs more than an order of magnitude
	// under the ~13.5µs software path.
	if p50 := lake.HitLatency.Median(); p50 > 2*time.Microsecond {
		t.Errorf("hit median = %v, want < 2µs", p50)
	}
	if p50 := lake.MissLatency.Median(); p50 < 12*time.Microsecond || p50 > 16*time.Microsecond {
		t.Errorf("miss median = %v, want ~13.5µs", p50)
	}
	ratio := float64(lake.MissLatency.Median()) / float64(lake.HitLatency.Median())
	if ratio < 5 {
		t.Errorf("miss/hit latency ratio = %.1f, want ~10x", ratio)
	}
}

func TestLaKeSetWriteThrough(t *testing.T) {
	sim, client, lake, backend := rig(t)
	client.KeyFunc = func() string { return "w" }
	client.SetFraction = 1
	client.Start(10)
	sim.RunFor(10 * time.Millisecond)
	client.Stop()
	sim.RunFor(5 * time.Millisecond)

	if lake.Counters.Get("set") == 0 {
		t.Fatal("no sets classified")
	}
	if _, ok := backend.Store().Get("w", sim.Now()); !ok {
		t.Error("write-through did not reach the host store")
	}
	if _, ok := lake.l1.Peek("w"); !ok {
		t.Error("set should populate L1")
	}
}

func TestLaKeDeleteInvalidates(t *testing.T) {
	sim, client, lake, backend := rig(t)
	backend.Store().Set("d", Entry{Value: []byte("v")})
	// Warm the cache.
	client.KeyFunc = func() string { return "d" }
	client.Start(10)
	sim.RunFor(5 * time.Millisecond)
	client.Stop()
	sim.RunFor(5 * time.Millisecond)
	if _, ok := lake.l2.Peek("d"); !ok {
		t.Fatal("cache did not warm")
	}
	// Now delete through the data path.
	lake.Receive(&simnet.Packet{
		Src: "client", Dst: "lake", SrcPort: 40000, DstPort: MemcachedPort,
		Payload: clientDatagram(t, "delete d\r\n"),
	})
	sim.RunFor(5 * time.Millisecond)
	if _, ok := lake.l1.Peek("d"); ok {
		t.Error("delete should invalidate L1")
	}
	if _, ok := lake.l2.Peek("d"); ok {
		t.Error("delete should invalidate L2")
	}
	if _, ok := backend.Store().Get("d", sim.Now()); ok {
		t.Error("delete should reach the host store")
	}
}

func TestLaKeInactivePassesToSoftware(t *testing.T) {
	sim, client, lake, backend := rig(t)
	backend.Store().Set("key-1", Entry{Value: []byte("v")})
	lake.Deactivate()

	client.KeyFunc = func() string { return "key-1" }
	client.Start(20)
	sim.RunFor(50 * time.Millisecond)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)

	if lake.Counters.Get("l1_hit")+lake.Counters.Get("l2_hit") != 0 {
		t.Error("inactive module must not serve from cache")
	}
	if lake.Counters.Get("to_software") == 0 {
		t.Error("queries should pass through to the host")
	}
	if client.Counters.Get("recv") == 0 {
		t.Error("client got no responses via the software path")
	}
	// Latency through software is the ~13.5µs class, not the ~1.4µs class.
	if client.Latency.Median() < 10*time.Microsecond {
		t.Errorf("software-path median = %v, want > 10µs", client.Latency.Median())
	}
}

func TestDeactivateFlushesAndActivateWarmsAgain(t *testing.T) {
	sim, client, lake, backend := rig(t)
	backend.Store().Set("key-1", Entry{Value: []byte("v")})
	client.KeyFunc = func() string { return "key-1" }
	client.Start(20)
	sim.RunFor(20 * time.Millisecond)
	if l1, l2 := lake.CacheSizes(); l1 == 0 || l2 == 0 {
		t.Fatal("caches did not warm")
	}
	lake.Deactivate()
	if l1, l2 := lake.CacheSizes(); l1 != 0 || l2 != 0 {
		t.Error("Deactivate (memories in reset) must lose cached state")
	}
	if !lake.Board().MemoriesReset() || !lake.Board().ClockGated() {
		t.Error("Deactivate should park the board in the low-power state")
	}
	lake.Activate()
	sim.RunFor(50 * time.Millisecond)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)
	if lake.HitRatio() == 0 {
		t.Error("cache should re-warm after Activate")
	}
	if lake.Board().MemoriesReset() || lake.Board().ClockGated() {
		t.Error("Activate should release reset and gating")
	}
}

func TestCombinedPowerMatchesPaperShape(t *testing.T) {
	sim, client, lake, backend := rig(t)
	combined := telemetry.SumPower{backend, lake}
	// Idle: 39 (server) + ~20 (card) = ~59 W (§4.2).
	idle := combined.PowerWatts(sim.Now())
	if idle < 58 || idle > 61 {
		t.Errorf("idle combined power = %v W, want ~59", idle)
	}
	// Warm cache, then drive load: server stays near idle (all hits in
	// hardware), so combined power barely moves (§4.2, Figure 3a).
	backend.Store().Set("key-1", Entry{Value: []byte("v")})
	client.KeyFunc = func() string { return "key-1" }
	client.Start(500) // 500 kpps
	sim.RunFor(300 * time.Millisecond)
	loaded := combined.PowerWatts(sim.Now())
	client.Stop()
	if loaded > idle+3 {
		t.Errorf("combined power under load = %v W, want close to idle %v (hits stay in hardware)", loaded, idle)
	}
	// Pure software at the same rate would cost far more.
	sw := power.MemcachedMellanox.Power(500)
	if sw < loaded+20 {
		t.Errorf("software at 500kpps = %v W should far exceed LaKe's %v W", sw, loaded)
	}
}

func TestSoftServerDirectService(t *testing.T) {
	sim := simnet.New(3)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	server := NewSoftServer(net, "host", power.MemcachedMellanox)
	client := NewClient(net, "client", "host")
	server.Store().Set("k", Entry{Value: []byte("v")})
	client.KeyFunc = func() string { return "k" }
	client.Start(50)
	// Run past the 1s averaging window so the measured rate converges
	// (§4.1: "average throughput was measured at the granularity of a
	// second").
	sim.RunFor(1200 * time.Millisecond)
	if server.RateKpps() < 40 {
		t.Errorf("server rate = %v kpps, want ~50", server.RateKpps())
	}
	client.Stop()
	sim.RunFor(10 * time.Millisecond)
	recv := client.Counters.Get("recv")
	if recv == 0 || client.Counters.Get("hit") != recv {
		t.Fatalf("recv=%d hit=%d", recv, client.Counters.Get("hit"))
	}
	if med := client.Latency.Median(); med < 12*time.Microsecond || med > 18*time.Microsecond {
		t.Errorf("software median latency = %v, want ~13.5µs", med)
	}
}

func TestSoftServerShedsOverload(t *testing.T) {
	sim := simnet.New(3)
	net := simnet.NewNetwork(sim, simnet.LinkConfig{})
	curve := power.MemcachedMellanox
	curve.PeakKpps = 20 // tiny server for the test
	server := NewSoftServer(net, "host", curve)
	client := NewClient(net, "client", "host")
	client.KeyFunc = func() string { return "k" }
	client.Start(200) // 10x peak
	sim.RunFor(300 * time.Millisecond)
	client.Stop()
	if server.Counters.Get("dropped") == 0 {
		t.Error("overloaded server should shed load")
	}
	if server.Utilization() < 0.9 {
		t.Errorf("utilization = %v, want saturated", server.Utilization())
	}
}

func TestSoftServerErrorPaths(t *testing.T) {
	sim := simnet.New(3)
	net := simnet.NewNetwork(sim, simnet.LinkConfig{})
	server := NewSoftServer(net, "host", power.MemcachedMellanox)
	// Non-KVS port.
	server.Receive(&simnet.Packet{Dst: "host", DstPort: 53, Payload: []byte("x")})
	if server.Counters.Get("non_kvs") != 1 {
		t.Error("non-KVS packet not counted")
	}
	// Short frame.
	server.Receive(&simnet.Packet{Dst: "host", DstPort: MemcachedPort, Payload: []byte{1}})
	if server.Counters.Get("bad_frame") != 1 {
		t.Error("bad frame not counted")
	}
	// Unparsable request gets an ERROR reply.
	got := make(chan string, 1)
	net.Attach(&simnet.NodeFunc{Address: "c", Handler: func(p *simnet.Packet) {
		got <- string(p.Payload)
	}})
	server.Receive(&simnet.Packet{Src: "c", Dst: "host", SrcPort: 9, DstPort: MemcachedPort,
		Payload: clientDatagram(t, "bogus\r\n")})
	sim.RunFor(time.Millisecond)
	select {
	case s := <-got:
		if len(s) < 8 || string(s[8:]) != "ERROR\r\n" {
			t.Errorf("reply = %q, want ERROR", s)
		}
	default:
		t.Error("no ERROR reply sent")
	}
}

func TestLaKePowerStates(t *testing.T) {
	sim, _, lake, _ := rig(t)
	active := lake.PowerWatts(sim.Now())
	lake.Deactivate()
	parked := lake.PowerWatts(sim.Now())
	if parked >= active {
		t.Errorf("parked power %v W should be below active %v W", parked, active)
	}
	// §9.2: the parked card still costs a few watts more than a bare NIC
	// (7 W card base).
	if parked < 10 || parked > 16 {
		t.Errorf("parked power = %v W, want ~12-15", parked)
	}
}

func TestLaKeMultiGet(t *testing.T) {
	sim, _, lake, backend := rig(t)
	for _, k := range []string{"m1", "m2", "m3"} {
		backend.Store().Set(k, Entry{Value: []byte("v-" + k)})
	}
	got := make(chan string, 4)
	net := lake.net
	net.Attach(&simnet.NodeFunc{Address: "mc", Handler: func(p *simnet.Packet) {
		got <- string(p.Payload[8:])
	}})
	send := func() {
		lake.Receive(&simnet.Packet{Src: "mc", Dst: "lake", SrcPort: 9, DstPort: MemcachedPort,
			Payload: clientDatagram(t, "get m1 m2 missing m3\r\n")})
		sim.RunFor(10 * time.Millisecond)
	}
	// First round: all three keys miss the cache and come from software.
	send()
	var body string
	select {
	case body = <-got:
	default:
		t.Fatal("no reply")
	}
	resp, err := memcache.ParseResponse([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 3 {
		t.Fatalf("items = %d, want 3 (missing key omitted)", len(resp.Items))
	}
	if lake.Counters.Get("miss") != 4 { // m1 m2 m3 + "missing"
		t.Errorf("misses = %d, want 4", lake.Counters.Get("miss"))
	}
	// Second round: the three live keys now hit the cache; only
	// "missing" goes to software again.
	before := lake.Counters.Get("miss")
	send()
	<-got
	if hits := lake.Counters.Get("l1_hit"); hits != 3 {
		t.Errorf("l1 hits = %d, want 3", hits)
	}
	if lake.Counters.Get("miss") != before+1 {
		t.Errorf("second-round misses = %d, want +1", lake.Counters.Get("miss")-before)
	}
}

// clientDatagram wraps an ASCII request body in a UDP frame.
func clientDatagram(t *testing.T, body string) []byte {
	t.Helper()
	return append([]byte{0, 1, 0, 0, 0, 1, 0, 0}, body...)
}
