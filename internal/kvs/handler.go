package kvs

import (
	"net/netip"
	"sync/atomic"
	"time"

	"incod/internal/dataplane"
	"incod/internal/memcache"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// Handler serves the memcached UDP protocol from a ShardedStore — the
// dataplane adapter behind inckvsd. Framed datagrams (memcached UDP mode)
// and raw ASCII both work; the 8-byte frame header is all-binary so
// framing is ambiguous, and the framed interpretation wins when both
// parse. Expiry runs against a virtual clock started at construction,
// matching the simulator's relative-exptime semantics.
//
// The single-key GET, SET and DELETE paths — parse, shard lookup/mutate,
// encode — perform zero heap allocations per steady-state request: GETs
// encode under the shard lock (ShardedStore.AppendGetHit/AppendGetBatch)
// and SET overwrites reuse the entry's value buffer in place
// (Store.SetBytes); only a first-time insert allocates.
type Handler struct {
	store *ShardedStore
	epoch time.Time

	counters  *telemetry.AtomicCounters
	hits      *atomic.Uint64
	misses    *atomic.Uint64
	sets      *atomic.Uint64
	deletes   *atomic.Uint64
	multiget  *atomic.Uint64
	malformed *atomic.Uint64
}

var _ dataplane.Handler = (*Handler)(nil)
var _ dataplane.BatchHandler = (*Handler)(nil)
var _ dataplane.StatsReporter = (*Handler)(nil)

// NewHandler returns a handler serving store.
func NewHandler(store *ShardedStore) *Handler {
	c := telemetry.NewAtomicCounters()
	return &Handler{
		store:     store,
		epoch:     time.Now(),
		counters:  c,
		hits:      c.Handle("hits"),
		misses:    c.Handle("misses"),
		sets:      c.Handle("sets"),
		deletes:   c.Handle("deletes"),
		multiget:  c.Handle("multiget"),
		malformed: c.Handle("malformed"),
	}
}

// Store returns the handler's backing store.
func (h *Handler) Store() *ShardedStore { return h.store }

// Epoch returns the handler's virtual-clock origin. The NIC offload tier
// shares it so both substrates judge entry expiry identically.
func (h *Handler) Epoch() time.Time { return h.epoch }

// StatsCounters exposes protocol counters on the /v1 control API.
func (h *Handler) StatsCounters() *telemetry.AtomicCounters { return h.counters }

// HotKeys exposes the store's merged hot-key top-K on the /v1 control
// API (nil unless ShardedStore.EnableHotKeys was called).
func (h *Handler) HotKeys(max int) []telemetry.HotKey { return h.store.HotKeys(max) }

// parseRequest undoes optional UDP framing and parses the request line
// into v. ok=false means the datagram parses neither framed nor raw.
func parseRequest(in []byte, v *memcache.RequestView) (body []byte, framed bool, reqID uint16, ok bool) {
	if f, b, err := memcache.DecodeFrame(in); err == nil && memcache.ParseRequestView(b, v) == nil {
		return b, true, f.RequestID, true
	}
	if memcache.ParseRequestView(in, v) == nil {
		return in, false, 0, true
	}
	return nil, false, 0, false
}

// HandleDatagram implements dataplane.Handler.
func (h *Handler) HandleDatagram(in []byte, scratch *[]byte) ([]byte, bool) {
	now := simnet.Time(time.Since(h.epoch))
	var v memcache.RequestView
	body, framed, reqID, ok := parseRequest(in, &v)
	if !ok {
		h.malformed.Add(1)
		*scratch = memcache.AppendStatus((*scratch)[:0], memcache.StatusError)
		return *scratch, true
	}
	out := (*scratch)[:0]
	if framed {
		out = memcache.AppendFrame(out, memcache.Frame{RequestID: reqID, Total: 1})
	}
	if v.Op == memcache.OpGet && !v.MultiKey {
		if hit, ok := h.store.AppendGetHit(out, v.Key, now); ok {
			h.hits.Add(1)
			out = hit
		} else {
			h.misses.Add(1)
			out = memcache.AppendStatus(out, memcache.StatusEnd)
		}
	} else {
		out = h.applyOther(&v, body, now, out)
		if v.Noreply {
			// Mutation applied; the protocol's fire-and-forget marker
			// suppresses the acknowledgement.
			*scratch = out
			return nil, false
		}
	}
	*scratch = out
	return out, true
}

// applyOther serves everything but the single-key GET fast path,
// appending the reply to out.
func (h *Handler) applyOther(v *memcache.RequestView, body []byte, now simnet.Time, out []byte) []byte {
	switch {
	case v.Op == memcache.OpSet:
		h.sets.Add(1)
		var exp int64
		if v.Exptime > 0 {
			exp = int64(now.Add(time.Duration(v.Exptime) * time.Second))
		}
		// The view aliases the receive buffer; SetBytes copies the value
		// into the store (reusing the entry's buffer on overwrite), so a
		// steady-state SET allocates nothing.
		h.store.SetBytes(v.Key, Entry{Flags: v.Flags, Value: v.Value, Expires: exp})
		out = memcache.AppendStatus(out, memcache.StatusStored)
	case v.Op == memcache.OpDelete:
		h.deletes.Add(1)
		if h.store.DeleteBytes(v.Key) {
			out = memcache.AppendStatus(out, memcache.StatusDeleted)
		} else {
			out = memcache.AppendStatus(out, memcache.StatusNotFound)
		}
	default: // multi-key get: the general, allocating path
		h.multiget.Add(1)
		req, err := memcache.ParseRequest(body)
		if err != nil {
			out = memcache.AppendStatus(out, memcache.StatusError)
			break
		}
		resp := h.store.Apply(req, now)
		h.hits.Add(uint64(len(resp.Items)))
		h.misses.Add(uint64(len(req.AllKeys()) - len(resp.Items)))
		out = memcache.AppendResponse(out, resp)
	}
	return out
}

// HandleBatch implements dataplane.BatchHandler: the virtual clock is
// read once per chunk and every single-key GET in the chunk resolves
// through ShardedStore.AppendGetBatch, so each store shard's lock is
// taken once per chunk instead of once per request and every hit is
// encoded onto its reply buffer while that lock is held; hit/miss
// counters are bumped once per chunk too. Mutations apply in batch order
// during the classification pass, so a GET may observe a later mutation
// from the same batch early — indistinguishable from UDP reordering,
// which the protocol already tolerates. Neither the GET path nor the
// SET/DELETE path allocates.
func (h *Handler) HandleBatch(items []*dataplane.BatchItem) {
	for off := 0; off < len(items); off += getBatchChunk {
		h.handleChunk(items[off:min(off+getBatchChunk, len(items))])
	}
}

func (h *Handler) handleChunk(items []*dataplane.BatchItem) {
	now := simnet.Time(time.Since(h.epoch))
	var (
		getIdx [getBatchChunk]int
		keys   [getBatchChunk][]byte
		outs   [getBatchChunk]*[]byte
		found  [getBatchChunk]bool
	)
	nGets := 0
	for i, it := range items {
		var v memcache.RequestView
		body, fr, id, ok := parseRequest(it.In, &v)
		if !ok {
			h.malformed.Add(1)
			*it.Scratch = memcache.AppendStatus((*it.Scratch)[:0], memcache.StatusError)
			it.Out = *it.Scratch
			continue
		}
		out := (*it.Scratch)[:0]
		if fr {
			out = memcache.AppendFrame(out, memcache.Frame{RequestID: id, Total: 1})
		}
		if v.Op == memcache.OpGet && !v.MultiKey {
			// Seed the reply with its frame header now; AppendGetBatch
			// appends the hit lines under the shard lock.
			*it.Scratch = out
			getIdx[nGets] = i
			keys[nGets] = v.Key
			outs[nGets] = it.Scratch
			nGets++
			continue
		}
		out = h.applyOther(&v, body, now, out)
		*it.Scratch = out
		if v.Noreply {
			continue // mutation applied, no acknowledgement; it.Out stays empty
		}
		it.Out = out
	}
	if nGets == 0 {
		return
	}
	h.store.AppendGetBatch(keys[:nGets], now, outs[:nGets], found[:nGets])
	hits := 0
	for g := 0; g < nGets; g++ {
		it := items[getIdx[g]]
		if found[g] {
			hits++
		} else {
			*it.Scratch = memcache.AppendStatus(*it.Scratch, memcache.StatusEnd)
		}
		it.Out = *it.Scratch
	}
	h.hits.Add(uint64(hits))
	if misses := nGets - hits; misses > 0 {
		h.misses.Add(uint64(misses))
	}
}

// ShardByKey is the dataplane dispatch for memcached traffic: requests
// hash by their key, so one worker owns one key range (cache-friendly and
// contention-free), falling back to source hashing when no key can be
// peeked. Framing is disambiguated by looking for a command verb at both
// offsets, which keeps the mapping deterministic per datagram.
func ShardByKey(payload []byte, src netip.AddrPort) uint64 {
	if k := requestKey(payload); len(k) > 0 {
		return dataplane.HashBytes(k)
	}
	return dataplane.SourceHash(payload, src)
}

func requestKey(p []byte) []byte {
	if hasVerb(p) {
		return peekKey(p)
	}
	if len(p) > memcache.FrameHeaderSize && hasVerb(p[memcache.FrameHeaderSize:]) {
		return peekKey(p[memcache.FrameHeaderSize:])
	}
	return nil
}

func hasVerb(b []byte) bool {
	for _, verb := range [...]string{"get ", "gets ", "set ", "delete "} {
		if len(b) >= len(verb) && string(b[:len(verb)]) == verb {
			return true
		}
	}
	return false
}

// peekKey returns the second field of the first request line — the key
// position for get, set and delete alike.
func peekKey(b []byte) []byte {
	i := 0
	for i < len(b) && b[i] != ' ' && b[i] != '\r' {
		i++
	}
	for i < len(b) && b[i] == ' ' {
		i++
	}
	j := i
	for j < len(b) && b[j] != ' ' && b[j] != '\r' {
		j++
	}
	return b[i:j]
}
