package kvs

import (
	"testing"
	"time"

	"incod/internal/fpga"
	"incod/internal/power"
	"incod/internal/simnet"
)

func strategyRig(t *testing.T, s IdleStrategy) (*simnet.Simulator, *Client, *LaKe, *SoftServer) {
	t.Helper()
	sim := simnet.New(31)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	backend := NewSoftServer(net, "host", power.MemcachedMellanox)
	lake := NewLaKe(net, "lake", backend)
	lake.Strategy = s
	client := NewClient(net, "client", "lake")
	backend.Store().Set("k", Entry{Value: []byte("v")})
	client.KeyFunc = func() string { return "k" }
	return sim, client, lake, backend
}

// §9.2 ablation: idle power ordering partial-reconfig < park-reset <
// keep-warm, and keep-warm preserves the cache.
func TestIdleStrategyPowerOrdering(t *testing.T) {
	idle := func(s IdleStrategy) float64 {
		sim, _, lake, _ := strategyRig(t, s)
		lake.Deactivate()
		sim.RunFor(100 * time.Millisecond) // past any reconfig halt
		return lake.PowerWatts(sim.Now())
	}
	reconf := idle(PartialReconfig)
	park := idle(ParkReset)
	warm := idle(KeepWarm)
	if !(reconf < park && park < warm) {
		t.Errorf("idle power ordering wrong: reconfig %v, park %v, warm %v", reconf, park, warm)
	}
	// The reconfigured card is a plain NIC.
	if reconf != fpga.NICBaseCardWatts {
		t.Errorf("partial-reconfig idle = %v W, want %v (reference NIC)", reconf, fpga.NICBaseCardWatts)
	}
}

func TestKeepWarmPreservesCache(t *testing.T) {
	sim, client, lake, _ := strategyRig(t, KeepWarm)
	client.Start(20)
	sim.RunFor(50 * time.Millisecond) // warm the cache
	client.Stop()
	sim.RunFor(10 * time.Millisecond)
	if l1, _ := lake.CacheSizes(); l1 == 0 {
		t.Fatal("cache did not warm")
	}
	missesBefore := lake.Counters.Get("miss")

	lake.Deactivate()
	if l1, _ := lake.CacheSizes(); l1 == 0 {
		t.Fatal("KeepWarm must retain cached state")
	}
	lake.Activate()
	client.Start(20)
	sim.RunFor(50 * time.Millisecond)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)
	if got := lake.Counters.Get("miss"); got != missesBefore {
		t.Errorf("misses after keep-warm reactivation = %d, want unchanged %d", got, missesBefore)
	}
}

func TestPartialReconfigHaltsTraffic(t *testing.T) {
	sim, client, lake, _ := strategyRig(t, PartialReconfig)
	client.Start(50)
	sim.RunFor(50 * time.Millisecond)
	lake.Deactivate() // reprogram to NIC: halt starts
	if !lake.Reconfiguring() {
		t.Fatal("reconfiguration halt should be in progress")
	}
	sim.RunFor(ReconfigHalt / 2)
	if lake.Counters.Get("reconfig_dropped") == 0 {
		t.Error("traffic during the halt must be dropped")
	}
	sim.RunFor(ReconfigHalt)
	if lake.Reconfiguring() {
		t.Error("halt should have ended")
	}
	// Software now serves through the NIC bitstream.
	before := client.Counters.Get("recv")
	sim.RunFor(50 * time.Millisecond)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)
	if client.Counters.Get("recv") == before {
		t.Error("no service after reconfiguration completed")
	}
	if lake.Board().Config().Name != fpga.ReferenceNIC.Name {
		t.Errorf("board runs %q, want reference NIC", lake.Board().Config().Name)
	}
}

func TestPartialReconfigReactivation(t *testing.T) {
	sim, client, lake, _ := strategyRig(t, PartialReconfig)
	lake.Deactivate()
	sim.RunFor(100 * time.Millisecond)
	lake.Activate()
	if lake.Board().Config().Name != fpga.LaKeDesign.Name {
		t.Fatal("Activate should reload the LaKe bitstream")
	}
	if !lake.Reconfiguring() {
		t.Fatal("reactivation also halts traffic")
	}
	sim.RunFor(100 * time.Millisecond)
	client.Start(20)
	sim.RunFor(50 * time.Millisecond)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)
	if lake.HitRatio() == 0 {
		t.Error("cache should warm after reconfigured activation")
	}
}

func TestStrategyString(t *testing.T) {
	if ParkReset.String() != "park-reset" || KeepWarm.String() != "keep-warm" ||
		PartialReconfig.String() != "partial-reconfig" {
		t.Error("IdleStrategy names wrong")
	}
}

// Activate on an already-active PartialReconfig card must not halt again.
func TestActivateIdempotentNoHalt(t *testing.T) {
	sim, _, lake, _ := strategyRig(t, PartialReconfig)
	lake.Activate() // already running the LaKe bitstream
	if lake.Reconfiguring() {
		t.Error("activating an already-loaded design must not halt traffic")
	}
	_ = sim
}
