package kvs

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"incod/internal/memcache"
	"incod/internal/simnet"
)

// TestSeqlockTortureSetDeleteVsGet is the -race torture test for the
// lock-free read path: writers churn versioned values (changing length,
// flags and bytes together) and delete/reinsert keys while readers
// hammer Get and AppendGetHit. A reader must never observe a torn
// value — flags carry the version and every value byte must match it —
// and the final state must reflect each key's last write exactly.
func TestSeqlockTortureSetDeleteVsGet(t *testing.T) {
	const (
		writers    = 2
		readers    = 4
		keysPerW   = 32
		writerIter = 15000
	)
	st := NewShardedStore(4, 0)
	key := func(w, i int) string { return fmt.Sprintf("torture-%d-%02d", w, i) }
	valFor := func(version uint32) []byte {
		n := 3 + int(version%6)*8 // crosses word-count boundaries
		v := make([]byte, n)
		for i := range v {
			v[i] = byte(version)
		}
		return v
	}

	var stop atomic.Bool
	var torn atomic.Int64
	var readerWg sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func(r int) {
			defer readerWg.Done()
			scratch := make([]byte, 0, 4096)
			var kb []byte
			for n := 0; !stop.Load(); n++ {
				kb = append(kb[:0], key(n%writers, n%keysPerW)...)
				if r%2 == 0 {
					e, ok := st.Get(kb, 0)
					if !ok {
						continue
					}
					want := byte(e.Flags)
					for _, b := range e.Value {
						if b != want {
							torn.Add(1)
							return
						}
					}
					if len(e.Value) != len(valFor(e.Flags)) {
						torn.Add(1)
						return
					}
				} else {
					out, ok := st.AppendGetHit(scratch[:0], kb, 0)
					if !ok {
						continue
					}
					if !bytes.HasPrefix(out, []byte("VALUE ")) || !bytes.HasSuffix(out, []byte("\r\nEND\r\n")) {
						torn.Add(1)
						return
					}
				}
			}
		}(r)
	}

	finalVersion := make([]uint32, writers*keysPerW)
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for it := 0; it < writerIter; it++ {
				i := rng.Intn(keysPerW)
				version := uint32(it + 1)
				k := key(w, i)
				if rng.Intn(8) == 0 {
					st.Delete(k)
					finalVersion[w*keysPerW+i] = 0
					continue
				}
				st.Set(k, Entry{Flags: version, Value: valFor(version)})
				finalVersion[w*keysPerW+i] = version
			}
		}(w)
	}

	writerWg.Wait()
	stop.Store(true)
	readerWg.Wait()

	if n := torn.Load(); n != 0 {
		t.Fatalf("readers observed %d torn values", n)
	}
	// No update lost: every key holds exactly its last written version.
	for w := 0; w < writers; w++ {
		for i := 0; i < keysPerW; i++ {
			want := finalVersion[w*keysPerW+i]
			e, ok := st.GetString(key(w, i), 0)
			if want == 0 {
				if ok {
					t.Fatalf("key %s: deleted but still present", key(w, i))
				}
				continue
			}
			if !ok {
				t.Fatalf("key %s: lost final update v%d", key(w, i), want)
			}
			if e.Flags != want || !bytes.Equal(e.Value, valFor(want)) {
				t.Fatalf("key %s: final state v%d, want v%d", key(w, i), e.Flags, want)
			}
		}
	}
}

// TestClockSecondChanceEviction pins down the CLOCK policy: touched
// entries survive the sweep that evicts an untouched one.
func TestClockSecondChanceEviction(t *testing.T) {
	st := NewShardedStore(1, 8)
	for i := 0; i < 8; i++ {
		st.Set(fmt.Sprintf("k%d", i), Entry{Value: []byte("v")})
	}
	// Touch k0..k3: their reference bits protect them.
	for i := 0; i < 4; i++ {
		if _, ok := st.GetString(fmt.Sprintf("k%d", i), 0); !ok {
			t.Fatalf("k%d missing before eviction", i)
		}
	}
	st.Set("k8", Entry{Value: []byte("v")})
	for i := 0; i < 4; i++ {
		if _, ok := st.GetString(fmt.Sprintf("k%d", i), 0); !ok {
			t.Fatalf("k%d was evicted despite its reference bit", i)
		}
	}
	if _, ok := st.GetString("k8", 0); !ok {
		t.Fatal("k8 missing after insert")
	}
	survivors := 0
	for i := 4; i < 8; i++ {
		if _, ok := st.GetString(fmt.Sprintf("k%d", i), 0); ok {
			survivors++
		}
	}
	if survivors != 3 {
		t.Fatalf("%d of k4..k7 survived, want exactly 3 (one CLOCK eviction)", survivors)
	}
	if st.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Stats().Evictions)
	}
}

// TestLockFreeMatchesMutexStore replays one deterministic request
// sequence against the plain mutex/LRU Store (the oracle) and the
// lock-free ShardedStore, comparing every encoded response byte for
// byte — the PR 5 equivalence harness applied across implementations.
func TestLockFreeMatchesMutexStore(t *testing.T) {
	oracle := NewStore()
	st := NewShardedStore(4, 0)
	rng := rand.New(rand.NewSource(9))
	key := func(i int) string { return fmt.Sprintf("eq-%02d", i) }
	for op := 0; op < 5000; op++ {
		var req memcache.Request
		switch rng.Intn(5) {
		case 0, 1:
			req = memcache.Request{Op: memcache.OpSet, Key: key(rng.Intn(40)),
				Flags: uint32(op), Value: fmt.Appendf(nil, "val-%d-%d", op, rng.Intn(1000))}
		case 2:
			req = memcache.Request{Op: memcache.OpDelete, Key: key(rng.Intn(40))}
		case 3:
			req = memcache.Request{Op: memcache.OpGet, Key: key(rng.Intn(40))}
		default:
			req = memcache.Request{Op: memcache.OpGet, Key: key(rng.Intn(40)),
				Extra: []string{key(rng.Intn(40)), key(rng.Intn(40))}}
		}
		now := simnet.Time(op)
		want := memcache.AppendResponse(nil, oracle.Apply(req, now))
		got := memcache.AppendResponse(nil, st.Apply(req, now))
		if !bytes.Equal(want, got) {
			t.Fatalf("op %d (%+v): lock-free response %q != mutex store %q", op, req, got, want)
		}
	}
}

// TestAppendGetHitZeroAllocZeroLocks is the acceptance check for the
// tentpole: the GET hit path allocates nothing and acquires no mutex
// (the mutex profile stays empty of read-path frames even under
// concurrent readers).
func TestAppendGetHitZeroAllocZeroLocks(t *testing.T) {
	st := NewShardedStore(4, 0)
	st.Set("hot-key", Entry{Flags: 7, Value: []byte("hot-value")})
	kb := []byte("hot-key")
	out := make([]byte, 0, 256)

	if n := testing.AllocsPerRun(200, func() {
		var ok bool
		out, ok = st.AppendGetHit(out[:0], kb, 0)
		if !ok {
			t.Fatal("miss on hot key")
		}
	}); n != 0 {
		t.Fatalf("AppendGetHit allocates %.1f per hit, want 0", n)
	}

	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 0, 256)
			k := []byte("hot-key")
			for i := 0; i < 20000; i++ {
				buf, _ = st.AppendGetHit(buf[:0], k, 0)
			}
		}()
	}
	wg.Wait()
	var prof bytes.Buffer
	if err := pprof.Lookup("mutex").WriteTo(&prof, 1); err != nil {
		t.Fatalf("mutex profile: %v", err)
	}
	for _, frame := range []string{"AppendGetHit", "partition).read"} {
		if strings.Contains(prof.String(), frame) {
			t.Fatalf("mutex profile contains read-path frame %q:\n%s", frame, prof.String())
		}
	}
}

// TestHotKeySampler checks the GET-path top-K feed end to end: the
// skewed key dominates the merged snapshot and disabled stores report
// nil.
func TestHotKeySampler(t *testing.T) {
	st := NewShardedStore(2, 0)
	if hk := st.HotKeys(4); hk != nil {
		t.Fatalf("HotKeys without EnableHotKeys = %v, want nil", hk)
	}
	st.EnableHotKeys(4)
	cold := make([]string, 8)
	for i := range cold {
		cold[i] = fmt.Sprintf("cold-%d", i)
		st.Set(cold[i], Entry{Value: []byte("c")})
	}
	st.Set("hot", Entry{Value: []byte("h")})
	for cycle := 0; cycle < 1000; cycle++ {
		for j := 0; j < 8; j++ {
			if _, ok := st.GetString("hot", 0); !ok {
				t.Fatal("hot key missing")
			}
		}
		st.GetString(cold[cycle%8], 0)
	}
	hk := st.HotKeys(3)
	if len(hk) == 0 {
		t.Fatal("HotKeys returned nothing after 9000 sampled hits")
	}
	if hk[0].Key != "hot" {
		t.Fatalf("hottest key = %q (count %d), want \"hot\"; full: %v", hk[0].Key, hk[0].Count, hk)
	}
	if len(hk) > 3 {
		t.Fatalf("HotKeys(3) returned %d entries", len(hk))
	}
}

// TestShardedStoreRehashUnderReaders grows a partition through several
// table generations while readers probe it, exercising the
// poison-old-generation path.
func TestShardedStoreRehashUnderReaders(t *testing.T) {
	st := NewShardedStore(1, 0)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var kb []byte
			for n := 0; !stop.Load(); n++ {
				kb = append(kb[:0], fmt.Sprintf("grow-%04d", n%2000)...)
				if e, ok := st.Get(kb, 0); ok && !bytes.Equal(e.Value, kb) {
					t.Errorf("key %s: got value %q", kb, e.Value)
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ { // grows 64 -> 4096 slots: several generations
		k := fmt.Sprintf("grow-%04d", i)
		st.Set(k, Entry{Value: []byte(k)})
	}
	stop.Store(true)
	wg.Wait()
	if st.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", st.Len())
	}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("grow-%04d", i)
		if e, ok := st.GetString(k, 0); !ok || string(e.Value) != k {
			t.Fatalf("key %s lost across rehashes (ok=%v val=%q)", k, ok, e.Value)
		}
	}
}
