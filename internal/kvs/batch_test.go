package kvs

import (
	"fmt"
	"testing"

	"incod/internal/dataplane"
	"incod/internal/memcache"
)

func TestGetBatchMatchesGet(t *testing.T) {
	st := NewShardedStore(4, 0)
	const live = 100 // spans two GetBatch chunks
	for i := 0; i < live; i++ {
		st.Set(fmt.Sprintf("key-%d", i), Entry{Flags: uint32(i), Value: fmt.Appendf(nil, "v%d", i)})
	}
	// Interleave hits and misses.
	var keys [][]byte
	for i := 0; i < live*2; i++ {
		keys = append(keys, fmt.Appendf(nil, "key-%d", i))
	}
	entries := make([]Entry, len(keys))
	found := make([]bool, len(keys))
	st.GetBatch(keys, 0, entries, found)
	for i, k := range keys {
		wantE, wantOK := st.Get(k, 0)
		if found[i] != wantOK {
			t.Fatalf("key %s: GetBatch found=%v, Get ok=%v", k, found[i], wantOK)
		}
		if wantOK && (entries[i].Flags != wantE.Flags || string(entries[i].Value) != string(wantE.Value)) {
			t.Fatalf("key %s: GetBatch entry %+v != Get entry %+v", k, entries[i], wantE)
		}
	}
}

// mkItems builds BatchItems with independent scratch buffers for the
// given datagrams.
func mkItems(datagrams [][]byte) []*dataplane.BatchItem {
	items := make([]*dataplane.BatchItem, len(datagrams))
	for i, dg := range datagrams {
		scratch := make([]byte, 0, 1024)
		items[i] = &dataplane.BatchItem{In: dg, Scratch: &scratch}
	}
	return items
}

func TestHandleBatchMatchesHandleDatagram(t *testing.T) {
	// Two handlers over identically seeded stores: one serves the
	// datagrams one at a time, the other as one batch. Replies must
	// match byte for byte, including framing, errors and mutations.
	seed := func() *Handler {
		h := NewHandler(NewShardedStore(4, 0))
		scratch := make([]byte, 0, 1024)
		for i := 0; i < 80; i++ {
			set := memcache.EncodeRequest(memcache.Request{
				Op: memcache.OpSet, Key: fmt.Sprintf("key-%d", i), Value: fmt.Appendf(nil, "val-%d", i)})
			if _, ok := h.HandleDatagram(set, &scratch); !ok {
				t.Fatal("seed set failed")
			}
		}
		return h
	}
	frame := func(id uint16, body []byte) []byte {
		return memcache.EncodeFrame(memcache.Frame{RequestID: id, Total: 1}, body)
	}
	var datagrams [][]byte
	for i := 0; i < 70; i++ { // spans two chunks
		datagrams = append(datagrams,
			frame(uint16(i), memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: fmt.Sprintf("key-%d", i)})))
	}
	datagrams = append(datagrams,
		[]byte("get key-3\r\n"),               // raw hit
		[]byte("get nope\r\n"),                // raw miss
		frame(900, []byte("get missing\r\n")), // framed miss
		frame(901, memcache.EncodeRequest(memcache.Request{Op: memcache.OpSet, Key: "fresh", Value: []byte("x")})),
		frame(902, []byte("delete key-5\r\n")),
		frame(903, []byte("delete never\r\n")),
		[]byte("gets key-1 key-2 nope\r\n"), // multiget
		[]byte("\x00\x01garbage"),           // malformed
	)

	single := seed()
	batch := seed()

	var want [][]byte
	scratch := make([]byte, 0, 1024)
	for _, dg := range datagrams {
		out, ok := single.HandleDatagram(dg, &scratch)
		if !ok {
			t.Fatalf("HandleDatagram(%q) not ok", dg)
		}
		want = append(want, append([]byte(nil), out...))
	}

	items := mkItems(datagrams)
	batch.HandleBatch(items)
	for i, it := range items {
		if string(it.Out) != string(want[i]) {
			t.Fatalf("datagram %d (%q):\n batch reply %q\nsingle reply %q", i, datagrams[i], it.Out, want[i])
		}
	}

	// The amortized counters must agree with the per-datagram ones.
	sc := single.StatsCounters().Snapshot()
	bc := batch.StatsCounters().Snapshot()
	for _, k := range []string{"hits", "misses", "sets", "deletes", "multiget", "malformed"} {
		if sc[k] != bc[k] {
			t.Fatalf("counter %s: batch %d != single %d", k, bc[k], sc[k])
		}
	}

	// Both stores end in the same state.
	if got, want := batch.Store().Len(), single.Store().Len(); got != want {
		t.Fatalf("store length diverged: batch %d, single %d", got, want)
	}
}

// TestNoreplySuppressesAcknowledgement checks both serving paths: a
// noreply mutation applies to the store but produces no reply datagram.
func TestNoreplySuppressesAcknowledgement(t *testing.T) {
	h := NewHandler(NewShardedStore(2, 0))

	scratch := make([]byte, 0, 1024)
	if out, ok := h.HandleDatagram([]byte("set a 7 0 2 noreply\r\nhi\r\n"), &scratch); ok || out != nil {
		t.Fatalf("noreply set replied (%q, %v)", out, ok)
	}
	if e, ok := h.Store().Get([]byte("a"), 0); !ok || string(e.Value) != "hi" || e.Flags != 7 {
		t.Fatalf("noreply set not applied: %+v, %v", e, ok)
	}
	if out, ok := h.HandleDatagram([]byte("delete a noreply\r\n"), &scratch); ok || out != nil {
		t.Fatalf("noreply delete replied (%q, %v)", out, ok)
	}
	if _, ok := h.Store().Get([]byte("a"), 0); ok {
		t.Fatal("noreply delete not applied")
	}

	items := mkItems([][]byte{
		[]byte("set b 0 0 2 noreply\r\nyo\r\n"),
		[]byte("get b\r\n"),
	})
	h.HandleBatch(items)
	if items[0].Out != nil {
		t.Fatalf("batch noreply set replied: %q", items[0].Out)
	}
	if string(items[1].Out) != "VALUE b 0 2\r\nyo\r\nEND\r\n" {
		t.Fatalf("in-batch get after noreply set: %q", items[1].Out)
	}

	items = mkItems([][]byte{[]byte("delete b noreply\r\n")})
	h.HandleBatch(items)
	if items[0].Out != nil {
		t.Fatalf("batch noreply delete replied: %q", items[0].Out)
	}
	if _, ok := h.Store().Get([]byte("b"), 0); ok {
		t.Fatal("batch noreply delete not applied")
	}
}

// TestHandleBatchMutationThenGet pins the documented in-batch ordering:
// a SET classified in pass one is visible to a GET of the same key
// resolved in pass two, regardless of their order in the batch.
func TestHandleBatchMutationThenGet(t *testing.T) {
	h := NewHandler(NewShardedStore(2, 0))
	items := mkItems([][]byte{
		[]byte("get k\r\n"),
		[]byte("set k 7 0 2\r\nhi\r\n"),
	})
	h.HandleBatch(items)
	if string(items[1].Out) != "STORED\r\n" {
		t.Fatalf("set reply %q", items[1].Out)
	}
	if string(items[0].Out) == "END\r\n" {
		t.Fatalf("GET resolved before the batch's SET; documented semantics say it observes it")
	}
}
