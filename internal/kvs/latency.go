package kvs

import (
	"math/rand"
	"time"
)

// Latency models calibrated to §5.3:
//
//   - on-chip (BRAM) hits take "no more than 1.4µs";
//   - DRAM (L2) hits: 1.67µs median, 1.9µs p99 at 100 Kqps, p99 up to
//     3µs at 10 Mqps;
//   - a miss in the hardware (served by host software) is ~x10 longer:
//     13.5µs median, 14.3µs p99.

// expJitter returns an exponential jitter with the given mean.
func expJitter(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// l1Latency is the end-to-end latency of an on-chip cache hit.
func l1Latency(rng *rand.Rand) time.Duration {
	d := 1300*time.Nanosecond + expJitter(rng, 30*time.Nanosecond)
	if d > 1400*time.Nanosecond {
		d = 1400 * time.Nanosecond
	}
	return d
}

// l2Latency is the end-to-end latency of a DRAM hit at the given
// utilization of the hardware pipeline (0..1).
func l2Latency(rng *rand.Rand, util float64) time.Duration {
	d := 1600*time.Nanosecond + expJitter(rng, 65*time.Nanosecond)
	if util > 0 {
		d += time.Duration(util * float64(expJitter(rng, 250*time.Nanosecond)))
	}
	return d
}

// softLatency is the host software service latency at the given software
// utilization (0..1): tight distribution around 13.5µs that stretches as
// the server saturates.
func softLatency(rng *rand.Rand, util float64) time.Duration {
	d := 13300*time.Nanosecond + expJitter(rng, 200*time.Nanosecond)
	if util > 0.5 {
		// Queueing growth toward saturation, capped to keep the
		// simulation stable at offered loads beyond peak.
		q := util
		if q > 0.99 {
			q = 0.99
		}
		d += time.Duration(float64(4*time.Microsecond) * (q - 0.5) / (1 - q))
	}
	return d
}

// nicPassthrough is the card's store-and-forward cost when the module is
// inactive and the board acts as a plain NIC.
const nicPassthrough = 600 * time.Nanosecond
