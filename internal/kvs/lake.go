package kvs

import (
	"time"

	"incod/internal/fpga"
	"incod/internal/memcache"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// LaKe is the layered hardware key-value cache of §3.1: a NetFPGA SUME
// card that is simultaneously the host's NIC. Its packet classifier sends
// memcached traffic through the two cache layers (L1 in on-chip BRAM, L2
// in board DRAM) and everything else to the host unchanged. Queries that
// miss both layers are serviced by the host software (the SoftServer
// backend), which also remains the store of record for writes.
type LaKe struct {
	addr    simnet.Addr
	sim     *simnet.Simulator
	net     *simnet.Network
	board   *fpga.Board
	backend *SoftServer

	l1 *Cache
	l2 *Cache

	// Strategy selects the §9.2 idle behaviour used by Deactivate.
	Strategy IdleStrategy
	// serving reports whether the KVS module handles memcached traffic
	// (false while parked, whatever the strategy).
	serving bool
	// reconfUntil is the end of a partial-reconfiguration traffic halt.
	reconfUntil simnet.Time

	rate *telemetry.RateMeter

	// HitLatency covers L1+L2 hits; MissLatency the software path.
	HitLatency  *telemetry.Histogram
	MissLatency *telemetry.Histogram
	Counters    *telemetry.Counters
}

// L2DefaultCapacity bounds the simulated DRAM cache. The real board holds
// 33M value entries (fpga.DRAMValueEntries); experiments use a smaller
// default to stay memory-friendly while preserving hit/miss structure.
const L2DefaultCapacity = 1 << 20

// IdleStrategy selects how LaKe parks while the service runs in software.
// §9.2 weighs three options and the paper picks ParkReset; the others are
// implemented for the ablation study.
type IdleStrategy int

// Idle strategies from §9.2.
const (
	// ParkReset keeps LaKe programmed but inactive: memories in reset
	// (cached state lost), module clocks gated. The paper's choice —
	// "the best of both performance and power efficiency worlds".
	ParkReset IdleStrategy = iota
	// KeepWarm keeps the memories powered and the caches intact, for an
	// instant shift at the cost of reduced power saving.
	KeepWarm
	// PartialReconfig reprograms the board to the plain reference NIC,
	// maximizing the saving but causing "a momentary traffic halt" when
	// shifting back.
	PartialReconfig
)

// String names the strategy.
func (s IdleStrategy) String() string {
	switch s {
	case KeepWarm:
		return "keep-warm"
	case PartialReconfig:
		return "partial-reconfig"
	}
	return "park-reset"
}

// ReconfigHalt is how long partial reconfiguration stops all traffic
// through the card (tens of milliseconds on a Virtex-7 class device).
const ReconfigHalt = 40 * time.Millisecond

// NewLaKe programs a board with the LaKe design, attaches it at addr and
// wires misses to backend. The module starts active with warm-empty
// caches.
func NewLaKe(net *simnet.Network, addr simnet.Addr, backend *SoftServer) *LaKe {
	l := &LaKe{
		addr:        addr,
		sim:         net.Sim(),
		net:         net,
		board:       fpga.NewBoard(fpga.LaKeDesign),
		backend:     backend,
		serving:     true,
		l1:          NewCache(fpga.OnChipValueEntries),
		l2:          NewCache(L2DefaultCapacity),
		rate:        telemetry.NewRateMeter(10*time.Millisecond, 100),
		HitLatency:  telemetry.NewHistogram(),
		MissLatency: telemetry.NewHistogram(),
		Counters:    telemetry.NewCounters(),
	}
	l.board.SetLoadFunc(func() float64 {
		peak := l.board.PeakKpps()
		if peak <= 0 {
			return 0
		}
		return l.RateKpps() / peak
	})
	net.Attach(l)
	return l
}

// Addr implements simnet.Node.
func (l *LaKe) Addr() simnet.Addr { return l.addr }

// Board exposes the underlying FPGA board (gating, PEs, power state).
func (l *LaKe) Board() *fpga.Board { return l.board }

// Backend returns the host software behind the card.
func (l *LaKe) Backend() *SoftServer { return l.backend }

// RateKpps is the memcached query rate observed by the classifier.
func (l *LaKe) RateKpps() float64 { return l.rate.Rate(l.sim.Now()) / 1000 }

// PowerWatts implements telemetry.PowerSource: the card's in-server power
// increment. Compose with the backend server via telemetry.SumPower for
// the §4.2 combined measurement.
func (l *LaKe) PowerWatts(now simnet.Time) float64 { return l.board.PowerWatts(now) }

// Active reports whether the KVS module is serving (vs plain NIC mode).
func (l *LaKe) Active() bool { return l.serving }

// Reconfiguring reports whether a partial-reconfiguration traffic halt is
// in progress.
func (l *LaKe) Reconfiguring() bool { return l.sim.Now() < l.reconfUntil }

// Activate brings the module back to service according to the idle
// strategy it was parked with: ParkReset releases reset/gating with cold
// caches (queries keep flowing to the software until the caches warm);
// KeepWarm resumes instantly with warm caches; PartialReconfig reloads
// the LaKe bitstream, halting ALL traffic through the card for
// ReconfigHalt (§9.2's "momentary traffic halt").
func (l *LaKe) Activate() {
	switch l.Strategy {
	case PartialReconfig:
		if l.board.Config().Name != fpga.LaKeDesign.Name {
			l.board.Reprogram(fpga.LaKeDesign)
			l.reconfUntil = l.sim.Now().Add(ReconfigHalt)
		}
	default:
		l.board.SetMemoryReset(false)
		l.board.SetClockGating(false)
		l.board.SetModuleActive(true)
	}
	l.serving = true
}

// Deactivate parks the module per the configured strategy. The paper's
// default (ParkReset) holds memories in reset — losing cached state — and
// gates the clocks; the card keeps forwarding as a NIC.
func (l *LaKe) Deactivate() {
	l.serving = false
	switch l.Strategy {
	case KeepWarm:
		// Memories stay powered, caches stay warm; only the module's
		// dynamic activity stops.
		l.board.SetModuleActive(false)
	case PartialReconfig:
		// Reload the plain NIC bitstream: maximum saving, cold restart.
		l.board.Reprogram(fpga.ReferenceNIC)
		l.reconfUntil = l.sim.Now().Add(ReconfigHalt)
		l.l1.Flush()
		l.l2.Flush()
	default: // ParkReset
		l.board.SetModuleActive(false)
		l.board.SetMemoryReset(true)
		l.board.SetClockGating(true)
		l.l1.Flush()
		l.l2.Flush()
	}
}

// CacheSizes returns the current L1 and L2 entry counts.
func (l *LaKe) CacheSizes() (l1, l2 int) { return l.l1.Len(), l.l2.Len() }

// HitRatio returns the fraction of classified queries served from either
// cache layer.
func (l *LaKe) HitRatio() float64 {
	hits := l.Counters.Get("l1_hit") + l.Counters.Get("l2_hit")
	total := hits + l.Counters.Get("miss")
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// utilization of the hardware pipeline.
func (l *LaKe) utilization() float64 {
	peak := l.board.PeakKpps()
	if peak <= 0 {
		return 0
	}
	u := l.RateKpps() / peak
	if u > 1 {
		u = 1
	}
	return u
}

// Receive implements simnet.Node: classify, serve or forward.
func (l *LaKe) Receive(pkt *simnet.Packet) {
	if l.Reconfiguring() {
		// Partial reconfiguration halts the whole card (§9.2).
		l.Counters.Inc("reconfig_dropped", 1)
		return
	}
	if pkt.DstPort != MemcachedPort {
		// Normal traffic: the card is a NIC; hand it to the host.
		l.Counters.Inc("passthrough", 1)
		l.sim.Schedule(nicPassthrough, func() { l.backend.Receive(pkt) })
		return
	}
	l.rate.Add(l.sim.Now(), 1)
	if !l.serving {
		// Module parked: memcached traffic goes to the software too.
		l.Counters.Inc("to_software", 1)
		l.sim.Schedule(nicPassthrough, func() { l.backend.Receive(pkt) })
		return
	}
	frame, body, err := memcache.DecodeFrame(pkt.Payload)
	if err != nil {
		l.Counters.Inc("bad_frame", 1)
		return
	}
	req, err := memcache.ParseRequest(body)
	if err != nil {
		l.Counters.Inc("bad_request", 1)
		l.reply(pkt, frame, memcache.Response{Status: memcache.StatusError}, l2Latency(l.sim.Rand(), l.utilization()))
		return
	}
	switch req.Op {
	case memcache.OpGet:
		l.serveGet(pkt, frame, req)
	case memcache.OpSet:
		l.serveSet(pkt, frame, req)
	case memcache.OpDelete:
		l.serveDelete(pkt, frame, req)
	}
}

func (l *LaKe) serveGet(pkt *simnet.Packet, frame memcache.Frame, req memcache.Request) {
	if len(req.Extra) > 0 {
		l.serveMultiGet(pkt, frame, req)
		return
	}
	if e, ok := l.l1.Get(req.Key); ok {
		l.Counters.Inc("l1_hit", 1)
		lat := l1Latency(l.sim.Rand())
		l.HitLatency.Observe(lat)
		l.reply(pkt, frame, memcache.Response{Key: req.Key, Flags: e.Flags, Value: e.Value, Hit: true}, lat)
		return
	}
	if e, ok := l.l2.Get(req.Key); ok {
		l.Counters.Inc("l2_hit", 1)
		lat := l2Latency(l.sim.Rand(), l.utilization())
		l.HitLatency.Observe(lat)
		l.l1.Put(req.Key, e)
		l.reply(pkt, frame, memcache.Response{Key: req.Key, Flags: e.Flags, Value: e.Value, Hit: true}, lat)
		return
	}
	// Miss at both layers: the host software services the request
	// (§3.1: "a query is only forwarded to software if there are misses
	// at both layers") and the caches warm from the response.
	l.Counters.Inc("miss", 1)
	resp, backendLat := l.backend.Process(req)
	lat := backendLat + 300*time.Nanosecond // PCIe round trip on top
	l.MissLatency.Observe(lat)
	if resp.Hit {
		e := Entry{Flags: resp.Flags, Value: resp.Value}
		l.l2.Put(req.Key, e)
		l.l1.Put(req.Key, e)
	}
	l.reply(pkt, frame, resp, lat)
}

// serveMultiGet handles batched gets: every key is looked up in the cache
// layers; the subset that misses both layers goes to the host software in
// one request, and the reply carries every found item. Latency is the
// slowest constituent path.
func (l *LaKe) serveMultiGet(pkt *simnet.Packet, frame memcache.Frame, req memcache.Request) {
	var items []memcache.Item
	var misses []string
	lat := time.Duration(0)
	for _, k := range req.AllKeys() {
		if e, ok := l.l1.Get(k); ok {
			l.Counters.Inc("l1_hit", 1)
			items = append(items, memcache.Item{Key: k, Flags: e.Flags, Value: e.Value})
			lat = maxDuration(lat, l1Latency(l.sim.Rand()))
			continue
		}
		if e, ok := l.l2.Get(k); ok {
			l.Counters.Inc("l2_hit", 1)
			l.l1.Put(k, e)
			items = append(items, memcache.Item{Key: k, Flags: e.Flags, Value: e.Value})
			lat = maxDuration(lat, l2Latency(l.sim.Rand(), l.utilization()))
			continue
		}
		l.Counters.Inc("miss", 1)
		misses = append(misses, k)
	}
	if len(misses) > 0 {
		sub := memcache.Request{Op: memcache.OpGet, Key: misses[0], Extra: misses[1:]}
		resp, backendLat := l.backend.Process(sub)
		lat = maxDuration(lat, backendLat+300*time.Nanosecond)
		l.MissLatency.Observe(backendLat + 300*time.Nanosecond)
		for _, it := range resp.Items {
			e := Entry{Flags: it.Flags, Value: it.Value}
			l.l2.Put(it.Key, e)
			l.l1.Put(it.Key, e)
			items = append(items, it)
		}
	} else if lat > 0 {
		l.HitLatency.Observe(lat)
	}
	resp := memcache.Response{Status: memcache.StatusEnd}
	if len(items) > 0 {
		resp = memcache.Response{
			Status: memcache.StatusEnd,
			Key:    items[0].Key, Flags: items[0].Flags, Value: items[0].Value,
			Items: items, Hit: true,
		}
	}
	l.reply(pkt, frame, resp, lat)
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func (l *LaKe) serveSet(pkt *simnet.Packet, frame memcache.Frame, req memcache.Request) {
	l.Counters.Inc("set", 1)
	e := Entry{Flags: req.Flags, Value: req.Value}
	l.l2.Put(req.Key, e)
	l.l1.Put(req.Key, e)
	// Write-through: the host store stays authoritative.
	l.backend.Process(req)
	lat := l2Latency(l.sim.Rand(), l.utilization())
	l.reply(pkt, frame, memcache.Response{Status: memcache.StatusStored}, lat)
}

func (l *LaKe) serveDelete(pkt *simnet.Packet, frame memcache.Frame, req memcache.Request) {
	l.Counters.Inc("delete", 1)
	l.l1.Delete(req.Key)
	l.l2.Delete(req.Key)
	resp, backendLat := l.backend.Process(req)
	l.reply(pkt, frame, resp, backendLat+300*time.Nanosecond)
}

func (l *LaKe) reply(pkt *simnet.Packet, frame memcache.Frame, resp memcache.Response, after time.Duration) {
	src, srcPort := pkt.Src, pkt.SrcPort
	l.sim.Schedule(after, func() {
		l.net.Send(&simnet.Packet{
			Src:     l.addr,
			Dst:     src,
			SrcPort: MemcachedPort,
			DstPort: srcPort,
			Payload: memcache.EncodeFrame(memcache.Frame{RequestID: frame.RequestID, Total: 1}, memcache.EncodeResponse(resp)),
		})
	})
}
