package kvs

import (
	"testing"
	"time"

	"incod/internal/memcache"
	"incod/internal/simnet"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.Set("k", Entry{Flags: 1, Value: []byte("v")})
	e, ok := s.Get("k", 0)
	if !ok || string(e.Value) != "v" || e.Flags != 1 {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if !s.Delete("k") {
		t.Error("Delete should succeed")
	}
	if _, ok := s.Get("k", 0); ok {
		t.Error("deleted key still present")
	}
	if s.Delete("k") {
		t.Error("Delete of absent key should report false")
	}
}

func TestStoreExpiry(t *testing.T) {
	s := NewStore()
	s.Set("k", Entry{Value: []byte("v"), Expires: int64(simnet.Time(5 * time.Second))})
	if _, ok := s.Get("k", simnet.Time(time.Second)); !ok {
		t.Error("entry should be live before expiry")
	}
	if _, ok := s.Get("k", simnet.Time(6*time.Second)); ok {
		t.Error("entry should expire")
	}
	if s.Len() != 0 {
		t.Error("expired entry should be reaped on access")
	}
}

func TestStoreApply(t *testing.T) {
	s := NewStore()
	resp := s.Apply(memcache.Request{Op: memcache.OpSet, Key: "a", Flags: 2, Value: []byte("x")}, 0)
	if resp.Status != memcache.StatusStored {
		t.Fatalf("set -> %+v", resp)
	}
	resp = s.Apply(memcache.Request{Op: memcache.OpGet, Key: "a"}, 0)
	if !resp.Hit || string(resp.Value) != "x" || resp.Flags != 2 {
		t.Fatalf("get -> %+v", resp)
	}
	resp = s.Apply(memcache.Request{Op: memcache.OpGet, Key: "nope"}, 0)
	if resp.Hit || resp.Status != memcache.StatusEnd {
		t.Fatalf("get miss -> %+v", resp)
	}
	resp = s.Apply(memcache.Request{Op: memcache.OpDelete, Key: "a"}, 0)
	if resp.Status != memcache.StatusDeleted {
		t.Fatalf("delete -> %+v", resp)
	}
	resp = s.Apply(memcache.Request{Op: memcache.OpDelete, Key: "a"}, 0)
	if resp.Status != memcache.StatusNotFound {
		t.Fatalf("delete absent -> %+v", resp)
	}
	resp = s.Apply(memcache.Request{Op: memcache.Op(42), Key: "a"}, 0)
	if resp.Status != memcache.StatusError {
		t.Fatalf("unknown op -> %+v", resp)
	}
}

func TestStoreApplyExptime(t *testing.T) {
	s := NewStore()
	now := simnet.Time(10 * time.Second)
	s.Apply(memcache.Request{Op: memcache.OpSet, Key: "a", Exptime: 5, Value: []byte("x")}, now)
	if _, ok := s.Get("a", now.Add(4*time.Second)); !ok {
		t.Error("entry should live for 5 virtual seconds")
	}
	if _, ok := s.Get("a", now.Add(6*time.Second)); ok {
		t.Error("entry should have expired")
	}
}

func TestBoundedStoreLRUEviction(t *testing.T) {
	s := NewBoundedStore(2)
	s.Set("a", Entry{})
	s.Set("b", Entry{})
	s.Get("a", 0) // refresh a
	s.Set("c", Entry{})
	if _, ok := s.Get("b", 0); ok {
		t.Error("b should have been LRU-evicted")
	}
	if _, ok := s.Get("a", 0); !ok {
		t.Error("a should have survived")
	}
	if s.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions())
	}
	// Updating an existing key must not evict.
	s.Set("a", Entry{Value: []byte("2")})
	if s.Evictions() != 1 || s.Len() != 2 {
		t.Error("update should not evict")
	}
}

func TestStoreSweep(t *testing.T) {
	s := NewStore()
	now := simnet.Time(10 * time.Second)
	s.Set("live", Entry{})
	s.Set("dead1", Entry{Expires: int64(simnet.Time(5 * time.Second))})
	s.Set("dead2", Entry{Expires: int64(simnet.Time(9 * time.Second))})
	if n := s.Sweep(now); n != 2 {
		t.Errorf("Sweep reaped %d, want 2", n)
	}
	if s.Len() != 1 || s.Expirations() != 2 {
		t.Errorf("Len=%d Expirations=%d", s.Len(), s.Expirations())
	}
	if n := s.Sweep(now); n != 0 {
		t.Errorf("second Sweep reaped %d, want 0", n)
	}
}

func TestStoreHitRatio(t *testing.T) {
	s := NewStore()
	if s.HitRatio() != 0 {
		t.Error("empty store hit ratio should be 0")
	}
	s.Set("a", Entry{})
	s.Get("a", 0)
	s.Get("b", 0)
	if s.HitRatio() != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", s.HitRatio())
	}
}
