package kvs

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"incod/internal/dataplane"
	"incod/internal/memcache"
	"incod/internal/simnet"
)

func TestShardedStoreBasics(t *testing.T) {
	st := NewShardedStore(4, 0)
	if st.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", st.Shards())
	}
	st.Set("a", Entry{Flags: 1, Value: []byte("va")})
	st.Set("b", Entry{Flags: 2, Value: []byte("vb")})
	if e, ok := st.Get([]byte("a"), 0); !ok || string(e.Value) != "va" || e.Flags != 1 {
		t.Fatalf("Get a = %+v %v", e, ok)
	}
	if _, ok := st.Get([]byte("nope"), 0); ok {
		t.Fatal("phantom hit")
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	if !st.Delete("a") || st.Delete("a") {
		t.Fatal("delete semantics")
	}
	s := st.Stats()
	if s.Gets != 2 || s.Hits != 1 || s.Sets != 2 || s.Deletes != 2 {
		t.Fatalf("merged stats = %+v", s)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Fatalf("HitRatio = %v, want 0.5", got)
	}
}

func TestShardedStoreRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}} {
		if got := NewShardedStore(tc.in, 0).Shards(); got != tc.want {
			t.Fatalf("NewShardedStore(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := NewShardedStore(0, 0).Shards(); got < 1 {
		t.Fatalf("default shards = %d", got)
	}
}

func TestShardedStoreExpiry(t *testing.T) {
	st := NewShardedStore(2, 0)
	resp := st.Apply(memcache.Request{Op: memcache.OpSet, Key: "k", Exptime: 1, Value: []byte("v")}, 0)
	if resp.Status != memcache.StatusStored {
		t.Fatalf("set: %+v", resp)
	}
	if _, ok := st.Get([]byte("k"), simnet.Time(500_000_000)); !ok {
		t.Fatal("expired too early")
	}
	if _, ok := st.Get([]byte("k"), simnet.Time(2_000_000_000)); ok {
		t.Fatal("did not expire")
	}
	if st.Stats().Expirations != 1 {
		t.Fatalf("expirations = %d", st.Stats().Expirations)
	}
}

func TestShardedStoreBoundSplitsAcrossShards(t *testing.T) {
	st := NewShardedStore(4, 64)
	for i := 0; i < 1000; i++ {
		st.Set(fmt.Sprintf("key-%d", i), Entry{Value: []byte("v")})
	}
	// Per-shard bound is ceil(64/4)=16, so the total stays near 64.
	if n := st.Len(); n > 64 {
		t.Fatalf("Len = %d, want <= 64", n)
	}
	if st.Stats().Evictions == 0 {
		t.Fatal("no evictions under a bound")
	}
}

func TestShardedStoreApplyMultiGet(t *testing.T) {
	st := NewShardedStore(4, 0)
	st.Set("a", Entry{Value: []byte("va")})
	st.Set("c", Entry{Value: []byte("vc")})
	resp := st.Apply(memcache.Request{Op: memcache.OpGet, Key: "a", Extra: []string{"b", "c"}}, 0)
	if !resp.Hit || len(resp.Items) != 2 {
		t.Fatalf("multiget: %+v", resp)
	}
	if resp.Items[0].Key != "a" || resp.Items[1].Key != "c" {
		t.Fatalf("multiget items: %+v", resp.Items)
	}
}

func TestShardedStoreConcurrent(t *testing.T) {
	st := NewShardedStore(8, 0)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("key-%d", i%100)
				st.Set(key, Entry{Value: []byte("v")})
				st.Get([]byte(key), 0)
				if i%10 == 0 {
					st.Delete(key)
				}
			}
		}(w)
	}
	wg.Wait()
	s := st.Stats()
	if s.Gets != workers*per {
		t.Fatalf("gets = %d, want %d", s.Gets, workers*per)
	}
}

func TestHandlerFramedAndRaw(t *testing.T) {
	h := NewHandler(NewShardedStore(4, 0))
	scratch := make([]byte, 0, 4096)

	// Framed set.
	set := memcache.EncodeFrame(memcache.Frame{RequestID: 7, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpSet, Key: "k", Flags: 3, Value: []byte("hello")}))
	out, ok := h.HandleDatagram(set, &scratch)
	if !ok {
		t.Fatal("no reply to set")
	}
	f, body, err := memcache.DecodeFrame(out)
	if err != nil || f.RequestID != 7 {
		t.Fatalf("set reply frame: %+v %v", f, err)
	}
	if resp, err := memcache.ParseResponse(body); err != nil || resp.Status != memcache.StatusStored {
		t.Fatalf("set reply: %+v %v", resp, err)
	}

	// Raw ASCII get of the same key.
	out, ok = h.HandleDatagram([]byte("get k\r\n"), &scratch)
	if !ok {
		t.Fatal("no reply to get")
	}
	resp, err := memcache.ParseResponse(out)
	if err != nil || !resp.Hit || string(resp.Value) != "hello" || resp.Flags != 3 {
		t.Fatalf("raw get reply: %+v %v", resp, err)
	}

	// Raw multi-key get exercises the fallback path.
	out, _ = h.HandleDatagram([]byte("get k nope\r\n"), &scratch)
	resp, err = memcache.ParseResponse(out)
	if err != nil || len(resp.Items) != 1 {
		t.Fatalf("multiget reply: %+v %v", resp, err)
	}

	// Garbage gets ERROR.
	out, _ = h.HandleDatagram([]byte("bogus\r\n"), &scratch)
	if string(out) != "ERROR\r\n" {
		t.Fatalf("garbage reply: %q", out)
	}

	snap := h.StatsCounters().Snapshot()
	if snap["sets"] != 1 || snap["hits"] != 2 || snap["misses"] != 1 || snap["malformed"] != 1 {
		t.Fatalf("handler counters: %v", snap)
	}
}

func TestHandlerGetHotPathDoesNotAllocate(t *testing.T) {
	h := NewHandler(NewShardedStore(4, 0))
	scratch := make([]byte, 0, 4096)
	set := memcache.EncodeFrame(memcache.Frame{RequestID: 1, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpSet, Key: "key-123", Value: []byte("value-xyz")}))
	if _, ok := h.HandleDatagram(set, &scratch); !ok {
		t.Fatal("set failed")
	}
	get := memcache.EncodeFrame(memcache.Frame{RequestID: 2, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: "key-123"}))
	allocs := testing.AllocsPerRun(200, func() {
		out, ok := h.HandleDatagram(get, &scratch)
		if !ok || len(out) == 0 {
			t.Fatal("get failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("GET hot path allocates %.1f per request, want 0", allocs)
	}
}

func TestHandlerSetOverwriteDoesNotAllocate(t *testing.T) {
	h := NewHandler(NewShardedStore(4, 0))
	scratch := make([]byte, 0, 4096)
	set := memcache.EncodeFrame(memcache.Frame{RequestID: 1, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpSet, Key: "key-123", Value: []byte("value-xyz")}))
	// The first SET inserts (key string + value copy); every later SET of
	// the same key overwrites the entry's value buffer in place.
	if _, ok := h.HandleDatagram(set, &scratch); !ok {
		t.Fatal("set failed")
	}
	allocs := testing.AllocsPerRun(200, func() {
		out, ok := h.HandleDatagram(set, &scratch)
		if !ok || len(out) == 0 {
			t.Fatal("set failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("SET overwrite hot path allocates %.1f per request, want 0", allocs)
	}
	if e, ok := h.Store().Get([]byte("key-123"), simnet.Time(time.Hour)); !ok || string(e.Value) != "value-xyz" {
		t.Fatalf("overwritten entry = %q, %v", e.Value, ok)
	}
}

func TestHandlerDeleteDoesNotAllocate(t *testing.T) {
	h := NewHandler(NewShardedStore(4, 0))
	scratch := make([]byte, 0, 4096)
	del := memcache.EncodeFrame(memcache.Frame{RequestID: 1, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpDelete, Key: "key-123"}))
	// Steady state here is the NOT_FOUND reply; the DELETED branch differs
	// only by which status it appends.
	allocs := testing.AllocsPerRun(200, func() {
		out, ok := h.HandleDatagram(del, &scratch)
		if !ok || len(out) == 0 {
			t.Fatal("delete failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("DELETE hot path allocates %.1f per request, want 0", allocs)
	}
	set := memcache.EncodeFrame(memcache.Frame{RequestID: 2, Total: 1},
		memcache.EncodeRequest(memcache.Request{Op: memcache.OpSet, Key: "key-123", Value: []byte("v")}))
	h.HandleDatagram(set, &scratch)
	out, _ := h.HandleDatagram(del, &scratch)
	if _, body, err := memcache.DecodeFrame(out); err != nil || string(body) != "DELETED\r\n" {
		t.Fatalf("delete of present key replied %q", out)
	}
}

// TestSetBytesOverwriteSemantics pins down the in-place value reuse:
// grow, shrink, caller-buffer independence, and flag/expiry refresh.
func TestSetBytesOverwriteSemantics(t *testing.T) {
	st := NewShardedStore(1, 0)
	key := []byte("k")
	st.SetBytes(key, Entry{Flags: 1, Value: []byte("short")})
	st.SetBytes(key, Entry{Flags: 2, Value: []byte("a-much-longer-value")})
	if e, ok := st.Get(key, 0); !ok || e.Flags != 2 || string(e.Value) != "a-much-longer-value" {
		t.Fatalf("after grow: %+v %v", e, ok)
	}
	st.SetBytes(key, Entry{Flags: 3, Value: []byte("tiny")})
	if e, ok := st.Get(key, 0); !ok || e.Flags != 3 || string(e.Value) != "tiny" {
		t.Fatalf("after shrink: %+v %v", e, ok)
	}
	// The store copies the caller's bytes; mutating them afterwards must
	// not reach the stored entry.
	buf := []byte("mutate-me")
	st.SetBytes(key, Entry{Value: buf})
	buf[0] = 'X'
	if e, _ := st.Get(key, 0); string(e.Value) != "mutate-me" {
		t.Fatalf("stored value aliases the caller's buffer: %q", e.Value)
	}
	if !st.DeleteBytes(key) || st.DeleteBytes(key) {
		t.Fatal("DeleteBytes: want present-then-absent")
	}
}

// TestHandlerBatchMutationsDoNotAllocate is the batched-mode mirror of
// the single-datagram alloc tests: a chunk mixing GETs, overwrite-SETs
// and a miss must stay heap-free end to end.
func TestHandlerBatchMutationsDoNotAllocate(t *testing.T) {
	h := NewHandler(NewShardedStore(4, 0))
	frame := func(id uint16, r memcache.Request) []byte {
		return memcache.EncodeFrame(memcache.Frame{RequestID: id, Total: 1}, memcache.EncodeRequest(r))
	}
	const n = 16
	items := make([]*dataplane.BatchItem, n)
	scratches := make([][]byte, n)
	ins := make([][]byte, n)
	for i := 0; i < n; i++ {
		scratches[i] = make([]byte, 0, 4096)
		switch {
		case i%4 == 0:
			ins[i] = frame(uint16(i), memcache.Request{Op: memcache.OpSet,
				Key: fmt.Sprintf("key-%02d", i), Value: []byte("value-abc")})
		case i%4 == 3:
			ins[i] = frame(uint16(i), memcache.Request{Op: memcache.OpGet, Key: "absent"})
		default:
			ins[i] = frame(uint16(i), memcache.Request{Op: memcache.OpGet,
				Key: fmt.Sprintf("key-%02d", i-i%4)})
		}
		items[i] = &dataplane.BatchItem{Scratch: &scratches[i]}
	}
	run := func() {
		for k := range items {
			items[k].In = ins[k]
			items[k].Out = nil
			items[k].Served = false
		}
		h.HandleBatch(items)
	}
	run() // warm: first SETs insert, scratches size themselves
	allocs := testing.AllocsPerRun(200, run)
	if allocs != 0 {
		t.Fatalf("batched GET/SET chunk allocates %.1f per batch, want 0", allocs)
	}
	for i, it := range items {
		if len(it.Out) == 0 {
			t.Fatalf("item %d produced no reply", i)
		}
	}
}

func TestShardByKeyDeterministicAcrossFraming(t *testing.T) {
	src := netip.MustParseAddrPort("10.0.0.1:9999")
	raw := memcache.EncodeRequest(memcache.Request{Op: memcache.OpGet, Key: "key-42"})
	framed := memcache.EncodeFrame(memcache.Frame{RequestID: 5, Total: 1}, raw)
	// The same key dispatches identically whether framed or raw, and
	// regardless of request id.
	framed2 := memcache.EncodeFrame(memcache.Frame{RequestID: 900, Total: 1}, raw)
	h1, h2, h3 := ShardByKey(raw, src), ShardByKey(framed, src), ShardByKey(framed2, src)
	if h1 != h2 || h2 != h3 {
		t.Fatalf("ShardByKey not stable across framing: %d %d %d", h1, h2, h3)
	}
	// set/delete on the same key land with the gets.
	set := memcache.EncodeRequest(memcache.Request{Op: memcache.OpSet, Key: "key-42", Value: []byte("v")})
	if ShardByKey(set, src) != h1 {
		t.Fatal("set dispatches away from its key's shard")
	}
	// Unpeekable payloads fall back to the source hash.
	junk := []byte{1, 2, 3}
	if ShardByKey(junk, src) != ShardByKey(junk, src) {
		t.Fatal("fallback not deterministic")
	}
}
