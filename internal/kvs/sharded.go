package kvs

import (
	"runtime"
	"sort"
	"time"

	"incod/internal/dataplane"
	"incod/internal/memcache"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// ShardedStore is the concurrent serving form of Store: N shared-nothing
// partitions with key-hash fan-out. Reads are lock-free — a per-slot
// sequence counter detects torn reads and the reader retries — so GET
// hits acquire no mutex at all; writes are serialized per partition by a
// writer mutex (the batched dataplane's flow->shard affinity means each
// partition normally has exactly one writer, and cross-shard writes
// arrive through the engine's queue handoff). Eviction is CLOCK
// second-chance: GET hits set a per-entry reference bit with a plain
// atomic store instead of splicing an LRU list under a lock. Shard count
// is rounded up to a power of two and fixed for the store's life, which
// makes key->shard assignment deterministic. See doc.go for the memory
// model.
type ShardedStore struct {
	parts []*partition
	mask  uint64
}

// NewShardedStore returns a store with at least shards partitions (0
// means GOMAXPROCS) bounded to maxEntries total (0 = unbounded; the
// bound is split evenly across partitions, so per-partition CLOCK
// approximates global second-chance under a hashed key distribution).
func NewShardedStore(shards, maxEntries int) *ShardedStore {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	st := &ShardedStore{parts: make([]*partition, n), mask: uint64(n - 1)}
	perShard := 0
	if maxEntries > 0 {
		perShard = (maxEntries + n - 1) / n
	}
	for i := range st.parts {
		st.parts[i] = newPartition(perShard)
	}
	return st
}

// Shards returns the partition count.
func (st *ShardedStore) Shards() int { return len(st.parts) }

// EnableHotKeys attaches a k-slot space-saving hot-key sketch to every
// partition, fed with sampled GET hits from then on. k <= 0 disables
// sampling (the default).
func (st *ShardedStore) EnableHotKeys(k int) {
	for _, p := range st.parts {
		p.sampler.Store(telemetry.NewTopK(k))
	}
}

// HotKeys merges every partition's hot-key sketch and returns up to max
// entries, hottest first. Counts are sampled (1 in 8 GET hits), so only
// the ranking is meaningful. Returns nil when sampling is disabled.
func (st *ShardedStore) HotKeys(max int) []telemetry.HotKey {
	var all []telemetry.HotKey
	for _, p := range st.parts {
		if sam := p.sampler.Load(); sam != nil {
			all = append(all, sam.Snapshot()...)
		}
	}
	// Keys never repeat across partitions (a key hashes to exactly one),
	// so a sort-and-truncate is a correct merge.
	sort.Slice(all, func(i, j int) bool { return all[i].Count > all[j].Count })
	if max > 0 && len(all) > max {
		all = all[:max]
	}
	return all
}

// Get returns the entry for key if present and unexpired at now, without
// acquiring any lock. The returned Entry.Value is a private copy (the
// lock-free reader copies value bytes out before validating the read),
// so it is stable across later mutations.
func (st *ShardedStore) Get(key []byte, now simnet.Time) (Entry, bool) {
	h := dataplane.HashBytes(key)
	p := st.parts[h&st.mask]
	v, fl, exp, ok := p.read(nil, key, h, now, false)
	if !ok {
		return Entry{}, false
	}
	return Entry{Flags: fl, Value: v, Expires: exp}, true
}

// AppendGetHit resolves key at now and, on a hit, appends the memcached
// "VALUE ... END" reply to out — the zero-alloc, zero-lock single-GET
// serving path. The value bytes are copied onto the reply and the read
// validated afterwards, so a torn copy is dropped and retried rather
// than served.
func (st *ShardedStore) AppendGetHit(out []byte, key []byte, now simnet.Time) ([]byte, bool) {
	h := dataplane.HashBytes(key)
	p := st.parts[h&st.mask]
	out, _, _, ok := p.read(out, key, h, now, true)
	return out, ok
}

// getBatchChunk is the batched handler's unit of work (its
// classification arrays are sized to it).
const getBatchChunk = 64

// GetBatch resolves keys[i] into entries[i]/found[i] at now. All three
// slices must have equal length. Each lookup is an independent lock-free
// read — there are no shard locks left to amortize — and entries[i]'s
// existing Value capacity is reused, so the batched GET hot path stays
// allocation-free. Returned values are private copies.
func (st *ShardedStore) GetBatch(keys [][]byte, now simnet.Time, entries []Entry, found []bool) {
	for i, k := range keys {
		h := dataplane.HashBytes(k)
		p := st.parts[h&st.mask]
		v, fl, exp, ok := p.read(entries[i].Value[:0], k, h, now, false)
		entries[i] = Entry{Flags: fl, Value: v, Expires: exp}
		found[i] = ok
	}
}

// AppendGetBatch is GetBatch's encode form: each hit's memcached
// "VALUE ... END" reply is appended to *outs[i] (typically a pre-seeded
// per-reply scratch buffer). Nothing locks and nothing allocates beyond
// scratch growth.
func (st *ShardedStore) AppendGetBatch(keys [][]byte, now simnet.Time, outs []*[]byte, found []bool) {
	for i, k := range keys {
		h := dataplane.HashBytes(k)
		p := st.parts[h&st.mask]
		*outs[i], _, _, found[i] = p.read(*outs[i], k, h, now, true)
	}
}

// GetString is Get for a string key (the allocating convenience form —
// the serving path uses AppendGetHit).
func (st *ShardedStore) GetString(key string, now simnet.Time) (Entry, bool) {
	return st.Get([]byte(key), now)
}

// Set stores key, evicting within the key's partition if bounded. The
// value bytes are copied in; the caller keeps ownership of e.Value.
func (st *ShardedStore) Set(key string, e Entry) {
	h := dataplane.HashString(key)
	st.parts[h&st.mask].set(h, nil, key, false, e)
}

// SetBytes stores key with zero steady-state allocation: an overwrite
// repacks the value into the existing slot's word array in place, under
// the partition's writer mutex. e.Value is copied in, so the caller's
// buffer — typically a pooled receive buffer — is free for reuse on
// return.
func (st *ShardedStore) SetBytes(key []byte, e Entry) {
	h := dataplane.HashBytes(key)
	st.parts[h&st.mask].set(h, key, "", true, e)
}

// DeleteBytes is Delete for a byte-slice key (no key allocation).
func (st *ShardedStore) DeleteBytes(key []byte) bool {
	h := dataplane.HashBytes(key)
	return st.parts[h&st.mask].del(h, key, "", true)
}

// SetIfAbsent stores key only when it is not already present, reporting
// whether it stored. The check and the insert run under the key's
// partition writer mutex, so a concurrent Set for the same key can never
// be overwritten by a stale snapshot value — the property the offload
// tier's warm-up depends on.
func (st *ShardedStore) SetIfAbsent(key string, e Entry) bool {
	h := dataplane.HashString(key)
	return st.parts[h&st.mask].setIfAbsent(h, key, e)
}

// Range calls fn for every live entry, partition by partition in slot
// order, until fn returns false. Each partition's writer mutex is held
// while fn walks it, so fn must be quick and must not write back into
// this store (other stores are fine — the tier warm-up copies entries
// into its own cache layers from here). The Entry.Value passed to fn is
// a fresh copy.
func (st *ShardedStore) Range(fn func(key string, e Entry) bool) {
	for _, p := range st.parts {
		if !p.rangeAll(fn) {
			return
		}
	}
}

// Delete removes key, reporting whether it existed.
func (st *ShardedStore) Delete(key string) bool {
	h := dataplane.HashString(key)
	return st.parts[h&st.mask].del(h, nil, key, false)
}

// Len returns the number of live entries across all partitions. Entries
// that readers have observed expired remain counted until Sweep reaps
// them (lock-free readers cannot remove entries).
func (st *ShardedStore) Len() int {
	n := 0
	for _, p := range st.parts {
		n += p.len()
	}
	return n
}

// Sweep reaps expired entries in every partition, returning the total.
func (st *ShardedStore) Sweep(now simnet.Time) int {
	n := 0
	for _, p := range st.parts {
		n += p.sweep(now)
	}
	return n
}

// Stats merges every partition's counters.
func (st *ShardedStore) Stats() StoreStats {
	var out StoreStats
	for _, p := range st.parts {
		out.Add(p.statsSnapshot())
	}
	return out
}

// HitRatio returns the merged lifetime get hit ratio.
func (st *ShardedStore) HitRatio() float64 {
	s := st.Stats()
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Apply executes a parsed memcached request at virtual time now, routing
// each key to its partition — Store.Apply semantics over the sharded
// form. Multi-key gets resolve each key independently.
func (st *ShardedStore) Apply(req memcache.Request, now simnet.Time) memcache.Response {
	switch req.Op {
	case memcache.OpGet:
		var items []memcache.Item
		for _, k := range req.AllKeys() {
			if e, ok := st.GetString(k, now); ok {
				items = append(items, memcache.Item{Key: k, Flags: e.Flags, Value: e.Value})
			}
		}
		if len(items) == 0 {
			return memcache.Response{Status: memcache.StatusEnd}
		}
		return memcache.Response{
			Status: memcache.StatusEnd,
			Key:    items[0].Key, Flags: items[0].Flags, Value: items[0].Value,
			Items: items, Hit: true,
		}
	case memcache.OpSet:
		var exp int64
		if req.Exptime > 0 {
			exp = int64(now.Add(time.Duration(req.Exptime) * time.Second))
		}
		st.Set(req.Key, Entry{Flags: req.Flags, Value: req.Value, Expires: exp})
		return memcache.Response{Status: memcache.StatusStored}
	case memcache.OpDelete:
		if st.Delete(req.Key) {
			return memcache.Response{Status: memcache.StatusDeleted}
		}
		return memcache.Response{Status: memcache.StatusNotFound}
	}
	return memcache.Response{Status: memcache.StatusError}
}
