package kvs

import (
	"runtime"
	"sync"
	"time"

	"incod/internal/dataplane"
	"incod/internal/memcache"
	"incod/internal/simnet"
)

// ShardedStore is the concurrent serving form of Store: N independently
// locked Store shards with key-hash fan-out, so dataplane workers on
// different cores contend only when they touch the same key range. Each
// shard keeps its own LRU order and counters; Stats merges them. Shard
// count is rounded up to a power of two and fixed for the store's life,
// which makes key->shard assignment deterministic.
type ShardedStore struct {
	shards []*storeShard
	mask   uint64
}

type storeShard struct {
	mu sync.Mutex
	s  *Store
	// Pad to a cache line so neighboring shard locks don't false-share.
	_ [40]byte
}

// NewShardedStore returns a store with at least shards shards (0 means
// GOMAXPROCS) bounded to maxEntries total (0 = unbounded; the bound is
// split evenly across shards, so per-shard LRU approximates global LRU
// under a hashed key distribution).
func NewShardedStore(shards, maxEntries int) *ShardedStore {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	st := &ShardedStore{shards: make([]*storeShard, n), mask: uint64(n - 1)}
	perShard := 0
	if maxEntries > 0 {
		perShard = (maxEntries + n - 1) / n
	}
	for i := range st.shards {
		st.shards[i] = &storeShard{s: NewBoundedStore(perShard)}
	}
	return st
}

// Shards returns the shard count.
func (st *ShardedStore) Shards() int { return len(st.shards) }

func (st *ShardedStore) shardOf(key []byte) *storeShard {
	return st.shards[dataplane.HashBytes(key)&st.mask]
}

func (st *ShardedStore) shardOfString(key string) *storeShard {
	return st.shards[dataplane.HashString(key)&st.mask]
}

// Get returns the entry for key if present and unexpired at now. The key
// is a byte slice so the serving path stays allocation-free.
//
// The returned Entry.Value aliases the store's internal buffer, which a
// concurrent SetBytes overwrite rewrites in place — consume it before the
// next mutation can run, or use AppendGetHit, which encodes under the
// shard lock instead of leaking the alias.
func (st *ShardedStore) Get(key []byte, now simnet.Time) (Entry, bool) {
	sh := st.shardOf(key)
	sh.mu.Lock()
	e, ok := sh.s.GetBytes(key, now)
	sh.mu.Unlock()
	return e, ok
}

// AppendGetHit resolves key at now and, on a hit, appends the memcached
// "VALUE ... END" reply to out while the key's shard lock is held — the
// zero-alloc single-GET serving path. Encoding under the lock is what
// makes the zero-alloc SetBytes overwrite safe: value bytes are copied
// onto the reply before any later mutation can reuse their buffer.
func (st *ShardedStore) AppendGetHit(out []byte, key []byte, now simnet.Time) ([]byte, bool) {
	sh := st.shardOf(key)
	sh.mu.Lock()
	e, ok := sh.s.GetBytes(key, now)
	if ok {
		out = memcache.AppendGetHit(out, key, e.Flags, e.Value)
	}
	sh.mu.Unlock()
	return out, ok
}

// getBatchChunk is GetBatch's unit of work: its done-set is a uint64
// bitmask, so a chunk is at most 64 keys.
const getBatchChunk = 64

// GetBatch resolves keys[i] into entries[i]/found[i] at now, acquiring
// each touched shard's lock once per chunk of 64 keys even when many
// keys hash to the same shard — the batched dataplane's lock
// amortization hook. All three slices must have equal length. It
// allocates nothing, so the batched GET hot path stays allocation-free.
//
// Returned entries alias the store's value buffers (see Get); serving
// paths that encode replies should prefer AppendGetBatch, which copies
// the bytes out under the shard locks.
func (st *ShardedStore) GetBatch(keys [][]byte, now simnet.Time, entries []Entry, found []bool) {
	for off := 0; off < len(keys); off += getBatchChunk {
		end := min(off+getBatchChunk, len(keys))
		st.getChunk(keys[off:end], now, entries[off:end], found[off:end])
	}
}

func (st *ShardedStore) getChunk(keys [][]byte, now simnet.Time, entries []Entry, found []bool) {
	var shardOf [getBatchChunk]uint64
	for i, k := range keys {
		shardOf[i] = dataplane.HashBytes(k) & st.mask
	}
	var done uint64
	for i := range keys {
		if done&(1<<i) != 0 {
			continue
		}
		sh := st.shards[shardOf[i]]
		sh.mu.Lock()
		for j := i; j < len(keys); j++ {
			if done&(1<<j) == 0 && shardOf[j] == shardOf[i] {
				entries[j], found[j] = sh.s.GetBytes(keys[j], now)
				done |= 1 << j
			}
		}
		sh.mu.Unlock()
	}
}

// AppendGetBatch is GetBatch's encode-under-lock form: each hit's
// memcached "VALUE ... END" reply lines are appended to *outs[i] while
// the owning shard's lock is held (outs[i] is typically a pre-seeded
// per-reply scratch buffer). Lock amortization matches GetBatch — one
// acquisition per touched shard per chunk of 64 keys — and nothing
// allocates beyond scratch growth, so the batched GET path stays
// heap-free while never aliasing value bytes outside the lock.
func (st *ShardedStore) AppendGetBatch(keys [][]byte, now simnet.Time, outs []*[]byte, found []bool) {
	for off := 0; off < len(keys); off += getBatchChunk {
		end := min(off+getBatchChunk, len(keys))
		st.appendGetChunk(keys[off:end], now, outs[off:end], found[off:end])
	}
}

func (st *ShardedStore) appendGetChunk(keys [][]byte, now simnet.Time, outs []*[]byte, found []bool) {
	var shardOf [getBatchChunk]uint64
	for i, k := range keys {
		shardOf[i] = dataplane.HashBytes(k) & st.mask
	}
	var done uint64
	for i := range keys {
		if done&(1<<i) != 0 {
			continue
		}
		sh := st.shards[shardOf[i]]
		sh.mu.Lock()
		for j := i; j < len(keys); j++ {
			if done&(1<<j) == 0 && shardOf[j] == shardOf[i] {
				var e Entry
				e, found[j] = sh.s.GetBytes(keys[j], now)
				if found[j] {
					*outs[j] = memcache.AppendGetHit(*outs[j], keys[j], e.Flags, e.Value)
				}
				done |= 1 << j
			}
		}
		sh.mu.Unlock()
	}
}

// GetString is Get for a string key. The value is copied under the shard
// lock, so the result is stable across later mutations (the allocating,
// convenience form — the serving path uses AppendGetHit).
func (st *ShardedStore) GetString(key string, now simnet.Time) (Entry, bool) {
	sh := st.shardOfString(key)
	sh.mu.Lock()
	e, ok := sh.s.Get(key, now)
	if ok {
		e.Value = append([]byte(nil), e.Value...)
	}
	sh.mu.Unlock()
	return e, ok
}

// Set stores key, evicting within the key's shard if bounded. The store
// takes ownership of e.Value (see Store.Set).
func (st *ShardedStore) Set(key string, e Entry) {
	sh := st.shardOfString(key)
	sh.mu.Lock()
	sh.s.Set(key, e)
	sh.mu.Unlock()
}

// SetBytes stores key with zero steady-state allocation: an overwrite
// reuses the existing entry's value buffer in place under the shard lock
// (see Store.SetBytes). e.Value is copied in, so the caller's buffer —
// typically a pooled receive buffer — is free for reuse on return.
func (st *ShardedStore) SetBytes(key []byte, e Entry) {
	sh := st.shardOf(key)
	sh.mu.Lock()
	sh.s.SetBytes(key, e)
	sh.mu.Unlock()
}

// DeleteBytes is Delete for a byte-slice key (no key allocation).
func (st *ShardedStore) DeleteBytes(key []byte) bool {
	sh := st.shardOf(key)
	sh.mu.Lock()
	ok := sh.s.DeleteBytes(key)
	sh.mu.Unlock()
	return ok
}

// SetIfAbsent stores key only when it is not already present, reporting
// whether it stored. The check and the insert run under the key's shard
// lock, so a concurrent Set for the same key can never be overwritten by
// a stale snapshot value — the property the offload tier's warm-up
// depends on.
func (st *ShardedStore) SetIfAbsent(key string, e Entry) bool {
	sh := st.shardOfString(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.s.Contains(key) {
		return false
	}
	sh.s.Set(key, e)
	return true
}

// Range calls fn for every live entry, shard by shard, until fn returns
// false. Each shard's lock is held while fn walks it, so fn must be quick
// and must not call back into this store (other stores are fine — the
// tier warm-up copies entries into its own cache layers from here). The
// Entry.Value passed to fn aliases the store's buffer, which SetBytes
// reuses in place: fn must copy the bytes if they outlive the walk.
func (st *ShardedStore) Range(fn func(key string, e Entry) bool) {
	for _, sh := range st.shards {
		stop := false
		sh.mu.Lock()
		sh.s.Range(func(key string, e Entry) bool {
			if !fn(key, e) {
				stop = true
				return false
			}
			return true
		})
		sh.mu.Unlock()
		if stop {
			return
		}
	}
}

// Delete removes key, reporting whether it existed.
func (st *ShardedStore) Delete(key string) bool {
	sh := st.shardOfString(key)
	sh.mu.Lock()
	ok := sh.s.Delete(key)
	sh.mu.Unlock()
	return ok
}

// Len returns the number of live entries across all shards.
func (st *ShardedStore) Len() int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		n += sh.s.Len()
		sh.mu.Unlock()
	}
	return n
}

// Sweep reaps expired entries in every shard, returning the total.
func (st *ShardedStore) Sweep(now simnet.Time) int {
	n := 0
	for _, sh := range st.shards {
		sh.mu.Lock()
		n += sh.s.Sweep(now)
		sh.mu.Unlock()
	}
	return n
}

// Stats merges every shard's counters.
func (st *ShardedStore) Stats() StoreStats {
	var out StoreStats
	for _, sh := range st.shards {
		sh.mu.Lock()
		out.Add(sh.s.Stats())
		sh.mu.Unlock()
	}
	return out
}

// HitRatio returns the merged lifetime get hit ratio.
func (st *ShardedStore) HitRatio() float64 {
	s := st.Stats()
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Apply executes a parsed memcached request at virtual time now, routing
// each key to its shard — Store.Apply semantics over the sharded form.
// Multi-key gets resolve each key independently.
func (st *ShardedStore) Apply(req memcache.Request, now simnet.Time) memcache.Response {
	switch req.Op {
	case memcache.OpGet:
		var items []memcache.Item
		for _, k := range req.AllKeys() {
			if e, ok := st.GetString(k, now); ok {
				items = append(items, memcache.Item{Key: k, Flags: e.Flags, Value: e.Value})
			}
		}
		if len(items) == 0 {
			return memcache.Response{Status: memcache.StatusEnd}
		}
		return memcache.Response{
			Status: memcache.StatusEnd,
			Key:    items[0].Key, Flags: items[0].Flags, Value: items[0].Value,
			Items: items, Hit: true,
		}
	case memcache.OpSet:
		var exp int64
		if req.Exptime > 0 {
			exp = int64(now.Add(time.Duration(req.Exptime) * time.Second))
		}
		st.Set(req.Key, Entry{Flags: req.Flags, Value: req.Value, Expires: exp})
		return memcache.Response{Status: memcache.StatusStored}
	case memcache.OpDelete:
		if st.Delete(req.Key) {
			return memcache.Response{Status: memcache.StatusDeleted}
		}
		return memcache.Response{Status: memcache.StatusNotFound}
	}
	return memcache.Response{Status: memcache.StatusError}
}
