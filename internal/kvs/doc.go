// Package kvs implements the memcached-dialect key-value store behind
// inckvsd: a plain single-threaded Store for the simulator and tests,
// and the lock-free ShardedStore the live dataplane serves from.
//
// # ShardedStore memory model
//
// ShardedStore is shared-nothing by construction: a key hashes to
// exactly one partition, each partition has a single writer at a time
// (enforced by a per-partition mutex that only the write path touches;
// under the batched dataplane the owning shard is the only writer and
// the mutex is uncontended), and any number of lock-free readers.
//
// Seqlock reads. Every slot carries a sequence counter: even means
// stable, odd means a writer is mid-update. A writer brackets every
// slot mutation with seq.Add(1) before and after; a reader snapshots
// the seq, copies the header and value out, and only believes the copy
// if the seq is unchanged and even afterwards. All shared slot fields
// (including the value payload, packed into 64-bit words) are Go
// atomics, so the race detector sees only synchronized accesses — the
// seq exists to reject *mixed-version* copies, which individual atomic
// word loads cannot rule out, not to establish happens-before.
//
// Publication order. A writer claiming a slot stores key, hash and
// value while the seq is odd and flips the state to live only inside
// the same bracket, so a reader either rejects the whole snapshot (seq
// moved) or sees a fully published entry. Insert-time value arrays are
// filled with atomic stores before the pointer to them is published.
//
// Why unvalidated probe steps are safe. A reader skips seq validation
// when it walks past a slot, and that is linearizable in every case:
// a hash/key mismatch on a live slot can only be wrong about a key
// that a concurrent writer is removing or inserting right now (either
// order is a legal serialization of a concurrent read); a tombstone
// likewise only ever transitions under a concurrent delete/insert; and
// tombstones retain their key/value pointers so a reader that loaded a
// stale state never chases nil. Only two outcomes require validation —
// returning a hit (the copied value must be one version) and returning
// a miss at an empty slot (the probe's terminator must not be a
// half-claimed insert).
//
// Table generations. Growth and tombstone purges build a fresh slot
// array, publish it through an atomic pointer, and then poison every
// slot of the retired array by bumping its seq to odd, forever. The
// poison is load-bearing: value word arrays alias between generations,
// so a reader still probing the retired table must fail validation
// before the writer mutates anything through the new one. A poisoned
// read reloads the table pointer and re-probes.
//
// Eviction is CLOCK second-chance: a GET hit sets the slot's reference
// bit with a plain atomic store (no list splice, no lock), and the
// writer's hand clears bits until it finds an unreferenced live entry
// to tombstone. Entries are inserted with the bit clear, so an entry
// earns its second chance on first touch.
//
// Expiry. Lock-free readers cannot remove entries, so a reader that
// observes an entry expired reports a miss and CASes a once-flag that
// charges the expiration stat exactly once; the entry itself stays (and
// counts toward Len) until Sweep, running in the writer, reaps it.
//
// Hot keys. Each partition optionally feeds a space-saving top-K
// sketch (telemetry.TopK) from sampled GET hits; ShardedStore.HotKeys
// merges the per-partition sketches, which is exact because a key
// lives in exactly one partition.
package kvs
