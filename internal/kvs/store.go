package kvs

import (
	"container/list"
	"time"

	"incod/internal/memcache"
	"incod/internal/simnet"
)

// Store is the authoritative software key-value store with memcached
// semantics (the role memcached v1.5.1 plays in §4.2): LRU eviction when a
// capacity is configured, expiry evaluated against virtual time.
type Store struct {
	data  map[string]*list.Element
	order *list.List // front = most recently used
	// maxEntries bounds the store (0 = unbounded), like memcached's -m.
	maxEntries int
	// stats
	gets, sets, deletes, hits, evictions, expirations uint64
}

type storeItem struct {
	key   string
	entry Entry
}

// NewStore returns an empty, unbounded store.
func NewStore() *Store {
	return &Store{data: make(map[string]*list.Element), order: list.New()}
}

// NewBoundedStore returns a store that LRU-evicts beyond maxEntries.
func NewBoundedStore(maxEntries int) *Store {
	s := NewStore()
	s.maxEntries = maxEntries
	return s
}

// Evictions returns how many entries were LRU-evicted.
func (s *Store) Evictions() uint64 { return s.evictions }

// Expirations returns how many entries were reaped after expiry.
func (s *Store) Expirations() uint64 { return s.expirations }

// Len returns the number of live entries (including not-yet-reaped
// expired ones).
func (s *Store) Len() int { return len(s.data) }

// Get returns the entry for key if present and unexpired at now.
func (s *Store) Get(key string, now simnet.Time) (Entry, bool) {
	s.gets++
	return s.finishGet(s.data[key], now)
}

// GetBytes is Get for a byte-slice key: the map lookup converts in place
// without allocating, which keeps the dataplane GET path heap-free.
func (s *Store) GetBytes(key []byte, now simnet.Time) (Entry, bool) {
	s.gets++
	return s.finishGet(s.data[string(key)], now)
}

func (s *Store) finishGet(el *list.Element, now simnet.Time) (Entry, bool) {
	if el == nil {
		return Entry{}, false
	}
	it := el.Value.(*storeItem)
	if it.entry.Expires != 0 && int64(now) >= it.entry.Expires {
		s.remove(el)
		s.expirations++
		return Entry{}, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return it.entry, true
}

// Set stores key, evicting the least recently used entry if bounded.
// The store takes ownership of e.Value: a later SetBytes overwrite may
// rewrite those bytes in place, so callers must not retain the slice.
func (s *Store) Set(key string, e Entry) {
	s.sets++
	if el, ok := s.data[key]; ok {
		el.Value.(*storeItem).entry = e
		s.order.MoveToFront(el)
		return
	}
	s.insert(key, e)
}

// SetBytes is Set for a byte-slice key, shaped for the serving hot path:
// overwriting an existing key reuses the entry's value buffer in place,
// so a steady-state SET allocates nothing — only a first-time insert
// pays for the key string and value copy. e.Value is copied in; the
// caller's buffer (typically a pooled receive buffer) is free on return.
//
// The in-place reuse is what obliges readers to consume Entry.Value
// before releasing the lock that guards this store; ShardedStore's
// encode-under-lock APIs (AppendGetHit, AppendGetBatch) exist for that.
func (s *Store) SetBytes(key []byte, e Entry) {
	s.sets++
	if el, ok := s.data[string(key)]; ok {
		it := el.Value.(*storeItem)
		it.entry.Flags = e.Flags
		it.entry.Expires = e.Expires
		it.entry.Value = append(it.entry.Value[:0], e.Value...)
		s.order.MoveToFront(el)
		return
	}
	e.Value = append([]byte(nil), e.Value...)
	s.insert(string(key), e)
}

// insert adds a key that is known to be absent, evicting if bounded.
func (s *Store) insert(key string, e Entry) {
	if s.maxEntries > 0 && len(s.data) >= s.maxEntries {
		if oldest := s.order.Back(); oldest != nil {
			s.remove(oldest)
			s.evictions++
		}
	}
	s.data[key] = s.order.PushFront(&storeItem{key: key, entry: e})
}

// Delete removes key, reporting whether it existed.
func (s *Store) Delete(key string) bool {
	s.deletes++
	el, ok := s.data[key]
	if ok {
		s.remove(el)
	}
	return ok
}

// DeleteBytes is Delete for a byte-slice key: the map lookup converts in
// place without allocating, like GetBytes.
func (s *Store) DeleteBytes(key []byte) bool {
	s.deletes++
	el, ok := s.data[string(key)]
	if ok {
		s.remove(el)
	}
	return ok
}

func (s *Store) remove(el *list.Element) {
	s.order.Remove(el)
	delete(s.data, el.Value.(*storeItem).key)
}

// Contains reports whether key is present, without touching LRU order or
// get counters (expiry is not evaluated; an expired entry still counts as
// present until reaped).
func (s *Store) Contains(key string) bool {
	_, ok := s.data[key]
	return ok
}

// Range calls fn for every live entry from most to least recently used,
// stopping early when fn returns false. fn must not mutate the store.
// The offload tier's cache warm-up walks the store of record through it.
func (s *Store) Range(fn func(key string, e Entry) bool) {
	for el := s.order.Front(); el != nil; el = el.Next() {
		it := el.Value.(*storeItem)
		if !fn(it.key, it.entry) {
			return
		}
	}
}

// Sweep reaps expired entries eagerly (memcached's background reaper) and
// returns how many were removed.
func (s *Store) Sweep(now simnet.Time) int {
	var reaped []*list.Element
	for el := s.order.Front(); el != nil; el = el.Next() {
		it := el.Value.(*storeItem)
		if it.entry.Expires != 0 && int64(now) >= it.entry.Expires {
			reaped = append(reaped, el)
		}
	}
	for _, el := range reaped {
		s.remove(el)
		s.expirations++
	}
	return len(reaped)
}

// StoreStats is a snapshot of a store's lifetime counters; shard stores
// merge them with StoreStats.Add.
type StoreStats struct {
	Gets        uint64 `json:"gets"`
	Hits        uint64 `json:"hits"`
	Sets        uint64 `json:"sets"`
	Deletes     uint64 `json:"deletes"`
	Evictions   uint64 `json:"evictions"`
	Expirations uint64 `json:"expirations"`
}

// Add accumulates o into s.
func (s *StoreStats) Add(o StoreStats) {
	s.Gets += o.Gets
	s.Hits += o.Hits
	s.Sets += o.Sets
	s.Deletes += o.Deletes
	s.Evictions += o.Evictions
	s.Expirations += o.Expirations
}

// Stats snapshots the store's counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Gets: s.gets, Hits: s.hits, Sets: s.sets, Deletes: s.deletes,
		Evictions: s.evictions, Expirations: s.expirations,
	}
}

// HitRatio returns the lifetime get hit ratio.
func (s *Store) HitRatio() float64 {
	if s.gets == 0 {
		return 0
	}
	return float64(s.hits) / float64(s.gets)
}

// Apply executes a parsed memcached request against the store at virtual
// time now and returns the response. Exptime is interpreted as seconds of
// virtual time from now (relative form only; the simulator has no epoch).
func (s *Store) Apply(req memcache.Request, now simnet.Time) memcache.Response {
	switch req.Op {
	case memcache.OpGet:
		var items []memcache.Item
		for _, k := range req.AllKeys() {
			if e, ok := s.Get(k, now); ok {
				items = append(items, memcache.Item{Key: k, Flags: e.Flags, Value: e.Value})
			}
		}
		if len(items) == 0 {
			return memcache.Response{Status: memcache.StatusEnd}
		}
		return memcache.Response{
			Status: memcache.StatusEnd,
			Key:    items[0].Key, Flags: items[0].Flags, Value: items[0].Value,
			Items: items, Hit: true,
		}
	case memcache.OpSet:
		var exp int64
		if req.Exptime > 0 {
			exp = int64(now.Add(time.Duration(req.Exptime) * time.Second))
		}
		s.Set(req.Key, Entry{Flags: req.Flags, Value: req.Value, Expires: exp})
		return memcache.Response{Status: memcache.StatusStored}
	case memcache.OpDelete:
		if s.Delete(req.Key) {
			return memcache.Response{Status: memcache.StatusDeleted}
		}
		return memcache.Response{Status: memcache.StatusNotFound}
	}
	return memcache.Response{Status: memcache.StatusError}
}
