package kvs

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"

	"incod/internal/memcache"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// This file is the lock-free partition behind ShardedStore: an open-
// addressing hash table whose readers never take a lock. Writers are
// serialized by a per-partition mutex (the dataplane's shard affinity
// means there is normally exactly one writer per partition anyway, and
// the mutex keeps the store correct for arbitrary callers); readers use
// a per-slot sequence counter to detect torn reads and retry. See doc.go
// for the memory-model notes.

// Slot lifecycle states. A tombstone keeps its key/value pointers so a
// concurrent reader that loaded the slot mid-transition never chases a
// nil pointer; probes walk past tombstones, and a rehash purges them.
const (
	slotEmpty uint32 = iota // never written; terminates reader probes
	slotLive
	slotTomb // deleted or evicted; probes continue past it
)

// valWords is a value payload packed into little-endian 64-bit words
// (zero-padded tail) so readers can copy it with word-sized atomic
// loads. Mixed-version copies are possible and are caught by the seq
// validation, not by the loads themselves.
type valWords []atomic.Uint64

// slot is one table entry. Every field shared with lock-free readers is
// atomic: the race detector then sees only synchronized accesses, and
// the per-slot seq (even = stable, odd = write in progress or slot
// retired by a rehash) is what guards against *mixed-version* reads.
type slot struct {
	seq         atomic.Uint64
	state       atomic.Uint32
	ref         atomic.Uint32 // CLOCK reference bit; set on GET hit when bounded
	hash        atomic.Uint64
	key         atomic.Pointer[string]
	val         atomic.Pointer[valWords]
	vlen        atomic.Uint32
	flags       atomic.Uint32
	expires     atomic.Int64
	expObserved atomic.Uint32 // 0->1 CAS when a reader first sees this entry expired
}

// lfTable is one immutable-shape generation of a partition's table. The
// slots themselves mutate (in place, under the writer mutex); growth or
// tombstone purges build a new generation and poison the old one.
type lfTable struct {
	mask  uint64
	slots []slot
}

// partStats are the per-partition counters, padded so partitions pinned
// to different cores never false-share. Readers bump gets/hits/
// expirations; the writer bumps sets/deletes/evictions.
type partStats struct {
	_           [64]byte
	gets        atomic.Uint64
	hits        atomic.Uint64
	sets        atomic.Uint64
	deletes     atomic.Uint64
	evictions   atomic.Uint64
	expirations atomic.Uint64
	_           [64]byte
}

// partition is one shard of a ShardedStore: single-writer (enforced by
// mu), any number of lock-free readers.
type partition struct {
	mu    sync.Mutex // serializes writers; the read path never touches it
	table atomic.Pointer[lfTable]

	maxEntries int // entry bound, 0 = unbounded; writer-owned
	live       int // live entries; writer-owned
	tombs      int // tombstoned slots awaiting a purge; writer-owned
	hand       int // CLOCK hand; writer-owned

	sampler atomic.Pointer[telemetry.TopK] // hot-key sketch, nil unless enabled
	stats   partStats
}

const minTableSlots = 64

func newPartition(maxEntries int) *partition {
	p := &partition{maxEntries: maxEntries}
	size := minTableSlots
	// Bounded partitions size the table once so steady-state churn at
	// the bound never grows it: 2*bound keeps load at or below 1/2.
	for maxEntries > 0 && size < 2*maxEntries {
		size <<= 1
	}
	p.table.Store(&lfTable{mask: uint64(size - 1), slots: make([]slot, size)})
	return p
}

// eqBytesString compares a byte-slice key to a stored string key without
// allocating. Explicit loop: the read path must not depend on the
// compiler recognizing a string-conversion comparison idiom.
func eqBytesString(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}

// storeWords packs b into w (little-endian, zero-padded tail) with
// atomic stores, so a concurrent reader's word loads are synchronized;
// the writer's surrounding seq bracket is what makes the copy appear
// whole.
func storeWords(w valWords, b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		w[i>>3].Store(binary.LittleEndian.Uint64(b[i:]))
	}
	if i < len(b) {
		var tmp [8]byte
		copy(tmp[:], b[i:])
		w[i>>3].Store(binary.LittleEndian.Uint64(tmp[:]))
	}
}

// appendWords appends the first vlen bytes of w to dst.
func appendWords(dst []byte, w *valWords, vlen int) []byte {
	base := len(dst)
	var tmp [8]byte
	for i := 0; i < (vlen+7)>>3; i++ {
		binary.LittleEndian.PutUint64(tmp[:], (*w)[i].Load())
		dst = append(dst, tmp[:]...)
	}
	return dst[:base+vlen]
}

// read resolves key (with precomputed hash) at virtual time now without
// acquiring any lock. On a hit it appends either the raw value bytes or,
// with encode set, the full memcached "VALUE ... END" reply to dst.
//
// Reader protocol, per probe step (see doc.go for why each unvalidated
// continue is linearizable):
//   - odd seq        -> a writer is mid-update or the table generation
//     was retired; reload the table pointer and restart the probe
//   - empty slot     -> validate seq, then miss
//   - tombstone      -> continue probing, no validation needed
//   - hash/key mismatch -> continue probing, no validation needed
//   - matching live  -> copy header+value, then validate seq; a moved
//     seq means the copy may be torn, so drop it and restart
func (p *partition) read(dst []byte, key []byte, hash uint64, now simnet.Time, encode bool) (out []byte, flags uint32, expires int64, ok bool) {
	p.stats.gets.Add(1)
	out = dst
	mark := len(dst)
	spins := 0
retry:
	for {
		spins++
		if spins&63 == 0 {
			runtime.Gosched()
		}
		out = out[:mark]
		t := p.table.Load()
		idx := hash & t.mask
		for range t.slots {
			s := &t.slots[idx]
			seq := s.seq.Load()
			if seq&1 != 0 {
				continue retry
			}
			switch s.state.Load() {
			case slotEmpty:
				if s.seq.Load() != seq {
					continue retry
				}
				return out, 0, 0, false
			case slotLive:
				if s.hash.Load() != hash {
					break // different key; keep probing
				}
				kp := s.key.Load()
				if kp == nil {
					continue retry // mid-claim; seq will have moved
				}
				if !eqBytesString(key, *kp) {
					break
				}
				exp := s.expires.Load()
				if exp != 0 && int64(now) >= exp {
					if s.seq.Load() != seq {
						continue retry
					}
					// Readers cannot reap; count the expiration once
					// and leave the entry for Sweep.
					if s.expObserved.CompareAndSwap(0, 1) {
						p.stats.expirations.Add(1)
					}
					return out, 0, 0, false
				}
				fl := s.flags.Load()
				vl := int(s.vlen.Load())
				vp := s.val.Load()
				if (vp == nil && vl > 0) || (vp != nil && (vl+7)>>3 > len(*vp)) {
					continue retry // torn header/value pair
				}
				if encode {
					out = memcache.AppendValueHeader(out, key, fl, vl)
				}
				if vl > 0 {
					out = appendWords(out, vp, vl)
				}
				if encode {
					out = append(out, "\r\nEND\r\n"...)
				}
				if s.seq.Load() != seq {
					continue retry // torn value copy; drop and redo
				}
				h := p.stats.hits.Add(1)
				if p.maxEntries > 0 {
					s.ref.Store(1) // CLOCK touch
				}
				if sam := p.sampler.Load(); sam != nil && h&hotSampleMask == 0 {
					sam.Observe(hash, *kp)
				}
				return out, fl, exp, true
			case slotTomb:
				// Keep probing; no validation needed.
			}
			idx = (idx + 1) & t.mask
		}
		// Probed the whole table without an empty terminator (all
		// live+tomb): the key is not present.
		return out, 0, 0, false
	}
}

// hotSampleMask samples 1-in-8 GET hits into the hot-key sketch: the
// ranking is preserved (counts scale uniformly) and the hot path only
// pays the sketch scan on every 8th hit.
const hotSampleMask = 7

// contains reports whether key is live (expired or not) — the
// SetIfAbsent presence check, writer-locked by the caller.
func (t *lfTable) findForWrite(hash uint64, keyB []byte, keyS string, useB bool) (existing, claim *slot) {
	idx := hash & t.mask
	for range t.slots {
		s := &t.slots[idx]
		switch s.state.Load() {
		case slotEmpty:
			if claim == nil {
				claim = s
			}
			return nil, claim
		case slotTomb:
			if claim == nil {
				claim = s
			}
		case slotLive:
			if s.hash.Load() == hash {
				kp := s.key.Load()
				if useB && eqBytesString(keyB, *kp) || !useB && *kp == keyS {
					return s, nil
				}
			}
		}
		idx = (idx + 1) & t.mask
	}
	return nil, claim
}

// overwrite updates a live slot's payload in place. The seq bracket
// (odd while mutating) forces concurrent readers of this slot to retry.
func (p *partition) overwrite(s *slot, e Entry) {
	nw := (len(e.Value) + 7) >> 3
	s.seq.Add(1) // -> odd
	vp := s.val.Load()
	switch {
	case vp == nil || nw > cap(*vp):
		nv := make(valWords, nw)
		storeWords(nv, e.Value)
		s.val.Store(&nv)
	case nw != len(*vp):
		w := (*vp)[:nw]
		storeWords(w, e.Value)
		s.val.Store(&w)
	default:
		// Same word count: repack in place, zero allocations — the
		// steady-state overwrite path.
		storeWords(*vp, e.Value)
	}
	s.vlen.Store(uint32(len(e.Value)))
	s.flags.Store(e.Flags)
	s.expires.Store(e.Expires)
	s.expObserved.Store(0)
	s.seq.Add(1) // -> even, new generation
}

// insertAt claims an empty or tombstoned slot for key. The key string is
// boxed once and shared with the hot-key sketch thereafter.
func (p *partition) insertAt(s *slot, hash uint64, key string, e Entry) {
	wasTomb := s.state.Load() == slotTomb
	s.seq.Add(1) // -> odd
	s.hash.Store(hash)
	k := key
	s.key.Store(&k)
	nw := (len(e.Value) + 7) >> 3
	vp := s.val.Load() // a tombstone's retained array is reusable
	if vp == nil || nw > cap(*vp) {
		nv := make(valWords, nw)
		storeWords(nv, e.Value)
		s.val.Store(&nv)
	} else {
		w := (*vp)[:nw]
		storeWords(w, e.Value)
		s.val.Store(&w)
	}
	s.vlen.Store(uint32(len(e.Value)))
	s.flags.Store(e.Flags)
	s.expires.Store(e.Expires)
	s.expObserved.Store(0)
	// Fresh entries start with the reference bit clear: the CLOCK hand
	// grants a second chance only after the first GET touches them.
	s.ref.Store(0)
	s.state.Store(slotLive)
	s.seq.Add(1) // -> even
	if wasTomb {
		p.tombs--
	}
	p.live++
}

// tombstone retires a live slot, keeping its key/value pointers so
// concurrent readers never chase nil (a rehash purges the retained
// memory; retention is bounded by the table size).
func (p *partition) tombstone(s *slot) {
	s.seq.Add(1)
	s.state.Store(slotTomb)
	s.seq.Add(1)
	p.live--
	p.tombs++
}

// evict runs the CLOCK hand: clear reference bits until a live slot
// without one comes up, and tombstone it. Two full sweeps bound the
// walk — with no concurrent readers re-touching entries, the second
// sweep must find a cleared bit.
func (p *partition) evict(t *lfTable) {
	n := len(t.slots)
	for step := 0; step < 2*n; step++ {
		s := &t.slots[p.hand]
		p.hand++
		if p.hand == n {
			p.hand = 0
		}
		if s.state.Load() != slotLive {
			continue
		}
		if s.ref.Load() != 0 {
			s.ref.Store(0) // second chance
			continue
		}
		p.tombstone(s)
		p.stats.evictions.Add(1)
		return
	}
}

func (p *partition) needRehash(t *lfTable) bool {
	return (p.live+p.tombs+1)*8 >= len(t.slots)*7
}

// rehash rebuilds the table (growing if the live count warrants it),
// purging tombstones, then publishes the new generation and poisons
// every old slot. The poison — bumping each retired slot's seq to odd,
// forever — is load-bearing: value arrays alias between generations, so
// any reader still probing the old table must be made to fail seq
// validation before the writer mutates anything through the new one.
func (p *partition) rehash(told *lfTable) {
	size := len(told.slots)
	for p.live*4 >= size*2 { // keep live load at or below 1/2
		size <<= 1
	}
	nt := &lfTable{mask: uint64(size - 1), slots: make([]slot, size)}
	for i := range told.slots {
		s := &told.slots[i]
		if s.state.Load() != slotLive {
			continue
		}
		h := s.hash.Load()
		idx := h & nt.mask
		for nt.slots[idx].state.Load() == slotLive {
			idx = (idx + 1) & nt.mask
		}
		d := &nt.slots[idx]
		d.seq.Store(2) // even: stable from the moment of publication
		d.hash.Store(h)
		d.key.Store(s.key.Load())
		d.val.Store(s.val.Load()) // aliases the old generation; see poison
		d.vlen.Store(s.vlen.Load())
		d.flags.Store(s.flags.Load())
		d.expires.Store(s.expires.Load())
		d.expObserved.Store(s.expObserved.Load())
		d.ref.Store(s.ref.Load())
		d.state.Store(slotLive)
	}
	p.tombs = 0
	p.hand = 0
	p.table.Store(nt)
	for i := range told.slots {
		told.slots[i].seq.Add(1) // permanently odd: readers reload the table
	}
}

// setLocked is the insert/overwrite core; the caller holds p.mu and has
// already counted the set.
func (p *partition) setLocked(hash uint64, keyB []byte, keyS string, useB bool, e Entry) {
	t := p.table.Load()
	existing, claim := t.findForWrite(hash, keyB, keyS, useB)
	if existing != nil {
		p.overwrite(existing, e)
		return
	}
	if p.maxEntries > 0 && p.live >= p.maxEntries {
		p.evict(t)
	}
	if claim == nil || p.needRehash(t) {
		p.rehash(t)
		t = p.table.Load()
		_, claim = t.findForWrite(hash, keyB, keyS, useB)
	}
	if useB {
		keyS = string(keyB)
	}
	p.insertAt(claim, hash, keyS, e)
}

func (p *partition) set(hash uint64, keyB []byte, keyS string, useB bool, e Entry) {
	p.mu.Lock()
	p.stats.sets.Add(1)
	p.setLocked(hash, keyB, keyS, useB, e)
	p.mu.Unlock()
}

// setIfAbsent stores key only when no live entry (expired or not) holds
// it, mirroring the mutex store's Contains-guarded semantics.
func (p *partition) setIfAbsent(hash uint64, key string, e Entry) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.table.Load()
	if existing, _ := t.findForWrite(hash, nil, key, false); existing != nil {
		return false
	}
	p.stats.sets.Add(1)
	p.setLocked(hash, nil, key, false, e)
	return true
}

func (p *partition) del(hash uint64, keyB []byte, keyS string, useB bool) bool {
	p.mu.Lock()
	p.stats.deletes.Add(1)
	t := p.table.Load()
	existing, _ := t.findForWrite(hash, keyB, keyS, useB)
	if existing == nil {
		p.mu.Unlock()
		return false
	}
	p.tombstone(existing)
	p.mu.Unlock()
	return true
}

// sweep reaps expired entries, counting each at most once (readers may
// have observed — and counted — an expiry before the sweep reaps it).
func (p *partition) sweep(now simnet.Time) int {
	p.mu.Lock()
	t := p.table.Load()
	n := 0
	for i := range t.slots {
		s := &t.slots[i]
		if s.state.Load() != slotLive {
			continue
		}
		exp := s.expires.Load()
		if exp != 0 && int64(now) >= exp {
			if s.expObserved.CompareAndSwap(0, 1) {
				p.stats.expirations.Add(1)
			}
			p.tombstone(s)
			n++
		}
	}
	p.mu.Unlock()
	return n
}

// rangeAll walks every live entry (slot order) under the writer lock,
// handing fn a fresh copy of each value. Returns false if fn stopped
// the walk.
func (p *partition) rangeAll(fn func(key string, e Entry) bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.table.Load()
	for i := range t.slots {
		s := &t.slots[i]
		if s.state.Load() != slotLive {
			continue
		}
		vl := int(s.vlen.Load())
		e := Entry{
			Flags:   s.flags.Load(),
			Value:   appendWords(make([]byte, 0, vl), s.val.Load(), vl),
			Expires: s.expires.Load(),
		}
		if !fn(*s.key.Load(), e) {
			return false
		}
	}
	return true
}

func (p *partition) len() int {
	p.mu.Lock()
	n := p.live
	p.mu.Unlock()
	return n
}

func (p *partition) statsSnapshot() StoreStats {
	return StoreStats{
		Gets:        p.stats.gets.Load(),
		Hits:        p.stats.hits.Load(),
		Sets:        p.stats.sets.Load(),
		Deletes:     p.stats.deletes.Load(),
		Evictions:   p.stats.evictions.Load(),
		Expirations: p.stats.expirations.Load(),
	}
}
