package kvs

import (
	"time"

	"incod/internal/memcache"
	"incod/internal/power"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// MemcachedPort is the UDP port the packet classifier matches (§3.1).
const MemcachedPort = 11211

// SoftServer is the host-software memcached deployment: a simulated-network
// node that parses memcached UDP datagrams, serves them from a Store with
// the §5.3 software latency profile, and draws power according to a §4
// software curve. It doubles as the backend LaKe forwards misses to.
type SoftServer struct {
	addr  simnet.Addr
	sim   *simnet.Simulator
	net   *simnet.Network
	store *Store
	curve power.SoftwareCurve

	rate     *telemetry.RateMeter
	Latency  *telemetry.Histogram
	Counters *telemetry.Counters
}

// NewSoftServer creates a server at addr using the given power curve and
// attaches it to the network.
func NewSoftServer(net *simnet.Network, addr simnet.Addr, curve power.SoftwareCurve) *SoftServer {
	s := &SoftServer{
		addr:     addr,
		sim:      net.Sim(),
		net:      net,
		store:    NewStore(),
		curve:    curve,
		rate:     telemetry.NewRateMeter(10*time.Millisecond, 100),
		Latency:  telemetry.NewHistogram(),
		Counters: telemetry.NewCounters(),
	}
	net.Attach(s)
	return s
}

// Addr implements simnet.Node.
func (s *SoftServer) Addr() simnet.Addr { return s.addr }

// Store exposes the authoritative store (for preloading datasets).
func (s *SoftServer) Store() *Store { return s.store }

// RateKpps returns the measured request rate over the sliding window.
func (s *SoftServer) RateKpps() float64 { return s.rate.Rate(s.sim.Now()) / 1000 }

// Utilization returns the fraction of the software peak in use.
func (s *SoftServer) Utilization() float64 { return s.curve.Utilization(s.RateKpps()) }

// PowerWatts implements telemetry.PowerSource: whole-server wall power at
// the current measured rate.
func (s *SoftServer) PowerWatts(now simnet.Time) float64 {
	return s.curve.Power(s.rate.Rate(now) / 1000)
}

// Process applies one request against the store and returns the response
// plus the software service latency. LaKe calls this across PCIe for
// misses; Receive uses it for direct network service.
func (s *SoftServer) Process(req memcache.Request) (memcache.Response, time.Duration) {
	s.rate.Add(s.sim.Now(), 1)
	resp := s.store.Apply(req, s.sim.Now())
	lat := softLatency(s.sim.Rand(), s.Utilization())
	s.Latency.Observe(lat)
	return resp, lat
}

// Receive implements simnet.Node: parse, serve, reply. Offered load beyond
// the software peak is shed (the server saturates, §4.2).
func (s *SoftServer) Receive(pkt *simnet.Packet) {
	if pkt.DstPort != MemcachedPort {
		s.Counters.Inc("non_kvs", 1)
		return
	}
	// Saturation: drop the excess offered load probabilistically.
	if u := s.Utilization(); u >= 1 {
		rate := s.RateKpps()
		if rate > s.curve.PeakKpps && s.sim.Rand().Float64() > s.curve.PeakKpps/rate {
			s.Counters.Inc("dropped", 1)
			return
		}
	}
	frame, body, err := memcache.DecodeFrame(pkt.Payload)
	if err != nil {
		s.Counters.Inc("bad_frame", 1)
		return
	}
	req, err := memcache.ParseRequest(body)
	if err != nil {
		s.Counters.Inc("bad_request", 1)
		s.reply(pkt, frame, memcache.Response{Status: memcache.StatusError}, softLatency(s.sim.Rand(), s.Utilization()))
		return
	}
	s.Counters.Inc(req.Op.String(), 1)
	resp, lat := s.Process(req)
	s.reply(pkt, frame, resp, lat)
}

func (s *SoftServer) reply(pkt *simnet.Packet, frame memcache.Frame, resp memcache.Response, after time.Duration) {
	src, srcPort := pkt.Src, pkt.SrcPort
	s.sim.Schedule(after, func() {
		s.net.Send(&simnet.Packet{
			Src:     s.addr,
			Dst:     src,
			SrcPort: MemcachedPort,
			DstPort: srcPort,
			Payload: memcache.EncodeFrame(memcache.Frame{RequestID: frame.RequestID, Total: 1}, memcache.EncodeResponse(resp)),
		})
	})
}
