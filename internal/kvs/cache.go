// This file holds the key-value store case study types (§3.1): the
// memcached-semantics Entry, and LaKe, the layered hardware key-value
// cache (L1 in on-chip BRAM, L2 in board DRAM, misses forwarded to the
// host software). The package comment lives in doc.go.

package kvs

import (
	"container/list"
)

// Entry is a stored value with its memcached metadata.
type Entry struct {
	Flags   uint32
	Value   []byte
	Expires int64 // virtual nanoseconds; 0 means no expiry
}

// Cache is a bounded LRU map used for LaKe's L1 (BRAM) and L2 (DRAM)
// layers. A zero capacity means unbounded.
type Cache struct {
	capacity  int
	items     map[string]*list.Element
	order     *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheItem struct {
	key   string
	entry Entry
}

// NewCache returns an LRU cache bounded to capacity entries.
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		items:    make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int { return len(c.items) }

// Capacity returns the configured bound (0 = unbounded).
func (c *Cache) Capacity() int { return c.capacity }

// Get returns the entry for key and whether it was present, updating
// recency. Expiry is the caller's concern (virtual time lives above).
func (c *Cache) Get(key string) (Entry, bool) {
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return Entry{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).entry, true
}

// Peek returns the entry without updating recency or hit counters.
func (c *Cache) Peek(key string) (Entry, bool) {
	el, ok := c.items[key]
	if !ok {
		return Entry{}, false
	}
	return el.Value.(*cacheItem).entry, true
}

// Put inserts or updates key, evicting the least recently used entry if
// the cache is full.
func (c *Cache) Put(key string, e Entry) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).entry = e
		c.order.MoveToFront(el)
		return
	}
	if c.capacity > 0 && len(c.items) >= c.capacity {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheItem).key)
			c.evictions++
		}
	}
	c.items[key] = c.order.PushFront(&cacheItem{key: key, entry: e})
}

// Delete removes key, reporting whether it was present.
func (c *Cache) Delete(key string) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, key)
	return true
}

// Flush removes every entry (the cache-cold state after LaKe's memories
// come out of reset, §9.2).
func (c *Cache) Flush() {
	c.items = make(map[string]*list.Element)
	c.order.Init()
}

// Stats returns lifetime hits, misses and evictions.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}
