package kvs

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestCachePutGet(t *testing.T) {
	c := NewCache(10)
	c.Put("a", Entry{Value: []byte("1")})
	e, ok := c.Get("a")
	if !ok || string(e.Value) != "1" {
		t.Fatalf("Get(a) = %+v, %v", e, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("Get(b) should miss")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestCacheUpdateKeepsSize(t *testing.T) {
	c := NewCache(2)
	c.Put("a", Entry{Value: []byte("1")})
	c.Put("a", Entry{Value: []byte("2")})
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	e, _ := c.Get("a")
	if string(e.Value) != "2" {
		t.Error("update did not replace value")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", Entry{})
	c.Put("b", Entry{})
	c.Get("a") // a is now most recent
	c.Put("c", Entry{})
	if _, ok := c.Peek("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Error("a should have survived")
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestCacheDeleteAndFlush(t *testing.T) {
	c := NewCache(4)
	c.Put("a", Entry{})
	if !c.Delete("a") {
		t.Error("Delete(a) should report true")
	}
	if c.Delete("a") {
		t.Error("second Delete(a) should report false")
	}
	c.Put("x", Entry{})
	c.Put("y", Entry{})
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("Len after Flush = %d", c.Len())
	}
	// Cache still usable after flush.
	c.Put("z", Entry{})
	if _, ok := c.Get("z"); !ok {
		t.Error("cache broken after Flush")
	}
}

func TestCacheUnbounded(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprint(i), Entry{})
	}
	if c.Len() != 1000 {
		t.Errorf("unbounded cache evicted: Len = %d", c.Len())
	}
}

func TestCachePeekDoesNotTouchRecency(t *testing.T) {
	c := NewCache(2)
	c.Put("a", Entry{})
	c.Put("b", Entry{})
	c.Peek("a") // must NOT refresh a
	c.Put("c", Entry{})
	if _, ok := c.Peek("a"); ok {
		t.Error("Peek should not have protected a from eviction")
	}
}

// Property: the cache never exceeds its capacity and a just-inserted key is
// always retrievable.
func TestCacheCapacityProperty(t *testing.T) {
	f := func(keys []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		c := NewCache(capacity)
		for _, k := range keys {
			key := fmt.Sprint(k)
			c.Put(key, Entry{Value: []byte{k}})
			if c.Len() > capacity {
				return false
			}
			if _, ok := c.Get(key); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
