package kvs

import (
	"fmt"
	"time"

	"incod/internal/memcache"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// Client is a mutilate-style memcached load generator (§9.2 uses mutilate
// with the Facebook ETC arrival distribution). It issues GETs (and an
// optional SET fraction) against a server address at a controlled rate and
// records end-to-end latency.
type Client struct {
	addr   simnet.Addr
	server simnet.Addr
	sim    *simnet.Simulator
	net    *simnet.Network

	// KeyFunc picks the key for each request (e.g. a Zipf sampler).
	KeyFunc func() string
	// SetFraction of requests are SETs; the rest are GETs.
	SetFraction float64
	// ValueSize is the SET payload size in bytes.
	ValueSize int
	// Poisson selects exponential (true) or uniform (false) interarrival.
	Poisson bool

	nextID  uint16
	pending map[uint16]simnet.Time

	Latency  *telemetry.Histogram
	Counters *telemetry.Counters
	cancel   func()
}

// NewClient attaches a client node at addr targeting server.
func NewClient(net *simnet.Network, addr, server simnet.Addr) *Client {
	c := &Client{
		addr:     addr,
		server:   server,
		sim:      net.Sim(),
		net:      net,
		KeyFunc:  func() string { return "key" },
		Poisson:  true,
		pending:  make(map[uint16]simnet.Time),
		Latency:  telemetry.NewHistogram(),
		Counters: telemetry.NewCounters(),
	}
	net.Attach(c)
	return c
}

// Addr implements simnet.Node.
func (c *Client) Addr() simnet.Addr { return c.addr }

// Preload stores n sequentially named keys ("key-0".."key-n-1") of size
// bytes directly via SETs, so caches and stores have data to hit.
func (c *Client) Preload(n, size int) {
	for i := 0; i < n; i++ {
		c.sendRequest(memcache.Request{
			Op:    memcache.OpSet,
			Key:   fmt.Sprintf("key-%d", i),
			Value: make([]byte, size),
		})
	}
}

// Start begins issuing requests at the given rate (kpps) until Stop.
func (c *Client) Start(rateKpps float64) {
	c.Stop()
	if rateKpps <= 0 {
		return
	}
	meanGap := time.Duration(float64(time.Second) / (rateKpps * 1000))
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		c.sendNext()
		gap := meanGap
		if c.Poisson {
			gap = time.Duration(c.sim.Rand().ExpFloat64() * float64(meanGap))
			if gap <= 0 {
				gap = time.Nanosecond
			}
		}
		c.sim.Schedule(gap, tick)
	}
	c.sim.Schedule(meanGap, tick)
	c.cancel = func() { stopped = true }
}

// Stop halts the request stream.
func (c *Client) Stop() {
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
}

func (c *Client) sendNext() {
	req := memcache.Request{Op: memcache.OpGet, Key: c.KeyFunc()}
	if c.SetFraction > 0 && c.sim.Rand().Float64() < c.SetFraction {
		req = memcache.Request{Op: memcache.OpSet, Key: c.KeyFunc(), Value: make([]byte, c.valueSize())}
	}
	c.sendRequest(req)
}

func (c *Client) valueSize() int {
	if c.ValueSize > 0 {
		return c.ValueSize
	}
	return 64
}

func (c *Client) sendRequest(req memcache.Request) {
	c.nextID++
	id := c.nextID
	c.pending[id] = c.sim.Now()
	c.Counters.Inc("sent", 1)
	c.net.Send(&simnet.Packet{
		Src:     c.addr,
		Dst:     c.server,
		SrcPort: 40000,
		DstPort: MemcachedPort,
		Payload: memcache.EncodeFrame(memcache.Frame{RequestID: id, Total: 1}, memcache.EncodeRequest(req)),
	})
}

// Receive implements simnet.Node: match responses and record latency.
func (c *Client) Receive(pkt *simnet.Packet) {
	frame, body, err := memcache.DecodeFrame(pkt.Payload)
	if err != nil {
		c.Counters.Inc("bad_frame", 1)
		return
	}
	sent, ok := c.pending[frame.RequestID]
	if !ok {
		c.Counters.Inc("unmatched", 1)
		return
	}
	delete(c.pending, frame.RequestID)
	c.Latency.Observe(c.sim.Now().Sub(sent))
	resp, err := memcache.ParseResponse(body)
	if err != nil {
		c.Counters.Inc("bad_response", 1)
		return
	}
	c.Counters.Inc("recv", 1)
	if resp.Hit {
		c.Counters.Inc("hit", 1)
	}
}

// Outstanding returns the number of unanswered requests.
func (c *Client) Outstanding() int { return len(c.pending) }

// Retarget points subsequent requests at a new server address (used when
// the on-demand controller moves the service).
func (c *Client) Retarget(server simnet.Addr) { c.server = server }
