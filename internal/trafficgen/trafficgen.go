// Package trafficgen provides the workload generators the experiments
// drive clients with: Zipf key popularity and the Facebook "ETC" workload
// shape (§9.2 replaces OSNT with "a mutilate based memcached client, using
// the Facebook ETC arrival distribution"), plus piecewise rate profiles
// for the timeline experiments.
package trafficgen

import (
	"fmt"
	"math/rand"
	"time"

	"incod/internal/simnet"
)

// KeySampler yields keys with a configured popularity distribution.
type KeySampler struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    uint64
}

// NewZipfKeys samples from n keys with Zipf skew s (s > 1; the Facebook
// ETC pool is highly skewed — Atikoglu et al. report a small fraction of
// keys taking most accesses).
func NewZipfKeys(rng *rand.Rand, n uint64, s float64) *KeySampler {
	if n == 0 {
		n = 1
	}
	if s <= 1 {
		s = 1.01
	}
	return &KeySampler{rng: rng, zipf: rand.NewZipf(rng, s, 1, n-1), n: n}
}

// Next returns the next key ("key-<i>").
func (k *KeySampler) Next() string { return fmt.Sprintf("key-%d", k.zipf.Uint64()) }

// NextIndex returns the next key index.
func (k *KeySampler) NextIndex() uint64 { return k.zipf.Uint64() }

// KeySpace returns the number of distinct keys.
func (k *KeySampler) KeySpace() uint64 { return k.n }

// ETC models the Facebook ETC workload statistics used in §5.3 and §9.2:
// GET-dominated traffic over a large, skewed key pool with small values.
type ETC struct {
	Keys *KeySampler
	rng  *rand.Rand
	// GetFraction of operations are GETs (ETC is ~30:1 GET:SET).
	GetFraction float64
}

// NewETC builds the workload over n keys.
func NewETC(rng *rand.Rand, n uint64) *ETC {
	return &ETC{Keys: NewZipfKeys(rng, n, 1.06), rng: rng, GetFraction: 1 - 1.0/30}
}

// IsGet draws the operation type.
func (e *ETC) IsGet() bool { return e.rng.Float64() < e.GetFraction }

// ValueSize draws a value size in bytes: ETC values are small (tens to a
// few hundred bytes), matching LaKe's 64 B value-chunk sizing (§5.3).
func (e *ETC) ValueSize() int {
	// Log-normal-ish: mostly 16-300 B with a thin tail to 1 KiB.
	v := int(e.rng.ExpFloat64() * 90)
	if v < 16 {
		v = 16
	}
	if v > 1024 {
		v = 1024
	}
	return v
}

// UniqueKeyStats is the §5.3 citation of the ETC analysis: "the number of
// unique keys requested every hour is in the order of 1e9-1e11, with the
// percentage of unique keys requested ranging from 3% to 35%". These
// bounds drive the §5.3 conclusion that KVS wants external memories.
type UniqueKeyStats struct {
	UniqueKeysPerHourLow  float64
	UniqueKeysPerHourHigh float64
	UniqueFractionLow     float64
	UniqueFractionHigh    float64
}

// ETCUniqueKeys returns the published bounds.
func ETCUniqueKeys() UniqueKeyStats {
	return UniqueKeyStats{
		UniqueKeysPerHourLow:  1e9,
		UniqueKeysPerHourHigh: 1e11,
		UniqueFractionLow:     0.03,
		UniqueFractionHigh:    0.35,
	}
}

// Segment is one piece of a rate profile.
type Segment struct {
	Duration time.Duration
	Kpps     float64
}

// Profile is a piecewise-constant offered-load schedule.
type Profile []Segment

// Total returns the profile's duration.
func (p Profile) Total() time.Duration {
	var d time.Duration
	for _, s := range p {
		d += s.Duration
	}
	return d
}

// RateAt returns the offered rate at time t into the profile (0 after the
// end).
func (p Profile) RateAt(t time.Duration) float64 {
	for _, s := range p {
		if t < s.Duration {
			return s.Kpps
		}
		t -= s.Duration
	}
	return 0
}

// Apply schedules setRate calls on the simulator for each segment
// boundary, starting now. It returns the end time.
func (p Profile) Apply(sim *simnet.Simulator, setRate func(kpps float64)) simnet.Time {
	at := time.Duration(0)
	for _, seg := range p {
		s := seg
		sim.Schedule(at, func() { setRate(s.Kpps) })
		at += s.Duration
	}
	end := sim.Now().Add(at)
	sim.Schedule(at, func() { setRate(0) })
	return end
}

// StepUpDown is the Figure 6-style profile: low, then a sustained high
// plateau, then low again.
func StepUpDown(low, high float64, lowD, highD time.Duration) Profile {
	return Profile{
		{Duration: lowD, Kpps: low},
		{Duration: highD, Kpps: high},
		{Duration: lowD, Kpps: low},
	}
}

// Ramp builds an n-step staircase from 0 to peak, each step holding d —
// the §4 measurement sweep ("starting with an idle system, and then
// gradually increasing the query rate").
func Ramp(peak float64, n int, d time.Duration) Profile {
	if n < 1 {
		n = 1
	}
	p := make(Profile, n)
	for i := range p {
		p[i] = Segment{Duration: d, Kpps: peak * float64(i+1) / float64(n)}
	}
	return p
}
