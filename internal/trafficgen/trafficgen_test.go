package trafficgen

import (
	"math/rand"
	"testing"
	"time"

	"incod/internal/simnet"
)

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := NewZipfKeys(rng, 10000, 1.1)
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		counts[k.NextIndex()]++
	}
	// The hottest key should take a disproportionate share.
	if counts[0] < 100000/100 {
		t.Errorf("hottest key got %d of 100000, want heavy skew", counts[0])
	}
	if k.KeySpace() != 10000 {
		t.Errorf("KeySpace = %d", k.KeySpace())
	}
	if k.Next() == "" {
		t.Error("Next() returned empty key")
	}
}

func TestZipfDegenerateParams(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := NewZipfKeys(rng, 0, 0.5) // clamped to n=1, s>1
	for i := 0; i < 10; i++ {
		if k.NextIndex() != 0 {
			t.Fatal("single-key sampler must return key 0")
		}
	}
}

func TestETCShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	etc := NewETC(rng, 1_000_000)
	gets := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if etc.IsGet() {
			gets++
		}
	}
	frac := float64(gets) / n
	// ~30:1 GET:SET.
	if frac < 0.94 || frac > 0.99 {
		t.Errorf("GET fraction = %v, want ~0.967", frac)
	}
	for i := 0; i < 1000; i++ {
		v := etc.ValueSize()
		if v < 16 || v > 1024 {
			t.Fatalf("value size %d out of [16, 1024]", v)
		}
	}
}

func TestETCUniqueKeysBounds(t *testing.T) {
	s := ETCUniqueKeys()
	if s.UniqueKeysPerHourLow != 1e9 || s.UniqueKeysPerHourHigh != 1e11 {
		t.Error("unique keys/hour bounds wrong")
	}
	if s.UniqueFractionLow != 0.03 || s.UniqueFractionHigh != 0.35 {
		t.Error("unique fraction bounds wrong")
	}
}

func TestProfileRateAt(t *testing.T) {
	p := StepUpDown(2, 16, time.Second, 3*time.Second)
	if p.Total() != 5*time.Second {
		t.Errorf("Total = %v", p.Total())
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 2}, {500 * time.Millisecond, 2}, {time.Second, 16},
		{3 * time.Second, 16}, {4500 * time.Millisecond, 2}, {6 * time.Second, 0},
	}
	for _, tc := range cases {
		if got := p.RateAt(tc.at); got != tc.want {
			t.Errorf("RateAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestProfileApply(t *testing.T) {
	sim := simnet.New(1)
	var rates []float64
	p := Profile{{Duration: time.Second, Kpps: 5}, {Duration: time.Second, Kpps: 10}}
	end := p.Apply(sim, func(k float64) { rates = append(rates, k) })
	sim.Run()
	want := []float64{5, 10, 0}
	if len(rates) != len(want) {
		t.Fatalf("rates = %v, want %v", rates, want)
	}
	for i := range want {
		if rates[i] != want[i] {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
	if end != simnet.Time(2*time.Second) {
		t.Errorf("end = %v, want 2s", end)
	}
}

func TestRamp(t *testing.T) {
	p := Ramp(100, 4, time.Second)
	if len(p) != 4 || p[0].Kpps != 25 || p[3].Kpps != 100 {
		t.Errorf("Ramp = %v", p)
	}
	if p := Ramp(100, 0, time.Second); len(p) != 1 {
		t.Error("Ramp should clamp to at least one step")
	}
}
