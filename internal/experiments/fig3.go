package experiments

import (
	"incod/internal/fpga"
	"incod/internal/power"
)

// serverIdleWatts is the §4 i7 server's idle wall power including NIC.
const serverIdleWatts = 39

// lakePower returns the §4.2 combined LaKe measurement: server + card.
// With a warm cache every query is a hit, so the server stays idle.
func lakePower(kpps float64) float64 {
	b := fpga.NewBoard(fpga.LaKeDesign)
	return serverIdleWatts + b.CardWatts(kpps/b.PeakKpps())
}

// lakeStandalone is the host-less board.
func lakeStandalone(kpps float64) float64 {
	b := fpga.NewBoard(fpga.LaKeDesign)
	b.SetStandalone(true)
	return b.CardWatts(kpps / b.PeakKpps())
}

func p4xosPower(kpps float64) float64 {
	b := fpga.NewBoard(fpga.P4xosDesign)
	return serverIdleWatts + b.CardWatts(kpps/b.PeakKpps())
}

func p4xosStandalone(kpps float64) float64 {
	b := fpga.NewBoard(fpga.P4xosDesign)
	b.SetStandalone(true)
	return b.CardWatts(kpps / b.PeakKpps())
}

func emuPower(kpps float64) float64 {
	b := fpga.NewBoard(fpga.EmuDNSDesign)
	return serverIdleWatts + b.CardWatts(kpps/b.PeakKpps())
}

func emuStandalone(kpps float64) float64 {
	b := fpga.NewBoard(fpga.EmuDNSDesign)
	b.SetStandalone(true)
	return b.CardWatts(kpps / b.PeakKpps())
}

func init() {
	register("fig3a", "KVS power vs throughput (memcached vs LaKe)", fig3a)
	register("fig3b", "Paxos power vs throughput (libpaxos/DPDK/P4xos)", fig3b)
	register("fig3c", "DNS power vs throughput (NSD vs Emu)", fig3c)
}

func fig3a() *Table {
	t := &Table{
		ID:      "fig3a",
		Title:   "Figure 3(a): KVS power vs throughput",
		Columns: []string{"kpps", "memcached[W]", "LaKe[W]", "LaKe-standalone[W]"},
	}
	for kpps := 0.0; kpps <= 2000; kpps += 100 {
		t.AddRow(kpps, power.MemcachedMellanox.Power(kpps), lakePower(kpps), lakeStandalone(kpps))
	}
	// §4.2: LaKe reaches full line rate at the same power.
	t.AddRow(float64(fpga.LineRateKpps), "n/a (sw peak 1000)", lakePower(fpga.LineRateKpps), lakeStandalone(fpga.LineRateKpps))
	cross := power.Crossover(power.MemcachedMellanox.Power, lakePower, 2000)
	t.AddNote("crossover at %.0f kpps (paper: ~80 kpps)", cross)
	crossIntel := power.Crossover(power.MemcachedIntelX520.Power, lakePower, 2000)
	t.AddNote("with Intel X520 NIC the crossover moves to %.0f kpps (paper: >300 kpps)", crossIntel)
	// §3.1: LaKe provides "x24 power efficiency improvement compared to
	// software-based memcached" — queries/W at each system's peak.
	lakeEff := fpga.LineRateKpps / lakePower(fpga.LineRateKpps)
	swEff := power.MemcachedMellanox.PeakKpps / power.MemcachedMellanox.Power(power.MemcachedMellanox.PeakKpps)
	t.AddNote("peak efficiency: LaKe %.0f qps/W vs memcached %.0f qps/W = x%.0f (paper: x24)",
		lakeEff*1000, swEff*1000, lakeEff/swEff)
	return t
}

func fig3b() *Table {
	t := &Table{
		ID:    "fig3b",
		Title: "Figure 3(b): Paxos power vs throughput",
		Columns: []string{"kpps", "libpaxos-leader[W]", "dpdk-leader[W]", "p4xos-leader[W]",
			"standalone-leader[W]", "libpaxos-acceptor[W]", "dpdk-acceptor[W]",
			"p4xos-acceptor[W]", "standalone-acceptor[W]"},
	}
	for kpps := 0.0; kpps <= 1000; kpps += 50 {
		t.AddRow(kpps,
			power.LibpaxosLeader.Power(kpps), power.DPDKLeader.Power(kpps),
			p4xosPower(kpps), p4xosStandalone(kpps),
			power.LibpaxosAcceptor.Power(kpps), power.DPDKAcceptor.Power(kpps),
			p4xosPower(kpps), p4xosStandalone(kpps))
	}
	cross := power.Crossover(power.LibpaxosLeader.Power, p4xosPower, 1000)
	t.AddNote("crossover at %.0f kpps (paper: ~150 kpps)", cross)
	t.AddNote("P4xos standalone idle %.1f W, dynamic <= 1.2 W (paper: 18.2 W, 1.2 W)", p4xosStandalone(0))
	return t
}

func fig3c() *Table {
	t := &Table{
		ID:      "fig3c",
		Title:   "Figure 3(c): DNS power vs throughput",
		Columns: []string{"kpps", "NSD[W]", "Emu[W]", "Emu-standalone[W]"},
	}
	for kpps := 0.0; kpps <= 1000; kpps += 50 {
		t.AddRow(kpps, power.NSDServer.Power(kpps), emuPower(kpps), emuStandalone(kpps))
	}
	cross := power.Crossover(power.NSDServer.Power, emuPower, 1000)
	t.AddNote("crossover at %.0f kpps (paper: <200 kpps)", cross)
	t.AddNote("Emu total %.1f-%.1f W idle->full (paper: 47.5 -> <48 W)", emuPower(0), emuPower(1000))
	t.AddNote("NSD at peak %.1f W ~ 2x Emu's (paper: twice Emu's power)", power.NSDServer.Power(956))
	return t
}
