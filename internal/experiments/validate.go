package experiments

import (
	"fmt"
	"math"
	"time"

	"incod/internal/kvs"
	"incod/internal/power"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

func init() {
	register("validate", "Model-vs-simulation cross check (methodology)", validateTable)
}

// validateTable closes the loop between the calibrated analytic curves
// (which the Figure 3/5 sweeps evaluate) and the live discrete-event
// system: it drives the full KVS simulation at several rates and compares
// the metered wall power against the model the sweeps use. Disagreement
// beyond a watt would mean the figures no longer describe the system that
// the transition experiments (Figures 6/7) actually run.
func validateTable() *Table {
	t := &Table{
		ID:      "validate",
		Title:   "Model vs live simulation: combined KVS power",
		Columns: []string{"kpps", "model[W]", "simulated[W]", "delta[W]"},
	}
	for _, kpps := range []float64{0, 50, 200, 500} {
		model := lakePower(kpps)
		sim := simulateKVSPower(kpps)
		t.AddRow(kpps, model, sim, math.Abs(model-sim))
	}
	t.AddNote("the simulated column meters the live client->LaKe->host system with the telemetry.PowerMeter (SHW-3A stand-in)")
	return t
}

// simulateKVSPower runs the live system at the offered rate for 2.5
// virtual seconds (past the 1s rate-meter window) and returns the average
// metered power over the final second.
func simulateKVSPower(kpps float64) float64 {
	sim := simnet.New(1701)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	backend := kvs.NewSoftServer(net, "host", power.MemcachedMellanox)
	lake := kvs.NewLaKe(net, "lake", backend)
	client := kvs.NewClient(net, "client", "lake")
	for i := 0; i < 100; i++ {
		backend.Store().Set(fmt.Sprintf("key-%d", i), kvs.Entry{Value: make([]byte, 64)})
	}
	i := 0
	client.KeyFunc = func() string { i++; return fmt.Sprintf("key-%d", i%100) }

	combined := telemetry.SumPower{backend, lake}
	if kpps > 0 {
		client.Start(kpps)
	}
	sim.RunFor(1500 * time.Millisecond) // warm-up past the meter window
	meter := telemetry.NewPowerMeter(sim, combined, 10*time.Millisecond, false)
	sim.RunFor(time.Second)
	client.Stop()
	return meter.AverageWatts()
}
