package experiments

import (
	"time"

	"incod/internal/paxos"
	"incod/internal/simnet"
)

func init() {
	register("fig7", "Paxos leader software<->hardware shift timeline (Figure 7)", fig7)
}

// Fig7Result carries the timeline plus the §9.2 shape anchors.
type Fig7Result struct {
	Table *Table
	// StallMs is the longest zero-throughput interval around the first
	// shift (paper: ~100 ms, "the value of the client timeout").
	StallMs float64
	// SWLatency / HWLatency are steady-phase medians.
	SWLatency, HWLatency time.Duration
	// SWRate / HWRate are steady-phase decision rates (kpps).
	SWRate, HWRate float64
	Gaps           int
}

// RunFig7 reproduces Figure 7: consensus throughput and latency over time
// as the leader shifts from software to hardware (t=1.5s) and back
// (t=3.5s), with a 100 ms client retry timeout.
func RunFig7() *Fig7Result {
	sim := simnet.New(77)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	dep := paxos.NewDeployment(net, paxos.Config{NumClients: 4})
	for _, c := range dep.Clients {
		c.RetryTimeout = 100 * time.Millisecond
	}
	c := dep.Clients[0]

	t := &Table{
		ID:      "fig7",
		Title:   "Figure 7: transitioning the Paxos leader",
		Columns: []string{"t[ms]", "throughput[kpps]", "latency[us]", "leader"},
	}

	shifts := []struct {
		at time.Duration
		to *paxos.Leader
	}{
		{1500 * time.Millisecond, dep.HWLeader},
		{3500 * time.Millisecond, dep.SWLeader},
	}
	for _, s := range shifts {
		s := s
		sim.Schedule(s.at, func() { dep.ShiftLeader(s.to) })
	}

	// Closed-loop clients, mutilate style: throughput is concurrency/RTT,
	// so the hardware leader's lower latency directly raises throughput,
	// and a shift burns every outstanding request for one full client
	// timeout — the Figure 7 mechanics.
	for _, cl := range dep.Clients {
		cl.StartClosedLoop(1)
	}
	const interval = 50 * time.Millisecond
	var (
		lastDecided uint64
		res         = &Fig7Result{Table: t}
		stallRun    float64
	)
	for now := time.Duration(0); now < 5*time.Second; now += interval {
		sim.RunFor(interval)
		decided := dep.Learner.Counters.Get("decided")
		kpps := float64(decided-lastDecided) / interval.Seconds() / 1000
		lastDecided = decided
		med := c.Latency.Median()
		c.Latency.Reset()
		leader := "software"
		if dep.CurrentLeader() == dep.HWLeader {
			leader = "hardware"
		}
		t.AddRow(sim.Now().Seconds()*1000, kpps, float64(med)/1000, leader)

		// Track the stall around shifts and the steady-phase stats.
		switch {
		case kpps == 0 && sim.Now().Seconds() > 1:
			stallRun += interval.Seconds() * 1000
			if stallRun > res.StallMs {
				res.StallMs = stallRun
			}
		default:
			stallRun = 0
		}
		tms := sim.Now().Seconds() * 1000
		if tms > 1000 && tms <= 1500 && med > 0 {
			res.SWLatency = med
			res.SWRate = kpps
		}
		if tms > 2500 && tms <= 3500 && med > 0 {
			res.HWLatency = med
			res.HWRate = kpps
		}
	}
	for _, cl := range dep.Clients {
		cl.Stop()
	}
	sim.RunFor(time.Second)
	res.Gaps = len(dep.Learner.Gaps())

	t.AddNote("throughput stall around shift: %.0f ms (paper: ~100 ms = client timeout)", res.StallMs)
	if res.HWLatency > 0 {
		t.AddNote("latency %.0fus (sw) -> %.0fus (hw): %.1fx (paper: 'latency is halved')",
			float64(res.SWLatency)/1000, float64(res.HWLatency)/1000,
			float64(res.SWLatency)/float64(res.HWLatency))
	}
	t.AddNote("throughput %.1f kpps (sw) -> %.1f kpps (hw) (paper: 'throughput increases')", res.SWRate, res.HWRate)
	t.AddNote("instance gaps after recovery: %d (no-op fills allowed)", res.Gaps)
	return res
}

func fig7() *Table { return RunFig7().Table }
