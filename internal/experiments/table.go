// Package experiments regenerates every table and figure in the paper's
// evaluation (§4-§9). Each experiment returns a Table — named columns of
// rows — that the incbench CLI and the repository's benchmarks print; the
// EXPERIMENTS.md file records the paper-vs-measured comparison for each.
package experiments

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// ID is the experiment identifier ("fig3a", "tab-xeon", ...).
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Columns are the header names.
	Columns []string
	// Rows hold cells already formatted as strings.
	Rows [][]string
	// Notes carries shape checks and paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v (floats as %.4g).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180 CSV (header row first); notes become
// trailing comment lines prefixed with "#".
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.Columns)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// Experiment pairs an ID with its generator.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Table
}

var registry []Experiment

// register adds an experiment to the catalog (called from init functions).
func register(id, title string, run func() *Table) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the catalog sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
