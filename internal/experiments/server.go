package experiments

import (
	"fmt"
	"time"

	"incod/internal/fpga"
	"incod/internal/kvs"
	"incod/internal/power"
	"incod/internal/simnet"
)

func init() {
	register("xeon", "Xeon-class server power under load (§7)", xeonTable)
	register("memories", "Memory trade-offs: capacity, latency, power (§5.3)", memoriesTable)
	register("crossover", "Software/hardware crossover points (§4/§8)", crossoverTable)
}

func xeonTable() *Table {
	m := power.XeonE52660v4Dual
	t := &Table{
		ID:      "xeon",
		Title:   "§7: dual Xeon E5-2660 v4 power (synthetic workload, RAPL)",
		Columns: []string{"active-cores", "per-core-util[%]", "watts", "socket0[W]", "socket1[W]"},
	}
	add := func(cores int, util float64) {
		s := m.SocketPower(cores, util)
		t.AddRow(cores, util*100, m.Power(cores, util), s[0], s[1])
	}
	add(0, 0)
	add(1, 0.10)
	add(1, 1)
	for _, c := range []int{2, 4, 8, 14, 20, 28} {
		add(c, 1)
	}
	t.AddNote("anchors: 56 W idle, 91 W one core, 134 W full load, 86 W at 10%% single-core load (§7)")
	t.AddNote("extra core overhead: %.1f W (paper: 1-2 W)", m.Power(2, 1)-m.Power(1, 1))
	t.AddNote("both sockets rise when one core runs (paper: 'almost equally')")
	return t
}

// memoriesTable measures the §5.3 latency classes from a live simulation
// of the LaKe data path and reports the capacity/power trade-off.
func memoriesTable() *Table {
	t := &Table{
		ID:      "memories",
		Title:   "§5.3: on-chip vs off-chip vs software",
		Columns: []string{"path", "capacity[entries]", "power[W]", "p50-latency", "p99-latency"},
	}
	sim := simnet.New(53)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	backend := kvs.NewSoftServer(net, "host", power.MemcachedMellanox)
	lake := kvs.NewLaKe(net, "lake", backend)
	client := kvs.NewClient(net, "client", "lake")

	// Small hot set: all L1 hits after warm-up.
	for i := 0; i < 100; i++ {
		backend.Store().Set(fmt.Sprintf("key-%d", i), kvs.Entry{Value: make([]byte, 64)})
	}
	i := 0
	client.KeyFunc = func() string { i++; return fmt.Sprintf("key-%d", i%100) }
	client.Start(100)
	sim.RunFor(500 * time.Millisecond)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)

	l1p50, l1p99 := lake.HitLatency.Median(), lake.HitLatency.P99()
	missP50, missP99 := lake.MissLatency.Median(), lake.MissLatency.P99()

	// L2: key set larger than L1 (BRAM) but cached in DRAM.
	sim2 := simnet.New(54)
	net2 := simnet.NewNetwork(sim2, simnet.TenGigE)
	backend2 := kvs.NewSoftServer(net2, "host", power.MemcachedMellanox)
	lake2 := kvs.NewLaKe(net2, "lake", backend2)
	client2 := kvs.NewClient(net2, "client", "lake")
	n := fpga.OnChipValueEntries * 20
	for i := 0; i < n; i++ {
		backend2.Store().Set(fmt.Sprintf("key-%d", i), kvs.Entry{Value: make([]byte, 64)})
	}
	j := 0
	client2.KeyFunc = func() string { j++; return fmt.Sprintf("key-%d", j%n) } // cycling defeats L1
	client2.Start(200)
	sim2.RunFor(800 * time.Millisecond)
	client2.Stop()
	sim2.RunFor(10 * time.Millisecond)
	l2p50, l2p99 := lake2.HitLatency.Median(), lake2.HitLatency.P99()

	t.AddRow("L1 on-chip (BRAM)", fpga.OnChipValueEntries, 0.0, l1p50, l1p99)
	t.AddRow("L2 off-chip (DRAM+SRAM)", fpga.DRAMValueEntries, fpga.DRAMWatts+fpga.SRAMWatts, l2p50, l2p99)
	t.AddRow("software (miss path)", "unbounded", "server", missP50, missP99)
	t.AddNote("paper: on-chip hit <=1.4us; DRAM hit 1.67us p50 / 1.9us p99; miss ~x10 (13.5us p50, 14.3us p99)")
	t.AddNote("DRAM holds x%d the on-chip entries; SRAM x%d the on-chip free chunks (§5.3)",
		fpga.DRAMValueEntries/fpga.OnChipValueEntries, fpga.SRAMFreeChunks/fpga.OnChipFreeChunks)
	t.AddNote("miss/hit p50 ratio: %.1fx (paper: x10)", float64(missP50)/float64(l1p50))
	return t
}

func crossoverTable() *Table {
	t := &Table{
		ID:      "crossover",
		Title:   "§4/§8: software->hardware power crossover points",
		Columns: []string{"application", "crossover[kpps]", "paper"},
	}
	rows := []struct {
		name  string
		cross float64
		paper string
	}{
		{"KVS (memcached/Mellanox vs LaKe)", power.Crossover(power.MemcachedMellanox.Power, lakePower, 2000), "~80 kpps"},
		{"KVS (memcached/Intel X520 vs LaKe)", power.Crossover(power.MemcachedIntelX520.Power, lakePower, 2000), ">300 kpps"},
		{"Paxos leader (libpaxos vs P4xos)", power.Crossover(power.LibpaxosLeader.Power, p4xosPower, 1000), "~150 kpps"},
		{"Paxos acceptor (libpaxos vs P4xos)", power.Crossover(power.LibpaxosAcceptor.Power, p4xosPower, 1000), "~150 kpps"},
		{"Paxos leader (DPDK vs P4xos)", power.Crossover(power.DPDKLeader.Power, p4xosPower, 1000), "0 (DPDK always hotter)"},
		{"DNS (NSD vs Emu)", power.Crossover(power.NSDServer.Power, emuPower, 1000), "<200 kpps"},
	}
	for _, r := range rows {
		t.AddRow(r.name, r.cross, r.paper)
	}
	t.AddNote("§8: the tipping point is where Pd_N(R) = Pd_S(R); idle/sleep power cancels for a shared device")
	return t
}
