package experiments

import (
	"fmt"
	"time"

	"incod/internal/fpga"
	"incod/internal/kvs"
	"incod/internal/power"
	"incod/internal/simnet"
)

func init() {
	register("infra", "Host-platform and FPGA-generation sensitivity (§5.4)", infraTable)
	register("strategies", "Idle strategies for the parked accelerator (§9.2)", strategiesTable)
}

// infraTable reproduces §5.4: the accelerator's absolute cost is fixed,
// but its relative cost depends on the host — and on the FPGA generation.
func infraTable() *Table {
	t := &Table{
		ID:      "infra",
		Title:   "§5.4: the same card in different hosts / FPGA generations",
		Columns: []string{"configuration", "idle[W]", "with-LaKe-idle[W]", "card-share[%]"},
	}
	card := fpga.NewBoard(fpga.LaKeDesign).CardWatts(0)
	hosts := []struct {
		name string
		idle float64
	}{
		{"Intel i7-6700K (base setup)", 37.5},
		{"Xeon E5-2637 v4 / X10-DRG-Q", power.XeonE52637v4.IdleWatts},
		{"low-power ARM-class node", 15},
	}
	for _, h := range hosts {
		total := h.idle + card
		t.AddRow(h.name, h.idle, total, card/total*100)
	}
	// FPGA generation: UltraScale+ at x2.4 perf/W (§5.4).
	scaled := fpga.NewBoard(fpga.LaKeDesign.Scaled(fpga.UltraScalePlusFactor))
	t.AddRow("LaKe logic on UltraScale+ (x2.4 perf/W)", "-", fmt.Sprintf("card %.1f W", scaled.CardWatts(0)), "-")
	t.AddNote("§5.4: the Xeon idles at 83 W — 20 W more than LaKe at full load on the base setup")
	t.AddNote("§5.4: on low-power hosts the FPGA's relative cost is higher; the power difference of installing the card is constant")
	return t
}

// strategiesTable measures the §9.2 idle-strategy trade-off live: parked
// power vs reactivation cost (warm-up misses, halted packets).
func strategiesTable() *Table {
	t := &Table{
		ID:      "strategies",
		Title:   "§9.2: idle strategies for the parked LaKe card",
		Columns: []string{"strategy", "parked-card[W]", "reactivation-misses", "halted-packets"},
	}
	for _, s := range []kvs.IdleStrategy{kvs.ParkReset, kvs.KeepWarm, kvs.PartialReconfig} {
		watts, misses, halted := measureStrategy(s)
		t.AddRow(s.String(), watts, misses, halted)
	}
	t.AddNote("the paper picks park-reset: 'the best of both performance and power efficiency worlds' (§9.2)")
	t.AddNote("keep-warm shifts instantly but forfeits the memory-reset saving; partial reconfiguration saves the most but halts traffic for ~%v", kvs.ReconfigHalt)
	return t
}

// measureStrategy warms a LaKe card, parks it with the strategy, then
// reactivates under load and reports the costs.
func measureStrategy(s kvs.IdleStrategy) (parkedWatts float64, misses, halted uint64) {
	sim := simnet.New(92)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	backend := kvs.NewSoftServer(net, "host", power.MemcachedMellanox)
	lake := kvs.NewLaKe(net, "lake", backend)
	lake.Strategy = s
	client := kvs.NewClient(net, "client", "lake")
	for i := 0; i < 200; i++ {
		backend.Store().Set(fmt.Sprintf("key-%d", i), kvs.Entry{Value: make([]byte, 64)})
	}
	i := 0
	client.KeyFunc = func() string { i++; return fmt.Sprintf("key-%d", i%200) }

	// Warm, park, measure, reactivate under load.
	client.Start(50)
	sim.RunFor(100 * time.Millisecond)
	lake.Deactivate()
	sim.RunFor(100 * time.Millisecond)
	parkedWatts = lake.PowerWatts(sim.Now())
	preMisses := lake.Counters.Get("miss")
	preHalted := lake.Counters.Get("reconfig_dropped")
	lake.Activate()
	sim.RunFor(200 * time.Millisecond)
	client.Stop()
	sim.RunFor(10 * time.Millisecond)
	return parkedWatts, lake.Counters.Get("miss") - preMisses, lake.Counters.Get("reconfig_dropped") - preHalted
}
