package experiments

import (
	"fmt"
	"time"

	"incod/internal/dns"
	"incod/internal/kvs"
	"incod/internal/paxos"
	"incod/internal/placement"
	"incod/internal/power"
	"incod/internal/simnet"
)

func init() {
	register("latency", "Software vs hardware latency across applications (§9.5)", latencyTable)
	register("place", "FPGA, SmartNIC or Switch? platform guide (§10)", placeTable)
}

// latencyTable measures end-to-end p50/p99 for each application in both
// placements, from live simulations — the §9.5 discussion quantified.
func latencyTable() *Table {
	t := &Table{
		ID:      "latency",
		Title:   "§9.5: end-to-end latency, software vs in-network",
		Columns: []string{"application", "placement", "p50", "p99"},
	}

	// KVS.
	{
		sim := simnet.New(951)
		net := simnet.NewNetwork(sim, simnet.TenGigE)
		backend := kvs.NewSoftServer(net, "host", power.MemcachedMellanox)
		lake := kvs.NewLaKe(net, "lake", backend)
		client := kvs.NewClient(net, "client", "lake")
		for i := 0; i < 100; i++ {
			backend.Store().Set(fmt.Sprintf("key-%d", i), kvs.Entry{Value: make([]byte, 64)})
		}
		i := 0
		client.KeyFunc = func() string { i++; return fmt.Sprintf("key-%d", i%100) }
		// Hardware phase.
		client.Start(100)
		sim.RunFor(300 * time.Millisecond)
		client.Stop()
		sim.RunFor(10 * time.Millisecond)
		t.AddRow("kvs", "network", client.Latency.Median(), client.Latency.P99())
		// Software phase.
		lake.Deactivate()
		client.Latency.Reset()
		client.Start(100)
		sim.RunFor(300 * time.Millisecond)
		client.Stop()
		sim.RunFor(10 * time.Millisecond)
		t.AddRow("kvs", "host", client.Latency.Median(), client.Latency.P99())
	}

	// DNS.
	{
		sim := simnet.New(952)
		net := simnet.NewNetwork(sim, simnet.TenGigE)
		zone := dns.NewZone()
		zone.PopulateSequential(100)
		backend := dns.NewSoftServer(net, "host", zone)
		emu := dns.NewEmuDNS(net, "emu", backend)
		client := dns.NewClient(net, "client", "emu")
		i := 0
		client.NameFunc = func() string { i++; return dns.SequentialName(i % 100) }
		client.Start(100)
		sim.RunFor(300 * time.Millisecond)
		client.Stop()
		sim.RunFor(10 * time.Millisecond)
		t.AddRow("dns", "network", client.Latency.Median(), client.Latency.P99())
		emu.Deactivate()
		client.Latency.Reset()
		client.Start(100)
		sim.RunFor(300 * time.Millisecond)
		client.Stop()
		sim.RunFor(10 * time.Millisecond)
		t.AddRow("dns", "host", client.Latency.Median(), client.Latency.P99())
	}

	// Paxos (leader placement).
	{
		sim := simnet.New(953)
		net := simnet.NewNetwork(sim, simnet.TenGigE)
		dep := paxos.NewDeployment(net, paxos.Config{})
		c := dep.Clients[0]
		c.Start(5)
		sim.RunFor(time.Second)
		t.AddRow("paxos", "host", c.Latency.Median(), c.Latency.P99())
		dep.ShiftLeader(dep.HWLeader)
		sim.RunFor(500 * time.Millisecond)
		c.Latency.Reset()
		sim.RunFor(time.Second)
		c.Stop()
		t.AddRow("paxos", "network", c.Latency.Median(), c.Latency.P99())
	}

	t.AddNote("§9.5: 'where latency is the target, there is no need for in-network computing on demand, as in-network computing will provide lower latency'")
	t.AddNote("fully pipelined on-chip designs have near-constant latency; external memories add hundreds of ns but still beat the PCIe trip to the host")
	return t
}

func placeTable() *Table {
	t := &Table{
		ID:      "place",
		Title:   "§10: FPGA, SmartNIC or Switch?",
		Columns: []string{"platform", "peak[Mpps]", "watts", "Mpps/W", "price[xNIC]", "flex", "ease", "ext-mem", "blast"},
	}
	for _, p := range placement.Catalog() {
		t.AddRow(p.Name, p.PeakMpps, p.Watts, p.PerfPerWatt(), p.PriceUnits,
			p.Flexibility, p.ProgrammingEase, p.ExternalMemory, p.BlastRadius)
	}
	// Example rankings for the three case studies.
	apps := []struct {
		name string
		req  placement.Requirements
	}{
		{"kvs (large state)", placement.Requirements{MinMpps: 10, NeedExternalMemory: true, MinFlexibility: 8}},
		{"paxos (wire-speed coordination)", placement.Requirements{MinMpps: 100}},
		{"dns (small table, modest rate)", placement.Requirements{MinMpps: 1, MaxPriceUnits: 2}},
	}
	for _, app := range apps {
		ranked := placement.Rank(app.req)
		best := "none"
		if ranked[0].Feasible {
			best = ranked[0].Platform.Name
		}
		t.AddNote("%s -> %s", app.name, best)
	}
	t.AddNote("§10: 'the answer is not conclusive' — the guide applies the paper's hard constraints, then ranks by perf/W per price")
	return t
}
