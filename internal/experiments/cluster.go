package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"incod/internal/asic"
	"incod/internal/cluster"
	"incod/internal/power"
)

func init() {
	register("dynamo", "Dynamo power-variance analysis (§9.3)", dynamoTable)
	register("google", "Google cluster-trace offload mining (§9.3)", googleTable)
	register("tor", "Top-of-rack switch on-demand analysis (§9.4)", torTable)
}

func dynamoTable() *Table {
	t := &Table{
		ID:      "dynamo",
		Title:   "§9.3: rack power variation (synthetic Dynamo-style traces)",
		Columns: []string{"workload", "window", "median[%]", "p99[%]", "paper-median[%]", "paper-p99[%]", "on-demand-safe"},
	}
	rng := rand.New(rand.NewSource(93))
	pub := cluster.DynamoPublished()
	cases := []struct {
		kind  cluster.WorkloadKind
		w     time.Duration
		pubID string
	}{
		{cluster.RackMixed, 3 * time.Second, "rack-3s"},
		{cluster.RackMixed, 30 * time.Second, "rack-30s"},
		{cluster.Caching, 60 * time.Second, "caching-60s"},
		{cluster.WebServer, 60 * time.Second, "web-60s"},
	}
	for _, c := range cases {
		trace := cluster.GenerateTrace(rng, c.kind, 800, 3600)
		v := trace.Variation(c.w)
		p := pub[c.pubID]
		t.AddRow(c.kind.String(), c.w.String(), v.MedianPct, v.P99Pct, p.MedianPct, p.P99Pct,
			cluster.SafeForOnDemand(v, 35))
	}
	t.AddNote("§9.3 rule: low variance over the scheduling period -> safe for in-network computing")
	return t
}

func googleTable() *Table {
	t := &Table{
		ID:      "google",
		Title:   "§9.3: Google-trace offload-candidate mining (synthetic trace)",
		Columns: []string{"metric", "value", "paper"},
	}
	rng := rand.New(rand.NewSource(94))
	const nodes = 1000
	horizon := 24 * time.Hour
	tasks := cluster.GenerateGoogleTrace(rng, 1_200_000, horizon)
	stats := cluster.Stats(tasks)
	cands := cluster.OffloadCandidates(tasks)
	density := cluster.CandidateDensity(tasks, nodes, horizon)

	t.AddRow("tasks", stats.Tasks, "-")
	t.AddRow("long jobs (>2h) fraction", stats.LongJobFraction, "~5% of jobs")
	t.AddRow("long jobs resource share", stats.LongJobResourceFrac, "~90% of utilization")
	t.AddRow("offload candidates (>=5min, >=10% core)", len(cands), "1.39M unique tasks")
	t.AddRow("candidate cores per node per 5min", density, "7.7")
	saving := cluster.LastJobSaving(power.XeonE52660v4Dual, 0.5, 10)
	t.AddRow("last-job offload saving [W]", saving, "-")
	t.AddNote("high per-node density diminishes the saving when many jobs share a server (§9.3)")
	t.AddNote("the 'load diminishes' model: offloading the last job idles the host and saves the first-core jump")
	return t
}

func torTable() *Table {
	t := &Table{
		ID:      "tor",
		Title:   "§9.4: ToR switch on-demand",
		Columns: []string{"metric", "value"},
	}
	cfg := cluster.ToRConfig{Nodes: 24, PacketBytes: 1500, ServerCurve: power.MemcachedMellanox}
	tip := cluster.SwitchTippingKpps(cfg, 2000)
	t.AddRow("switch-vs-server tipping point [kpps]", tip)
	t.AddRow("switch dynamic power for 1 Mpps x 1500 B [W]", torPortWatts(1000, 1500))
	for _, hit := range []float64{0.5, 0.9, 0.99} {
		split, hostOnly := cluster.CacheSplitPower(cfg, 2400, hit)
		t.AddRow(fmtReasonLocal("rack dynamic power, %.0f%% switch hits [W]", hit*100), split)
		if hit == 0.5 {
			t.AddRow("rack dynamic power, host-only [W]", hostOnly)
		}
	}
	swPkts, srvPkts := cluster.RequestHalving(1e6)
	t.AddRow("switch packets per 1M req/s (in-switch)", swPkts)
	t.AddRow("switch packets per 1M req/s (server-served)", srvPkts)
	t.AddNote("§9.4: tipping point 'when R is almost zero'; a million queries draw <1 W of switch power")
	t.AddNote("§10: serving in the switch halves the application packets through it")
	return t
}

func torPortWatts(kpps float64, bytes int) float64 {
	return asic.PortDynamicWatts(kpps*1000, bytes)
}

func fmtReasonLocal(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
