package experiments

import (
	"incod/internal/asic"
	"incod/internal/energy"
	"incod/internal/power"
)

func init() {
	register("asic", "Tofino normalized power (§6)", asicTable)
	register("opswatt", "Messages-per-watt ladder (§6)", opsWatt)
}

func asicTable() *Table {
	t := &Table{
		ID:      "asic",
		Title:   "§6: ASIC (Tofino 32x40G snake) normalized power vs load",
		Columns: []string{"load[%]", "l2fwd", "l2fwd+p4xos", "diag.p4", "p4xos-overhead[%]"},
	}
	base, p4, diag := asic.NewTofino(), asic.NewTofino(), asic.NewTofino()
	p4.Load(asic.P4xosL2Fwd)
	diag.Load(asic.DiagP4)
	for load := 0.0; load <= 1.0001; load += 0.1 {
		over := (p4.Power(load)/base.Power(load) - 1) * 100
		t.AddRow(load*100, base.Normalized(load), p4.Normalized(load), diag.Normalized(load), over)
	}
	t.AddNote("P4xos overhead at full load: %.1f%% (paper: <=2%%)", (p4.Power(1)/base.Power(1)-1)*100)
	t.AddNote("diag.p4 overhead at full load: %.1f%% (paper: 4.8%%)", (diag.Power(1)/base.Power(1)-1)*100)
	t.AddNote("min-max span: %.1f%% (paper: <20%%)", (p4.Power(1)/p4.Power(0)-1)*100)
	msgs := p4.MsgThroughputKpps(0.10)
	t.AddNote("at 10%% utilization: %.0f kpps = %.0fx the 178 kpps server (paper: x1000)", msgs, msgs/178)
	serverDyn := power.LibpaxosAcceptor.Power(178) - power.LibpaxosAcceptor.Power(0)
	t.AddNote("ASIC dynamic at 10%%: %.1f W vs server dynamic %.1f W at ~180 kpps (paper: ~1/3)",
		p4.DynamicWatts(0.10), serverDyn)
	return t
}

func opsWatt() *Table {
	t := &Table{
		ID:      "opswatt",
		Title:   "§6: consensus messages per watt across substrates",
		Columns: []string{"substrate", "peak[kpps]", "watts", "msgs/W"},
	}
	sw := energy.Ladder{Name: "libpaxos (dynamic)", PeakKpps: 178, PeakWatts: power.LibpaxosAcceptor.Power(178) - power.LibpaxosAcceptor.Power(0)}
	fp := energy.Ladder{Name: "P4xos NetFPGA (standalone)", PeakKpps: 10000, PeakWatts: p4xosStandalone(10000)}
	tof := asic.NewTofino()
	tof.Load(asic.P4xosL2Fwd)
	as := energy.Ladder{Name: "P4xos Tofino (total)", PeakKpps: tof.MsgThroughputKpps(1), PeakWatts: tof.Power(1)}
	for _, l := range []energy.Ladder{sw, fp, as} {
		t.AddRow(l.Name, l.PeakKpps, l.PeakWatts, l.Efficiency())
	}
	t.AddNote("paper ladder: software 10K's, FPGA 100K's, ASIC 10M's msgs/W")
	return t
}
