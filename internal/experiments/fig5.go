package experiments

import (
	"incod/internal/core"
	"incod/internal/power"
)

func init() {
	register("fig5", "On-demand power envelopes (Figure 5)", fig5)
}

// DemandCurves builds the three Figure 5 envelopes from the calibrated
// curves.
func DemandCurves() map[string]core.DemandCurve {
	return map[string]core.DemandCurve{
		"kvs":   core.NewDemandCurve("kvs", power.MemcachedMellanox.Power, lakePower, 2000),
		"paxos": core.NewDemandCurve("paxos", power.LibpaxosLeader.Power, p4xosPower, 1000),
		"dns":   core.NewDemandCurve("dns", power.NSDServer.Power, emuPower, 1000),
	}
}

func fig5() *Table {
	t := &Table{
		ID:    "fig5",
		Title: "Figure 5: power with in-network computing on demand",
		Columns: []string{"kpps", "KVS-sw[W]", "KVS-ondemand[W]", "Paxos-sw[W]",
			"Paxos-ondemand[W]", "DNS-sw[W]", "DNS-ondemand[W]"},
	}
	d := DemandCurves()
	kvs, paxos, dns := d["kvs"], d["paxos"], d["dns"]
	for kpps := 0.0; kpps <= 1200; kpps += 50 {
		t.AddRow(kpps,
			kvs.SW(kpps), kvs.Power(kpps),
			paxos.SW(kpps), paxos.Power(kpps),
			dns.SW(kpps), dns.Power(kpps))
	}
	for name, c := range map[string]core.DemandCurve{"kvs": kvs, "paxos": paxos, "dns": dns} {
		frac, at := c.MaxSaving(1200, 240)
		t.AddNote("%s: shift at %.0f kpps, max saving %.0f%% at %.0f kpps", name, c.CrossKpps, frac*100, at)
	}
	t.AddNote("paper: on-demand 'saves up to 50%% of the power compared with software-based solutions'")
	return t
}
