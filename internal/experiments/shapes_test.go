package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"incod/internal/power"
)

func TestFig3bShape(t *testing.T) {
	tab := fig3b()
	// Idle row: libpaxos 39 W, DPDK high flat, P4xos ~49 W, standalone 18.2 W.
	if got := cell(t, tab, 0, 1); got != 39 {
		t.Errorf("libpaxos idle = %v", got)
	}
	if got := cell(t, tab, 0, 2); got < 70 {
		t.Errorf("DPDK idle = %v, want high (polling)", got)
	}
	if got := cell(t, tab, 0, 3); got < 48 || got > 50 {
		t.Errorf("P4xos idle = %v, want ~49", got)
	}
	if got := cell(t, tab, 0, 4); got < 18 || got > 18.5 {
		t.Errorf("standalone idle = %v, want 18.2", got)
	}
	// P4xos stays nearly flat to 1 Mpps.
	lastRow := len(tab.Rows) - 1
	if span := cell(t, tab, lastRow, 3) - cell(t, tab, 0, 3); span > 1.5 {
		t.Errorf("P4xos span = %v W, want < 1.5", span)
	}
}

// §3.1: LaKe delivers ~x24 the queries-per-watt of software memcached.
func TestLaKeEfficiencyX24(t *testing.T) {
	lakeEff := 13000.0 / lakePower(13000)
	sw := power.MemcachedMellanox
	swEff := sw.PeakKpps / sw.Power(sw.PeakKpps)
	ratio := lakeEff / swEff
	if ratio < 20 || ratio > 28 {
		t.Errorf("LaKe/memcached efficiency ratio = %.1f, want ~24", ratio)
	}
}

func TestFig3cShape(t *testing.T) {
	tab := fig3c()
	if got := cell(t, tab, 0, 2); got < 47 || got > 48 {
		t.Errorf("Emu idle total = %v, want ~47.5", got)
	}
	// NSD overtakes Emu well before peak and roughly doubles it at peak.
	last := len(tab.Rows) - 1
	nsd, emu := cell(t, tab, last, 1), cell(t, tab, last, 2)
	if nsd < 1.8*emu {
		t.Errorf("NSD peak %v not ~2x Emu %v", nsd, emu)
	}
}

func TestLatencyTableShape(t *testing.T) {
	tab := latencyTable()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	lat := map[string]time.Duration{}
	for _, row := range tab.Rows {
		d, err := time.ParseDuration(row[2])
		if err != nil {
			t.Fatalf("bad duration %q", row[2])
		}
		lat[row[0]+"/"+row[1]] = d
	}
	// §9.5: in-network placement always has lower latency.
	for _, app := range []string{"kvs", "dns", "paxos"} {
		if lat[app+"/network"] >= lat[app+"/host"] {
			t.Errorf("%s: network %v !< host %v", app, lat[app+"/network"], lat[app+"/host"])
		}
	}
	// DNS shows the largest gap (~x70 service time).
	if r := float64(lat["dns/host"]) / float64(lat["dns/network"]); r < 20 {
		t.Errorf("dns host/network ratio = %.0f, want large", r)
	}
}

func TestStrategiesTableShape(t *testing.T) {
	tab := strategiesTable()
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	// Power: partial-reconfig < park-reset < keep-warm.
	pr, pk, kw := parse(byName["partial-reconfig"][1]), parse(byName["park-reset"][1]), parse(byName["keep-warm"][1])
	if !(pr < pk && pk < kw) {
		t.Errorf("parked power ordering wrong: %v %v %v", pr, pk, kw)
	}
	// Reactivation cost: keep-warm has no misses; partial-reconfig halts.
	if parse(byName["keep-warm"][2]) != 0 {
		t.Error("keep-warm should have zero reactivation misses")
	}
	if parse(byName["partial-reconfig"][3]) == 0 {
		t.Error("partial-reconfig should drop packets during the halt")
	}
	if parse(byName["park-reset"][3]) != 0 {
		t.Error("park-reset never halts traffic")
	}
}

func TestInfraTableShape(t *testing.T) {
	tab := infraTable()
	// Card share shrinks as the host gets hungrier.
	i7 := cell(t, tab, 0, 3)
	xeon := cell(t, tab, 1, 3)
	arm := cell(t, tab, 2, 3)
	if !(xeon < i7 && i7 < arm) {
		t.Errorf("card share ordering wrong: xeon %v, i7 %v, arm %v", xeon, i7, arm)
	}
}

func TestValidateTableAgreement(t *testing.T) {
	tab := validateTable()
	for _, row := range tab.Rows {
		delta, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad delta %q", row[3])
		}
		if delta > 1.0 {
			t.Errorf("model vs simulation at %s kpps differs by %v W, want <= 1", row[0], delta)
		}
	}
}

func TestCSVRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Columns: []string{"a", "b"}}
	tab.AddRow("v,with,commas", 1.25)
	tab.AddNote("hello")
	out := tab.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"v,with,commas"`) {
		t.Errorf("comma cell not quoted: %q", lines[1])
	}
	if lines[2] != "# hello" {
		t.Errorf("note line = %q", lines[2])
	}
}

func TestXeonTableCells(t *testing.T) {
	tab := xeonTable()
	if got := cell(t, tab, 0, 2); got != 56 {
		t.Errorf("idle = %v", got)
	}
	// One core at 10%: ~86 W.
	if got := cell(t, tab, 1, 2); got < 84 || got > 88 {
		t.Errorf("10%% row = %v, want ~86", got)
	}
}

func TestPlaceTableHasAllPlatforms(t *testing.T) {
	tab := placeTable()
	if len(tab.Rows) != 5 {
		t.Errorf("rows = %d, want 5 platforms", len(tab.Rows))
	}
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "kvs (large state)") {
			found = true
		}
	}
	if !found {
		t.Error("missing per-app ranking notes")
	}
}
