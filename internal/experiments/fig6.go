package experiments

import (
	"fmt"
	"time"

	"incod/internal/core"
	"incod/internal/kvs"
	"incod/internal/power"
	"incod/internal/simnet"
	"incod/internal/telemetry"
	"incod/internal/trafficgen"
)

func init() {
	register("fig6", "KVS software<->hardware transition timeline (Figure 6)", fig6)
}

// Fig6Result carries the timeline for tests and the CLI.
type Fig6Result struct {
	Table       *Table
	Transitions []core.Transition
	// ThroughputDipFraction is the worst per-interval throughput during
	// the shift relative to the steady rate (1.0 = no dip).
	ThroughputDipFraction float64
	// LatencyImprovement is software-phase median / hardware-phase median.
	LatencyImprovement float64
}

// RunFig6 reproduces the §9.2 experiment: an ETC-distribution memcached
// client at ~16 kpps, ChainerMN as a second workload raising host power,
// and the host controller (3 s sustained condition) shifting the KVS to
// LaKe and back as ChainerMN stops.
func RunFig6() *Fig6Result {
	sim := simnet.New(1234)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	backend := kvs.NewSoftServer(net, "host", power.MemcachedMellanox)
	lake := kvs.NewLaKe(net, "lake", backend)
	lake.Deactivate() // start of the day: everything in software
	client := kvs.NewClient(net, "client", "lake")

	// ETC key popularity over a modest pool (cache-warmable).
	etc := trafficgen.NewETC(sim.Rand(), 5000)
	for i := uint64(0); i < 5000; i++ {
		backend.Store().Set(fmt.Sprintf("key-%d", i), kvs.Entry{Value: make([]byte, 64)})
	}
	client.KeyFunc = etc.Keys.Next

	// ChainerMN (deep learning) as background load: active from 5 s until
	// 20 s, drawing CPU and power on the same host.
	chainerOn := false
	sim.Schedule(5*time.Second, func() { chainerOn = true })
	sim.Schedule(20*time.Second, func() { chainerOn = false })
	chainerPower := func() float64 {
		if chainerOn {
			return 45 // additional package watts while training
		}
		return 0
	}
	chainerCPU := func() float64 {
		if chainerOn {
			return 0.8
		}
		return 0
	}

	svc := core.NewKVSService(lake)
	ctl := core.NewHostController(sim, svc,
		func() float64 { return backend.PowerWatts(sim.Now()) + chainerPower() },
		func() float64 { return backend.Utilization() + chainerCPU() },
		lake.RateKpps,
		core.HostControllerConfig{
			ToNetworkPowerWatts: 70,
			ToNetworkCPUUtil:    0.5,
			ToNetworkSustain:    3 * time.Second, // the paper's trigger
			// The generic rate-based return rule is disabled (threshold 0
			// never fires): the §9.2 experiment shifts back "as ChainerMN
			// stops", which the explicit monitor below implements.
			ToHostKpps:    0,
			ToHostSustain: 3 * time.Second,
			SamplePeriod:  100 * time.Millisecond,
		})
	// The §9.2 experiment shifts back "as ChainerMN stops": model the
	// return path as its own monitor (the host controller's network-rate
	// input in the paper includes host state; our config above disables
	// the generic return rule in favour of this explicit one).
	backHot := simnet.Time(0)
	sim.Every(100*time.Millisecond, func() {
		if svc.Placement() == core.Network && !chainerOn {
			if backHot == 0 {
				backHot = sim.Now()
			} else if sim.Now().Sub(backHot) >= 3*time.Second {
				if err := svc.Shift(core.Host); err == nil {
					ctl.Transitions = append(ctl.Transitions, core.Transition{
						At: sim.Now(), To: core.Host, Reason: "background workload stopped"})
				}
				backHot = 0
			}
		} else {
			backHot = 0
		}
	})
	ctl.Start()

	combined := telemetry.SumPower{backend, lake,
		telemetry.PowerSourceFunc(func(simnet.Time) float64 { return chainerPower() })}

	t := &Table{
		ID:      "fig6",
		Title:   "Figure 6: transitioning KVS between software and hardware",
		Columns: []string{"t[ms]", "throughput[kpps]", "latency[us]", "power[W]", "placement"},
	}

	client.Start(16) // ~16 kpps as in Figure 6
	const interval = 500 * time.Millisecond
	var (
		lastRecv uint64
		samples  []float64
		swLat    time.Duration
		hwLat    time.Duration
	)
	for now := time.Duration(0); now < 30*time.Second; now += interval {
		sim.RunFor(interval)
		recv := client.Counters.Get("recv")
		kppsNow := float64(recv-lastRecv) / interval.Seconds() / 1000
		lastRecv = recv
		med := client.Latency.Median()
		client.Latency.Reset()
		if svc.Placement() == core.Host && med > 0 {
			swLat = med
		}
		if svc.Placement() == core.Network && med > 0 && lake.HitRatio() > 0.9 {
			hwLat = med
		}
		samples = append(samples, kppsNow)
		t.AddRow(sim.Now().Seconds()*1000, kppsNow, float64(med)/1000, // µs
			combined.PowerWatts(sim.Now()), svc.Placement().String())
	}
	client.Stop()

	// Worst throughput after warm-up relative to the offered 16 kpps.
	dip := 1.0
	for _, s := range samples[2:] {
		if f := s / 16; f < dip {
			dip = f
		}
	}
	res := &Fig6Result{Table: t, Transitions: ctl.Transitions, ThroughputDipFraction: dip}
	if hwLat > 0 {
		res.LatencyImprovement = float64(swLat) / float64(hwLat)
	}
	for _, tr := range ctl.Transitions {
		t.AddNote("transition: %s", tr)
	}
	t.AddNote("worst-interval throughput = %.0f%% of offered (paper: 'no effect on KVS throughput')", dip*100)
	t.AddNote("median latency improved %.1fx after warm-up (paper: 'ten-fold within tens of microseconds')", res.LatencyImprovement)
	return res
}

func fig6() *Table { return RunFig6().Table }
