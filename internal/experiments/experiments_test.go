package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"asic", "crossover", "dynamo", "fig3a", "fig3b", "fig3c",
		"fig4", "fig5", "fig6", "fig7", "google", "infra", "latency",
		"memories", "opswatt", "place", "strategies", "tor", "validate", "xeon"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
	}
	if _, ok := ByID("fig4"); !ok {
		t.Error("ByID(fig4) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) should fail")
	}
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a number: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestFig3aShape(t *testing.T) {
	tab := fig3a()
	if len(tab.Rows) < 20 {
		t.Fatalf("fig3a rows = %d", len(tab.Rows))
	}
	// Row 0 is idle: memcached 39 W, LaKe ~59 W.
	if got := cell(t, tab, 0, 1); got != 39 {
		t.Errorf("memcached idle = %v", got)
	}
	if got := cell(t, tab, 0, 2); got < 58 || got > 60 {
		t.Errorf("LaKe idle = %v, want ~59", got)
	}
	// At 1 Mpps software is far above LaKe.
	r10 := -1
	for i, row := range tab.Rows {
		if row[0] == "1000" {
			r10 = i
		}
	}
	if r10 < 0 {
		t.Fatal("no 1000 kpps row")
	}
	if sw, hw := cell(t, tab, r10, 1), cell(t, tab, r10, 2); sw < hw+40 {
		t.Errorf("at 1Mpps sw=%v hw=%v, want sw >> hw", sw, hw)
	}
	// Crossover note ~80.
	if !strings.Contains(tab.Notes[0], "kpps") {
		t.Error("missing crossover note")
	}
}

func TestFig4Ordering(t *testing.T) {
	bars := Figure4Bars()
	if len(bars) != 9 {
		t.Fatalf("bars = %d, want 9", len(bars))
	}
	// The paper's x order is ascending in power.
	for i := 1; i < len(bars); i++ {
		if bars[i].Watts < bars[i-1].Watts {
			t.Errorf("bar %q (%.2f W) below predecessor %q (%.2f W)",
				bars[i].Label, bars[i].Watts, bars[i-1].Label, bars[i-1].Watts)
		}
	}
	if bars[0].Label != "Ref. NIC" || bars[8].Label != "LaKe" {
		t.Error("bar endpoints wrong")
	}
	// LaKe standalone ~28 W ~ server-no-cards.
	if bars[8].Watts < 27 || bars[8].Watts > 30 {
		t.Errorf("LaKe bar = %v W", bars[8].Watts)
	}
}

func TestFig5Envelope(t *testing.T) {
	d := DemandCurves()
	if d["kvs"].CrossKpps < 60 || d["kvs"].CrossKpps > 100 {
		t.Errorf("kvs crossover = %v", d["kvs"].CrossKpps)
	}
	if d["paxos"].CrossKpps < 120 || d["paxos"].CrossKpps > 180 {
		t.Errorf("paxos crossover = %v", d["paxos"].CrossKpps)
	}
	if d["dns"].CrossKpps < 100 || d["dns"].CrossKpps > 200 {
		t.Errorf("dns crossover = %v", d["dns"].CrossKpps)
	}
	// On-demand never exceeds software anywhere.
	for name, c := range d {
		for r := 0.0; r <= 1200; r += 25 {
			if c.Power(r) > c.SW(r)+1e-9 {
				t.Fatalf("%s envelope above software at %v kpps", name, r)
			}
		}
	}
}

func TestFig6Transition(t *testing.T) {
	res := RunFig6()
	if len(res.Transitions) < 2 {
		t.Fatalf("transitions = %v, want shift out and back", res.Transitions)
	}
	// First shift happens after ChainerMN starts (5s) plus the 3s sustain.
	first := res.Transitions[0].At.Seconds()
	if first < 7.5 || first > 12 {
		t.Errorf("first transition at %.1fs, want ~8-9s", first)
	}
	// §9.2: "the transition ... had no effect on KVS throughput".
	if res.ThroughputDipFraction < 0.85 {
		t.Errorf("throughput dipped to %.0f%%, want none", res.ThroughputDipFraction*100)
	}
	// Latency improves roughly ten-fold once the cache warms.
	if res.LatencyImprovement < 5 {
		t.Errorf("latency improvement = %.1fx, want ~10x", res.LatencyImprovement)
	}
}

func TestFig7Shift(t *testing.T) {
	res := RunFig7()
	// ~100ms stall = client timeout.
	if res.StallMs < 50 || res.StallMs > 250 {
		t.Errorf("stall = %v ms, want ~100", res.StallMs)
	}
	// Throughput roughly doubles; latency roughly halves.
	if res.HWRate < res.SWRate*1.4 {
		t.Errorf("throughput sw=%.1f hw=%.1f, want increase", res.SWRate, res.HWRate)
	}
	if res.SWLatency < res.HWLatency*13/10 {
		t.Errorf("latency sw=%v hw=%v, want ~halved", res.SWLatency, res.HWLatency)
	}
	if res.Gaps != 0 {
		t.Errorf("gaps = %d after recovery", res.Gaps)
	}
}

func TestAllExperimentsRender(t *testing.T) {
	for _, e := range All() {
		if e.ID == "fig6" || e.ID == "fig7" {
			continue // covered above; they are slow
		}
		tab := e.Run()
		if tab == nil || len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", e.ID)
			continue
		}
		out := tab.Render()
		if !strings.Contains(out, e.ID) {
			t.Errorf("%s render missing ID header", e.ID)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow(1.5, "v")
	tab.AddNote("n=%d", 1)
	out := tab.Render()
	for _, want := range []string{"== x: T ==", "a", "bb", "1.5", "v", "note: n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
