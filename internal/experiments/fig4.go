package experiments

import (
	"incod/internal/fpga"
)

func init() {
	register("fig4", "LaKe power-saving techniques (Figure 4)", fig4)
}

// serverNoCardsWatts is Figure 4's red server bar. §5.1: "the power
// consumption of an idle server (without a NetFPGA card) was roughly
// equivalent to the power consumption of a stand alone NetFPGA card
// programmed with LaKe but also idle" (~28 W). This differs from the 39 W
// idle figure of §4, which includes the NIC and a different measurement
// configuration; EXPERIMENTS.md records the discrepancy.
const serverNoCardsWatts = 27.0

// Figure4Bars computes the nine standalone-board configurations of
// Figure 4 in the paper's x-axis order.
func Figure4Bars() []struct {
	Label string
	Watts float64
	Ref   bool // red bars: reference NIC and server
} {
	standalone := func(mutate func(*fpga.Board), cfg fpga.Config, load float64) float64 {
		b := fpga.NewBoard(cfg)
		b.SetStandalone(true)
		if mutate != nil {
			mutate(b)
		}
		return b.CardWatts(load)
	}
	noMem := fpga.LaKeDesign
	noMem.UsesDRAM, noMem.UsesSRAM = false, false

	return []struct {
		Label string
		Watts float64
		Ref   bool
	}{
		{"Ref. NIC", standalone(nil, fpga.ReferenceNIC, 0), true},
		{"1 PE & no mem", standalone(func(b *fpga.Board) { b.SetActivePEs(1) }, noMem, 0), false},
		{"No mem", standalone(nil, noMem, 0), false},
		{"Max load & no mem", standalone(nil, noMem, 1), false},
		{"Reset mem & clk gating", standalone(func(b *fpga.Board) {
			b.SetMemoryReset(true)
			b.SetClockGating(true)
		}, fpga.LaKeDesign, 0), false},
		{"Reset mem", standalone(func(b *fpga.Board) { b.SetMemoryReset(true) }, fpga.LaKeDesign, 0), false},
		{"Server no cards", serverNoCardsWatts, true},
		{"Clk gating", standalone(func(b *fpga.Board) { b.SetClockGating(true) }, fpga.LaKeDesign, 0), false},
		{"LaKe", standalone(nil, fpga.LaKeDesign, 0), false},
	}
}

func fig4() *Table {
	t := &Table{
		ID:      "fig4",
		Title:   "Figure 4: effects of LaKe design trade-offs on power",
		Columns: []string{"configuration", "watts", "bar"},
	}
	bars := Figure4Bars()
	for _, b := range bars {
		kind := "lake"
		if b.Ref {
			kind = "reference"
		}
		t.AddRow(b.Label, b.Watts, kind)
	}
	// Shape checks from §5.1/§5.2.
	byLabel := map[string]float64{}
	for _, b := range bars {
		byLabel[b.Label] = b.Watts
	}
	t.AddNote("clock gating saves %.2f W (paper: <1 W)", byLabel["LaKe"]-byLabel["Clk gating"])
	t.AddNote("external memories cost %.1f W (paper: >=10 W)", byLabel["LaKe"]-byLabel["No mem"])
	t.AddNote("memory reset saves %.1f W = 40%% of memory power (paper: 40%%)", byLabel["LaKe"]-byLabel["Reset mem"])
	t.AddNote("LaKe logic over reference NIC: %.1f W (paper: 2.2 W)", byLabel["No mem"]-byLabel["Ref. NIC"])
	t.AddNote("standalone LaKe %.1f W ~ idle server without cards %.1f W (§5.1)", byLabel["LaKe"], byLabel["Server no cards"])
	return t
}
