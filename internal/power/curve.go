package power

import "math"

// SoftwareCurve maps an offered query rate to whole-server wall power for
// one software application + NIC combination. The functional form is
//
//	P(R) = Idle + Jump*(1 - exp(-R/JumpScale)) + Linear*R + Quad*R^2
//
// with R in kpps. The saturating jump captures the §7 observation that a
// server's power leaps as soon as cores wake, and the polynomial tail
// captures frequency/turbo effects toward peak load. The constants below
// are calibrated so that every crossover and peak-power statement in §4
// holds (see the DESIGN.md experiment index).
type SoftwareCurve struct {
	Name string
	// IdleWatts is the wall power of the idle server including its NIC.
	IdleWatts float64
	// JumpWatts and JumpScaleKpps shape the low-load jump.
	JumpWatts     float64
	JumpScaleKpps float64
	// LinearWattsPerMpps and QuadWattsPerMpps2 shape the tail.
	LinearWattsPerMpps float64
	QuadWattsPerMpps2  float64
	// PeakKpps is the peak sustainable rate; beyond it the server stays
	// at peak power and sheds load.
	PeakKpps float64
}

// Power returns wall watts at rate kpps. Rates beyond PeakKpps clamp.
func (c SoftwareCurve) Power(kpps float64) float64 {
	if kpps < 0 {
		kpps = 0
	}
	if c.PeakKpps > 0 && kpps > c.PeakKpps {
		kpps = c.PeakKpps
	}
	p := c.IdleWatts
	if c.JumpScaleKpps > 0 {
		p += c.JumpWatts * (1 - math.Exp(-kpps/c.JumpScaleKpps))
	} else if kpps > 0 {
		p += c.JumpWatts
	}
	m := kpps / 1000 // Mpps
	p += c.LinearWattsPerMpps*m + c.QuadWattsPerMpps2*m*m
	return p
}

// Goodput returns the served rate in kpps for an offered rate: offered up
// to the peak, then flat (the software saturates and drops the excess).
func (c SoftwareCurve) Goodput(offeredKpps float64) float64 {
	if offeredKpps < 0 {
		return 0
	}
	if c.PeakKpps > 0 && offeredKpps > c.PeakKpps {
		return c.PeakKpps
	}
	return offeredKpps
}

// Utilization returns the fraction of peak capacity consumed at the
// offered rate, clamped to 1.
func (c SoftwareCurve) Utilization(offeredKpps float64) float64 {
	if c.PeakKpps <= 0 {
		return 0
	}
	u := offeredKpps / c.PeakKpps
	if u > 1 {
		u = 1
	}
	if u < 0 {
		u = 0
	}
	return u
}

// Software application curves from §4. Idle is 39 W in every case (the §4.2
// measurement of the idle i7 server with its NIC).
var (
	// MemcachedMellanox: memcached v1.5.1 with the Mellanox 10GE NIC
	// (the Intel X520 bottlenecked KVS, §4.1). Peak ~1 Mpps on 4 cores;
	// the software/hardware crossover lands at ~80 kpps (§4.2).
	MemcachedMellanox = SoftwareCurve{
		Name:               "memcached (Mellanox)",
		IdleWatts:          39,
		JumpWatts:          24,
		JumpScaleKpps:      70,
		LinearWattsPerMpps: 48,
		PeakKpps:           1000,
	}

	// MemcachedIntelX520: with the Intel NIC the host is more power
	// efficient at low load (crossover moves past 300 kpps) but peaks
	// lower (§4.2).
	MemcachedIntelX520 = SoftwareCurve{
		Name:               "memcached (Intel X520)",
		IdleWatts:          39,
		JumpWatts:          12,
		JumpScaleKpps:      70,
		LinearWattsPerMpps: 25,
		PeakKpps:           700,
	}

	// LibpaxosLeader / LibpaxosAcceptor: single-core libpaxos (§4.3),
	// acceptor peak 178 K msgs/s; crossover with P4xos at ~150 kpps.
	LibpaxosLeader = SoftwareCurve{
		Name:               "libpaxos leader",
		IdleWatts:          39,
		JumpWatts:          8.5,
		JumpScaleKpps:      40,
		LinearWattsPerMpps: 11.3,
		PeakKpps:           170,
	}
	LibpaxosAcceptor = SoftwareCurve{
		Name:               "libpaxos acceptor",
		IdleWatts:          39,
		JumpWatts:          8.3,
		JumpScaleKpps:      40,
		LinearWattsPerMpps: 11.0,
		PeakKpps:           178,
	}

	// DPDKLeader / DPDKAcceptor: kernel-bypass libpaxos. "Power
	// consumption ... is high even under low load, and remains almost
	// constant" because DPDK constantly polls (§4.3).
	DPDKLeader = SoftwareCurve{
		Name:               "DPDK leader",
		IdleWatts:          74,
		JumpWatts:          0,
		LinearWattsPerMpps: 3,
		PeakKpps:           900,
	}
	DPDKAcceptor = SoftwareCurve{
		Name:               "DPDK acceptor",
		IdleWatts:          72,
		JumpWatts:          0,
		LinearWattsPerMpps: 3,
		PeakKpps:           950,
	}

	// NSDServer: the NSD authoritative name server (§4.4). Peak 956 Kqps;
	// at peak the server draws ~2x Emu DNS's 48 W; the crossover with the
	// Emu DNS hardware happens by ~150-200 kpps.
	NSDServer = SoftwareCurve{
		Name:               "NSD",
		IdleWatts:          39,
		JumpWatts:          5,
		JumpScaleKpps:      60,
		LinearWattsPerMpps: 22.4,
		QuadWattsPerMpps2:  33.5,
		PeakKpps:           956,
	}
)

// Crossover finds the lowest rate (kpps) in [0, limit] at which hw(R) <=
// sw(R), by bisection over the monotone difference. It returns -1 if the
// hardware never becomes cheaper within the limit.
func Crossover(sw, hw func(kpps float64) float64, limitKpps float64) float64 {
	f := func(r float64) float64 { return sw(r) - hw(r) }
	if f(0) >= 0 {
		return 0
	}
	if f(limitKpps) < 0 {
		return -1
	}
	lo, hi := 0.0, limitKpps
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
