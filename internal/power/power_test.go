package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// §7 anchors for the dual Xeon E5-2660 v4.
func TestXeonAnchors(t *testing.T) {
	m := XeonE52660v4Dual
	if got := m.Power(0, 0); got != 56 {
		t.Errorf("idle = %v W, want 56", got)
	}
	if got := m.Power(1, 1); math.Abs(got-91) > 1 {
		t.Errorf("one core full = %v W, want ~91", got)
	}
	if got := m.Power(28, 1); math.Abs(got-134) > 2 {
		t.Errorf("full load = %v W, want ~134", got)
	}
	// "even at a low CPU core load, e.g. 10%, the power consumption of
	// the server reaches 86W".
	if got := m.Power(1, 0.10); math.Abs(got-86) > 1.5 {
		t.Errorf("one core at 10%% = %v W, want ~86", got)
	}
	// "the overhead of an additional core running is small, 1W-2W".
	delta := m.Power(2, 1) - m.Power(1, 1)
	if delta < 1 || delta > 2 {
		t.Errorf("extra-core overhead = %v W, want 1-2", delta)
	}
}

func TestXeonSocketBreakdown(t *testing.T) {
	m := XeonE52660v4Dual
	idle := m.SocketPower(0, 0)
	if len(idle) != 2 || idle[0] != 28 || idle[1] != 28 {
		t.Errorf("idle sockets = %v, want [28 28] (evenly divided)", idle)
	}
	// §7: running one core raises both sockets "almost equally".
	busy := m.SocketPower(1, 1)
	if busy[0]+busy[1] < 89 || busy[0]+busy[1] > 93 {
		t.Errorf("socket sum = %v, want ~91", busy[0]+busy[1])
	}
	if busy[1] <= idle[1] {
		t.Error("second socket power should rise when a core on socket 0 runs")
	}
	if busy[0] <= busy[1] {
		t.Error("socket hosting the core should draw more")
	}
}

func TestPowerAtLoadMonotone(t *testing.T) {
	for _, m := range []CPUModel{CoreI76700K, XeonE52660v4Dual, XeonE52637v4} {
		prev := -1.0
		for load := 0.0; load <= 1.0001; load += 0.01 {
			p := m.PowerAtLoad(load)
			if p < prev-1e-9 {
				t.Fatalf("%s: power not monotone at load %.2f: %v < %v", m.Name, load, p, prev)
			}
			prev = p
		}
	}
}

func TestPowerClamps(t *testing.T) {
	m := CoreI76700K
	if m.Power(100, 2) != m.Power(4, 1) {
		t.Error("active cores / util should clamp to machine limits")
	}
	if m.PowerAtLoad(-1) != m.IdleWatts {
		t.Error("negative load should be idle")
	}
}

// Momentary server power "can more than double itself" (§6 referencing §4).
func TestServerPowerDoubles(t *testing.T) {
	idle := MemcachedMellanox.Power(0)
	peak := MemcachedMellanox.Power(MemcachedMellanox.PeakKpps)
	if peak < 2*idle {
		t.Errorf("memcached peak %v W < 2x idle %v W", peak, idle)
	}
}

func TestCurveIdleAndPeaks(t *testing.T) {
	cases := []struct {
		c      SoftwareCurve
		idle   float64
		peakLo float64
		peakHi float64
	}{
		{MemcachedMellanox, 39, 105, 120}, // Fig 3(a) peak band
		{LibpaxosAcceptor, 39, 48, 52},    // crosses P4xos' ~49 W near peak
		{NSDServer, 39, 90, 100},          // ~2x Emu DNS's 48 W at peak (§4.4)
	}
	for _, tc := range cases {
		if got := tc.c.Power(0); got != tc.idle {
			t.Errorf("%s idle = %v, want %v", tc.c.Name, got, tc.idle)
		}
		p := tc.c.Power(tc.c.PeakKpps)
		if p < tc.peakLo || p > tc.peakHi {
			t.Errorf("%s peak = %v W, want in [%v, %v]", tc.c.Name, p, tc.peakLo, tc.peakHi)
		}
	}
}

// §4.3: DPDK power is high at idle and almost flat under load.
func TestDPDKAlmostConstant(t *testing.T) {
	span := DPDKLeader.Power(DPDKLeader.PeakKpps) - DPDKLeader.Power(0)
	if span > 5 {
		t.Errorf("DPDK power span = %v W, want nearly constant (<5)", span)
	}
	if DPDKLeader.Power(0) < 1.5*MemcachedMellanox.Power(0) {
		t.Error("DPDK idle draw should far exceed the interrupt-driven stack's")
	}
}

func TestGoodputSaturates(t *testing.T) {
	c := LibpaxosAcceptor
	if c.Goodput(100) != 100 {
		t.Error("goodput below peak should equal offered")
	}
	if c.Goodput(500) != 178 {
		t.Errorf("goodput above peak = %v, want 178", c.Goodput(500))
	}
	if c.Utilization(89) != 0.5 {
		t.Errorf("utilization = %v, want 0.5", c.Utilization(89))
	}
	if c.Utilization(1e6) != 1 {
		t.Error("utilization should clamp at 1")
	}
}

func TestCrossoverBisection(t *testing.T) {
	sw := func(r float64) float64 { return 39 + r/10 }
	hw := func(r float64) float64 { return 59 }
	got := Crossover(sw, hw, 1000)
	if math.Abs(got-200) > 0.01 {
		t.Errorf("crossover = %v, want 200", got)
	}
	if Crossover(func(float64) float64 { return 10 }, hw, 1000) != -1 {
		t.Error("no crossover should return -1")
	}
	if Crossover(func(float64) float64 { return 100 }, hw, 1000) != 0 {
		t.Error("hardware cheaper everywhere should return 0")
	}
}

// Property: all software curves are monotone non-decreasing in rate.
func TestCurvesMonotoneProperty(t *testing.T) {
	curves := []SoftwareCurve{MemcachedMellanox, MemcachedIntelX520,
		LibpaxosLeader, LibpaxosAcceptor, DPDKLeader, DPDKAcceptor, NSDServer}
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, c := range curves {
			if c.Power(lo) > c.Power(hi)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNICModels(t *testing.T) {
	if IntelX520.Power(0) != 1.5 || IntelX520.Power(1) != 2.5 {
		t.Error("Intel X520 power endpoints wrong")
	}
	if IntelX520.Power(-1) != IntelX520.Power(0) || IntelX520.Power(2) != IntelX520.Power(1) {
		t.Error("NIC load should clamp")
	}
	if NoNIC.Power(1) != 0 {
		t.Error("NoNIC should draw nothing")
	}
}

func TestRAPLCounters(t *testing.T) {
	sim := simnet.New(1)
	r := NewRAPL(sim)
	r.AddDomain("package-0", ConstantSource(50))
	e0 := r.EnergyMicroJoules("package-0")
	sim.RunFor(2 * time.Second)
	e1 := r.EnergyMicroJoules("package-0")
	joules := float64(e1-e0) / 1e6
	if math.Abs(joules-100) > 0.1 {
		t.Errorf("energy = %v J, want 100 (50W x 2s)", joules)
	}
	if r.EnergyMicroJoules("missing") != 0 {
		t.Error("unknown domain should read 0")
	}
	if len(r.Domains()) != 1 || r.Domains()[0] != "package-0" {
		t.Errorf("Domains() = %v", r.Domains())
	}
	if r.Reads() < 2 {
		t.Error("read counter not tracking")
	}
}

func TestRAPLDuplicateDomainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate domain")
		}
	}()
	r := NewRAPL(simnet.New(1))
	r.AddDomain("x", ConstantSource(1))
	r.AddDomain("x", ConstantSource(1))
}

func TestRAPLWindow(t *testing.T) {
	sim := simnet.New(1)
	watts := 30.0
	r := NewRAPL(sim)
	r.AddDomain("pkg", telemetry.PowerSourceFunc(func(simnet.Time) float64 { return watts }))
	w := r.NewWindow("pkg")
	sim.RunFor(time.Second)
	if got := w.Watts(); math.Abs(got-30) > 0.1 {
		t.Errorf("window watts = %v, want 30", got)
	}
	watts = 90
	sim.RunFor(time.Second)
	if got := w.Watts(); math.Abs(got-90) > 0.1 {
		t.Errorf("window watts after change = %v, want 90", got)
	}
	if w.Watts() != 0 {
		t.Error("zero-length window should read 0")
	}
}

// Crossover sanity on the real curves: KVS ~80 kpps, Paxos ~150 kpps,
// DNS in 100..200 kpps (these are re-verified end-to-end in experiments).
func TestPaperCrossoversApprox(t *testing.T) {
	lake := func(float64) float64 { return 59.2 }
	p4xos := func(float64) float64 { return 49.0 }
	emu := func(float64) float64 { return 47.6 }

	if r := Crossover(MemcachedMellanox.Power, lake, 2000); math.Abs(r-80) > 15 {
		t.Errorf("KVS crossover = %v kpps, want ~80", r)
	}
	if r := Crossover(LibpaxosLeader.Power, p4xos, 1000); math.Abs(r-150) > 25 {
		t.Errorf("Paxos crossover = %v kpps, want ~150", r)
	}
	r := Crossover(NSDServer.Power, emu, 1000)
	if r < 100 || r > 200 {
		t.Errorf("DNS crossover = %v kpps, want 100-200", r)
	}
	// §4.2: with the Intel NIC the crossing moves past 300 kpps.
	if r := Crossover(MemcachedIntelX520.Power, lake, 2000); r < 300 {
		t.Errorf("Intel-NIC KVS crossover = %v kpps, want > 300", r)
	}
}
