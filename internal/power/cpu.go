// Package power models the power draw of the servers, NICs and software
// stacks in the paper's testbed, plus a simulated RAPL (running average
// power limit) interface used by the host-side controller.
//
// All constants are calibrated against numbers printed in the paper:
//
//   - §4.2: i7-6700K server idle = 39 W (with NIC); memcached peak ≈ 1 Mpps.
//   - §4.3: libpaxos acceptor peak 178 K msgs/s on one core; DPDK draws high,
//     nearly constant power because it polls.
//   - §4.4: NSD peak 956 Kqps; at peak the server draws ~2x Emu DNS's 48 W.
//   - §5.4: Xeon E5-2637 v4 (SuperMicro X10-DRG-Q) idle = 83 W without NIC.
//   - §7: dual Xeon E5-2660 v4 idle 56 W, 91 W with one core busy, 134 W
//     at full load, ~86 W at 10% single-core load, 1-2 W per extra core.
//
// Model outputs are wall watts (the paper measures at the wall with an
// SHW-3A meter, PSU overhead included).
package power

import (
	"math"

	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// CPUModel is a whole-server power model parameterized by active core count
// and per-core utilization. Its shape follows the §7 observations: a large
// jump when the first core wakes (shared uncore, both sockets), a small
// per-additional-core increment, and a saturating response to utilization.
type CPUModel struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	// IdleWatts is the whole-server idle draw.
	IdleWatts float64
	// FirstCoreJumpWatts is added (saturating in utilization) as soon as
	// any core is active. §7: 56 W -> 91 W with a single busy core.
	FirstCoreJumpWatts float64
	// ExtraCoreWatts is added per additional active core. §7: 1-2 W.
	ExtraCoreWatts float64
	// SaturationUtil is the utilization scale of the first-core jump;
	// §7 reports 86 W at only 10% load, so the jump saturates fast.
	SaturationUtil float64
	// LoadSlopeWatts is the remaining dynamic power at 100% aggregate
	// utilization across all cores, applied linearly.
	LoadSlopeWatts float64
}

// Cores returns the total core count.
func (m CPUModel) Cores() int { return m.Sockets * m.CoresPerSocket }

// saturate maps utilization (0..1) to the fraction of the first-core jump.
func (m CPUModel) saturate(util float64) float64 {
	if util <= 0 {
		return 0
	}
	s := m.SaturationUtil
	if s <= 0 {
		s = 0.05
	}
	return 1 - math.Exp(-util/s)
}

// Power returns wall watts with activeCores cores busy at the given
// per-core utilization (0..1). Zero active cores is idle.
func (m CPUModel) Power(activeCores int, util float64) float64 {
	if activeCores <= 0 || util <= 0 {
		return m.IdleWatts
	}
	if activeCores > m.Cores() {
		activeCores = m.Cores()
	}
	if util > 1 {
		util = 1
	}
	p := m.IdleWatts + m.FirstCoreJumpWatts*m.saturate(util)
	p += float64(activeCores-1) * m.ExtraCoreWatts
	agg := float64(activeCores) * util / float64(m.Cores())
	p += m.LoadSlopeWatts * agg
	return p
}

// PowerAtLoad returns wall watts at an aggregate load fraction (0..1) of
// the whole machine, spreading the load over the fewest cores that can
// carry it — the scheduling the §7 synthetic workload uses.
func (m CPUModel) PowerAtLoad(load float64) float64 {
	if load <= 0 {
		return m.IdleWatts
	}
	if load > 1 {
		load = 1
	}
	totalUtil := load * float64(m.Cores())
	active := int(math.Ceil(totalUtil))
	if active < 1 {
		active = 1
	}
	return m.Power(active, totalUtil/float64(active))
}

// SocketPower splits the §7 per-socket breakdown: the idle draw divides
// evenly between sockets, and the first-core jump raises both sockets
// "almost equally" (60/40 toward the socket running the core).
func (m CPUModel) SocketPower(activeCores int, util float64) []float64 {
	total := m.Power(activeCores, util)
	if m.Sockets <= 1 {
		return []float64{total}
	}
	out := make([]float64, m.Sockets)
	idleShare := m.IdleWatts / float64(m.Sockets)
	dyn := total - m.IdleWatts
	for i := range out {
		out[i] = idleShare
	}
	// Socket 0 hosts the active cores and takes 60% of the dynamic power;
	// the remainder spreads over the other sockets.
	if dyn > 0 {
		out[0] += 0.6 * dyn
		rest := 0.4 * dyn / float64(m.Sockets-1)
		for i := 1; i < m.Sockets; i++ {
			out[i] += rest
		}
	}
	return out
}

// Predefined server models (calibration sources in the package comment).
var (
	// CoreI76700K is the §4 base setup: 4 cores at 4 GHz, 64 GB RAM.
	// Idle excludes the NIC (add a NICModel; 39 W total with the X520).
	CoreI76700K = CPUModel{
		Name:               "Intel Core i7-6700K",
		Sockets:            1,
		CoresPerSocket:     4,
		IdleWatts:          37.5,
		FirstCoreJumpWatts: 14,
		ExtraCoreWatts:     3,
		SaturationUtil:     0.05,
		LoadSlopeWatts:     49.5,
	}

	// XeonE52637v4 is the §5.4 SuperMicro X10-DRG-Q comparison machine:
	// 83 W idle without a NIC.
	XeonE52637v4 = CPUModel{
		Name:               "Intel Xeon E5-2637 v4",
		Sockets:            1,
		CoresPerSocket:     4,
		IdleWatts:          83,
		FirstCoreJumpWatts: 25,
		ExtraCoreWatts:     3,
		SaturationUtil:     0.05,
		LoadSlopeWatts:     40,
	}

	// XeonE52660v4Dual is the §7 ASUS ESC4000-G3S: two 14-core sockets.
	// Anchors: 56 W idle, 91 W one busy core, 134 W full load, 86 W at
	// 10% single-core load, 1-2 W per additional core.
	XeonE52660v4Dual = CPUModel{
		Name:               "2x Intel Xeon E5-2660 v4",
		Sockets:            2,
		CoresPerSocket:     14,
		IdleWatts:          56,
		FirstCoreJumpWatts: 35,
		ExtraCoreWatts:     1.6,
		SaturationUtil:     0.0514,
		LoadSlopeWatts:     0,
	}
)

// NICModel is a fixed-function NIC's power draw.
type NICModel struct {
	Name      string
	IdleWatts float64
	// DynWatts is the additional draw at line rate.
	DynWatts float64
}

// Power returns watts at the given load fraction of line rate.
func (n NICModel) Power(load float64) float64 {
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	return n.IdleWatts + n.DynWatts*load
}

// NICs from the §4.1 setup.
var (
	IntelX520      = NICModel{Name: "Intel X520", IdleWatts: 1.5, DynWatts: 1.0}
	MellanoxCX311A = NICModel{Name: "Mellanox MCX311A-XCCT", IdleWatts: 2.0, DynWatts: 1.5}
	NoNIC          = NICModel{Name: "none"}
)

// ConstantSource is a fixed-wattage telemetry.PowerSource.
type ConstantSource float64

// PowerWatts implements telemetry.PowerSource.
func (c ConstantSource) PowerWatts(simnet.Time) float64 { return float64(c) }

var _ telemetry.PowerSource = ConstantSource(0)
