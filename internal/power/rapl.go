package power

import (
	"fmt"

	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// RAPL simulates the running-average-power-limit energy counters the
// paper's host controller reads (§9.1: "we monitor the end-host's power
// consumption using RAPL", costing ~0.3% CPU "mainly for performing RAPL
// reads"). Each domain wraps a power source and exposes a monotonically
// increasing energy counter in microjoules, like the MSR interface.
type RAPL struct {
	sim     *simnet.Simulator
	domains map[string]*raplDomain
	order   []string
	// reads counts counter reads, for the controller-overhead accounting.
	reads uint64
}

type raplDomain struct {
	src    telemetry.PowerSource
	lastAt simnet.Time
	energy float64 // microjoules
}

// NewRAPL returns an empty RAPL instance bound to sim's clock.
func NewRAPL(sim *simnet.Simulator) *RAPL {
	return &RAPL{sim: sim, domains: make(map[string]*raplDomain)}
}

// AddDomain registers an energy domain (e.g. "package-0") fed by src.
func (r *RAPL) AddDomain(name string, src telemetry.PowerSource) {
	if _, dup := r.domains[name]; dup {
		panic(fmt.Sprintf("power: duplicate RAPL domain %q", name))
	}
	r.domains[name] = &raplDomain{src: src, lastAt: r.sim.Now()}
	r.order = append(r.order, name)
}

// Domains lists registered domains in registration order.
func (r *RAPL) Domains() []string { return append([]string(nil), r.order...) }

// EnergyMicroJoules returns the domain's energy counter, integrating lazily
// up to the current virtual time. Unknown domains return 0.
func (r *RAPL) EnergyMicroJoules(name string) uint64 {
	d, ok := r.domains[name]
	if !ok {
		return 0
	}
	now := r.sim.Now()
	dt := now.Sub(d.lastAt).Seconds()
	if dt > 0 {
		d.energy += d.src.PowerWatts(now) * dt * 1e6
		d.lastAt = now
	}
	r.reads++
	return uint64(d.energy)
}

// Reads reports how many counter reads have been issued.
func (r *RAPL) Reads() uint64 { return r.reads }

// Window measures average watts over a window by two counter reads.
// Controllers call Begin once, then Watts on each decision tick.
type Window struct {
	rapl   *RAPL
	domain string
	lastE  uint64
	lastAt simnet.Time
}

// NewWindow starts a measurement window on the named domain.
func (r *RAPL) NewWindow(domain string) *Window {
	return &Window{rapl: r, domain: domain, lastE: r.EnergyMicroJoules(domain), lastAt: r.sim.Now()}
}

// Watts returns the average power since the previous call (or creation) and
// restarts the window.
func (w *Window) Watts() float64 {
	now := w.rapl.sim.Now()
	e := w.rapl.EnergyMicroJoules(w.domain)
	dt := now.Sub(w.lastAt).Seconds()
	var watts float64
	if dt > 0 {
		watts = float64(e-w.lastE) / 1e6 / dt
	}
	w.lastE, w.lastAt = e, now
	return watts
}
