package telemetry

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"incod/internal/simnet"
)

func TestRateMeterSteadyRate(t *testing.T) {
	m := NewRateMeter(10*time.Millisecond, 10) // 100ms window
	// 1000 events/s for 1 second: one event per ms.
	for i := 0; i < 1000; i++ {
		m.Add(simnet.Time(i)*simnet.Time(time.Millisecond), 1)
	}
	got := m.Rate(simnet.Time(time.Second))
	if math.Abs(got-1000) > 150 {
		t.Errorf("Rate = %v, want ~1000/s", got)
	}
	if m.Total() != 1000 {
		t.Errorf("Total = %d, want 1000", m.Total())
	}
}

func TestRateMeterDecaysToZero(t *testing.T) {
	m := NewRateMeter(10*time.Millisecond, 10)
	m.Add(0, 1000)
	if r := m.Rate(simnet.Time(50 * time.Millisecond)); r == 0 {
		t.Error("rate should still be non-zero inside the window")
	}
	if r := m.Rate(simnet.Time(5 * time.Second)); r != 0 {
		t.Errorf("rate after long idle = %v, want 0", r)
	}
}

func TestRateMeterReset(t *testing.T) {
	m := NewRateMeter(time.Millisecond, 5)
	m.Add(0, 100)
	m.Reset(simnet.Time(time.Millisecond))
	if r := m.Rate(simnet.Time(2 * time.Millisecond)); r != 0 {
		t.Errorf("rate after reset = %v, want 0", r)
	}
}

func TestRateMeterWindow(t *testing.T) {
	m := NewRateMeter(5*time.Millisecond, 20)
	if m.Window() != 100*time.Millisecond {
		t.Errorf("Window = %v, want 100ms", m.Window())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 µs uniformly.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	med := h.Median()
	if med < 400*time.Microsecond || med > 600*time.Microsecond {
		t.Errorf("median = %v, want ~500µs", med)
	}
	p99 := h.P99()
	if p99 < 900*time.Microsecond || p99 > 1100*time.Microsecond {
		t.Errorf("p99 = %v, want ~990µs", p99)
	}
	if h.Min() != time.Microsecond {
		t.Errorf("Min = %v, want 1µs", h.Min())
	}
	if h.Max() != time.Millisecond {
		t.Errorf("Max = %v, want 1ms", h.Max())
	}
	mean := h.Mean()
	if mean < 450*time.Microsecond || mean > 550*time.Microsecond {
		t.Errorf("mean = %v, want ~500µs", mean)
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	h := NewHistogram()
	if h.Median() != 0 || h.Mean() != 0 || h.Min() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset did not clear histogram")
	}
}

func TestHistogramRelativeErrorProperty(t *testing.T) {
	f := func(us uint32) bool {
		d := time.Duration(us%1e7+1) * time.Microsecond
		h := NewHistogram()
		h.Observe(d)
		got := h.Quantile(1)
		err := math.Abs(float64(got-d)) / float64(d)
		return err < 0.05
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramPercentilesSorted(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	ps := h.Percentiles(0.99, 0.5, 0.9)
	if !(ps[0] <= ps[1] && ps[1] <= ps[2]) {
		t.Errorf("percentiles not monotone: %v", ps)
	}
}

func TestPowerMeterIntegratesConstantLoad(t *testing.T) {
	sim := simnet.New(1)
	src := PowerSourceFunc(func(simnet.Time) float64 { return 50 })
	m := NewPowerMeter(sim, src, 10*time.Millisecond, false)
	sim.RunFor(2 * time.Second)
	if math.Abs(m.Joules()-100) > 1 {
		t.Errorf("Joules = %v, want ~100 (50W x 2s)", m.Joules())
	}
	if math.Abs(m.AverageWatts()-50) > 0.5 {
		t.Errorf("AverageWatts = %v, want 50", m.AverageWatts())
	}
}

func TestPowerMeterRamp(t *testing.T) {
	sim := simnet.New(1)
	// Power ramps 0..100W over 1s: average 50W.
	src := PowerSourceFunc(func(now simnet.Time) float64 { return 100 * now.Seconds() })
	m := NewPowerMeter(sim, src, time.Millisecond, true)
	sim.RunFor(time.Second)
	if math.Abs(m.Joules()-50) > 0.5 {
		t.Errorf("Joules = %v, want ~50", m.Joules())
	}
	if len(m.Samples()) == 0 {
		t.Error("keep=true retained no samples")
	}
	m.Stop()
	n := len(m.Samples())
	sim.RunFor(time.Second)
	if len(m.Samples()) != n {
		t.Error("meter kept sampling after Stop")
	}
}

// Regression: a meter attached mid-simulation must average over ITS
// window, not over absolute virtual time (caught by the model-vs-sim
// validation experiment).
func TestPowerMeterLateAttach(t *testing.T) {
	sim := simnet.New(1)
	src := PowerSourceFunc(func(simnet.Time) float64 { return 60 })
	sim.RunFor(10 * time.Second) // meter not yet attached
	m := NewPowerMeter(sim, src, 10*time.Millisecond, false)
	sim.RunFor(time.Second)
	if math.Abs(m.AverageWatts()-60) > 0.5 {
		t.Errorf("late-attached AverageWatts = %v, want 60", m.AverageWatts())
	}
	if math.Abs(m.Joules()-60) > 1 {
		t.Errorf("late-attached Joules = %v, want ~60", m.Joules())
	}
}

func TestSumPower(t *testing.T) {
	a := PowerSourceFunc(func(simnet.Time) float64 { return 39 })
	b := PowerSourceFunc(func(simnet.Time) float64 { return 20 })
	if got := (SumPower{a, b}).PowerWatts(0); got != 59 {
		t.Errorf("SumPower = %v, want 59", got)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("hit", 3)
	c.Inc("miss", 1)
	c.Inc("hit", 2)
	if c.Get("hit") != 5 || c.Get("miss") != 1 || c.Get("absent") != 0 {
		t.Errorf("counter values wrong: %s", c)
	}
	if got := c.String(); got != "hit=5 miss=1" {
		t.Errorf("String() = %q", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "hit" {
		t.Errorf("Names() = %v", names)
	}
	c.Reset()
	if c.Get("hit") != 0 {
		t.Error("Reset did not zero counters")
	}
}
