// Package telemetry provides the measurement instruments used throughout
// the reproduction: sliding-window rate meters (the averaging window of the
// paper's network controller, §9.1), latency histograms with percentile
// queries (replacing the Endace DAG capture card), and integrating power
// meters (replacing the SHW-3A wall meter).
package telemetry

import (
	"time"

	"incod/internal/simnet"
)

// RateMeter estimates an event rate over a sliding window of fixed-size
// buckets. It is the data structure behind the network controller's
// "average message rate over the averaging period" parameter. Like every
// sim-time instrument it is single-threaded by contract; live daemons
// meter their wall-clock request streams with AtomicRateMeter.
type RateMeter struct {
	bucket  time.Duration
	buckets []uint64
	counts  []uint64
	// start of the bucket at index head.
	headStart simnet.Time
	head      int
	total     uint64
}

// NewRateMeter returns a meter averaging over n buckets of width bucket.
// The window length is n*bucket.
func NewRateMeter(bucket time.Duration, n int) *RateMeter {
	if n < 1 {
		n = 1
	}
	if bucket <= 0 {
		bucket = time.Millisecond
	}
	return &RateMeter{bucket: bucket, buckets: make([]uint64, n), counts: make([]uint64, n)}
}

// Window returns the averaging period.
func (m *RateMeter) Window() time.Duration { return m.bucket * time.Duration(len(m.buckets)) }

// advance rotates the window so that the bucket containing now is current.
func (m *RateMeter) advance(now simnet.Time) {
	for now >= m.headStart.Add(m.bucket) {
		m.head = (m.head + 1) % len(m.buckets)
		m.buckets[m.head] = 0
		m.headStart = m.headStart.Add(m.bucket)
		// If the meter was idle far longer than the window, fast-forward.
		if now.Sub(m.headStart) > m.Window()*2 {
			gap := now.Sub(m.headStart)
			skip := gap / m.bucket
			m.headStart = m.headStart.Add(skip / time.Duration(len(m.buckets)) * m.Window())
			for i := range m.buckets {
				m.buckets[i] = 0
			}
		}
	}
}

// Add records n events at virtual time now.
func (m *RateMeter) Add(now simnet.Time, n uint64) {
	m.advance(now)
	m.buckets[m.head] += n
	m.total += n
}

// Rate returns the average events/second over the window ending at now.
func (m *RateMeter) Rate(now simnet.Time) float64 {
	m.advance(now)
	var sum uint64
	for _, b := range m.buckets {
		sum += b
	}
	return float64(sum) / m.Window().Seconds()
}

// Total returns the lifetime event count.
func (m *RateMeter) Total() uint64 { return m.total }

// Reset clears the window and restarts it at now.
func (m *RateMeter) Reset(now simnet.Time) {
	for i := range m.buckets {
		m.buckets[i] = 0
	}
	m.head = 0
	m.headStart = now
}
