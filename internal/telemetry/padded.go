package telemetry

import "sync/atomic"

// PaddedUint64 is an atomic.Uint64 padded out to its own cache line so
// that unrelated hot counters bumped by different (possibly pinned)
// shards never false-share. The counter sits at the front of the struct
// and the pad pushes the allocation into the 64-byte size class, which
// on the common 64-byte-line targets gives each counter a line of its
// own when heap-allocated.
type PaddedUint64 struct {
	atomic.Uint64
	_ [56]byte
}
