package telemetry

import "sync/atomic"

// HotKey is one entry of a hot-key snapshot: a key and the (possibly
// sampled) access count attributed to it.
type HotKey struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	// Err is the space-saving overestimation bound: the true count is
	// in [Count-Err, Count].
	Err uint64 `json:"err,omitempty"`
}

// TopK is a space-saving top-K frequency sketch sized for a read hot
// path: Observe is guarded by a CAS try-lock and simply drops the
// sample when another observer holds it, so a caller never blocks and
// never spins. The sketch is intentionally lossy — it is fed with
// sampled GET hits and only the ranking matters to its consumers
// (nictier warm-up, /v1/dataplane telemetry).
type TopK struct {
	busy   atomic.Uint32 // CAS try-lock; 1 while an Observe or Snapshot holds the slots
	k      int
	keys   []string
	hashes []uint64
	counts []uint64
	errs   []uint64
	n      int // slots in use
}

// NewTopK returns a sketch tracking the k most frequent keys. k <= 0
// returns nil, the disabled sketch.
func NewTopK(k int) *TopK {
	if k <= 0 {
		return nil
	}
	return &TopK{
		k:      k,
		keys:   make([]string, k),
		hashes: make([]uint64, k),
		counts: make([]uint64, k),
		errs:   make([]uint64, k),
	}
}

// Observe records one access of key. hash must be the caller's hash of
// key (it is used to avoid string compares on the scan). The key string
// is retained by the sketch; callers must pass an immutable string.
// Contended calls are dropped.
func (t *TopK) Observe(hash uint64, key string) {
	if t == nil || !t.busy.CompareAndSwap(0, 1) {
		return
	}
	// Space-saving: bump an existing slot, fill a free slot, or replace
	// the current minimum and inherit its count as the error bound.
	min, minAt := ^uint64(0), -1
	for i := 0; i < t.n; i++ {
		if t.hashes[i] == hash && t.keys[i] == key {
			t.counts[i]++
			t.busy.Store(0)
			return
		}
		if t.counts[i] < min {
			min, minAt = t.counts[i], i
		}
	}
	if t.n < t.k {
		i := t.n
		t.n++
		t.keys[i], t.hashes[i], t.counts[i], t.errs[i] = key, hash, 1, 0
	} else {
		t.keys[minAt], t.hashes[minAt] = key, hash
		t.errs[minAt] = min
		t.counts[minAt] = min + 1
	}
	t.busy.Store(0)
}

// Snapshot returns a copy of the sketch's current entries, unsorted.
// Returns nil if the sketch is contended at the instant of the call.
func (t *TopK) Snapshot() []HotKey {
	if t == nil || !t.busy.CompareAndSwap(0, 1) {
		return nil
	}
	out := make([]HotKey, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = HotKey{Key: t.keys[i], Count: t.counts[i], Err: t.errs[i]}
	}
	t.busy.Store(0)
	return out
}
