package telemetry

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram records durations in logarithmically spaced buckets and answers
// percentile queries, in the style of an HDR histogram. It replaces the
// paper's DAG-card latency capture: the evaluation reports medians and 99th
// percentiles (§5.3, §3.3), which this type reproduces.
type Histogram struct {
	// buckets[i] counts samples in [lower(i), lower(i+1)).
	buckets []uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// bucketsPerDecade controls resolution: ~2.5% relative error.
const bucketsPerDecade = 90

// NewHistogram returns an empty histogram covering 1ns to ~1000s.
func NewHistogram() *Histogram {
	return &Histogram{
		buckets: make([]uint64, 12*bucketsPerDecade),
		min:     math.MaxInt64,
	}
}

func bucketIndex(d time.Duration) int {
	if d < 1 {
		d = 1
	}
	idx := int(math.Log10(float64(d)) * bucketsPerDecade)
	if idx < 0 {
		idx = 0
	}
	return idx
}

func bucketValue(idx int) time.Duration {
	// Midpoint of the bucket in log space.
	return time.Duration(math.Pow(10, (float64(idx)+0.5)/bucketsPerDecade))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	idx := bucketIndex(d)
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of all observations.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the q-quantile (0 <= q <= 1) with the histogram's bucket
// resolution. Quantile(0.5) is the median.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return bucketValue(i)
		}
	}
	return h.max
}

// Median is shorthand for Quantile(0.5).
func (h *Histogram) Median() time.Duration { return h.Quantile(0.5) }

// P99 is shorthand for Quantile(0.99).
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count, h.sum, h.max = 0, 0, 0
	h.min = math.MaxInt64
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Median(), h.P99(), h.Max())
}

// Percentiles evaluates the histogram at the given quantiles, sorted.
func (h *Histogram) Percentiles(qs ...float64) []time.Duration {
	sort.Float64s(qs)
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}
