package telemetry

// The sim-time instruments in this package (Counters, RateMeter,
// Histogram) are single-threaded by contract: the discrete-event
// simulator that drives them never runs two events at once. The live
// daemons' sharded dataplane does, so the Atomic* variants below restate
// the two hot-path instruments over atomics. The split is deliberate —
// the sim-time types stay allocation- and synchronization-free, and the
// live types carry no virtual clock.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// AtomicCounters is the concurrent counterpart of Counters: a named
// counter set safe for use from many dataplane workers at once. Hot paths
// should resolve a *atomic.Uint64 once via Handle and increment that
// directly; Inc takes a read lock to find the counter.
type AtomicCounters struct {
	mu    sync.RWMutex
	names []string
	vals  map[string]*atomic.Uint64
}

// NewAtomicCounters returns an empty concurrent counter set.
func NewAtomicCounters() *AtomicCounters {
	return &AtomicCounters{vals: make(map[string]*atomic.Uint64)}
}

// Handle returns the named counter's cell, creating it on first use. The
// returned pointer is stable for the life of the set.
func (c *AtomicCounters) Handle(name string) *atomic.Uint64 {
	c.mu.RLock()
	v := c.vals[name]
	c.mu.RUnlock()
	if v != nil {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v = c.vals[name]; v == nil {
		// Each cell gets its own cache line: pinned shards hammer
		// adjacent handles (hits/misses/sets), and unpadded cells
		// false-share when the allocator packs them together.
		p := new(PaddedUint64)
		v = &p.Uint64
		c.vals[name] = v
		c.names = append(c.names, name)
	}
	return v
}

// Inc adds n to the named counter, creating it on first use.
func (c *AtomicCounters) Inc(name string, n uint64) { c.Handle(name).Add(n) }

// Get returns the named counter's value (0 if never incremented).
func (c *AtomicCounters) Get(name string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if v := c.vals[name]; v != nil {
		return v.Load()
	}
	return 0
}

// Names returns counter names in first-use order.
func (c *AtomicCounters) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.names...)
}

// Snapshot returns a point-in-time copy of every counter.
func (c *AtomicCounters) Snapshot() map[string]uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]uint64, len(c.vals))
	for name, v := range c.vals {
		out[name] = v.Load()
	}
	return out
}

// String renders "name=value" pairs sorted by name (first-use order is
// racy under concurrent first increments, so sort for stability).
func (c *AtomicCounters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", n, snap[n])
	}
	return s
}

// AtomicRateMeter is the wall-clock, concurrent counterpart of RateMeter:
// a sliding-window event-rate estimate over fixed-width buckets, safe for
// any number of concurrent Add callers with no locks on the hot path.
//
// Each window slot packs a bucket sequence tag (high 24 bits) and a count
// (low 40 bits) into one uint64, so rotating into a new bucket and
// counting are a single CAS — stale slots from a previous rotation are
// simply ignored by Rate.
type AtomicRateMeter struct {
	bucket time.Duration
	epoch  time.Time
	slots  []atomic.Uint64
	total  atomic.Uint64
}

const (
	rateCountBits = 40
	rateCountMask = uint64(1)<<rateCountBits - 1
	rateTagMask   = uint64(1)<<24 - 1
)

// NewAtomicRateMeter returns a meter averaging over n buckets of width
// bucket (window = n*bucket), starting now.
func NewAtomicRateMeter(bucket time.Duration, n int) *AtomicRateMeter {
	if n < 1 {
		n = 1
	}
	if bucket <= 0 {
		bucket = time.Millisecond
	}
	return &AtomicRateMeter{
		bucket: bucket,
		epoch:  time.Now(),
		slots:  make([]atomic.Uint64, n),
	}
}

// Window returns the averaging period.
func (m *AtomicRateMeter) Window() time.Duration {
	return m.bucket * time.Duration(len(m.slots))
}

// Add records n events now.
func (m *AtomicRateMeter) Add(n uint64) {
	m.total.Add(n)
	seq := uint64(time.Since(m.epoch) / m.bucket)
	s := &m.slots[seq%uint64(len(m.slots))]
	tag := (seq & rateTagMask) << rateCountBits
	for {
		cur := s.Load()
		var next uint64
		if cur&^rateCountMask == tag {
			next = cur + n
			if next&^rateCountMask != tag { // saturate instead of corrupting the tag
				next = tag | rateCountMask
			}
		} else {
			next = tag | n&rateCountMask
		}
		if s.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Rate returns the average events/second over the window ending now.
// Before a full window has elapsed it averages over the elapsed time, so
// early readings are not diluted by empty history.
func (m *AtomicRateMeter) Rate() float64 {
	elapsed := time.Since(m.epoch)
	if elapsed <= 0 {
		return 0
	}
	seq := uint64(elapsed / m.bucket)
	n := uint64(len(m.slots))
	var sum uint64
	for k := uint64(0); k < n && k <= seq; k++ {
		q := seq - k
		cur := m.slots[q%n].Load()
		if cur>>rateCountBits == q&rateTagMask {
			sum += cur & rateCountMask
		}
	}
	window := m.Window()
	if elapsed < window {
		return float64(sum) / elapsed.Seconds()
	}
	return float64(sum) / window.Seconds()
}

// Total returns the lifetime event count. It is monotonic and cheap, so
// it doubles as the request counter the daemon orchestrator samples.
func (m *AtomicRateMeter) Total() uint64 { return m.total.Load() }
