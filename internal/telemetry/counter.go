package telemetry

import "fmt"

// Counters is a small named-counter set used by application models for the
// statistics the paper reports (hits, misses, forwarded queries, drops).
// It is not safe for concurrent use; the simulator is single-threaded.
// Live daemons, whose dataplane workers count concurrently, use
// AtomicCounters instead.
type Counters struct {
	names  []string
	values map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{values: make(map[string]uint64)}
}

// Inc adds n to the named counter, creating it on first use.
func (c *Counters) Inc(name string, n uint64) {
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += n
}

// Get returns the named counter's value (0 if never incremented).
func (c *Counters) Get(name string) uint64 { return c.values[name] }

// Names returns counter names in first-use order.
func (c *Counters) Names() []string { return append([]string(nil), c.names...) }

// Reset zeroes every counter but keeps the name set.
func (c *Counters) Reset() {
	for k := range c.values {
		c.values[k] = 0
	}
}

// String renders "name=value" pairs in first-use order.
func (c *Counters) String() string {
	s := ""
	for i, n := range c.names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", n, c.values[n])
	}
	return s
}
