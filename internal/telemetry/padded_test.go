package telemetry

import (
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestPaddedUint64FillsACacheLine(t *testing.T) {
	if s := unsafe.Sizeof(PaddedUint64{}); s != 64 {
		t.Fatalf("PaddedUint64 is %d bytes, want 64", s)
	}
}

func TestTopKSpaceSaving(t *testing.T) {
	tk := NewTopK(2)
	for i := 0; i < 10; i++ {
		tk.Observe(1, "a")
	}
	for i := 0; i < 5; i++ {
		tk.Observe(2, "b")
	}
	// "c" replaces the minimum ("b", 5) and inherits its count as err.
	tk.Observe(3, "c")
	snap := tk.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(snap))
	}
	byKey := map[string]HotKey{}
	for _, hk := range snap {
		byKey[hk.Key] = hk
	}
	if a := byKey["a"]; a.Count != 10 || a.Err != 0 {
		t.Fatalf("a = %+v, want count 10 err 0", a)
	}
	if c := byKey["c"]; c.Count != 6 || c.Err != 5 {
		t.Fatalf("c = %+v, want count 6 err 5", c)
	}
	if _, ok := byKey["b"]; ok {
		t.Fatal("b should have been evicted from the sketch")
	}
}

func TestTopKNilAndDisabled(t *testing.T) {
	var tk *TopK
	tk.Observe(1, "a") // must not panic
	if s := tk.Snapshot(); s != nil {
		t.Fatalf("nil sketch snapshot = %v, want nil", s)
	}
	if NewTopK(0) != nil {
		t.Fatal("NewTopK(0) should return the nil sketch")
	}
}

// benchCells hammers per-goroutine counters laid out by the given
// function; the packed/padded pair below measures the false-sharing
// cost the padding satellite is meant to kill.
func benchCells(b *testing.B, cell func(i int) *atomic.Uint64) {
	var next atomic.Uint32
	b.RunParallel(func(pb *testing.PB) {
		c := cell(int(next.Add(1) - 1))
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkCounterPadding(b *testing.B) {
	b.Run("packed", func(b *testing.B) {
		cells := make([]atomic.Uint64, 64)
		benchCells(b, func(i int) *atomic.Uint64 { return &cells[i%len(cells)] })
	})
	b.Run("padded", func(b *testing.B) {
		cells := make([]PaddedUint64, 64)
		benchCells(b, func(i int) *atomic.Uint64 { return &cells[i%len(cells)].Uint64 })
	})
}
