package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestAtomicCountersBasics(t *testing.T) {
	c := NewAtomicCounters()
	c.Inc("hits", 2)
	c.Inc("misses", 1)
	c.Inc("hits", 3)
	if got := c.Get("hits"); got != 5 {
		t.Fatalf("hits = %d, want 5", got)
	}
	if got := c.Get("absent"); got != 0 {
		t.Fatalf("absent = %d, want 0", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "hits" || names[1] != "misses" {
		t.Fatalf("names = %v", names)
	}
	snap := c.Snapshot()
	if snap["hits"] != 5 || snap["misses"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if s := c.String(); s != "hits=5 misses=1" {
		t.Fatalf("String() = %q", s)
	}
}

func TestAtomicCountersConcurrent(t *testing.T) {
	c := NewAtomicCounters()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := c.Handle("shared")
			for i := 0; i < per; i++ {
				h.Add(1)
				c.Inc("also", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("shared"); got != workers*per {
		t.Fatalf("shared = %d, want %d", got, workers*per)
	}
	if got := c.Get("also"); got != workers*per {
		t.Fatalf("also = %d, want %d", got, workers*per)
	}
}

func TestAtomicRateMeterTotalAndRate(t *testing.T) {
	m := NewAtomicRateMeter(10*time.Millisecond, 10)
	const workers, per = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := m.Total(); got != workers*per {
		t.Fatalf("Total = %d, want %d", got, workers*per)
	}
	if r := m.Rate(); r <= 0 {
		t.Fatalf("Rate = %v, want > 0 right after adds", r)
	}
}

func TestAtomicRateMeterWindowExpiry(t *testing.T) {
	m := NewAtomicRateMeter(time.Millisecond, 5)
	m.Add(100)
	// After far more than the 5ms window, the events should have aged out.
	time.Sleep(30 * time.Millisecond)
	if r := m.Rate(); r != 0 {
		t.Fatalf("Rate after window expiry = %v, want 0", r)
	}
	if got := m.Total(); got != 100 {
		t.Fatalf("Total = %d, want 100", got)
	}
}
