package telemetry

import (
	"time"

	"incod/internal/simnet"
)

// PowerSource is anything whose instantaneous power draw can be sampled.
// Device models in internal/power, internal/fpga and internal/asic all
// implement it.
type PowerSource interface {
	// PowerWatts returns the instantaneous power draw in watts at virtual
	// time now.
	PowerWatts(now simnet.Time) float64
}

// PowerSourceFunc adapts a function to PowerSource.
type PowerSourceFunc func(now simnet.Time) float64

// PowerWatts implements PowerSource.
func (f PowerSourceFunc) PowerWatts(now simnet.Time) float64 { return f(now) }

// SumPower is a PowerSource adding the draw of several sources, e.g. a
// server plus the NetFPGA card it hosts (§4.2: "the power consumption
// evaluation of LaKe includes the combined power consumption of the
// NetFPGA board and the server").
type SumPower []PowerSource

// PowerWatts implements PowerSource.
func (s SumPower) PowerWatts(now simnet.Time) float64 {
	var total float64
	for _, src := range s {
		total += src.PowerWatts(now)
	}
	return total
}

// PowerMeter integrates a PowerSource over virtual time, standing in for
// the SHW-3A watt-hour meter of §4.1. It samples at a fixed period and
// accumulates energy by the trapezoid rule.
type PowerMeter struct {
	src     PowerSource
	sim     *simnet.Simulator
	period  time.Duration
	cancel  func()
	startAt simnet.Time
	lastAt  simnet.Time
	lastW   float64
	joules  float64
	samples []Sample
	keep    bool
}

// Sample is one power reading.
type Sample struct {
	At    simnet.Time
	Watts float64
}

// NewPowerMeter attaches a meter to src, sampling every period. If keep is
// true all samples are retained for timeline plots (Figure 6).
func NewPowerMeter(sim *simnet.Simulator, src PowerSource, period time.Duration, keep bool) *PowerMeter {
	m := &PowerMeter{src: src, sim: sim, period: period, keep: keep}
	m.startAt = sim.Now()
	m.lastAt = m.startAt
	m.lastW = src.PowerWatts(m.lastAt)
	m.cancel = sim.Every(period, m.sample)
	return m
}

func (m *PowerMeter) sample() {
	now := m.sim.Now()
	w := m.src.PowerWatts(now)
	dt := now.Sub(m.lastAt).Seconds()
	m.joules += (w + m.lastW) / 2 * dt
	m.lastAt, m.lastW = now, w
	if m.keep {
		m.samples = append(m.samples, Sample{At: now, Watts: w})
	}
}

// Stop detaches the meter from the simulator clock.
func (m *PowerMeter) Stop() { m.cancel() }

// Joules returns the energy integrated so far.
func (m *PowerMeter) Joules() float64 { return m.joules }

// AverageWatts returns the mean power since the meter was attached.
func (m *PowerMeter) AverageWatts() float64 {
	elapsed := m.lastAt.Sub(m.startAt).Seconds()
	if elapsed == 0 {
		return m.lastW
	}
	return m.joules / elapsed
}

// Samples returns retained samples (empty unless keep was set).
func (m *PowerMeter) Samples() []Sample { return m.samples }

// LastWatts returns the most recent reading.
func (m *PowerMeter) LastWatts() float64 { return m.lastW }
