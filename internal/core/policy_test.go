package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"incod/internal/simnet"
)

// feed drives a policy with a constant-rate sample stream and returns the
// first shift decision, if any.
func feed(p Policy, from Placement, kpps float64, start, d, step time.Duration) (Decision, time.Duration) {
	for at := start; at <= start+d; at += step {
		if dec := p.Observe(Sample{At: at, Placement: from, RateKpps: kpps}); dec.Shift {
			return dec, at
		}
	}
	return Decision{}, 0
}

func TestThresholdPolicyKernel(t *testing.T) {
	p := NewThresholdPolicy(NetworkControllerConfig{
		ToNetworkKpps: 100, ToNetworkWindow: time.Second,
		ToHostKpps: 50, ToHostWindow: time.Second,
	})
	if p.Name() != "threshold" {
		t.Errorf("name = %q", p.Name())
	}
	// Low rate: no decision.
	if d, _ := feed(p, Host, 20, 0, 3*time.Second, 100*time.Millisecond); d.Shift {
		t.Fatalf("low rate decided %+v", d)
	}
	// Sustained high rate: to network.
	d, at := feed(p, Host, 200, 3*time.Second, 2*time.Second, 100*time.Millisecond)
	if !d.Shift || d.Target != Network {
		t.Fatalf("sustained high rate -> %+v", d)
	}
	p.Reset()
	// Hysteresis band from the network side: holds.
	if d, _ := feed(p, Network, 80, at, 5*time.Second, 100*time.Millisecond); d.Shift {
		t.Fatalf("hysteresis band decided %+v", d)
	}
	p.Reset()
	// Low rate from the network side: back to host.
	if d, _ := feed(p, Network, 10, at, 3*time.Second, 100*time.Millisecond); !d.Shift || d.Target != Host {
		t.Fatal("low sustained rate should return to host")
	}
}

func TestPowerPolicyIgnoresMissingMonitors(t *testing.T) {
	p := NewPowerPolicy(DefaultHostConfig(55, 50))
	// NaN power/CPU (no RAPL attached) must never trigger the offload.
	for at := time.Duration(0); at < 10*time.Second; at += 100 * time.Millisecond {
		d := p.Observe(Sample{At: at, Placement: Host,
			RateKpps: 500, PowerW: math.NaN(), CPUUtil: math.NaN()})
		if d.Shift {
			t.Fatalf("NaN monitors decided %+v", d)
		}
	}
}

func TestStaticPolicyPins(t *testing.T) {
	p := &StaticPolicy{Target: Network}
	if p.Name() != "static-network" {
		t.Errorf("name = %q", p.Name())
	}
	if d := p.Observe(Sample{Placement: Host}); !d.Shift || d.Target != Network {
		t.Error("static policy must shift toward its pin")
	}
	if d := p.Observe(Sample{Placement: Network}); d.Shift {
		t.Error("static policy at its pin must hold")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name, 100)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("bogus", 100); err == nil {
		t.Error("unknown policy name must error")
	}
}

func TestSetRateThresholdsValidation(t *testing.T) {
	p := NewThresholdPolicy(DefaultNetworkConfig(100))
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := p.SetRateThresholds(bad, 0); err == nil {
			t.Errorf("to-network %v must be rejected", bad)
		}
		if _, err := p.SetRateThresholds(0, bad); err == nil {
			t.Errorf("to-host %v must be rejected", bad)
		}
	}
	// Partial update keeps the other side.
	if _, err := p.SetRateThresholds(200, 0); err != nil {
		t.Fatal(err)
	}
	toNet, toHost := p.RateThresholds()
	if toNet != 200 || toHost != 70 {
		t.Errorf("thresholds = %v/%v, want 200/70", toNet, toHost)
	}
	// Hysteresis clamp is reported, not silent.
	clamped, err := p.SetRateThresholds(0, 500)
	if err != nil || !clamped {
		t.Errorf("clamped=%v err=%v, want reported clamp", clamped, err)
	}
	if _, toHost = p.RateThresholds(); toHost >= 200 {
		t.Errorf("to-host %v must stay below to-network", toHost)
	}
}

func TestParsePlacement(t *testing.T) {
	if p, err := ParsePlacement("network"); err != nil || p != Network {
		t.Error("network should parse")
	}
	if p, err := ParsePlacement("host"); err != nil || p != Host {
		t.Error("host should parse")
	}
	if _, err := ParsePlacement("fpga"); err == nil {
		t.Error("bad placement must error")
	}
}

// A failing transition task must leave the service in place; the
// controller records the error and retries on a later tick.
func TestControllerRetriesFailedShift(t *testing.T) {
	sim := simnet.New(9)
	fail := true
	svc := &FuncService{ServiceName: "flaky", Where: Host, OnShift: func(Placement) error {
		if fail {
			return errors.New("leader election lost")
		}
		return nil
	}}
	rate := 500.0
	ctl := NewNetworkController(sim, svc, func() float64 { return rate }, NetworkControllerConfig{
		ToNetworkKpps: 100, ToNetworkWindow: time.Second,
		ToHostKpps: 50, ToHostWindow: time.Second,
		SamplePeriod: 100 * time.Millisecond,
	})
	ctl.Start()
	sim.RunFor(3 * time.Second)
	if svc.Placement() != Host {
		t.Fatal("failed shift must not move the service")
	}
	if ctl.LastErr == nil || len(ctl.Transitions) != 0 {
		t.Fatalf("want recorded error and no transitions, got err=%v transitions=%v", ctl.LastErr, ctl.Transitions)
	}
	fail = false
	sim.RunFor(2 * time.Second)
	if svc.Placement() != Network || len(ctl.Transitions) != 1 {
		t.Fatalf("controller should retry and succeed (placement %v, transitions %v)", svc.Placement(), ctl.Transitions)
	}
	if ctl.LastErr != nil {
		t.Errorf("LastErr should clear on success, got %v", ctl.LastErr)
	}
	ctl.Stop()
}

// The three adapters advertise their §9.2 transition tasks.
var (
	_ CostReporter = (*KVSService)(nil)
	_ CostReporter = (*DNSService)(nil)
	_ CostReporter = (*PaxosService)(nil)
)
