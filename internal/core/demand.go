package core

import "incod/internal/power"

// DemandCurve composes a software power curve and a hardware power curve
// into the on-demand envelope of Figure 5: below the crossover the service
// runs (and the system pays) the software side; above it, the hardware
// side. "At low utilization power consumption is derived from the
// properties of the software-based system. As utilization increases,
// processing is shifted to the network."
type DemandCurve struct {
	Name string
	// SW and HW map rate (kpps) to total system watts for each placement.
	SW func(kpps float64) float64
	HW func(kpps float64) float64
	// CrossKpps is the shift point. NewDemandCurve derives it from the
	// curves' intersection.
	CrossKpps float64
}

// NewDemandCurve builds the envelope, locating the crossover within
// [0, limitKpps]. If the hardware never wins, the envelope is pure
// software (CrossKpps < 0).
func NewDemandCurve(name string, sw, hw func(kpps float64) float64, limitKpps float64) DemandCurve {
	return DemandCurve{
		Name:      name,
		SW:        sw,
		HW:        hw,
		CrossKpps: power.Crossover(sw, hw, limitKpps),
	}
}

// Power returns the envelope's watts at the given rate.
func (d DemandCurve) Power(kpps float64) float64 {
	if d.CrossKpps >= 0 && kpps >= d.CrossKpps {
		return d.HW(kpps)
	}
	return d.SW(kpps)
}

// Placement returns where the on-demand system runs the service at the
// given rate.
func (d DemandCurve) Placement(kpps float64) Placement {
	if d.CrossKpps >= 0 && kpps >= d.CrossKpps {
		return Network
	}
	return Host
}

// SavingFraction returns the §9 headline metric at a rate: the fraction of
// software power the on-demand placement saves (Figure 5; "saves up to 50%
// of the power compared with software-based solutions").
func (d DemandCurve) SavingFraction(kpps float64) float64 {
	sw := d.SW(kpps)
	if sw <= 0 {
		return 0
	}
	return 1 - d.Power(kpps)/sw
}

// MaxSaving scans rates up to limitKpps and returns the best saving
// fraction and the rate where it occurs.
func (d DemandCurve) MaxSaving(limitKpps float64, steps int) (frac, atKpps float64) {
	if steps < 1 {
		steps = 100
	}
	for i := 0; i <= steps; i++ {
		r := limitKpps * float64(i) / float64(steps)
		if f := d.SavingFraction(r); f > frac {
			frac, atKpps = f, r
		}
	}
	return frac, atKpps
}
