package core

import (
	"incod/internal/dns"
	"incod/internal/kvs"
	"incod/internal/paxos"
)

// KVSService adapts a LaKe card to the Service interface. The §9.2 KVS
// transition task: activating brings the memories out of reset with cold
// caches (queries keep flowing to software until the cache warms, so the
// query rate is maintained); deactivating parks the card in the
// reset+gated low-power state.
type KVSService struct {
	lake *kvs.LaKe
}

// NewKVSService wraps lake, aligning the initial placement with the
// board's module state.
func NewKVSService(lake *kvs.LaKe) *KVSService { return &KVSService{lake: lake} }

// Name implements Service.
func (s *KVSService) Name() string { return "kvs" }

// Placement implements Service.
func (s *KVSService) Placement() Placement {
	if s.lake.Active() {
		return Network
	}
	return Host
}

// Shift implements Service.
func (s *KVSService) Shift(to Placement) {
	if to == s.Placement() {
		return
	}
	if to == Network {
		s.lake.Activate()
	} else {
		s.lake.Deactivate()
	}
}

// DNSService adapts an Emu DNS card. Its transition task syncs the
// on-chip resolution table before enabling hardware service (§9.2: the
// DNS shift "is much the same as shifting KVS", with a simpler host-side
// task).
type DNSService struct {
	emu *dns.EmuDNS
}

// NewDNSService wraps emu.
func NewDNSService(emu *dns.EmuDNS) *DNSService { return &DNSService{emu: emu} }

// Name implements Service.
func (s *DNSService) Name() string { return "dns" }

// Placement implements Service.
func (s *DNSService) Placement() Placement {
	if s.emu.Active() {
		return Network
	}
	return Host
}

// Shift implements Service.
func (s *DNSService) Shift(to Placement) {
	if to == s.Placement() {
		return
	}
	if to == Network {
		s.emu.SyncZone()
		s.emu.Activate()
	} else {
		s.emu.Deactivate()
	}
}

// PaxosService adapts a Paxos deployment: shifting runs the §9.2 leader
// election (ballot bump, sequence restart, forwarding-rule rewrite), with
// convergence via acceptor piggybacks, client retries and gap recovery.
type PaxosService struct {
	dep *paxos.Deployment
}

// NewPaxosService wraps dep.
func NewPaxosService(dep *paxos.Deployment) *PaxosService { return &PaxosService{dep: dep} }

// Name implements Service.
func (s *PaxosService) Name() string { return "paxos" }

// Placement implements Service.
func (s *PaxosService) Placement() Placement {
	if s.dep.CurrentLeader() == s.dep.HWLeader {
		return Network
	}
	return Host
}

// Shift implements Service.
func (s *PaxosService) Shift(to Placement) {
	if to == s.Placement() {
		return
	}
	if to == Network {
		s.dep.ShiftLeader(s.dep.HWLeader)
	} else {
		s.dep.ShiftLeader(s.dep.SWLeader)
	}
}
