package core

import (
	"fmt"
	"time"

	"incod/internal/dns"
	"incod/internal/kvs"
	"incod/internal/paxos"
)

// KVSService adapts a LaKe card to the Service interface. The §9.2 KVS
// transition task: activating brings the memories out of reset with cold
// caches (queries keep flowing to software until the cache warms, so the
// query rate is maintained); deactivating parks the card in the
// reset+gated low-power state.
type KVSService struct {
	lake *kvs.LaKe
}

// NewKVSService wraps lake, aligning the initial placement with the
// board's module state.
func NewKVSService(lake *kvs.LaKe) *KVSService { return &KVSService{lake: lake} }

// Name implements Service.
func (s *KVSService) Name() string { return "kvs" }

// Placement implements Service.
func (s *KVSService) Placement() Placement {
	if s.lake.Active() {
		return Network
	}
	return Host
}

// Shift implements Service. Under the partial-reconfiguration idle
// strategy a shift can fail while the previous reconfiguration is still
// flashing the fabric.
func (s *KVSService) Shift(to Placement) error {
	if to == s.Placement() {
		return nil
	}
	if s.lake.Strategy == kvs.PartialReconfig && s.lake.Reconfiguring() {
		return fmt.Errorf("kvs: partial reconfiguration in progress, cannot shift to %s yet", to)
	}
	if to == Network {
		s.lake.Activate()
	} else {
		s.lake.Deactivate()
	}
	return nil
}

// TransitionCost implements CostReporter.
func (s *KVSService) TransitionCost(to Placement) TransitionCost {
	if s.lake.Strategy == kvs.PartialReconfig {
		return TransitionCost{Duration: kvs.ReconfigHalt,
			Note: "partial reconfiguration halts all card traffic"}
	}
	if to == Network {
		return TransitionCost{Note: "LaKe cache warm-up (queries fall through to software until warm)"}
	}
	return TransitionCost{Note: "park card in reset+gated low-power state"}
}

// DNSService adapts an Emu DNS card. Its transition task syncs the
// on-chip resolution table before enabling hardware service (§9.2: the
// DNS shift "is much the same as shifting KVS", with a simpler host-side
// task).
type DNSService struct {
	emu *dns.EmuDNS
}

// NewDNSService wraps emu.
func NewDNSService(emu *dns.EmuDNS) *DNSService { return &DNSService{emu: emu} }

// Name implements Service.
func (s *DNSService) Name() string { return "dns" }

// Placement implements Service.
func (s *DNSService) Placement() Placement {
	if s.emu.Active() {
		return Network
	}
	return Host
}

// Shift implements Service.
func (s *DNSService) Shift(to Placement) error {
	if to == s.Placement() {
		return nil
	}
	if to == Network {
		if s.emu.Zone() == nil {
			return fmt.Errorf("dns: no zone to sync onto the card")
		}
		s.emu.SyncZone()
		s.emu.Activate()
	} else {
		s.emu.Deactivate()
	}
	return nil
}

// TransitionCost implements CostReporter.
func (s *DNSService) TransitionCost(to Placement) TransitionCost {
	if to == Network {
		n := 0
		if z := s.emu.Zone(); z != nil {
			n = z.Len()
		}
		return TransitionCost{Note: fmt.Sprintf("sync %d-record zone onto the card", n)}
	}
	return TransitionCost{Note: "disable hardware pipeline, software keeps zone"}
}

// PaxosService adapts a Paxos deployment: shifting runs the §9.2 leader
// election (ballot bump, sequence restart, forwarding-rule rewrite), with
// convergence via acceptor piggybacks, client retries and gap recovery.
type PaxosService struct {
	dep *paxos.Deployment
}

// NewPaxosService wraps dep.
func NewPaxosService(dep *paxos.Deployment) *PaxosService { return &PaxosService{dep: dep} }

// Name implements Service.
func (s *PaxosService) Name() string { return "paxos" }

// Placement implements Service.
func (s *PaxosService) Placement() Placement {
	if s.dep.CurrentLeader() == s.dep.HWLeader {
		return Network
	}
	return Host
}

// Shift implements Service. The leader election fails if the target
// leader is not provisioned.
func (s *PaxosService) Shift(to Placement) error {
	if to == s.Placement() {
		return nil
	}
	target := s.dep.SWLeader
	if to == Network {
		target = s.dep.HWLeader
	}
	if target == nil {
		return fmt.Errorf("paxos: no %s leader provisioned for election", to)
	}
	s.dep.ShiftLeader(target)
	return nil
}

// TransitionCost implements CostReporter. Figure 7: throughput stalls for
// roughly one client retry timeout while clients re-point at the new
// leader.
func (s *PaxosService) TransitionCost(Placement) TransitionCost {
	return TransitionCost{Duration: 100 * time.Millisecond,
		Note: "leader election; clients stall up to one retry timeout"}
}
