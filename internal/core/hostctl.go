package core

import (
	"fmt"
	"time"

	"incod/internal/simnet"
)

func fmtReason(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// HostControllerConfig holds the §9.1 host-controlled parameters: one set
// for shifting to the network (power + CPU, sustained) and one for
// shifting back (network-observed rate, sustained).
type HostControllerConfig struct {
	// ToNetworkPowerWatts: RAPL package power that must be exceeded...
	ToNetworkPowerWatts float64
	// ToNetworkCPUUtil: ...together with this CPU utilization ("monitoring
	// the power consumption alone is not sufficient, as a high power
	// consumption can be triggered by multiple applications").
	ToNetworkCPUUtil float64
	// ToNetworkSustain is how long both must hold ("the information is
	// inspected over time, avoiding harsh decisions based on spikes and
	// outliers"). Figure 6 uses three seconds.
	ToNetworkSustain time.Duration
	// ToHostKpps: shift back when the device-reported application rate
	// stays below this ("the controller needs information from the
	// network ... otherwise the shift may ... bounce back and forth").
	ToHostKpps float64
	// ToHostSustain is the mirrored sustain window.
	ToHostSustain time.Duration
	// SamplePeriod is the monitoring tick (RAPL read cadence).
	SamplePeriod time.Duration
}

// DefaultHostConfig returns the Figure 6 parameters: 3 s sustained high
// power+CPU to offload, mirrored to return.
func DefaultHostConfig(powerWatts, toHostKpps float64) HostControllerConfig {
	return HostControllerConfig{
		ToNetworkPowerWatts: powerWatts,
		ToNetworkCPUUtil:    0.7,
		ToNetworkSustain:    3 * time.Second,
		ToHostKpps:          toHostKpps,
		ToHostSustain:       3 * time.Second,
		SamplePeriod:        100 * time.Millisecond,
	}
}

// HostController implements the §9.1 host-controlled design. It reads the
// host's power (RAPL) and CPU usage, plus the device's application packet
// rate for the return path.
type HostController struct {
	sim *simnet.Simulator
	svc Service
	cfg HostControllerConfig

	// powerFn reads host package power in watts (simulated RAPL window).
	powerFn func() float64
	// cpuFn reads the application host's CPU utilization (0..1).
	cpuFn func() float64
	// netRateFn reads the device's application rate in kpps.
	netRateFn func() float64

	condSince simnet.Time
	condOn    bool
	cancel    func()
	raplReads uint64

	Transitions []Transition
}

// NewHostController binds the controller to its three monitors.
func NewHostController(sim *simnet.Simulator, svc Service, powerFn, cpuFn, netRateFn func() float64, cfg HostControllerConfig) *HostController {
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = 100 * time.Millisecond
	}
	if cfg.ToNetworkSustain <= 0 {
		cfg.ToNetworkSustain = 3 * time.Second
	}
	if cfg.ToHostSustain <= 0 {
		cfg.ToHostSustain = cfg.ToNetworkSustain
	}
	return &HostController{
		sim: sim, svc: svc, cfg: cfg,
		powerFn: powerFn, cpuFn: cpuFn, netRateFn: netRateFn,
	}
}

// Start begins monitoring.
func (c *HostController) Start() {
	c.Stop()
	c.cancel = c.sim.Every(c.cfg.SamplePeriod, c.tick)
}

// Stop halts the controller.
func (c *HostController) Stop() {
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
}

// RAPLReads counts power-counter reads (the paper attributes the
// controller's 0.3% CPU cost "mainly" to these).
func (c *HostController) RAPLReads() uint64 { return c.raplReads }

// Flaps counts transitions beyond the first.
func (c *HostController) Flaps() int {
	if len(c.Transitions) <= 1 {
		return 0
	}
	return len(c.Transitions) - 1
}

func (c *HostController) tick() {
	now := c.sim.Now()
	switch c.svc.Placement() {
	case Host:
		c.raplReads++
		power := c.powerFn()
		cpu := c.cpuFn()
		hot := power > c.cfg.ToNetworkPowerWatts && cpu > c.cfg.ToNetworkCPUUtil
		if c.holdCondition(hot, now, c.cfg.ToNetworkSustain) {
			c.svc.Shift(Network)
			c.Transitions = append(c.Transitions, Transition{
				At: now, To: Network,
				Reason: fmtReason("power %.1fW cpu %.0f%% sustained %v", power, cpu*100, c.cfg.ToNetworkSustain),
			})
			c.condOn = false
		}
	case Network:
		rate := c.netRateFn()
		cold := rate < c.cfg.ToHostKpps
		if c.holdCondition(cold, now, c.cfg.ToHostSustain) {
			c.svc.Shift(Host)
			c.Transitions = append(c.Transitions, Transition{
				At: now, To: Host,
				Reason: fmtReason("network rate %.1f kpps sustained %v below threshold", rate, c.cfg.ToHostSustain),
			})
			c.condOn = false
		}
	}
}

// holdCondition tracks how long cond has held continuously and reports
// whether it has been true for at least sustain.
func (c *HostController) holdCondition(cond bool, now simnet.Time, sustain time.Duration) bool {
	if !cond {
		c.condOn = false
		return false
	}
	if !c.condOn {
		c.condOn = true
		c.condSince = now
		return sustain == 0
	}
	return now.Sub(c.condSince) >= sustain
}
