package core

import (
	"math"
	"time"

	"incod/internal/simnet"
)

// NetworkControllerConfig holds the two mirrored parameter pairs of the
// §9.1 network-controlled design, i.e. the ThresholdPolicy parameters.
// "Using two sets of parameters provides hysteresis, and attends to
// concerns of rapidly shifting workloads back-and-forth."
type NetworkControllerConfig struct {
	// ToNetworkKpps: shift to the network when the average rate over
	// ToNetworkWindow exceeds this.
	ToNetworkKpps   float64
	ToNetworkWindow time.Duration
	// ToHostKpps: shift back when the average rate over ToHostWindow
	// falls below this. Must be below ToNetworkKpps for hysteresis.
	ToHostKpps   float64
	ToHostWindow time.Duration
	// SamplePeriod is how often the classifier's rate counter is read.
	SamplePeriod time.Duration
}

// DefaultNetworkConfig returns thresholds bracketing a crossover rate,
// with the paper-style hysteresis gap.
func DefaultNetworkConfig(crossKpps float64) NetworkControllerConfig {
	return NetworkControllerConfig{
		ToNetworkKpps:   crossKpps * 1.1,
		ToNetworkWindow: time.Second,
		ToHostKpps:      crossKpps * 0.7,
		ToHostWindow:    2 * time.Second,
		SamplePeriod:    100 * time.Millisecond,
	}
}

// HostControllerConfig holds the §9.1 host-controlled parameters, i.e.
// the PowerPolicy parameters: one set for shifting to the network (power +
// CPU, sustained) and one for shifting back (network-observed rate,
// sustained).
type HostControllerConfig struct {
	// ToNetworkPowerWatts: RAPL package power that must be exceeded...
	ToNetworkPowerWatts float64
	// ToNetworkCPUUtil: ...together with this CPU utilization ("monitoring
	// the power consumption alone is not sufficient, as a high power
	// consumption can be triggered by multiple applications").
	ToNetworkCPUUtil float64
	// ToNetworkSustain is how long both must hold ("the information is
	// inspected over time, avoiding harsh decisions based on spikes and
	// outliers"). Figure 6 uses three seconds.
	ToNetworkSustain time.Duration
	// ToHostKpps: shift back when the device-reported application rate
	// stays below this ("the controller needs information from the
	// network ... otherwise the shift may ... bounce back and forth").
	ToHostKpps float64
	// ToHostSustain is the mirrored sustain window.
	ToHostSustain time.Duration
	// SamplePeriod is the monitoring tick (RAPL read cadence).
	SamplePeriod time.Duration
}

// DefaultHostConfig returns the Figure 6 parameters: 3 s sustained high
// power+CPU to offload, mirrored to return.
func DefaultHostConfig(powerWatts, toHostKpps float64) HostControllerConfig {
	return HostControllerConfig{
		ToNetworkPowerWatts: powerWatts,
		ToNetworkCPUUtil:    0.7,
		ToNetworkSustain:    3 * time.Second,
		ToHostKpps:          toHostKpps,
		ToHostSustain:       3 * time.Second,
		SamplePeriod:        100 * time.Millisecond,
	}
}

// Monitors are a Controller's inputs. RateKpps feeds every policy; the
// power and CPU monitors stand in for RAPL and are only read while the
// service runs on the host (the paper's controller pays its 0.3% CPU
// "mainly for performing RAPL reads").
type Monitors struct {
	// RateKpps reads the device's application message rate.
	RateKpps func() float64
	// PowerWatts reads host package power (simulated RAPL window).
	PowerWatts func() float64
	// CPUUtil reads the application host's CPU utilization (0..1).
	CPUUtil func() float64
}

// Controller drives one Policy over one Service on the simulator clock:
// each sample period it reads the monitors, feeds the policy, and applies
// any decision. The decision kernels themselves live in the policies and
// are shared with the wall-clock daemon orchestrator.
type Controller struct {
	sim *simnet.Simulator
	svc Service
	pol Policy
	mon Monitors

	period    time.Duration
	cancel    func()
	raplReads uint64

	// Transitions is the decision log.
	Transitions []Transition
	// LastErr is the most recent Shift failure; the controller retries on
	// subsequent ticks.
	LastErr error
}

// NewController binds pol to svc, sampling mon every period.
func NewController(sim *simnet.Simulator, svc Service, pol Policy, mon Monitors, period time.Duration) *Controller {
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	return &Controller{sim: sim, svc: svc, pol: pol, mon: mon, period: period}
}

// NewNetworkController builds the §9.1 network-controlled design: the
// mirrored-threshold policy reading load from rateFn. Call Start to begin
// deciding.
func NewNetworkController(sim *simnet.Simulator, svc Service, rateFn func() float64, cfg NetworkControllerConfig) *Controller {
	return NewController(sim, svc, NewThresholdPolicy(cfg), Monitors{RateKpps: rateFn}, cfg.SamplePeriod)
}

// NewHostController builds the §9.1 host-controlled design: the
// power-aware policy reading the three host-side monitors.
func NewHostController(sim *simnet.Simulator, svc Service, powerFn, cpuFn, netRateFn func() float64, cfg HostControllerConfig) *Controller {
	return NewController(sim, svc, NewPowerPolicy(cfg),
		Monitors{RateKpps: netRateFn, PowerWatts: powerFn, CPUUtil: cpuFn}, cfg.SamplePeriod)
}

// Policy returns the controller's decision rule.
func (c *Controller) Policy() Policy { return c.pol }

// Start begins periodic sampling and deciding.
func (c *Controller) Start() {
	c.Stop()
	c.cancel = c.sim.Every(c.period, c.tick)
}

// Stop halts the controller.
func (c *Controller) Stop() {
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
}

// RAPLReads counts power-counter reads (the paper attributes the
// controller's 0.3% CPU cost "mainly" to these).
func (c *Controller) RAPLReads() uint64 { return c.raplReads }

// Flaps counts transitions beyond the first — the quantity hysteresis is
// meant to minimize.
func (c *Controller) Flaps() int {
	if len(c.Transitions) <= 1 {
		return 0
	}
	return len(c.Transitions) - 1
}

// tick samples the monitors, consults the policy, applies the decision.
func (c *Controller) tick() {
	now := c.sim.Now()
	s := Sample{At: time.Duration(now), Placement: c.svc.Placement(), PowerW: math.NaN(), CPUUtil: math.NaN()}
	if c.mon.RateKpps != nil {
		s.RateKpps = c.mon.RateKpps()
	}
	if s.Placement == Host {
		if c.mon.PowerWatts != nil {
			c.raplReads++
			s.PowerW = c.mon.PowerWatts()
		}
		if c.mon.CPUUtil != nil {
			s.CPUUtil = c.mon.CPUUtil()
		}
	}
	d := c.pol.Observe(s)
	if !d.Shift {
		return
	}
	if err := c.svc.Shift(d.Target); err != nil {
		c.LastErr = err
		return
	}
	c.LastErr = nil
	tr := Transition{At: now, To: d.Target, Reason: d.Reason}
	if cr, ok := c.svc.(CostReporter); ok {
		tr.Cost = cr.TransitionCost(d.Target)
	}
	c.Transitions = append(c.Transitions, tr)
	// Restart windowed state so the mirrored rule evaluates fresh data.
	c.pol.Reset()
}
