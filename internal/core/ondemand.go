// Package core implements the paper's contribution: in-network computing
// on demand (§9) — dynamically shifting a service between the host CPU and
// a programmable network device so the system always sits on the
// power-optimal side of the software/hardware crossover.
//
// Two controller designs are provided, exactly as proposed in §9.1:
//
//   - NetworkController: decides in the network device from traffic load
//     alone. A pair of (rate threshold, averaging window) parameters moves
//     the workload to the network; a mirrored pair moves it back,
//     providing hysteresis. The paper's version is "40 lines of code
//     within the FPGA's classifier module".
//
//   - HostController: decides on the host from CPU usage and RAPL power
//     readings, with dual parameter sets and spike suppression; shifting
//     back also consults the device's observed packet rate. The paper's
//     version is "204 lines of code ... 0.3% CPU usage, mainly for
//     performing RAPL reads".
package core

import (
	"fmt"

	"incod/internal/simnet"
)

// Placement is where a service currently runs.
type Placement int

// Placements.
const (
	Host Placement = iota
	Network
)

// String names the placement.
func (p Placement) String() string {
	if p == Network {
		return "network"
	}
	return "host"
}

// Service is a workload that can run on either substrate. Implementations
// perform the §9.2 application-specific transition task inside Shift
// (LaKe cache activation, Paxos leader election, DNS table sync).
type Service interface {
	// Name identifies the service in transition logs.
	Name() string
	// Placement reports where the service currently runs.
	Placement() Placement
	// Shift moves the service. Shifting to the current placement must be
	// a no-op.
	Shift(to Placement)
}

// Transition records one controller decision.
type Transition struct {
	At     simnet.Time
	To     Placement
	Reason string
}

// String renders the transition for logs.
func (t Transition) String() string {
	return fmt.Sprintf("%v -> %s (%s)", t.At, t.To, t.Reason)
}

// FuncService adapts closures to Service, for tests and simple bindings.
type FuncService struct {
	ServiceName string
	Where       Placement
	OnShift     func(to Placement)
}

// Name implements Service.
func (f *FuncService) Name() string { return f.ServiceName }

// Placement implements Service.
func (f *FuncService) Placement() Placement { return f.Where }

// Shift implements Service.
func (f *FuncService) Shift(to Placement) {
	if to == f.Where {
		return
	}
	f.Where = to
	if f.OnShift != nil {
		f.OnShift(to)
	}
}
