// Package core implements the paper's contribution: in-network computing
// on demand (§9) — dynamically shifting a service between the host CPU and
// a programmable network device so the system always sits on the
// power-optimal side of the software/hardware crossover.
//
// The control plane is built from three first-class abstractions:
//
//   - Service: a workload that can run on either substrate, with a
//     fallible Shift (the §9.2 transition tasks — Paxos leader election,
//     LaKe cache activation, DNS zone sync — can fail) and an optional
//     TransitionCost hook.
//
//   - Policy: a pluggable placement decision rule (Observe(Sample)
//     Decision). ThresholdPolicy is the §9.1 network-controlled kernel
//     ("40 lines of code within the FPGA's classifier module"),
//     PowerPolicy the §9.1 host-controlled kernel ("204 lines of code ...
//     0.3% CPU usage, mainly for performing RAPL reads"), StaticPolicy a
//     manual pin. The same policy code drives the sim-time Controller here
//     and the wall-clock Orchestrator in internal/daemon.
//
//   - Controller: drives one Policy over one Service on the simulator
//     clock. NewNetworkController and NewHostController build the two
//     paper configurations.
package core

import (
	"fmt"
	"sync"
	"time"

	"incod/internal/simnet"
)

// Placement is where a service currently runs.
type Placement int

// Placements.
const (
	Host Placement = iota
	Network
)

// String names the placement.
func (p Placement) String() string {
	if p == Network {
		return "network"
	}
	return "host"
}

// Service is a workload that can run on either substrate. Implementations
// perform the §9.2 application-specific transition task inside Shift
// (LaKe cache activation, Paxos leader election, DNS table sync).
type Service interface {
	// Name identifies the service in transition logs.
	Name() string
	// Placement reports where the service currently runs.
	Placement() Placement
	// Shift moves the service, running its transition task. Shifting to
	// the current placement must be a no-op returning nil. A non-nil error
	// means the service stayed where it was (controllers retry on the
	// next decision).
	Shift(to Placement) error
}

// TransitionCost describes the expected expense of one placement shift —
// the price of the §9.2 transition task.
type TransitionCost struct {
	// Duration is how long service quality is expected to be degraded
	// (traffic halt, client stall); zero when the task runs concurrently
	// with serving.
	Duration time.Duration
	// Note names the transition task.
	Note string
}

// CostReporter is an optional Service extension reporting the expected
// cost of shifting to a placement. Controllers and the daemon
// orchestrator attach it to the transition log and status API.
type CostReporter interface {
	TransitionCost(to Placement) TransitionCost
}

// Transition records one controller decision.
type Transition struct {
	At     simnet.Time
	To     Placement
	Reason string
	// Cost is the service-reported transition cost, when the service
	// implements CostReporter.
	Cost TransitionCost
}

// String renders the transition for logs.
func (t Transition) String() string {
	return fmt.Sprintf("%v -> %s (%s)", t.At, t.To, t.Reason)
}

// FuncService adapts closures to Service, for tests, advisory daemons and
// simple bindings. Like every Service driven by the live orchestrator, it
// keeps Placement readable while a Shift is blocked inside its transition
// task — the orchestrator releases its own mutex for the duration, so
// status reads race the transition by design.
type FuncService struct {
	ServiceName string
	// Where seeds the placement; after construction read it through
	// Placement (it is guarded by an internal mutex).
	Where Placement
	// OnShift, if set, runs the transition task; returning an error
	// aborts the shift.
	OnShift func(to Placement) error

	mu sync.Mutex
}

// Name implements Service.
func (f *FuncService) Name() string { return f.ServiceName }

// Placement implements Service. It never blocks behind an in-flight
// OnShift.
func (f *FuncService) Placement() Placement {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.Where
}

// Shift implements Service. The mutex is released while OnShift runs,
// mirroring the real tiers: a slow transition task must not block
// concurrent Placement reads.
func (f *FuncService) Shift(to Placement) error {
	if to == f.Placement() {
		return nil
	}
	if f.OnShift != nil {
		if err := f.OnShift(to); err != nil {
			return err
		}
	}
	f.mu.Lock()
	f.Where = to
	f.mu.Unlock()
	return nil
}
