package core

import (
	"fmt"
	"testing"
	"time"

	"incod/internal/dns"
	"incod/internal/kvs"
	"incod/internal/paxos"
	"incod/internal/power"
	"incod/internal/simnet"
)

// Figure 6 flow: host-controlled shift of the KVS from software to
// hardware under sustained load, with no throughput dip and a ~10x hit
// latency improvement.
func TestKVSOnDemandTransition(t *testing.T) {
	sim := simnet.New(21)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	backend := kvs.NewSoftServer(net, "host", power.MemcachedMellanox)
	lake := kvs.NewLaKe(net, "lake", backend)
	lake.Deactivate() // start in software (the "start of the day" state)
	client := kvs.NewClient(net, "client", "lake")

	for i := 0; i < 200; i++ {
		backend.Store().Set(fmt.Sprintf("key-%d", i), kvs.Entry{Value: []byte("v")})
	}
	i := 0
	client.KeyFunc = func() string { i++; return fmt.Sprintf("key-%d", i%200) }

	svc := NewKVSService(lake)
	if svc.Placement() != Host {
		t.Fatal("service should start on the host")
	}
	// Host controller: CPU util and power come from the backend model.
	ctl := NewHostController(sim, svc,
		func() float64 { return backend.PowerWatts(sim.Now()) },
		backend.Utilization,
		lake.RateKpps,
		HostControllerConfig{
			ToNetworkPowerWatts: 45, ToNetworkCPUUtil: 0.05,
			ToNetworkSustain: 1 * time.Second,
			ToHostKpps:       1, ToHostSustain: 2 * time.Second,
			SamplePeriod: 100 * time.Millisecond,
		})
	ctl.Start()

	client.Start(100) // 100 kpps, above the KVS crossover
	sim.RunFor(5 * time.Second)
	if svc.Placement() != Network {
		t.Fatalf("controller did not offload (transitions: %v)", ctl.Transitions)
	}
	// §9.2: "the transition from software to hardware had no effect on
	// KVS throughput" — every request answered.
	client.Stop()
	sim.RunFor(100 * time.Millisecond)
	sent, recv := client.Counters.Get("sent"), client.Counters.Get("recv")
	if recv < sent*99/100 {
		t.Errorf("recv %d of %d; transition should not drop traffic", recv, sent)
	}
	// Hit latency after warm-up is the ~1.4-1.7µs hardware class.
	if lake.HitRatio() < 0.5 {
		t.Errorf("hit ratio = %v, cache did not warm", lake.HitRatio())
	}
	if med := lake.HitLatency.Median(); med > 2*time.Microsecond {
		t.Errorf("hardware hit median = %v, want <2µs (10x better than software)", med)
	}
}

// The network-controlled variant of the same shift.
func TestKVSNetworkControlled(t *testing.T) {
	sim := simnet.New(22)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	backend := kvs.NewSoftServer(net, "host", power.MemcachedMellanox)
	lake := kvs.NewLaKe(net, "lake", backend)
	lake.Deactivate()
	client := kvs.NewClient(net, "client", "lake")
	backend.Store().Set("k", kvs.Entry{Value: []byte("v")})
	client.KeyFunc = func() string { return "k" }

	svc := NewKVSService(lake)
	ctl := NewNetworkController(sim, svc, lake.RateKpps, DefaultNetworkConfig(80))
	ctl.Start()

	client.Start(150)
	sim.RunFor(4 * time.Second)
	if svc.Placement() != Network {
		t.Fatalf("network controller did not offload; rate=%v", lake.RateKpps())
	}
	// Load drops: shift back.
	client.Stop()
	client.Start(5)
	sim.RunFor(6 * time.Second)
	client.Stop()
	if svc.Placement() != Host {
		t.Errorf("network controller did not shift back (transitions: %v)", ctl.Transitions)
	}
}

// DNS on demand with zone sync on activation.
func TestDNSOnDemand(t *testing.T) {
	sim := simnet.New(23)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	zone := dns.NewZone()
	zone.PopulateSequential(50)
	backend := dns.NewSoftServer(net, "host", zone)
	emu := dns.NewEmuDNS(net, "emu", backend)
	emu.Deactivate()
	client := dns.NewClient(net, "client", "emu")
	i := 0
	client.NameFunc = func() string { i++; return dns.SequentialName(i % 50) }

	// A record added while the hardware is parked: the sync-on-shift
	// must pick it up.
	zone.Add("late.example.com", [4]byte{10, 0, 0, 99}, 60)

	svc := NewDNSService(emu)
	ctl := NewNetworkController(sim, svc, emu.RateKpps, DefaultNetworkConfig(150))
	ctl.Start()

	client.Start(300)
	sim.RunFor(4 * time.Second)
	client.Stop()
	if svc.Placement() != Network {
		t.Fatalf("DNS not offloaded; rate=%v", emu.RateKpps())
	}
	if _, ok := emu.Zone().Lookup("late.example.com"); !ok {
		t.Error("Shift(Network) must sync the on-chip zone")
	}
}

// Figure 7 flow: Paxos leader shift with throughput stall bounded by the
// client timeout.
func TestPaxosOnDemandLeaderShift(t *testing.T) {
	sim := simnet.New(24)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	dep := paxos.NewDeployment(net, paxos.Config{})
	c := dep.Clients[0]
	c.RetryTimeout = 100 * time.Millisecond
	svc := NewPaxosService(dep)
	if svc.Placement() != Host {
		t.Fatal("paxos starts in software")
	}

	ctl := NewNetworkController(sim, svc, func() float64 { return dep.CurrentLeader().RateKpps() },
		NetworkControllerConfig{
			ToNetworkKpps: 3, ToNetworkWindow: time.Second,
			ToHostKpps: 1, ToHostWindow: 2 * time.Second,
			SamplePeriod: 100 * time.Millisecond,
		})
	ctl.Start()

	c.Start(8)
	sim.RunFor(4 * time.Second)
	if svc.Placement() != Network {
		t.Fatalf("paxos leader not shifted; transitions: %v", ctl.Transitions)
	}
	sim.RunFor(2 * time.Second)
	c.Stop()
	sim.RunFor(time.Second)
	if dep.Learner.DecidedCount() == 0 {
		t.Fatal("no decisions")
	}
	if gaps := dep.Learner.Gaps(); len(gaps) != 0 {
		t.Errorf("gaps after on-demand shift: %v", gaps)
	}
	// Rate meter tracks the HW leader now: ctl sees the SW leader's rate
	// fall to zero... but the service moved, so the shift-back reads the
	// current leader via the closure and must stay in the network under
	// sustained load. (The closure reads CurrentLeader each tick.)
	if svc.Placement() == Host {
		t.Error("unexpected shift back while load persisted")
	}
}
