package core

import (
	"time"

	"incod/internal/simnet"
)

// NetworkControllerConfig holds the two mirrored parameter pairs of the
// §9.1 network-controlled design. "Using two sets of parameters provides
// hysteresis, and attends to concerns of rapidly shifting workloads
// back-and-forth."
type NetworkControllerConfig struct {
	// ToNetworkKpps: shift to the network when the average rate over
	// ToNetworkWindow exceeds this.
	ToNetworkKpps   float64
	ToNetworkWindow time.Duration
	// ToHostKpps: shift back when the average rate over ToHostWindow
	// falls below this. Must be below ToNetworkKpps for hysteresis.
	ToHostKpps   float64
	ToHostWindow time.Duration
	// SamplePeriod is how often the classifier's rate counter is read.
	SamplePeriod time.Duration
}

// DefaultNetworkConfig returns thresholds bracketing a crossover rate,
// with the paper-style hysteresis gap.
func DefaultNetworkConfig(crossKpps float64) NetworkControllerConfig {
	return NetworkControllerConfig{
		ToNetworkKpps:   crossKpps * 1.1,
		ToNetworkWindow: time.Second,
		ToHostKpps:      crossKpps * 0.7,
		ToHostWindow:    2 * time.Second,
		SamplePeriod:    100 * time.Millisecond,
	}
}

// NetworkController implements the §9.1 network-controlled design: the
// decision kernel lives in the device's classifier and sees only the
// application message rate. All parameters are configurable; "the control
// is not entirely automatic".
type NetworkController struct {
	sim *simnet.Simulator
	svc Service
	cfg NetworkControllerConfig
	// rateFn reads the classifier's application message rate in kpps.
	rateFn func() float64

	samples []sample
	cancel  func()

	// Transitions is the decision log.
	Transitions []Transition
}

type sample struct {
	at   simnet.Time
	kpps float64
}

// NewNetworkController binds a controller to svc, reading load from
// rateFn. Call Start to begin deciding.
func NewNetworkController(sim *simnet.Simulator, svc Service, rateFn func() float64, cfg NetworkControllerConfig) *NetworkController {
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = 100 * time.Millisecond
	}
	if cfg.ToNetworkWindow <= 0 {
		cfg.ToNetworkWindow = time.Second
	}
	if cfg.ToHostWindow <= 0 {
		cfg.ToHostWindow = cfg.ToNetworkWindow
	}
	return &NetworkController{sim: sim, svc: svc, cfg: cfg, rateFn: rateFn}
}

// Start begins periodic sampling and deciding.
func (c *NetworkController) Start() {
	c.Stop()
	c.cancel = c.sim.Every(c.cfg.SamplePeriod, c.tick)
}

// Stop halts the controller.
func (c *NetworkController) Stop() {
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
}

// Flaps counts transitions beyond the first — the quantity hysteresis is
// meant to minimize.
func (c *NetworkController) Flaps() int {
	if len(c.Transitions) <= 1 {
		return 0
	}
	return len(c.Transitions) - 1
}

// tick is the ~40-line decision kernel: sample the rate, average over the
// relevant window, compare against the relevant threshold.
func (c *NetworkController) tick() {
	now := c.sim.Now()
	c.samples = append(c.samples, sample{at: now, kpps: c.rateFn()})
	// Trim beyond the longer window.
	keep := c.cfg.ToNetworkWindow
	if c.cfg.ToHostWindow > keep {
		keep = c.cfg.ToHostWindow
	}
	for len(c.samples) > 1 && now.Sub(c.samples[0].at) > keep {
		c.samples = c.samples[1:]
	}
	switch c.svc.Placement() {
	case Host:
		avg, full := c.average(now, c.cfg.ToNetworkWindow)
		if full && avg > c.cfg.ToNetworkKpps {
			c.shift(Network, now, avg)
		}
	case Network:
		avg, full := c.average(now, c.cfg.ToHostWindow)
		if full && avg < c.cfg.ToHostKpps {
			c.shift(Host, now, avg)
		}
	}
}

// average returns the mean rate over the trailing window and whether the
// window has fully elapsed (no decisions on partial windows).
func (c *NetworkController) average(now simnet.Time, w time.Duration) (float64, bool) {
	var sum float64
	n := 0
	for _, s := range c.samples {
		if now.Sub(s.at) <= w {
			sum += s.kpps
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	full := now.Sub(c.samples[0].at) >= w
	return sum / float64(n), full
}

func (c *NetworkController) shift(to Placement, now simnet.Time, avg float64) {
	c.svc.Shift(to)
	c.Transitions = append(c.Transitions, Transition{
		At: now, To: to,
		Reason: formatRate(avg, to),
	})
	// Restart the window so the mirrored rule evaluates fresh data.
	c.samples = c.samples[:0]
}

func formatRate(kpps float64, to Placement) string {
	if to == Network {
		return fmtReason("avg rate %.1f kpps above to-network threshold", kpps)
	}
	return fmtReason("avg rate %.1f kpps below to-host threshold", kpps)
}
