package core

import (
	"fmt"
	"math"
	"time"

	"incod/internal/power"
)

// Sample is one observation fed to a Policy: the monotonic time it was
// taken, where the service currently runs, and the monitor readings
// available at that moment. Monitors that are not attached (e.g. RAPL on
// a daemon with no power counters) are NaN.
type Sample struct {
	// At is monotonic time since the controller started (virtual time in
	// the simulator, wall time in the live daemons).
	At time.Duration
	// Placement is where the service runs at sampling time.
	Placement Placement
	// RateKpps is the application message rate seen by the device or
	// request meter.
	RateKpps float64
	// PowerW is the host package power (RAPL or a model). NaN if absent.
	PowerW float64
	// CPUUtil is the host CPU utilization in 0..1. NaN if absent.
	CPUUtil float64
}

// Decision is a Policy's verdict for one sample. The zero value means
// "stay put".
type Decision struct {
	// Shift requests a placement change to Target.
	Shift bool
	// Target is the requested placement when Shift is set.
	Target Placement
	// Reason explains the decision, for the transition log.
	Reason string
}

// Policy is a pluggable placement decision rule: the §9.1 controller
// kernels, distilled so the sim-time controllers and the live daemons run
// literally the same code. Implementations are not safe for concurrent
// use; callers serialize Observe/Reset.
type Policy interface {
	// Name identifies the policy ("threshold", "power", "static-host"...).
	Name() string
	// Observe folds one sample into the policy state and returns the
	// placement decision.
	Observe(Sample) Decision
	// Reset clears windowed state. Callers invoke it after a decision has
	// been successfully applied, so the mirrored rule evaluates fresh data
	// (the hysteresis restart of §9.1).
	Reset()
}

// Tunable is an optional Policy extension for the mirrored rate-threshold
// pair that the control-plane API adjusts at runtime ("all of its
// parameters are configurable").
type Tunable interface {
	// RateThresholds reports the (to-network, to-host) pair in kpps.
	RateThresholds() (toNetworkKpps, toHostKpps float64)
	// SetRateThresholds updates the pair. Zero keeps the current value;
	// NaN, infinite or negative inputs are rejected. When the resulting
	// to-host threshold would meet or exceed the to-network one, it is
	// clamped below it to preserve hysteresis and clamped reports that.
	SetRateThresholds(toNetworkKpps, toHostKpps float64) (clamped bool, err error)
}

// --- mirrored-threshold policy --------------------------------------------

// ThresholdPolicy is the §9.1 network-controlled decision kernel: average
// the application message rate over a window, shift to the network above
// one threshold, back to the host below a mirrored lower one. "Using two
// sets of parameters provides hysteresis, and attends to concerns of
// rapidly shifting workloads back-and-forth."
type ThresholdPolicy struct {
	cfg     NetworkControllerConfig
	samples []rateSample
	// since is the first sample time after the last Reset. Window
	// fullness is judged against it rather than the oldest retained
	// sample: trimming works in wall time, where jitter would otherwise
	// leave the oldest sample perpetually just inside the window and the
	// "full window" condition never satisfied.
	since    time.Duration
	hasSince bool
}

type rateSample struct {
	at   time.Duration
	kpps float64
}

// NewThresholdPolicy returns the mirrored-threshold policy, applying the
// window defaults of NewNetworkController.
func NewThresholdPolicy(cfg NetworkControllerConfig) *ThresholdPolicy {
	if cfg.ToNetworkWindow <= 0 {
		cfg.ToNetworkWindow = time.Second
	}
	if cfg.ToHostWindow <= 0 {
		cfg.ToHostWindow = cfg.ToNetworkWindow
	}
	return &ThresholdPolicy{cfg: cfg}
}

// Name implements Policy.
func (p *ThresholdPolicy) Name() string { return "threshold" }

// Config returns the current parameter set.
func (p *ThresholdPolicy) Config() NetworkControllerConfig { return p.cfg }

// Observe implements Policy: the ~40-line classifier kernel.
func (p *ThresholdPolicy) Observe(s Sample) Decision {
	if !p.hasSince {
		p.since, p.hasSince = s.At, true
	}
	p.samples = append(p.samples, rateSample{at: s.At, kpps: s.RateKpps})
	// Trim beyond the longer window.
	keep := p.cfg.ToNetworkWindow
	if p.cfg.ToHostWindow > keep {
		keep = p.cfg.ToHostWindow
	}
	for len(p.samples) > 1 && s.At-p.samples[0].at > keep {
		p.samples = p.samples[1:]
	}
	switch s.Placement {
	case Host:
		if avg, full := p.average(s.At, p.cfg.ToNetworkWindow); full && avg > p.cfg.ToNetworkKpps {
			return Decision{Shift: true, Target: Network,
				Reason: fmt.Sprintf("avg rate %.1f kpps above to-network threshold", avg)}
		}
	case Network:
		if avg, full := p.average(s.At, p.cfg.ToHostWindow); full && avg < p.cfg.ToHostKpps {
			return Decision{Shift: true, Target: Host,
				Reason: fmt.Sprintf("avg rate %.1f kpps below to-host threshold", avg)}
		}
	}
	return Decision{}
}

// average returns the mean rate over the trailing window and whether the
// window has fully elapsed (no decisions on partial windows).
func (p *ThresholdPolicy) average(now time.Duration, w time.Duration) (float64, bool) {
	var sum float64
	n := 0
	for _, s := range p.samples {
		if now-s.at <= w {
			sum += s.kpps
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), now-p.since >= w
}

// Reset implements Policy: restart the averaging window.
func (p *ThresholdPolicy) Reset() {
	p.samples = p.samples[:0]
	p.hasSince = false
}

// RateThresholds implements Tunable.
func (p *ThresholdPolicy) RateThresholds() (float64, float64) {
	return p.cfg.ToNetworkKpps, p.cfg.ToHostKpps
}

// SetRateThresholds implements Tunable.
func (p *ThresholdPolicy) SetRateThresholds(toNet, toHost float64) (bool, error) {
	if err := validKpps("to_network_kpps", toNet); err != nil {
		return false, err
	}
	if err := validKpps("to_host_kpps", toHost); err != nil {
		return false, err
	}
	if toNet > 0 {
		p.cfg.ToNetworkKpps = toNet
	}
	if toHost > 0 {
		p.cfg.ToHostKpps = toHost
	}
	clamped := false
	if p.cfg.ToHostKpps >= p.cfg.ToNetworkKpps {
		p.cfg.ToHostKpps = p.cfg.ToNetworkKpps * 0.7
		clamped = true
	}
	return clamped, nil
}

func validKpps(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fmt.Errorf("%s must be a finite non-negative rate (got %v)", name, v)
	}
	return nil
}

// --- power-aware policy ---------------------------------------------------

// PowerPolicy is the §9.1 host-controlled decision kernel: shift to the
// network when RAPL package power and CPU utilization stay high for a
// sustained period ("monitoring the power consumption alone is not
// sufficient"), shift back when the device-observed rate stays low.
type PowerPolicy struct {
	cfg       HostControllerConfig
	condOn    bool
	condSince time.Duration
}

// NewPowerPolicy returns the power-aware policy, applying the sustain
// defaults of NewHostController.
func NewPowerPolicy(cfg HostControllerConfig) *PowerPolicy {
	if cfg.ToNetworkSustain <= 0 {
		cfg.ToNetworkSustain = 3 * time.Second
	}
	if cfg.ToHostSustain <= 0 {
		cfg.ToHostSustain = cfg.ToNetworkSustain
	}
	return &PowerPolicy{cfg: cfg}
}

// Name implements Policy.
func (p *PowerPolicy) Name() string { return "power" }

// Config returns the current parameter set.
func (p *PowerPolicy) Config() HostControllerConfig { return p.cfg }

// Observe implements Policy.
func (p *PowerPolicy) Observe(s Sample) Decision {
	switch s.Placement {
	case Host:
		hot := s.PowerW > p.cfg.ToNetworkPowerWatts && s.CPUUtil > p.cfg.ToNetworkCPUUtil
		if p.holdCondition(hot, s.At, p.cfg.ToNetworkSustain) {
			return Decision{Shift: true, Target: Network,
				Reason: fmt.Sprintf("power %.1fW cpu %.0f%% sustained %v",
					s.PowerW, s.CPUUtil*100, p.cfg.ToNetworkSustain)}
		}
	case Network:
		cold := s.RateKpps < p.cfg.ToHostKpps
		if p.holdCondition(cold, s.At, p.cfg.ToHostSustain) {
			return Decision{Shift: true, Target: Host,
				Reason: fmt.Sprintf("network rate %.1f kpps sustained %v below threshold",
					s.RateKpps, p.cfg.ToHostSustain)}
		}
	}
	return Decision{}
}

// holdCondition tracks how long cond has held continuously and reports
// whether it has been true for at least sustain — the paper's spike
// suppression ("avoiding harsh decisions based on spikes and outliers").
func (p *PowerPolicy) holdCondition(cond bool, now time.Duration, sustain time.Duration) bool {
	if !cond {
		p.condOn = false
		return false
	}
	if !p.condOn {
		p.condOn = true
		p.condSince = now
		return sustain == 0
	}
	return now-p.condSince >= sustain
}

// Reset implements Policy.
func (p *PowerPolicy) Reset() { p.condOn = false }

// RateThresholds implements Tunable. The power policy has no to-network
// rate threshold (that side triggers on watts + CPU), reported as zero.
func (p *PowerPolicy) RateThresholds() (float64, float64) {
	return 0, p.cfg.ToHostKpps
}

// SetRateThresholds implements Tunable: only the to-host return rate is
// a rate parameter on this policy.
func (p *PowerPolicy) SetRateThresholds(toNet, toHost float64) (bool, error) {
	if toNet != 0 {
		return false, fmt.Errorf("power policy has no to-network rate threshold (it triggers on watts + CPU); only to_host_kpps is tunable")
	}
	if err := validKpps("to_host_kpps", toHost); err != nil {
		return false, err
	}
	if toHost > 0 {
		p.cfg.ToHostKpps = toHost
	}
	return false, nil
}

// --- static/manual policy -------------------------------------------------

// StaticPolicy pins the service to one placement: the manual end of "the
// control is not entirely automatic". The control-plane placement endpoint
// is its runtime counterpart.
type StaticPolicy struct {
	// Target is the pinned placement.
	Target Placement
}

// Name implements Policy.
func (p *StaticPolicy) Name() string { return "static-" + p.Target.String() }

// Observe implements Policy.
func (p *StaticPolicy) Observe(s Sample) Decision {
	if s.Placement == p.Target {
		return Decision{}
	}
	return Decision{Shift: true, Target: p.Target,
		Reason: "static policy pins service to " + p.Target.String()}
}

// Reset implements Policy.
func (p *StaticPolicy) Reset() {}

// --- registry -------------------------------------------------------------

// DefaultPowerThresholdWatts is the to-network package-power trigger the
// named "power" policy uses when no calibrated curve is supplied — the
// Figure 6 experiment's 70 W.
const DefaultPowerThresholdWatts = 70

// PolicyNames lists the names PolicyByName accepts.
func PolicyNames() []string {
	return []string{"threshold", "power", "static-host", "static-network"}
}

// PolicyByName builds a named policy with defaults bracketing crossKpps,
// the software/hardware power crossover rate:
//
//	threshold       mirrored rate thresholds (§9.1 network-controlled)
//	power           RAPL power + CPU sustain (§9.1 host-controlled)
//	static-host     manual pin to host software
//	static-network  manual pin to the network device
func PolicyByName(name string, crossKpps float64) (Policy, error) {
	switch name {
	case "threshold":
		return NewThresholdPolicy(DefaultNetworkConfig(crossKpps)), nil
	case "power":
		return NewPowerPolicy(DefaultHostConfig(DefaultPowerThresholdWatts, crossKpps*0.7)), nil
	case "static-host":
		return &StaticPolicy{Target: Host}, nil
	case "static-network":
		return &StaticPolicy{Target: Network}, nil
	}
	return nil, fmt.Errorf("core: unknown policy %q (have %v)", name, PolicyNames())
}

// CalibratedPolicyByName is PolicyByName with the power policy's
// package-power trigger taken from the workload's calibrated §4 software
// curve at the crossover rate — the fixed DefaultPowerThresholdWatts is
// unreachable for low-draw curves like libpaxos (~49 W peak). Both the
// live daemons and the scenario runner build policies through this.
func CalibratedPolicyByName(name string, crossKpps float64, curve power.SoftwareCurve) (Policy, error) {
	if name == "power" {
		return NewPowerPolicy(DefaultHostConfig(curve.Power(crossKpps), crossKpps*0.7)), nil
	}
	return PolicyByName(name, crossKpps)
}

// ParsePlacement parses "host" or "network".
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "host":
		return Host, nil
	case "network":
		return Network, nil
	}
	return Host, fmt.Errorf("core: placement must be \"host\" or \"network\" (got %q)", s)
}
