package core

import (
	"math"
	"testing"
	"time"

	"incod/internal/power"
	"incod/internal/simnet"
)

func TestNetworkControllerShiftsUpAndBack(t *testing.T) {
	sim := simnet.New(1)
	svc := &FuncService{ServiceName: "test", Where: Host}
	rate := 0.0
	ctl := NewNetworkController(sim, svc, func() float64 { return rate }, NetworkControllerConfig{
		ToNetworkKpps: 100, ToNetworkWindow: time.Second,
		ToHostKpps: 50, ToHostWindow: time.Second,
		SamplePeriod: 100 * time.Millisecond,
	})
	ctl.Start()

	// Low rate: stays on host.
	rate = 20
	sim.RunFor(3 * time.Second)
	if svc.Placement() != Host {
		t.Fatal("low rate should stay on host")
	}
	// High rate: shifts to network after a full window.
	rate = 200
	sim.RunFor(2 * time.Second)
	if svc.Placement() != Network {
		t.Fatal("high sustained rate should shift to network")
	}
	// Mid rate (between thresholds): hysteresis holds it in the network.
	rate = 80
	sim.RunFor(5 * time.Second)
	if svc.Placement() != Network {
		t.Fatal("hysteresis band should not shift back")
	}
	// Low rate: returns to host.
	rate = 10
	sim.RunFor(2 * time.Second)
	if svc.Placement() != Host {
		t.Fatal("low sustained rate should shift back to host")
	}
	if len(ctl.Transitions) != 2 {
		t.Errorf("transitions = %v, want 2", ctl.Transitions)
	}
	if ctl.Flaps() != 1 {
		t.Errorf("flaps = %d, want 1", ctl.Flaps())
	}
	ctl.Stop()
}

func TestNetworkControllerNeedsFullWindow(t *testing.T) {
	sim := simnet.New(2)
	svc := &FuncService{ServiceName: "test", Where: Host}
	rate := 1000.0
	ctl := NewNetworkController(sim, svc, func() float64 { return rate }, NetworkControllerConfig{
		ToNetworkKpps: 100, ToNetworkWindow: 2 * time.Second,
		ToHostKpps: 50, ToHostWindow: 2 * time.Second,
		SamplePeriod: 100 * time.Millisecond,
	})
	ctl.Start()
	sim.RunFor(1 * time.Second)
	if svc.Placement() != Host {
		t.Error("must not shift on a partial averaging window")
	}
	sim.RunFor(1500 * time.Millisecond)
	if svc.Placement() != Network {
		t.Error("should shift once the window has fully elapsed")
	}
}

func TestNetworkControllerSpikeSuppression(t *testing.T) {
	sim := simnet.New(3)
	svc := &FuncService{ServiceName: "test", Where: Host}
	rate := 10.0
	ctl := NewNetworkController(sim, svc, func() float64 { return rate }, NetworkControllerConfig{
		ToNetworkKpps: 100, ToNetworkWindow: 2 * time.Second,
		ToHostKpps: 50, ToHostWindow: 2 * time.Second,
		SamplePeriod: 100 * time.Millisecond,
	})
	ctl.Start()
	sim.RunFor(3 * time.Second)
	// A 300ms spike must not trigger: the 2s average stays low.
	rate = 500
	sim.RunFor(300 * time.Millisecond)
	rate = 10
	sim.RunFor(3 * time.Second)
	if svc.Placement() != Host {
		t.Error("short spike should be averaged away")
	}
	if len(ctl.Transitions) != 0 {
		t.Errorf("transitions = %v, want none", ctl.Transitions)
	}
}

func TestHostControllerPowerAndCPU(t *testing.T) {
	sim := simnet.New(4)
	svc := &FuncService{ServiceName: "test", Where: Host}
	powerW, cpu, netRate := 40.0, 0.1, 500.0
	ctl := NewHostController(sim, svc,
		func() float64 { return powerW },
		func() float64 { return cpu },
		func() float64 { return netRate },
		HostControllerConfig{
			ToNetworkPowerWatts: 55, ToNetworkCPUUtil: 0.6, ToNetworkSustain: 3 * time.Second,
			ToHostKpps: 50, ToHostSustain: 3 * time.Second,
			SamplePeriod: 100 * time.Millisecond,
		})
	ctl.Start()

	// High power alone is not sufficient (§9.1: could be another app).
	powerW = 90
	sim.RunFor(5 * time.Second)
	if svc.Placement() != Host {
		t.Fatal("power without CPU must not shift")
	}
	// High CPU too: shift after the sustain period.
	cpu = 0.9
	sim.RunFor(2 * time.Second)
	if svc.Placement() != Host {
		t.Fatal("must hold for the full 3s sustain")
	}
	sim.RunFor(2 * time.Second)
	if svc.Placement() != Network {
		t.Fatal("sustained power+CPU should shift to network")
	}
	// Shift back requires network-side rate info to stay low.
	netRate = 10
	sim.RunFor(4 * time.Second)
	if svc.Placement() != Host {
		t.Fatal("low device rate should shift back to host")
	}
	if ctl.RAPLReads() == 0 {
		t.Error("controller should be reading RAPL")
	}
	if len(ctl.Transitions) != 2 {
		t.Errorf("transitions = %v", ctl.Transitions)
	}
}

func TestHostControllerSpikeSuppression(t *testing.T) {
	sim := simnet.New(5)
	svc := &FuncService{ServiceName: "test", Where: Host}
	powerW, cpu := 40.0, 0.1
	ctl := NewHostController(sim, svc,
		func() float64 { return powerW },
		func() float64 { return cpu },
		func() float64 { return 0 },
		DefaultHostConfig(55, 50))
	ctl.Start()
	sim.RunFor(time.Second)
	// 1s spike < 3s sustain: no shift.
	powerW, cpu = 100, 1
	sim.RunFor(time.Second)
	powerW, cpu = 40, 0.1
	sim.RunFor(5 * time.Second)
	if svc.Placement() != Host || len(ctl.Transitions) != 0 {
		t.Error("spike shorter than the sustain window must not shift")
	}
}

func TestDemandCurveEnvelope(t *testing.T) {
	lake := func(float64) float64 { return 59.2 }
	d := NewDemandCurve("kvs", power.MemcachedMellanox.Power, lake, 2000)
	if d.CrossKpps < 60 || d.CrossKpps > 100 {
		t.Fatalf("KVS crossover = %v, want ~80", d.CrossKpps)
	}
	// Below the crossover: software power, host placement.
	if d.Power(10) != power.MemcachedMellanox.Power(10) || d.Placement(10) != Host {
		t.Error("below crossover should be software")
	}
	// Above: hardware power, network placement.
	if d.Power(1000) != 59.2 || d.Placement(1000) != Network {
		t.Error("above crossover should be hardware")
	}
	// The envelope never exceeds the software curve.
	for r := 0.0; r <= 2000; r += 50 {
		if d.Power(r) > power.MemcachedMellanox.Power(r)+1e-9 {
			t.Fatalf("envelope above software at %v kpps", r)
		}
	}
	// §9/Fig 5: on-demand saves roughly half the software power at high
	// rate (111W -> 59W is ~47%).
	frac, at := d.MaxSaving(1000, 200)
	if frac < 0.40 || frac > 0.60 {
		t.Errorf("max saving = %.0f%% at %v kpps, want ~50%%", frac*100, at)
	}
}

func TestDemandCurveNoCrossover(t *testing.T) {
	d := NewDemandCurve("never", func(float64) float64 { return 10 }, func(float64) float64 { return 100 }, 1000)
	if d.CrossKpps != -1 {
		t.Fatalf("CrossKpps = %v, want -1", d.CrossKpps)
	}
	if d.Placement(500) != Host || d.Power(500) != 10 {
		t.Error("no-crossover envelope should always be software")
	}
	if d.SavingFraction(500) != 0 {
		t.Error("no saving without a crossover")
	}
}

func TestPlacementString(t *testing.T) {
	if Host.String() != "host" || Network.String() != "network" {
		t.Error("Placement names wrong")
	}
}

func TestFuncServiceShiftNoop(t *testing.T) {
	calls := 0
	svc := &FuncService{ServiceName: "x", Where: Host, OnShift: func(Placement) error { calls++; return nil }}
	svc.Shift(Host)
	if calls != 0 {
		t.Error("shift to current placement must be a no-op")
	}
	svc.Shift(Network)
	if calls != 1 || svc.Placement() != Network {
		t.Error("shift should apply")
	}
}

func TestTransitionString(t *testing.T) {
	tr := Transition{At: simnet.Time(time.Second), To: Network, Reason: "r"}
	if tr.String() != "1s -> network (r)" {
		t.Errorf("String() = %q", tr.String())
	}
}

func TestDefaultConfigsHaveHysteresis(t *testing.T) {
	nc := DefaultNetworkConfig(150)
	if nc.ToHostKpps >= nc.ToNetworkKpps {
		t.Error("network config lacks hysteresis gap")
	}
	if math.Abs(nc.ToNetworkKpps-165) > 1 {
		t.Errorf("to-network threshold = %v, want crossover*1.1", nc.ToNetworkKpps)
	}
	hc := DefaultHostConfig(55, 50)
	if hc.ToNetworkSustain != 3*time.Second {
		t.Error("default sustain should match the Figure 6 experiment (3s)")
	}
}
