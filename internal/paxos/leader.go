package paxos

import (
	"incod/internal/simnet"
)

// Leader is the Paxos coordinator: it sequences client requests into
// consensus instances and drives Phase2 against the acceptors (the
// steady-state P4xos flow, where Phase1 is implicit in the leader's
// ballot). A newly started leader begins at instance 1 (§9.2) and
// fast-forwards from the LastVoted piggybacks in acceptor responses.
type Leader struct {
	role
	ballot    uint32
	acceptors []simnet.Addr
	next      uint64 // next unused instance (1-based)
	active    bool

	// Gap-recovery state: attempts per instance, and pending Phase1
	// exchanges for instances whose acceptors diverged across a shift.
	gapAttempts map[uint64]int
	prepares    map[uint64]*prepareState
}

// prepareState tracks one recovery Phase1 exchange.
type prepareState struct {
	ballot uint32
	resp   map[uint16]Msg
	done   bool
}

// NewLeader attaches a leader with the given ballot (its epoch; a shifted
// replacement must use a higher one).
func NewLeader(net *simnet.Network, addr simnet.Addr, rt *Runtime, ballot uint32, acceptors []simnet.Addr) *Leader {
	l := &Leader{
		role:        newRole(net, addr, rt),
		ballot:      ballot,
		acceptors:   acceptors,
		next:        1,
		active:      true,
		gapAttempts: make(map[uint64]int),
		prepares:    make(map[uint64]*prepareState),
	}
	net.Attach(l)
	return l
}

// Ballot returns the leader's ballot.
func (l *Leader) Ballot() uint32 { return l.ballot }

// SetBallot raises the leader's ballot (a shifted-in replacement must use
// a higher epoch than its predecessor).
func (l *Leader) SetBallot(b uint32) { l.ballot = b }

// Restart resets the sequence state to the §9.2 fresh-leader condition:
// "the new leader starts with an initial sequence number of 1 and must
// learn the next sequence number that it can use".
func (l *Leader) Restart() { l.next = 1 }

// NextInstance returns the next unused instance number (what the §9.2
// hand-off must learn).
func (l *Leader) NextInstance() uint64 { return l.next }

// SetActive pauses or resumes the leader. A paused leader ignores client
// requests (its forwarding rule has moved elsewhere).
func (l *Leader) SetActive(v bool) { l.active = v }

// Active reports whether the leader is serving.
func (l *Leader) Active() bool { return l.active }

// Receive implements simnet.Node.
func (l *Leader) Receive(pkt *simnet.Packet) {
	m, err := Decode(pkt.Payload)
	if err != nil {
		l.Counters.Inc("bad_msg", 1)
		return
	}
	switch m.Type {
	case MsgClientRequest:
		if !l.active {
			l.Counters.Inc("ignored_inactive", 1)
			return
		}
		l.rate.Add(l.sim.Now(), 1)
		// Saturation: shed offered load beyond the runtime's peak.
		if rate := l.RateKpps(); rate > l.runtime.PeakKpps &&
			l.sim.Rand().Float64() > l.runtime.PeakKpps/rate {
			l.Counters.Inc("dropped", 1)
			return
		}
		l.Counters.Inc("requests", 1)
		inst := l.next
		l.next++
		lat := l.runtime.ServiceLatency(l.sim.Rand())
		prop := Msg{
			Type:       MsgPhase2A,
			Instance:   inst,
			Ballot:     l.ballot,
			ClientID:   m.ClientID,
			Seq:        m.Seq,
			ClientAddr: m.ClientAddr,
			Value:      m.Value,
		}
		for _, a := range l.acceptors {
			l.send(a, prop, lat)
		}
	case MsgPhase2B:
		// §9.2: learn the most recent sequence number from the
		// acceptors' piggybacked last-voted instance.
		if m.LastVoted+1 > l.next {
			l.Counters.Inc("fast_forward", 1)
			l.next = m.LastVoted + 1
		}
	case MsgPhase1B:
		if m.LastVoted+1 > l.next {
			l.Counters.Inc("fast_forward", 1)
			l.next = m.LastVoted + 1
		}
		l.handlePromise(m)
	case MsgGapRequest:
		if !l.active {
			return
		}
		l.Counters.Inc("gap_requests", 1)
		l.recoverInstance(m.Instance)
	default:
		l.Counters.Inc("unexpected", 1)
	}
}

// recoverInstance re-initiates a hole the learner reported (§9.2) with a
// full Phase1/Phase2 exchange at a fresh ballot: the promise quorum
// reveals any accepted value (which is then re-proposed, so re-initiation
// can never displace a potentially chosen value) or, if the instance was
// truly never voted on, the learners learn a no-op. A same-ballot no-op
// shortcut would be unsafe: if the original Phase2A reached only part of
// the quorum, the ballot already carries a value, and proposing a second
// value at it can split learners.
func (l *Leader) recoverInstance(inst uint64) {
	l.gapAttempts[inst]++
	if p, ok := l.prepares[inst]; ok && !p.done {
		// A recovery round is in flight; bump the ballot and retry (the
		// previous Phase1As may have been lost).
		delete(l.prepares, inst)
		_ = p
	}
	l.Counters.Inc("recoveries", 1)
	lat := l.runtime.ServiceLatency(l.sim.Rand())
	ballot := l.ballot + uint32(l.gapAttempts[inst])
	l.prepares[inst] = &prepareState{ballot: ballot, resp: make(map[uint16]Msg)}
	p := Msg{Type: MsgPhase1A, Instance: inst, Ballot: ballot}
	for _, a := range l.acceptors {
		l.send(a, p, lat)
	}
}

// handlePromise collects Phase1B responses for pending recoveries and,
// at quorum, proposes the highest-ballot accepted value (or a no-op).
func (l *Leader) handlePromise(m Msg) {
	prep, ok := l.prepares[m.Instance]
	if !ok || prep.done || m.Ballot != prep.ballot {
		return
	}
	prep.resp[m.NodeID] = m
	quorum := len(l.acceptors)/2 + 1
	if len(prep.resp) < quorum {
		return
	}
	prep.done = true
	// Adopt the value accepted at the highest ballot, if any.
	chosen := Msg{Value: NoOp}
	var best uint32
	for _, r := range prep.resp {
		if len(r.Value) > 0 && r.VBallot >= best {
			best = r.VBallot
			chosen = r
		}
	}
	lat := l.runtime.ServiceLatency(l.sim.Rand())
	prop := Msg{
		Type:       MsgPhase2A,
		Instance:   m.Instance,
		Ballot:     prep.ballot,
		ClientID:   chosen.ClientID,
		Seq:        chosen.Seq,
		ClientAddr: chosen.ClientAddr,
		Value:      chosen.Value,
	}
	for _, a := range l.acceptors {
		l.send(a, prop, lat)
	}
}

// Prepare runs classic Phase1 for an instance range (the general-case
// leader-election path; the on-demand shift normally relies on the
// piggyback + retry flow instead).
func (l *Leader) Prepare(from, to uint64) {
	lat := l.runtime.ServiceLatency(l.sim.Rand())
	for inst := from; inst <= to; inst++ {
		p := Msg{Type: MsgPhase1A, Instance: inst, Ballot: l.ballot}
		for _, a := range l.acceptors {
			l.send(a, p, lat)
		}
	}
}
