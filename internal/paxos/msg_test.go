package paxos

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMsgRoundTrip(t *testing.T) {
	m := Msg{
		Type:       MsgPhase2B,
		Instance:   1 << 40,
		Ballot:     7,
		VBallot:    6,
		NodeID:     2,
		LastVoted:  99,
		ClientID:   5,
		Seq:        12345,
		ClientAddr: "pxclient-5",
		Value:      []byte("hello"),
	}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.Instance != m.Instance || got.Ballot != m.Ballot ||
		got.VBallot != m.VBallot || got.NodeID != m.NodeID || got.LastVoted != m.LastVoted ||
		got.ClientID != m.ClientID || got.Seq != m.Seq || got.ClientAddr != m.ClientAddr ||
		!bytes.Equal(got.Value, m.Value) {
		t.Errorf("round trip: got %+v, want %+v", got, m)
	}
}

func TestMsgEmptyValue(t *testing.T) {
	got, err := Decode(Encode(Msg{Type: MsgGapRequest, Instance: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgGapRequest || got.Instance != 3 || len(got.Value) != 0 || got.ClientAddr != "" {
		t.Errorf("got %+v", got)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); err != ErrShortMessage {
		t.Errorf("err = %v, want ErrShortMessage", err)
	}
	// Declared lengths longer than the buffer.
	m := Encode(Msg{Type: MsgPhase2A, Value: []byte("abcdef")})
	if _, err := Decode(m[:len(m)-3]); err != ErrShortMessage {
		t.Errorf("truncated value err = %v", err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	names := map[MsgType]string{
		MsgClientRequest: "request", MsgPhase1A: "phase1a", MsgPhase1B: "phase1b",
		MsgPhase2A: "phase2a", MsgPhase2B: "phase2b", MsgDecision: "decision",
		MsgGapRequest: "gap", MsgType(0): "unknown",
	}
	for mt, want := range names {
		if mt.String() != want {
			t.Errorf("%d.String() = %q, want %q", mt, mt.String(), want)
		}
	}
}

// Property: Encode/Decode round-trips arbitrary messages.
func TestMsgRoundTripProperty(t *testing.T) {
	f := func(typ uint8, inst uint64, ballot, vballot uint32, node, cid uint16, seq uint64, value []byte) bool {
		m := Msg{
			Type: MsgType(typ%7 + 1), Instance: inst, Ballot: ballot, VBallot: vballot,
			NodeID: node, ClientID: cid, Seq: seq, ClientAddr: "a", Value: value,
		}
		if len(m.Value) > 60000 {
			m.Value = m.Value[:60000]
		}
		got, err := Decode(Encode(m))
		return err == nil && got.Instance == inst && bytes.Equal(got.Value, m.Value) &&
			got.Ballot == ballot && got.Seq == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
