package paxos

import (
	"fmt"

	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// Deployment assembles a full Paxos system on a simulated network: one
// active leader (with an optional standby on the other substrate), a set
// of acceptors, a learner, and clients. It implements the §9.2 leader
// shift: pause one leader, restart the other with a higher ballot and a
// reset sequence number, and repoint clients, acceptors and learner.
type Deployment struct {
	Net       *simnet.Network
	Acceptors []*Acceptor
	// Learner is the first learner; Learners holds all of them.
	Learner  *Learner
	Learners []*Learner
	Clients  []*Client

	// SWLeader and HWLeader are the two placements of the leader role.
	SWLeader *Leader
	HWLeader *Leader

	current *Leader
	shifts  int
}

// Config sizes a deployment.
type Config struct {
	// NumAcceptors must be odd; quorum is a majority. Default 3.
	NumAcceptors int
	// NumClients proposers are created. Default 1.
	NumClients int
	// NumLearners replicas observe decisions. Default 1.
	NumLearners int
	// AcceptorRuntime builds each acceptor's runtime. Default libpaxos.
	AcceptorRuntime func(i int) *Runtime
	// LearnerRuntime defaults to libpaxos acceptor timing.
	LearnerRuntime *Runtime
}

// NewDeployment wires up leaders (software active, hardware standby),
// acceptors, learner and clients.
func NewDeployment(net *simnet.Network, cfg Config) *Deployment {
	if cfg.NumAcceptors <= 0 {
		cfg.NumAcceptors = 3
	}
	if cfg.NumClients <= 0 {
		cfg.NumClients = 1
	}
	if cfg.NumLearners <= 0 {
		cfg.NumLearners = 1
	}
	if cfg.AcceptorRuntime == nil {
		cfg.AcceptorRuntime = func(int) *Runtime { return NewLibpaxosAcceptor() }
	}
	if cfg.LearnerRuntime == nil {
		cfg.LearnerRuntime = NewLibpaxosAcceptor()
		cfg.LearnerRuntime.Name = "learner"
	}
	d := &Deployment{Net: net}

	accAddrs := make([]simnet.Addr, cfg.NumAcceptors)
	for i := range accAddrs {
		accAddrs[i] = simnet.Addr(fmt.Sprintf("acceptor-%d", i))
	}
	learnerAddrs := make([]simnet.Addr, cfg.NumLearners)
	for i := range learnerAddrs {
		if i == 0 {
			learnerAddrs[i] = "learner"
		} else {
			learnerAddrs[i] = simnet.Addr(fmt.Sprintf("learner-%d", i))
		}
	}

	d.SWLeader = NewLeader(net, "leader-sw", NewLibpaxosLeader(), 1, accAddrs)
	d.HWLeader = NewLeader(net, "leader-hw", NewP4xosRuntime("leader"), 1, accAddrs)
	d.HWLeader.SetActive(false)
	d.current = d.SWLeader

	for i := range accAddrs {
		a := NewAcceptor(net, accAddrs[i], uint16(i), cfg.AcceptorRuntime(i), d.current.Addr(), learnerAddrs)
		d.Acceptors = append(d.Acceptors, a)
	}
	for i, la := range learnerAddrs {
		rt := cfg.LearnerRuntime
		if i > 0 {
			cp := *cfg.LearnerRuntime
			rt = &cp
		}
		d.Learners = append(d.Learners,
			NewLearner(net, la, rt, cfg.NumAcceptors/2+1, d.current.Addr()))
	}
	d.Learner = d.Learners[0]

	for i := 0; i < cfg.NumClients; i++ {
		c := NewClient(net, simnet.Addr(fmt.Sprintf("pxclient-%d", i)), uint16(i), d.current.Addr())
		d.Clients = append(d.Clients, c)
	}
	return d
}

// CurrentLeader returns the active leader.
func (d *Deployment) CurrentLeader() *Leader { return d.current }

// Shifts counts completed leader shifts.
func (d *Deployment) Shifts() int { return d.shifts }

// ShiftLeader moves the leader role to target (one of SWLeader/HWLeader):
// the §9.2 centralized-controller shift. The outgoing leader is paused,
// the incoming one restarts at sequence 1 with a higher ballot, and the
// "forwarding rules" (client targets, acceptor/learner leader pointers)
// are rewritten. Convergence then relies on acceptor piggybacks, client
// retries and learner gap recovery.
func (d *Deployment) ShiftLeader(target *Leader) {
	if target == d.current {
		return
	}
	d.current.SetActive(false)
	target.SetBallot(d.current.Ballot() + 1)
	target.Restart()
	target.SetActive(true)
	for _, a := range d.Acceptors {
		a.SetLeader(target.Addr())
	}
	for _, l := range d.Learners {
		l.SetLeader(target.Addr())
	}
	for _, c := range d.Clients {
		c.Retarget(target.Addr())
	}
	d.current = target
	d.shifts++
}

// ReplaceAcceptor swaps acceptor index i for a fresh node at a new
// address running rt, transferring state from a surviving peer — the
// reconfiguration problem §9.2 defers to Vertical-Paxos-style protocols,
// implemented here in its crash-replace form: snapshot a live peer (all
// acceptors that executed the same votes hold identical instance state),
// restore into the replacement, and leave the old node detached. Safety
// holds because the replacement answers exactly like a caught-up acceptor
// and quorums keep overlapping.
func (d *Deployment) ReplaceAcceptor(i int, rt *Runtime) (*Acceptor, error) {
	if i < 0 || i >= len(d.Acceptors) {
		return nil, fmt.Errorf("paxos: acceptor index %d out of range", i)
	}
	if len(d.Acceptors) < 2 {
		return nil, fmt.Errorf("paxos: need a surviving peer for state transfer")
	}
	old := d.Acceptors[i]
	donor := d.Acceptors[(i+1)%len(d.Acceptors)]

	// Detach the failed/retired node so in-flight traffic to it drops.
	d.Net.Detach(old.Addr())

	addr := simnet.Addr(fmt.Sprintf("%s-r%d", old.Addr(), d.shifts))
	replacement := NewAcceptor(d.Net, addr, old.id, rt, d.current.Addr(), old.learners)
	replacement.Restore(donor.Snapshot())
	d.Acceptors[i] = replacement

	// Rewrite the leaders' acceptor sets (the §9.2 "forwarding rules").
	for j, a := range d.SWLeader.acceptors {
		if a == old.Addr() {
			d.SWLeader.acceptors[j] = addr
		}
	}
	for j, a := range d.HWLeader.acceptors {
		if a == old.Addr() {
			d.HWLeader.acceptors[j] = addr
		}
	}
	return replacement, nil
}

// PowerSource returns the combined power of the whole deployment's
// distinguished node (the leader host) — the quantity Figure 3(b)'s
// leader lines report. Hardware leaders add their card to the idle host.
func (d *Deployment) PowerSource() telemetry.PowerSource {
	return telemetry.PowerSourceFunc(func(now simnet.Time) float64 {
		if d.current == d.HWLeader {
			// Idle host (39 W) plus the P4xos card.
			return 39 + d.HWLeader.PowerWatts(now)
		}
		return d.SWLeader.PowerWatts(now)
	})
}
