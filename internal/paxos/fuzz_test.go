package paxos

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// FuzzDecode guards the codec pair behind the serving path: the
// zero-copy DecodeView and the allocating Decode must accept exactly the
// same inputs — short headers, truncated bodies and oversized declared
// lengths included — agree on every field, and re-encode to the same
// canonical bytes.
func FuzzDecode(f *testing.F) {
	f.Add(Encode(Msg{Type: MsgPhase2A, Instance: 9, Ballot: 3, ClientAddr: "client-1:9", Value: []byte("cmd")}))
	f.Add(Encode(Msg{Type: MsgPhase2B, Instance: 1 << 40, Ballot: 7, VBallot: 6, NodeID: 2,
		LastVoted: 99, ClientID: 5, Seq: 12345, ClientAddr: "pxclient-5", Value: []byte("hello")}))
	short := Encode(Msg{Type: MsgPhase2B, Value: []byte("abcdef")})
	f.Add(short[:len(short)-3]) // truncated value
	overVal := Encode(Msg{Type: MsgPhase1A})
	binary.BigEndian.PutUint16(overVal[39:], 60000) // valLen far past the buffer
	f.Add(overVal)
	overAddr := Encode(Msg{Type: MsgPhase1A})
	binary.BigEndian.PutUint16(overAddr[37:], 0xFFFF) // addrLen far past the buffer
	f.Add(overAddr)
	f.Add([]byte{1, 2})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var v MsgView
		verr := DecodeView(data, &v)
		m, merr := Decode(data)
		if (verr == nil) != (merr == nil) {
			t.Fatalf("DecodeView err=%v, Decode err=%v", verr, merr)
		}
		if merr != nil {
			return
		}
		if m.Type != v.Type || m.Instance != v.Instance || m.Ballot != v.Ballot ||
			m.VBallot != v.VBallot || m.NodeID != v.NodeID || m.LastVoted != v.LastVoted ||
			m.ClientID != v.ClientID || m.Seq != v.Seq {
			t.Fatalf("view %+v != msg %+v", v, m)
		}
		if string(v.ClientAddr) != string(m.ClientAddr) || !bytes.Equal(v.Value, m.Value) {
			t.Fatalf("aliased fields diverged: view (%q, %q) msg (%q, %q)",
				v.ClientAddr, v.Value, m.ClientAddr, m.Value)
		}
		// Both encoders produce the same canonical bytes, which round-trip.
		enc := AppendMsgView(nil, &v)
		if !bytes.Equal(enc, AppendMsg(nil, m)) {
			t.Fatalf("AppendMsgView != AppendMsg")
		}
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip diverged: %+v -> %+v", m, m2)
		}
	})
}
