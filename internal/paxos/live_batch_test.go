package paxos

import (
	"fmt"
	"testing"

	"incod/internal/dataplane"
)

// recordingSender captures fan-out as (destination, wire bytes) pairs so
// two runs can be compared for byte identity in order.
type recordingSender struct {
	sent []string
}

func (r *recordingSender) send(to string, m Msg) {
	r.sent = append(r.sent, to+"|"+string(Encode(m)))
}

func mkItems(datagrams [][]byte) []*dataplane.BatchItem {
	items := make([]*dataplane.BatchItem, len(datagrams))
	for i, dg := range datagrams {
		scratch := make([]byte, 0, 1024)
		items[i] = &dataplane.BatchItem{In: dg, Scratch: &scratch}
	}
	return items
}

// acceptorTraffic is a mixed consensus workload: fresh votes, re-votes,
// promises above and below accepted ballots, rejected 2As, non-acceptor
// messages and garbage — spanning more than one batch chunk.
func acceptorTraffic() [][]byte {
	var dgs [][]byte
	for i := 0; i < 70; i++ {
		inst := uint64(i%9 + 1)
		dgs = append(dgs, Encode(Msg{Type: MsgPhase2A, Instance: inst, Ballot: 5,
			ClientID: uint16(i), Seq: uint64(i), ClientAddr: "client-1:9", Value: fmt.Appendf(nil, "cmd-%d", inst)}))
	}
	dgs = append(dgs,
		Encode(Msg{Type: MsgPhase1A, Instance: 1, Ballot: 9}),                        // promise above the vote
		Encode(Msg{Type: MsgPhase1A, Instance: 50, Ballot: 2}),                       // fresh promise
		Encode(Msg{Type: MsgPhase2A, Instance: 50, Ballot: 1, Value: []byte("low")}), // below promised: nack
		Encode(Msg{Type: MsgPhase2A, Instance: 50, Ballot: 2, Value: []byte("ok")}),  // accepted
		Encode(Msg{Type: MsgPhase2A, Instance: 60, Ballot: 1}),                       // empty value vote
		Encode(Msg{Type: MsgPhase2B, Instance: 1, Ballot: 5, NodeID: 2}),             // not for acceptors
		Encode(Msg{Type: MsgClientRequest, Seq: 7, Value: []byte("x")}),              // not for acceptors
		[]byte{1, 2, 3}, // short garbage
	)
	return dgs
}

// TestAcceptorHandleBatchMatchesSingle: the batch form (one lock per
// chunk) must produce byte-identical replies, identical learner fan-out
// and identical table state to the per-datagram form.
func TestAcceptorHandleBatchMatchesSingle(t *testing.T) {
	dgs := acceptorTraffic()

	singleSent := &recordingSender{}
	single := NewLiveAcceptor(3, []string{"l1", "l2"}, singleSent.send)
	want := make([][]byte, len(dgs))
	scratch := make([]byte, 0, 1024)
	for i, dg := range dgs {
		if out, ok := single.HandleDatagram(dg, &scratch); ok {
			want[i] = append([]byte(nil), out...)
		}
	}

	batchSent := &recordingSender{}
	batch := NewLiveAcceptor(3, []string{"l1", "l2"}, batchSent.send)
	items := mkItems(dgs)
	batch.HandleBatch(items)

	for i, it := range items {
		if string(it.Out) != string(want[i]) {
			t.Fatalf("datagram %d:\n batch reply %q\nsingle reply %q", i, it.Out, want[i])
		}
	}
	if len(singleSent.sent) != len(batchSent.sent) {
		t.Fatalf("fan-out length: batch %d != single %d", len(batchSent.sent), len(singleSent.sent))
	}
	for i := range singleSent.sent {
		if singleSent.sent[i] != batchSent.sent[i] {
			t.Fatalf("fan-out %d diverged:\n batch %q\nsingle %q", i, batchSent.sent[i], singleSent.sent[i])
		}
	}
	st, bt := single.BeginHandoff(nil), batch.BeginHandoff(nil)
	if st.Instances() != bt.Instances() || st.LastVoted() != bt.LastVoted() {
		t.Fatalf("table state diverged: single (%d, %d) != batch (%d, %d)",
			st.Instances(), st.LastVoted(), bt.Instances(), bt.LastVoted())
	}
}

// learnerTraffic builds quorum streams: votes from three acceptors for a
// run of instances (identical content per instance apart from NodeID,
// like votes fanned out from one 2A), plus duplicates, a non-2B and
// garbage.
func learnerTraffic() [][]byte {
	var dgs [][]byte
	for inst := uint64(1); inst <= 40; inst++ {
		for node := uint16(0); node < 3; node++ {
			dgs = append(dgs, Encode(Msg{Type: MsgPhase2B, Instance: inst, Ballot: 4, VBallot: 4,
				NodeID: node, ClientID: 7, Seq: inst, ClientAddr: "client-9:1", Value: fmt.Appendf(nil, "v-%d", inst)}))
		}
		// A duplicate vote after quorum: must be ignored identically.
		dgs = append(dgs, Encode(Msg{Type: MsgPhase2B, Instance: inst, Ballot: 4, VBallot: 4,
			NodeID: 1, ClientID: 7, Seq: inst, ClientAddr: "client-9:1", Value: fmt.Appendf(nil, "v-%d", inst)}))
	}
	dgs = append(dgs,
		Encode(Msg{Type: MsgPhase1B, Instance: 1, NodeID: 0}), // not a vote
		[]byte{9}, // garbage
	)
	return dgs
}

// TestLearnerHandleBatchMatchesSingle: folding a batch of 2Bs under one
// lock must emit the same decisions, in order, as per-datagram folding.
func TestLearnerHandleBatchMatchesSingle(t *testing.T) {
	dgs := learnerTraffic()

	singleSent := &recordingSender{}
	single := NewLiveLearner(2, "", singleSent.send)
	var scratch []byte
	for _, dg := range dgs {
		single.HandleDatagram(dg, &scratch)
	}

	batchSent := &recordingSender{}
	batch := NewLiveLearner(2, "", batchSent.send)
	batch.HandleBatch(mkItems(dgs))

	if single.DecidedCount() != batch.DecidedCount() {
		t.Fatalf("decided: batch %d != single %d", batch.DecidedCount(), single.DecidedCount())
	}
	if single.DecidedCount() != 40 {
		t.Fatalf("decided %d of 40 instances", single.DecidedCount())
	}
	if len(singleSent.sent) != len(batchSent.sent) {
		t.Fatalf("decision count: batch %d != single %d", len(batchSent.sent), len(singleSent.sent))
	}
	for i := range singleSent.sent {
		if singleSent.sent[i] != batchSent.sent[i] {
			t.Fatalf("decision %d diverged:\n batch %q\nsingle %q", i, batchSent.sent[i], singleSent.sent[i])
		}
	}
}

// TestLeaderHandleBatchMatchesSingle: a batch of client requests, gap
// requests and fast-forward feedback must yield the same proposal stream
// and next-instance state as the per-datagram path.
func TestLeaderHandleBatchMatchesSingle(t *testing.T) {
	var dgs [][]byte
	for i := 0; i < 10; i++ {
		dgs = append(dgs, Encode(Msg{Type: MsgClientRequest, ClientID: uint16(i), Seq: uint64(i),
			ClientAddr: "client-2:7", Value: fmt.Appendf(nil, "req-%d", i)}))
	}
	dgs = append(dgs,
		Encode(Msg{Type: MsgPhase2B, Instance: 30, LastVoted: 30, NodeID: 1}), // fast-forward
		Encode(Msg{Type: MsgClientRequest, Seq: 99, Value: []byte("after")}),  // lands past the fast-forward
		Encode(Msg{Type: MsgGapRequest, Instance: 12}),
		[]byte{0},
	)

	singleSent := &recordingSender{}
	single := NewLiveLeader(5, []string{"a1", "a2"}, singleSent.send)
	var scratch []byte
	for _, dg := range dgs {
		single.HandleDatagram(dg, &scratch)
	}

	batchSent := &recordingSender{}
	batch := NewLiveLeader(5, []string{"a1", "a2"}, batchSent.send)
	batch.HandleBatch(mkItems(dgs))

	if single.Next() != batch.Next() {
		t.Fatalf("next instance: batch %d != single %d", batch.Next(), single.Next())
	}
	if len(singleSent.sent) != len(batchSent.sent) {
		t.Fatalf("proposals: batch %d != single %d", len(batchSent.sent), len(singleSent.sent))
	}
	for i := range singleSent.sent {
		if singleSent.sent[i] != batchSent.sent[i] {
			t.Fatalf("proposal %d diverged:\n batch %q\nsingle %q", i, batchSent.sent[i], singleSent.sent[i])
		}
	}
}

// TestAcceptor2AZeroAlloc is the acceptance bar for the Paxos tentpole:
// the steady-state acceptor paths — a re-vote 2A answered with its 2B,
// and a 1A promise on a known instance — do zero heap allocations, in
// both the single and the batch form. (A fresh 2A pays exactly the
// retention copy of its value, which must outlive the datagram.)
func TestAcceptor2AZeroAlloc(t *testing.T) {
	a := NewLiveAcceptor(1, nil, func(string, Msg) {})
	scratch := make([]byte, 0, 4096)
	p2a := Encode(Msg{Type: MsgPhase2A, Instance: 7, Ballot: 3, ClientID: 1, Seq: 9,
		ClientAddr: "client-1:2345", Value: []byte("value-of-modest-size")})
	p1a := Encode(Msg{Type: MsgPhase1A, Instance: 7, Ballot: 3})
	if _, ok := a.HandleDatagram(p2a, &scratch); !ok {
		t.Fatal("seed 2A failed")
	}
	for name, dg := range map[string][]byte{"2A re-vote": p2a, "1A promise": p1a} {
		ok := true
		allocs := testing.AllocsPerRun(2000, func() {
			out, served := a.HandleDatagram(dg, &scratch)
			ok = ok && served && len(out) > 0
		})
		if !ok {
			t.Fatalf("%s: no reply", name)
		}
		if allocs != 0 {
			t.Fatalf("%s allocates %.1f times per op, want 0", name, allocs)
		}
	}

	const n = 32
	items := make([]*dataplane.BatchItem, n)
	for i := range items {
		s := make([]byte, 0, 1024)
		items[i] = &dataplane.BatchItem{Scratch: &s}
	}
	allocs := testing.AllocsPerRun(500, func() {
		for i := range items {
			items[i].In = p2a
			items[i].Out = nil
			items[i].Served = false
		}
		a.HandleBatch(items)
	})
	if allocs != 0 {
		t.Fatalf("HandleBatch allocates %.1f times per batch, want 0", allocs)
	}
	if len(items[0].Out) == 0 {
		t.Fatal("batched 2A got no reply")
	}
}
