// Package paxos implements the consensus case study (§3.2): a complete
// Paxos deployment — proposer clients, a leader (coordinator), acceptors
// and learners — over the simulated network, in the shape of P4xos ("Paxos
// Made Switch-y"). The same protocol logic runs in three variants:
// libpaxos-style software, DPDK-style polling software, and P4xos hardware
// (FPGA or ASIC), differing only in service latency, capacity and power.
//
// The §9.2 leader-shift machinery is implemented in full: acceptors
// piggyback their last-voted instance on every response, new leaders start
// from instance 1 and fast-forward from the piggybacked values, clients
// retry on a timeout, and learners detect instance gaps and ask the leader
// to re-initiate them (yielding the old value or a no-op).
package paxos

import (
	"encoding/binary"
	"errors"

	"incod/internal/simnet"
)

// Port is the UDP port Paxos messages use.
const Port = 9555

// MsgType enumerates Paxos wire messages.
type MsgType uint8

// Message types. Phase1A/1B are the classic prepare/promise exchange;
// steady-state operation uses Phase2A/2B like P4xos.
const (
	MsgClientRequest MsgType = iota + 1
	MsgPhase1A
	MsgPhase1B
	MsgPhase2A
	MsgPhase2B
	MsgDecision
	MsgGapRequest
)

// String returns the message type name.
func (t MsgType) String() string {
	switch t {
	case MsgClientRequest:
		return "request"
	case MsgPhase1A:
		return "phase1a"
	case MsgPhase1B:
		return "phase1b"
	case MsgPhase2A:
		return "phase2a"
	case MsgPhase2B:
		return "phase2b"
	case MsgDecision:
		return "decision"
	case MsgGapRequest:
		return "gap"
	}
	return "unknown"
}

// NoOp is the value learned for re-initiated instances nobody voted on.
var NoOp = []byte{}

// Msg is a Paxos wire message.
type Msg struct {
	Type     MsgType
	Instance uint64
	// Ballot is the proposal round; VBallot the round a value was
	// accepted in (Phase1B).
	Ballot  uint32
	VBallot uint32
	// NodeID identifies the sending acceptor (Phase1B/2B).
	NodeID uint16
	// LastVoted is the §9.2 piggyback: the acceptor's highest voted
	// instance, included "whenever the acceptor responds to a message".
	LastVoted uint64
	// ClientID/Seq identify the client request carried in Value.
	ClientID uint16
	Seq      uint64
	// ClientAddr routes the learner's decision back to the proposer.
	ClientAddr simnet.Addr
	Value      []byte
}

// ErrShortMessage reports a truncated Paxos datagram.
var ErrShortMessage = errors.New("paxos: truncated message")

const headerSize = 1 + 8 + 4 + 4 + 2 + 8 + 2 + 8 + 2 + 2 // + addr + value

// Encode serializes m.
func Encode(m Msg) []byte {
	return AppendMsg(make([]byte, 0, headerSize+len(m.ClientAddr)+len(m.Value)), m)
}

// AppendMsg is Encode into a caller-provided buffer; the live roles
// encode replies into their dataplane scratch buffer with it.
func AppendMsg(dst []byte, m Msg) []byte {
	b := dst
	b = append(b, byte(m.Type))
	b = binary.BigEndian.AppendUint64(b, m.Instance)
	b = binary.BigEndian.AppendUint32(b, m.Ballot)
	b = binary.BigEndian.AppendUint32(b, m.VBallot)
	b = binary.BigEndian.AppendUint16(b, m.NodeID)
	b = binary.BigEndian.AppendUint64(b, m.LastVoted)
	b = binary.BigEndian.AppendUint16(b, m.ClientID)
	b = binary.BigEndian.AppendUint64(b, m.Seq)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.ClientAddr)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Value)))
	b = append(b, m.ClientAddr...)
	b = append(b, m.Value...)
	return b
}

// MsgView is Msg decoded without copying: ClientAddr and Value alias the
// inbound datagram and are valid only until the buffer is reused — the
// serving hot path's decode. State that must outlive the datagram (an
// acceptor's retained vote, a learner's quorum entry) is materialized
// with Msg(), which performs the copies the plain Decode would have done
// up front for every message.
type MsgView struct {
	Type       MsgType
	Instance   uint64
	Ballot     uint32
	VBallot    uint32
	NodeID     uint16
	LastVoted  uint64
	ClientID   uint16
	Seq        uint64
	ClientAddr []byte
	Value      []byte
}

// DecodeView parses a Paxos datagram into v without allocating.
func DecodeView(b []byte, v *MsgView) error {
	if len(b) < headerSize {
		return ErrShortMessage
	}
	v.Type = MsgType(b[0])
	v.Instance = binary.BigEndian.Uint64(b[1:])
	v.Ballot = binary.BigEndian.Uint32(b[9:])
	v.VBallot = binary.BigEndian.Uint32(b[13:])
	v.NodeID = binary.BigEndian.Uint16(b[17:])
	v.LastVoted = binary.BigEndian.Uint64(b[19:])
	v.ClientID = binary.BigEndian.Uint16(b[27:])
	v.Seq = binary.BigEndian.Uint64(b[29:])
	addrLen := int(binary.BigEndian.Uint16(b[37:]))
	valLen := int(binary.BigEndian.Uint16(b[39:]))
	if len(b) < headerSize+addrLen+valLen {
		return ErrShortMessage
	}
	v.ClientAddr = b[headerSize : headerSize+addrLen]
	v.Value = b[headerSize+addrLen : headerSize+addrLen+valLen]
	return nil
}

// Msg materializes the view into a standalone Msg, copying the aliased
// ClientAddr and Value out of the datagram buffer.
func (v *MsgView) Msg() Msg {
	return Msg{
		Type: v.Type, Instance: v.Instance,
		Ballot: v.Ballot, VBallot: v.VBallot,
		NodeID: v.NodeID, LastVoted: v.LastVoted,
		ClientID: v.ClientID, Seq: v.Seq,
		ClientAddr: simnet.Addr(v.ClientAddr),
		Value:      append([]byte(nil), v.Value...),
	}
}

// AppendMsgView is AppendMsg for a view, without materializing it.
func AppendMsgView(dst []byte, v *MsgView) []byte {
	b := dst
	b = append(b, byte(v.Type))
	b = binary.BigEndian.AppendUint64(b, v.Instance)
	b = binary.BigEndian.AppendUint32(b, v.Ballot)
	b = binary.BigEndian.AppendUint32(b, v.VBallot)
	b = binary.BigEndian.AppendUint16(b, v.NodeID)
	b = binary.BigEndian.AppendUint64(b, v.LastVoted)
	b = binary.BigEndian.AppendUint16(b, v.ClientID)
	b = binary.BigEndian.AppendUint64(b, v.Seq)
	b = binary.BigEndian.AppendUint16(b, uint16(len(v.ClientAddr)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(v.Value)))
	b = append(b, v.ClientAddr...)
	b = append(b, v.Value...)
	return b
}

// Decode parses a Paxos datagram into a standalone Msg (DecodeView plus
// the retention copies). The serving paths use DecodeView and copy only
// what they keep.
func Decode(b []byte) (Msg, error) {
	var v MsgView
	if err := DecodeView(b, &v); err != nil {
		return Msg{}, err
	}
	return v.Msg(), nil
}
