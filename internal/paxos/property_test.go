package paxos

import (
	"fmt"
	"testing"
	"time"

	"incod/internal/simnet"
)

// Randomized schedule property: across seeds, loss rates, and shift
// times, (1) all learners agree on every instance both decided, (2) no
// acceptor ever changes a value except through a ballot increase, and
// (3) the system keeps making progress.
func TestRandomScheduleAgreementProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow")
	}
	for seed := int64(100); seed < 112; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			sim := simnet.New(seed)
			loss := float64(seed%4) * 0.01 // 0-3%
			net := simnet.NewNetwork(sim, simnet.TenGigE.WithLoss(loss))
			d := NewDeployment(net, Config{NumLearners: 2, NumClients: 2})
			for _, c := range d.Clients {
				c.RetryTimeout = 50 * time.Millisecond
			}
			for _, l := range d.Learners {
				l.GapTimeout = 40 * time.Millisecond
			}
			// Random shift schedule: 1-3 shifts at random times.
			shifts := 1 + int(seed%3)
			for s := 0; s < shifts; s++ {
				at := time.Duration(200+sim.Rand().Intn(1500)) * time.Millisecond
				to := d.HWLeader
				if s%2 == 1 {
					to = d.SWLeader
				}
				sim.Schedule(at, func() { d.ShiftLeader(to) })
			}
			for _, c := range d.Clients {
				c.Start(3)
			}
			sim.RunFor(3 * time.Second)
			for _, c := range d.Clients {
				c.Stop()
			}
			sim.RunFor(2 * time.Second)

			if d.Learner.DecidedCount() < 100 {
				t.Fatalf("little progress: %d decided (loss %.0f%%)", d.Learner.DecidedCount(), loss*100)
			}
			l0, l1 := d.Learners[0], d.Learners[1]
			hi := l0.Highest()
			if l1.Highest() > hi {
				hi = l1.Highest()
			}
			for inst := uint64(1); inst <= hi; inst++ {
				v0, ok0 := l0.Decided(inst)
				v1, ok1 := l1.Decided(inst)
				if ok0 && ok1 && string(v0) != string(v1) {
					t.Fatalf("instance %d: disagreement %q vs %q", inst, v0, v1)
				}
			}
			// Acceptors converged on the learners' values wherever decided.
			for inst := uint64(1); inst <= hi; inst++ {
				dv, ok := l0.Decided(inst)
				if !ok {
					continue
				}
				matching := 0
				for _, a := range d.Acceptors {
					if av, ok := a.AcceptedValue(inst); ok && string(av) == string(dv) {
						matching++
					}
				}
				if matching < 2 {
					t.Fatalf("instance %d: decided %q but only %d acceptors hold it", inst, dv, matching)
				}
			}
		})
	}
}
