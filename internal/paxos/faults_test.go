package paxos

import (
	"fmt"
	"testing"
	"time"

	"incod/internal/simnet"
)

// Failure injection: with 5% random packet loss, client retries keep the
// system live and learners still agree on everything decided.
func TestConsensusUnderPacketLoss(t *testing.T) {
	sim := simnet.New(71)
	net := simnet.NewNetwork(sim, simnet.TenGigE.WithLoss(0.05))
	d := NewDeployment(net, Config{NumLearners: 2})
	c := d.Clients[0]
	c.RetryTimeout = 50 * time.Millisecond
	d.Learner.GapTimeout = 50 * time.Millisecond
	d.Learners[1].GapTimeout = 50 * time.Millisecond

	for i := 0; i < 200; i++ {
		c.Submit([]byte(fmt.Sprintf("v%d", i)))
	}
	sim.RunFor(5 * time.Second)

	if net.Dropped() == 0 {
		t.Fatal("loss injection inactive")
	}
	// Liveness: the overwhelming majority of requests decide.
	decided := c.Counters.Get("decided")
	if decided < 190 {
		t.Errorf("client decided %d of 200 under 5%% loss", decided)
	}
	if c.Counters.Get("retries") == 0 {
		t.Error("loss should force retries")
	}
	// Safety: both learners agree wherever both decided.
	l0, l1 := d.Learners[0], d.Learners[1]
	for inst := uint64(1); inst <= l0.Highest(); inst++ {
		v0, ok0 := l0.Decided(inst)
		v1, ok1 := l1.Decided(inst)
		if ok0 && ok1 && string(v0) != string(v1) {
			t.Fatalf("instance %d: learners disagree (%q vs %q)", inst, v0, v1)
		}
	}
}

// A leader shift while packets are being lost must still converge.
func TestLeaderShiftUnderPacketLoss(t *testing.T) {
	sim := simnet.New(72)
	net := simnet.NewNetwork(sim, simnet.TenGigE.WithLoss(0.03))
	d := NewDeployment(net, Config{})
	c := d.Clients[0]
	c.RetryTimeout = 50 * time.Millisecond
	d.Learner.GapTimeout = 50 * time.Millisecond
	c.Start(5)
	sim.RunFor(500 * time.Millisecond)
	d.ShiftLeader(d.HWLeader)
	sim.RunFor(3 * time.Second)
	c.Stop()
	sim.RunFor(2 * time.Second)

	if d.Learner.DecidedCount() == 0 {
		t.Fatal("nothing decided")
	}
	if gaps := d.Learner.Gaps(); len(gaps) != 0 {
		t.Errorf("unrecovered gaps under loss: %v", gaps)
	}
}

func TestMultipleLearnersDeployment(t *testing.T) {
	sim := simnet.New(73)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	d := NewDeployment(net, Config{NumLearners: 3})
	if len(d.Learners) != 3 || d.Learner != d.Learners[0] {
		t.Fatalf("learners = %d", len(d.Learners))
	}
	for i := 0; i < 30; i++ {
		d.Clients[0].Submit([]byte(fmt.Sprintf("v%d", i)))
	}
	sim.RunFor(100 * time.Millisecond)
	for i, l := range d.Learners {
		if l.DecidedCount() != 30 {
			t.Errorf("learner %d decided %d, want 30", i, l.DecidedCount())
		}
	}
}
