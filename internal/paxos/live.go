package paxos

import (
	"net/netip"
	"sync"
	"time"

	"incod/internal/dataplane"
	"incod/internal/simnet"
)

// This file is the live (real-socket) restatement of the protocol roles:
// the same rules the simulated runtime validates, packaged as dataplane
// handlers so incpaxosd serves through the shared sharded engine. Role
// state is mutex-protected — the engine may run several shard workers —
// and replies to the message source travel back through the engine's
// return path, while fan-out (acceptor→learners, leader→acceptors,
// learner→client) goes through a Sender the daemon wires to its socket.

// Sender transmits one message to a peer address ("host:port").
type Sender func(to string, m Msg)

// --- acceptor -------------------------------------------------------------

type liveVoteState struct {
	promised uint32
	accepted bool
	vballot  uint32
	m        Msg
}

// AcceptorTable is the substrate-independent acceptor state machine: the
// promise/vote rules over per-instance records plus the §9.2 last-voted
// high-water mark. It is the unit of state a placement shift hands
// between the host role and the emulated NIC fast path. It does no
// locking; the owner (LiveAcceptor or the NIC tier) serializes access.
type AcceptorTable struct {
	states    map[uint64]*liveVoteState
	lastVoted uint64
}

// NewAcceptorTable returns an empty table.
func NewAcceptorTable() *AcceptorTable {
	return &AcceptorTable{states: make(map[uint64]*liveVoteState)}
}

// Instances returns how many per-instance records the table holds — the
// size of a state handoff.
func (t *AcceptorTable) Instances() int { return len(t.states) }

// LastVoted returns the highest instance this acceptor has voted on.
func (t *AcceptorTable) LastVoted() uint64 { return t.lastVoted }

// Clone deep-copies the table: the modeled DMA of acceptor state into (or
// out of) NIC memory during a placement shift.
func (t *AcceptorTable) Clone() *AcceptorTable {
	out := &AcceptorTable{
		states:    make(map[uint64]*liveVoteState, len(t.states)),
		lastVoted: t.lastVoted,
	}
	for inst, st := range t.states {
		cp := *st
		out.states[inst] = &cp
	}
	return out
}

// Process applies the acceptor rules to m for the acceptor identity id.
// ok=false means the message type is not for an acceptor. vote=true means
// resp is a Phase2B that must also fan out to the learners (the caller
// returns resp to the proposer either way).
func (t *AcceptorTable) Process(m Msg, id uint16) (resp Msg, vote, ok bool) {
	st := t.states[m.Instance]
	if st == nil {
		st = &liveVoteState{}
		t.states[m.Instance] = st
	}
	switch m.Type {
	case MsgPhase1A:
		if m.Ballot >= st.promised {
			st.promised = m.Ballot
		}
		resp = Msg{Type: MsgPhase1B, Instance: m.Instance,
			Ballot: st.promised, NodeID: id, LastVoted: t.lastVoted}
		if st.accepted {
			resp.VBallot = st.vballot
			resp.Value = st.m.Value
		}
		return resp, false, true
	case MsgPhase2A:
		if st.accepted {
			return t.vote(m.Instance, st, id), true, true
		}
		if m.Ballot < st.promised {
			return Msg{Type: MsgPhase1B, Instance: m.Instance,
				Ballot: st.promised, NodeID: id, LastVoted: t.lastVoted}, false, true
		}
		st.promised = m.Ballot
		st.accepted = true
		st.vballot = m.Ballot
		st.m = m
		if m.Instance > t.lastVoted {
			t.lastVoted = m.Instance
		}
		return t.vote(m.Instance, st, id), true, true
	}
	return Msg{}, false, false
}

// vote builds the Phase2B for st.
func (t *AcceptorTable) vote(inst uint64, st *liveVoteState, id uint16) Msg {
	out := st.m
	out.Type = MsgPhase2B
	out.Instance = inst
	out.Ballot = st.vballot
	out.VBallot = st.vballot
	out.NodeID = id
	out.LastVoted = t.lastVoted
	return out
}

// AcceptorDelegate is where a LiveAcceptor routes datagrams while its
// state is handed off to the NIC tier: stragglers that were dispatched to
// the host after the fast path flipped still land on the one live copy of
// the acceptor state. ok=false drops the message (UDP loss semantics —
// proposers retry), which is the safe answer while no copy is serving.
type AcceptorDelegate interface {
	ProcessDelegated(m Msg) (resp Msg, ok bool)
}

// LiveAcceptor is the acceptor role as a dataplane handler. Phase1B/2B
// responses to the proposer are returned (the engine replies to the
// source); votes additionally fan out to the learners. Every response
// piggybacks the §9.2 last-voted instance. While a handoff is in effect
// (BeginHandoff..EndHandoff) the role delegates to the NIC tier instead
// of touching its own — surrendered — table.
type LiveAcceptor struct {
	id       uint16
	learners []string
	send     Sender

	mu       sync.Mutex
	table    *AcceptorTable
	delegate AcceptorDelegate
}

var _ dataplane.Handler = (*LiveAcceptor)(nil)

// NewLiveAcceptor returns an acceptor with identity id voting to learners.
func NewLiveAcceptor(id uint16, learners []string, send Sender) *LiveAcceptor {
	return &LiveAcceptor{id: id, learners: learners, send: send,
		table: NewAcceptorTable()}
}

// ID returns the acceptor's identity, piggybacked on every response.
func (a *LiveAcceptor) ID() uint16 { return a.id }

// Learners returns the learner addresses votes fan out to.
func (a *LiveAcceptor) Learners() []string { return a.learners }

// Sender returns the fan-out transmitter.
func (a *LiveAcceptor) Sender() Sender { return a.send }

// BeginHandoff surrenders the acceptor's state table to d (the NIC tier)
// and returns it. Until EndHandoff, any datagram that still reaches the
// host role — a straggler dispatched before the fast path flipped — is
// delegated to d, so exactly one copy of the state ever serves. The
// handoff is serialized with in-flight host processing by the role's own
// mutex: every promise or vote made before this call is in the returned
// table.
func (a *LiveAcceptor) BeginHandoff(d AcceptorDelegate) *AcceptorTable {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.table
	a.table = NewAcceptorTable()
	a.delegate = d
	return t
}

// EndHandoff reinstalls t as the acceptor's state and stops delegating —
// the down-shift counterpart of BeginHandoff, called after the fast path
// has been drained.
func (a *LiveAcceptor) EndHandoff(t *AcceptorTable) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t != nil {
		a.table = t
	}
	a.delegate = nil
}

// HandleDatagram implements dataplane.Handler.
func (a *LiveAcceptor) HandleDatagram(in []byte, scratch *[]byte) ([]byte, bool) {
	m, err := Decode(in)
	if err != nil {
		return nil, false
	}
	a.mu.Lock()
	if d := a.delegate; d != nil {
		// The NIC tier owns the state; route this straggler there. The
		// role's mutex is held across the call (lock order: role, then
		// tier), keeping it ordered with BeginHandoff/EndHandoff.
		resp, ok := d.ProcessDelegated(m)
		a.mu.Unlock()
		if !ok {
			return nil, false
		}
		return a.reply(resp, scratch)
	}
	resp, vote, ok := a.table.Process(m, a.id)
	a.mu.Unlock()
	if !ok {
		return nil, false
	}
	if vote {
		for _, l := range a.learners {
			a.send(l, resp)
		}
	}
	return a.reply(resp, scratch)
}

func (a *LiveAcceptor) reply(m Msg, scratch *[]byte) ([]byte, bool) {
	*scratch = AppendMsg((*scratch)[:0], m)
	return *scratch, true
}

// --- leader ---------------------------------------------------------------

// LiveLeader is the coordinator role as a dataplane handler: it sequences
// client requests into instances and proposes them to the acceptors. Per
// §9.2 a fresh leader starts at instance 1 and fast-forwards from the
// last-voted values piggybacked on acceptor responses. It never replies
// to the source directly, so all output goes through the Sender.
type LiveLeader struct {
	ballot    uint32
	acceptors []string
	send      Sender

	mu   sync.Mutex
	next uint64
}

var _ dataplane.Handler = (*LiveLeader)(nil)
var _ dataplane.SourceHandler = (*LiveLeader)(nil)

// NewLiveLeader returns a leader proposing with ballot to acceptors.
func NewLiveLeader(ballot uint32, acceptors []string, send Sender) *LiveLeader {
	return &LiveLeader{ballot: ballot, acceptors: acceptors, send: send, next: 1}
}

// Next returns the next instance number (for logs and tests).
func (l *LiveLeader) Next() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// HandleDatagram implements dataplane.Handler.
func (l *LiveLeader) HandleDatagram(in []byte, scratch *[]byte) ([]byte, bool) {
	return l.HandleDatagramFrom(in, netip.AddrPort{}, scratch)
}

// HandleDatagramFrom implements dataplane.SourceHandler; the source backs
// the client address when a request does not carry one.
func (l *LiveLeader) HandleDatagramFrom(in []byte, from netip.AddrPort, _ *[]byte) ([]byte, bool) {
	m, err := Decode(in)
	if err != nil {
		return nil, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch m.Type {
	case MsgClientRequest:
		inst := l.next
		l.next++
		clientAddr := m.ClientAddr
		if clientAddr == "" && from.IsValid() {
			clientAddr = simnet.Addr(from.String())
		}
		l.propose(Msg{Type: MsgPhase2A, Instance: inst, Ballot: l.ballot,
			ClientID: m.ClientID, Seq: m.Seq, ClientAddr: clientAddr, Value: m.Value})
	case MsgPhase2B, MsgPhase1B:
		if m.LastVoted+1 > l.next {
			l.next = m.LastVoted + 1
		}
	case MsgGapRequest:
		l.propose(Msg{Type: MsgPhase2A, Instance: m.Instance, Ballot: l.ballot, Value: NoOp})
	}
	return nil, false
}

func (l *LiveLeader) propose(m Msg) {
	for _, a := range l.acceptors {
		l.send(a, m)
	}
}

// --- learner --------------------------------------------------------------

// LiveLearner is the learner role as a dataplane handler: it counts
// Phase2B votes, decides at quorum, and routes each decision back to the
// client address carried in the winning vote. When wired to a leader it
// periodically scans for instance gaps and asks the leader to re-initiate
// them (§9.2).
type LiveLearner struct {
	quorum int
	leader string
	send   Sender

	mu      sync.Mutex
	votes   map[uint64]map[uint16]Msg
	decided map[uint64]bool
	highest uint64

	stop     chan struct{}
	stopOnce sync.Once
}

var _ dataplane.Handler = (*LiveLearner)(nil)

// NewLiveLearner returns a learner deciding at quorum votes, asking
// leader (if non-empty) to fill gaps.
func NewLiveLearner(quorum int, leader string, send Sender) *LiveLearner {
	return &LiveLearner{quorum: quorum, leader: leader, send: send,
		votes:   make(map[uint64]map[uint16]Msg),
		decided: make(map[uint64]bool),
		stop:    make(chan struct{})}
}

// DecidedCount returns how many instances have been decided.
func (l *LiveLearner) DecidedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.decided)
}

// Start launches the gap scanner (no-op without a leader). Stop ends it.
func (l *LiveLearner) Start(gapEvery time.Duration) {
	if l.leader == "" {
		return
	}
	if gapEvery <= 0 {
		gapEvery = 100 * time.Millisecond
	}
	go func() {
		tick := time.NewTicker(gapEvery)
		defer tick.Stop()
		for {
			select {
			case <-l.stop:
				return
			case <-tick.C:
				l.requestGaps()
			}
		}
	}()
}

// Stop ends the gap scanner. It is idempotent.
func (l *LiveLearner) Stop() { l.stopOnce.Do(func() { close(l.stop) }) }

func (l *LiveLearner) requestGaps() {
	l.mu.Lock()
	var gaps []uint64
	for inst := uint64(1); inst < l.highest; inst++ {
		if !l.decided[inst] {
			gaps = append(gaps, inst)
		}
	}
	l.mu.Unlock()
	for _, inst := range gaps {
		l.send(l.leader, Msg{Type: MsgGapRequest, Instance: inst})
	}
}

// HandleDatagram implements dataplane.Handler.
func (l *LiveLearner) HandleDatagram(in []byte, _ *[]byte) ([]byte, bool) {
	m, err := Decode(in)
	if err != nil || m.Type != MsgPhase2B {
		return nil, false
	}
	l.mu.Lock()
	if l.decided[m.Instance] {
		l.mu.Unlock()
		return nil, false
	}
	byNode := l.votes[m.Instance]
	if byNode == nil {
		byNode = make(map[uint16]Msg)
		l.votes[m.Instance] = byNode
	}
	byNode[m.NodeID] = m
	var best uint32
	for _, v := range byNode {
		if v.VBallot > best {
			best = v.VBallot
		}
	}
	agree := 0
	var chosen Msg
	for _, v := range byNode {
		if v.VBallot == best {
			agree++
			chosen = v
		}
	}
	if agree < l.quorum {
		l.mu.Unlock()
		return nil, false
	}
	l.decided[m.Instance] = true
	delete(l.votes, m.Instance)
	if m.Instance > l.highest {
		l.highest = m.Instance
	}
	l.mu.Unlock()
	if chosen.ClientAddr != "" {
		l.send(string(chosen.ClientAddr), Msg{Type: MsgDecision,
			Instance: m.Instance, ClientID: chosen.ClientID, Seq: chosen.Seq, Value: chosen.Value})
	}
	return nil, false
}
