package paxos

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"incod/internal/dataplane"
	"incod/internal/simnet"
)

// This file is the live (real-socket) restatement of the protocol roles:
// the same rules the simulated runtime validates, packaged as dataplane
// handlers so incpaxosd serves through the shared sharded engine. Role
// state is mutex-protected — the engine may run several shard workers —
// and replies to the message source travel back through the engine's
// return path, while fan-out (acceptor→learners, leader→acceptors,
// learner→client) goes through a Sender the daemon wires to its socket.

// Sender transmits one message to a peer address ("host:port").
type Sender func(to string, m Msg)

// --- acceptor -------------------------------------------------------------

type liveVoteState struct {
	promised uint32
	accepted bool
	vballot  uint32
	m        Msg
}

// AcceptorTable is the substrate-independent acceptor state machine: the
// promise/vote rules over per-instance records plus the §9.2 last-voted
// high-water mark. It is the unit of state a placement shift hands
// between the host role and the emulated NIC fast path. Mutations are
// serialized by the owner (LiveAcceptor or the NIC tier); the settled
// lookaside additionally lets ANY goroutine answer a Phase2A for an
// already-accepted instance via TryVote without that serialization —
// accepted values are immutable here (a re-vote never rewrites state),
// which is what makes the lock-free read linearizable.
type AcceptorTable struct {
	states    map[uint64]*liveVoteState
	lastVoted atomic.Uint64

	// settled is the lock-free lookaside: an open-addressing table from
	// instance to a prebuilt, immutable Phase2B template. The owner
	// publishes into it on every fresh accept; readers only ever load.
	// Grown generations are republished whole; retired generations stay
	// valid forever (their entries are immutable), so a reader holding a
	// stale pointer merely misses newer instances and falls back to the
	// locked path.
	settled      atomic.Pointer[settledTable]
	settledCount int // owner-serialized
}

// settledTable maps instance -> prebuilt Phase2B. insts holds inst+1 so
// zero means empty (wire instance numbers start at 0 in principle);
// votes[i] is published before insts[i], so a visible key always has a
// visible template.
type settledTable struct {
	mask  uint64
	insts []atomic.Uint64
	votes []atomic.Pointer[Msg]
}

// settledFib is the Fibonacci multiplier spreading sequential instance
// numbers across the table.
const settledFib = 0x9E3779B97F4A7C15

// NewAcceptorTable returns an empty table.
func NewAcceptorTable() *AcceptorTable {
	return &AcceptorTable{states: make(map[uint64]*liveVoteState)}
}

// Instances returns how many per-instance records the table holds — the
// size of a state handoff.
func (t *AcceptorTable) Instances() int { return len(t.states) }

// LastVoted returns the highest instance this acceptor has voted on.
func (t *AcceptorTable) LastVoted() uint64 { return t.lastVoted.Load() }

// Clone deep-copies the table (settled lookaside included): the modeled
// DMA of acceptor state into (or out of) NIC memory during a placement
// shift.
func (t *AcceptorTable) Clone() *AcceptorTable {
	out := &AcceptorTable{
		states: make(map[uint64]*liveVoteState, len(t.states)),
	}
	out.lastVoted.Store(t.lastVoted.Load())
	for inst, st := range t.states {
		cp := *st
		out.states[inst] = &cp
		if cp.accepted {
			out.publishSettled(inst, &cp)
		}
	}
	return out
}

// publishSettled installs the prebuilt Phase2B for a freshly accepted
// (or cloned) instance into the lookaside. Owner-serialized; readers
// see votes-before-insts publication order.
func (t *AcceptorTable) publishSettled(inst uint64, st *liveVoteState) {
	tab := t.settled.Load()
	if tab == nil || (t.settledCount+1)*8 >= len(tab.insts)*7 {
		t.growSettled(tab)
		tab = t.settled.Load()
	}
	m := st.m
	m.Type = MsgPhase2B
	m.Instance = inst
	m.Ballot = st.vballot
	m.VBallot = st.vballot
	idx := (inst * settledFib) & tab.mask
	for tab.insts[idx].Load() != 0 {
		if tab.insts[idx].Load() == inst+1 {
			return // already published; accepted state never changes
		}
		idx = (idx + 1) & tab.mask
	}
	tab.votes[idx].Store(&m)
	tab.insts[idx].Store(inst + 1)
	t.settledCount++
}

// growSettled builds and publishes a larger generation carrying every
// settled entry. The old generation is left intact for stale readers.
func (t *AcceptorTable) growSettled(old *settledTable) {
	size := 256
	if old != nil {
		size = len(old.insts) * 2
	}
	nt := &settledTable{
		mask:  uint64(size - 1),
		insts: make([]atomic.Uint64, size),
		votes: make([]atomic.Pointer[Msg], size),
	}
	if old != nil {
		for i := range old.insts {
			key := old.insts[i].Load()
			if key == 0 {
				continue
			}
			idx := ((key - 1) * settledFib) & nt.mask
			for nt.insts[idx].Load() != 0 {
				idx = (idx + 1) & nt.mask
			}
			nt.votes[idx].Store(old.votes[i].Load())
			nt.insts[idx].Store(key)
		}
	}
	t.settled.Store(nt)
}

// TryVote answers a Phase2A for an already-settled instance without any
// lock: the template Msg is immutable (its Value aliases retained state
// written once), so the only per-call fields are the responder identity
// and the last-voted piggyback. ok=false means the instance is not in
// the lookaside (or v is not a 2A) and the caller must take the locked
// path. A stale LastVoted read is harmless — the leader folds the
// maximum over everything it hears.
func (t *AcceptorTable) TryVote(v *MsgView, id uint16) (Msg, bool) {
	if v.Type != MsgPhase2A {
		return Msg{}, false
	}
	tab := t.settled.Load()
	if tab == nil {
		return Msg{}, false
	}
	idx := (v.Instance * settledFib) & tab.mask
	for range tab.insts {
		got := tab.insts[idx].Load()
		if got == 0 {
			return Msg{}, false
		}
		if got == v.Instance+1 {
			mp := tab.votes[idx].Load()
			if mp == nil {
				return Msg{}, false // publication race; locked path serves it
			}
			out := *mp
			out.NodeID = id
			out.LastVoted = t.lastVoted.Load()
			return out, true
		}
		idx = (idx + 1) & tab.mask
	}
	return Msg{}, false
}

func (t *AcceptorTable) state(inst uint64) *liveVoteState {
	st := t.states[inst]
	if st == nil {
		st = &liveVoteState{}
		t.states[inst] = st
	}
	return st
}

// ProcessView applies the acceptor rules to the decoded view v for the
// acceptor identity id — the zero-copy form of Process. ok=false means
// the message type is not for an acceptor. vote=true means resp is a
// Phase2B that must also fan out to the learners (the caller returns
// resp to the proposer either way). The one copy the rules require —
// retaining a fresh 2A's value and client address past the datagram —
// happens here; promises and re-votes allocate nothing, and resp's Value
// aliases the retained state, which is written once and never mutated.
func (t *AcceptorTable) ProcessView(v *MsgView, id uint16) (resp Msg, vote, ok bool) {
	switch v.Type {
	case MsgPhase1A:
		st := t.state(v.Instance)
		if v.Ballot >= st.promised {
			st.promised = v.Ballot
		}
		resp = Msg{Type: MsgPhase1B, Instance: v.Instance,
			Ballot: st.promised, NodeID: id, LastVoted: t.lastVoted.Load()}
		if st.accepted {
			resp.VBallot = st.vballot
			resp.Value = st.m.Value
		}
		return resp, false, true
	case MsgPhase2A:
		st := t.state(v.Instance)
		if st.accepted {
			return t.vote(v.Instance, st, id), true, true
		}
		if v.Ballot < st.promised {
			return Msg{Type: MsgPhase1B, Instance: v.Instance,
				Ballot: st.promised, NodeID: id, LastVoted: t.lastVoted.Load()}, false, true
		}
		st.promised = v.Ballot
		st.accepted = true
		st.vballot = v.Ballot
		st.m = v.Msg() // the retention copy: state outlives the datagram
		if v.Instance > t.lastVoted.Load() {
			t.lastVoted.Store(v.Instance)
		}
		t.publishSettled(v.Instance, st)
		return t.vote(v.Instance, st, id), true, true
	}
	return Msg{}, false, false
}

// Process applies the acceptor rules to an already-materialized m — the
// delegation and test-facing form of ProcessView.
func (t *AcceptorTable) Process(m Msg, id uint16) (resp Msg, vote, ok bool) {
	v := MsgView{
		Type: m.Type, Instance: m.Instance,
		Ballot: m.Ballot, VBallot: m.VBallot,
		NodeID: m.NodeID, LastVoted: m.LastVoted,
		ClientID: m.ClientID, Seq: m.Seq,
		ClientAddr: []byte(m.ClientAddr), Value: m.Value,
	}
	return t.ProcessView(&v, id)
}

// vote builds the Phase2B for st.
func (t *AcceptorTable) vote(inst uint64, st *liveVoteState, id uint16) Msg {
	out := st.m
	out.Type = MsgPhase2B
	out.Instance = inst
	out.Ballot = st.vballot
	out.VBallot = st.vballot
	out.NodeID = id
	out.LastVoted = t.lastVoted.Load()
	return out
}

// AcceptorDelegate is where a LiveAcceptor routes datagrams while its
// state is handed off to the NIC tier: stragglers that were dispatched to
// the host after the fast path flipped still land on the one live copy of
// the acceptor state. ok=false drops the message (UDP loss semantics —
// proposers retry), which is the safe answer while no copy is serving.
type AcceptorDelegate interface {
	ProcessDelegated(m Msg) (resp Msg, ok bool)
}

// LiveAcceptor is the acceptor role as a dataplane handler. Phase1B/2B
// responses to the proposer are returned (the engine replies to the
// source); votes additionally fan out to the learners. Every response
// piggybacks the §9.2 last-voted instance. While a handoff is in effect
// (BeginHandoff..EndHandoff) the role delegates to the NIC tier instead
// of touching its own — surrendered — table.
type LiveAcceptor struct {
	id       uint16
	learners []string
	send     Sender

	// table is an atomic pointer so the lock-free Phase2A pre-pass can
	// reach the settled lookaside without the mutex; the mutex still
	// serializes all mutation and the handoff swap. A pre-pass that
	// loaded the pointer just before BeginHandoff swapped it may answer
	// a straggler from the surrendered table while the tier serves its
	// clone — safe, because settled votes are immutable (the accepted
	// value for an instance never changes) and a stale LastVoted
	// piggyback is folded out by the leader's max.
	mu       sync.Mutex
	table    atomic.Pointer[AcceptorTable]
	delegate AcceptorDelegate
}

var _ dataplane.Handler = (*LiveAcceptor)(nil)
var _ dataplane.BatchHandler = (*LiveAcceptor)(nil)

// NewLiveAcceptor returns an acceptor with identity id voting to learners.
func NewLiveAcceptor(id uint16, learners []string, send Sender) *LiveAcceptor {
	a := &LiveAcceptor{id: id, learners: learners, send: send}
	a.table.Store(NewAcceptorTable())
	return a
}

// ID returns the acceptor's identity, piggybacked on every response.
func (a *LiveAcceptor) ID() uint16 { return a.id }

// Learners returns the learner addresses votes fan out to.
func (a *LiveAcceptor) Learners() []string { return a.learners }

// Sender returns the fan-out transmitter.
func (a *LiveAcceptor) Sender() Sender { return a.send }

// BeginHandoff surrenders the acceptor's state table to d (the NIC tier)
// and returns it. Until EndHandoff, any datagram that still reaches the
// host role — a straggler dispatched before the fast path flipped — is
// delegated to d, so exactly one copy of the state ever serves. The
// handoff is serialized with in-flight host processing by the role's own
// mutex: every promise or vote made before this call is in the returned
// table.
func (a *LiveAcceptor) BeginHandoff(d AcceptorDelegate) *AcceptorTable {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.table.Load()
	a.table.Store(NewAcceptorTable())
	a.delegate = d
	return t
}

// EndHandoff reinstalls t as the acceptor's state and stops delegating —
// the down-shift counterpart of BeginHandoff, called after the fast path
// has been drained.
func (a *LiveAcceptor) EndHandoff(t *AcceptorTable) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t != nil {
		a.table.Store(t)
	}
	a.delegate = nil
}

// HandleDatagram implements dataplane.Handler. The steady-state paths —
// a promise on a known instance, a re-vote on an accepted one — run
// without heap allocation: DecodeView aliases the datagram, the reply
// encodes into the scratch buffer, and only a fresh 2A pays the
// retention copy. Re-votes on settled instances — the dominant retry
// traffic under duplication and loss — are answered entirely without
// the role mutex via the table's settled lookaside.
func (a *LiveAcceptor) HandleDatagram(in []byte, scratch *[]byte) ([]byte, bool) {
	var v MsgView
	if DecodeView(in, &v) != nil {
		return nil, false
	}
	if v.Type == MsgPhase2A {
		if resp, ok := a.table.Load().TryVote(&v, a.id); ok {
			for _, l := range a.learners {
				a.send(l, resp)
			}
			return a.reply(resp, scratch)
		}
	}
	a.mu.Lock()
	if d := a.delegate; d != nil {
		// The NIC tier owns the state; route this straggler there. The
		// role's mutex is held across the call (lock order: role, then
		// tier), keeping it ordered with BeginHandoff/EndHandoff.
		resp, ok := d.ProcessDelegated(v.Msg())
		a.mu.Unlock()
		if !ok {
			return nil, false
		}
		return a.reply(resp, scratch)
	}
	resp, vote, ok := a.table.Load().ProcessView(&v, a.id)
	a.mu.Unlock()
	if !ok {
		return nil, false
	}
	if vote {
		for _, l := range a.learners {
			a.send(l, resp)
		}
	}
	return a.reply(resp, scratch)
}

func (a *LiveAcceptor) reply(m Msg, scratch *[]byte) ([]byte, bool) {
	*scratch = AppendMsg((*scratch)[:0], m)
	return *scratch, true
}

// liveBatchChunk is the unit of batch work for the live roles: per-chunk
// scratch state lives in fixed stack arrays, like the KVS handler's.
const liveBatchChunk = 64

// HandleBatch implements dataplane.BatchHandler: the whole chunk is
// processed under one acquisition of the role's mutex instead of one per
// datagram, with decodes done before the lock and reply encoding plus
// learner fan-out after it — the same pre/post ordering as the single
// path. Replies built after unlock reference retained table state, which
// is written once under the lock and never mutated.
func (a *LiveAcceptor) HandleBatch(items []*dataplane.BatchItem) {
	for off := 0; off < len(items); off += liveBatchChunk {
		a.handleChunk(items[off:min(off+liveBatchChunk, len(items))])
	}
}

func (a *LiveAcceptor) handleChunk(items []*dataplane.BatchItem) {
	var (
		views [liveBatchChunk]MsgView
		resps [liveBatchChunk]Msg
		votes [liveBatchChunk]bool
		oks   [liveBatchChunk]bool
		done  [liveBatchChunk]bool
	)
	for i, it := range items {
		oks[i] = DecodeView(it.In, &views[i]) == nil
	}
	// Lock-free pre-pass: settled re-votes are answered off the
	// lookaside before the chunk ever takes the role mutex, shrinking
	// the locked section to fresh/unsettled work only.
	tab := a.table.Load()
	for i := range items {
		if oks[i] && views[i].Type == MsgPhase2A {
			if resp, ok := tab.TryVote(&views[i], a.id); ok {
				resps[i], votes[i], done[i] = resp, true, true
			}
		}
	}
	a.mu.Lock()
	if d := a.delegate; d != nil {
		// Handoff in effect: stragglers route to the tier's copy, with
		// the role mutex held across the chunk (lock order: role, tier).
		// Items the pre-pass already answered (a settled re-vote served
		// off the pre-swap table — see the field comment) keep their
		// responses and still fan out below.
		for i := range items {
			if oks[i] && !done[i] {
				resps[i], oks[i] = d.ProcessDelegated(views[i].Msg())
			}
		}
		a.mu.Unlock()
		for i, it := range items {
			if !oks[i] {
				continue
			}
			if done[i] && votes[i] {
				for _, l := range a.learners {
					a.send(l, resps[i])
				}
			}
			out := AppendMsg((*it.Scratch)[:0], resps[i])
			*it.Scratch = out
			it.Out = out
		}
		return
	}
	for i := range items {
		if oks[i] && !done[i] {
			resps[i], votes[i], oks[i] = a.table.Load().ProcessView(&views[i], a.id)
		}
	}
	a.mu.Unlock()
	for i, it := range items {
		if !oks[i] {
			continue
		}
		if votes[i] {
			for _, l := range a.learners {
				a.send(l, resps[i])
			}
		}
		out := AppendMsg((*it.Scratch)[:0], resps[i])
		*it.Scratch = out
		it.Out = out
	}
}

// --- leader ---------------------------------------------------------------

// LiveLeader is the coordinator role as a dataplane handler: it sequences
// client requests into instances and proposes them to the acceptors. Per
// §9.2 a fresh leader starts at instance 1 and fast-forwards from the
// last-voted values piggybacked on acceptor responses. It never replies
// to the source directly, so all output goes through the Sender.
type LiveLeader struct {
	ballot    uint32
	acceptors []string
	send      Sender

	mu   sync.Mutex
	next uint64
}

var _ dataplane.Handler = (*LiveLeader)(nil)
var _ dataplane.SourceHandler = (*LiveLeader)(nil)
var _ dataplane.BatchHandler = (*LiveLeader)(nil)

// NewLiveLeader returns a leader proposing with ballot to acceptors.
func NewLiveLeader(ballot uint32, acceptors []string, send Sender) *LiveLeader {
	return &LiveLeader{ballot: ballot, acceptors: acceptors, send: send, next: 1}
}

// Next returns the next instance number (for logs and tests).
func (l *LiveLeader) Next() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// HandleDatagram implements dataplane.Handler.
func (l *LiveLeader) HandleDatagram(in []byte, scratch *[]byte) ([]byte, bool) {
	return l.HandleDatagramFrom(in, netip.AddrPort{}, scratch)
}

// HandleDatagramFrom implements dataplane.SourceHandler; the source backs
// the client address when a request does not carry one. The dominant
// inbound stream — 1B/2B fast-forward feedback from the acceptors — is
// handled entirely on the view, copying nothing.
func (l *LiveLeader) HandleDatagramFrom(in []byte, from netip.AddrPort, _ *[]byte) ([]byte, bool) {
	var v MsgView
	if DecodeView(in, &v) != nil {
		return nil, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.applyView(&v, from)
	return nil, false
}

// HandleBatch implements dataplane.BatchHandler: the batch's requests
// are sequenced and proposed under a single acquisition of the leader's
// mutex instead of one per datagram.
func (l *LiveLeader) HandleBatch(items []*dataplane.BatchItem) {
	var v MsgView
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, it := range items {
		if DecodeView(it.In, &v) == nil {
			l.applyView(&v, it.Src)
		}
	}
}

// applyView runs the leader rules for one decoded message. l.mu is held.
// Proposals materialize the request's value and client address — the
// Sender contract allows retention, so they must not alias the datagram.
func (l *LiveLeader) applyView(v *MsgView, from netip.AddrPort) {
	switch v.Type {
	case MsgClientRequest:
		inst := l.next
		l.next++
		clientAddr := simnet.Addr(v.ClientAddr)
		if clientAddr == "" && from.IsValid() {
			clientAddr = simnet.Addr(from.String())
		}
		l.propose(Msg{Type: MsgPhase2A, Instance: inst, Ballot: l.ballot,
			ClientID: v.ClientID, Seq: v.Seq, ClientAddr: clientAddr,
			Value: append([]byte(nil), v.Value...)})
	case MsgPhase2B, MsgPhase1B:
		if v.LastVoted+1 > l.next {
			l.next = v.LastVoted + 1
		}
	case MsgGapRequest:
		l.propose(Msg{Type: MsgPhase2A, Instance: v.Instance, Ballot: l.ballot, Value: NoOp})
	}
}

func (l *LiveLeader) propose(m Msg) {
	for _, a := range l.acceptors {
		l.send(a, m)
	}
}

// --- learner --------------------------------------------------------------

// LiveLearner is the learner role as a dataplane handler: it counts
// Phase2B votes, decides at quorum, and routes each decision back to the
// client address carried in the winning vote. When wired to a leader it
// periodically scans for instance gaps and asks the leader to re-initiate
// them (§9.2).
type LiveLearner struct {
	quorum int
	leader string
	send   Sender

	mu      sync.Mutex
	votes   map[uint64]map[uint16]Msg
	decided map[uint64]bool
	highest uint64

	stop     chan struct{}
	stopOnce sync.Once
}

var _ dataplane.Handler = (*LiveLearner)(nil)

// NewLiveLearner returns a learner deciding at quorum votes, asking
// leader (if non-empty) to fill gaps.
func NewLiveLearner(quorum int, leader string, send Sender) *LiveLearner {
	return &LiveLearner{quorum: quorum, leader: leader, send: send,
		votes:   make(map[uint64]map[uint16]Msg),
		decided: make(map[uint64]bool),
		stop:    make(chan struct{})}
}

// DecidedCount returns how many instances have been decided.
func (l *LiveLearner) DecidedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.decided)
}

// Start launches the gap scanner (no-op without a leader). Stop ends it.
func (l *LiveLearner) Start(gapEvery time.Duration) {
	if l.leader == "" {
		return
	}
	if gapEvery <= 0 {
		gapEvery = 100 * time.Millisecond
	}
	go func() {
		tick := time.NewTicker(gapEvery)
		defer tick.Stop()
		for {
			select {
			case <-l.stop:
				return
			case <-tick.C:
				l.requestGaps()
			}
		}
	}()
}

// Stop ends the gap scanner. It is idempotent.
func (l *LiveLearner) Stop() { l.stopOnce.Do(func() { close(l.stop) }) }

// ScanGaps runs one synchronous gap scan — the body of the Start ticker —
// so a virtual-time driver (the chaos harness schedules it on the
// simulator's clock) gets §9.2 gap recovery without the wall-clock
// goroutine that would break determinism.
func (l *LiveLearner) ScanGaps() { l.requestGaps() }

func (l *LiveLearner) requestGaps() {
	l.mu.Lock()
	var gaps []uint64
	for inst := uint64(1); inst < l.highest; inst++ {
		if !l.decided[inst] {
			gaps = append(gaps, inst)
		}
	}
	l.mu.Unlock()
	for _, inst := range gaps {
		l.send(l.leader, Msg{Type: MsgGapRequest, Instance: inst})
	}
}

var _ dataplane.BatchHandler = (*LiveLearner)(nil)

// fold applies one Phase2B vote to the quorum state, returning the
// decision to emit when the vote completes a quorum. l.mu is held. Votes
// for already-decided instances return before the retention copy, so the
// duplicate-vote steady state allocates nothing.
func (l *LiveLearner) fold(v *MsgView) (decision Msg, decided bool) {
	if l.decided[v.Instance] {
		return Msg{}, false
	}
	byNode := l.votes[v.Instance]
	if byNode == nil {
		byNode = make(map[uint16]Msg)
		l.votes[v.Instance] = byNode
	}
	byNode[v.NodeID] = v.Msg() // retention copy: the vote outlives the datagram
	var best uint32
	for _, m := range byNode {
		if m.VBallot > best {
			best = m.VBallot
		}
	}
	agree := 0
	var chosen Msg
	for _, m := range byNode {
		if m.VBallot == best {
			agree++
			chosen = m
		}
	}
	if agree < l.quorum {
		return Msg{}, false
	}
	l.decided[v.Instance] = true
	delete(l.votes, v.Instance)
	if v.Instance > l.highest {
		l.highest = v.Instance
	}
	return Msg{Type: MsgDecision, Instance: v.Instance,
		ClientID: chosen.ClientID, Seq: chosen.Seq,
		ClientAddr: chosen.ClientAddr, Value: chosen.Value}, true
}

// emit routes a decision back to the client carried in the winning vote.
func (l *LiveLearner) emit(decision Msg) {
	if decision.ClientAddr != "" {
		to := string(decision.ClientAddr)
		decision.ClientAddr = ""
		l.send(to, decision)
	}
}

// HandleDatagram implements dataplane.Handler.
func (l *LiveLearner) HandleDatagram(in []byte, _ *[]byte) ([]byte, bool) {
	var v MsgView
	if DecodeView(in, &v) != nil || v.Type != MsgPhase2B {
		return nil, false
	}
	l.mu.Lock()
	decision, decided := l.fold(&v)
	l.mu.Unlock()
	if decided {
		l.emit(decision)
	}
	return nil, false
}

// HandleBatch implements dataplane.BatchHandler: a whole chunk of 2B
// votes folds into the quorum map under one acquisition of the learner's
// mutex, with the resulting decisions emitted after it is released —
// through the same Sender (and so the engine's batched WriteTo path) as
// the single form.
func (l *LiveLearner) HandleBatch(items []*dataplane.BatchItem) {
	for off := 0; off < len(items); off += liveBatchChunk {
		l.foldChunk(items[off:min(off+liveBatchChunk, len(items))])
	}
}

func (l *LiveLearner) foldChunk(items []*dataplane.BatchItem) {
	var decisions [liveBatchChunk]Msg
	var v MsgView
	n := 0
	l.mu.Lock()
	for _, it := range items {
		if DecodeView(it.In, &v) != nil || v.Type != MsgPhase2B {
			continue
		}
		if decision, decided := l.fold(&v); decided {
			decisions[n] = decision
			n++
		}
	}
	l.mu.Unlock()
	for i := 0; i < n; i++ {
		l.emit(decisions[i])
	}
}
