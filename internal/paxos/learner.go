package paxos

import (
	"time"

	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// Learner collects Phase2B votes, declares decisions at quorum, notifies
// the issuing client, and — per §9.2 — watches for instance-number gaps:
// after a timeout it asks the leader to re-initiate missing instances,
// which resolve to the previously voted value or a no-op.
type Learner struct {
	role
	quorum int
	leader simnet.Addr

	votes   map[uint64]map[uint16]Msg
	decided map[uint64][]byte
	highest uint64
	// gapAsked tracks instances we already requested, to avoid spamming.
	gapAsked map[uint64]simnet.Time

	// GapTimeout is how long a hole may linger before re-initiation.
	GapTimeout time.Duration
	// OnDecide, when set, observes every decision in order of arrival.
	OnDecide func(inst uint64, value []byte)

	Decisions *telemetry.RateMeter
}

// NewLearner attaches a learner expecting quorum votes per instance.
func NewLearner(net *simnet.Network, addr simnet.Addr, rt *Runtime, quorum int, leader simnet.Addr) *Learner {
	l := &Learner{
		role:       newRole(net, addr, rt),
		quorum:     quorum,
		leader:     leader,
		votes:      make(map[uint64]map[uint16]Msg),
		decided:    make(map[uint64][]byte),
		gapAsked:   make(map[uint64]simnet.Time),
		GapTimeout: 50 * time.Millisecond,
		Decisions:  telemetry.NewRateMeter(10*time.Millisecond, 100),
	}
	net.Attach(l)
	// Periodic gap scan.
	net.Sim().Every(l.GapTimeout, l.scanGaps)
	return l
}

// SetLeader retargets gap requests after a shift.
func (l *Learner) SetLeader(leader simnet.Addr) { l.leader = leader }

// Decided returns the decided value for an instance.
func (l *Learner) Decided(inst uint64) ([]byte, bool) {
	v, ok := l.decided[inst]
	return v, ok
}

// DecidedCount returns the number of decided instances.
func (l *Learner) DecidedCount() int { return len(l.decided) }

// Highest returns the highest decided instance.
func (l *Learner) Highest() uint64 { return l.highest }

// Gaps returns undecided instances below the highest decided one.
func (l *Learner) Gaps() []uint64 {
	var gaps []uint64
	for i := uint64(1); i < l.highest; i++ {
		if _, ok := l.decided[i]; !ok {
			gaps = append(gaps, i)
		}
	}
	return gaps
}

// Receive implements simnet.Node.
func (l *Learner) Receive(pkt *simnet.Packet) {
	m, err := Decode(pkt.Payload)
	if err != nil {
		l.Counters.Inc("bad_msg", 1)
		return
	}
	if m.Type != MsgPhase2B {
		l.Counters.Inc("unexpected", 1)
		return
	}
	l.rate.Add(l.sim.Now(), 1)
	if _, done := l.decided[m.Instance]; done {
		l.Counters.Inc("late_votes", 1)
		return
	}
	byNode, ok := l.votes[m.Instance]
	if !ok {
		byNode = make(map[uint16]Msg)
		l.votes[m.Instance] = byNode
	}
	byNode[m.NodeID] = m
	// Count votes agreeing on the highest ballot seen for this instance.
	// Values are compared too (defense in depth: correct proposers never
	// issue two values at one ballot, but a diverged vote stream must
	// never split learners).
	var best uint32
	for _, v := range byNode {
		if v.VBallot > best {
			best = v.VBallot
		}
	}
	agreeByValue := make(map[string]int)
	for _, v := range byNode {
		if v.VBallot == best {
			agreeByValue[string(v.Value)]++
		}
	}
	for val, agree := range agreeByValue {
		if agree >= l.quorum {
			l.decide(m.Instance, byNode, best, val)
			return
		}
	}
}

func (l *Learner) decide(inst uint64, byNode map[uint16]Msg, ballot uint32, value string) {
	var chosen Msg
	for _, v := range byNode {
		if v.VBallot == ballot && string(v.Value) == value {
			chosen = v
			break
		}
	}
	l.decided[inst] = chosen.Value
	delete(l.votes, inst)
	delete(l.gapAsked, inst)
	if inst > l.highest {
		l.highest = inst
	}
	l.Counters.Inc("decided", 1)
	l.Decisions.Add(l.sim.Now(), 1)
	if len(chosen.Value) == 0 {
		l.Counters.Inc("noop", 1)
	}
	if l.OnDecide != nil {
		l.OnDecide(inst, chosen.Value)
	}
	// Notify the issuing client.
	if chosen.ClientAddr != "" {
		lat := l.runtime.ServiceLatency(l.sim.Rand())
		l.send(chosen.ClientAddr, Msg{
			Type:     MsgDecision,
			Instance: inst,
			ClientID: chosen.ClientID,
			Seq:      chosen.Seq,
			Value:    chosen.Value,
		}, lat)
	}
}

// scanGaps implements the §9.2 learner timeout: ask the leader to
// re-initiate instances that stayed undecided behind the frontier.
func (l *Learner) scanGaps() {
	now := l.sim.Now()
	for _, inst := range l.Gaps() {
		if asked, ok := l.gapAsked[inst]; ok && now.Sub(asked) < l.GapTimeout {
			continue
		}
		l.gapAsked[inst] = now
		l.Counters.Inc("gap_detected", 1)
		l.send(l.leader, Msg{Type: MsgGapRequest, Instance: inst}, 0)
	}
}
