package paxos

import (
	"fmt"
	"testing"
	"time"

	"incod/internal/simnet"
)

func deploy(t *testing.T, seed int64, cfg Config) (*simnet.Simulator, *Deployment) {
	t.Helper()
	sim := simnet.New(seed)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	return sim, NewDeployment(net, cfg)
}

func TestBasicConsensus(t *testing.T) {
	sim, d := deploy(t, 1, Config{})
	c := d.Clients[0]
	c.Submit([]byte("value-1"))
	sim.RunFor(10 * time.Millisecond)

	if got := c.Counters.Get("decided"); got != 1 {
		t.Fatalf("client decided = %d, want 1 (counters: %v)", got, c.Counters)
	}
	v, ok := d.Learner.Decided(1)
	if !ok || string(v) != "value-1" {
		t.Errorf("learner decided(1) = %q, %v", v, ok)
	}
	// All three acceptors voted.
	for i, a := range d.Acceptors {
		if a.Counters.Get("voted") != 1 {
			t.Errorf("acceptor %d voted %d times, want 1", i, a.Counters.Get("voted"))
		}
		if a.LastVoted() != 1 {
			t.Errorf("acceptor %d LastVoted = %d, want 1", i, a.LastVoted())
		}
	}
}

func TestSequentialInstances(t *testing.T) {
	sim, d := deploy(t, 2, Config{})
	c := d.Clients[0]
	for i := 0; i < 50; i++ {
		c.Submit([]byte(fmt.Sprintf("v%d", i)))
	}
	sim.RunFor(100 * time.Millisecond)
	if d.Learner.DecidedCount() != 50 {
		t.Fatalf("decided %d instances, want 50", d.Learner.DecidedCount())
	}
	if gaps := d.Learner.Gaps(); len(gaps) != 0 {
		t.Errorf("gaps = %v, want none", gaps)
	}
	if d.CurrentLeader().NextInstance() != 51 {
		t.Errorf("leader next = %d, want 51", d.CurrentLeader().NextInstance())
	}
}

// Safety: all learners agree on every decided instance even with competing
// proposals for the same instance.
func TestAgreementAcrossLearners(t *testing.T) {
	sim := simnet.New(3)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	accAddrs := []simnet.Addr{"a0", "a1", "a2"}
	learners := []simnet.Addr{"l0", "l1"}
	leader := NewLeader(net, "ld", NewLibpaxosLeader(), 1, accAddrs)
	for i, aa := range accAddrs {
		NewAcceptor(net, aa, uint16(i), NewLibpaxosAcceptor(), "ld", learners)
	}
	l0 := NewLearner(net, "l0", NewLibpaxosAcceptor(), 2, "ld")
	l1 := NewLearner(net, "l1", NewLibpaxosAcceptor(), 2, "ld")
	c := NewClient(net, "c0", 0, "ld")
	for i := 0; i < 20; i++ {
		c.Submit([]byte(fmt.Sprintf("v%d", i)))
	}
	_ = leader
	sim.RunFor(100 * time.Millisecond)
	if l0.DecidedCount() == 0 {
		t.Fatal("nothing decided")
	}
	if l0.DecidedCount() != l1.DecidedCount() {
		t.Fatalf("learners decided %d vs %d", l0.DecidedCount(), l1.DecidedCount())
	}
	for inst := uint64(1); inst <= l0.Highest(); inst++ {
		v0, ok0 := l0.Decided(inst)
		v1, ok1 := l1.Decided(inst)
		if ok0 != ok1 || string(v0) != string(v1) {
			t.Errorf("instance %d: learners disagree (%q,%v vs %q,%v)", inst, v0, ok0, v1, ok1)
		}
	}
}

// Safety: an accepted instance is never overwritten by a later Phase2A.
func TestReinitiationPreservesDecidedValue(t *testing.T) {
	sim, d := deploy(t, 4, Config{})
	c := d.Clients[0]
	c.Submit([]byte("original"))
	sim.RunFor(10 * time.Millisecond)

	// A (confused) leader re-initiates instance 1 with a no-op.
	d.CurrentLeader().Receive(&simnet.Packet{
		Src: "learner", Dst: d.CurrentLeader().Addr(), SrcPort: Port, DstPort: Port,
		Payload: Encode(Msg{Type: MsgGapRequest, Instance: 1}),
	})
	sim.RunFor(10 * time.Millisecond)

	v, ok := d.Learner.Decided(1)
	if !ok || string(v) != "original" {
		t.Errorf("decided(1) = %q after re-initiation, want original", v)
	}
	for i, a := range d.Acceptors {
		if v, _ := a.AcceptedValue(1); string(v) != "original" {
			t.Errorf("acceptor %d value overwritten to %q", i, v)
		}
	}
}

// §9.2 shift: software -> hardware leader with client-timeout stall and
// full recovery, no lost or corrupted instances.
func TestLeaderShiftSWToHW(t *testing.T) {
	sim, d := deploy(t, 5, Config{})
	c := d.Clients[0]
	c.RetryTimeout = 100 * time.Millisecond
	c.Start(5) // 5 kpps
	sim.RunFor(500 * time.Millisecond)
	preShift := d.Learner.DecidedCount()
	if preShift == 0 {
		t.Fatal("no progress before shift")
	}

	d.ShiftLeader(d.HWLeader)
	if d.HWLeader.NextInstance() != 1 {
		t.Fatal("new leader must start at sequence 1 (§9.2)")
	}
	sim.RunFor(2 * time.Second)
	c.Stop()
	sim.RunFor(500 * time.Millisecond)

	if d.Learner.DecidedCount() <= preShift {
		t.Fatal("no progress after shift")
	}
	// The new leader fast-forwarded past the old instances.
	if d.HWLeader.NextInstance() <= uint64(preShift) {
		t.Errorf("hw leader next = %d, want > %d (piggyback fast-forward)", d.HWLeader.NextInstance(), preShift)
	}
	if d.HWLeader.Counters.Get("fast_forward") == 0 {
		t.Error("fast-forward path never exercised")
	}
	// Clients needed retries across the stall.
	if c.Counters.Get("retries") == 0 {
		t.Error("expected client retries during the shift")
	}
	// Every instance eventually decided (no-op fills allowed).
	if gaps := d.Learner.Gaps(); len(gaps) != 0 {
		t.Errorf("gaps after recovery: %v", gaps)
	}
}

func TestLeaderShiftLatencyDrops(t *testing.T) {
	sim, d := deploy(t, 6, Config{})
	c := d.Clients[0]
	c.Start(5)
	sim.RunFor(1 * time.Second)
	swMed := c.Latency.Median()
	c.Latency.Reset()

	d.ShiftLeader(d.HWLeader)
	sim.RunFor(500 * time.Millisecond) // let the stall pass
	c.Latency.Reset()
	sim.RunFor(1 * time.Second)
	hwMed := c.Latency.Median()
	c.Stop()

	// Figure 7: "the latency is halved when the leader is implemented in
	// hardware". Accept a 1.3-3x improvement band.
	ratio := float64(swMed) / float64(hwMed)
	if ratio < 1.3 || ratio > 3.5 {
		t.Errorf("sw/hw latency ratio = %.2f (sw=%v hw=%v), want ~2", ratio, swMed, hwMed)
	}
}

func TestShiftBackToSoftware(t *testing.T) {
	sim, d := deploy(t, 7, Config{})
	c := d.Clients[0]
	c.Start(5)
	sim.RunFor(300 * time.Millisecond)
	d.ShiftLeader(d.HWLeader)
	sim.RunFor(time.Second)
	d.ShiftLeader(d.SWLeader)
	sim.RunFor(2 * time.Second)
	c.Stop()
	sim.RunFor(500 * time.Millisecond)

	if d.Shifts() != 2 {
		t.Errorf("shifts = %d, want 2", d.Shifts())
	}
	if d.CurrentLeader() != d.SWLeader {
		t.Error("leadership should be back in software")
	}
	if gaps := d.Learner.Gaps(); len(gaps) != 0 {
		t.Errorf("gaps after double shift: %v", gaps)
	}
	if d.Learner.DecidedCount() == 0 {
		t.Fatal("nothing decided")
	}
}

func TestShiftToSameLeaderIsNoop(t *testing.T) {
	_, d := deploy(t, 8, Config{})
	d.ShiftLeader(d.SWLeader)
	if d.Shifts() != 0 {
		t.Error("shifting to the current leader should be a no-op")
	}
}

func TestGapRecoveryWithNoOp(t *testing.T) {
	sim, d := deploy(t, 9, Config{})
	d.Learner.GapTimeout = 20 * time.Millisecond
	// Manufacture a gap: decide instance 3 but never instance 1-2, by
	// having the leader skip instances (simulating lost proposals).
	lead := d.CurrentLeader()
	lead.next = 3
	d.Clients[0].Submit([]byte("late"))
	sim.RunFor(5 * time.Millisecond)
	if _, ok := d.Learner.Decided(3); !ok {
		t.Fatal("instance 3 not decided")
	}
	// The learner should now detect gaps 1,2 and ask for re-initiation.
	sim.RunFor(200 * time.Millisecond)
	if gaps := d.Learner.Gaps(); len(gaps) != 0 {
		t.Fatalf("gaps not recovered: %v", gaps)
	}
	if d.Learner.Counters.Get("noop") != 2 {
		t.Errorf("noop decisions = %d, want 2", d.Learner.Counters.Get("noop"))
	}
	for _, inst := range []uint64{1, 2} {
		if v, ok := d.Learner.Decided(inst); !ok || len(v) != 0 {
			t.Errorf("instance %d = %q, want no-op", inst, v)
		}
	}
}

func TestPhase1Exchange(t *testing.T) {
	sim, d := deploy(t, 10, Config{})
	c := d.Clients[0]
	c.Submit([]byte("v"))
	sim.RunFor(10 * time.Millisecond)
	// Run an explicit Phase1 over the decided range from the HW leader.
	d.HWLeader.SetBallot(10)
	d.HWLeader.Prepare(1, 1)
	sim.RunFor(10 * time.Millisecond)
	for i, a := range d.Acceptors {
		if a.Counters.Get("phase1a") != 1 {
			t.Errorf("acceptor %d phase1a = %d", i, a.Counters.Get("phase1a"))
		}
	}
	// Phase1B piggyback fast-forwards the prospective leader.
	if d.HWLeader.NextInstance() < 2 {
		t.Errorf("hw leader next = %d, want >= 2 after promises", d.HWLeader.NextInstance())
	}
}

func TestAcceptorRejectsStaleBallot(t *testing.T) {
	sim := simnet.New(11)
	net := simnet.NewNetwork(sim, simnet.TenGigE)
	a := NewAcceptor(net, "acc", 0, NewLibpaxosAcceptor(), "ld", []simnet.Addr{"lrn"})
	NewLearner(net, "lrn", NewLibpaxosAcceptor(), 1, "ld")
	// Promise ballot 5 first.
	a.Receive(&simnet.Packet{Src: "ld", Dst: "acc",
		Payload: Encode(Msg{Type: MsgPhase1A, Instance: 1, Ballot: 5})})
	sim.RunFor(time.Millisecond)
	// A stale ballot-3 proposal must be rejected.
	a.Receive(&simnet.Packet{Src: "old-ld", Dst: "acc",
		Payload: Encode(Msg{Type: MsgPhase2A, Instance: 1, Ballot: 3, Value: []byte("stale")})})
	sim.RunFor(time.Millisecond)
	if a.Counters.Get("rejected") != 1 {
		t.Errorf("rejected = %d, want 1", a.Counters.Get("rejected"))
	}
	if _, ok := a.AcceptedValue(1); ok {
		t.Error("stale proposal must not be accepted")
	}
}

func TestInactiveLeaderIgnoresRequests(t *testing.T) {
	sim, d := deploy(t, 12, Config{})
	d.SWLeader.SetActive(false)
	d.Clients[0].MaxRetries = 1
	d.Clients[0].Submit([]byte("v"))
	sim.RunFor(400 * time.Millisecond)
	if d.Learner.DecidedCount() != 0 {
		t.Error("paused leader should not decide anything")
	}
	if d.SWLeader.Counters.Get("ignored_inactive") == 0 {
		t.Error("paused leader should count ignored requests")
	}
	if d.Clients[0].Counters.Get("gave_up") != 1 {
		t.Error("client should give up after max retries")
	}
}

func TestDeploymentPowerSource(t *testing.T) {
	sim, d := deploy(t, 13, Config{})
	src := d.PowerSource()
	idleSW := src.PowerWatts(sim.Now())
	if idleSW != 39 {
		t.Errorf("software idle = %v W, want 39", idleSW)
	}
	d.ShiftLeader(d.HWLeader)
	hw := src.PowerWatts(sim.Now())
	// 39 + ~10 W card.
	if hw < 48 || hw > 51 {
		t.Errorf("hardware leader power = %v W, want ~49", hw)
	}
}

func TestClientToleratesDuplicateDecision(t *testing.T) {
	sim, d := deploy(t, 14, Config{})
	c := d.Clients[0]
	seq := c.Submit([]byte("v"))
	sim.RunFor(10 * time.Millisecond)
	if c.Counters.Get("decided") != 1 {
		t.Fatal("request not decided")
	}
	// Deliver the same decision again: must be counted, not crash.
	c.Receive(&simnet.Packet{Src: "learner", Dst: c.Addr(),
		Payload: Encode(Msg{Type: MsgDecision, Instance: 1, ClientID: 0, Seq: seq, Value: []byte("v")})})
	if c.Counters.Get("duplicate_decision") != 1 {
		t.Errorf("duplicate_decision = %d, want 1", c.Counters.Get("duplicate_decision"))
	}
	if c.Outstanding() != 0 {
		t.Error("no requests should remain outstanding")
	}
}
