package paxos

import (
	"encoding/binary"
	"time"

	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// Client is a Paxos proposer: it submits values to the leader at a
// controlled rate and resends after a timeout if no decision arrives —
// the §9.2 retry that lets a freshly shifted leader converge on the next
// sequence number ("the clients resend requests after a time-out period").
type Client struct {
	role
	id     uint16
	leader simnet.Addr

	// RetryTimeout is the §9.2 client timeout (Figure 7's ~100ms stall is
	// "the value of the client timeout").
	RetryTimeout time.Duration
	// MaxRetries bounds resends per request.
	MaxRetries int

	nextSeq uint64
	pending map[uint64]*pendingReq

	Latency *telemetry.Histogram
	cancel  func()
	// closedLoop, when set, submits the next request on completion.
	closedLoop func()
}

type pendingReq struct {
	value    []byte
	sentAt   simnet.Time
	firstAt  simnet.Time
	retries  int
	timerGen int
}

// NewClient attaches a proposer targeting leader.
func NewClient(net *simnet.Network, addr simnet.Addr, id uint16, leader simnet.Addr) *Client {
	c := &Client{
		role:         newRole(net, addr, &Runtime{Name: "client", BaseLatency: time.Microsecond, Jitter: time.Microsecond, PeakKpps: 1e9}),
		id:           id,
		leader:       leader,
		RetryTimeout: 100 * time.Millisecond,
		MaxRetries:   10,
		pending:      make(map[uint64]*pendingReq),
		Latency:      telemetry.NewHistogram(),
	}
	net.Attach(c)
	return c
}

// Retarget points subsequent requests (and retries) at a new leader —
// the controller "modifies switch forwarding rules to send messages to
// the new leader" (§9.2).
func (c *Client) Retarget(leader simnet.Addr) { c.leader = leader }

// Outstanding returns the number of undecided requests.
func (c *Client) Outstanding() int { return len(c.pending) }

// DecidedRate returns decisions/sec observed over the sliding window.
func (c *Client) DecidedRate() float64 { return c.rate.Rate(c.sim.Now()) }

// Submit proposes one value.
func (c *Client) Submit(value []byte) uint64 {
	c.nextSeq++
	seq := c.nextSeq
	req := &pendingReq{value: value, sentAt: c.sim.Now(), firstAt: c.sim.Now()}
	c.pending[seq] = req
	c.Counters.Inc("submitted", 1)
	c.sendRequest(seq, req)
	return seq
}

func (c *Client) sendRequest(seq uint64, req *pendingReq) {
	req.sentAt = c.sim.Now()
	req.timerGen++
	gen := req.timerGen
	c.send(c.leader, Msg{
		Type:       MsgClientRequest,
		ClientID:   c.id,
		Seq:        seq,
		ClientAddr: c.addr,
		Value:      req.value,
	}, 0)
	c.sim.Schedule(c.RetryTimeout, func() { c.maybeRetry(seq, gen) })
}

func (c *Client) maybeRetry(seq uint64, gen int) {
	req, ok := c.pending[seq]
	if !ok || req.timerGen != gen {
		return
	}
	if req.retries >= c.MaxRetries {
		delete(c.pending, seq)
		c.Counters.Inc("gave_up", 1)
		if c.closedLoop != nil {
			c.closedLoop()
		}
		return
	}
	req.retries++
	c.Counters.Inc("retries", 1)
	c.sendRequest(seq, req)
}

// Start submits fresh values at rateKpps (Poisson) until Stop.
func (c *Client) Start(rateKpps float64) {
	c.Stop()
	if rateKpps <= 0 {
		return
	}
	meanGap := time.Duration(float64(time.Second) / (rateKpps * 1000))
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		v := make([]byte, 8)
		binary.BigEndian.PutUint64(v, c.nextSeq+1)
		c.Submit(v)
		gap := time.Duration(c.sim.Rand().ExpFloat64() * float64(meanGap))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		c.sim.Schedule(gap, tick)
	}
	c.sim.Schedule(meanGap, tick)
	c.cancel = func() { stopped = true }
}

// StartClosedLoop keeps k requests outstanding, submitting the next value
// as soon as one decides (or is given up on) — the mutilate-style closed
// loop the paper's testbed uses. During a leader shift all k outstanding
// requests burn and wait out the retry timeout, which is exactly what
// produces Figure 7's ~100 ms zero-throughput gap.
func (c *Client) StartClosedLoop(k int) {
	c.Stop()
	stopped := false
	c.closedLoop = func() {
		if stopped {
			return
		}
		v := make([]byte, 8)
		binary.BigEndian.PutUint64(v, c.nextSeq+1)
		c.Submit(v)
	}
	c.cancel = func() { stopped = true; c.closedLoop = nil }
	for i := 0; i < k; i++ {
		c.closedLoop()
	}
}

// Stop halts the submission stream (outstanding retries keep running).
func (c *Client) Stop() {
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
}

// Receive implements simnet.Node: decisions complete pending requests.
func (c *Client) Receive(pkt *simnet.Packet) {
	m, err := Decode(pkt.Payload)
	if err != nil {
		c.Counters.Inc("bad_msg", 1)
		return
	}
	if m.Type != MsgDecision || m.ClientID != c.id {
		c.Counters.Inc("unexpected", 1)
		return
	}
	req, ok := c.pending[m.Seq]
	if !ok {
		c.Counters.Inc("duplicate_decision", 1)
		return
	}
	delete(c.pending, m.Seq)
	c.rate.Add(c.sim.Now(), 1)
	c.Counters.Inc("decided", 1)
	c.Latency.Observe(c.sim.Now().Sub(req.firstAt))
	if c.closedLoop != nil {
		c.closedLoop()
	}
}
