package paxos

import (
	"testing"
	"time"

	"incod/internal/simnet"
)

// inject delivers a raw message to a node as if from src.
func inject(n simnet.Node, src simnet.Addr, m Msg) {
	n.Receive(&simnet.Packet{Src: src, Dst: n.Addr(), SrcPort: Port, DstPort: Port, Payload: Encode(m)})
}

// Divergent instance: one acceptor voted X at ballot 1, the other two
// voted Y at ballot 2 minus one — i.e. no quorum agrees on a ballot. The
// leader's escalated Phase1/Phase2 recovery must converge all learners on
// the highest-ballot value.
func TestRecoveryResolvesDivergentInstance(t *testing.T) {
	sim, d := deploy(t, 61, Config{})
	d.Learner.GapTimeout = 20 * time.Millisecond
	lead := d.CurrentLeader()

	// Hand-craft divergence at instance 1: acceptor 0 accepted "X"@1;
	// acceptors 1-2 accepted "Y"@2. (As would happen if a shifted leader
	// raced the old one.)
	inject(d.Acceptors[0], "ghost-1", Msg{Type: MsgPhase2A, Instance: 1, Ballot: 1, Value: []byte("X")})
	inject(d.Acceptors[1], "ghost-2", Msg{Type: MsgPhase2A, Instance: 1, Ballot: 2, Value: []byte("Y")})
	inject(d.Acceptors[2], "ghost-2", Msg{Type: MsgPhase2A, Instance: 1, Ballot: 2, Value: []byte("Y")})
	// Drain the 2B fan-out: the learner sees 1x vb1 + 2x vb2 and decides
	// "Y" at quorum... with quorum 2 this already decides. To force the
	// stuck case, use a learner whose votes got lost: reset it.
	sim.RunFor(10 * time.Millisecond)

	// Now push the frontier so instance 1 becomes a gap for a FRESH
	// learner that never saw those votes.
	lead.next = 2
	fresh := NewLearner(d.Net, "fresh-learner", NewLibpaxosAcceptor(), 2, lead.Addr())
	fresh.GapTimeout = 20 * time.Millisecond
	for _, a := range d.Acceptors {
		a.learners = append(a.learners, fresh.Addr())
	}
	d.Clients[0].Submit([]byte("frontier"))
	sim.RunFor(10 * time.Millisecond)
	if _, ok := fresh.Decided(2); !ok {
		t.Fatal("frontier instance not decided")
	}
	// The fresh learner sees a gap at 1; re-announces alone may not
	// conflict here (vb2 has quorum), but the recovery path must in any
	// case converge it.
	sim.RunFor(300 * time.Millisecond)
	v, ok := fresh.Decided(1)
	if !ok {
		t.Fatalf("gap never recovered; learner counters: %v", fresh.Counters)
	}
	if string(v) != "Y" {
		t.Errorf("recovered %q, want the highest-ballot value Y", v)
	}
}

// The truly stuck case: votes split 1-1-1 across three ballots, so no
// quorum shares a ballot and re-announces can never decide. Only the
// Phase1 escalation converges it.
func TestRecoveryResolvesThreeWaySplit(t *testing.T) {
	sim, d := deploy(t, 62, Config{})
	d.Learner.GapTimeout = 20 * time.Millisecond
	lead := d.CurrentLeader()

	inject(d.Acceptors[0], "g1", Msg{Type: MsgPhase2A, Instance: 1, Ballot: 1, Value: []byte("A")})
	inject(d.Acceptors[1], "g2", Msg{Type: MsgPhase2A, Instance: 1, Ballot: 2, Value: []byte("B")})
	inject(d.Acceptors[2], "g3", Msg{Type: MsgPhase2A, Instance: 1, Ballot: 3, Value: []byte("C")})
	sim.RunFor(10 * time.Millisecond)
	if _, ok := d.Learner.Decided(1); ok {
		t.Fatal("three-way split should not decide by itself")
	}

	// Advance the frontier so the learner flags the gap.
	lead.next = 2
	d.Clients[0].Submit([]byte("frontier"))
	sim.RunFor(500 * time.Millisecond)

	v, ok := d.Learner.Decided(1)
	if !ok {
		t.Fatalf("split instance never recovered (learner: %v, leader: %v)", d.Learner.Counters, lead.Counters)
	}
	// The recovery must adopt the highest-ballot value seen in its
	// promise quorum — any of A/B/C is safe (none was chosen), but the
	// result must now be uniform across acceptors.
	if lead.Counters.Get("recoveries") == 0 {
		t.Error("recovery escalation never triggered")
	}
	uniform := 0
	for _, a := range d.Acceptors {
		if av, ok := a.AcceptedValue(1); ok && string(av) == string(v) {
			uniform++
		}
	}
	if uniform < 2 {
		t.Errorf("only %d acceptors converged on %q", uniform, v)
	}
}

// A chosen (quorum-decided) value must survive recovery attempts: the
// Phase1 exchange adopts it rather than the no-op.
func TestRecoveryNeverDisplacesChosenValue(t *testing.T) {
	sim, d := deploy(t, 63, Config{})
	d.Learner.GapTimeout = 20 * time.Millisecond
	c := d.Clients[0]
	c.Submit([]byte("chosen"))
	sim.RunFor(10 * time.Millisecond)
	if v, _ := d.Learner.Decided(1); string(v) != "chosen" {
		t.Fatal("setup: instance 1 not decided")
	}
	lead := d.CurrentLeader()
	// Force repeated recovery of the already-decided instance.
	for i := 0; i < 3; i++ {
		inject(lead, "learner", Msg{Type: MsgGapRequest, Instance: 1})
		sim.RunFor(50 * time.Millisecond)
	}
	for i, a := range d.Acceptors {
		if v, _ := a.AcceptedValue(1); string(v) != "chosen" {
			t.Errorf("acceptor %d now holds %q, chosen value displaced", i, v)
		}
	}
}
