package paxos

import (
	"time"

	"incod/internal/simnet"
)

// instanceState is one consensus instance's acceptor-side state.
type instanceState struct {
	promised uint32
	// prepared marks that `promised` was established by an explicit
	// Phase1A, entitling the matching Phase2A to overwrite an accepted
	// value (the proposer has, by the Paxos rules, adopted the highest
	// accepted value from its promise quorum).
	prepared bool
	accepted bool
	vballot  uint32
	value    []byte
	clientID uint16
	seq      uint64
	client   simnet.Addr
}

// Acceptor is a Paxos acceptor. It answers Phase1A with promises, votes on
// Phase2A proposals, and — per §9.2 — piggybacks its last-voted instance
// number on every response so a newly shifted leader can learn the most
// recent sequence number.
type Acceptor struct {
	role
	id        uint16
	learners  []simnet.Addr
	leader    simnet.Addr
	instances map[uint64]*instanceState
	lastVoted uint64
}

// NewAcceptor attaches an acceptor with the given id. Votes (Phase2B) go
// to every learner and to the current leader.
func NewAcceptor(net *simnet.Network, addr simnet.Addr, id uint16, rt *Runtime, leader simnet.Addr, learners []simnet.Addr) *Acceptor {
	a := &Acceptor{
		role:      newRole(net, addr, rt),
		id:        id,
		learners:  learners,
		leader:    leader,
		instances: make(map[uint64]*instanceState),
	}
	net.Attach(a)
	return a
}

// SetLeader retargets vote copies when the leader moves (the §9.2 shift
// updates forwarding rules; this is the acceptor-side equivalent).
func (a *Acceptor) SetLeader(leader simnet.Addr) { a.leader = leader }

// LastVoted returns the highest instance this acceptor has voted in.
func (a *Acceptor) LastVoted() uint64 { return a.lastVoted }

// AcceptedValue returns the value this acceptor accepted for an instance.
func (a *Acceptor) AcceptedValue(inst uint64) ([]byte, bool) {
	st, ok := a.instances[inst]
	if !ok || !st.accepted {
		return nil, false
	}
	return st.value, true
}

// InstanceRecord is one instance's exported acceptor state, used for the
// state transfer when an acceptor is replaced (§9.2 points to Vertical
// Paxos-style reconfiguration protocols; Snapshot/Restore implement the
// state-transfer half).
type InstanceRecord struct {
	Promised uint32
	Accepted bool
	VBallot  uint32
	Value    []byte
	ClientID uint16
	Seq      uint64
	Client   simnet.Addr
}

// Snapshot exports the acceptor's full per-instance state plus its
// last-voted watermark.
func (a *Acceptor) Snapshot() (map[uint64]InstanceRecord, uint64) {
	out := make(map[uint64]InstanceRecord, len(a.instances))
	for inst, st := range a.instances {
		out[inst] = InstanceRecord{
			Promised: st.promised,
			Accepted: st.accepted,
			VBallot:  st.vballot,
			Value:    append([]byte(nil), st.value...),
			ClientID: st.clientID,
			Seq:      st.seq,
			Client:   st.client,
		}
	}
	return out, a.lastVoted
}

// Restore loads a snapshot into a fresh acceptor (its own state is
// discarded). The new acceptor answers exactly like the one it replaces.
func (a *Acceptor) Restore(records map[uint64]InstanceRecord, lastVoted uint64) {
	a.instances = make(map[uint64]*instanceState, len(records))
	for inst, r := range records {
		a.instances[inst] = &instanceState{
			promised: r.Promised,
			accepted: r.Accepted,
			vballot:  r.VBallot,
			value:    append([]byte(nil), r.Value...),
			clientID: r.ClientID,
			seq:      r.Seq,
			client:   r.Client,
		}
	}
	a.lastVoted = lastVoted
}

func (a *Acceptor) state(inst uint64) *instanceState {
	st, ok := a.instances[inst]
	if !ok {
		st = &instanceState{}
		a.instances[inst] = st
	}
	return st
}

// Receive implements simnet.Node.
func (a *Acceptor) Receive(pkt *simnet.Packet) {
	m, err := Decode(pkt.Payload)
	if err != nil {
		a.Counters.Inc("bad_msg", 1)
		return
	}
	a.rate.Add(a.sim.Now(), 1)
	lat := a.runtime.ServiceLatency(a.sim.Rand())
	switch m.Type {
	case MsgPhase1A:
		a.Counters.Inc("phase1a", 1)
		st := a.state(m.Instance)
		if m.Ballot >= st.promised {
			st.promised = m.Ballot
			st.prepared = true
		}
		resp := Msg{
			Type:      MsgPhase1B,
			Instance:  m.Instance,
			Ballot:    st.promised,
			NodeID:    a.id,
			LastVoted: a.lastVoted,
		}
		if st.accepted {
			resp.VBallot = st.vballot
			resp.Value = st.value
			resp.ClientID = st.clientID
			resp.Seq = st.seq
			resp.ClientAddr = st.client
		}
		a.send(simnet.Addr(pkt.Src), resp, lat)
	case MsgPhase2A:
		a.handlePhase2A(pkt, m, lat)
	default:
		a.Counters.Inc("unexpected", 1)
	}
}

// handlePhase2A votes on a proposal. Safety rules:
//
//   - a fresh proposal (no preceding Phase1A at this ballot) can never
//     overwrite an accepted value: the acceptor re-announces its existing
//     vote instead, so a restarted leader colliding with old instances
//     (§9.2) cannot damage potentially-decided state;
//   - a Phase2A whose ballot was explicitly promised via Phase1A may
//     overwrite a lower-ballot vote — classic Paxos recovery, used by the
//     leader to resolve instances whose acceptors diverged across a shift.
func (a *Acceptor) handlePhase2A(pkt *simnet.Packet, m Msg, lat time.Duration) {
	a.Counters.Inc("phase2a", 1)
	st := a.state(m.Instance)
	if st.accepted {
		overwrite := st.prepared && m.Ballot == st.promised && m.Ballot > st.vballot
		if !overwrite {
			// Re-announce the existing vote (original ballot and value)
			// to learners and the asking leader; the piggybacked
			// LastVoted teaches a new leader the sequence state.
			a.Counters.Inc("reannounce", 1)
			a.broadcast2B(m.Instance, st, simnet.Addr(pkt.Src), lat)
			return
		}
		a.Counters.Inc("recovered", 1)
	}
	if m.Ballot < st.promised {
		a.Counters.Inc("rejected", 1)
		nack := Msg{
			Type:      MsgPhase1B,
			Instance:  m.Instance,
			Ballot:    st.promised,
			NodeID:    a.id,
			LastVoted: a.lastVoted,
		}
		a.send(simnet.Addr(pkt.Src), nack, lat)
		return
	}
	st.promised = m.Ballot
	st.prepared = false
	st.accepted = true
	st.vballot = m.Ballot
	st.value = m.Value
	st.clientID = m.ClientID
	st.seq = m.Seq
	st.client = m.ClientAddr
	if m.Instance > a.lastVoted {
		a.lastVoted = m.Instance
	}
	a.Counters.Inc("voted", 1)
	a.broadcast2B(m.Instance, st, simnet.Addr(pkt.Src), lat)
}

// broadcast2B sends the vote to every learner and to the proposing leader.
func (a *Acceptor) broadcast2B(inst uint64, st *instanceState, proposer simnet.Addr, lat time.Duration) {
	vote := Msg{
		Type:       MsgPhase2B,
		Instance:   inst,
		Ballot:     st.vballot,
		VBallot:    st.vballot,
		NodeID:     a.id,
		LastVoted:  a.lastVoted,
		ClientID:   st.clientID,
		Seq:        st.seq,
		ClientAddr: st.client,
		Value:      st.value,
	}
	for _, l := range a.learners {
		a.send(l, vote, lat)
	}
	if proposer != "" && proposer != a.addr {
		a.send(proposer, vote, lat)
	} else if a.leader != "" {
		a.send(a.leader, vote, lat)
	}
}
