package paxos

import (
	"fmt"
	"testing"
	"time"

	"incod/internal/simnet"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	sim, d := deploy(t, 41, Config{})
	for i := 0; i < 20; i++ {
		d.Clients[0].Submit([]byte(fmt.Sprintf("v%d", i)))
	}
	sim.RunFor(50 * time.Millisecond)

	src := d.Acceptors[0]
	records, lastVoted := src.Snapshot()
	if len(records) != 20 || lastVoted != 20 {
		t.Fatalf("snapshot: %d records, lastVoted %d", len(records), lastVoted)
	}
	fresh := NewAcceptor(d.Net, "fresh", 9, NewLibpaxosAcceptor(), "leader-sw", nil)
	fresh.Restore(records, lastVoted)
	if fresh.LastVoted() != 20 {
		t.Errorf("restored LastVoted = %d", fresh.LastVoted())
	}
	for inst := uint64(1); inst <= 20; inst++ {
		want, _ := src.AcceptedValue(inst)
		got, ok := fresh.AcceptedValue(inst)
		if !ok || string(got) != string(want) {
			t.Fatalf("instance %d: restored %q, want %q", inst, got, want)
		}
	}
	// Mutating the snapshot source must not alias the restored state.
	records[1].Value[0] = 'X'
	if v, _ := fresh.AcceptedValue(1); v[0] == 'X' {
		t.Error("Restore must deep-copy values")
	}
}

func TestReplaceAcceptorPreservesSafetyAndProgress(t *testing.T) {
	sim, d := deploy(t, 42, Config{})
	c := d.Clients[0]
	c.Start(5)
	sim.RunFor(500 * time.Millisecond)
	before := d.Learner.DecidedCount()
	if before == 0 {
		t.Fatal("no progress before reconfiguration")
	}

	replacement, err := d.ReplaceAcceptor(1, NewLibpaxosAcceptor())
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(time.Second)
	c.Stop()
	sim.RunFor(500 * time.Millisecond)

	if d.Learner.DecidedCount() <= before {
		t.Fatal("no progress after reconfiguration")
	}
	if gaps := d.Learner.Gaps(); len(gaps) != 0 {
		t.Errorf("gaps after reconfiguration: %v", gaps)
	}
	// The replacement carries the transferred history and votes on new
	// instances under the same acceptor ID.
	if replacement.LastVoted() <= uint64(before) {
		t.Errorf("replacement lastVoted = %d, want beyond transferred %d", replacement.LastVoted(), before)
	}
	if replacement.Counters.Get("voted") == 0 {
		t.Error("replacement never voted")
	}
	// Old history intact on the replacement.
	if v, ok := replacement.AcceptedValue(1); !ok || len(v) == 0 {
		t.Error("transferred history missing on replacement")
	}
}

func TestReplaceAcceptorDuringLeaderShift(t *testing.T) {
	sim, d := deploy(t, 43, Config{})
	c := d.Clients[0]
	c.Start(5)
	sim.RunFor(300 * time.Millisecond)
	if _, err := d.ReplaceAcceptor(0, NewP4xosRuntime("acceptor")); err != nil {
		t.Fatal(err)
	}
	d.ShiftLeader(d.HWLeader)
	sim.RunFor(2 * time.Second)
	c.Stop()
	sim.RunFor(500 * time.Millisecond)
	if gaps := d.Learner.Gaps(); len(gaps) != 0 {
		t.Errorf("gaps after reconfig+shift: %v", gaps)
	}
	if d.Learner.DecidedCount() == 0 {
		t.Fatal("nothing decided")
	}
	// The replacement acceptor votes to the hardware leader now.
	if d.HWLeader.Counters.Get("fast_forward") == 0 {
		t.Error("piggyback learning should still work with the replaced acceptor")
	}
}

func TestReplaceAcceptorErrors(t *testing.T) {
	_, d := deploy(t, 44, Config{})
	if _, err := d.ReplaceAcceptor(-1, NewLibpaxosAcceptor()); err == nil {
		t.Error("negative index should error")
	}
	if _, err := d.ReplaceAcceptor(99, NewLibpaxosAcceptor()); err == nil {
		t.Error("out-of-range index should error")
	}
}

func TestDetachedAcceptorStopsVoting(t *testing.T) {
	sim, d := deploy(t, 45, Config{})
	old := d.Acceptors[2]
	if _, err := d.ReplaceAcceptor(2, NewLibpaxosAcceptor()); err != nil {
		t.Fatal(err)
	}
	votesBefore := old.Counters.Get("voted")
	d.Clients[0].Submit([]byte("after"))
	sim.RunFor(50 * time.Millisecond)
	if old.Counters.Get("voted") != votesBefore {
		t.Error("detached acceptor still receiving proposals")
	}
	if _, ok := d.Learner.Decided(1); !ok {
		t.Error("quorum should still decide with the replacement")
	}
	_ = simnet.Addr("")
}
