package paxos

import (
	"math/rand"
	"time"

	"incod/internal/fpga"
	"incod/internal/power"
	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// Runtime describes how a Paxos role executes: its per-message service
// latency, peak message rate, and power model. The same protocol code runs
// on every runtime — exactly the paper's interchangeability argument
// (§3.2: "the components are interchangeable with multiple software
// implementations ... and can target both hardware devices").
type Runtime struct {
	Name string
	// BaseLatency and Jitter shape per-message service time.
	BaseLatency time.Duration
	Jitter      time.Duration
	// PeakKpps is the role's message-rate capacity.
	PeakKpps float64
	// Curve is the whole-server power curve (software runtimes).
	Curve *power.SoftwareCurve
	// Board is the FPGA card (hardware runtime); nil for software.
	Board *fpga.Board
}

// Software runtimes (§4.3). Latencies put end-to-end consensus around
// 300-450µs in software (the Figure 7 scale) and halve it with a hardware
// leader.
func libpaxosRuntime(name string, curve power.SoftwareCurve, base time.Duration) *Runtime {
	c := curve
	return &Runtime{
		Name:        name,
		BaseLatency: base,
		Jitter:      20 * time.Microsecond,
		PeakKpps:    curve.PeakKpps,
		Curve:       &c,
	}
}

// NewLibpaxosLeader returns the single-core libpaxos leader runtime.
func NewLibpaxosLeader() *Runtime {
	return libpaxosRuntime("libpaxos-leader", power.LibpaxosLeader, 130*time.Microsecond)
}

// NewLibpaxosAcceptor returns the libpaxos acceptor runtime.
func NewLibpaxosAcceptor() *Runtime {
	return libpaxosRuntime("libpaxos-acceptor", power.LibpaxosAcceptor, 120*time.Microsecond)
}

// NewDPDKLeader returns the kernel-bypass leader: lower latency, higher
// capacity, high flat power (§4.3: DPDK "constantly polls").
func NewDPDKLeader() *Runtime {
	r := libpaxosRuntime("dpdk-leader", power.DPDKLeader, 25*time.Microsecond)
	r.Jitter = 4 * time.Microsecond
	return r
}

// NewDPDKAcceptor returns the kernel-bypass acceptor runtime.
func NewDPDKAcceptor() *Runtime {
	r := libpaxosRuntime("dpdk-acceptor", power.DPDKAcceptor, 22*time.Microsecond)
	r.Jitter = 4 * time.Microsecond
	return r
}

// NewP4xosRuntime returns the FPGA hardware runtime for any role: ~1.5µs
// pipeline latency, 10M msgs/s capacity.
func NewP4xosRuntime(role string) *Runtime {
	return &Runtime{
		Name:        "p4xos-" + role,
		BaseLatency: 1500 * time.Nanosecond,
		Jitter:      100 * time.Nanosecond,
		PeakKpps:    fpga.P4xosDesign.PeakKpps,
		Board:       fpga.NewBoard(fpga.P4xosDesign),
	}
}

// ServiceLatency draws one service time.
func (r *Runtime) ServiceLatency(rng *rand.Rand) time.Duration {
	return r.BaseLatency + time.Duration(rng.ExpFloat64()*float64(r.Jitter))
}

// Hardware reports whether this runtime is an in-network deployment.
func (r *Runtime) Hardware() bool { return r.Board != nil }

// role is shared plumbing for all Paxos nodes: address, runtime, rate
// metering and power.
type role struct {
	addr    simnet.Addr
	sim     *simnet.Simulator
	net     *simnet.Network
	runtime *Runtime
	rate    *telemetry.RateMeter

	Counters *telemetry.Counters
}

func newRole(net *simnet.Network, addr simnet.Addr, rt *Runtime) role {
	r := role{
		addr:     addr,
		sim:      net.Sim(),
		net:      net,
		runtime:  rt,
		rate:     telemetry.NewRateMeter(10*time.Millisecond, 100),
		Counters: telemetry.NewCounters(),
	}
	if rt.Board != nil {
		rt.Board.SetLoadFunc(func() float64 {
			peak := rt.Board.PeakKpps()
			if peak <= 0 {
				return 0
			}
			return r.RateKpps() / peak
		})
	}
	return r
}

// Addr implements simnet.Node.
func (r *role) Addr() simnet.Addr { return r.addr }

// Runtime returns the execution variant.
func (r *role) Runtime() *Runtime { return r.runtime }

// RateKpps is the message rate over the 1s sliding window.
func (r *role) RateKpps() float64 { return r.rate.Rate(r.sim.Now()) / 1000 }

// PowerWatts implements telemetry.PowerSource: whole-server power for
// software runtimes, card increment for hardware.
func (r *role) PowerWatts(now simnet.Time) float64 {
	if r.runtime.Board != nil {
		return r.runtime.Board.PowerWatts(now)
	}
	if r.runtime.Curve != nil {
		return r.runtime.Curve.Power(r.rate.Rate(now) / 1000)
	}
	return 0
}

// send transmits m to dst after the role's service latency.
func (r *role) send(dst simnet.Addr, m Msg, after time.Duration) {
	r.sim.Schedule(after, func() {
		r.net.Send(&simnet.Packet{
			Src: r.addr, Dst: dst, SrcPort: Port, DstPort: Port, Payload: Encode(m),
		})
	})
}
