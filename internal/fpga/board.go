// Package fpga models the NetFPGA SUME platform (Xilinx Virtex-7 690T) the
// paper uses as its common hardware target, at the granularity the paper's
// §5 component study needs: reference-NIC base power, main logical core,
// processing elements, external memories (DRAM/SRAM), clock gating, memory
// interface reset, and module deactivation.
//
// Calibration anchors (all from the paper):
//
//   - §4.2/§4.3: the LaKe card adds ~20 W to the idle server (39 -> 59 W);
//     the P4xos card adds ~10 W (its base is "10W lower" as it has no
//     external memories); Emu DNS sits at 47.5-48 W total.
//   - §4.3: P4xos standalone idle is 18.2 W, dynamic power <= 1.2 W.
//   - §5.1: clock gating saves < 1 W; each PE costs ~0.25 W; external
//     memories cost >= 10 W; resetting memory interfaces saves 40%.
//   - §5.2: LaKe logic over the reference NIC is 2.2 W total (five PEs,
//     interconnect, classifier), under 3% of FPGA resources; each PE
//     supports up to 3.3 Mqps; five PEs reach 10GE line rate (~13 Mqps).
//   - §5.3: 4 GB DRAM = 4.8 W holds 33 M value entries (x65k on-chip);
//     18 MB SRAM = 6 W holds 4.7 M free chunks (x32k on-chip).
package fpga

import (
	"math"
	"time"

	"incod/internal/simnet"
	"incod/internal/telemetry"
)

// Component power constants (watts). See package comment for provenance.
const (
	// NICBaseCardWatts is the in-server power increment of the NetFPGA
	// programmed as the reference NIC.
	NICBaseCardWatts = 7.0
	// PEWatts is the power of one processing element (§5.1: ~0.25 W).
	PEWatts = 0.25
	// DRAMWatts is the 4 GB DRAM interface+devices cost (§5.3).
	DRAMWatts = 4.8
	// SRAMWatts is the 18 MB SRAM cost (§5.3).
	SRAMWatts = 6.0
	// ClockGatingSavesWatts is the §5.1 "less than 1W" saving.
	ClockGatingSavesWatts = 0.9
	// MemoryResetSaveFraction of the memory power is saved by holding the
	// external memory interfaces in reset (§5.1: 40%).
	MemoryResetSaveFraction = 0.40
	// StandaloneOverheadWatts is the extra draw of a host-less board
	// (own power supply and management), derived from P4xos: 18.2 W
	// standalone vs a ~10 W in-server increment (§4.3).
	StandaloneOverheadWatts = 8.2
	// PEThroughputKqps is one PE's capacity (§5.2: up to 3.3 Mqps).
	PEThroughputKqps = 3300
	// LineRateKpps is 10GE line rate for memcached-sized packets
	// (§3.1: "5 PEs are sufficient ... roughly 13M queries/sec").
	LineRateKpps = 13000
)

// Memory capacity constants (§5.3).
const (
	// DRAMValueEntries is how many 64 B value chunks 4 GB DRAM holds.
	DRAMValueEntries = 33_000_000
	// DRAMHashEntries is how many hash-table entries 4 GB DRAM holds.
	DRAMHashEntries = 268_000_000
	// OnChipValueEntries is x65k fewer than DRAM (§5.3).
	OnChipValueEntries = DRAMValueEntries / 65_000
	// SRAMFreeChunks is the SRAM free-list capacity.
	SRAMFreeChunks = 4_700_000
	// OnChipFreeChunks is x32k fewer than SRAM (§5.3).
	OnChipFreeChunks = SRAMFreeChunks / 32_000
)

// Config describes one compiled design for the board.
type Config struct {
	Name string
	// LogicFixedWatts is the non-PE application logic (classifier,
	// interconnect, pipeline) over the reference NIC.
	LogicFixedWatts float64
	// NumPEs is the number of processing elements in the design.
	NumPEs int
	// UsesDRAM / UsesSRAM enable the external memories.
	UsesDRAM bool
	UsesSRAM bool
	// DynamicWattsMax is the additional draw at 100% load (§4.3: <= 1.2 W
	// for P4xos; in-network compute power barely moves with load).
	DynamicWattsMax float64
	// PeakKpps is the design's peak service rate.
	PeakKpps float64
	// ResourceFraction is the share of FPGA logic resources used
	// (§5.2: LaKe's logic is under 3%).
	ResourceFraction float64
}

// Designs evaluated in the paper.
var (
	// ReferenceNIC is the stock NetFPGA NIC design.
	ReferenceNIC = Config{Name: "reference-nic", PeakKpps: LineRateKpps}

	// LaKeDesign is the layered key-value store (§3.1): five PEs,
	// classifier + interconnect, both external memories.
	LaKeDesign = Config{
		Name:             "lake",
		LogicFixedWatts:  0.95,
		NumPEs:           5,
		UsesDRAM:         true,
		UsesSRAM:         true,
		DynamicWattsMax:  0.5,
		PeakKpps:         LineRateKpps,
		ResourceFraction: 0.03,
	}

	// P4xosDesign is the P4 Paxos pipeline (§3.2): on-chip memory only.
	P4xosDesign = Config{
		Name:             "p4xos",
		LogicFixedWatts:  3.0,
		DynamicWattsMax:  1.2,
		PeakKpps:         10000, // 10 M msgs/s on NetFPGA SUME (§3.2)
		ResourceFraction: 0.10,
	}

	// EmuDNSDesign is the Emu-compiled DNS (§3.3) with the added packet
	// classifier; non-pipelined, so it peaks around 1 Mqps (§4.4).
	EmuDNSDesign = Config{
		Name:             "emu-dns",
		LogicFixedWatts:  1.5,
		DynamicWattsMax:  0.4,
		PeakKpps:         1000,
		ResourceFraction: 0.02,
	}
)

// Board is a NetFPGA SUME card programmed with one design. Its power is a
// function of its configuration state (active PEs, gating, memory reset)
// and the current offered load, provided by a load function.
type Board struct {
	cfg Config
	// Standalone adds the host-less overhead (own PSU, §4.3).
	standalone bool

	activePEs  int
	clockGated bool
	memReset   bool
	// moduleActive is false when the design is held inactive and the
	// board serves as a plain NIC (the §9.2 idle strategy).
	moduleActive bool

	// loadFn returns current load as a fraction of PeakKpps; may be nil.
	loadFn func() float64
}

// NewBoard programs a board with cfg; the design starts active with all
// PEs on, no gating, memories out of reset.
func NewBoard(cfg Config) *Board {
	return &Board{cfg: cfg, activePEs: cfg.NumPEs, moduleActive: true}
}

// Config returns the programmed design.
func (b *Board) Config() Config { return b.cfg }

// Reprogram loads a different design onto the board (full or partial
// reconfiguration, §9.2's alternative idle strategy). All gating and
// reset state is cleared and the new design starts active; any state in
// on-board memories is lost. Callers model the reconfiguration-time
// traffic halt themselves.
func (b *Board) Reprogram(cfg Config) {
	b.cfg = cfg
	b.activePEs = cfg.NumPEs
	b.clockGated = false
	b.memReset = false
	b.moduleActive = true
}

// SetStandalone marks the board as host-less (adds PSU overhead).
func (b *Board) SetStandalone(v bool) { b.standalone = v }

// SetLoadFunc installs the function reporting offered load (fraction of
// the design's peak rate).
func (b *Board) SetLoadFunc(fn func() float64) { b.loadFn = fn }

// SetClockGating enables or disables clock gating of the logic module and
// PEs (§5.1).
func (b *Board) SetClockGating(v bool) { b.clockGated = v }

// SetMemoryReset holds the external memory interfaces in reset (§5.1).
// Resetting the memories invalidates any cached state; callers owning
// caches must flush them.
func (b *Board) SetMemoryReset(v bool) { b.memReset = v }

// SetActivePEs clamps n to [0, NumPEs] and powers the rest down
// (§5.1 "deactivating modules").
func (b *Board) SetActivePEs(n int) {
	if n < 0 {
		n = 0
	}
	if n > b.cfg.NumPEs {
		n = b.cfg.NumPEs
	}
	b.activePEs = n
}

// ActivePEs returns the number of powered processing elements.
func (b *Board) ActivePEs() int { return b.activePEs }

// SetModuleActive switches the design between serving (true) and held
// inactive as a plain NIC (false).
func (b *Board) SetModuleActive(v bool) { b.moduleActive = v }

// ModuleActive reports whether the design is serving.
func (b *Board) ModuleActive() bool { return b.moduleActive }

// ClockGated reports the clock gating state.
func (b *Board) ClockGated() bool { return b.clockGated }

// MemoriesReset reports whether external memories are held in reset.
func (b *Board) MemoriesReset() bool { return b.memReset }

// PeakKpps returns the effective service capacity given active PEs.
func (b *Board) PeakKpps() float64 {
	if !b.moduleActive {
		return 0
	}
	if b.cfg.NumPEs == 0 {
		return b.cfg.PeakKpps
	}
	peak := float64(b.activePEs) * PEThroughputKqps
	return math.Min(peak, b.cfg.PeakKpps)
}

// logicWatts returns the application-logic draw given gating state.
func (b *Board) logicWatts() float64 {
	logic := b.cfg.LogicFixedWatts + float64(b.activePEs)*PEWatts
	if b.clockGated {
		logic -= ClockGatingSavesWatts
		if logic < 0.1*b.cfg.LogicFixedWatts {
			logic = 0.1 * b.cfg.LogicFixedWatts
		}
	}
	return logic
}

// memoryWatts returns the external-memory draw given reset state.
func (b *Board) memoryWatts() float64 {
	var w float64
	if b.cfg.UsesDRAM {
		w += DRAMWatts
	}
	if b.cfg.UsesSRAM {
		w += SRAMWatts
	}
	if b.memReset {
		w *= 1 - MemoryResetSaveFraction
	}
	return w
}

// CardWatts returns the in-server power increment at the given load
// fraction (0..1 of peak).
func (b *Board) CardWatts(load float64) float64 {
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	w := NICBaseCardWatts + b.logicWatts() + b.memoryWatts()
	if b.moduleActive {
		w += b.cfg.DynamicWattsMax * load
	}
	if b.standalone {
		w += StandaloneOverheadWatts
	}
	return w
}

// PowerWatts implements telemetry.PowerSource using the installed load
// function (zero load if none).
func (b *Board) PowerWatts(simnet.Time) float64 {
	var load float64
	if b.loadFn != nil {
		load = b.loadFn()
	}
	return b.CardWatts(load)
}

var _ telemetry.PowerSource = (*Board)(nil)

// Memory access latencies for the on-board memories, used by LaKe's
// latency model (§5.3: on-chip hits stay under 1.4 µs end to end; DRAM
// hits land at 1.67 µs median).
const (
	BRAMAccess = 10 * time.Nanosecond
	SRAMAccess = 60 * time.Nanosecond
	DRAMAccess = 270 * time.Nanosecond
)

// UltraScalePlusFactor is the §5.4 note that Xilinx UltraScale+ reaches
// x2.4 the performance per watt of the Virtex-7 generation.
const UltraScalePlusFactor = 2.4

// Scaled returns a config whose power is divided by an efficiency factor,
// modelling a newer FPGA generation at equal throughput (§5.4).
func (c Config) Scaled(factor float64) Config {
	out := c
	out.Name = c.Name + "-scaled"
	out.LogicFixedWatts /= factor
	out.DynamicWattsMax /= factor
	return out
}
